package slicer

import (
	"reflect"
	"testing"
	"testing/quick"

	"slicer/internal/workload"
)

func testParams(bits int) Params {
	return Params{Bits: bits, TrapdoorBits: 256, AccumulatorBits: 256}
}

func TestSchemeMatchesGroundTruth(t *testing.T) {
	db := workload.Generate(workload.Config{N: 120, Bits: 8, Seed: 21})
	scheme, err := NewScheme(testParams(8), db)
	if err != nil {
		t.Fatalf("NewScheme: %v", err)
	}
	queries := workload.Queries(workload.Config{N: 120, Bits: 8, Seed: 21}, workload.Mixed, 25)
	for _, q := range queries {
		got, err := scheme.Search(q)
		if err != nil {
			t.Fatalf("Search(%+v): %v", q, err)
		}
		want := workload.Answer(db, q)
		sortU64(want)
		if !equalU64(got, want) {
			t.Fatalf("Search(%v %d): got %d ids, want %d", q.Op, q.Value, len(got), len(want))
		}
	}
}

func TestSchemeInsertThenSearch(t *testing.T) {
	db := workload.Generate(workload.Config{N: 50, Bits: 8, Seed: 5})
	scheme, err := NewScheme(testParams(8), db)
	if err != nil {
		t.Fatalf("NewScheme: %v", err)
	}
	extra := workload.Generate(workload.Config{N: 30, Bits: 8, Seed: 6, FirstID: 51})
	if err := scheme.Insert(extra); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	all := append(append([]Record(nil), db...), extra...)
	for _, q := range []Query{Equal(extra[0].Attrs[0].Value), Less(128), Greater(200)} {
		got, err := scheme.Search(q)
		if err != nil {
			t.Fatalf("Search: %v", err)
		}
		want := workload.Answer(all, q)
		sortU64(want)
		if !equalU64(got, want) {
			t.Fatalf("post-insert Search(%v %d) mismatch", q.Op, q.Value)
		}
	}
}

func TestRangeSearch(t *testing.T) {
	db := workload.Generate(workload.Config{N: 150, Bits: 8, Seed: 9})
	scheme, err := NewScheme(testParams(8), db)
	if err != nil {
		t.Fatalf("NewScheme: %v", err)
	}
	ranges := []struct{ lo, hi uint64 }{
		{10, 200}, {0, 50}, {200, 255}, {0, 255}, {7, 7}, {0, 0}, {255, 255},
	}
	for _, r := range ranges {
		got, err := scheme.RangeSearch("", r.lo, r.hi)
		if err != nil {
			t.Fatalf("RangeSearch(%d,%d): %v", r.lo, r.hi, err)
		}
		var want []uint64
		for _, rec := range db {
			v := rec.Attrs[0].Value
			if v >= r.lo && v <= r.hi {
				want = append(want, rec.ID)
			}
		}
		sortU64(want)
		if !equalU64(got, want) {
			t.Fatalf("RangeSearch(%d,%d): got %d ids, want %d", r.lo, r.hi, len(got), len(want))
		}
	}

	if _, err := scheme.RangeSearch("", 10, 5); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := scheme.RangeSearch("", 0, 256); err == nil {
		t.Error("out-of-domain range accepted")
	}
}

func TestConjunctiveSearch(t *testing.T) {
	db := []Record{
		{ID: 1, Attrs: []AttrValue{{Name: "age", Value: 34}, {Name: "hr", Value: 72}}},
		{ID: 2, Attrs: []AttrValue{{Name: "age", Value: 61}, {Name: "hr", Value: 88}}},
		{ID: 3, Attrs: []AttrValue{{Name: "age", Value: 45}, {Name: "hr", Value: 110}}},
		{ID: 4, Attrs: []AttrValue{{Name: "age", Value: 52}, {Name: "hr", Value: 130}}},
		{ID: 5, Attrs: []AttrValue{{Name: "age", Value: 29}, {Name: "hr", Value: 120}}},
	}
	s, err := NewScheme(testParams(8), db)
	if err != nil {
		t.Fatalf("NewScheme: %v", err)
	}
	maxV := s.MaxValue()
	if maxV != 255 {
		t.Fatalf("MaxValue = %d", maxV)
	}

	got, err := s.ConjunctiveSearch([]Condition{
		{Attr: "age", Lo: 30, Hi: 60},
		{Attr: "hr", Lo: 101, Hi: maxV},
	})
	if err != nil {
		t.Fatalf("ConjunctiveSearch: %v", err)
	}
	if !equalU64(got, []uint64{3, 4}) {
		t.Fatalf("age in [30,60] AND hr > 100 = %v, want [3 4]", got)
	}

	// Single condition degenerates to a range search.
	got, err = s.ConjunctiveSearch([]Condition{{Attr: "age", Lo: 0, Hi: 40}})
	if err != nil {
		t.Fatalf("ConjunctiveSearch: %v", err)
	}
	if !equalU64(got, []uint64{1, 5}) {
		t.Fatalf("age <= 40 = %v, want [1 5]", got)
	}

	// Contradictory conditions yield the empty set.
	got, err = s.ConjunctiveSearch([]Condition{
		{Attr: "age", Lo: 0, Hi: 30},
		{Attr: "age", Lo: 60, Hi: maxV},
	})
	if err != nil {
		t.Fatalf("ConjunctiveSearch: %v", err)
	}
	if len(got) != 0 {
		t.Fatalf("contradiction = %v, want empty", got)
	}

	if _, err := s.ConjunctiveSearch(nil); err == nil {
		t.Error("empty condition list accepted")
	}
}

func TestSetHelpers(t *testing.T) {
	type pair struct{ a, b []uint64 }
	cases := []struct {
		in            pair
		inter, united []uint64
	}{
		{pair{nil, nil}, []uint64{}, []uint64{}},
		{pair{[]uint64{1, 2, 3}, nil}, []uint64{}, []uint64{1, 2, 3}},
		{pair{[]uint64{1, 3, 5}, []uint64{2, 3, 4, 5}}, []uint64{3, 5}, []uint64{1, 2, 3, 4, 5}},
		{pair{[]uint64{1, 2}, []uint64{1, 2}}, []uint64{1, 2}, []uint64{1, 2}},
	}
	for i, tc := range cases {
		if got := intersectSorted(tc.in.a, tc.in.b); !equalU64(got, tc.inter) {
			t.Errorf("case %d intersect = %v, want %v", i, got, tc.inter)
		}
		if got := unionSorted(tc.in.a, tc.in.b); !equalU64(got, tc.united) {
			t.Errorf("case %d union = %v, want %v", i, got, tc.united)
		}
	}

	// Property: against map-based reference implementations.
	f := func(a, b []uint16) bool {
		sa, sb := dedupSorted(a), dedupSorted(b)
		wantI := map[uint64]bool{}
		present := map[uint64]bool{}
		for _, v := range sa {
			present[v] = true
		}
		for _, v := range sb {
			if present[v] {
				wantI[v] = true
			}
		}
		gotI := intersectSorted(sa, sb)
		if len(gotI) != len(wantI) {
			return false
		}
		for _, v := range gotI {
			if !wantI[v] {
				return false
			}
		}
		gotU := unionSorted(sa, sb)
		wantU := map[uint64]bool{}
		for _, v := range sa {
			wantU[v] = true
		}
		for _, v := range sb {
			wantU[v] = true
		}
		if len(gotU) != len(wantU) {
			return false
		}
		for _, v := range gotU {
			if !wantU[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func dedupSorted(in []uint16) []uint64 {
	seen := map[uint64]bool{}
	var out []uint64
	for _, v := range in {
		if !seen[uint64(v)] {
			seen[uint64(v)] = true
			out = append(out, uint64(v))
		}
	}
	sortU64(out)
	return out
}

func sortU64(s []uint64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1] > s[j]; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
}

func equalU64(a, b []uint64) bool {
	if len(a) == 0 && len(b) == 0 {
		return true
	}
	return reflect.DeepEqual(a, b)
}

func TestDeploymentFairExchange(t *testing.T) {
	db := []Record{NewRecord(1, 10), NewRecord(2, 200), NewRecord(3, 10), NewRecord(4, 90)}
	d, err := NewDeployment(DeploymentConfig{Params: testParams(8)}, db)
	if err != nil {
		t.Fatalf("NewDeployment: %v", err)
	}
	const fee = 777
	userStart := d.Balance(d.UserAddr)
	cloudStart := d.Balance(d.CloudAddr)

	// Honest round settles.
	out, err := d.VerifiedSearch(Equal(10), fee)
	if err != nil {
		t.Fatalf("VerifiedSearch: %v", err)
	}
	if !out.Settled {
		t.Fatal("honest search did not settle")
	}
	if !equalU64(out.IDs, []uint64{1, 3}) {
		t.Fatalf("IDs = %v, want [1 3]", out.IDs)
	}
	if d.Balance(d.CloudAddr) != cloudStart+fee {
		t.Errorf("cloud balance %d, want %d", d.Balance(d.CloudAddr), cloudStart+fee)
	}

	// Tampered round refunds.
	d.SetCloudTamper(func(resp *SearchResponse) {
		resp.Results[0].ER[0][0] ^= 1
	})
	out, err = d.VerifiedSearch(Equal(10), fee)
	if err != nil {
		t.Fatalf("VerifiedSearch (tampered): %v", err)
	}
	if out.Settled {
		t.Fatal("tampered search settled")
	}
	if out.IDs != nil {
		t.Error("tampered search returned IDs")
	}
	if d.Balance(d.UserAddr) != userStart-fee {
		t.Errorf("user balance %d, want %d (one fee paid, one refunded)",
			d.Balance(d.UserAddr), userStart-fee)
	}

	// Insert + honest round settles against the refreshed digest.
	d.SetCloudTamper(nil)
	if _, err := d.Insert([]Record{NewRecord(5, 10)}); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	out, err = d.VerifiedSearch(Equal(10), fee)
	if err != nil {
		t.Fatalf("VerifiedSearch (post-insert): %v", err)
	}
	if !out.Settled || !equalU64(out.IDs, []uint64{1, 3, 5}) {
		t.Fatalf("post-insert outcome: settled=%v ids=%v", out.Settled, out.IDs)
	}
	if d.DeployGas() == 0 {
		t.Error("deployment gas not recorded")
	}
}

func TestDeploymentRejectsZeroPayment(t *testing.T) {
	db := []Record{NewRecord(1, 1)}
	d, err := NewDeployment(DeploymentConfig{Params: testParams(8)}, db)
	if err != nil {
		t.Fatalf("NewDeployment: %v", err)
	}
	if _, err := d.VerifiedSearch(Equal(1), 0); err == nil {
		t.Error("zero-payment search accepted")
	}
}

func TestSchemeErrors(t *testing.T) {
	if _, err := NewScheme(Params{Bits: 0}, nil); err == nil {
		t.Error("invalid params accepted")
	}
	db := []Record{NewRecord(1, 300)}
	if _, err := NewScheme(testParams(8), db); err == nil {
		t.Error("out-of-range record accepted")
	}
	scheme, err := NewScheme(testParams(8), []Record{NewRecord(1, 1)})
	if err != nil {
		t.Fatalf("NewScheme: %v", err)
	}
	if err := scheme.Insert([]Record{NewRecord(1, 2)}); err == nil {
		t.Error("duplicate insert accepted")
	}
}
