// Package slicer is the public API of the Slicer library: verifiable,
// secure and fair search over encrypted numerical data using a blockchain
// (Wu, Song, Lei, Xiao — ICDCS 2022).
//
// Slicer lets a data owner outsource encrypted key-value records to an
// untrusted cloud while authorized data users run equality and order
// (range) queries whose results are publicly verifiable on a blockchain,
// so that neither a cheating cloud nor a repudiating user can defraud the
// other of the search fee.
//
// Two entry points are provided:
//
//   - Scheme wires owner, user and cloud in one process with local (off-
//     chain) verification — the fastest way to use the encrypted search.
//   - Deployment additionally runs a proof-of-authority blockchain with the
//     Slicer smart contract, escrowing search payments and settling them by
//     on-chain verification (the paper's full fairness story).
//
// See the examples directory for runnable end-to-end programs.
package slicer

import (
	"fmt"

	"slicer/internal/core"
	"slicer/internal/store"
)

// Re-exported protocol types. The core package holds the implementations;
// these aliases make the public surface self-contained.
type (
	// Record is an encrypted-search database record.
	Record = core.Record
	// AttrValue is one named numerical attribute of a record.
	AttrValue = core.AttrValue
	// Query is a search condition over one attribute.
	Query = core.Query
	// Op is a query operator.
	Op = core.Op
	// Params fixes a deployment's public parameters.
	Params = core.Params
	// SearchRequest is a token list produced by a data user.
	SearchRequest = core.SearchRequest
	// SearchResponse is a cloud's answer with verification objects.
	SearchResponse = core.SearchResponse
	// SearchToken is a single keyword token.
	SearchToken = core.SearchToken
	// TokenResult is the cloud's answer for one token.
	TokenResult = core.TokenResult
	// Owner is the data owner role.
	Owner = core.Owner
	// User is the data user role.
	User = core.User
	// Cloud is the search server role.
	Cloud = core.Cloud
	// WitnessMode selects the cloud's VO generation strategy.
	WitnessMode = core.WitnessMode
)

// Query operators.
const (
	OpEqual   = core.OpEqual
	OpLess    = core.OpLess
	OpGreater = core.OpGreater
)

// Witness generation modes.
const (
	WitnessCached   = core.WitnessCached
	WitnessOnDemand = core.WitnessOnDemand
)

// Re-exported constructors.
var (
	// NewRecord builds a single-attribute record.
	NewRecord = core.NewRecord
	// Equal / Less / Greater build single-attribute queries.
	Equal   = core.Equal
	Less    = core.Less
	Greater = core.Greater
	// DefaultParams returns the evaluation parameterization for a bit width.
	DefaultParams = core.DefaultParams
	// NewOwner / NewUser / NewCloud expose the individual roles for callers
	// that deploy the parties on separate machines (see package wire).
	NewOwner = core.NewOwner
	NewUser  = core.NewUser
	NewCloud = core.NewCloud
)

// Scheme is a single-process Slicer deployment: owner, one user and one
// cloud, with verification performed locally by the same algorithm the
// smart contract runs. Use Deployment for the on-chain fair-exchange flow.
type Scheme struct {
	owner *core.Owner
	user  *core.User
	cloud *core.Cloud
}

// NewScheme creates a deployment over an initial database.
func NewScheme(params Params, db []Record) (*Scheme, error) {
	owner, err := core.NewOwner(params)
	if err != nil {
		return nil, err
	}
	out, err := owner.Build(db)
	if err != nil {
		return nil, err
	}
	cloud, err := core.NewCloud(owner.CloudInit(out.Index), core.WitnessCached)
	if err != nil {
		return nil, err
	}
	user, err := core.NewUser(owner.ClientState())
	if err != nil {
		return nil, err
	}
	return &Scheme{owner: owner, user: user, cloud: cloud}, nil
}

// Owner / User / Cloud expose the underlying roles.
func (s *Scheme) Owner() *core.Owner { return s.owner }
func (s *Scheme) User() *core.User   { return s.user }
func (s *Scheme) Cloud() *core.Cloud { return s.cloud }

// Verify publicly verifies a search response against the request it
// answers, using the deployment's current accumulation value — the same
// Algorithm 5 the smart contract meters. Callers composing their own
// token/search flows (e.g. against a remote cloud) use this before
// Decrypt.
func (s *Scheme) Verify(req *SearchRequest, resp *SearchResponse) error {
	return core.VerifyResponse(s.owner.AccumulatorPub(), s.owner.Ac(), req, resp)
}

// Insert adds records: the owner re-indexes, the cloud applies the delta
// and the user receives the refreshed trapdoor states.
func (s *Scheme) Insert(records []Record) error {
	out, err := s.owner.Insert(records)
	if err != nil {
		return err
	}
	if err := s.cloud.ApplyUpdate(out); err != nil {
		return err
	}
	s.user.UpdateStates(s.owner.StatesSnapshot())
	return nil
}

// Search runs the full verified pipeline for one query: token generation,
// cloud search, verification (Algorithm 5) against the owner's current Ac,
// and decryption. It returns the matching record IDs.
func (s *Scheme) Search(q Query) ([]uint64, error) {
	req, err := s.user.Token(q)
	if err != nil {
		return nil, err
	}
	resp, err := s.cloud.Search(req)
	if err != nil {
		return nil, err
	}
	if err := core.VerifyResponse(s.owner.AccumulatorPub(), s.owner.Ac(), req, resp); err != nil {
		return nil, err
	}
	return s.user.Decrypt(resp)
}

// RangeSearch returns the IDs of records whose attribute value lies in the
// inclusive range [lo, hi]. It is an extension over the paper's one-sided
// conditions. Two strategies are available:
//
//   - Default: both one-sided conditions are searched and verified
//     independently and the intersection is taken client side, so
//     completeness follows from the completeness of each side.
//   - With Params.PrefixIndex: the range decomposes into its canonical
//     prefix cover and resolves as exact keyword lookups — fewer fetched
//     records, one verified result set per cover node.
func (s *Scheme) RangeSearch(attr string, lo, hi uint64) ([]uint64, error) {
	if lo > hi {
		return nil, fmt.Errorf("slicer: empty range [%d,%d]", lo, hi)
	}
	if s.owner.Params().PrefixIndex {
		return s.prefixRangeSearch(attr, lo, hi)
	}
	bits := s.owner.Params().Bits
	maxVal := uint64(1)<<uint(bits) - 1
	if bits == 64 {
		maxVal = ^uint64(0)
	}
	if hi > maxVal {
		return nil, fmt.Errorf("slicer: range bound %d exceeds %d-bit values", hi, bits)
	}

	// a in [lo,hi]  <=>  a > lo-1  AND  a < hi+1, with saturated bounds
	// handled by dropping the vacuous side.
	var lower, upper []uint64
	haveLower, haveUpper := lo > 0, hi < maxVal
	var err error
	if haveLower {
		lower, err = s.Search(Query{Attr: attr, Op: OpGreater, Value: lo - 1})
		if err != nil {
			return nil, err
		}
	}
	if haveUpper {
		upper, err = s.Search(Query{Attr: attr, Op: OpLess, Value: hi + 1})
		if err != nil {
			return nil, err
		}
	}
	switch {
	case haveLower && haveUpper:
		return intersectSorted(lower, upper), nil
	case haveLower:
		return lower, nil
	case haveUpper:
		return upper, nil
	default:
		// The range covers the whole domain: equivalent to a < max with the
		// equality at max unioned in.
		below, err := s.Search(Query{Attr: attr, Op: OpLess, Value: maxVal})
		if err != nil {
			return nil, err
		}
		at, err := s.Search(Query{Attr: attr, Op: OpEqual, Value: maxVal})
		if err != nil {
			return nil, err
		}
		return unionSorted(below, at), nil
	}
}

// prefixRangeSearch answers [lo, hi] through the prefix-cover index.
func (s *Scheme) prefixRangeSearch(attr string, lo, hi uint64) ([]uint64, error) {
	req, err := s.user.RangeTokens(attr, lo, hi)
	if err != nil {
		return nil, err
	}
	resp, err := s.cloud.Search(req)
	if err != nil {
		return nil, err
	}
	if err := core.VerifyResponse(s.owner.AccumulatorPub(), s.owner.Ac(), req, resp); err != nil {
		return nil, err
	}
	return s.user.Decrypt(resp)
}

// Condition is one attribute condition of a conjunctive search.
type Condition struct {
	Attr string
	// Lo and Hi bound the attribute inclusively. Use Lo==0 / Hi==MaxValue
	// for one-sided conditions.
	Lo, Hi uint64
}

// MaxValue returns the largest representable value of the deployment.
func (s *Scheme) MaxValue() uint64 {
	bits := s.owner.Params().Bits
	if bits >= 64 {
		return ^uint64(0)
	}
	return uint64(1)<<uint(bits) - 1
}

// ConjunctiveSearch returns the IDs of records satisfying every condition
// (an AND across attributes — e.g. age in [30,60] AND heart_rate > 100).
// Each condition is answered and verified independently; the intersection
// happens client side, so the result inherits each side's completeness.
// This extends the paper's multi-attribute extension (§V-F) with
// multi-condition queries.
func (s *Scheme) ConjunctiveSearch(conds []Condition) ([]uint64, error) {
	if len(conds) == 0 {
		return nil, fmt.Errorf("slicer: conjunctive search needs at least one condition")
	}
	var acc []uint64
	for i, c := range conds {
		ids, err := s.RangeSearch(c.Attr, c.Lo, c.Hi)
		if err != nil {
			return nil, fmt.Errorf("condition %d (%s in [%d,%d]): %w", i, c.Attr, c.Lo, c.Hi, err)
		}
		if i == 0 {
			acc = ids
		} else {
			acc = intersectSorted(acc, ids)
		}
		if len(acc) == 0 {
			return nil, nil
		}
	}
	return acc, nil
}

// StatesLen reports how many keywords the deployment tracks (diagnostics).
func (s *Scheme) StatesLen() int { return statesLen(s.owner.StatesSnapshot()) }

func statesLen(t *store.TrapdoorStates) int { return t.Len() }

func intersectSorted(a, b []uint64) []uint64 {
	out := make([]uint64, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func unionSorted(a, b []uint64) []uint64 {
	out := make([]uint64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j == len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i == len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
