// Package slicer is the public API of the Slicer library: verifiable,
// secure and fair search over encrypted numerical data using a blockchain
// (Wu, Song, Lei, Xiao — ICDCS 2022).
//
// Slicer lets a data owner outsource encrypted key-value records to an
// untrusted cloud while authorized data users run equality and order
// (range) queries whose results are publicly verifiable on a blockchain,
// so that neither a cheating cloud nor a repudiating user can defraud the
// other of the search fee.
//
// Two entry points are provided:
//
//   - Scheme wires owner, user and cloud in one process with local (off-
//     chain) verification — the fastest way to use the encrypted search.
//   - Deployment additionally runs a proof-of-authority blockchain with the
//     Slicer smart contract, escrowing search payments and settling them by
//     on-chain verification (the paper's full fairness story).
//
// See the examples directory for runnable end-to-end programs.
package slicer

import (
	"fmt"
	"sync"

	"slicer/internal/core"
	"slicer/internal/obs"
	"slicer/internal/store"
)

// Re-exported protocol types. The core package holds the implementations;
// these aliases make the public surface self-contained.
type (
	// Record is an encrypted-search database record.
	Record = core.Record
	// AttrValue is one named numerical attribute of a record.
	AttrValue = core.AttrValue
	// Query is a search condition over one attribute.
	Query = core.Query
	// Op is a query operator.
	Op = core.Op
	// Params fixes a deployment's public parameters.
	Params = core.Params
	// SearchRequest is a token list produced by a data user.
	SearchRequest = core.SearchRequest
	// SearchResponse is a cloud's answer with verification objects.
	SearchResponse = core.SearchResponse
	// SearchToken is a single keyword token.
	SearchToken = core.SearchToken
	// TokenResult is the cloud's answer for one token.
	TokenResult = core.TokenResult
	// Owner is the data owner role.
	Owner = core.Owner
	// User is the data user role.
	User = core.User
	// Cloud is the search server role.
	Cloud = core.Cloud
	// WitnessMode selects the cloud's VO generation strategy.
	WitnessMode = core.WitnessMode
	// MetricsRegistry is the observability registry (see SetObservability).
	MetricsRegistry = obs.Registry
	// SearchTrace is a per-request span trace (see SearchTraced).
	SearchTrace = obs.Trace
	// SpanRecord is one completed phase of a SearchTrace.
	SpanRecord = obs.SpanRecord
	// TraceContext propagates a trace identity across a wire RPC.
	TraceContext = obs.TraceContext
	// TraceSummary is a completed span tree returned by a wire peer.
	TraceSummary = obs.TraceSummary
	// TraceStore retains finalized traces in bounded memory (/debug/traces).
	TraceStore = obs.TraceStore
)

// Query operators.
const (
	OpEqual   = core.OpEqual
	OpLess    = core.OpLess
	OpGreater = core.OpGreater
)

// Witness generation modes.
const (
	WitnessCached   = core.WitnessCached
	WitnessOnDemand = core.WitnessOnDemand
)

// Re-exported constructors.
var (
	// NewRecord builds a single-attribute record.
	NewRecord = core.NewRecord
	// Equal / Less / Greater build single-attribute queries.
	Equal   = core.Equal
	Less    = core.Less
	Greater = core.Greater
	// DefaultParams returns the evaluation parameterization for a bit width.
	DefaultParams = core.DefaultParams
	// NewOwner / NewUser / NewCloud expose the individual roles for callers
	// that deploy the parties on separate machines (see package wire).
	NewOwner = core.NewOwner
	NewUser  = core.NewUser
	NewCloud = core.NewCloud
	// NewMetricsRegistry creates an observability registry to attach with
	// Scheme.SetObservability / Deployment.SetObservability.
	NewMetricsRegistry = obs.NewRegistry
	// NewTraceStore creates a bounded trace retention store.
	NewTraceStore = obs.NewTraceStore
)

// Scheme is a single-process Slicer deployment: owner, one user and one
// cloud, with verification performed locally by the same algorithm the
// smart contract runs. Use Deployment for the on-chain fair-exchange flow.
type Scheme struct {
	owner *core.Owner
	user  *core.User
	cloud *core.Cloud
	met   schemeMetrics
}

// schemeMetrics are the client-pipeline instruments (token generation,
// cloud round trip, verification, decryption). The zero value is the
// disabled state — every instrument is nil-safe.
type schemeMetrics struct {
	searches   *obs.Counter
	ranges     *obs.Counter
	conj       *obs.Counter
	roundTrips *obs.Counter
	token      *obs.Histogram
	search     *obs.Histogram
	verify     *obs.Histogram
	decrypt    *obs.Histogram
}

func newSchemeMetrics(reg *obs.Registry) schemeMetrics {
	if reg == nil {
		return schemeMetrics{}
	}
	const phaseHelp = "Latency of one client search-pipeline phase, by phase."
	return schemeMetrics{
		searches:   reg.Counter("slicer_searches_total", "Verified searches run through the pipeline."),
		ranges:     reg.Counter("slicer_range_searches_total", "Range searches run."),
		conj:       reg.Counter("slicer_conjunctive_searches_total", "Conjunctive searches run."),
		roundTrips: reg.Counter("slicer_cloud_round_trips_total", "Cloud search round trips issued."),
		token:      reg.Histogram(obs.Label("slicer_pipeline_seconds", "phase", "token"), phaseHelp),
		search:     reg.Histogram(obs.Label("slicer_pipeline_seconds", "phase", "cloud_search"), phaseHelp),
		verify:     reg.Histogram(obs.Label("slicer_pipeline_seconds", "phase", "verify"), phaseHelp),
		decrypt:    reg.Histogram(obs.Label("slicer_pipeline_seconds", "phase", "decrypt"), phaseHelp),
	}
}

// SetObservability attaches a metrics registry to the scheme: the client
// pipeline records per-phase latency histograms (token generation, cloud
// round trip, verification, decryption) and the in-process cloud records
// its own phase histograms into the same registry. A nil registry
// detaches. Observability never changes any search output.
func (s *Scheme) SetObservability(reg *obs.Registry) {
	s.met = newSchemeMetrics(reg)
	s.cloud.SetMetrics(reg)
}

// NewScheme creates a deployment over an initial database.
func NewScheme(params Params, db []Record) (*Scheme, error) {
	owner, err := core.NewOwner(params)
	if err != nil {
		return nil, err
	}
	out, err := owner.Build(db)
	if err != nil {
		return nil, err
	}
	cloud, err := core.NewCloud(owner.CloudInit(out.Index), core.WitnessCached)
	if err != nil {
		return nil, err
	}
	user, err := core.NewUser(owner.ClientState())
	if err != nil {
		return nil, err
	}
	return &Scheme{owner: owner, user: user, cloud: cloud}, nil
}

// Owner / User / Cloud expose the underlying roles.
func (s *Scheme) Owner() *core.Owner { return s.owner }
func (s *Scheme) User() *core.User   { return s.user }
func (s *Scheme) Cloud() *core.Cloud { return s.cloud }

// Verify publicly verifies a search response against the request it
// answers, using the deployment's current accumulation value — the same
// Algorithm 5 the smart contract meters. Callers composing their own
// token/search flows (e.g. against a remote cloud) use this before
// Decrypt.
func (s *Scheme) Verify(req *SearchRequest, resp *SearchResponse) error {
	return core.VerifyResponse(s.owner.AccumulatorPub(), s.owner.Ac(), req, resp)
}

// Insert adds records: the owner re-indexes, the cloud applies the delta
// and the user receives the refreshed trapdoor states.
func (s *Scheme) Insert(records []Record) error {
	out, err := s.owner.Insert(records)
	if err != nil {
		return err
	}
	if err := s.cloud.ApplyUpdate(out); err != nil {
		return err
	}
	s.user.UpdateStates(s.owner.StatesSnapshot())
	return nil
}

// Search runs the full verified pipeline for one query: token generation,
// cloud search, verification (Algorithm 5) against the owner's current Ac,
// and decryption. It returns the matching record IDs.
func (s *Scheme) Search(q Query) ([]uint64, error) {
	return s.searchObserved(q, nil)
}

// SearchTraced runs Search while recording a per-request span trace of
// every pipeline phase — client token generation, the cloud's per-token
// index walk and witness computation, verification and decryption. The
// trace is returned alongside the results for dumping (Trace.WriteText)
// or structured export; phase latencies also land in the registry
// attached with SetObservability, if any.
func (s *Scheme) SearchTraced(q Query) ([]uint64, *SearchTrace, error) {
	tr := obs.NewTrace("search")
	ids, err := s.searchObserved(q, tr)
	return ids, tr, err
}

func (s *Scheme) searchObserved(q Query, tr *obs.Trace) ([]uint64, error) {
	s.met.searches.Inc()
	done := obs.StartPhase(s.met.token, tr, "token")
	req, err := s.user.Token(q)
	if err != nil {
		return nil, err
	}
	done()
	s.met.roundTrips.Inc()
	done = obs.StartPhase(s.met.search, tr, "cloud_search")
	resp, err := s.cloud.SearchTraced(req, tr)
	if err != nil {
		return nil, err
	}
	done()
	if err := core.VerifyResponseObserved(s.owner.AccumulatorPub(), s.owner.Ac(), req, resp, s.met.verify, tr); err != nil {
		return nil, err
	}
	done = obs.StartPhase(s.met.decrypt, tr, "decrypt")
	ids, err := s.user.Decrypt(resp)
	if err != nil {
		return nil, err
	}
	done()
	return ids, nil
}

// RangeSearch returns the IDs of records whose attribute value lies in the
// inclusive range [lo, hi]. It is an extension over the paper's one-sided
// conditions. Two strategies are available:
//
//   - Default: both one-sided conditions resolve to token lists that are
//     merged into a single SearchRequest — one cloud round trip and one
//     verification for the whole range — and the intersection is taken
//     client side, so completeness follows from the completeness of each
//     side.
//   - With Params.PrefixIndex: the range decomposes into its canonical
//     prefix cover and resolves as exact keyword lookups — fewer fetched
//     records, one verified result set per cover node.
func (s *Scheme) RangeSearch(attr string, lo, hi uint64) ([]uint64, error) {
	if lo > hi {
		return nil, fmt.Errorf("slicer: empty range [%d,%d]", lo, hi)
	}
	s.met.ranges.Inc()
	if s.owner.Params().PrefixIndex {
		return s.prefixRangeSearch(attr, lo, hi)
	}
	bits := s.owner.Params().Bits
	maxVal := uint64(1)<<uint(bits) - 1
	if bits == 64 {
		maxVal = ^uint64(0)
	}
	if hi > maxVal {
		return nil, fmt.Errorf("slicer: range bound %d exceeds %d-bit values", hi, bits)
	}

	// a in [lo,hi]  <=>  a > lo-1  AND  a < hi+1, with saturated bounds
	// handled by dropping the vacuous side.
	haveLower, haveUpper := lo > 0, hi < maxVal
	switch {
	case haveLower && haveUpper:
		return s.searchPair(
			Query{Attr: attr, Op: OpGreater, Value: lo - 1},
			Query{Attr: attr, Op: OpLess, Value: hi + 1},
			intersectSorted)
	case haveLower:
		return s.Search(Query{Attr: attr, Op: OpGreater, Value: lo - 1})
	case haveUpper:
		return s.Search(Query{Attr: attr, Op: OpLess, Value: hi + 1})
	default:
		// The range covers the whole domain: equivalent to a < max with the
		// equality at max unioned in.
		return s.searchPair(
			Query{Attr: attr, Op: OpLess, Value: maxVal},
			Query{Attr: attr, Op: OpEqual, Value: maxVal},
			unionSorted)
	}
}

// searchPair answers two queries with one cloud round trip: their token
// lists merge into a single SearchRequest, the response is verified once
// (Algorithm 5 is per token, so verifying the merged response is exactly
// verifying both halves), and each query's result slice is decrypted
// separately before combining. The cloud keeps results in token order,
// which makes the split well defined.
func (s *Scheme) searchPair(a, b Query, combine func(x, y []uint64) []uint64) ([]uint64, error) {
	reqA, err := s.user.Token(a)
	if err != nil {
		return nil, err
	}
	reqB, err := s.user.Token(b)
	if err != nil {
		return nil, err
	}
	merged := &SearchRequest{Tokens: make([]SearchToken, 0, len(reqA.Tokens)+len(reqB.Tokens))}
	merged.Tokens = append(merged.Tokens, reqA.Tokens...)
	merged.Tokens = append(merged.Tokens, reqB.Tokens...)
	s.met.roundTrips.Inc()
	t0 := s.met.search.Start()
	resp, err := s.cloud.Search(merged)
	if err != nil {
		return nil, err
	}
	s.met.search.ObserveSince(t0)
	if err := core.VerifyResponseObserved(s.owner.AccumulatorPub(), s.owner.Ac(), merged, resp, s.met.verify, nil); err != nil {
		return nil, err
	}
	split := len(reqA.Tokens)
	idsA, err := s.user.Decrypt(&SearchResponse{Results: resp.Results[:split]})
	if err != nil {
		return nil, err
	}
	idsB, err := s.user.Decrypt(&SearchResponse{Results: resp.Results[split:]})
	if err != nil {
		return nil, err
	}
	return combine(idsA, idsB), nil
}

// prefixRangeSearch answers [lo, hi] through the prefix-cover index.
func (s *Scheme) prefixRangeSearch(attr string, lo, hi uint64) ([]uint64, error) {
	done := obs.StartPhase(s.met.token, nil, "token")
	req, err := s.user.RangeTokens(attr, lo, hi)
	if err != nil {
		return nil, err
	}
	done()
	s.met.roundTrips.Inc()
	t0 := s.met.search.Start()
	resp, err := s.cloud.Search(req)
	if err != nil {
		return nil, err
	}
	s.met.search.ObserveSince(t0)
	if err := core.VerifyResponseObserved(s.owner.AccumulatorPub(), s.owner.Ac(), req, resp, s.met.verify, nil); err != nil {
		return nil, err
	}
	t0 = s.met.decrypt.Start()
	ids, err := s.user.Decrypt(resp)
	if err != nil {
		return nil, err
	}
	s.met.decrypt.ObserveSince(t0)
	return ids, nil
}

// Condition is one attribute condition of a conjunctive search.
type Condition struct {
	Attr string
	// Lo and Hi bound the attribute inclusively. Use Lo==0 / Hi==MaxValue
	// for one-sided conditions.
	Lo, Hi uint64
}

// MaxValue returns the largest representable value of the deployment.
func (s *Scheme) MaxValue() uint64 {
	bits := s.owner.Params().Bits
	if bits >= 64 {
		return ^uint64(0)
	}
	return uint64(1)<<uint(bits) - 1
}

// ConjunctiveSearch returns the IDs of records satisfying every condition
// (an AND across attributes — e.g. age in [30,60] AND heart_rate > 100).
// Conditions are independent verified range searches, so they run
// concurrently (the Cloud is safe for concurrent queries); the intersection
// happens client side, so the result inherits each side's completeness.
// This extends the paper's multi-attribute extension (§V-F) with
// multi-condition queries. ConjunctiveSearch must not race Insert on the
// same Scheme — the usual single-writer discipline for Scheme mutations.
func (s *Scheme) ConjunctiveSearch(conds []Condition) ([]uint64, error) {
	if len(conds) == 0 {
		return nil, fmt.Errorf("slicer: conjunctive search needs at least one condition")
	}
	s.met.conj.Inc()
	results := make([][]uint64, len(conds))
	errs := make([]error, len(conds))
	var wg sync.WaitGroup
	for i, c := range conds {
		wg.Add(1)
		go func(i int, c Condition) {
			defer wg.Done()
			ids, err := s.RangeSearch(c.Attr, c.Lo, c.Hi)
			if err != nil {
				errs[i] = fmt.Errorf("condition %d (%s in [%d,%d]): %w", i, c.Attr, c.Lo, c.Hi, err)
				return
			}
			results[i] = ids
		}(i, c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	acc := results[0]
	for _, ids := range results[1:] {
		acc = intersectSorted(acc, ids)
	}
	if len(acc) == 0 {
		return nil, nil
	}
	return acc, nil
}

// StatesLen reports how many keywords the deployment tracks (diagnostics).
func (s *Scheme) StatesLen() int { return statesLen(s.owner.StatesSnapshot()) }

func statesLen(t *store.TrapdoorStates) int { return t.Len() }

func intersectSorted(a, b []uint64) []uint64 {
	out := make([]uint64, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func unionSorted(a, b []uint64) []uint64 {
	out := make([]uint64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j == len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i == len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
