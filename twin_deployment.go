package slicer

import (
	"crypto/rand"
	"encoding/json"
	"fmt"

	"slicer/internal/audit"
	"slicer/internal/chain"
	"slicer/internal/contract"
	"slicer/internal/core"
)

// TwinDeployment combines the deletion/update extension with the on-chain
// fair-exchange flow: one blockchain network hosts two Slicer contract
// instances (one per twin instance), each committing its own accumulator
// digest. A verified search escrows a fee per instance and both halves are
// verified on chain; the effective result is the set difference of the two
// settled halves.
type TwinDeployment struct {
	owner *core.TwinOwner
	user  *core.TwinUser
	cloud *core.TwinCloud

	network    *chain.Network
	addrs      [2]Address // contract addresses: [0]=insert instance, [1]=delete instance
	validators []Address

	OwnerAddr Address
	UserAddr  Address
	CloudAddr Address

	aud       *audit.Ledger
	audTenant string
}

// AttachAudit journals the twin deployment's per-half settle/refund events
// into led, stamped with tenant. A nil ledger detaches.
func (d *TwinDeployment) AttachAudit(led *audit.Ledger, tenant string) {
	d.aud = led
	d.audTenant = tenant
}

// TwinOutcome reports a twin fair-exchange search.
type TwinOutcome struct {
	IDs     []uint64 // nil unless both halves settled
	Settled bool
	GasUsed uint64 // total verification gas across both instances
}

// NewTwinDeployment boots the chain, deploys both contract instances and
// builds the twin scheme.
func NewTwinDeployment(cfg DeploymentConfig, db []Record) (*TwinDeployment, error) {
	owner, err := core.NewTwinOwner(cfg.Params)
	if err != nil {
		return nil, err
	}
	built, err := owner.Build(db)
	if err != nil {
		return nil, err
	}
	cloud, err := core.NewTwinCloud(
		owner.Add.CloudInit(built.Add.Index),
		owner.Del.CloudInit(built.Del.Index),
		core.WitnessCached,
	)
	if err != nil {
		return nil, err
	}
	user, err := core.NewTwinUser(owner.ClientState())
	if err != nil {
		return nil, err
	}

	d := &TwinDeployment{
		owner:     owner,
		user:      user,
		cloud:     cloud,
		OwnerAddr: chain.AddressFromString("twin-owner"),
		UserAddr:  chain.AddressFromString("twin-user"),
		CloudAddr: chain.AddressFromString("twin-cloud"),
	}
	registry := chain.NewRegistry()
	if err := contract.Register(registry); err != nil {
		return nil, err
	}
	names := cfg.Validators
	if len(names) == 0 {
		names = []string{"validator-0", "validator-1", "validator-2"}
	}
	d.validators = make([]Address, len(names))
	for i, n := range names {
		d.validators[i] = chain.AddressFromString(n)
	}
	balance := cfg.InitialBalance
	if balance == 0 {
		balance = 1_000_000_000_000
	}
	d.network, err = chain.NewNetwork(registry, d.validators, map[Address]uint64{
		d.OwnerAddr: balance, d.UserAddr: balance, d.CloudAddr: balance,
	})
	if err != nil {
		return nil, err
	}

	for i, inst := range d.owners() {
		tx := contract.DeployTx(d.OwnerAddr, d.nonce(d.OwnerAddr),
			inst.AccumulatorPub().Marshal(), inst.Ac(), 10_000_000)
		r, err := d.mine(tx)
		if err != nil {
			return nil, err
		}
		if !r.Status {
			return nil, fmt.Errorf("slicer: twin contract %d deployment reverted: %s", i, r.Err)
		}
		d.addrs[i] = r.ContractAddress
	}
	return d, nil
}

func (d *TwinDeployment) owners() [2]*core.Owner {
	return [2]*core.Owner{d.owner.Add, d.owner.Del}
}

// Balance reads an account balance.
func (d *TwinDeployment) Balance(a Address) uint64 { return d.network.Leader().Balance(a) }

func (d *TwinDeployment) mine(tx *chain.Transaction) (*Receipt, error) {
	if err := d.network.SubmitTx(tx); err != nil {
		return nil, err
	}
	if _, err := d.network.Step(); err != nil {
		return nil, err
	}
	r, ok := d.network.Leader().Receipt(tx.Hash())
	if !ok {
		return nil, fmt.Errorf("slicer: receipt missing")
	}
	return r, nil
}

func (d *TwinDeployment) nonce(a Address) uint64 {
	return d.network.Leader().NextNonce(a)
}

// refreshDigests posts both instances' current digests after a mutation.
func (d *TwinDeployment) refreshDigests() error {
	for i, inst := range d.owners() {
		r, err := d.mine(&chain.Transaction{
			From: d.OwnerAddr, To: d.addrs[i], Nonce: d.nonce(d.OwnerAddr),
			GasLimit: 1_000_000, Data: contract.SetAcData(inst.Ac()),
		})
		if err != nil {
			return err
		}
		if !r.Status {
			return fmt.Errorf("slicer: twin SetAc %d reverted: %s", i, r.Err)
		}
	}
	return nil
}

func (d *TwinDeployment) applyAndRefresh(up *core.TwinUpdate) error {
	if err := d.cloud.ApplyUpdate(up); err != nil {
		return err
	}
	d.user.Add.UpdateStates(d.owner.Add.StatesSnapshot())
	d.user.Del.UpdateStates(d.owner.Del.StatesSnapshot())
	return d.refreshDigests()
}

// Insert adds new records and refreshes the on-chain digests.
func (d *TwinDeployment) Insert(records []Record) error {
	up, err := d.owner.Insert(records)
	if err != nil {
		return err
	}
	return d.applyAndRefresh(up)
}

// Delete removes records (with their exact original attribute values).
func (d *TwinDeployment) Delete(records []Record) error {
	up, err := d.owner.Delete(records)
	if err != nil {
		return err
	}
	return d.applyAndRefresh(up)
}

// Update replaces a record under a fresh ID.
func (d *TwinDeployment) Update(old, newRecord Record) error {
	up, err := d.owner.Update(old, newRecord)
	if err != nil {
		return err
	}
	return d.applyAndRefresh(up)
}

// VerifiedSearch runs the fair-exchange flow against both instances. The
// fee is escrowed per instance (half each, minimum 1); the outcome settles
// only if both halves verify. Fairness is per instance: a cloud that cheats
// on either half forfeits that half's fee.
func (d *TwinDeployment) VerifiedSearch(q Query, fee uint64) (*TwinOutcome, error) {
	if fee < 2 {
		return nil, fmt.Errorf("slicer: twin search fee must be at least 2")
	}
	req, err := d.user.Token(q)
	if err != nil {
		return nil, err
	}
	halves := [2]*core.SearchRequest{req.Add, req.Del}
	resp := &core.TwinResponse{}
	outcome := &TwinOutcome{Settled: true}

	for i := range halves {
		inst := d.owners()[i]
		// The delete instance may legitimately have no matching slices.
		tokens := halves[i].Tokens
		th, err := contract.TokensHash(tokens)
		if err != nil {
			return nil, err
		}
		var reqID TxHash
		if _, err := rand.Read(reqID[:]); err != nil {
			return nil, err
		}
		r, err := d.mine(&chain.Transaction{
			From: d.UserAddr, To: d.addrs[i], Nonce: d.nonce(d.UserAddr),
			Value: fee / 2, GasLimit: 1_000_000,
			Data: contract.RequestData(reqID, d.CloudAddr, th),
		})
		if err != nil {
			return nil, err
		}
		if !r.Status {
			return nil, fmt.Errorf("slicer: twin escrow %d reverted: %s", i, r.Err)
		}

		var half *core.SearchResponse
		if i == 0 {
			half, err = d.cloud.Add.Search(halves[i])
			resp.Add = half
		} else {
			half, err = d.cloud.Del.Search(halves[i])
			resp.Del = half
		}
		if err != nil {
			return nil, err
		}
		data, err := contract.SubmitData(reqID, inst.AccumulatorPub().Marshal(), inst.Ac(), half.Results)
		if err != nil {
			return nil, err
		}
		r, err = d.mine(&chain.Transaction{
			From: d.CloudAddr, To: d.addrs[i], Nonce: d.nonce(d.CloudAddr),
			GasLimit: 50_000_000, Data: data,
		})
		if err != nil {
			return nil, err
		}
		if !r.Status {
			return nil, fmt.Errorf("slicer: twin submission %d reverted: %s", i, r.Err)
		}
		outcome.GasUsed += r.GasUsed
		instName := [2]string{"insert", "delete"}[i]
		if len(r.ReturnData) == 1 && r.ReturnData[0] == 1 {
			d.aud.Log(audit.Event{
				Kind:   audit.KindSettle,
				Tenant: d.audTenant,
				Detail: fmt.Sprintf("twin %s half, request %x… settled, gas %d", instName, reqID[:8], r.GasUsed),
			})
		} else {
			outcome.Settled = false
			ev := &audit.Evidence{
				Ac:         inst.Ac().Bytes(),
				AccPub:     inst.AccumulatorPub().Marshal(),
				TokenIndex: -1,
				RequestID:  reqID[:],
				GasUsed:    r.GasUsed,
				ReturnData: r.ReturnData,
			}
			if b, err := json.Marshal(halves[i]); err == nil {
				ev.Tokens = b
			}
			if b, err := json.Marshal(half); err == nil {
				ev.Response = b
			}
			detail := fmt.Sprintf("twin %s half, request %x… refunded", instName, reqID[:8])
			if verr := core.VerifyResponse(inst.AccumulatorPub(), inst.Ac(), halves[i], half); verr != nil {
				if ve, ok := core.AsVerificationError(verr); ok {
					ev.Phase = ve.Phase
					ev.TokenIndex = ve.TokenIndex
				}
				detail += ": " + verr.Error()
			}
			d.aud.Log(audit.Event{
				Kind: audit.KindRefund, Outcome: audit.OutcomeFail,
				Tenant: d.audTenant, Detail: detail, Evidence: ev,
			})
		}
	}
	if outcome.Settled {
		ids, err := d.user.Decrypt(resp)
		if err != nil {
			return nil, err
		}
		outcome.IDs = ids
	}
	return outcome, nil
}
