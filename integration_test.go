package slicer

import (
	"testing"

	"slicer/internal/workload"
)

// TestMediumScaleIntegration exercises the whole stack at a few thousand
// records: randomized verified queries against plaintext ground truth,
// a batch of inserts, an on-chain fair-exchange round and a freshness
// check. Skipped under -short.
func TestMediumScaleIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("medium-scale integration skipped in -short mode")
	}
	const n = 5000
	db := workload.Generate(workload.Config{N: n, Bits: 8, Seed: 77})
	d, err := NewDeployment(DeploymentConfig{Params: Params{
		Bits: 8, TrapdoorBits: 512, AccumulatorBits: 512,
	}}, db)
	if err != nil {
		t.Fatalf("NewDeployment: %v", err)
	}

	// Off-chain verified queries against ground truth.
	scheme := &Scheme{owner: d.owner, user: d.user, cloud: d.cloud}
	queries := workload.Queries(workload.Config{N: n, Bits: 8, Seed: 78}, workload.Mixed, 20)
	for _, q := range queries {
		got, err := scheme.Search(q)
		if err != nil {
			t.Fatalf("Search(%v %d): %v", q.Op, q.Value, err)
		}
		want := workload.Answer(db, q)
		sortU64(want)
		if !equalU64(got, want) {
			t.Fatalf("Search(%v %d): %d ids, want %d", q.Op, q.Value, len(got), len(want))
		}
	}

	// Insert a batch through the full deployment (cloud delta + on-chain
	// digest refresh), then spot-check.
	extra := workload.Generate(workload.Config{N: 500, Bits: 8, Seed: 79, FirstID: n + 1})
	if _, err := d.Insert(extra); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	all := append(append([]Record(nil), db...), extra...)
	for _, q := range []Query{Equal(extra[0].Attrs[0].Value), Less(64), Greater(192)} {
		got, err := scheme.Search(q)
		if err != nil {
			t.Fatalf("post-insert Search: %v", err)
		}
		want := workload.Answer(all, q)
		sortU64(want)
		if !equalU64(got, want) {
			t.Fatalf("post-insert Search(%v %d) mismatch", q.Op, q.Value)
		}
	}

	// Fair exchange on chain at this scale.
	out, err := d.VerifiedSearch(Equal(extra[0].Attrs[0].Value), 1234)
	if err != nil {
		t.Fatalf("VerifiedSearch: %v", err)
	}
	if !out.Settled {
		t.Fatal("medium-scale on-chain search did not settle")
	}
	if err := d.VerifyFreshness(); err != nil {
		t.Fatalf("VerifyFreshness: %v", err)
	}
}
