// Dynamic data on chain: the twin-instance extension (§V-F) combined with
// the fair-exchange flow. Records are inserted, deleted and updated; every
// mutation refreshes the on-chain accumulator digests of both instances,
// and every search settles through the smart contract against the current
// state.
//
//	go run ./examples/dynamic
package main

import (
	"fmt"
	"log"

	"slicer"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// An inventory of listing prices (8-bit demo domain).
	db := []slicer.Record{
		slicer.NewRecord(1, 35),
		slicer.NewRecord(2, 120),
		slicer.NewRecord(3, 35),
		slicer.NewRecord(4, 200),
	}
	params := slicer.Params{Bits: 8, TrapdoorBits: 512, AccumulatorBits: 512}

	fmt.Println("deploying twin contracts (insert + delete instances) ...")
	d, err := slicer.NewTwinDeployment(slicer.DeploymentConfig{Params: params}, db)
	if err != nil {
		return err
	}

	const fee = 2000
	search := func(label string, q slicer.Query) error {
		out, err := d.VerifiedSearch(q, fee)
		if err != nil {
			return err
		}
		fmt.Printf("%-34s settled=%v gas=%-6d -> %v\n", label, out.Settled, out.GasUsed, out.IDs)
		return nil
	}

	if err := search("price == 35:", slicer.Equal(35)); err != nil {
		return err
	}

	fmt.Println("\ndelisting record 1 (price 35) ...")
	if err := d.Delete([]slicer.Record{slicer.NewRecord(1, 35)}); err != nil {
		return err
	}
	if err := search("price == 35 after delete:", slicer.Equal(35)); err != nil {
		return err
	}

	fmt.Println("\nrepricing record 2: 120 -> 45 (relisted as record 5) ...")
	if err := d.Update(slicer.NewRecord(2, 120), slicer.NewRecord(5, 45)); err != nil {
		return err
	}
	if err := search("price < 100 after update:", slicer.Less(100)); err != nil {
		return err
	}

	fmt.Println("\nlisting record 6 (price 30) ...")
	if err := d.Insert([]slicer.Record{slicer.NewRecord(6, 30)}); err != nil {
		return err
	}
	if err := search("price < 100 after insert:", slicer.Less(100)); err != nil {
		return err
	}

	fmt.Println("\nevery mutation refreshed both on-chain digests; every result settled through Algorithm 5")
	return nil
}
