// Marketplace: the paper's fairness story end to end, on the blockchain
// substrate. A data user pays per search; the smart contract escrows the
// fee, verifies the cloud's results on chain, and settles to an honest
// cloud or refunds the user when the cloud cheats — so neither a malicious
// cloud nor a repudiating user can defraud the other.
//
//	go run ./examples/marketplace
package main

import (
	"flag"
	"fmt"
	"log"

	"slicer"
	"slicer/internal/audit"
	"slicer/internal/durable"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	tenant := flag.String("tenant", "marketplace", "tenant tag stamped on every audit record")
	auditDir := flag.String("audit-dir", "", "optional tamper-evident audit ledger directory; round 2's refund lands there with the full evidence bundle")
	flag.Parse()

	// Transaction values of a business database (16-bit cents).
	db := []slicer.Record{
		slicer.NewRecord(1, 1999),
		slicer.NewRecord(2, 50000),
		slicer.NewRecord(3, 1999),
		slicer.NewRecord(4, 12750),
		slicer.NewRecord(5, 830),
		slicer.NewRecord(6, 60000),
	}
	params := slicer.Params{Bits: 16, TrapdoorBits: 512, AccumulatorBits: 512}

	fmt.Println("booting 3-validator chain, deploying the Slicer contract ...")
	d, err := slicer.NewDeployment(slicer.DeploymentConfig{Params: params}, db)
	if err != nil {
		return fmt.Errorf("deployment: %w", err)
	}
	fmt.Printf("contract at %s (deployment gas %d)\n\n", d.ContractAddress(), d.DeployGas())

	var led *audit.Ledger
	if *auditDir != "" {
		led, err = audit.Open(audit.Options{Dir: *auditDir, Fsync: durable.FsyncAlways})
		if err != nil {
			return fmt.Errorf("audit ledger: %w", err)
		}
		defer led.Close()
		d.AttachAudit(led, *tenant)
		fmt.Printf("audit ledger at %s (tenant %q)\n", *auditDir, *tenant)
	}

	const fee = 5_000
	balances := func(when string) {
		fmt.Printf("%-28s user=%d cloud=%d\n", when,
			d.Balance(d.UserAddr), d.Balance(d.CloudAddr))
	}
	balances("initial balances:")

	// Round 1: honest cloud. The user escrows the fee with the token list;
	// the cloud's proofs verify on chain; the contract pays the cloud.
	fmt.Println("\n-- round 1: honest cloud, query: value > 10000 --")
	outcome, err := d.VerifiedSearch(slicer.Greater(10000), fee)
	if err != nil {
		return err
	}
	fmt.Printf("on-chain verification: settled=%v gas=%d\n", outcome.Settled, outcome.GasUsed)
	fmt.Println("matching record IDs:", outcome.IDs)
	balances("after settlement:")

	// Round 2: the cloud turns malicious and drops a result (say, to hide
	// a transaction). On-chain verification fails; the escrow returns to
	// the user; the cloud worked for nothing.
	fmt.Println("\n-- round 2: malicious cloud drops a matching record --")
	d.SetCloudTamper(func(resp *slicer.SearchResponse) {
		for i := range resp.Results {
			if n := len(resp.Results[i].ER); n > 0 {
				resp.Results[i].ER = resp.Results[i].ER[:n-1]
				return
			}
		}
	})
	outcome, err = d.VerifiedSearch(slicer.Greater(10000), fee)
	if err != nil {
		return err
	}
	fmt.Printf("on-chain verification: settled=%v gas=%d\n", outcome.Settled, outcome.GasUsed)
	if outcome.IDs == nil {
		fmt.Println("results rejected, payment refunded to the user")
	}
	balances("after refund:")

	// Round 3: honest again — and note the user cannot repudiate: the
	// verification ran on chain, not on the user's machine, so a "the
	// results were wrong" claim cannot claw the fee back.
	d.SetCloudTamper(nil)
	fmt.Println("\n-- round 3: honest cloud, insertion, fresh query --")
	receipt, err := d.Insert([]slicer.Record{slicer.NewRecord(7, 45000)})
	if err != nil {
		return err
	}
	fmt.Printf("owner refreshed on-chain ADS digest (gas %d)\n", receipt.GasUsed)
	outcome, err = d.VerifiedSearch(slicer.Greater(10000), fee)
	if err != nil {
		return err
	}
	fmt.Printf("on-chain verification: settled=%v gas=%d\n", outcome.Settled, outcome.GasUsed)
	fmt.Println("matching record IDs (includes the new record):", outcome.IDs)
	balances("final balances:")

	fmt.Printf("\nchain height: %d blocks across 3 validators\n", d.BlockHeight())
	if led != nil {
		if err := led.Sync(); err != nil {
			return fmt.Errorf("audit sync: %w", err)
		}
		seq, hash := led.Head()
		fmt.Printf("audit ledger head #%d %s — re-check offline with: slicer-cli audit verify -audit-dir %s\n",
			seq, hash, *auditDir)
	}
	return nil
}
