// Distributed deployment: the cloud and the blockchain run as TCP servers
// (the same servers cmd/slicer-cloud and cmd/slicer-chain expose) and the
// owner/user drive the full protocol over the wire — initialization, a
// remote verified search with on-chain settlement, and a forward-secure
// insert shipped as a delta.
//
//	go run ./examples/distributed
//	go run ./examples/distributed -admin 127.0.0.1:7499   # inspect /metrics live
package main

import (
	"crypto/rand"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"slicer"
	"slicer/internal/chain"
	"slicer/internal/contract"
	"slicer/internal/core"
	"slicer/internal/obs"
	"slicer/internal/wire"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	admin := flag.String("admin", "", "optional admin HTTP address serving /metrics for both servers")
	tenant := flag.String("tenant", "acme", "tenant tag stamped on every RPC; servers label per-tenant metrics and audit records with it")
	flag.Parse()

	// Both servers and the client pipeline share one registry, so a single
	// /metrics scrape shows the whole deployment.
	reg := obs.NewRegistry()
	logger := obs.Nop()
	if *admin != "" {
		var err error
		if logger, err = obs.NewLogger(os.Stderr, "info", "text"); err != nil {
			return err
		}
	}
	verifyDur := reg.Histogram(obs.Label("slicer_pipeline_seconds", "phase", "verify"),
		"Latency of one client search-pipeline phase, by phase.")

	// --- Servers (in production: separate machines) ---
	cloudSrv := wire.NewCloudServer()
	cloudSrv.SetObservability(reg, logger)
	cloudAddr, err := cloudSrv.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer cloudSrv.Close()

	// A latency objective over the cloud's search RPC: the engine reads the
	// sliding-window histogram the wire server already maintains, so there
	// is nothing extra to instrument.
	slos := []obs.Objective{{
		Name:      "search",
		Metric:    wire.RPCDurationSeries("cloud", wire.MethodCloudSearch),
		Target:    250 * time.Millisecond,
		GoodRatio: 0.99,
		Window:    2 * time.Minute,
	}}
	engine := obs.NewEngine(reg, slos, obs.EngineOptions{Logger: logger})
	cloudSrv.AttachSLO(engine)

	if *admin != "" {
		// The admin endpoint serves the cloud's trace store: propagated
		// traces land there as searches arrive (GET /debug/traces), and
		// /debug/slo reports the objective states.
		adm, err := obs.StartAdminOpts(*admin, obs.AdminOptions{
			Registry: reg, Traces: cloudSrv.Traces(), Logger: logger, SLO: engine,
		})
		if err != nil {
			return err
		}
		defer adm.Close()
		fmt.Printf("admin endpoint: http://%s/metrics\n", adm.Addr())
	}

	registry := chain.NewRegistry()
	if err := contract.Register(registry); err != nil {
		return err
	}
	ownerAcct := chain.AddressFromString("owner")
	userAcct := chain.AddressFromString("user")
	cloudAcct := chain.AddressFromString("cloud")
	validators := []chain.Address{
		chain.AddressFromString("validator-a"),
		chain.AddressFromString("validator-b"),
		chain.AddressFromString("validator-c"),
	}
	network, err := chain.NewNetwork(registry, validators, map[chain.Address]uint64{
		ownerAcct: 1 << 40, userAcct: 1 << 40, cloudAcct: 1 << 40,
	})
	if err != nil {
		return err
	}
	chainSrv := wire.NewChainServer(network)
	chainSrv.SetObservability(reg, logger)
	chainAddr, err := chainSrv.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer chainSrv.Close()
	fmt.Printf("cloud server: %s\nchain server: %s (3 validators)\n\n", cloudAddr, chainAddr)

	// --- Data owner: build locally, initialize the remote parties ---
	params := core.Params{Bits: 16, TrapdoorBits: 512, AccumulatorBits: 512}
	owner, err := core.NewOwner(params)
	if err != nil {
		return err
	}
	db := []slicer.Record{
		slicer.NewRecord(1, 120), slicer.NewRecord(2, 7340),
		slicer.NewRecord(3, 512), slicer.NewRecord(4, 60000),
		slicer.NewRecord(5, 512),
	}
	built, err := owner.Build(db)
	if err != nil {
		return err
	}

	cloudCli, err := wire.DialCloudOpts(cloudAddr, wire.ClientOptions{Tenant: *tenant})
	if err != nil {
		return err
	}
	defer cloudCli.Close()
	if err := cloudCli.Init(owner.CloudInit(built.Index), true); err != nil {
		return fmt.Errorf("remote cloud init: %w", err)
	}
	stats, err := cloudCli.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("owner shipped index (%d entries, %d bytes) and ADS (%d primes) to the cloud\n",
		stats.IndexEntries, stats.IndexBytes, stats.Primes)

	chainCli, err := wire.DialChainOpts(chainAddr, wire.ClientOptions{Tenant: *tenant})
	if err != nil {
		return err
	}
	defer chainCli.Close()
	deployRc, err := chainCli.Mine(contract.DeployTx(ownerAcct, 0, owner.AccumulatorPub().Marshal(), owner.Ac(), 50_000_000))
	if err != nil {
		return err
	}
	if !deployRc.Status {
		return fmt.Errorf("deployment reverted: %s", deployRc.Err)
	}
	contractAddr := deployRc.ContractAddress
	fmt.Printf("owner deployed contract at %s (gas %d)\n\n", contractAddr, deployRc.GasUsed)

	// --- Data user: verified search with on-chain settlement ---
	user, err := core.NewUser(owner.ClientState())
	if err != nil {
		return err
	}
	query := slicer.Less(1000)
	req, err := user.Token(query)
	if err != nil {
		return err
	}
	th, err := contract.TokensHash(req.Tokens)
	if err != nil {
		return err
	}
	var reqID chain.Hash
	if _, err := rand.Read(reqID[:]); err != nil {
		return err
	}
	nonce, err := chainCli.Nonce(userAcct)
	if err != nil {
		return err
	}
	// One trace follows the whole fair exchange across all three machines:
	// remote spans come back in the RPC responses and are spliced in.
	tr := obs.NewTrace("distributed verified search")
	const fee = 2500
	endEscrow := tr.Span("escrow")
	if rc, err := chainCli.MineTraced(&chain.Transaction{
		From: userAcct, To: contractAddr, Nonce: nonce, Value: fee,
		GasLimit: 1_000_000, Data: contract.RequestData(reqID, cloudAcct, th),
	}, tr); err != nil || !rc.Status {
		return fmt.Errorf("escrow request failed: %v %s", err, rc.Err)
	}
	endEscrow()
	fmt.Printf("user escrowed %d for query 'value < 1000' (%d tokens)\n", fee, len(req.Tokens))

	endSearch := tr.Span("cloud_search")
	resp, err := cloudCli.SearchTraced(req, tr)
	if err != nil {
		return fmt.Errorf("remote search: %w", err)
	}
	endSearch()
	submit, err := contract.SubmitData(reqID, owner.AccumulatorPub().Marshal(), owner.Ac(), resp.Results)
	if err != nil {
		return err
	}
	nonce, err = chainCli.Nonce(cloudAcct)
	if err != nil {
		return err
	}
	endSettle := tr.Span("settle")
	rc, err := chainCli.MineTraced(&chain.Transaction{
		From: cloudAcct, To: contractAddr, Nonce: nonce,
		GasLimit: 50_000_000, Data: submit,
	}, tr)
	if err != nil {
		return err
	}
	if !rc.Status {
		return fmt.Errorf("submission reverted: %s", rc.Err)
	}
	endSettle()
	settled := len(rc.ReturnData) == 1 && rc.ReturnData[0] == 1
	fmt.Printf("cloud submitted results; on-chain verification settled=%v (gas %d)\n", settled, rc.GasUsed)
	endDecrypt := tr.Span("decrypt")
	ids, err := user.Decrypt(resp)
	if err != nil {
		return err
	}
	endDecrypt()
	fmt.Println("decrypted matching record IDs:", ids)

	fmt.Println("\nmerged cross-machine trace (party column: who measured the span):")
	_ = tr.WriteText(os.Stdout)

	// --- Owner: forward-secure insert shipped over the wire ---
	up, err := owner.Insert([]slicer.Record{slicer.NewRecord(6, 640)})
	if err != nil {
		return err
	}
	if err := cloudCli.Update(up); err != nil {
		return fmt.Errorf("remote update: %w", err)
	}
	user.UpdateStates(owner.StatesSnapshot())
	nonce, err = chainCli.Nonce(ownerAcct)
	if err != nil {
		return err
	}
	if rc, err := chainCli.Mine(&chain.Transaction{
		From: ownerAcct, To: contractAddr, Nonce: nonce,
		GasLimit: 1_000_000, Data: contract.SetAcData(owner.Ac()),
	}); err != nil || !rc.Status {
		return fmt.Errorf("SetAc failed: %v", err)
	}
	fmt.Println("\nowner inserted record 6 (value 640) and refreshed the on-chain digest")

	req, err = user.Token(query)
	if err != nil {
		return err
	}
	resp, err = cloudCli.Search(req)
	if err != nil {
		return err
	}
	if err := core.VerifyResponseObserved(owner.AccumulatorPub(), owner.Ac(), req, resp, verifyDur, nil); err != nil {
		return fmt.Errorf("verification after insert: %w", err)
	}
	ids, err = user.Decrypt(resp)
	if err != nil {
		return err
	}
	fmt.Println("re-ran 'value < 1000' remotely, verified:", ids)

	height, err := chainCli.Height()
	if err != nil {
		return err
	}
	cloudBal, err := chainCli.Balance(cloudAcct)
	if err != nil {
		return err
	}
	fmt.Printf("\nchain height %d; cloud earned %d in search fees\n", height, cloudBal-(1<<40))

	// --- Live telemetry: windowed quantiles + objective states ---
	if win, ok := reg.WindowSnapshotFor(wire.RPCDurationSeries("cloud", wire.MethodCloudSearch)); ok {
		fmt.Printf("\ncloud.search window (last %.0fs): %d calls, p50 %.3fms p99 %.3fms\n",
			win.WindowSeconds, win.Count, win.P50*1e3, win.P99*1e3)
	}
	engine.Evaluate()
	fmt.Println("SLO states:")
	_ = engine.WriteText(os.Stdout)
	return nil
}
