// Medical records: the motivating workload of the paper's introduction —
// privacy-sensitive numerical attributes (ages, vitals) outsourced to an
// untrusted cloud, searched with verified range queries, and extended with
// forward-secure insertions as new patients arrive.
//
//	go run ./examples/medical
package main

import (
	"fmt"
	"log"

	"slicer"
)

// patient is the application-level record; only its numerical attributes
// enter the encrypted index, keyed by a synthetic record ID the hospital
// maps back to its (separately encrypted) full record.
type patient struct {
	id        uint64
	name      string // never leaves the hospital
	age       uint64
	heartRate uint64
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	patients := []patient{
		{1, "Alice", 34, 72},
		{2, "Bob", 61, 88},
		{3, "Carol", 45, 110},
		{4, "Dave", 8, 95},
		{5, "Erin", 70, 64},
		{6, "Frank", 52, 130},
	}
	byID := make(map[uint64]patient, len(patients))

	// Multi-attribute records (§V-F): the attribute name is folded into
	// every tuple, so "age" and "heart_rate" indexes cannot cross-match.
	db := make([]slicer.Record, len(patients))
	for i, p := range patients {
		byID[p.id] = p
		db[i] = slicer.Record{ID: p.id, Attrs: []slicer.AttrValue{
			{Name: "age", Value: p.age},
			{Name: "heart_rate", Value: p.heartRate},
		}}
	}

	scheme, err := slicer.NewScheme(slicer.DefaultParams(8), db)
	if err != nil {
		return fmt.Errorf("build scheme: %w", err)
	}
	fmt.Printf("hospital outsourced %d patient records (attributes: age, heart_rate)\n\n", len(db))

	show := func(label string, ids []uint64) {
		fmt.Printf("%-38s ->", label)
		for _, id := range ids {
			fmt.Printf(" %s(%d)", byID[id].name, id)
		}
		fmt.Println()
	}

	// A researcher (authorized data user) runs verified cohort queries
	// without learning anything beyond the matching record IDs.
	ids, err := scheme.Search(slicer.Query{Attr: "age", Op: slicer.OpGreater, Value: 50})
	if err != nil {
		return err
	}
	show("cohort: age > 50", ids)

	ids, err = scheme.Search(slicer.Query{Attr: "heart_rate", Op: slicer.OpGreater, Value: 100})
	if err != nil {
		return err
	}
	show("alert: heart_rate > 100", ids)

	ids, err = scheme.RangeSearch("age", 30, 60)
	if err != nil {
		return err
	}
	show("trial eligibility: 30 <= age <= 60", ids)

	// New admissions arrive: forward-secure insertion means the cloud
	// cannot link the new entries to any query it answered before.
	fmt.Println("\nadmitting Grace (29, hr 79) and Heidi (58, hr 101) ...")
	newPatients := []patient{{7, "Grace", 29, 79}, {8, "Heidi", 58, 101}}
	var newRecords []slicer.Record
	for _, p := range newPatients {
		byID[p.id] = p
		newRecords = append(newRecords, slicer.Record{ID: p.id, Attrs: []slicer.AttrValue{
			{Name: "age", Value: p.age},
			{Name: "heart_rate", Value: p.heartRate},
		}})
	}
	if err := scheme.Insert(newRecords); err != nil {
		return fmt.Errorf("insert: %w", err)
	}

	ids, err = scheme.Search(slicer.Query{Attr: "heart_rate", Op: slicer.OpGreater, Value: 100})
	if err != nil {
		return err
	}
	show("alert query re-run after admission", ids)

	ids, err = scheme.RangeSearch("age", 30, 60)
	if err != nil {
		return err
	}
	show("trial eligibility re-run", ids)

	fmt.Println("\nevery response above carried accumulator proofs and passed Algorithm 5 verification")
	return nil
}
