// Quickstart: build an encrypted index over a small numerical database,
// run verified equality / order / range searches, and insert new records
// with forward security.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"slicer"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A tiny single-attribute database: record ID -> numerical value
	// (say, sensor readings). Values are 8-bit here; production data uses
	// 16/24/32-bit domains.
	db := []slicer.Record{
		slicer.NewRecord(1, 17),
		slicer.NewRecord(2, 42),
		slicer.NewRecord(3, 42),
		slicer.NewRecord(4, 99),
		slicer.NewRecord(5, 200),
	}

	// NewScheme generates all keys, builds the encrypted index and the
	// authenticated data structure, and wires owner, user and cloud.
	scheme, err := slicer.NewScheme(slicer.DefaultParams(8), db)
	if err != nil {
		return fmt.Errorf("build scheme: %w", err)
	}
	fmt.Println("built encrypted index over", len(db), "records")

	// Every Search below runs the full verified pipeline: the user
	// generates tokens, the cloud searches the encrypted index and attaches
	// an accumulator proof per token, and the response is verified with
	// the same algorithm the smart contract runs before decryption.
	ids, err := scheme.Search(slicer.Equal(42))
	if err != nil {
		return err
	}
	fmt.Println("value == 42     ->", ids)

	ids, err = scheme.Search(slicer.Less(100))
	if err != nil {
		return err
	}
	fmt.Println("value <  100    ->", ids)

	ids, err = scheme.Search(slicer.Greater(42))
	if err != nil {
		return err
	}
	fmt.Println("value >  42     ->", ids)

	// Inclusive range search (both sides verified, intersected locally).
	ids, err = scheme.RangeSearch("", 40, 100)
	if err != nil {
		return err
	}
	fmt.Println("40 <= value <= 100 ->", ids)

	// Dynamic insertion: the owner re-keys touched keywords with the
	// trapdoor permutation (forward security), ships the delta to the
	// cloud and refreshed states to the user.
	if err := scheme.Insert([]slicer.Record{
		slicer.NewRecord(6, 42),
		slicer.NewRecord(7, 3),
	}); err != nil {
		return fmt.Errorf("insert: %w", err)
	}
	ids, err = scheme.Search(slicer.Equal(42))
	if err != nil {
		return err
	}
	fmt.Println("after insert, value == 42 ->", ids)

	return nil
}
