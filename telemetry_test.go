package slicer

import (
	"compress/gzip"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"slicer/internal/core"
	"slicer/internal/obs"
	"slicer/internal/wire"
)

// startObservedCloud boots an instrumented loopback cloud server with an
// indexed 3-record database, returning the server and a closure running one
// Less(100) search (traced when tr != nil).
func startObservedCloud(t *testing.T, reg *obs.Registry) (*wire.CloudServer, func(*obs.Trace)) {
	t.Helper()
	srv := wire.NewCloudServer()
	srv.SetObservability(reg, obs.Nop())
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("cloud listen: %v", err)
	}
	t.Cleanup(func() { srv.Close() })

	owner, err := core.NewOwner(core.Params{Bits: 8, TrapdoorBits: 512, AccumulatorBits: 512})
	if err != nil {
		t.Fatal(err)
	}
	built, err := owner.Build([]Record{NewRecord(1, 10), NewRecord(2, 200), NewRecord(3, 30)})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := wire.DialCloud(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	if err := cli.Init(owner.CloudInit(built.Index), true); err != nil {
		t.Fatalf("cloud init: %v", err)
	}
	user, err := core.NewUser(owner.ClientState())
	if err != nil {
		t.Fatal(err)
	}
	searchOnce := func(tr *obs.Trace) {
		req, err := user.Token(Less(100))
		if err != nil {
			t.Fatal(err)
		}
		if tr != nil {
			if _, err := cli.SearchTraced(req, tr); err != nil {
				t.Fatalf("traced search: %v", err)
			}
		} else if _, err := cli.Search(req); err != nil {
			t.Fatalf("search: %v", err)
		}
	}
	return srv, searchOnce
}

// TestExemplarLinksTrace is the acceptance check for trace exemplars: after
// one traced search, the /metrics exposition must carry an OpenMetrics
// exemplar on a slicer_rpc_request_seconds bucket whose trace_id resolves
// on the SAME admin endpoint's /debug/traces — the p99-to-trace link an
// operator follows when an SLO pages.
func TestExemplarLinksTrace(t *testing.T) {
	reg := obs.NewRegistry()
	srv, search := startObservedCloud(t, reg)

	adm, err := obs.StartAdminOpts("127.0.0.1:0", obs.AdminOptions{
		Registry: reg, Traces: srv.Traces(), Logger: obs.Nop(),
	})
	if err != nil {
		t.Fatalf("StartAdminOpts: %v", err)
	}
	defer adm.Close()

	tr := obs.NewTrace("exemplar search")
	search(tr)

	res, err := http.Get("http://" + adm.Addr() + "/metrics")
	if err != nil {
		t.Fatalf("scrape: %v", err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()

	// An exemplar line: <family>_bucket{...} N # {trace_id="..."} value
	exemplarRe := regexp.MustCompile(`# \{trace_id="([0-9a-f]+)"\} `)
	traceID := ""
	for _, line := range strings.Split(string(body), "\n") {
		if !strings.Contains(line, "slicer_rpc_request_seconds_bucket") ||
			!strings.Contains(line, `method="cloud.search"`) {
			continue
		}
		if m := exemplarRe.FindStringSubmatch(line); m != nil {
			traceID = m[1]
			break
		}
	}
	if traceID == "" {
		t.Fatalf("no exemplar on any cloud.search duration bucket:\n%s", body)
	}
	if traceID != tr.ID() {
		t.Fatalf("exemplar trace_id = %s, want the traced search's %s", traceID, tr.ID())
	}

	// The link must resolve: the exemplar's trace ID fetches the server-side
	// trace from the same admin endpoint.
	res, err = http.Get("http://" + adm.Addr() + "/debug/traces?id=" + traceID)
	if err != nil {
		t.Fatalf("follow exemplar: %v", err)
	}
	rendered, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != 200 || !strings.Contains(string(rendered), "cloud.collect") {
		t.Errorf("exemplar link /debug/traces?id=%s = %d %q, want 200 with the cloud spans",
			traceID, res.StatusCode, rendered)
	}

	// An untraced search must not disturb the exemplar (no trace, no ID).
	search(nil)
	res, err = http.Get("http://" + adm.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body2, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if m := exemplarRe.FindStringSubmatch(string(body2)); m == nil || m[1] != tr.ID() {
		t.Errorf("exemplar lost after an untraced search: %v", m)
	}
}

// TestProfilerCapturesOnBreach is the end-to-end acceptance check for
// trigger-based profiling: a forced SLO breach over real loopback RPCs must
// produce a complete, SIGKILL-safe capture bundle in the data directory,
// and repeated captures must stay bounded at MaxCaptures.
func TestProfilerCapturesOnBreach(t *testing.T) {
	reg := obs.NewRegistry()
	_, search := startObservedCloud(t, reg)

	profDir := filepath.Join(t.TempDir(), "profiles")
	prof, err := obs.NewProfiler(obs.ProfilerOptions{
		Dir:         profDir,
		MaxCaptures: 2,
		CPUDuration: 50 * time.Millisecond,
		MinInterval: -1, // every breach may capture in this test
		Registry:    reg,
		Logger:      obs.Nop(),
	})
	if err != nil {
		t.Fatal(err)
	}

	// An unmeetable objective: no RPC finishes within 1ns, so a handful of
	// searches drive both burn windows far past the 14.4x page threshold.
	engine := obs.NewEngine(reg, []obs.Objective{{
		Name:      "search",
		Metric:    wire.RPCDurationSeries("cloud", wire.MethodCloudSearch),
		Target:    time.Nanosecond,
		GoodRatio: 0.99,
		Window:    time.Minute,
	}}, obs.EngineOptions{Logger: obs.Nop()})
	var captured []string
	engine.OnBreach(func(st obs.SLOStatus) {
		// Synchronous capture so the test observes the bundle deterministically
		// (production wiring uses the async prof.Trigger).
		dir, err := prof.CaptureNow("slo-" + st.Name)
		if err != nil {
			t.Errorf("breach capture: %v", err)
		}
		captured = append(captured, dir)
	})

	for i := 0; i < 5; i++ {
		search(nil)
	}
	st := engine.Evaluate()
	if len(st) != 1 || st[0].State != "breach" {
		t.Fatalf("forced objective did not breach: %+v", st)
	}
	if len(captured) != 1 {
		t.Fatalf("breach captured %d bundles, want 1", len(captured))
	}

	// SIGKILL-safety: the reported bundle is complete on disk — every gzip
	// stream decompresses to the end (a torn capture would not).
	entries, err := os.ReadDir(captured[0])
	if err != nil {
		t.Fatalf("capture bundle unreadable: %v", err)
	}
	sawCPU := false
	for _, ent := range entries {
		if !strings.HasSuffix(ent.Name(), ".gz") {
			continue
		}
		if ent.Name() == "cpu.pprof.gz" {
			sawCPU = true
		}
		f, err := os.Open(filepath.Join(captured[0], ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		gz, err := gzip.NewReader(f)
		if err != nil {
			t.Errorf("%s: not gzip: %v", ent.Name(), err)
			f.Close()
			continue
		}
		if _, err := io.Copy(io.Discard, gz); err != nil {
			t.Errorf("%s: torn gzip stream: %v", ent.Name(), err)
		}
		gz.Close()
		f.Close()
	}
	if !sawCPU {
		// Another test's CPU profile may have been running; the bundle must
		// say so rather than silently lack the profile.
		meta, _ := os.ReadFile(filepath.Join(captured[0], "meta.json"))
		if !strings.Contains(string(meta), "cpuError") {
			t.Errorf("bundle has neither cpu.pprof.gz nor a recorded cpuError: %s", meta)
		}
	}

	// Re-evaluating inside the breach must not capture again...
	engine.Evaluate()
	if len(captured) != 1 {
		t.Fatalf("steady-state breach re-captured (%d)", len(captured))
	}
	// ...and forcing more captures keeps the directory bounded at MaxCaptures.
	for i := 0; i < 3; i++ {
		if _, err := prof.CaptureNow("manual"); err != nil {
			t.Fatalf("manual capture %d: %v", i, err)
		}
	}
	dirs, err := os.ReadDir(profDir)
	if err != nil {
		t.Fatal(err)
	}
	var bundles []string
	for _, d := range dirs {
		if strings.HasPrefix(d.Name(), "capture-") {
			bundles = append(bundles, d.Name())
		}
	}
	if len(bundles) != 2 {
		t.Errorf("profile dir holds %d bundles, want MaxCaptures=2: %v", len(bundles), bundles)
	}
	for _, b := range bundles {
		if !strings.Contains(b, "manual") {
			t.Errorf("retention kept an old bundle over a newer one: %v", bundles)
		}
	}
}
