package slicer

import (
	"testing"

	"slicer/internal/workload"
)

// TestRangeSearchSingleRoundTrip pins the batched default range path: an
// interior range [lo, hi] (both bounds live) resolves with exactly ONE
// SearchRequest to the cloud — the lower- and upper-bound token lists are
// merged and verified as one response — instead of the two round trips the
// two one-sided conditions used to cost. The whole-domain case batches the
// same way.
func TestRangeSearchSingleRoundTrip(t *testing.T) {
	db := workload.Generate(workload.Config{N: 200, Bits: 8, Seed: 77})
	s, err := NewScheme(testParams(8), db)
	if err != nil {
		t.Fatalf("NewScheme: %v", err)
	}
	naive := func(lo, hi uint64) []uint64 {
		var ids []uint64
		for _, rec := range db {
			if v := rec.Attrs[0].Value; v >= lo && v <= hi {
				ids = append(ids, rec.ID)
			}
		}
		sortU64(ids)
		return ids
	}
	cases := []struct {
		name   string
		lo, hi uint64
	}{
		{"interior", 40, 200},
		{"whole-domain", 0, 255},
		{"lower-only", 100, 255},
		{"upper-only", 0, 100},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			before := s.Cloud().SearchCalls()
			got, err := s.RangeSearch("", tc.lo, tc.hi)
			if err != nil {
				t.Fatalf("RangeSearch(%d,%d): %v", tc.lo, tc.hi, err)
			}
			if calls := s.Cloud().SearchCalls() - before; calls != 1 {
				t.Fatalf("RangeSearch(%d,%d) issued %d search round trips, want 1", tc.lo, tc.hi, calls)
			}
			if want := naive(tc.lo, tc.hi); !equalU64(got, want) {
				t.Fatalf("RangeSearch(%d,%d) = %v, want %v", tc.lo, tc.hi, got, want)
			}
		})
	}
}
