package slicer

import (
	"bytes"
	"crypto/rand"
	"encoding/json"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"slicer/internal/audit"
	"slicer/internal/chain"
	"slicer/internal/contract"
	"slicer/internal/core"
	"slicer/internal/durable"
	"slicer/internal/obs"
	"slicer/internal/wire"
)

// tamperProxy sits between the user and the real cloud server at the wire
// level: it forwards request frames untouched and mutates the first
// cloud.search response that passes through — dropping one encrypted result
// from a token's posting, exactly what a cloud hiding a matching record
// looks like on the network. Every later frame is forwarded verbatim.
func tamperProxy(t *testing.T, backend string, tampered *atomic.Int32) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("proxy listen: %v", err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			up, err := net.Dial("tcp", backend)
			if err != nil {
				conn.Close()
				continue
			}
			go proxyConn(conn, up, tampered)
		}
	}()
	return ln.Addr().String()
}

func proxyConn(client, server net.Conn, tampered *atomic.Int32) {
	defer client.Close()
	defer server.Close()
	for {
		var req wire.Request
		if err := wire.ReadMessage(client, &req); err != nil {
			return
		}
		if err := wire.WriteMessage(server, &req); err != nil {
			return
		}
		var resp wire.Response
		if err := wire.ReadMessage(server, &resp); err != nil {
			return
		}
		if req.Method == wire.MethodCloudSearch && tampered.CompareAndSwap(0, 1) {
			var sr core.SearchResponse
			if err := json.Unmarshal(resp.Result, &sr); err == nil {
				mutated := false
				for i := range sr.Results {
					if n := len(sr.Results[i].ER); n > 0 {
						sr.Results[i].ER = sr.Results[i].ER[:n-1]
						mutated = true
						break
					}
				}
				if b, err := json.Marshal(&sr); mutated && err == nil {
					resp.Result = b
				} else {
					tampered.Store(0)
				}
			} else {
				tampered.Store(0)
			}
		}
		if err := wire.WriteMessage(client, &resp); err != nil {
			return
		}
	}
}

// auditRound drives one fair-exchange search over the wire — escrow, cloud
// search through cloudCli, on-chain submission — journaling the outcome into
// led the way slicer-cli and Deployment do: KindSettle on success, KindRefund
// with the full evidence bundle on a failed public verification.
func auditRound(t *testing.T, led *audit.Ledger, owner *core.Owner, user *core.User,
	cloudCli *wire.CloudClient, chainCli *wire.ChainClient,
	contractAddr chain.Address, userAcct, cloudAcct chain.Address,
	q Query, pay uint64) (settled bool, resp *core.SearchResponse) {
	t.Helper()
	req, err := user.Token(q)
	if err != nil {
		t.Fatal(err)
	}
	th, err := contract.TokensHash(req.Tokens)
	if err != nil {
		t.Fatal(err)
	}
	var reqID chain.Hash
	if _, err := rand.Read(reqID[:]); err != nil {
		t.Fatal(err)
	}
	nonce, err := chainCli.Nonce(userAcct)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := chainCli.Mine(&chain.Transaction{
		From: userAcct, To: contractAddr, Nonce: nonce, Value: pay,
		GasLimit: 1_000_000, Data: contract.RequestData(reqID, cloudAcct, th),
	})
	if err != nil || !rc.Status {
		t.Fatalf("escrow: %v %s", err, rc.Err)
	}
	led.Log(audit.Event{Kind: audit.KindSearch, Detail: "escrowed"})

	resp, err = cloudCli.Search(req)
	if err != nil {
		t.Fatalf("cloud search: %v", err)
	}
	submit, err := contract.SubmitData(reqID, owner.AccumulatorPub().Marshal(), owner.Ac(), resp.Results)
	if err != nil {
		t.Fatal(err)
	}
	nonce, err = chainCli.Nonce(cloudAcct)
	if err != nil {
		t.Fatal(err)
	}
	subTx := &chain.Transaction{
		From: cloudAcct, To: contractAddr, Nonce: nonce,
		GasLimit: 50_000_000, Data: submit,
	}
	subTxHash := subTx.Hash()
	rc, err = chainCli.Mine(subTx)
	if err != nil || !rc.Status {
		t.Fatalf("submit: %v %s", err, rc.Err)
	}
	if len(rc.ReturnData) == 1 && rc.ReturnData[0] == 1 {
		led.Log(audit.Event{Kind: audit.KindSettle, Detail: "settled"})
		return true, resp
	}
	ev := &audit.Evidence{
		Ac:         owner.Ac().Bytes(),
		AccPub:     owner.AccumulatorPub().Marshal(),
		TokenIndex: -1,
		RequestID:  reqID[:],
		TxHash:     subTxHash[:],
		GasUsed:    rc.GasUsed,
		ReturnData: rc.ReturnData,
	}
	if b, err := json.Marshal(req); err == nil {
		ev.Tokens = b
	}
	if b, err := json.Marshal(resp); err == nil {
		ev.Response = b
	}
	if verr := core.VerifyResponse(owner.AccumulatorPub(), owner.Ac(), req, resp); verr != nil {
		if vd, ok := core.AsVerificationError(verr); ok {
			ev.Phase = vd.Phase
			ev.TokenIndex = vd.TokenIndex
		}
	}
	led.Log(audit.Event{Kind: audit.KindRefund, Outcome: audit.OutcomeFail,
		Detail: "refunded", Evidence: ev})
	return false, resp
}

// TestTamperedResponseLeavesEvidence is the adversarial end-to-end check for
// the audit layer: with a wire-level tampering proxy between the user and an
// honest cloud, the public verification must fail on chain, the escrow must
// return to the user, and exactly one evidence bundle — holding the mutated
// bytes as the user received them — must land in the tamper-evident ledger,
// tripping the integrity SLO.
func TestTamperedResponseLeavesEvidence(t *testing.T) {
	cloudSrv := wire.NewCloudServer()
	cloudAddr, err := cloudSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("cloud listen: %v", err)
	}
	defer cloudSrv.Close()

	registry := chain.NewRegistry()
	if err := contract.Register(registry); err != nil {
		t.Fatal(err)
	}
	ownerAcct := chain.AddressFromString("owner")
	userAcct := chain.AddressFromString("user")
	cloudAcct := chain.AddressFromString("cloud")
	validators := []chain.Address{chain.AddressFromString("v0"), chain.AddressFromString("v1")}
	network, err := chain.NewNetwork(registry, validators, map[chain.Address]uint64{
		ownerAcct: 1 << 30, userAcct: 1 << 30, cloudAcct: 1 << 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	chainSrv := wire.NewChainServer(network)
	chainAddr, err := chainSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("chain listen: %v", err)
	}
	defer chainSrv.Close()

	owner, err := core.NewOwner(core.Params{Bits: 8, TrapdoorBits: 512, AccumulatorBits: 512})
	if err != nil {
		t.Fatal(err)
	}
	db := []Record{NewRecord(1, 10), NewRecord(2, 200), NewRecord(3, 30), NewRecord(4, 55)}
	built, err := owner.Build(db)
	if err != nil {
		t.Fatal(err)
	}
	honestCli, err := wire.DialCloud(cloudAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer honestCli.Close()
	if err := honestCli.Init(owner.CloudInit(built.Index), true); err != nil {
		t.Fatalf("cloud init: %v", err)
	}
	chainCli, err := wire.DialChain(chainAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer chainCli.Close()
	deployRc, err := chainCli.Mine(contract.DeployTx(ownerAcct, 0, owner.AccumulatorPub().Marshal(), owner.Ac(), 50_000_000))
	if err != nil || !deployRc.Status {
		t.Fatalf("contract deploy: %v %s", err, deployRc.Err)
	}
	user, err := core.NewUser(owner.ClientState())
	if err != nil {
		t.Fatal(err)
	}

	// Client-side ledger on real disk so the offline verifier runs against it.
	dir := t.TempDir()
	reg := obs.NewRegistry()
	led, err := audit.Open(audit.Options{Dir: dir, Fsync: durable.FsyncAlways, Registry: reg})
	if err != nil {
		t.Fatalf("audit open: %v", err)
	}
	led.SetTenant("e2e")

	const pay = 1000
	// Round 1, honest path straight to the cloud: settles.
	settled, _ := auditRound(t, led, owner, user, honestCli, chainCli,
		deployRc.ContractAddress, userAcct, cloudAcct, Less(100), pay)
	if !settled {
		t.Fatal("honest round did not settle")
	}

	// Round 2 through the tampering proxy: the mutated response must fail
	// the on-chain verification and refund the escrow.
	var tampered atomic.Int32
	proxyAddr := tamperProxy(t, cloudAddr, &tampered)
	proxyCli, err := wire.DialCloud(proxyAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer proxyCli.Close()
	userBefore, err := chainCli.Balance(userAcct)
	if err != nil {
		t.Fatal(err)
	}
	settled, tamperedResp := auditRound(t, led, owner, user, proxyCli, chainCli,
		deployRc.ContractAddress, userAcct, cloudAcct, Less(100), pay)
	if settled {
		t.Fatal("tampered round settled; the contract accepted a mutated response")
	}
	if tampered.Load() != 1 {
		t.Fatalf("proxy tampered %d responses, want 1", tampered.Load())
	}
	userAfter, err := chainCli.Balance(userAcct)
	if err != nil {
		t.Fatal(err)
	}
	if userAfter != userBefore {
		t.Fatalf("escrow not refunded: user balance %d -> %d", userBefore, userAfter)
	}

	if err := led.Close(); err != nil {
		t.Fatal(err)
	}

	// The ledger must hold exactly one evidence bundle, carrying the mutated
	// response exactly as the user received it, attributed to a phase.
	records, res, err := audit.ReadDir(durable.OS, dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if res.Failures != 1 || res.Evidence != 1 {
		t.Fatalf("ledger has %d failures / %d evidence bundles, want 1 / 1", res.Failures, res.Evidence)
	}
	var bundle *audit.Evidence
	for _, rec := range records {
		if rec.Evidence != nil {
			if rec.Kind != audit.KindRefund || rec.Outcome != audit.OutcomeFail {
				t.Fatalf("evidence on %s/%s record, want refund/fail", rec.Kind, rec.Outcome)
			}
			if rec.Tenant != "e2e" {
				t.Fatalf("evidence record tenant %q, want e2e", rec.Tenant)
			}
			bundle = rec.Evidence
		}
	}
	wantResp, err := json.Marshal(tamperedResp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bundle.Response, wantResp) {
		t.Fatal("evidence bundle does not hold the mutated response bytes")
	}
	if bundle.Phase == "" || bundle.TokenIndex < 0 {
		t.Fatalf("evidence not attributed: phase %q token %d", bundle.Phase, bundle.TokenIndex)
	}

	// Offline verifier agrees the chain is intact.
	if vres, err := audit.Verify(durable.OS, dir); err != nil {
		t.Fatalf("audit verify: %v", err)
	} else if vres.HeadSeq != res.HeadSeq || vres.HeadHash != res.HeadHash {
		t.Fatal("verify head disagrees with read head")
	}

	// One settle(ok) + one refund(fail) over the integrity series: 50% good
	// against a 99% objective burns far past both thresholds — breach.
	engine := obs.NewEngine(reg, []obs.Objective{{
		Name:      "integrity",
		Metric:    audit.IntegritySeries,
		Target:    500 * time.Millisecond,
		GoodRatio: 0.99,
		Window:    time.Minute,
	}}, obs.EngineOptions{})
	statuses := engine.Evaluate()
	if len(statuses) != 1 || statuses[0].State != obs.SLOBreach.String() {
		t.Fatalf("integrity SLO = %+v, want breach", statuses)
	}
}
