package contract

import (
	"bytes"
	"testing"

	"slicer/internal/core"
)

// FuzzDecodeResults hardens the contract's calldata parser: arbitrary bytes
// must either fail cleanly or decode into results that re-encode to a
// semantically identical message (no panics, no silent truncation).
func FuzzDecodeResults(f *testing.F) {
	seed, err := EncodeResults([]core.TokenResult{{
		Token:   sampleToken(3),
		ER:      [][]byte{bytes.Repeat([]byte{1}, 16)},
		Witness: bytes.Repeat([]byte{2}, 32),
	}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		results, rest, err := DecodeResults(data)
		if err != nil {
			return
		}
		// Re-encode and re-decode: must agree.
		enc, err := EncodeResults(results)
		if err != nil {
			t.Fatalf("decoded results fail to re-encode: %v", err)
		}
		again, rest2, err := DecodeResults(enc)
		if err != nil || len(rest2) != 0 {
			t.Fatalf("round trip failed: %v", err)
		}
		if len(again) != len(results) {
			t.Fatalf("round trip changed result count")
		}
		_ = rest
	})
}

// FuzzDecodeToken does the same for single tokens.
func FuzzDecodeToken(f *testing.F) {
	enc, err := EncodeToken(nil, sampleToken(9))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(enc)
	f.Fuzz(func(t *testing.T, data []byte) {
		tok, _, err := DecodeToken(data)
		if err != nil {
			return
		}
		re, err := EncodeToken(nil, tok)
		if err != nil {
			t.Fatalf("decoded token fails to re-encode: %v", err)
		}
		tok2, rest, err := DecodeToken(re)
		if err != nil || len(rest) != 0 {
			t.Fatalf("token round trip failed: %v", err)
		}
		if !tokensEqual(tok, tok2) {
			t.Fatal("token round trip changed content")
		}
	})
}
