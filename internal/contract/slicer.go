package contract

import (
	"crypto/subtle"
	"errors"
	"fmt"
	"math/big"

	"slicer/internal/chain"
	"slicer/internal/core"
	"slicer/internal/mhash"
)

// RuntimeID identifies the Slicer contract runtime in the chain registry.
const RuntimeID = "slicerV1"

// Method selectors (first calldata byte).
const (
	MethodSetAc        = 0x01 // owner: store digest of the new Ac
	MethodRequest      = 0x02 // user: escrow payment for a search
	MethodSubmitResult = 0x03 // cloud: submit results + proofs for verification
	MethodGetAcDigest  = 0x04 // static: read the current Ac digest
	MethodGetRequest   = 0x05 // static: read a request's status
	MethodAuthorize    = 0x06 // owner: grant/revoke a data user in restricted mode
	MethodSetMode      = 0x07 // owner: toggle restricted mode
	MethodIsAuthorized = 0x08 // static: read an address's authorization
)

// Request statuses.
const (
	StatusNone     = 0
	StatusPending  = 1
	StatusSettled  = 2
	StatusRefunded = 3
)

// millerRabinOnChain is the number of Miller–Rabin rounds the metered
// verifier charges for when certifying the final prime candidate; each
// round is one small modular exponentiation via the modexp precompile.
const millerRabinOnChain = 3

// Storage slots.
var (
	slotOwner        = chain.SlotOf("owner")
	slotAcDigest     = chain.SlotOf("acDigest")
	slotAcUpdates    = chain.SlotOf("acUpdates")
	slotParamsDigest = chain.SlotOf("paramsDigest")
	slotRestricted   = chain.SlotOf("restricted")
)

func authSlot(user chain.Address) chain.Slot {
	return chain.SlotOf("auth", user[:])
}

func requestSlot(reqID chain.Hash, field string) chain.Slot {
	return chain.SlotOf("req/"+field, reqID[:])
}

// Event topics.
var (
	TopicAcUpdated = chain.HashBytes([]byte("event/AcUpdated"))
	TopicRequested = chain.HashBytes([]byte("event/SearchRequested"))
	TopicSettled   = chain.HashBytes([]byte("event/PaymentSettled"))
	TopicRefunded  = chain.HashBytes([]byte("event/PaymentRefunded"))
)

// Slicer is the verification/escrow contract. It holds no Go-side state:
// everything lives in metered chain storage.
type Slicer struct{}

var _ chain.Contract = (*Slicer)(nil)

// New constructs the runtime (chain.ContractFactory).
func New() chain.Contract { return &Slicer{} }

// Register binds the runtime into a chain registry.
func Register(reg *chain.Registry) error { return reg.Register(RuntimeID, New) }

// InitData assembles constructor arguments: the owner address, the digest
// of the accumulator public parameters, and the digest of the initial Ac.
func InitData(owner chain.Address, accParams []byte, ac *big.Int) []byte {
	pd := chain.HashBytes(accParams)
	ad := chain.HashBytes(ac.Bytes())
	out := make([]byte, 0, 20+64)
	out = append(out, owner[:]...)
	out = append(out, pd[:]...)
	return append(out, ad[:]...)
}

// Init stores the owner and the two digests.
func (s *Slicer) Init(ctx *chain.CallCtx, initData []byte) error {
	if len(initData) != 20+32+32 {
		return fmt.Errorf("contract: constructor wants 84 bytes, got %d", len(initData))
	}
	var owner chain.Slot
	copy(owner[12:], initData[:20])
	if err := ctx.SStore(slotOwner, owner); err != nil {
		return err
	}
	if err := ctx.SStore(slotParamsDigest, chain.Slot(initData[20:52])); err != nil {
		return err
	}
	if err := ctx.SStore(slotAcDigest, chain.Slot(initData[52:84])); err != nil {
		return err
	}
	return ctx.SStore(slotAcUpdates, chain.U64Slot(0))
}

// Call dispatches a method invocation.
func (s *Slicer) Call(ctx *chain.CallCtx, input []byte) ([]byte, error) {
	if len(input) == 0 {
		return nil, errors.New("contract: empty calldata")
	}
	switch input[0] {
	case MethodSetAc:
		return s.setAc(ctx, input[1:])
	case MethodRequest:
		return s.request(ctx, input[1:])
	case MethodSubmitResult:
		return s.submitResult(ctx, input[1:])
	case MethodGetAcDigest:
		return s.getAcDigest(ctx)
	case MethodGetRequest:
		return s.getRequest(ctx, input[1:])
	case MethodAuthorize:
		return s.authorize(ctx, input[1:])
	case MethodSetMode:
		return s.setMode(ctx, input[1:])
	case MethodIsAuthorized:
		return s.isAuthorized(ctx, input[1:])
	default:
		return nil, fmt.Errorf("contract: unknown method 0x%02x", input[0])
	}
}

func (s *Slicer) owner(ctx *chain.CallCtx) (chain.Address, error) {
	v, ok, err := ctx.SLoad(slotOwner)
	if err != nil {
		return chain.Address{}, err
	}
	if !ok {
		return chain.Address{}, errors.New("contract: uninitialized")
	}
	var a chain.Address
	copy(a[:], v[12:])
	return a, nil
}

// SetAcData builds calldata for MethodSetAc: the digest of the new Ac.
// The owner computes the digest off chain; only 32 bytes hit the chain,
// which is what keeps data insertion cheap (Table II).
func SetAcData(ac *big.Int) []byte {
	d := chain.HashBytes(ac.Bytes())
	return append([]byte{MethodSetAc}, d[:]...)
}

func (s *Slicer) setAc(ctx *chain.CallCtx, data []byte) ([]byte, error) {
	owner, err := s.owner(ctx)
	if err != nil {
		return nil, err
	}
	if ctx.Caller != owner {
		return nil, errors.New("contract: SetAc restricted to the data owner")
	}
	if len(data) != 32 {
		return nil, fmt.Errorf("contract: SetAc wants a 32-byte digest, got %d", len(data))
	}
	if err := ctx.SStore(slotAcDigest, chain.Slot(data)); err != nil {
		return nil, err
	}
	cnt, _, err := ctx.SLoad(slotAcUpdates)
	if err != nil {
		return nil, err
	}
	if err := ctx.SStore(slotAcUpdates, chain.U64Slot(chain.SlotU64(cnt)+1)); err != nil {
		return nil, err
	}
	return nil, ctx.EmitLog([]chain.Hash{TopicAcUpdated}, data)
}

// RequestData builds calldata for MethodRequest.
func RequestData(reqID chain.Hash, cloud chain.Address, tokensHash chain.Hash) []byte {
	out := make([]byte, 0, 1+32+20+32)
	out = append(out, MethodRequest)
	out = append(out, reqID[:]...)
	out = append(out, cloud[:]...)
	return append(out, tokensHash[:]...)
}

// TokensHash computes the canonical hash binding a request to its token
// list. The user computes it when escrowing; the contract recomputes it
// from the submitted results.
func TokensHash(tokens []core.SearchToken) (chain.Hash, error) {
	enc, err := EncodeTokens(tokens)
	if err != nil {
		return chain.Hash{}, err
	}
	return chain.HashBytes(enc), nil
}

// AuthorizeData builds calldata for MethodAuthorize.
func AuthorizeData(user chain.Address, allowed bool) []byte {
	out := make([]byte, 0, 22)
	out = append(out, MethodAuthorize)
	out = append(out, user[:]...)
	if allowed {
		return append(out, 1)
	}
	return append(out, 0)
}

// SetModeData builds calldata for MethodSetMode. Restricted mode confines
// search requests to owner-authorized addresses; the contract deploys in
// open mode (anyone holding valid tokens and a payment may request, as in
// the paper, where authorization is enforced by key distribution).
func SetModeData(restricted bool) []byte {
	if restricted {
		return []byte{MethodSetMode, 1}
	}
	return []byte{MethodSetMode, 0}
}

func (s *Slicer) authorize(ctx *chain.CallCtx, data []byte) ([]byte, error) {
	owner, err := s.owner(ctx)
	if err != nil {
		return nil, err
	}
	if ctx.Caller != owner {
		return nil, errors.New("contract: Authorize restricted to the data owner")
	}
	if len(data) != 21 {
		return nil, fmt.Errorf("contract: Authorize wants 21 bytes, got %d", len(data))
	}
	var user chain.Address
	copy(user[:], data[:20])
	return nil, ctx.SStore(authSlot(user), chain.U64Slot(uint64(data[20]&1)))
}

func (s *Slicer) setMode(ctx *chain.CallCtx, data []byte) ([]byte, error) {
	owner, err := s.owner(ctx)
	if err != nil {
		return nil, err
	}
	if ctx.Caller != owner {
		return nil, errors.New("contract: SetMode restricted to the data owner")
	}
	if len(data) != 1 {
		return nil, fmt.Errorf("contract: SetMode wants 1 byte, got %d", len(data))
	}
	return nil, ctx.SStore(slotRestricted, chain.U64Slot(uint64(data[0]&1)))
}

func (s *Slicer) isAuthorized(ctx *chain.CallCtx, data []byte) ([]byte, error) {
	if len(data) != 20 {
		return nil, fmt.Errorf("contract: IsAuthorized wants 20 bytes, got %d", len(data))
	}
	var user chain.Address
	copy(user[:], data)
	ok, err := s.callerAllowed(ctx, user)
	if err != nil {
		return nil, err
	}
	if ok {
		return []byte{1}, nil
	}
	return []byte{0}, nil
}

// callerAllowed checks restricted mode: in open mode everyone may request;
// in restricted mode only the owner and authorized users may.
func (s *Slicer) callerAllowed(ctx *chain.CallCtx, caller chain.Address) (bool, error) {
	mode, _, err := ctx.SLoad(slotRestricted)
	if err != nil {
		return false, err
	}
	if chain.SlotU64(mode) == 0 {
		return true, nil
	}
	owner, err := s.owner(ctx)
	if err != nil {
		return false, err
	}
	if caller == owner {
		return true, nil
	}
	auth, _, err := ctx.SLoad(authSlot(caller))
	if err != nil {
		return false, err
	}
	return chain.SlotU64(auth) == 1, nil
}

func (s *Slicer) request(ctx *chain.CallCtx, data []byte) ([]byte, error) {
	if len(data) != 32+20+32 {
		return nil, fmt.Errorf("contract: Request wants 84 bytes, got %d", len(data))
	}
	if ctx.Value == 0 {
		return nil, errors.New("contract: search request must escrow a payment")
	}
	allowed, err := s.callerAllowed(ctx, ctx.Caller)
	if err != nil {
		return nil, err
	}
	if !allowed {
		return nil, errors.New("contract: caller is not an authorized data user")
	}
	var reqID chain.Hash
	copy(reqID[:], data[:32])
	st, _, err := ctx.SLoad(requestSlot(reqID, "status"))
	if err != nil {
		return nil, err
	}
	if chain.SlotU64(st) != StatusNone {
		return nil, fmt.Errorf("contract: request %s already exists", reqID)
	}
	var payer, cloud chain.Slot
	copy(payer[12:], ctx.Caller[:])
	copy(cloud[12:], data[32:52])
	writes := []struct {
		slot chain.Slot
		val  chain.Slot
	}{
		{requestSlot(reqID, "status"), chain.U64Slot(StatusPending)},
		{requestSlot(reqID, "payer"), payer},
		{requestSlot(reqID, "cloud"), cloud},
		{requestSlot(reqID, "payment"), chain.U64Slot(ctx.Value)},
		{requestSlot(reqID, "tokens"), chain.Slot(data[52:84])},
	}
	for _, w := range writes {
		if err := ctx.SStore(w.slot, w.val); err != nil {
			return nil, err
		}
	}
	return nil, ctx.EmitLog([]chain.Hash{TopicRequested, reqID}, data[32:])
}

// SubmitData builds calldata for MethodSubmitResult: the request ID, the
// accumulator public parameters, the current Ac, and the serialized
// results.
func SubmitData(reqID chain.Hash, accParams []byte, ac *big.Int, results []core.TokenResult) ([]byte, error) {
	enc, err := EncodeResults(results)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, 1+32+4+len(accParams)+4+len(enc)+len(ac.Bytes())+2)
	out = append(out, MethodSubmitResult)
	out = append(out, reqID[:]...)
	out, err = appendU32(out, len(accParams))
	if err != nil {
		return nil, err
	}
	out = append(out, accParams...)
	acb := ac.Bytes()
	out, err = appendU16(out, len(acb))
	if err != nil {
		return nil, err
	}
	out = append(out, acb...)
	return append(out, enc...), nil
}

// submitResult implements Algorithm 5 with explicit gas metering and the
// fair-exchange settlement: a valid proof pays the cloud, an invalid one
// refunds the data user. Malformed submissions revert (the escrow stays
// pending and the cloud can resubmit).
func (s *Slicer) submitResult(ctx *chain.CallCtx, data []byte) ([]byte, error) {
	if len(data) < 32 {
		return nil, errTruncated
	}
	var reqID chain.Hash
	copy(reqID[:], data[:32])
	data = data[32:]

	// Load and check the escrow entry.
	st, _, err := ctx.SLoad(requestSlot(reqID, "status"))
	if err != nil {
		return nil, err
	}
	if chain.SlotU64(st) != StatusPending {
		return nil, fmt.Errorf("contract: request %s is not pending", reqID)
	}
	cloudSlot, _, err := ctx.SLoad(requestSlot(reqID, "cloud"))
	if err != nil {
		return nil, err
	}
	var cloudAddr chain.Address
	copy(cloudAddr[:], cloudSlot[12:])
	if ctx.Caller != cloudAddr {
		return nil, errors.New("contract: only the assigned cloud may submit results")
	}

	// Parse and authenticate the accumulator parameters and Ac against the
	// stored digests.
	n, data, err := readU32(data)
	if err != nil {
		return nil, err
	}
	paramsBytes, data, err := readBytes(data, n)
	if err != nil {
		return nil, err
	}
	pd, err := ctx.Hash(paramsBytes)
	if err != nil {
		return nil, err
	}
	wantPD, _, err := ctx.SLoad(slotParamsDigest)
	if err != nil {
		return nil, err
	}
	if subtle.ConstantTimeCompare(pd[:], wantPD[:]) != 1 {
		return nil, errors.New("contract: accumulator parameters do not match deployment digest")
	}
	pp, err := decodeAccParams(paramsBytes)
	if err != nil {
		return nil, err
	}

	n, data, err = readU16(data)
	if err != nil {
		return nil, err
	}
	acBytes, data, err := readBytes(data, n)
	if err != nil {
		return nil, err
	}
	ad, err := ctx.Hash(acBytes)
	if err != nil {
		return nil, err
	}
	wantAD, _, err := ctx.SLoad(slotAcDigest)
	if err != nil {
		return nil, err
	}
	if subtle.ConstantTimeCompare(ad[:], wantAD[:]) != 1 {
		return nil, errors.New("contract: submitted Ac is stale (freshness check failed)")
	}
	ac := new(big.Int).SetBytes(acBytes)

	results, rest, err := DecodeResults(data)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, errors.New("contract: trailing bytes after results")
	}

	// Completeness binding: the submitted token sequence must hash to the
	// escrowed tokens hash.
	tokens := make([]core.SearchToken, len(results))
	for i := range results {
		tokens[i] = results[i].Token
	}
	enc, err := EncodeTokens(tokens)
	if err != nil {
		return nil, err
	}
	th, err := ctx.Hash(enc)
	if err != nil {
		return nil, err
	}
	wantTH, _, err := ctx.SLoad(requestSlot(reqID, "tokens"))
	if err != nil {
		return nil, err
	}

	valid := subtle.ConstantTimeCompare(th[:], wantTH[:]) == 1
	if valid {
		for _, res := range results {
			ok, err := verifyMetered(ctx, pp.n, pp.g, ac, res)
			if err != nil {
				return nil, err
			}
			if !ok {
				valid = false
				break
			}
		}
	}

	// Settle or refund the escrow.
	paymentSlot, _, err := ctx.SLoad(requestSlot(reqID, "payment"))
	if err != nil {
		return nil, err
	}
	payment := chain.SlotU64(paymentSlot)
	payerSlot, _, err := ctx.SLoad(requestSlot(reqID, "payer"))
	if err != nil {
		return nil, err
	}
	var payer chain.Address
	copy(payer[:], payerSlot[12:])

	if valid {
		if err := ctx.SStore(requestSlot(reqID, "status"), chain.U64Slot(StatusSettled)); err != nil {
			return nil, err
		}
		if err := ctx.Transfer(cloudAddr, payment); err != nil {
			return nil, err
		}
		if err := ctx.EmitLog([]chain.Hash{TopicSettled, reqID}, nil); err != nil {
			return nil, err
		}
		return []byte{1}, nil
	}
	if err := ctx.SStore(requestSlot(reqID, "status"), chain.U64Slot(StatusRefunded)); err != nil {
		return nil, err
	}
	if err := ctx.Transfer(payer, payment); err != nil {
		return nil, err
	}
	if err := ctx.EmitLog([]chain.Hash{TopicRefunded, reqID}, nil); err != nil {
		return nil, err
	}
	return []byte{0}, nil
}

// verifyMetered runs Algorithm 5 for one token result, charging the gas
// meter for every cryptographic operation:
//
//	h  <- multiset hash of er     (one hash + one field mul per element)
//	x  <- H_prime(t||j||G1||G2||h) (one hash per probe + Miller–Rabin)
//	ok <- VerifyMem(x, vo)        (one big modexp via the precompile)
func verifyMetered(ctx *chain.CallCtx, n, g, ac *big.Int, res core.TokenResult) (bool, error) {
	q := mhash.Modulus()
	h := big.NewInt(1)
	for _, er := range res.ER {
		elem, hashCalls := mhash.HashToField(er)
		for i := 0; i < hashCalls; i++ {
			if _, err := ctx.Hash(er); err != nil {
				return false, err
			}
		}
		var err error
		h, err = ctx.FieldMul(h, elem, q)
		if err != nil {
			return false, err
		}
	}
	mh, err := mhash.FromValue(h)
	if err != nil {
		// h == 1 is H(∅); FromValue accepts it (1 is in GF(q)*), so an error
		// here means a corrupted field element.
		return false, nil
	}

	x, probes := core.TokenPrimeCount(res.Token, mh)
	// Charge one hash per probed candidate plus a Miller–Rabin certificate
	// for the final prime (each round one small modexp).
	probeCost := chain.HashGas(len(res.Token.Trapdoor)+8+len(res.Token.G1)+len(res.Token.G2)+32) +
		uint64(probes)*chain.HashGas(16)
	if err := ctx.UseGas(probeCost); err != nil {
		return false, err
	}
	mrExp := new(big.Int).Sub(x, big.NewInt(1))
	for i := 0; i < millerRabinOnChain; i++ {
		if err := ctx.UseGas(chain.ModExpGas(16, 16, mrExp)); err != nil {
			return false, err
		}
	}

	if len(res.Witness) == 0 {
		return false, nil
	}
	w := new(big.Int).SetBytes(res.Witness)
	if w.Sign() <= 0 || w.Cmp(n) >= 0 {
		return false, nil
	}
	got, err := ctx.ModExp(w, x, n)
	if err != nil {
		return false, err
	}
	_ = g
	return got.Cmp(ac) == 0, nil
}

func (s *Slicer) getAcDigest(ctx *chain.CallCtx) ([]byte, error) {
	v, ok, err := ctx.SLoad(slotAcDigest)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, errors.New("contract: uninitialized")
	}
	cnt, _, err := ctx.SLoad(slotAcUpdates)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, 40)
	out = append(out, v[:]...)
	return append(out, cnt[24:]...), nil
}

func (s *Slicer) getRequest(ctx *chain.CallCtx, data []byte) ([]byte, error) {
	if len(data) != 32 {
		return nil, fmt.Errorf("contract: GetRequest wants a 32-byte id, got %d", len(data))
	}
	var reqID chain.Hash
	copy(reqID[:], data)
	st, _, err := ctx.SLoad(requestSlot(reqID, "status"))
	if err != nil {
		return nil, err
	}
	pay, _, err := ctx.SLoad(requestSlot(reqID, "payment"))
	if err != nil {
		return nil, err
	}
	return []byte{byte(chain.SlotU64(st)), pay[24], pay[25], pay[26], pay[27], pay[28], pay[29], pay[30], pay[31]}, nil
}

// accParams is the parsed accumulator public parameters.
type accParams struct {
	n, g *big.Int
}

func decodeAccParams(data []byte) (*accParams, error) {
	nb, rest, err := readChunk(data)
	if err != nil {
		return nil, err
	}
	gb, _, err := readChunk(rest)
	if err != nil {
		return nil, err
	}
	p := &accParams{n: new(big.Int).SetBytes(nb), g: new(big.Int).SetBytes(gb)}
	if p.n.Sign() <= 0 || p.g.Sign() <= 0 {
		return nil, errors.New("contract: invalid accumulator parameters")
	}
	return p, nil
}

func readChunk(data []byte) (chunk, rest []byte, err error) {
	if len(data) < 4 {
		return nil, nil, errTruncated
	}
	n := int(data[0])<<24 | int(data[1])<<16 | int(data[2])<<8 | int(data[3])
	if n < 0 || len(data)-4 < n {
		return nil, nil, errTruncated
	}
	return data[4 : 4+n], data[4+n:], nil
}
