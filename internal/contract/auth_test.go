package contract

import (
	"testing"

	"slicer/internal/chain"
	"slicer/internal/core"
)

func TestRestrictedMode(t *testing.T) {
	f := newFixture(t, testDB)

	isAuth := func(a chain.Address) bool {
		t.Helper()
		ret, _, err := f.network.Leader().CallStatic(
			f.userAddr, f.contractAddr, append([]byte{MethodIsAuthorized}, a[:]...), 1_000_000)
		if err != nil {
			t.Fatalf("IsAuthorized: %v", err)
		}
		return ret[0] == 1
	}
	requestOnce := func(id byte) *chain.Receipt {
		t.Helper()
		req, err := f.user.Token(core.Equal(5))
		if err != nil {
			t.Fatalf("Token: %v", err)
		}
		th, err := TokensHash(req.Tokens)
		if err != nil {
			t.Fatalf("TokensHash: %v", err)
		}
		reqID := chain.HashBytes([]byte{id})
		return f.mine(&chain.Transaction{
			From: f.userAddr, To: f.contractAddr, Nonce: f.nonce(f.userAddr),
			Value: 100, GasLimit: 1_000_000, Data: RequestData(reqID, f.cloudAddr, th),
		})
	}

	// Open mode (default): everyone is allowed.
	if !isAuth(f.userAddr) {
		t.Fatal("open mode should allow everyone")
	}
	if r := requestOnce(1); !r.Status {
		t.Fatalf("open-mode request reverted: %s", r.Err)
	}

	// Only the owner may flip the mode.
	if r := f.mine(&chain.Transaction{
		From: f.userAddr, To: f.contractAddr, Nonce: f.nonce(f.userAddr),
		GasLimit: 1_000_000, Data: SetModeData(true),
	}); r.Status {
		t.Fatal("non-owner toggled restricted mode")
	}
	if r := f.mine(&chain.Transaction{
		From: f.ownerAddr, To: f.contractAddr, Nonce: f.nonce(f.ownerAddr),
		GasLimit: 1_000_000, Data: SetModeData(true),
	}); !r.Status {
		t.Fatalf("owner SetMode reverted: %s", r.Err)
	}

	// Unauthorized user is now rejected.
	if isAuth(f.userAddr) {
		t.Error("restricted mode reports unauthorized user as allowed")
	}
	if r := requestOnce(2); r.Status {
		t.Error("unauthorized request accepted in restricted mode")
	}

	// Only the owner may authorize; after authorization the user works.
	if r := f.mine(&chain.Transaction{
		From: f.cloudAddr, To: f.contractAddr, Nonce: f.nonce(f.cloudAddr),
		GasLimit: 1_000_000, Data: AuthorizeData(f.userAddr, true),
	}); r.Status {
		t.Fatal("non-owner authorized a user")
	}
	if r := f.mine(&chain.Transaction{
		From: f.ownerAddr, To: f.contractAddr, Nonce: f.nonce(f.ownerAddr),
		GasLimit: 1_000_000, Data: AuthorizeData(f.userAddr, true),
	}); !r.Status {
		t.Fatalf("owner Authorize reverted: %s", r.Err)
	}
	if !isAuth(f.userAddr) {
		t.Error("authorization not visible")
	}
	if r := requestOnce(3); !r.Status {
		t.Fatalf("authorized request reverted: %s", r.Err)
	}

	// Revocation takes effect.
	if r := f.mine(&chain.Transaction{
		From: f.ownerAddr, To: f.contractAddr, Nonce: f.nonce(f.ownerAddr),
		GasLimit: 1_000_000, Data: AuthorizeData(f.userAddr, false),
	}); !r.Status {
		t.Fatalf("owner revoke reverted: %s", r.Err)
	}
	if r := requestOnce(4); r.Status {
		t.Error("revoked user's request accepted")
	}

	// The owner itself always passes in restricted mode.
	if !isAuth(f.ownerAddr) {
		t.Error("owner not allowed in restricted mode")
	}
}
