package contract

import (
	"testing"

	"slicer/internal/chain"
	"slicer/internal/core"
)

// TestSubmitRestrictedToAssignedCloud: only the cloud named in the escrow
// may submit results for it.
func TestSubmitRestrictedToAssignedCloud(t *testing.T) {
	f := newFixture(t, testDB)
	req, err := f.user.Token(core.Equal(5))
	if err != nil {
		t.Fatal(err)
	}
	th, err := TokensHash(req.Tokens)
	if err != nil {
		t.Fatal(err)
	}
	reqID := chain.HashBytes([]byte("assigned"))
	if r := f.mine(&chain.Transaction{
		From: f.userAddr, To: f.contractAddr, Nonce: f.nonce(f.userAddr),
		Value: 100, GasLimit: 1_000_000, Data: RequestData(reqID, f.cloudAddr, th),
	}); !r.Status {
		t.Fatalf("request reverted: %s", r.Err)
	}
	resp, err := f.cloud.Search(req)
	if err != nil {
		t.Fatal(err)
	}
	data, err := SubmitData(reqID, f.owner.AccumulatorPub().Marshal(), f.owner.Ac(), resp.Results)
	if err != nil {
		t.Fatal(err)
	}
	// An interloper (the user itself) submits: must revert, escrow intact.
	if r := f.mine(&chain.Transaction{
		From: f.userAddr, To: f.contractAddr, Nonce: f.nonce(f.userAddr),
		GasLimit: 10_000_000, Data: data,
	}); r.Status {
		t.Fatal("unassigned sender's submission accepted")
	}
	if got := f.requestStatus(reqID); got != StatusPending {
		t.Fatalf("request status = %d, want pending", got)
	}
	// The assigned cloud still settles afterwards.
	if r := f.mine(&chain.Transaction{
		From: f.cloudAddr, To: f.contractAddr, Nonce: f.nonce(f.cloudAddr),
		GasLimit: 10_000_000, Data: data,
	}); !r.Status {
		t.Fatalf("assigned cloud's submission reverted: %s", r.Err)
	}
}

// TestRequestValidation covers escrow preconditions.
func TestRequestValidation(t *testing.T) {
	f := newFixture(t, testDB)
	req, err := f.user.Token(core.Equal(5))
	if err != nil {
		t.Fatal(err)
	}
	th, err := TokensHash(req.Tokens)
	if err != nil {
		t.Fatal(err)
	}
	reqID := chain.HashBytes([]byte("dup"))
	mk := func(value uint64) *chain.Receipt {
		return f.mine(&chain.Transaction{
			From: f.userAddr, To: f.contractAddr, Nonce: f.nonce(f.userAddr),
			Value: value, GasLimit: 1_000_000, Data: RequestData(reqID, f.cloudAddr, th),
		})
	}
	// Zero payment rejected.
	if r := mk(0); r.Status {
		t.Fatal("zero-payment request accepted")
	}
	if r := mk(100); !r.Status {
		t.Fatalf("request reverted: %s", r.Err)
	}
	// Duplicate request ID rejected (no escrow overwrite).
	if r := mk(999); r.Status {
		t.Fatal("duplicate request ID accepted")
	}
	// Malformed calldata reverts.
	if r := f.mine(&chain.Transaction{
		From: f.userAddr, To: f.contractAddr, Nonce: f.nonce(f.userAddr),
		Value: 5, GasLimit: 1_000_000, Data: []byte{MethodRequest, 1, 2, 3},
	}); r.Status {
		t.Fatal("malformed request accepted")
	}
	// Unknown method reverts.
	if r := f.mine(&chain.Transaction{
		From: f.userAddr, To: f.contractAddr, Nonce: f.nonce(f.userAddr),
		GasLimit: 1_000_000, Data: []byte{0x7f},
	}); r.Status {
		t.Fatal("unknown method accepted")
	}
}

// TestOutOfGasReverts: a correct submission under a too-small gas limit
// reverts with the escrow intact and can be retried with enough gas.
func TestOutOfGasReverts(t *testing.T) {
	f := newFixture(t, testDB)
	req, err := f.user.Token(core.Equal(5))
	if err != nil {
		t.Fatal(err)
	}
	th, err := TokensHash(req.Tokens)
	if err != nil {
		t.Fatal(err)
	}
	reqID := chain.HashBytes([]byte("oog"))
	if r := f.mine(&chain.Transaction{
		From: f.userAddr, To: f.contractAddr, Nonce: f.nonce(f.userAddr),
		Value: 100, GasLimit: 1_000_000, Data: RequestData(reqID, f.cloudAddr, th),
	}); !r.Status {
		t.Fatalf("request reverted: %s", r.Err)
	}
	resp, err := f.cloud.Search(req)
	if err != nil {
		t.Fatal(err)
	}
	data, err := SubmitData(reqID, f.owner.AccumulatorPub().Marshal(), f.owner.Ac(), resp.Results)
	if err != nil {
		t.Fatal(err)
	}
	r := f.mine(&chain.Transaction{
		From: f.cloudAddr, To: f.contractAddr, Nonce: f.nonce(f.cloudAddr),
		GasLimit: 30_000, Data: data, // below even the intrinsic cost
	})
	if r.Status {
		t.Fatal("under-gassed submission succeeded")
	}
	if got := f.requestStatus(reqID); got != StatusPending {
		t.Fatalf("status after out-of-gas = %d, want pending", got)
	}
	if r := f.mine(&chain.Transaction{
		From: f.cloudAddr, To: f.contractAddr, Nonce: f.nonce(f.cloudAddr),
		GasLimit: 10_000_000, Data: data,
	}); !r.Status {
		t.Fatalf("retry reverted: %s", r.Err)
	}
	if got := f.requestStatus(reqID); got != StatusSettled {
		t.Fatalf("status after retry = %d, want settled", got)
	}
}

// TestUnknownRuntimeCreateReverts: deploying code with an unregistered
// runtime ID fails cleanly.
func TestUnknownRuntimeCreateReverts(t *testing.T) {
	f := newFixture(t, testDB)
	r := f.mine(&chain.Transaction{
		From: f.ownerAddr, To: chain.ZeroAddress, Nonce: f.nonce(f.ownerAddr),
		GasLimit: 10_000_000,
		Data:     chain.CreationCode("nosuchvm", []byte{1, 2, 3}, nil),
	})
	if r.Status {
		t.Fatal("unknown runtime deployed")
	}
}
