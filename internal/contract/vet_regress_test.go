package contract

import (
	"path/filepath"
	"testing"

	"slicer/internal/analysis"
)

// TestNoNonConstantTimeCompares runs the ctcompare analyzer as a library
// over this package and the other crypto packages. The proof-digest,
// accumulator-digest and token-hash checks in slicer.go used to be
// bytes.Equal — a short-circuiting comparison on the verification path is
// a remote timing oracle on exactly the bytes the paper's public
// verifiability rests on. This regression test keeps them (and any future
// digest compare in the crypto packages) constant time.
func TestNoNonConstantTimeCompares(t *testing.T) {
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	// The satellite audit set: the contract plus every package named in
	// analysis.CryptoPackages that exists in this module, and the
	// secret-handling packages core/sore explicitly called out by the
	// audit even though core is matched by wallclock rather than
	// ctcompare.
	dirs := []string{
		"internal/contract",
		"internal/prf",
		"internal/symenc",
		"internal/sore",
		"internal/mhash",
		"internal/accumulator",
		"internal/trapdoor",
	}
	var pkgs []*analysis.Package
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(filepath.Join(root, filepath.FromSlash(dir)))
		if err != nil {
			t.Fatalf("load %s: %v", dir, err)
		}
		if pkg == nil {
			t.Fatalf("no package at %s", dir)
		}
		for _, terr := range pkg.TypeErrors {
			t.Fatalf("typecheck %s: %v", dir, terr)
		}
		pkgs = append(pkgs, pkg)
	}
	diags := analysis.Run(pkgs, []*analysis.Analyzer{analysis.CTCompare})
	for _, d := range diags {
		t.Errorf("non-constant-time comparison of secret-derived bytes: %s", d)
	}
}
