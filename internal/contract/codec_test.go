package contract

import (
	"bytes"
	"testing"
	"testing/quick"

	"slicer/internal/core"
)

func sampleToken(seed byte) core.SearchToken {
	return core.SearchToken{
		Trapdoor: bytes.Repeat([]byte{seed}, 32),
		Epoch:    int(seed),
		G1:       bytes.Repeat([]byte{seed + 1}, 16),
		G2:       bytes.Repeat([]byte{seed + 2}, 16),
	}
}

func tokensEqual(a, b core.SearchToken) bool {
	return bytes.Equal(a.Trapdoor, b.Trapdoor) && a.Epoch == b.Epoch &&
		bytes.Equal(a.G1, b.G1) && bytes.Equal(a.G2, b.G2)
}

func TestTokenRoundTrip(t *testing.T) {
	f := func(trapdoor, g1, g2 []byte, epoch uint16) bool {
		tok := core.SearchToken{Trapdoor: trapdoor, Epoch: int(epoch), G1: g1, G2: g2}
		enc, err := EncodeToken(nil, tok)
		if err != nil {
			return false
		}
		got, rest, err := DecodeToken(enc)
		if err != nil || len(rest) != 0 {
			return false
		}
		// nil and empty slices are equivalent on the wire.
		return bytes.Equal(got.Trapdoor, trapdoor) && got.Epoch == int(epoch) &&
			bytes.Equal(got.G1, g1) && bytes.Equal(got.G2, g2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestResultsRoundTrip(t *testing.T) {
	results := []core.TokenResult{
		{
			Token:   sampleToken(1),
			ER:      [][]byte{bytes.Repeat([]byte{9}, 16), bytes.Repeat([]byte{8}, 16)},
			Witness: bytes.Repeat([]byte{7}, 64),
		},
		{
			Token:   sampleToken(5),
			ER:      nil, // empty result set
			Witness: bytes.Repeat([]byte{6}, 64),
		},
	}
	enc, err := EncodeResults(results)
	if err != nil {
		t.Fatalf("EncodeResults: %v", err)
	}
	got, rest, err := DecodeResults(enc)
	if err != nil {
		t.Fatalf("DecodeResults: %v", err)
	}
	if len(rest) != 0 {
		t.Errorf("%d trailing bytes", len(rest))
	}
	if len(got) != len(results) {
		t.Fatalf("decoded %d results, want %d", len(got), len(results))
	}
	for i := range results {
		if !tokensEqual(got[i].Token, results[i].Token) {
			t.Errorf("result %d token mismatch", i)
		}
		if len(got[i].ER) != len(results[i].ER) {
			t.Errorf("result %d ER count mismatch", i)
		}
		for k := range results[i].ER {
			if !bytes.Equal(got[i].ER[k], results[i].ER[k]) {
				t.Errorf("result %d er %d mismatch", i, k)
			}
		}
		if !bytes.Equal(got[i].Witness, results[i].Witness) {
			t.Errorf("result %d witness mismatch", i)
		}
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	results := []core.TokenResult{{
		Token:   sampleToken(1),
		ER:      [][]byte{bytes.Repeat([]byte{9}, 16)},
		Witness: bytes.Repeat([]byte{7}, 64),
	}}
	enc, err := EncodeResults(results)
	if err != nil {
		t.Fatal(err)
	}
	// Every proper prefix must fail rather than decode garbage. (Prefixes
	// that happen to parse as a shorter valid message are acceptable for a
	// length-prefixed codec only if all counts still match; with a single
	// result that never happens before the final byte.)
	for cut := 1; cut < len(enc); cut++ {
		if _, _, err := DecodeResults(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d decoded successfully", cut, len(enc))
		}
	}
}

func TestTokensHashBindsContent(t *testing.T) {
	t1 := []core.SearchToken{sampleToken(1), sampleToken(2)}
	t2 := []core.SearchToken{sampleToken(1), sampleToken(3)}
	t3 := []core.SearchToken{sampleToken(2), sampleToken(1)} // order matters
	h1, err := TokensHash(t1)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := TokensHash(t2)
	if err != nil {
		t.Fatal(err)
	}
	h3, err := TokensHash(t3)
	if err != nil {
		t.Fatal(err)
	}
	if h1 == h2 || h1 == h3 {
		t.Error("tokens hash does not bind content/order")
	}
	h1b, err := TokensHash(t1)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h1b {
		t.Error("tokens hash not deterministic")
	}
}

func TestEncodeTokenRejectsOversized(t *testing.T) {
	tok := core.SearchToken{Trapdoor: make([]byte, 70000)}
	if _, err := EncodeToken(nil, tok); err == nil {
		t.Error("oversized trapdoor accepted")
	}
}
