// Package contract implements the Slicer smart contract on top of the chain
// substrate: ADS digest storage (data freshness), escrowed search payments,
// and gas-metered on-chain result verification (Algorithm 5) that settles
// the payment to an honest cloud or refunds a cheated data user.
//
// Matching the paper's low insertion gas, the contract stores only a
// 32-byte digest of the accumulation value Ac on chain; the cloud supplies
// Ac itself (and the accumulator public parameters) in calldata at
// verification time, and the contract checks them against the stored
// digests before use.
package contract

import (
	"encoding/binary"
	"errors"
	"fmt"

	"slicer/internal/core"
)

// Calldata codec. All integers are big endian. The encoding is canonical:
// both the data user (when hashing the tokens it escrows a payment for) and
// the cloud (when submitting results) must produce identical bytes for
// identical logical content.

var errTruncated = errors.New("contract: truncated calldata")

func appendU16(dst []byte, v int) ([]byte, error) {
	if v < 0 || v > 0xffff {
		return nil, fmt.Errorf("contract: length %d exceeds u16", v)
	}
	return append(dst, byte(v>>8), byte(v)), nil
}

func appendU32(dst []byte, v int) ([]byte, error) {
	if v < 0 || v > 0x7fffffff {
		return nil, fmt.Errorf("contract: length %d exceeds u32", v)
	}
	return append(dst, byte(v>>24), byte(v>>16), byte(v>>8), byte(v)), nil
}

func readU16(data []byte) (int, []byte, error) {
	if len(data) < 2 {
		return 0, nil, errTruncated
	}
	return int(binary.BigEndian.Uint16(data)), data[2:], nil
}

func readU32(data []byte) (int, []byte, error) {
	if len(data) < 4 {
		return 0, nil, errTruncated
	}
	return int(binary.BigEndian.Uint32(data)), data[4:], nil
}

func readBytes(data []byte, n int) ([]byte, []byte, error) {
	if n < 0 || len(data) < n {
		return nil, nil, errTruncated
	}
	return data[:n], data[n:], nil
}

// EncodeToken serializes one search token.
func EncodeToken(dst []byte, tok core.SearchToken) ([]byte, error) {
	dst, err := appendU16(dst, len(tok.Trapdoor))
	if err != nil {
		return nil, err
	}
	dst = append(dst, tok.Trapdoor...)
	dst, err = appendU32(dst, tok.Epoch)
	if err != nil {
		return nil, err
	}
	dst, err = appendU16(dst, len(tok.G1))
	if err != nil {
		return nil, err
	}
	dst = append(dst, tok.G1...)
	dst, err = appendU16(dst, len(tok.G2))
	if err != nil {
		return nil, err
	}
	return append(dst, tok.G2...), nil
}

// DecodeToken parses one search token.
func DecodeToken(data []byte) (core.SearchToken, []byte, error) {
	var tok core.SearchToken
	n, data, err := readU16(data)
	if err != nil {
		return tok, nil, err
	}
	t, data, err := readBytes(data, n)
	if err != nil {
		return tok, nil, err
	}
	tok.Trapdoor = append([]byte(nil), t...)
	tok.Epoch, data, err = readU32(data)
	if err != nil {
		return tok, nil, err
	}
	n, data, err = readU16(data)
	if err != nil {
		return tok, nil, err
	}
	g1, data, err := readBytes(data, n)
	if err != nil {
		return tok, nil, err
	}
	tok.G1 = append([]byte(nil), g1...)
	n, data, err = readU16(data)
	if err != nil {
		return tok, nil, err
	}
	g2, data, err := readBytes(data, n)
	if err != nil {
		return tok, nil, err
	}
	tok.G2 = append([]byte(nil), g2...)
	return tok, data, nil
}

// EncodeTokens canonically serializes a token list. Its chain hash is what
// a search request escrows against.
func EncodeTokens(tokens []core.SearchToken) ([]byte, error) {
	out, err := appendU16(nil, len(tokens))
	if err != nil {
		return nil, err
	}
	for _, tok := range tokens {
		out, err = EncodeToken(out, tok)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// EncodeResults serializes a full search response (token, result set and
// witness per entry) for SubmitResult calldata.
func EncodeResults(results []core.TokenResult) ([]byte, error) {
	out, err := appendU16(nil, len(results))
	if err != nil {
		return nil, err
	}
	for _, res := range results {
		out, err = EncodeToken(out, res.Token)
		if err != nil {
			return nil, err
		}
		out, err = appendU32(out, len(res.ER))
		if err != nil {
			return nil, err
		}
		for _, er := range res.ER {
			out, err = appendU16(out, len(er))
			if err != nil {
				return nil, err
			}
			out = append(out, er...)
		}
		out, err = appendU16(out, len(res.Witness))
		if err != nil {
			return nil, err
		}
		out = append(out, res.Witness...)
	}
	return out, nil
}

// DecodeResults parses SubmitResult calldata back into token results.
func DecodeResults(data []byte) ([]core.TokenResult, []byte, error) {
	count, data, err := readU16(data)
	if err != nil {
		return nil, nil, err
	}
	results := make([]core.TokenResult, 0, count)
	for i := 0; i < count; i++ {
		var res core.TokenResult
		res.Token, data, err = DecodeToken(data)
		if err != nil {
			return nil, nil, err
		}
		var n int
		n, data, err = readU32(data)
		if err != nil {
			return nil, nil, err
		}
		res.ER = make([][]byte, 0, n)
		for k := 0; k < n; k++ {
			var m int
			m, data, err = readU16(data)
			if err != nil {
				return nil, nil, err
			}
			var er []byte
			er, data, err = readBytes(data, m)
			if err != nil {
				return nil, nil, err
			}
			res.ER = append(res.ER, append([]byte(nil), er...))
		}
		n, data, err = readU16(data)
		if err != nil {
			return nil, nil, err
		}
		var w []byte
		w, data, err = readBytes(data, n)
		if err != nil {
			return nil, nil, err
		}
		res.Witness = append([]byte(nil), w...)
		results = append(results, res)
	}
	return results, data, nil
}
