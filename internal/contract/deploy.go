package contract

import (
	"math/big"

	"slicer/internal/chain"
)

// runtimeBodySize is the size of the pseudo-bytecode deployed with the
// contract. Deployment charges per code byte, so this stands in for the
// compiled contract size; ~2.8 KiB matches a Solidity contract with escrow
// bookkeeping, digest storage and precompile-driven verification.
const runtimeBodySize = 2814

// RuntimeBody returns the deterministic pseudo-bytecode blob charged at
// deployment. Its content is irrelevant to execution (the registry supplies
// semantics); only its size and byte distribution affect gas.
func RuntimeBody() []byte {
	body := make([]byte, 0, runtimeBodySize)
	seed := chain.HashBytes([]byte("slicer/runtime-body/v1"))
	for len(body) < runtimeBodySize {
		body = append(body, seed[:]...)
		seed = chain.HashBytes(seed[:])
	}
	return body[:runtimeBodySize]
}

// DeployTx builds the contract-creation transaction: runtime ID, the
// pseudo-bytecode body and the constructor arguments (owner address plus
// digests of the accumulator parameters and the initial Ac).
func DeployTx(from chain.Address, nonce uint64, accParams []byte, ac *big.Int, gasLimit uint64) *chain.Transaction {
	return &chain.Transaction{
		From:     from,
		To:       chain.ZeroAddress,
		Nonce:    nonce,
		GasLimit: gasLimit,
		Data:     chain.CreationCode(RuntimeID, RuntimeBody(), InitData(from, accParams, ac)),
	}
}
