package contract

import (
	"testing"

	"slicer/internal/chain"
	"slicer/internal/core"
)

// fixture wires a Slicer deployment to a 3-validator chain network.
type fixture struct {
	t       *testing.T
	network *chain.Network
	owner   *core.Owner
	user    *core.User
	cloud   *core.Cloud

	ownerAddr, userAddr, cloudAddr chain.Address
	contractAddr                   chain.Address
}

func newFixture(t *testing.T, db []core.Record) *fixture {
	t.Helper()
	params := core.Params{Bits: 8, TrapdoorBits: 256, AccumulatorBits: 256}
	owner, err := core.NewOwner(params)
	if err != nil {
		t.Fatalf("NewOwner: %v", err)
	}
	out, err := owner.Build(db)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	cloud, err := core.NewCloud(owner.CloudInit(out.Index), core.WitnessCached)
	if err != nil {
		t.Fatalf("NewCloud: %v", err)
	}
	user, err := core.NewUser(owner.ClientState())
	if err != nil {
		t.Fatalf("NewUser: %v", err)
	}

	f := &fixture{
		t:         t,
		owner:     owner,
		user:      user,
		cloud:     cloud,
		ownerAddr: chain.AddressFromString("owner"),
		userAddr:  chain.AddressFromString("user"),
		cloudAddr: chain.AddressFromString("cloud"),
	}
	registry := chain.NewRegistry()
	if err := Register(registry); err != nil {
		t.Fatalf("Register: %v", err)
	}
	validators := []chain.Address{
		chain.AddressFromString("validator-0"),
		chain.AddressFromString("validator-1"),
		chain.AddressFromString("validator-2"),
	}
	f.network, err = chain.NewNetwork(registry, validators, map[chain.Address]uint64{
		f.ownerAddr: 1_000_000,
		f.userAddr:  1_000_000,
		f.cloudAddr: 1_000_000,
	})
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}

	// Deploy the contract.
	tx := DeployTx(f.ownerAddr, 0, owner.AccumulatorPub().Marshal(), owner.Ac(), 5_000_000)
	r := f.mine(tx)
	if !r.Status {
		t.Fatalf("deployment reverted: %s", r.Err)
	}
	f.contractAddr = r.ContractAddress
	return f
}

// mine submits a tx, seals a block on the scheduled proposer and returns
// the receipt.
func (f *fixture) mine(tx *chain.Transaction) *chain.Receipt {
	f.t.Helper()
	if err := f.network.SubmitTx(tx); err != nil {
		f.t.Fatalf("SubmitTx: %v", err)
	}
	if _, err := f.network.Step(); err != nil {
		f.t.Fatalf("Step: %v", err)
	}
	r, ok := f.network.Leader().Receipt(tx.Hash())
	if !ok {
		f.t.Fatalf("no receipt for tx")
	}
	return r
}

func (f *fixture) nonce(a chain.Address) uint64 {
	return f.network.Leader().NextNonce(a)
}

// requestAndSubmit runs the full fair-exchange flow for one query: escrow,
// cloud search, result submission. tamper mutates the response before
// submission when non-nil.
func (f *fixture) requestAndSubmit(q core.Query, payment uint64, tamper func(*core.SearchResponse)) (*chain.Receipt, chain.Hash) {
	f.t.Helper()
	req, err := f.user.Token(q)
	if err != nil {
		f.t.Fatalf("Token: %v", err)
	}
	th, err := TokensHash(req.Tokens)
	if err != nil {
		f.t.Fatalf("TokensHash: %v", err)
	}
	reqID := chain.HashBytes([]byte("request"), th[:])
	r := f.mine(&chain.Transaction{
		From:     f.userAddr,
		To:       f.contractAddr,
		Nonce:    f.nonce(f.userAddr),
		Value:    payment,
		GasLimit: 1_000_000,
		Data:     RequestData(reqID, f.cloudAddr, th),
	})
	if !r.Status {
		f.t.Fatalf("request reverted: %s", r.Err)
	}

	resp, err := f.cloud.Search(req)
	if err != nil {
		f.t.Fatalf("Search: %v", err)
	}
	if tamper != nil {
		tamper(resp)
	}
	data, err := SubmitData(reqID, f.owner.AccumulatorPub().Marshal(), f.owner.Ac(), resp.Results)
	if err != nil {
		f.t.Fatalf("SubmitData: %v", err)
	}
	return f.mine(&chain.Transaction{
		From:     f.cloudAddr,
		To:       f.contractAddr,
		Nonce:    f.nonce(f.cloudAddr),
		GasLimit: 10_000_000,
		Data:     data,
	}), reqID
}

func (f *fixture) requestStatus(reqID chain.Hash) int {
	f.t.Helper()
	ret, _, err := f.network.Leader().CallStatic(
		f.userAddr, f.contractAddr, append([]byte{MethodGetRequest}, reqID[:]...), 1_000_000)
	if err != nil {
		f.t.Fatalf("GetRequest: %v", err)
	}
	return int(ret[0])
}

var testDB = []core.Record{
	core.NewRecord(1, 5), core.NewRecord(2, 8), core.NewRecord(3, 5),
	core.NewRecord(4, 42), core.NewRecord(5, 200),
}

func TestFairExchangeHonestCloud(t *testing.T) {
	f := newFixture(t, testDB)
	const payment = 1000
	cloudBefore := f.network.Leader().Balance(f.cloudAddr)
	userBefore := f.network.Leader().Balance(f.userAddr)

	r, reqID := f.requestAndSubmit(core.Equal(5), payment, nil)
	if !r.Status {
		t.Fatalf("submit reverted: %s", r.Err)
	}
	if len(r.ReturnData) != 1 || r.ReturnData[0] != 1 {
		t.Fatalf("verification did not pass: return %x", r.ReturnData)
	}
	if got := f.requestStatus(reqID); got != StatusSettled {
		t.Errorf("request status = %d, want settled (%d)", got, StatusSettled)
	}
	if got := f.network.Leader().Balance(f.cloudAddr); got != cloudBefore+payment {
		t.Errorf("cloud balance = %d, want %d (payment settled)", got, cloudBefore+payment)
	}
	if got := f.network.Leader().Balance(f.userAddr); got != userBefore-payment {
		t.Errorf("user balance = %d, want %d", got, userBefore-payment)
	}

	// A malicious user cannot repudiate: the settlement already happened on
	// chain, and resubmission is rejected.
	resp, _ := f.cloud.Search(&core.SearchRequest{})
	data, err := SubmitData(reqID, f.owner.AccumulatorPub().Marshal(), f.owner.Ac(), resp.Results)
	if err != nil {
		t.Fatalf("SubmitData: %v", err)
	}
	r2 := f.mine(&chain.Transaction{
		From: f.cloudAddr, To: f.contractAddr,
		Nonce: f.nonce(f.cloudAddr), GasLimit: 10_000_000, Data: data,
	})
	if r2.Status {
		t.Error("resubmission against a settled request succeeded")
	}
}

func TestFairExchangeMaliciousCloudRefunded(t *testing.T) {
	cases := []struct {
		name   string
		tamper func(*core.SearchResponse)
	}{
		{"drop-record", func(r *core.SearchResponse) {
			r.Results[0].ER = r.Results[0].ER[:len(r.Results[0].ER)-1]
		}},
		{"forge-record", func(r *core.SearchResponse) {
			fake := append([]byte(nil), r.Results[0].ER[0]...)
			fake[5] ^= 0xff
			r.Results[0].ER = append(r.Results[0].ER, fake)
		}},
		{"corrupt-witness", func(r *core.SearchResponse) {
			r.Results[0].Witness[0] ^= 0x01
		}},
		{"swap-token", func(r *core.SearchResponse) {
			r.Results[0].Token.Epoch++
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := newFixture(t, testDB)
			const payment = 1000
			userBefore := f.network.Leader().Balance(f.userAddr)
			cloudBefore := f.network.Leader().Balance(f.cloudAddr)

			r, reqID := f.requestAndSubmit(core.Equal(5), payment, tc.tamper)
			if !r.Status {
				t.Fatalf("submit reverted (should refund, not revert): %s", r.Err)
			}
			if len(r.ReturnData) != 1 || r.ReturnData[0] != 0 {
				t.Fatalf("tampered results passed on-chain verification")
			}
			if got := f.requestStatus(reqID); got != StatusRefunded {
				t.Errorf("request status = %d, want refunded (%d)", got, StatusRefunded)
			}
			if got := f.network.Leader().Balance(f.userAddr); got != userBefore {
				t.Errorf("user balance = %d, want %d (refund)", got, userBefore)
			}
			if got := f.network.Leader().Balance(f.cloudAddr); got != cloudBefore {
				t.Errorf("cloud balance = %d, want %d (no payment)", got, cloudBefore)
			}
		})
	}
}

func TestStaleAcRejectedOnChain(t *testing.T) {
	f := newFixture(t, testDB)
	staleAc := f.owner.Ac()

	// Owner inserts a record and refreshes the on-chain digest.
	out, err := f.owner.Insert([]core.Record{core.NewRecord(6, 5)})
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if err := f.cloud.ApplyUpdate(out); err != nil {
		t.Fatalf("ApplyUpdate: %v", err)
	}
	f.user.UpdateStates(f.owner.StatesSnapshot())
	r := f.mine(&chain.Transaction{
		From: f.ownerAddr, To: f.contractAddr,
		Nonce: f.nonce(f.ownerAddr), GasLimit: 1_000_000,
		Data: SetAcData(f.owner.Ac()),
	})
	if !r.Status {
		t.Fatalf("SetAc reverted: %s", r.Err)
	}

	// A cloud replaying the stale Ac must be rejected outright.
	req, err := f.user.Token(core.Equal(5))
	if err != nil {
		t.Fatalf("Token: %v", err)
	}
	th, err := TokensHash(req.Tokens)
	if err != nil {
		t.Fatalf("TokensHash: %v", err)
	}
	reqID := chain.HashBytes([]byte("stale-request"))
	if rr := f.mine(&chain.Transaction{
		From: f.userAddr, To: f.contractAddr, Nonce: f.nonce(f.userAddr),
		Value: 500, GasLimit: 1_000_000, Data: RequestData(reqID, f.cloudAddr, th),
	}); !rr.Status {
		t.Fatalf("request reverted: %s", rr.Err)
	}
	resp, err := f.cloud.Search(req)
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	data, err := SubmitData(reqID, f.owner.AccumulatorPub().Marshal(), staleAc, resp.Results)
	if err != nil {
		t.Fatalf("SubmitData: %v", err)
	}
	rr := f.mine(&chain.Transaction{
		From: f.cloudAddr, To: f.contractAddr,
		Nonce: f.nonce(f.cloudAddr), GasLimit: 10_000_000, Data: data,
	})
	if rr.Status {
		t.Error("stale Ac accepted by the contract")
	}

	// With the fresh Ac the same flow settles.
	data, err = SubmitData(reqID, f.owner.AccumulatorPub().Marshal(), f.owner.Ac(), resp.Results)
	if err != nil {
		t.Fatalf("SubmitData: %v", err)
	}
	rr = f.mine(&chain.Transaction{
		From: f.cloudAddr, To: f.contractAddr,
		Nonce: f.nonce(f.cloudAddr), GasLimit: 10_000_000, Data: data,
	})
	if !rr.Status || rr.ReturnData[0] != 1 {
		t.Errorf("fresh Ac submission failed: status=%v err=%s", rr.Status, rr.Err)
	}
}

func TestOnlyOwnerMaySetAc(t *testing.T) {
	f := newFixture(t, testDB)
	r := f.mine(&chain.Transaction{
		From: f.userAddr, To: f.contractAddr,
		Nonce: f.nonce(f.userAddr), GasLimit: 1_000_000,
		Data: SetAcData(f.owner.Ac()),
	})
	if r.Status {
		t.Error("non-owner SetAc succeeded")
	}
}

func TestGasCosts(t *testing.T) {
	f := newFixture(t, testDB)

	// Deployment gas from the fixture's deploy receipt.
	deployReceipt, ok := f.network.Leader().Receipt(
		DeployTx(f.ownerAddr, 0, f.owner.AccumulatorPub().Marshal(), f.owner.Ac(), 5_000_000).Hash())
	if !ok {
		t.Fatal("deployment receipt missing")
	}

	// Steady-state data insertion (digest reset, not first set).
	out, err := f.owner.Insert([]core.Record{core.NewRecord(10, 7)})
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if err := f.cloud.ApplyUpdate(out); err != nil {
		t.Fatalf("ApplyUpdate: %v", err)
	}
	f.user.UpdateStates(f.owner.StatesSnapshot())
	insertReceipt := f.mine(&chain.Transaction{
		From: f.ownerAddr, To: f.contractAddr,
		Nonce: f.nonce(f.ownerAddr), GasLimit: 1_000_000,
		Data: SetAcData(f.owner.Ac()),
	})
	if !insertReceipt.Status {
		t.Fatalf("SetAc reverted: %s", insertReceipt.Err)
	}

	verifyReceipt, _ := f.requestAndSubmit(core.Equal(5), 1000, nil)
	if !verifyReceipt.Status {
		t.Fatalf("submit reverted: %s", verifyReceipt.Err)
	}

	t.Logf("gas: deployment=%d insertion=%d verification=%d",
		deployReceipt.GasUsed, insertReceipt.GasUsed, verifyReceipt.GasUsed)

	// Sanity bands: same orders of magnitude as the paper's Table II
	// (745,346 / 29,144 / 94,531 gas).
	if deployReceipt.GasUsed < 200_000 || deployReceipt.GasUsed > 2_000_000 {
		t.Errorf("deployment gas %d outside plausible band", deployReceipt.GasUsed)
	}
	if insertReceipt.GasUsed < 21_000 || insertReceipt.GasUsed > 60_000 {
		t.Errorf("insertion gas %d outside plausible band", insertReceipt.GasUsed)
	}
	if verifyReceipt.GasUsed < 30_000 || verifyReceipt.GasUsed > 400_000 {
		t.Errorf("verification gas %d outside plausible band", verifyReceipt.GasUsed)
	}
	// The paper's headline: insertion is cheap and constant; verification
	// costs a small multiple of it; deployment dominates both.
	if insertReceipt.GasUsed >= verifyReceipt.GasUsed {
		t.Errorf("insertion gas %d should be below verification gas %d",
			insertReceipt.GasUsed, verifyReceipt.GasUsed)
	}
	if verifyReceipt.GasUsed >= deployReceipt.GasUsed {
		t.Errorf("verification gas %d should be below deployment gas %d",
			verifyReceipt.GasUsed, deployReceipt.GasUsed)
	}
}
