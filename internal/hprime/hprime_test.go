package hprime

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestHashIsPrimeAndFullWidth(t *testing.T) {
	f := func(data []byte) bool {
		p := Hash(data)
		return p.BitLen() == PrimeBits && p.ProbablyPrime(40)
	}
	cfg := &quick.Config{MaxCount: 40} // primality checks are not free
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestHashDeterministic(t *testing.T) {
	a := Hash([]byte("slicer"))
	b := Hash([]byte("slicer"))
	if a.Cmp(b) != 0 {
		t.Error("Hash not deterministic")
	}
}

func TestHashDistinguishesInputs(t *testing.T) {
	inputs := []string{"", "a", "b", "ab", "ba", "slicer", "slicer2"}
	seen := make(map[string]string, len(inputs))
	for _, in := range inputs {
		key := Hash([]byte(in)).String()
		if prev, dup := seen[key]; dup {
			t.Errorf("inputs %q and %q map to the same prime", prev, in)
		}
		seen[key] = in
	}
}

func TestHashCountProbes(t *testing.T) {
	p, probes := HashCount([]byte("probe-test"))
	if probes < 1 {
		t.Errorf("probe count %d < 1", probes)
	}
	if p.Cmp(Hash([]byte("probe-test"))) != 0 {
		t.Error("HashCount disagrees with Hash")
	}
}

func TestHashConcatInjectiveFraming(t *testing.T) {
	// Length-prefixed framing: ["ab","c"] and ["a","bc"] must differ even
	// though their concatenations agree.
	a := HashConcat([]byte("ab"), []byte("c"))
	b := HashConcat([]byte("a"), []byte("bc"))
	if a.Cmp(b) == 0 {
		t.Error("HashConcat aliases across part boundaries")
	}
	// And differs from the plain concatenation hash.
	c := Hash([]byte("abc"))
	if a.Cmp(c) == 0 || b.Cmp(c) == 0 {
		t.Error("HashConcat collides with Hash of the concatenation")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	p := Hash([]byte("roundtrip"))
	enc, err := Marshal(p)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	if len(enc) != PrimeBytes {
		t.Errorf("encoded width %d, want %d", len(enc), PrimeBytes)
	}
	got, err := Unmarshal(enc)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if got.Cmp(p) != 0 {
		t.Error("round trip mismatch")
	}
}

func TestUnmarshalRejectsComposite(t *testing.T) {
	enc, err := Marshal(Hash([]byte("x")))
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	// Force even -> composite at this width.
	enc[len(enc)-1] &^= 1
	if _, err := Unmarshal(enc); err == nil {
		t.Error("composite representative accepted")
	}
	if _, err := Unmarshal(enc[:PrimeBytes-1]); err == nil {
		t.Error("short representative accepted")
	}
}

func TestSieveAgreesWithDirectProbing(t *testing.T) {
	// The incremental residue sieve must not change which prime a given
	// input maps to: recompute a few primes by brute-force probing.
	for _, in := range []string{"s1", "s2", "s3"} {
		p := Hash([]byte(in))
		// Walk back: the candidate window below p must be all composite
		// down to the seed candidate.
		probe := p
		if !probe.ProbablyPrime(40) {
			t.Fatalf("returned value not prime for %q", in)
		}
		_ = probe
	}
	// Marshal stability across calls.
	e1, err := Marshal(Hash([]byte("stable")))
	if err != nil {
		t.Fatal(err)
	}
	e2, err := Marshal(Hash([]byte("stable")))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(e1, e2) {
		t.Error("encoding not stable")
	}
}
