// Package hprime implements H_prime, the random-oracle-style mapping from
// arbitrary byte strings to prime representatives (Barić–Pfitzmann style).
// The RSA accumulator can only accumulate primes; Slicer therefore derives a
// prime representative for each (search token, set hash) pair before
// accumulation.
//
// Construction: expand the input with SHA-256 into a PrimeBits-wide odd
// candidate with the top bit forced (so every output has exactly PrimeBits
// bits), then probe candidate, candidate+2, candidate+4, ... until a
// probable prime is found. The mapping is deterministic, so the cloud and
// the on-chain verifier derive the same prime independently, and collision
// resistance reduces to that of SHA-256 plus the sparseness of the probe
// window.
//
// The probe loop is hot (index building derives one prime per keyword, and
// large builds have hundreds of thousands of keywords), so composites are
// first discarded by an incremental trial-division sieve: the candidate's
// residues modulo all small primes are computed once and advanced by +2 per
// probe in machine words; only survivors run a full probabilistic primality
// test.
package hprime

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/big"
	"math/bits"
)

// PrimeBits is the bit width of generated prime representatives. 128 bits
// keeps accumulator exponentiations cheap while leaving collisions
// infeasible, mirroring the paper's lightweight parameterization.
const PrimeBits = 128

// PrimeBytes is the fixed serialized width of prime representatives.
const PrimeBytes = PrimeBits / 8

// millerRabinRounds is the extra Miller–Rabin work on top of Go's baseline
// Baillie–PSW test (which has no known composite passing it).
const millerRabinRounds = 2

// smallPrimes drives the trial-division pre-sieve (odd primes only — the
// candidates are always odd).
var smallPrimes = sieve(1 << 11)

func sieve(limit int) []uint64 {
	composite := make([]bool, limit)
	var primes []uint64
	for p := 3; p < limit; p += 2 {
		if composite[p] {
			continue
		}
		primes = append(primes, uint64(p))
		for m := p * p; m < limit; m += 2 * p {
			composite[m] = true
		}
	}
	return primes
}

// Hash maps data to a PrimeBits-bit prime. The same input always yields the
// same prime.
func Hash(data []byte) *big.Int {
	p, _ := HashCount(data)
	return p
}

// HashCount is Hash instrumented with the number of candidates probed
// before a prime was found; the on-chain verifier charges gas per probe.
// Results are memoized in a bounded cache (see SetCacheCapacity): repeat
// inputs return the identical prime and probe count without re-probing.
func HashCount(data []byte) (*big.Int, int) {
	// Expand to PrimeBytes of digest material (counter-mode SHA-256).
	var buf []byte
	for ctr := uint32(0); len(buf) < PrimeBytes; ctr++ {
		h := sha256.New()
		h.Write([]byte("slicer/hprime/v1"))
		var c [4]byte
		binary.BigEndian.PutUint32(c[:], ctr)
		h.Write(c[:])
		h.Write(data)
		buf = append(buf, h.Sum(nil)...)
	}
	// The first digest block is a collision-resistant fingerprint of data;
	// use it as the memo key so cache hits skip the whole probe loop.
	var key [sipWidth]byte
	copy(key[:], buf)
	if e, ok := cache.lookup(key); ok {
		return new(big.Int).Set(e.prime), e.probes
	}
	cand := new(big.Int).SetBytes(buf[:PrimeBytes])
	cand.SetBit(cand, PrimeBits-1, 1) // force full width
	cand.SetBit(cand, 0, 1)           // force odd

	// Seed the incremental residue table with word arithmetic — folding the
	// fixed-width candidate 64 bits at a time through bits.Rem64 (the running
	// remainder is < p, as Rem64 requires). A big.Int division per sieve
	// prime here would cost more than the ProbablyPrime calls the sieve
	// saves.
	var candWords [PrimeBytes]byte
	cand.FillBytes(candWords[:])
	residues := make([]uint64, len(smallPrimes))
	for i, p := range smallPrimes {
		var rem uint64
		for off := 0; off < PrimeBytes; off += 8 {
			rem = bits.Rem64(rem, binary.BigEndian.Uint64(candWords[off:]), p)
		}
		residues[i] = rem
	}

	two := big.NewInt(2)
	probes := 0
	for {
		probes++
		smooth := false
		for i := range smallPrimes {
			if residues[i] == 0 {
				smooth = true
				break
			}
		}
		if !smooth && cand.ProbablyPrime(millerRabinRounds) {
			cache.store(key, cachedPrime{prime: new(big.Int).Set(cand), probes: probes})
			return cand, probes
		}
		cand.Add(cand, two)
		for i, p := range smallPrimes {
			residues[i] += 2
			if residues[i] >= p {
				residues[i] -= p
			}
		}
	}
}

// HashConcat maps the concatenation of several parts to a prime without
// materialising the concatenation ambiguously: each part is length-prefixed
// so that distinct part sequences can never encode identically.
func HashConcat(parts ...[]byte) *big.Int {
	p, _ := HashConcatCount(parts...)
	return p
}

// HashConcatCount is HashConcat instrumented with the probe count.
func HashConcatCount(parts ...[]byte) (*big.Int, int) {
	h := sha256.New()
	for _, p := range parts {
		var l [4]byte
		binary.BigEndian.PutUint32(l[:], uint32(len(p)))
		h.Write(l[:])
		h.Write(p)
	}
	return HashCount(h.Sum(nil))
}

// Marshal serializes a prime representative at fixed width.
func Marshal(p *big.Int) ([]byte, error) {
	if p.BitLen() > PrimeBits {
		return nil, fmt.Errorf("hprime: prime of %d bits exceeds representative width", p.BitLen())
	}
	return p.FillBytes(make([]byte, PrimeBytes)), nil
}

// Unmarshal parses a fixed-width prime representative. It verifies primality
// so corrupted accumulator inputs are rejected early.
func Unmarshal(data []byte) (*big.Int, error) {
	if len(data) != PrimeBytes {
		return nil, fmt.Errorf("hprime: representative must be %d bytes, got %d", PrimeBytes, len(data))
	}
	p := new(big.Int).SetBytes(data)
	if !p.ProbablyPrime(millerRabinRounds) {
		return nil, fmt.Errorf("hprime: %v is not prime", p)
	}
	return p, nil
}
