package hprime

import (
	"math/big"
	"sync"
)

// DefaultCacheCapacity is the default per-generation size of the prime memo
// cache: 32K entries ≈ 3 MB resident. Search-heavy workloads re-derive the
// same (token, set-hash) prime on the cloud, the verifier and the chain
// replayer; memoizing the digest→prime mapping turns those repeats into a
// map hit instead of a fresh probe loop.
const DefaultCacheCapacity = 1 << 15

// cachedPrime memoizes a probe-loop outcome. probes is kept alongside the
// prime so instrumented callers (gas metering charges per probe) observe
// exactly the same counts whether or not the cache hits.
type cachedPrime struct {
	prime  *big.Int // never mutated; copied on every return
	probes int
}

// primeCache is a two-generation memo: inserts land in cur, and when cur
// fills, cur becomes prev and a fresh generation starts. Hits in prev are
// promoted. Eviction is therefore bounded, deterministic in aggregate size,
// and needs no per-entry bookkeeping.
type primeCache struct {
	mu        sync.RWMutex
	capacity  int
	cur, prev map[[sipWidth]byte]cachedPrime
}

// sipWidth is the cache key width: the first SHA-256 block of the expanded
// candidate material, already computed by HashCount, so keying costs nothing
// extra and collisions reduce to SHA-256 collisions.
const sipWidth = 32

var cache = primeCache{
	capacity: DefaultCacheCapacity,
	cur:      make(map[[sipWidth]byte]cachedPrime),
}

// SetCacheCapacity resizes the memo cache's per-generation capacity. Zero or
// negative disables caching entirely. Resizing clears the cache; outputs are
// identical at every setting, only the amortized cost changes.
func SetCacheCapacity(n int) {
	cache.mu.Lock()
	defer cache.mu.Unlock()
	cache.capacity = n
	cache.prev = nil
	if n > 0 {
		cache.cur = make(map[[sipWidth]byte]cachedPrime, n)
	} else {
		cache.cur = nil
	}
}

// CacheLen reports the number of resident memo entries (both generations).
func CacheLen() int {
	cache.mu.RLock()
	defer cache.mu.RUnlock()
	return len(cache.cur) + len(cache.prev)
}

func (c *primeCache) lookup(key [sipWidth]byte) (cachedPrime, bool) {
	c.mu.RLock()
	if c.capacity <= 0 {
		c.mu.RUnlock()
		return cachedPrime{}, false
	}
	if e, ok := c.cur[key]; ok {
		c.mu.RUnlock()
		return e, true
	}
	e, ok := c.prev[key]
	c.mu.RUnlock()
	if ok {
		c.store(key, e) // promote so hot entries survive rotation
	}
	return e, ok
}

func (c *primeCache) store(key [sipWidth]byte, e cachedPrime) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.capacity <= 0 {
		return
	}
	if len(c.cur) >= c.capacity {
		c.prev = c.cur
		c.cur = make(map[[sipWidth]byte]cachedPrime, c.capacity)
	}
	c.cur[key] = e
}
