package hprime

import (
	"fmt"
	"sync"
	"testing"
)

func TestCacheTransparent(t *testing.T) {
	SetCacheCapacity(0) // cold reference values
	type ref struct {
		p      string
		probes int
	}
	inputs := make([][]byte, 64)
	want := make([]ref, len(inputs))
	for i := range inputs {
		inputs[i] = []byte(fmt.Sprintf("cache-input-%d", i))
		p, probes := HashCount(inputs[i])
		want[i] = ref{p.String(), probes}
	}
	SetCacheCapacity(DefaultCacheCapacity)
	defer SetCacheCapacity(DefaultCacheCapacity)
	for round := 0; round < 3; round++ {
		for i, in := range inputs {
			p, probes := HashCount(in)
			if p.String() != want[i].p || probes != want[i].probes {
				t.Fatalf("round %d input %d: cached (%v,%d) != uncached (%v,%d)",
					round, i, p, probes, want[i].p, want[i].probes)
			}
		}
	}
	if CacheLen() == 0 {
		t.Fatal("cache did not retain entries")
	}
}

func TestCacheReturnsFreshInts(t *testing.T) {
	SetCacheCapacity(DefaultCacheCapacity)
	defer SetCacheCapacity(DefaultCacheCapacity)
	in := []byte("mutation-probe")
	a := Hash(in)
	a.SetInt64(0) // caller abuses the returned value
	if b := Hash(in); b.Sign() == 0 {
		t.Fatal("cache handed out a shared big.Int")
	}
}

func TestCacheRotation(t *testing.T) {
	SetCacheCapacity(8)
	defer SetCacheCapacity(DefaultCacheCapacity)
	for i := 0; i < 64; i++ {
		Hash([]byte(fmt.Sprintf("rot-%d", i)))
	}
	if n := CacheLen(); n > 16 {
		t.Fatalf("two-generation cache holds %d entries at capacity 8", n)
	}
}

func TestCacheConcurrent(t *testing.T) {
	SetCacheCapacity(64)
	defer SetCacheCapacity(DefaultCacheCapacity)
	want := make(map[int]string)
	for i := 0; i < 32; i++ {
		want[i] = Hash([]byte(fmt.Sprintf("conc-%d", i))).String()
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for k := 0; k < 128; k++ {
				i := (k + seed) % 32
				if got := Hash([]byte(fmt.Sprintf("conc-%d", i))); got.String() != want[i] {
					errs <- fmt.Errorf("input %d: %v != %v", i, got, want[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func BenchmarkHashCold(b *testing.B) {
	SetCacheCapacity(0)
	defer SetCacheCapacity(DefaultCacheCapacity)
	for i := 0; i < b.N; i++ {
		Hash([]byte(fmt.Sprintf("bench-cold-%d", i)))
	}
}

func BenchmarkHashCached(b *testing.B) {
	SetCacheCapacity(DefaultCacheCapacity)
	Hash([]byte("bench-hot"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Hash([]byte("bench-hot"))
	}
}
