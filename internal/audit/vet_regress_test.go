package audit

import (
	"path/filepath"
	"testing"

	"slicer/internal/analysis"
)

// TestVetGatesOverAudit runs the errdrop and maporder analyzers as a library
// over this package, mirroring the durable engine's gate. An audit ledger
// that drops an append or fsync error silently is worse than no ledger — it
// reports a clean chain over records that never hit disk — and replay order
// must never depend on map iteration.
func TestVetGatesOverAudit(t *testing.T) {
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(filepath.Join(root, filepath.FromSlash("internal/audit")))
	if err != nil {
		t.Fatal(err)
	}
	if pkg == nil {
		t.Fatal("no package at internal/audit")
	}
	for _, terr := range pkg.TypeErrors {
		t.Fatalf("typecheck: %v", terr)
	}
	diags := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{
		analysis.ErrDrop,
		analysis.MapOrder,
	})
	for _, d := range diags {
		t.Errorf("slicer-vet gate violation in audit ledger: %s", d)
	}
}
