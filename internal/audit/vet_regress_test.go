package audit

import (
	"path/filepath"
	"testing"

	"slicer/internal/analysis"
)

// TestVetGatesOverAudit runs the errdrop, maporder and flow-sensitive
// analyzers as a library over this package, mirroring the durable engine's
// gate. An audit ledger that drops an append or fsync error silently is
// worse than no ledger — it reports a clean chain over records that never
// hit disk — replay order must never depend on map iteration, record
// bodies are exported evidence that must never carry key material
// (secrettaint's audit-record sink), and the ledger's mutex discipline
// holds on every path.
func TestVetGatesOverAudit(t *testing.T) {
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(filepath.Join(root, filepath.FromSlash("internal/audit")))
	if err != nil {
		t.Fatal(err)
	}
	if pkg == nil {
		t.Fatal("no package at internal/audit")
	}
	for _, terr := range pkg.TypeErrors {
		t.Fatalf("typecheck: %v", terr)
	}
	diags := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{
		analysis.ErrDrop,
		analysis.MapOrder,
		analysis.SecretTaint,
		analysis.LockDiscipline,
	})
	for _, d := range diags {
		t.Errorf("slicer-vet gate violation in audit ledger: %s", d)
	}
}
