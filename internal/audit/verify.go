package audit

import (
	"fmt"

	"slicer/internal/durable"
)

// VerifyResult summarizes a hash-chain walk over a ledger directory.
type VerifyResult struct {
	// Records is how many chain records verified.
	Records int `json:"records"`
	// HeadSeq is the newest record's sequence number (0: empty ledger).
	HeadSeq uint64 `json:"headSeq"`
	// HeadHash is the newest record's hash — the value to anchor
	// externally (print it, post it, compare it later): any rewrite of
	// history changes it.
	HeadHash Digest `json:"headHash"`
	// Truncated counts torn records discarded from the WAL tail by
	// recovery — writes that were never acknowledged, not a chain break.
	Truncated int `json:"truncated"`
	// Failures counts verification-class records with outcome=fail.
	Failures int `json:"failures"`
	// Evidence counts records carrying forensic evidence bundles.
	Evidence int `json:"evidence"`
}

// Verify re-walks the hash chain of the ledger at dir from genesis: every
// record must decode, carry its claimed sequence number, link to its
// predecessor's hash and reproduce its own. The first violation is
// returned. Safe to run offline (slicer-cli audit verify) — it never
// writes.
func Verify(fsys durable.FS, dir string) (*VerifyResult, error) {
	_, res, err := ReadDir(fsys, dir)
	return res, err
}

// ReadDir walks the ledger at dir, verifying the hash chain, and returns
// every record in order alongside the verification summary. On a chain
// violation the records verified so far are returned with the error.
func ReadDir(fsys durable.FS, dir string) ([]*Record, *VerifyResult, error) {
	if fsys == nil {
		fsys = durable.OS
	}
	rec, err := durable.Recover(fsys, dir)
	if err != nil {
		return nil, nil, err
	}
	res := &VerifyResult{Truncated: rec.TruncatedRecords}
	if rec.Snapshot != nil {
		return nil, res, fmt.Errorf("audit: %s holds a snapshot; not an audit ledger", dir)
	}
	if len(rec.Entries) > 0 && rec.FirstIndex != 1 {
		return nil, res, fmt.Errorf("audit: ledger starts at record %d, want 1", rec.FirstIndex)
	}
	records := make([]*Record, 0, len(rec.Entries))
	var prev Digest
	seq := rec.FirstIndex
	for _, payload := range rec.Entries {
		r, err := decodeRecord(payload)
		if err != nil {
			return records, res, err
		}
		if r.Seq != seq {
			return records, res, fmt.Errorf("audit: record claims seq %d at WAL index %d", r.Seq, seq)
		}
		if err := r.Check(prev); err != nil {
			return records, res, err
		}
		prev = r.Hash
		seq++
		records = append(records, r)
		res.Records++
		res.HeadSeq = r.Seq
		res.HeadHash = r.Hash
		if verificationKind(r.Kind) && r.Outcome != OutcomeOK {
			res.Failures++
		}
		if r.Evidence != nil {
			res.Evidence++
		}
	}
	return records, res, nil
}
