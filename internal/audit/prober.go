package audit

import (
	"log/slog"
	"sync"
	"time"

	"slicer/internal/obs"
)

// DefaultProbeInterval paces the continuous prober.
const DefaultProbeInterval = 15 * time.Second

// ProbeFunc runs one synthetic verified search against the live system and
// reports what happened. A nil error is a healthy probe; a non-nil error is
// a failed one — with ev (optional) holding the forensic bundle when the
// failure was a verification failure. detail is journaled either way.
type ProbeFunc func() (detail string, ev *Evidence, err error)

// ProberOptions tunes a Prober; the zero value selects the defaults.
type ProberOptions struct {
	// Interval between probes under Run (default DefaultProbeInterval).
	Interval time.Duration
	// Tenant stamps the prober's audit records.
	Tenant string
	// Registry counts probe outcomes (slicer_audit_probes_total).
	Registry *obs.Registry
	// Logger reports probe failures (may be nil).
	Logger *slog.Logger
}

// Prober continuously issues synthetic verified searches and journals each
// outcome as a KindProbe record — the always-on canary that turns "the test
// suite would have caught this" into a production signal: a misbehaving
// cloud flips the probe outcome, the ledger gains an evidence-bearing
// record, and the integrity SLO starts burning.
type Prober struct {
	led      *Ledger
	fn       ProbeFunc
	interval time.Duration
	tenant   string
	logger   *slog.Logger
	probes   *obs.CounterVec
}

// NewProber builds a prober journaling into led (which may be nil: probe
// outcomes are then only counted/logged).
func NewProber(led *Ledger, fn ProbeFunc, opts ProberOptions) *Prober {
	if opts.Interval <= 0 {
		opts.Interval = DefaultProbeInterval
	}
	if opts.Logger == nil {
		opts.Logger = obs.Nop()
	}
	p := &Prober{led: led, fn: fn, interval: opts.Interval, tenant: opts.Tenant, logger: opts.Logger}
	if opts.Registry != nil {
		p.probes = opts.Registry.CounterVec("slicer_audit_probes_total",
			"Continuous verification probes run, by outcome.", []string{"outcome"})
	}
	return p
}

// ProbeOnce runs a single probe and journals its outcome, returning the
// appended record (nil when no ledger is attached) and the probe's error.
func (p *Prober) ProbeOnce() (*Record, error) {
	detail, ev, err := p.fn()
	outcome := OutcomeOK
	if err != nil {
		outcome = OutcomeFail
		if detail == "" {
			detail = err.Error()
		} else {
			detail += ": " + err.Error()
		}
		p.logger.Warn("verification probe failed", "detail", detail)
	}
	if p.probes != nil {
		p.probes.WithLabelValues(outcome).Inc()
	}
	rec, appendErr := p.led.Append(Event{
		Kind: KindProbe, Outcome: outcome, Tenant: p.tenant, Detail: detail, Evidence: ev,
	})
	if appendErr != nil {
		p.logger.Error("probe outcome not journaled", "err", appendErr)
		if err == nil {
			err = appendErr
		}
	}
	return rec, err
}

// Run probes on a background ticker until the returned stop function is
// called. Probe errors are journaled, not fatal — the prober's job is to
// keep reporting.
func (p *Prober) Run() (stop func()) {
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(p.interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				_, _ = p.ProbeOnce()
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}
