package audit

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"slicer/internal/durable"
	"slicer/internal/obs"
)

// IntegritySeries is the windowed histogram the ledger feeds with one
// observation per verification-class record: 0 for ok, 1 for fail. With the
// single bucket bound at 0.5, any SLO objective whose target lies between 0
// and 1 (e.g. 500ms) judges exactly the verification-failure ratio — the
// existing burn-rate engine and breach-triggered profiler then fire on
// integrity incidents with no new machinery.
const IntegritySeries = "slicer_audit_integrity_failed"

// SLOAliases maps the short objective-metric spelling the -slo flag accepts
// ("audit:integrity") onto the registered integrity series.
func SLOAliases() map[string]string {
	return map[string]string{"audit:integrity": IntegritySeries}
}

// DefaultRecentCap bounds the in-memory ring of recent records served by
// the admin endpoint.
const DefaultRecentCap = 1024

// Options configures a Ledger. Dir is required; everything else defaults.
type Options struct {
	// FS is the filesystem to persist into (nil: the real one). Tests
	// inject durable.MemFS to crash the ledger at exact write boundaries.
	FS durable.FS
	// Dir is the ledger directory (WAL segments).
	Dir string
	// Fsync selects when appended records become durable. The default is
	// FsyncInterval with a 100ms bound: audit events ride the search hot
	// path, and a torn tail of unacknowledged records is truncated (not a
	// chain break) on recovery. Records carrying Evidence are always synced
	// before Append returns, regardless of policy.
	Fsync durable.Policy
	// FsyncInterval bounds staleness under FsyncInterval (default 100ms).
	FsyncInterval time.Duration
	// SegmentBytes overrides the WAL segment size (default 8 MiB).
	SegmentBytes int64
	// RecentCap bounds the in-memory ring of recent records (default
	// DefaultRecentCap; <0 disables retention).
	RecentCap int
	// Registry receives the audit metric series (may be nil).
	Registry *obs.Registry
	// Logger records append failures and recovery summaries (may be nil).
	Logger *slog.Logger
	// Now supplies record timestamps (default time.Now) — injectable so
	// tests produce deterministic chains.
	Now func() time.Time
}

func (o Options) fsys() durable.FS {
	if o.FS == nil {
		return durable.OS
	}
	return o.FS
}

// maxQueue bounds the asynchronous Log queue: past this depth producers
// block until the writer catches up, so a stalled audit disk applies back
// pressure instead of growing memory without bound.
const maxQueue = 1024

// kickDepth is the queue depth at which a producer wakes the writer
// directly. Below it, enqueue is a pure mutex+append — no goroutine wakeup
// rides the serving path — and the drain ticker picks the batch up within
// drainTick. Crossing it means a server is journaling faster than the
// ticker drains, so the producer kicks the writer itself.
const kickDepth = 16

// drainTick bounds how long a sub-kickDepth batch sits in memory before the
// writer journals it.
const drainTick = 2 * time.Millisecond

// Ledger is the append-only hash-chained audit log. All methods are safe
// for concurrent use and nil-safe: a nil *Ledger ignores appends and
// reports empty state, so callers thread an optional ledger without
// branching.
type Ledger struct {
	mu       sync.Mutex
	log      *durable.Log
	lastHash Digest
	nextSeq  uint64
	recent   []*Record // ring, oldest first
	cap      int
	now      func() time.Time
	logger   *slog.Logger
	tenant   string

	// Asynchronous Log queue, drained in order by one writer goroutine so
	// the WAL write syscall stays off the serving hot path. Append (and any
	// evidence-bearing event) flushes the queue first, so the chain order
	// always matches call order.
	qmu     sync.Mutex
	qcond   *sync.Cond // work arrived or the ledger is closing
	drained *sync.Cond // queue emptied / space freed / writer idled
	queue   []Event
	writing bool
	closing bool

	records   *obs.CounterVec
	appendErr *obs.Counter
	failures  *obs.Counter
	headSeq   *obs.Gauge
	flag      *obs.Histogram
}

// Open opens (or creates) the ledger in opts.Dir, verifying the hash chain
// over every recovered record before accepting new appends. A broken chain
// — any record whose hash or predecessor link fails — is tampering and
// refuses to open; a torn WAL tail (records that were never acknowledged
// durable) is truncated by recovery and is not a chain break.
func Open(opts Options) (*Ledger, error) {
	if opts.Dir == "" {
		return nil, errors.New("audit: ledger needs a directory")
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	if opts.Logger == nil {
		opts.Logger = obs.Nop()
	}
	if opts.Fsync == durable.FsyncInterval && opts.FsyncInterval <= 0 {
		opts.FsyncInterval = 100 * time.Millisecond
	}
	rcap := opts.RecentCap
	switch {
	case rcap == 0:
		rcap = DefaultRecentCap
	case rcap < 0:
		rcap = 0
	}

	rec, err := durable.Recover(opts.fsys(), opts.Dir)
	if err != nil {
		return nil, err
	}
	if rec.Snapshot != nil {
		return nil, errors.New("audit: ledger directory holds a snapshot; audit ledgers are append-only and never compact")
	}
	l := &Ledger{cap: rcap, now: opts.Now, logger: opts.Logger, nextSeq: rec.NextIndex}
	seq := rec.FirstIndex
	if len(rec.Entries) > 0 && seq != 1 {
		return nil, fmt.Errorf("audit: ledger starts at record %d, want 1 (compacted ledgers are not auditable)", seq)
	}
	for _, payload := range rec.Entries {
		r, err := decodeRecord(payload)
		if err != nil {
			return nil, err
		}
		if r.Seq != seq {
			return nil, fmt.Errorf("audit: record claims seq %d at WAL index %d", r.Seq, seq)
		}
		if err := r.Check(l.lastHash); err != nil {
			return nil, err
		}
		l.lastHash = r.Hash
		l.keep(r)
		seq++
	}
	if rec.TruncatedRecords > 0 {
		opts.Logger.Warn("audit ledger recovered with torn tail truncated",
			"dir", opts.Dir, "records", len(rec.Entries), "truncated", rec.TruncatedRecords)
	}

	l.log, err = durable.OpenLog(opts.fsys(), opts.Dir, durable.LogOptions{
		SegmentBytes:  opts.SegmentBytes,
		Fsync:         opts.Fsync,
		FsyncInterval: opts.FsyncInterval,
		Start:         rec.NextIndex,
	})
	if err != nil {
		return nil, err
	}
	l.qcond = sync.NewCond(&l.qmu)
	l.drained = sync.NewCond(&l.qmu)
	go l.writer()
	go l.drainLoop()
	if reg := opts.Registry; reg != nil {
		l.log.SetMetrics(reg)
		l.records = reg.CounterVec("slicer_audit_records_total",
			"Audit records journaled, by kind and outcome.", []string{"kind", "outcome"})
		l.appendErr = reg.Counter("slicer_audit_append_failures_total",
			"Audit records lost because the ledger append failed.")
		l.failures = reg.Counter("slicer_audit_verification_failures_total",
			"Verification-class audit records with outcome=fail (evidence journaled).")
		l.headSeq = reg.Gauge("slicer_audit_head_seq",
			"Sequence number of the newest audit record.")
		l.flag = reg.WindowedHistogramOpts(IntegritySeries,
			"Verification outcome per audit event: 0 ok, 1 fail; the windowed failure ratio drives the audit:integrity SLO.",
			[]float64{0.5}, obs.WindowOptions{})
		l.headSeq.Set(float64(l.nextSeq - 1))
	}
	return l, nil
}

// keep appends r to the bounded recent ring.
func (l *Ledger) keep(r *Record) {
	if l.cap == 0 {
		return
	}
	l.recent = append(l.recent, r)
	if len(l.recent) > l.cap {
		l.recent = l.recent[1:]
	}
}

// Event is one security-relevant occurrence to journal.
type Event struct {
	Kind    string
	Outcome string
	Tenant  string
	Detail  string
	// Evidence, when non-nil, marks the record as a forensic bundle: it is
	// forced durable (fsync) before Append returns, whatever the policy.
	Evidence *Evidence
}

// verificationKind reports whether a record kind contributes to the
// integrity SLO series (events whose outcome states a verification verdict).
func verificationKind(kind string) bool {
	switch kind {
	case KindVerify, KindProbe, KindSettle, KindRefund:
		return true
	}
	return false
}

// Append journals one event as the next chain record and returns it,
// flushing any queued Log events first so chain order matches call order.
// The record is acknowledged under the ledger's fsync policy — immediately
// durable when it carries evidence. A nil ledger returns (nil, nil).
func (l *Ledger) Append(ev Event) (*Record, error) {
	if l == nil {
		return nil, nil
	}
	l.flushQueue()
	return l.append(ev)
}

// append seals and journals one event synchronously. It must not touch the
// queue — the writer goroutine calls it while draining.
func (l *Ledger) append(ev Event) (*Record, error) {
	if ev.Outcome == "" {
		ev.Outcome = OutcomeOK
	}
	if ev.Tenant == "" {
		ev.Tenant = l.tenantDefault()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	r := &Record{
		Seq:      l.nextSeq,
		Time:     l.now().UnixNano(),
		Kind:     ev.Kind,
		Outcome:  ev.Outcome,
		Tenant:   ev.Tenant,
		Detail:   ev.Detail,
		Evidence: ev.Evidence,
		Prev:     l.lastHash,
	}
	if err := r.seal(); err != nil {
		return nil, err
	}
	payload, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("audit: encode record %d: %w", r.Seq, err)
	}
	if _, err := l.log.Append(payload); err != nil {
		return nil, fmt.Errorf("audit: append: %w", err)
	}
	if ev.Evidence != nil {
		// Evidence bundles must not be lost to a crash between append and
		// the next interval flush: the refund they explain is already on
		// chain.
		if err := l.log.Sync(); err != nil {
			return nil, fmt.Errorf("audit: sync evidence: %w", err)
		}
	}
	l.lastHash = r.Hash
	l.nextSeq++
	l.keep(r)
	l.observe(r)
	return r, nil
}

// observe updates the metric series for one appended record. Caller holds
// l.mu (gauge/counter writes are cheap).
func (l *Ledger) observe(r *Record) {
	if l.records != nil {
		l.records.WithLabelValues(r.Kind, r.Outcome).Inc()
	}
	if l.headSeq != nil {
		l.headSeq.Set(float64(r.Seq))
	}
	if verificationKind(r.Kind) {
		v := 0.0
		if r.Outcome != OutcomeOK {
			v = 1.0
			if l.failures != nil {
				l.failures.Inc()
			}
		}
		if l.flag != nil {
			l.flag.Observe(v)
		}
	}
}

// Log journals an event best-effort: on failure the loss is counted
// (slicer_audit_append_failures_total) and logged, never surfaced — for hot
// paths where serving must not depend on the audit disk. Evidence-free
// events are queued and journaled asynchronously by a single writer (in
// call order, within drainTick; Head may briefly lag), so neither the WAL
// write syscall nor a goroutine wakeup rides the serving path. Evidence-
// bearing events are journaled synchronously and
// fsynced before Log returns — forensic bundles must not sit in a queue a
// crash can empty.
func (l *Ledger) Log(ev Event) {
	if l == nil {
		return
	}
	if ev.Evidence != nil {
		if _, err := l.Append(ev); err != nil {
			l.countLoss(ev, err)
		}
		return
	}
	l.qmu.Lock()
	for len(l.queue) >= maxQueue && !l.closing {
		l.drained.Wait()
	}
	if l.closing {
		l.qmu.Unlock()
		if _, err := l.append(ev); err != nil {
			l.countLoss(ev, err)
		}
		return
	}
	l.queue = append(l.queue, ev)
	if len(l.queue) == kickDepth {
		l.qcond.Signal()
	}
	l.qmu.Unlock()
}

// writer drains the Log queue in order until Close.
func (l *Ledger) writer() {
	l.qmu.Lock()
	for {
		for len(l.queue) == 0 && !l.closing {
			l.qcond.Wait()
		}
		if len(l.queue) == 0 {
			l.writing = false
			l.drained.Broadcast()
			l.qmu.Unlock()
			return
		}
		batch := l.queue
		l.queue = nil
		l.writing = true
		l.qmu.Unlock()
		for _, ev := range batch {
			if _, err := l.append(ev); err != nil {
				l.countLoss(ev, err)
			}
		}
		l.qmu.Lock()
		l.writing = false
		l.drained.Broadcast()
	}
}

// drainLoop nudges the writer every drainTick so sub-kickDepth batches
// never sit in memory for long, without any producer paying for a wakeup.
func (l *Ledger) drainLoop() {
	for {
		time.Sleep(drainTick)
		l.qmu.Lock()
		if l.closing {
			l.qmu.Unlock()
			return
		}
		if len(l.queue) > 0 {
			l.qcond.Signal()
		}
		l.qmu.Unlock()
	}
}

// flushQueue blocks until every queued Log event has been journaled.
func (l *Ledger) flushQueue() {
	l.qmu.Lock()
	for len(l.queue) > 0 || l.writing {
		l.qcond.Signal() // don't wait out a drain tick
		l.drained.Wait()
	}
	l.qmu.Unlock()
}

func (l *Ledger) countLoss(ev Event, err error) {
	if l.appendErr != nil {
		l.appendErr.Inc()
	}
	l.logger.Error("audit append failed; record lost", "kind", ev.Kind, "err", err)
}

// SetTenant sets a default tenant stamped on records whose event carries
// none (e.g. server-local prober events).
func (l *Ledger) SetTenant(tenant string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.tenant = tenant
	l.mu.Unlock()
}

func (l *Ledger) tenantDefault() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.tenant
}

// Head reports the newest record's sequence number and hash (0 and the
// zero digest for an empty ledger).
func (l *Ledger) Head() (uint64, Digest) {
	if l == nil {
		return 0, Digest{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq - 1, l.lastHash
}

// Recent returns up to n of the newest retained records, newest first.
func (l *Ledger) Recent(n int) []*Record {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if n <= 0 || n > len(l.recent) {
		n = len(l.recent)
	}
	out := make([]*Record, 0, n)
	for i := len(l.recent) - 1; i >= len(l.recent)-n; i-- {
		out = append(out, l.recent[i])
	}
	return out
}

// Get returns a retained record by sequence number (nil when it has been
// evicted from the recent ring — the full history stays on disk for
// `slicer-cli audit verify`).
func (l *Ledger) Get(seq uint64) *Record {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := len(l.recent) - 1; i >= 0; i-- {
		if l.recent[i].Seq == seq {
			return l.recent[i]
		}
	}
	return nil
}

// Sync journals every queued Log event and forces buffered records durable.
func (l *Ledger) Sync() error {
	if l == nil {
		return nil
	}
	l.flushQueue()
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.log.Sync()
}

// Close drains the Log queue, syncs and closes the ledger.
func (l *Ledger) Close() error {
	if l == nil {
		return nil
	}
	l.qmu.Lock()
	l.closing = true
	l.qcond.Signal()
	l.qmu.Unlock()
	l.flushQueue()
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.log.Sync(); err != nil {
		_ = l.log.Close()
		return err
	}
	return l.log.Close()
}
