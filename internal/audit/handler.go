package audit

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// AdminHandler serves the ledger at /debug/audit on the obs admin endpoint:
//
//	GET /debug/audit            recent records as JSON (?n=50 bounds the count)
//	GET /debug/audit?id=<seq>   one record rendered as text, evidence included
//
// Only records still in the bounded recent ring are addressable here; the
// full history is on disk for `slicer-cli audit verify` / `audit tail`.
func (l *Ledger) AdminHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if id := r.URL.Query().Get("id"); id != "" {
			seq, err := strconv.ParseUint(id, 10, 64)
			if err != nil {
				http.Error(w, "bad id: "+err.Error(), http.StatusBadRequest)
				return
			}
			rec := l.Get(seq)
			if rec == nil {
				http.Error(w, "record not retained in memory (walk the ledger with `slicer-cli audit tail`)", http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			WriteRecordText(w, rec)
			return
		}
		n := 50
		if s := r.URL.Query().Get("n"); s != "" {
			if v, err := strconv.Atoi(s); err == nil && v > 0 {
				n = v
			}
		}
		head, hash := l.Head()
		payload := struct {
			HeadSeq  uint64    `json:"headSeq"`
			HeadHash Digest    `json:"headHash"`
			Records  []*Record `json:"records"`
		}{head, hash, l.Recent(n)}
		if payload.Records == nil {
			payload.Records = []*Record{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(payload)
	})
}

// WriteRecordText renders one record with its evidence as aligned text —
// the ?id= admin view and `slicer-cli audit tail` share this format.
func WriteRecordText(w io.Writer, rec *Record) {
	fmt.Fprintf(w, "record  #%d\n", rec.Seq)
	fmt.Fprintf(w, "time    %s\n", time.Unix(0, rec.Time).UTC().Format(time.RFC3339Nano))
	fmt.Fprintf(w, "kind    %s\n", rec.Kind)
	fmt.Fprintf(w, "outcome %s\n", rec.Outcome)
	if rec.Tenant != "" {
		fmt.Fprintf(w, "tenant  %s\n", rec.Tenant)
	}
	if rec.Detail != "" {
		fmt.Fprintf(w, "detail  %s\n", rec.Detail)
	}
	fmt.Fprintf(w, "prev    %s\n", rec.Prev)
	fmt.Fprintf(w, "hash    %s\n", rec.Hash)
	ev := rec.Evidence
	if ev == nil {
		return
	}
	fmt.Fprintf(w, "evidence:\n")
	if ev.Phase != "" {
		fmt.Fprintf(w, "  phase       %s (token index %d)\n", ev.Phase, ev.TokenIndex)
	}
	if len(ev.RequestID) > 0 {
		fmt.Fprintf(w, "  request id  %s\n", hex.EncodeToString(ev.RequestID))
	}
	if len(ev.TxHash) > 0 {
		fmt.Fprintf(w, "  tx hash     %s\n", hex.EncodeToString(ev.TxHash))
	}
	if ev.GasUsed > 0 {
		fmt.Fprintf(w, "  gas used    %d\n", ev.GasUsed)
	}
	if len(ev.ReturnData) > 0 {
		fmt.Fprintf(w, "  return data %s\n", hex.EncodeToString(ev.ReturnData))
	}
	if len(ev.Ac) > 0 {
		fmt.Fprintf(w, "  ac          %s… (%d bytes)\n", hex.EncodeToString(prefixBytes(ev.Ac, 16)), len(ev.Ac))
	}
	if len(ev.AccPub) > 0 {
		fmt.Fprintf(w, "  acc pub     %d bytes\n", len(ev.AccPub))
	}
	if len(ev.Tokens) > 0 {
		fmt.Fprintf(w, "  tokens      %d bytes of request JSON\n", len(ev.Tokens))
	}
	if len(ev.Response) > 0 {
		fmt.Fprintf(w, "  response    %d bytes of raw response JSON\n", len(ev.Response))
		fmt.Fprintf(w, "%s\n", ev.Response)
	}
}

func prefixBytes(b []byte, n int) []byte {
	if len(b) < n {
		return b
	}
	return b[:n]
}
