package audit

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"slicer/internal/durable"
	"slicer/internal/obs"
)

// testClock hands out strictly increasing deterministic timestamps.
func testClock() func() time.Time {
	t := time.Unix(1_700_000_000, 0)
	var mu sync.Mutex
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		t = t.Add(time.Millisecond)
		return t
	}
}

func openTestLedger(t *testing.T, fsys durable.FS, reg *obs.Registry) *Ledger {
	t.Helper()
	l, err := Open(Options{FS: fsys, Dir: "led", Fsync: durable.FsyncAlways, Registry: reg, Now: testClock()})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}

func TestLedgerChainAppendAndVerify(t *testing.T) {
	fsys := durable.NewMemFS()
	l := openTestLedger(t, fsys, obs.NewRegistry())
	events := []Event{
		{Kind: KindInit, Detail: "1000 records"},
		{Kind: KindSearch, Tenant: "acme", Detail: "3 tokens"},
		{Kind: KindVerify, Outcome: OutcomeOK, Tenant: "acme"},
		{Kind: KindSettle, Outcome: OutcomeOK, Detail: "gas 12345"},
		{Kind: KindRefund, Outcome: OutcomeFail, Evidence: &Evidence{
			Phase: "membership", TokenIndex: 1, GasUsed: 99, Response: json.RawMessage(`{"x":1}`),
		}},
	}
	var prev Digest
	for i, ev := range events {
		rec, err := l.Append(ev)
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if rec.Seq != uint64(i+1) {
			t.Errorf("record %d: seq = %d", i, rec.Seq)
		}
		if rec.Prev != prev {
			t.Errorf("record %d: prev hash does not link", i)
		}
		if err := rec.Check(prev); err != nil {
			t.Errorf("record %d: %v", i, err)
		}
		prev = rec.Hash
	}
	if head, hash := l.Head(); head != 5 || hash != prev {
		t.Errorf("Head() = %d/%s, want 5/%s", head, hash, prev)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	records, res, err := ReadDir(fsys, "led")
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if res.Records != 5 || res.HeadSeq != 5 || res.HeadHash != prev {
		t.Errorf("verify result = %+v", res)
	}
	if res.Failures != 1 || res.Evidence != 1 {
		t.Errorf("failures/evidence = %d/%d, want 1/1", res.Failures, res.Evidence)
	}
	ev := records[4].Evidence
	if ev == nil || ev.Phase != "membership" || ev.TokenIndex != 1 || string(ev.Response) != `{"x":1}` {
		t.Errorf("evidence did not round-trip: %+v", ev)
	}
	// Tenant tag survives the chain.
	if records[1].Tenant != "acme" {
		t.Errorf("tenant = %q", records[1].Tenant)
	}
}

func TestLedgerReopenResumesChain(t *testing.T) {
	fsys := durable.NewMemFS()
	l := openTestLedger(t, fsys, nil)
	for i := 0; i < 3; i++ {
		if _, err := l.Append(Event{Kind: KindSearch, Detail: fmt.Sprintf("q%d", i)}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	_, head := l.Head()
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2 := openTestLedger(t, fsys, nil)
	rec, err := l2.Append(Event{Kind: KindProbe, Outcome: OutcomeOK})
	if err != nil {
		t.Fatalf("Append after reopen: %v", err)
	}
	if rec.Seq != 4 || rec.Prev != head {
		t.Errorf("reopened chain: seq %d prev %s, want 4 linking %s", rec.Seq, rec.Prev, head)
	}
	if err := l2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, _, err := ReadDir(fsys, "led"); err != nil {
		t.Fatalf("ReadDir after reopen: %v", err)
	}
}

// TestLedgerTamperDetected rewrites an acknowledged record on disk and
// requires both the offline verify and the next Open to refuse the chain.
func TestLedgerTamperDetected(t *testing.T) {
	fsys := durable.NewMemFS()
	l := openTestLedger(t, fsys, nil)
	for i := 0; i < 3; i++ {
		if _, err := l.Append(Event{Kind: KindSearch, Detail: fmt.Sprintf("q%d", i)}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Rewrite the middle record's payload in place, fixing the CRC framing
	// so only the hash chain can notice. Easiest in-place mutation with a
	// valid frame: re-frame the whole segment with one record's detail
	// altered.
	entries, err := fsys.ReadDir("led")
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	var seg string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "wal-") && strings.HasSuffix(e.Name(), ".log") {
			seg = "led/" + e.Name()
		}
	}
	if seg == "" {
		t.Fatal("no WAL segment found")
	}
	data, err := durable.ReadFile(fsys, seg)
	if err != nil {
		t.Fatalf("read segment: %v", err)
	}
	var frames [][]byte
	rest := data
	for len(rest) > 0 {
		var payload []byte
		payload, rest, err = durable.DecodeRecord(rest)
		if err != nil {
			t.Fatalf("decode frame: %v", err)
		}
		frames = append(frames, payload)
	}
	if len(frames) != 3 {
		t.Fatalf("got %d frames, want 3", len(frames))
	}
	tampered := []byte(strings.Replace(string(frames[1]), "q1", "qX", 1))
	var out []byte
	for i, f := range frames {
		if i == 1 {
			f = tampered
		}
		out = durable.AppendRecord(out, f)
	}
	f, err := fsys.OpenFile(seg, os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		t.Fatalf("rewrite segment: %v", err)
	}
	if _, err := f.Write(out); err != nil {
		t.Fatalf("write tampered segment: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync tampered segment: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close tampered segment: %v", err)
	}

	if _, _, err := ReadDir(fsys, "led"); err == nil {
		t.Error("ReadDir accepted a tampered record")
	} else if !strings.Contains(err.Error(), "hash mismatch") {
		t.Errorf("tamper error = %v, want hash mismatch", err)
	}
	if _, err := Open(Options{FS: fsys, Dir: "led", Now: testClock()}); err == nil {
		t.Error("Open accepted a tampered ledger")
	}
}

// TestLedgerCrashTruncatesUnsyncedTail loses power after unsynced appends:
// recovery truncates the torn tail and the chain still verifies, resuming
// from the last durable record.
func TestLedgerCrashTruncatesUnsyncedTail(t *testing.T) {
	fsys := durable.NewMemFS()
	l, err := Open(Options{FS: fsys, Dir: "led", Fsync: durable.FsyncNever, Now: testClock()})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := l.Append(Event{Kind: KindSearch, Detail: "durable"}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if _, err := l.Append(Event{Kind: KindSearch, Detail: "volatile"}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	fsys.Crash() // no Close: the process died

	l2, err := Open(Options{FS: fsys, Dir: "led", Now: testClock()})
	if err != nil {
		t.Fatalf("Open after crash: %v", err)
	}
	head, _ := l2.Head()
	if head != 1 {
		t.Fatalf("head after crash = %d, want 1 (unsynced tail gone)", head)
	}
	rec, err := l2.Append(Event{Kind: KindProbe})
	if err != nil {
		t.Fatalf("Append after crash: %v", err)
	}
	if rec.Seq != 2 {
		t.Errorf("post-crash seq = %d, want 2", rec.Seq)
	}
	if err := l2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, res, err := ReadDir(fsys, "led"); err != nil || res.Records != 2 {
		t.Fatalf("ReadDir after crash: %v (records %d)", err, res.Records)
	}
}

// TestLedgerEvidenceSurvivesCrash: evidence bundles are synced at append
// even under FsyncNever, so a kill -9 right after cannot lose them.
func TestLedgerEvidenceSurvivesCrash(t *testing.T) {
	fsys := durable.NewMemFS()
	l, err := Open(Options{FS: fsys, Dir: "led", Fsync: durable.FsyncNever, Now: testClock()})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := l.Append(Event{Kind: KindRefund, Outcome: OutcomeFail,
		Evidence: &Evidence{Phase: "membership", Response: json.RawMessage(`{"tampered":true}`)}}); err != nil {
		t.Fatalf("Append evidence: %v", err)
	}
	fsys.Crash()

	records, res, err := ReadDir(fsys, "led")
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if res.Evidence != 1 || records[0].Evidence == nil {
		t.Fatalf("evidence bundle lost to the crash: %+v", res)
	}
}

func TestLedgerMetricsAndIntegritySLO(t *testing.T) {
	fsys := durable.NewMemFS()
	reg := obs.NewRegistry()
	l := openTestLedger(t, fsys, reg)
	for i := 0; i < 8; i++ {
		l.Log(Event{Kind: KindProbe, Outcome: OutcomeOK})
	}
	l.Log(Event{Kind: KindRefund, Outcome: OutcomeFail})
	l.Log(Event{Kind: KindProbe, Outcome: OutcomeFail})
	if err := l.Sync(); err != nil { // drain the async Log queue before reading metrics
		t.Fatalf("Sync: %v", err)
	}
	snap := reg.Snapshot()
	if got := snap[obs.VecName("slicer_audit_records_total", "kind", KindProbe, "outcome", OutcomeOK)]; got != 8 {
		t.Errorf("probe ok records = %v, want 8", got)
	}
	if got := snap["slicer_audit_verification_failures_total"]; got != 2 {
		t.Errorf("verification failures = %v, want 2", got)
	}
	if got := snap["slicer_audit_head_seq"]; got != 10 {
		t.Errorf("head seq gauge = %v, want 10", got)
	}

	// Two failures in ten observations is a 20% failure ratio — burn rate 20
	// against a 99% objective's 1% budget, past the 14.4 page threshold on
	// both windows, so the SLO engine must breach on the integrity series
	// with no latency machinery changes.
	eng := obs.NewEngine(reg, []obs.Objective{{
		Name: "integrity", Metric: IntegritySeries,
		Target: 500 * time.Millisecond, GoodRatio: 0.99, Window: time.Minute,
	}}, obs.EngineOptions{})
	sts := eng.Evaluate()
	if len(sts) != 1 {
		t.Fatalf("got %d statuses", len(sts))
	}
	st := sts[0]
	if st.Missing {
		t.Fatal("integrity series not collecting")
	}
	if st.GoodFraction > 0.81 || st.GoodFraction < 0.79 {
		t.Errorf("good fraction = %v, want ~0.8", st.GoodFraction)
	}
	if st.State != "breach" {
		t.Errorf("slo state = %s, want breach (fast %v slow %v)", st.State, st.FastBurn, st.SlowBurn)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestNilLedgerIsSafe(t *testing.T) {
	var l *Ledger
	l.Log(Event{Kind: KindSearch})
	if rec, err := l.Append(Event{Kind: KindSearch}); rec != nil || err != nil {
		t.Errorf("nil Append = %v, %v", rec, err)
	}
	if head, _ := l.Head(); head != 0 {
		t.Errorf("nil Head = %d", head)
	}
	if got := l.Recent(5); got != nil {
		t.Errorf("nil Recent = %v", got)
	}
	if err := l.Close(); err != nil {
		t.Errorf("nil Close = %v", err)
	}
	l.SetTenant("x")
}

func TestProberJournalsOutcomes(t *testing.T) {
	fsys := durable.NewMemFS()
	reg := obs.NewRegistry()
	l := openTestLedger(t, fsys, reg)
	healthy := true
	p := NewProber(l, func() (string, *Evidence, error) {
		if healthy {
			return "q<128 ok", nil, nil
		}
		return "q<128", &Evidence{Phase: "membership"}, errors.New("verification failed")
	}, ProberOptions{Tenant: "canary", Registry: reg})

	rec, err := p.ProbeOnce()
	if err != nil {
		t.Fatalf("healthy probe: %v", err)
	}
	if rec.Kind != KindProbe || rec.Outcome != OutcomeOK || rec.Tenant != "canary" {
		t.Errorf("healthy probe record = %+v", rec)
	}

	healthy = false
	rec, err = p.ProbeOnce()
	if err == nil {
		t.Fatal("failing probe reported success")
	}
	if rec.Outcome != OutcomeFail || rec.Evidence == nil {
		t.Errorf("failing probe record = %+v", rec)
	}
	snap := reg.Snapshot()
	if got := snap[obs.VecName("slicer_audit_probes_total", "outcome", OutcomeFail)]; got != 1 {
		t.Errorf("failed probes = %v, want 1", got)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestLedgerConcurrentAppends(t *testing.T) {
	fsys := durable.NewMemFS()
	l := openTestLedger(t, fsys, nil)
	var wg sync.WaitGroup
	const writers, each = 8, 25
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := l.Append(Event{Kind: KindSearch, Detail: fmt.Sprintf("w%d-%d", w, i)}); err != nil {
					t.Errorf("Append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	_, res, err := ReadDir(fsys, "led")
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if res.Records != writers*each {
		t.Errorf("records = %d, want %d", res.Records, writers*each)
	}
}
