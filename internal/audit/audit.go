// Package audit implements a tamper-evident, append-only audit ledger for
// every security-relevant event in a Slicer deployment: searches issued,
// public verification outcomes, updates applied, settle/refund receipts and
// prober results. Records form a SHA-256 hash chain (each record commits to
// its predecessor's hash) persisted through the internal/durable WAL, whose
// CRC-32C framing detects bit rot while the hash chain detects deliberate
// rewriting: altering any acknowledged record breaks every hash after it.
//
// On any verification failure the caller attaches an Evidence bundle — the
// query tokens, the raw response bytes exactly as received, the accumulation
// value they were judged against and the chain receipt that refunded the
// fee — journaled atomically with the failure record, so the incident is
// attributable long after the in-memory state is gone.
package audit

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Record kinds — what class of security-relevant event happened.
const (
	// KindInit: an owner initialized a cloud with a fresh encrypted index.
	KindInit = "init"
	// KindUpdate: an index/ADS delta was applied (owner insert).
	KindUpdate = "update"
	// KindSearch: a search was issued or served.
	KindSearch = "search"
	// KindVerify: a public verification of a search response ran.
	KindVerify = "verify"
	// KindSettle: an escrowed search fee settled to the cloud on chain.
	KindSettle = "settle"
	// KindRefund: on-chain verification failed and the fee was refunded.
	KindRefund = "refund"
	// KindProbe: a synthetic verified search from the continuous prober.
	KindProbe = "probe"
	// KindSeal: a chain server sealed a block.
	KindSeal = "seal"
	// KindRebalance: a shard imported or deleted an address range during a
	// routed range move (the two halves of the rebalance protocol).
	KindRebalance = "rebalance"
)

// Record outcomes.
const (
	OutcomeOK   = "ok"
	OutcomeFail = "fail"
)

// Digest is a SHA-256 hash rendered as lowercase hex in JSON.
type Digest [sha256.Size]byte

// String returns the lowercase hex form.
func (d Digest) String() string { return hex.EncodeToString(d[:]) }

// IsZero reports whether the digest is the genesis (all-zero) value.
func (d Digest) IsZero() bool { return d == Digest{} }

// MarshalJSON renders the digest as a hex string.
func (d Digest) MarshalJSON() ([]byte, error) {
	return json.Marshal(d.String())
}

// UnmarshalJSON parses a hex string of exactly 32 bytes.
func (d *Digest) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("audit: digest: %w", err)
	}
	raw, err := hex.DecodeString(s)
	if err != nil {
		return fmt.Errorf("audit: digest: %w", err)
	}
	if len(raw) != sha256.Size {
		return fmt.Errorf("audit: digest is %d bytes, want %d", len(raw), sha256.Size)
	}
	copy(d[:], raw)
	return nil
}

// Evidence is the forensic bundle journaled with a verification failure:
// everything needed to re-run the public verification and attribute the
// refund after the fact. All fields are optional — callers fill what the
// failure site has in hand.
type Evidence struct {
	// Tokens is the search request (tokens included) as JSON.
	Tokens json.RawMessage `json:"tokens,omitempty"`
	// Response is the raw response — results and verification objects —
	// exactly as received from the cloud, before any repair or retry.
	Response json.RawMessage `json:"response,omitempty"`
	// Ac is the accumulation value the response was verified against.
	Ac []byte `json:"ac,omitempty"`
	// AccPub is the accumulator's public parameters (marshaled), so the
	// proof check is replayable from the bundle alone.
	AccPub []byte `json:"accPub,omitempty"`
	// TokenIndex is the offending result (-1: response-level failure). Not
	// omitempty: index 0 is a real token and must round-trip.
	TokenIndex int `json:"tokenIndex"`
	// Phase names the verification phase that rejected the response
	// (core.PhaseCompleteness / PhaseOrder / PhaseMembership).
	Phase string `json:"phase,omitempty"`
	// RequestID is the fair-exchange escrow request this search settled
	// under (the contract's request key).
	RequestID []byte `json:"requestId,omitempty"`
	// TxHash is the on-chain settle/refund transaction hash.
	TxHash []byte `json:"txHash,omitempty"`
	// GasUsed is the gas the verification transaction consumed.
	GasUsed uint64 `json:"gasUsed,omitempty"`
	// ReturnData is the contract's verdict bytes (1 = settled, 0 = refund).
	ReturnData []byte `json:"returnData,omitempty"`
}

// Record is one audit ledger entry. Seq equals the record's WAL index
// (1-based, dense), Prev is the previous record's Hash (zero for the first
// record), and Hash is the SHA-256 of the record's canonical encoding with
// the Hash field zeroed — so each record commits to its full content and,
// through Prev, to the entire history before it.
type Record struct {
	Seq      uint64    `json:"seq"`
	Time     int64     `json:"timeUnixNano"`
	Kind     string    `json:"kind"`
	Outcome  string    `json:"outcome"`
	Tenant   string    `json:"tenant,omitempty"`
	Detail   string    `json:"detail,omitempty"`
	Evidence *Evidence `json:"evidence,omitempty"`
	Prev     Digest    `json:"prev"`
	Hash     Digest    `json:"hash"`
}

// computeHash returns the hash-chain value for r: SHA-256 over the record's
// canonical JSON encoding with Hash zeroed. The encoding is deterministic —
// fixed struct field order, no maps — so re-encoding a decoded record
// reproduces the bytes that were hashed.
func (r *Record) computeHash() (Digest, error) {
	shadow := *r
	shadow.Hash = Digest{}
	enc, err := json.Marshal(&shadow)
	if err != nil {
		return Digest{}, fmt.Errorf("audit: encode record %d: %w", r.Seq, err)
	}
	return sha256.Sum256(enc), nil
}

// seal fills r.Hash from the rest of the record.
func (r *Record) seal() error {
	h, err := r.computeHash()
	if err != nil {
		return err
	}
	r.Hash = h
	return nil
}

// Check recomputes the record's hash and verifies both the hash and the
// link to the expected predecessor hash.
func (r *Record) Check(prev Digest) error {
	if r.Prev != prev {
		return fmt.Errorf("audit: record %d prev hash %s does not link to %s", r.Seq, r.Prev, prev)
	}
	h, err := r.computeHash()
	if err != nil {
		return err
	}
	if h != r.Hash {
		return fmt.Errorf("audit: record %d hash mismatch: stored %s, computed %s", r.Seq, r.Hash, h)
	}
	return nil
}

// decodeRecord parses one WAL payload into a Record.
func decodeRecord(payload []byte) (*Record, error) {
	var r Record
	if err := json.Unmarshal(payload, &r); err != nil {
		return nil, fmt.Errorf("audit: decode record: %w", err)
	}
	return &r, nil
}
