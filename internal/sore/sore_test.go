package sore

import (
	"bytes"
	"testing"
	"testing/quick"

	"slicer/internal/prf"
)

func newScheme(t *testing.T, bits int) *Scheme {
	t.Helper()
	key, err := prf.NewKey()
	if err != nil {
		t.Fatalf("NewKey: %v", err)
	}
	s, err := New(key, bits)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func TestNewValidatesBits(t *testing.T) {
	key, err := prf.NewKey()
	if err != nil {
		t.Fatalf("NewKey: %v", err)
	}
	for _, bits := range []int{0, -1, 65} {
		if _, err := New(key, bits); err == nil {
			t.Errorf("bit width %d accepted", bits)
		}
	}
	for _, bits := range []int{1, 8, 64} {
		if _, err := New(key, bits); err != nil {
			t.Errorf("bit width %d rejected: %v", bits, err)
		}
	}
}

// TestTheorem1Exhaustive verifies the paper's Theorem 1 over the complete
// 5-bit domain: for every pair (x, y) and both order conditions,
// SORE.Compare(Encrypt(y), Token(x, oc)) is true iff "x oc y".
func TestTheorem1Exhaustive(t *testing.T) {
	const bits = 5
	s := newScheme(t, bits)
	cts := make([]Ciphertext, 1<<bits)
	for y := range cts {
		ct, err := s.Encrypt(uint64(y))
		if err != nil {
			t.Fatalf("Encrypt(%d): %v", y, err)
		}
		cts[y] = ct
	}
	for x := uint64(0); x < 1<<bits; x++ {
		for _, oc := range []Cond{Greater, Less} {
			tk, err := s.Token(x, oc)
			if err != nil {
				t.Fatalf("Token(%d, %c): %v", x, oc, err)
			}
			for y := uint64(0); y < 1<<bits; y++ {
				want := (oc == Greater && x > y) || (oc == Less && x < y)
				if got := Compare(cts[y], tk); got != want {
					t.Fatalf("Compare(ct(%d), tk(%d,%c)) = %v, want %v", y, x, oc, got, want)
				}
			}
		}
	}
}

// TestTheorem1Property spot-checks the theorem at full 64-bit width with
// random pairs, including adversarially close pairs (differing in one low
// bit).
func TestTheorem1Property(t *testing.T) {
	s := newScheme(t, 64)
	check := func(x, y uint64) bool {
		ct, err := s.Encrypt(y)
		if err != nil {
			return false
		}
		tkG, err := s.Token(x, Greater)
		if err != nil {
			return false
		}
		tkL, err := s.Token(x, Less)
		if err != nil {
			return false
		}
		return Compare(ct, tkG) == (x > y) && Compare(ct, tkL) == (x < y)
	}
	f := func(x, y uint64) bool {
		if !check(x, y) {
			return false
		}
		// Nearby pairs stress the first-differing-bit logic.
		return check(x, x) && check(x, x^1) && check(y, y|1)
	}
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestExactlyOneCommonTuple verifies the uniqueness half of Theorem 1's
// proof: when the order holds, the tuple sets intersect in exactly one
// element (never two or more).
func TestExactlyOneCommonTuple(t *testing.T) {
	const bits = 6
	s := newScheme(t, bits)
	for x := uint64(0); x < 1<<bits; x++ {
		tk, err := s.TokenTuples(nil, x, Greater)
		if err != nil {
			t.Fatal(err)
		}
		tkSet := make(map[string]struct{}, len(tk))
		for _, tuple := range tk {
			tkSet[string(tuple)] = struct{}{}
		}
		for y := uint64(0); y < 1<<bits; y++ {
			ct, err := s.EncryptTuples(nil, y)
			if err != nil {
				t.Fatal(err)
			}
			common := 0
			for _, tuple := range ct {
				if _, ok := tkSet[string(tuple)]; ok {
					common++
				}
			}
			want := 0
			if x > y {
				want = 1
			}
			if common != want {
				t.Fatalf("x=%d y=%d: %d common tuples, want %d", x, y, common, want)
			}
		}
	}
}

func TestTupleCounts(t *testing.T) {
	for _, bits := range []int{1, 8, 24} {
		s := newScheme(t, bits)
		ct, err := s.EncryptTuples(nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(ct) != bits {
			t.Errorf("bits=%d: %d ciphertext tuples, want %d", bits, len(ct), bits)
		}
		tk, err := s.TokenTuples(nil, 0, Less)
		if err != nil {
			t.Fatal(err)
		}
		if len(tk) != bits {
			t.Errorf("bits=%d: %d token tuples, want %d", bits, len(tk), bits)
		}
	}
}

func TestValueRangeEnforced(t *testing.T) {
	s := newScheme(t, 8)
	if _, err := s.Encrypt(256); err == nil {
		t.Error("out-of-range value encrypted")
	}
	if _, err := s.Token(1000, Greater); err == nil {
		t.Error("out-of-range token accepted")
	}
	if _, err := s.Encrypt(255); err != nil {
		t.Errorf("max value rejected: %v", err)
	}
}

func TestBadCondition(t *testing.T) {
	s := newScheme(t, 8)
	if _, err := s.Token(1, Cond('=')); err == nil {
		t.Error("'=' accepted as an order condition")
	}
	if _, err := s.TokenTuples(nil, 1, Cond(0)); err == nil {
		t.Error("zero condition accepted")
	}
}

func TestAttributeSeparation(t *testing.T) {
	s := newScheme(t, 8)
	ctAge, err := s.EncryptTuples([]byte("age"), 30)
	if err != nil {
		t.Fatal(err)
	}
	tkWeight, err := s.TokenTuples([]byte("weight"), 200, Greater)
	if err != nil {
		t.Fatal(err)
	}
	set := make(map[string]struct{})
	for _, tuple := range ctAge {
		set[string(tuple)] = struct{}{}
	}
	for _, tuple := range tkWeight {
		if _, ok := set[string(tuple)]; ok {
			t.Fatal("tuples matched across attributes")
		}
	}
	// Same attribute still matches.
	tkAge, err := s.TokenTuples([]byte("age"), 200, Greater)
	if err != nil {
		t.Fatal(err)
	}
	for _, tuple := range tkAge {
		set[string(tuple)] = struct{}{}
	}
	if len(set) != 2*8-1 {
		t.Fatalf("expected exactly one cross match within the attribute, set size %d", len(set))
	}
}

func TestEqualityKeyword(t *testing.T) {
	a := EqualityKeyword(nil, 8, 5)
	b := EqualityKeyword(nil, 8, 5)
	if !bytes.Equal(a, b) {
		t.Error("equality keyword not deterministic")
	}
	if bytes.Equal(EqualityKeyword(nil, 8, 5), EqualityKeyword(nil, 8, 6)) {
		t.Error("distinct values share an equality keyword")
	}
	if bytes.Equal(EqualityKeyword(nil, 8, 5), EqualityKeyword(nil, 16, 5)) {
		t.Error("distinct widths share an equality keyword")
	}
	if bytes.Equal(EqualityKeyword([]byte("a"), 8, 5), EqualityKeyword([]byte("b"), 8, 5)) {
		t.Error("distinct attributes share an equality keyword")
	}
}

// TestEqualityKeywordDisjointFromTuples guards the codec: an equality
// keyword must never equal an order tuple, or the index would conflate
// equality and order postings.
func TestEqualityKeywordDisjointFromTuples(t *testing.T) {
	s := newScheme(t, 8)
	tupleSet := make(map[string]struct{})
	for v := uint64(0); v < 256; v += 17 {
		ct, err := s.EncryptTuples(nil, v)
		if err != nil {
			t.Fatal(err)
		}
		for _, tuple := range ct {
			tupleSet[string(tuple)] = struct{}{}
		}
	}
	for v := uint64(0); v < 256; v++ {
		if _, ok := tupleSet[string(EqualityKeyword(nil, 8, v))]; ok {
			t.Fatalf("equality keyword for %d collides with an order tuple", v)
		}
	}
}

func TestCiphertextsShuffledAndKeyed(t *testing.T) {
	s := newScheme(t, 16)
	ct1, err := s.Encrypt(12345)
	if err != nil {
		t.Fatal(err)
	}
	ct2, err := s.Encrypt(12345)
	if err != nil {
		t.Fatal(err)
	}
	// Same value, same key: same PRF set (order may differ).
	set := func(ct Ciphertext) map[string]struct{} {
		m := make(map[string]struct{}, len(ct))
		for _, c := range ct {
			m[string(c)] = struct{}{}
		}
		return m
	}
	s1, s2 := set(ct1), set(ct2)
	if len(s1) != len(s2) {
		t.Fatal("re-encryption changed the tuple set size")
	}
	for k := range s1 {
		if _, ok := s2[k]; !ok {
			t.Fatal("re-encryption changed the tuple set")
		}
	}
	// Different key: disjoint sets.
	other := newScheme(t, 16)
	ct3, err := other.Encrypt(12345)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range ct3 {
		if _, ok := s1[string(c)]; ok {
			t.Fatal("ciphertexts collide across keys")
		}
	}
}

func TestCompareRejectsMultipleCommon(t *testing.T) {
	// Compare must be strict: a forged pair sharing two values is false.
	ct := Ciphertext{[]byte("a"), []byte("b"), []byte("c")}
	tk := Token{[]byte("a"), []byte("b"), []byte("x")}
	if Compare(ct, tk) {
		t.Error("two common values accepted")
	}
	if Compare(Ciphertext{[]byte("a")}, Token{[]byte("z")}) {
		t.Error("zero common values accepted")
	}
	if !Compare(Ciphertext{[]byte("a"), []byte("b")}, Token{[]byte("b"), []byte("q")}) {
		t.Error("exactly one common value rejected")
	}
}

// TestLeakageFirstDiffBit reproduces the leakage discussion of §VI-A: the
// number of tuples two same-condition tokens share is exactly m-1, where m
// is the index (1-based, MSB first) of the first bit where the two query
// values differ — no more, no less.
func TestLeakageFirstDiffBit(t *testing.T) {
	const bits = 8
	s := newScheme(t, bits)
	firstDiff := func(x, y uint64) int {
		for i := 1; i <= bits; i++ {
			if (x>>(bits-i))&1 != (y>>(bits-i))&1 {
				return i
			}
		}
		return bits + 1 // equal values
	}
	for x := uint64(0); x < 256; x += 7 {
		tkx, err := s.Token(x, Greater)
		if err != nil {
			t.Fatal(err)
		}
		for y := uint64(0); y < 256; y += 5 {
			tky, err := s.Token(y, Greater)
			if err != nil {
				t.Fatal(err)
			}
			want := firstDiff(x, y) - 1
			if got := CommonTuples(tkx, tky); got != want {
				t.Fatalf("tokens(%d,%d): %d common tuples, want %d", x, y, got, want)
			}
		}
	}
	// Different conditions share nothing below the first diff: tk(x,>) vs
	// tk(x,<) differ in every tuple's condition byte.
	tkG, err := s.Token(9, Greater)
	if err != nil {
		t.Fatal(err)
	}
	tkL, err := s.Token(9, Less)
	if err != nil {
		t.Fatal(err)
	}
	if got := CommonTuples(tkG, tkL); got != 0 {
		t.Errorf("cross-condition tokens share %d tuples, want 0", got)
	}
}

func TestCiphertextSize(t *testing.T) {
	s := newScheme(t, 24)
	if got := s.CiphertextSize(); got != 24*prf.Size {
		t.Errorf("CiphertextSize = %d, want %d", got, 24*prf.Size)
	}
}
