package sore

import (
	"encoding/binary"
	"fmt"
)

// Prefix-cover range search (extension beyond the paper, see DESIGN.md).
//
// In addition to the SORE order tuples, records can be indexed under their
// bit-prefix keywords: one keyword per depth d in 1..b carrying the top d
// bits of the value. An inclusive range [lo, hi] then decomposes into at
// most 2(b-1) canonical prefix nodes (the classic segment-tree cover), and
// the range query becomes a union of exact keyword lookups — one verifiable
// result set per node, no client-side intersection and no over-fetch.
//
// Trade-off versus the paper's one-sided conditions: the index grows by b
// entries per record per attribute, queries issue ≤ 2(b-1) tokens instead
// of ≤ b per side, and what the server learns changes from "first differing
// bit versus the pivot" to "which cover prefixes were probed".

// tagPrefix tags prefix keywords in the tuple codec (distinct from
// tagEquality and tagOrder so postings never mix).
const tagPrefix = 0x02

// PrefixNode is one canonical cover node: the top Depth bits of matching
// values equal Prefix.
type PrefixNode struct {
	Depth  int
	Prefix uint64
}

// PrefixKeyword returns the canonical keyword encoding of a prefix node.
func PrefixKeyword(attr []byte, bits, depth int, prefix uint64) []byte {
	out := make([]byte, 0, 4+len(attr)+8)
	out = append(out, tagPrefix, byte(len(attr)))
	out = append(out, attr...)
	out = append(out, byte(bits), byte(depth))
	var p [8]byte
	binary.BigEndian.PutUint64(p[:], prefix)
	return append(out, p[:]...)
}

// PrefixKeywordsOf returns the b prefix keywords of a value (depth 1..b).
func (s *Scheme) PrefixKeywordsOf(attr []byte, v uint64) ([][]byte, error) {
	if err := s.checkValue(v); err != nil {
		return nil, err
	}
	out := make([][]byte, s.bits)
	for d := 1; d <= s.bits; d++ {
		out[d-1] = PrefixKeyword(attr, s.bits, d, v>>uint(s.bits-d))
	}
	return out, nil
}

// RangeCover decomposes the inclusive range [lo, hi] over b-bit values into
// its canonical minimal prefix cover (at most 2(b-1) nodes; 2b-2 is tight
// for ranges missing both domain edges).
func RangeCover(bits int, lo, hi uint64) ([]PrefixNode, error) {
	if bits < 1 || bits > MaxBits {
		return nil, fmt.Errorf("sore: bit width must be in [1,%d], got %d", MaxBits, bits)
	}
	maxV := uint64(1)<<uint(bits) - 1
	if bits == 64 {
		maxV = ^uint64(0)
	}
	if lo > hi {
		return nil, fmt.Errorf("sore: empty range [%d,%d]", lo, hi)
	}
	if hi > maxV {
		return nil, fmt.Errorf("sore: range bound %d exceeds %d-bit values", hi, bits)
	}
	var nodes []PrefixNode
	for {
		// Largest aligned block 2^k starting at lo and contained in [lo,hi].
		// k is capped at bits-1 so the shallowest node is depth 1: records
		// are not indexed under a universal depth-0 keyword (its posting
		// list would enumerate the whole attribute), so a full-domain range
		// covers as two depth-1 nodes instead.
		k := 0
		for k < bits-1 {
			size := uint64(1) << uint(k+1)
			if lo&(size-1) != 0 { // next size would not be aligned
				break
			}
			if size-1 > hi-lo { // next size would overshoot hi
				break
			}
			k++
		}
		nodes = append(nodes, PrefixNode{Depth: bits - k, Prefix: lo >> uint(k)})
		blockEnd := lo + (uint64(1)<<uint(k) - 1)
		if blockEnd >= hi {
			return nodes, nil
		}
		lo = blockEnd + 1
	}
}

// CoverKeywords maps a range cover to its keyword encodings.
func CoverKeywords(attr []byte, bits int, nodes []PrefixNode) [][]byte {
	out := make([][]byte, len(nodes))
	for i, n := range nodes {
		out[i] = PrefixKeyword(attr, bits, n.Depth, n.Prefix)
	}
	return out
}
