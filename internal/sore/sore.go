// Package sore implements Slicer's Succinct Order-Revealing Encryption
// scheme (paper §V-B).
//
// SORE "slices" an order condition over a b-bit value into exactly b
// prefix tuples. For a value v, bit positions are numbered 1..b from the
// most significant bit; v_{|i-1} denotes the (i-1)-bit prefix.
//
//	token  tuple tk_i = v_{|i-1} || v_i    || oc
//	cipher tuple ct_i = v_{|i-1} || ¬v_i   || cmp(¬v_i, v_i)
//
// Theorem 1 of the paper: the token tuple set of x under condition oc and
// the ciphertext tuple set of y share *exactly one* tuple iff "x oc y"
// holds (the shared tuple sits at the first differing bit). Order
// comparison therefore reduces to exact-match set intersection, which is
// what lets the SSE layer treat each tuple as an ordinary keyword.
//
// The package exposes two layers:
//
//   - Raw tuples (EncryptTuples / TokenTuples): canonical byte encodings of
//     the tuples, used as keywords by the Slicer Build/Insert/Search
//     protocols. The tuple codec is injective and prefix-free across bit
//     positions and attributes.
//   - The standalone SORE scheme (Encrypt / Token / Compare): tuples pushed
//     through the PRF F_k and shuffled, exactly the Π = {SORE.Token,
//     SORE.Encrypt, SORE.Compare} construction of the paper.
package sore

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"

	"slicer/internal/entropy"
	"slicer/internal/prf"
)

// Cond is an order condition.
type Cond byte

// Order conditions. The semantics follow the paper: a token for (v, Greater)
// matches ciphertexts of values a with v > a.
const (
	Greater Cond = '>'
	Less    Cond = '<'
)

// MaxBits bounds supported value widths.
const MaxBits = 64

var (
	// ErrValueRange indicates a plaintext that does not fit in the
	// configured bit width.
	ErrValueRange = errors.New("sore: value exceeds configured bit width")
	// ErrBadCond indicates an order condition other than Greater/Less.
	ErrBadCond = errors.New("sore: order condition must be '>' or '<'")
)

// Scheme is a SORE instance bound to a PRF key and a value bit width.
type Scheme struct {
	key  prf.Key
	bits int
}

// New constructs a SORE scheme over b-bit non-negative integers.
func New(key prf.Key, bits int) (*Scheme, error) {
	if bits < 1 || bits > MaxBits {
		return nil, fmt.Errorf("sore: bit width must be in [1,%d], got %d", MaxBits, bits)
	}
	return &Scheme{key: key, bits: bits}, nil
}

// Bits returns the configured value width.
func (s *Scheme) Bits() int { return s.bits }

func (s *Scheme) checkValue(v uint64) error {
	if s.bits < 64 && v >= 1<<uint(s.bits) {
		return fmt.Errorf("%w: %d needs more than %d bits", ErrValueRange, v, s.bits)
	}
	return nil
}

// bitAt returns v_i, the i-th most significant bit (i in 1..bits).
func (s *Scheme) bitAt(v uint64, i int) byte {
	return byte((v >> uint(s.bits-i)) & 1)
}

// prefixAt returns v_{|i-1}: the top i-1 bits of v, right-aligned.
func (s *Scheme) prefixAt(v uint64, i int) uint64 {
	if i == 1 {
		return 0
	}
	return v >> uint(s.bits-i+1)
}

// cmpBits implements cmp(a, b) for single bits: ">" iff a > b.
func cmpBits(a, b byte) Cond {
	if a > b {
		return Greater
	}
	return Less
}

// Tuple encoding.
//
//	order tuple:      0x01 || len(attr) || attr || bits || i || prefix(8B BE) || bit || cond
//	equality keyword: 0x00 || len(attr) || attr || bits || value(8B BE)
//
// Including the position i (and the width) makes the encoding injective:
// two tuples at different positions can never collide even when their
// prefix bits agree.
const (
	tagEquality = 0x00
	tagOrder    = 0x01
)

func encodeOrderTuple(attr []byte, bits, i int, prefix uint64, bit byte, cond Cond) []byte {
	out := make([]byte, 0, 4+len(attr)+8+2)
	out = append(out, tagOrder, byte(len(attr)))
	out = append(out, attr...)
	out = append(out, byte(bits), byte(i))
	var p [8]byte
	binary.BigEndian.PutUint64(p[:], prefix)
	out = append(out, p[:]...)
	out = append(out, bit, byte(cond))
	return out
}

// EqualityKeyword returns the canonical keyword encoding of an exact value,
// used by equality search and index building. attr may be nil for
// single-attribute databases.
func EqualityKeyword(attr []byte, bits int, v uint64) []byte {
	out := make([]byte, 0, 3+len(attr)+8)
	out = append(out, tagEquality, byte(len(attr)))
	out = append(out, attr...)
	out = append(out, byte(bits))
	var p [8]byte
	binary.BigEndian.PutUint64(p[:], v)
	return append(out, p[:]...)
}

// EncryptTuples returns the b raw ciphertext tuples ct_1..ct_b of v
// (shuffled), which the SSE layer uses as index keywords. attr may be nil.
func (s *Scheme) EncryptTuples(attr []byte, v uint64) ([][]byte, error) {
	if err := s.checkValue(v); err != nil {
		return nil, err
	}
	tuples := make([][]byte, s.bits)
	for i := 1; i <= s.bits; i++ {
		vi := s.bitAt(v, i)
		ni := 1 - vi // ¬v_i
		tuples[i-1] = encodeOrderTuple(attr, s.bits, i, s.prefixAt(v, i), ni, cmpBits(ni, vi))
	}
	if err := shuffle(tuples); err != nil {
		return nil, err
	}
	return tuples, nil
}

// TokenTuples returns the b raw query tuples tk_1..tk_b for (v, oc)
// (shuffled). attr may be nil.
func (s *Scheme) TokenTuples(attr []byte, v uint64, oc Cond) ([][]byte, error) {
	if oc != Greater && oc != Less {
		return nil, ErrBadCond
	}
	if err := s.checkValue(v); err != nil {
		return nil, err
	}
	tuples := make([][]byte, s.bits)
	for i := 1; i <= s.bits; i++ {
		tuples[i-1] = encodeOrderTuple(attr, s.bits, i, s.prefixAt(v, i), s.bitAt(v, i), oc)
	}
	if err := shuffle(tuples); err != nil {
		return nil, err
	}
	return tuples, nil
}

// Ciphertext is a standalone SORE ciphertext: the PRF images of the b
// ciphertext tuples, in shuffled order.
type Ciphertext [][]byte

// Token is a standalone SORE query token: the PRF images of the b token
// tuples, in shuffled order.
type Token [][]byte

// Encrypt runs SORE.Encrypt(k, v).
func (s *Scheme) Encrypt(v uint64) (Ciphertext, error) {
	tuples, err := s.EncryptTuples(nil, v)
	if err != nil {
		return nil, err
	}
	return s.evalAll(tuples), nil
}

// Token runs SORE.Token(k, v, oc).
func (s *Scheme) Token(v uint64, oc Cond) (Token, error) {
	tuples, err := s.TokenTuples(nil, v, oc)
	if err != nil {
		return nil, err
	}
	return s.evalAll(tuples), nil
}

func (s *Scheme) evalAll(tuples [][]byte) [][]byte {
	out := make([][]byte, len(tuples))
	for i, t := range tuples {
		out[i] = s.key.Eval(t)
	}
	return out
}

// Compare runs SORE.Compare(ct, tk): true iff the ciphertext and token share
// exactly one PRF value, i.e. iff "x oc y" holds for the token's value x,
// condition oc and the ciphertext's value y.
func Compare(ct Ciphertext, tk Token) bool {
	seen := make(map[string]struct{}, len(ct))
	for _, c := range ct {
		seen[string(c)] = struct{}{}
	}
	common := 0
	for _, t := range tk {
		if _, ok := seen[string(t)]; ok {
			common++
			if common > 1 {
				return false
			}
		}
	}
	return common == 1
}

// CiphertextSize returns the byte size of a standalone ciphertext for this
// scheme (b PRF outputs), used by the overhead experiments.
func (s *Scheme) CiphertextSize() int { return s.bits * prf.Size }

// CommonTuples counts the PRF values two tuple sets share. It quantifies
// the scheme's intra-side leakage discussed in §VI-A: for two tokens of
// values x and y under the same condition (or two ciphertexts), the count
// equals m-1 where m is the index of their first differing bit — so an
// observer holding many tokens learns pairwise first-differing-bit
// positions, and nothing finer. (The Build/Insert protocols eliminate the
// ciphertext-side variant of this leakage by storing only PRF-derived index
// entries.)
func CommonTuples(a, b [][]byte) int {
	seen := make(map[string]struct{}, len(a))
	for _, v := range a {
		seen[string(v)] = struct{}{}
	}
	common := 0
	for _, v := range b {
		if _, ok := seen[string(v)]; ok {
			common++
		}
	}
	return common
}

// shuffle performs a cryptographic Fisher–Yates shuffle so that matched
// tuple positions are concealed within a single query (paper §V-B).
func shuffle(tuples [][]byte) error {
	for i := len(tuples) - 1; i > 0; i-- {
		jBig, err := rand.Int(entropy.Reader, big.NewInt(int64(i+1)))
		if err != nil {
			return fmt.Errorf("sore: shuffle: %w", err)
		}
		j := int(jBig.Int64())
		tuples[i], tuples[j] = tuples[j], tuples[i]
	}
	return nil
}
