package sore

import (
	"testing"
)

// TestRangeCoverExhaustive checks every range of a 6-bit domain against a
// brute-force membership oracle: the cover must include exactly the values
// in [lo,hi], with no node overlaps and within the 2(b-1) size bound.
func TestRangeCoverExhaustive(t *testing.T) {
	const bits = 6
	const domain = 1 << bits
	for lo := uint64(0); lo < domain; lo++ {
		for hi := lo; hi < domain; hi++ {
			nodes, err := RangeCover(bits, lo, hi)
			if err != nil {
				t.Fatalf("RangeCover(%d,%d): %v", lo, hi, err)
			}
			if len(nodes) > 2*(bits-1) && !(lo == 0 && hi == domain-1) {
				t.Fatalf("cover of [%d,%d] has %d nodes (> %d)", lo, hi, len(nodes), 2*(bits-1))
			}
			covered := make(map[uint64]int)
			for _, n := range nodes {
				if n.Depth < 1 || n.Depth > bits {
					t.Fatalf("[%d,%d]: bad depth %d", lo, hi, n.Depth)
				}
				width := uint(bits - n.Depth)
				start := n.Prefix << width
				for v := start; v < start+(1<<width); v++ {
					covered[v]++
				}
			}
			for v := uint64(0); v < domain; v++ {
				want := 0
				if v >= lo && v <= hi {
					want = 1
				}
				if covered[v] != want {
					t.Fatalf("[%d,%d]: value %d covered %d times, want %d", lo, hi, v, covered[v], want)
				}
			}
		}
	}
}

func TestRangeCoverEdges(t *testing.T) {
	// Full domain collapses to the root node.
	nodes, err := RangeCover(8, 0, 255)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 1 || nodes[0].Depth != 1 {
		// Depth 1 covers half the domain; the whole domain needs the
		// "virtual" depth-0 node, which the codec does not emit — instead
		// the cover uses two depth-1 nodes.
		if len(nodes) != 2 {
			t.Fatalf("full-domain cover = %+v", nodes)
		}
	}
	// Errors.
	if _, err := RangeCover(8, 5, 4); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := RangeCover(8, 0, 256); err == nil {
		t.Error("out-of-domain range accepted")
	}
	if _, err := RangeCover(0, 0, 0); err == nil {
		t.Error("zero bit width accepted")
	}
	// 64-bit extremes must not overflow.
	max64 := ^uint64(0)
	nodes, err = RangeCover(64, max64-3, max64)
	if err != nil {
		t.Fatalf("RangeCover(64-bit top): %v", err)
	}
	total := uint64(0)
	for _, n := range nodes {
		total += uint64(1) << uint(64-n.Depth)
	}
	if total != 4 {
		t.Fatalf("top-of-domain cover spans %d values, want 4", total)
	}
	if _, err := RangeCover(64, 0, max64); err != nil {
		t.Fatalf("full 64-bit domain: %v", err)
	}
}

func TestPrefixKeywordsInjective(t *testing.T) {
	s := newScheme(t, 8)
	seen := make(map[string]string)
	record := func(label string, ks [][]byte) {
		t.Helper()
		for _, k := range ks {
			if prev, dup := seen[string(k)]; dup {
				t.Fatalf("keyword collision between %s and %s", prev, label)
			}
			seen[string(k)] = label
		}
	}
	ks, err := s.PrefixKeywordsOf(nil, 0b10110010)
	if err != nil {
		t.Fatal(err)
	}
	if len(ks) != 8 {
		t.Fatalf("got %d prefix keywords, want 8", len(ks))
	}
	record("value-178", ks)
	// A different value sharing the top 4 bits collides on exactly those
	// 4 depths — remove duplicates first to assert the overlap count.
	ks2, err := s.PrefixKeywordsOf(nil, 0b10111100)
	if err != nil {
		t.Fatal(err)
	}
	shared := 0
	for _, k := range ks2 {
		if _, dup := seen[string(k)]; dup {
			shared++
		}
	}
	if shared != 4 {
		t.Fatalf("values sharing a 4-bit prefix share %d keywords, want 4", shared)
	}
	// Prefix keywords never collide with equality keywords or order tuples.
	if _, dup := seen[string(EqualityKeyword(nil, 8, 0b10110010))]; dup {
		t.Fatal("prefix keyword collides with equality keyword")
	}
	tuples, err := s.EncryptTuples(nil, 0b10110010)
	if err != nil {
		t.Fatal(err)
	}
	for _, tup := range tuples {
		if _, dup := seen[string(tup)]; dup {
			t.Fatal("prefix keyword collides with an order tuple")
		}
	}
	// Attribute separation.
	ks3, err := s.PrefixKeywordsOf([]byte("a"), 0b10110010)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range ks3 {
		if _, dup := seen[string(k)]; dup {
			t.Fatal("prefix keywords collide across attributes")
		}
	}
}
