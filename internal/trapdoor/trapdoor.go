// Package trapdoor implements the RSA trapdoor permutation used for
// forward-secure trapdoor chains (Bost's Σοφος technique, adopted by Slicer
// Algorithm 2).
//
// The permutation acts on the fixed group Z_n* for an RSA modulus n:
//
//	π_pk(x)      = x^e mod n   (easy: everyone)
//	π_sk^{-1}(x) = x^d mod n   (easy only with the trapdoor d)
//
// The data owner advances a keyword's trapdoor with π_sk^{-1} on every
// insertion epoch; the cloud, holding only the public key, can walk the
// chain backwards with π_pk from the newest trapdoor it is handed, but can
// never move forwards — which is exactly the forward-security property.
package trapdoor

import (
	"crypto/rand"
	"errors"
	"fmt"
	"math/big"

	"slicer/internal/chunkio"
	"slicer/internal/entropy"
)

// DefaultModulusBits is the default RSA modulus size. 1024 bits is used for
// benchmarks to mirror the lightweight setting of the paper's prototype;
// production deployments should use >= 2048.
const DefaultModulusBits = 1024

var (
	// ErrNotInDomain indicates a value outside [1, n).
	ErrNotInDomain = errors.New("trapdoor: value outside permutation domain")

	one = big.NewInt(1)
)

// PublicKey lets anyone evaluate the permutation in the forward (public)
// direction.
type PublicKey struct {
	N *big.Int // modulus
	E *big.Int // public exponent
}

// SecretKey additionally enables the inverse direction.
type SecretKey struct {
	PublicKey
	D *big.Int // private exponent
}

// GenerateKey samples an RSA trapdoor permutation with a modulus of the
// given bit length.
func GenerateKey(bits int) (*SecretKey, error) {
	if bits < 64 {
		return nil, fmt.Errorf("trapdoor: modulus of %d bits is too small", bits)
	}
	e := big.NewInt(65537)
	for {
		p, err := rand.Prime(rand.Reader, bits/2)
		if err != nil {
			return nil, fmt.Errorf("sample p: %w", err)
		}
		q, err := rand.Prime(rand.Reader, bits-bits/2)
		if err != nil {
			return nil, fmt.Errorf("sample q: %w", err)
		}
		if p.Cmp(q) == 0 {
			continue
		}
		n := new(big.Int).Mul(p, q)
		pm1 := new(big.Int).Sub(p, one)
		qm1 := new(big.Int).Sub(q, one)
		phi := new(big.Int).Mul(pm1, qm1)
		d := new(big.Int)
		if d.ModInverse(e, phi) == nil {
			continue // e not invertible mod phi; resample
		}
		return &SecretKey{
			PublicKey: PublicKey{N: n, E: e},
			D:         d,
		}, nil
	}
}

// Size returns the fixed byte width of encoded domain elements.
func (pk *PublicKey) Size() int {
	return (pk.N.BitLen() + 7) / 8
}

// Sample draws a uniformly random element of the permutation domain,
// encoded at fixed width. It is used to mint fresh keyword trapdoors t_0.
// Owners call it once per keyword during builds, so it draws through the
// buffered entropy reader rather than a getrandom syscall per call.
func (pk *PublicKey) Sample() ([]byte, error) {
	upper := new(big.Int).Sub(pk.N, one)
	v, err := rand.Int(entropy.Reader, upper)
	if err != nil {
		return nil, fmt.Errorf("sample trapdoor: %w", err)
	}
	v.Add(v, one) // uniform in [1, n)
	return pk.encode(v), nil
}

// Forward evaluates π_pk(x): one step backwards along a trapdoor chain.
func (pk *PublicKey) Forward(x []byte) ([]byte, error) {
	v, err := pk.decode(x)
	if err != nil {
		return nil, err
	}
	v.Exp(v, pk.E, pk.N)
	return pk.encode(v), nil
}

// Inverse evaluates π_sk^{-1}(x): one step forwards along a trapdoor chain.
// Only the data owner holds the secret key.
func (sk *SecretKey) Inverse(x []byte) ([]byte, error) {
	v, err := sk.decode(x)
	if err != nil {
		return nil, err
	}
	v.Exp(v, sk.D, sk.N)
	return sk.encode(v), nil
}

func (pk *PublicKey) encode(v *big.Int) []byte {
	return v.FillBytes(make([]byte, pk.Size()))
}

func (pk *PublicKey) decode(x []byte) (*big.Int, error) {
	if len(x) != pk.Size() {
		return nil, fmt.Errorf("trapdoor: element must be %d bytes, got %d", pk.Size(), len(x))
	}
	v := new(big.Int).SetBytes(x)
	if v.Sign() == 0 || v.Cmp(pk.N) >= 0 {
		return nil, ErrNotInDomain
	}
	return v, nil
}

// MarshalSecret serializes the full keypair (modulus, public exponent,
// private exponent) for owner-state persistence. Treat the output as
// sensitive material.
func (sk *SecretKey) MarshalSecret() []byte {
	out := chunkio.Append(nil, sk.N.Bytes())
	out = chunkio.Append(out, sk.E.Bytes())
	return chunkio.Append(out, sk.D.Bytes())
}

// UnmarshalSecret parses a keypair produced by MarshalSecret.
func UnmarshalSecret(data []byte) (*SecretKey, error) {
	nb, rest, err := chunkio.Read(data)
	if err != nil {
		return nil, fmt.Errorf("trapdoor: parse modulus: %w", err)
	}
	eb, rest, err := chunkio.Read(rest)
	if err != nil {
		return nil, fmt.Errorf("trapdoor: parse exponent: %w", err)
	}
	db, _, err := chunkio.Read(rest)
	if err != nil {
		return nil, fmt.Errorf("trapdoor: parse private exponent: %w", err)
	}
	sk := &SecretKey{
		PublicKey: PublicKey{N: new(big.Int).SetBytes(nb), E: new(big.Int).SetBytes(eb)},
		D:         new(big.Int).SetBytes(db),
	}
	if sk.N.Sign() <= 0 || sk.E.Sign() <= 0 || sk.D.Sign() <= 0 {
		return nil, errors.New("trapdoor: invalid secret key encoding")
	}
	return sk, nil
}

// MarshalPublic serializes the public key (modulus then exponent, each
// length-prefixed) so it can be shipped to clouds.
func (pk *PublicKey) MarshalPublic() []byte {
	nb := pk.N.Bytes()
	eb := pk.E.Bytes()
	out := make([]byte, 0, 4+len(nb)+4+len(eb))
	out = chunkio.Append(out, nb)
	out = chunkio.Append(out, eb)
	return out
}

// UnmarshalPublic parses a key produced by MarshalPublic.
func UnmarshalPublic(data []byte) (*PublicKey, error) {
	nb, rest, err := chunkio.Read(data)
	if err != nil {
		return nil, fmt.Errorf("trapdoor: parse modulus: %w", err)
	}
	eb, _, err := chunkio.Read(rest)
	if err != nil {
		return nil, fmt.Errorf("trapdoor: parse exponent: %w", err)
	}
	pk := &PublicKey{N: new(big.Int).SetBytes(nb), E: new(big.Int).SetBytes(eb)}
	if pk.N.Sign() <= 0 || pk.E.Sign() <= 0 {
		return nil, errors.New("trapdoor: invalid public key encoding")
	}
	return pk, nil
}
