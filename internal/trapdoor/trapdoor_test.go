package trapdoor

import (
	"bytes"
	"errors"
	"testing"
)

const testBits = 256 // small modulus keeps tests fast; size is covered below

func genKey(t *testing.T) *SecretKey {
	t.Helper()
	sk, err := GenerateKey(testBits)
	if err != nil {
		t.Fatalf("GenerateKey: %v", err)
	}
	return sk
}

func TestGenerateKeyRejectsTiny(t *testing.T) {
	if _, err := GenerateKey(32); err == nil {
		t.Error("32-bit modulus accepted")
	}
}

func TestRoundTrip(t *testing.T) {
	sk := genKey(t)
	for i := 0; i < 20; i++ {
		x, err := sk.Sample()
		if err != nil {
			t.Fatalf("Sample: %v", err)
		}
		y, err := sk.Inverse(x)
		if err != nil {
			t.Fatalf("Inverse: %v", err)
		}
		back, err := sk.Forward(y)
		if err != nil {
			t.Fatalf("Forward: %v", err)
		}
		if !bytes.Equal(back, x) {
			t.Fatalf("Forward(Inverse(x)) != x")
		}
		// And the other composition order.
		fwd, err := sk.Forward(x)
		if err != nil {
			t.Fatalf("Forward: %v", err)
		}
		back, err = sk.Inverse(fwd)
		if err != nil {
			t.Fatalf("Inverse: %v", err)
		}
		if !bytes.Equal(back, x) {
			t.Fatalf("Inverse(Forward(x)) != x")
		}
	}
}

func TestChainWalk(t *testing.T) {
	sk := genKey(t)
	t0, err := sk.Sample()
	if err != nil {
		t.Fatalf("Sample: %v", err)
	}
	// Owner advances the chain 5 epochs with the secret key.
	chain := [][]byte{t0}
	cur := t0
	for i := 0; i < 5; i++ {
		next, err := sk.Inverse(cur)
		if err != nil {
			t.Fatalf("Inverse: %v", err)
		}
		chain = append(chain, next)
		cur = next
	}
	// Cloud walks backwards from the newest trapdoor with the public key.
	pk := &sk.PublicKey
	cur = chain[len(chain)-1]
	for i := len(chain) - 2; i >= 0; i-- {
		var err error
		cur, err = pk.Forward(cur)
		if err != nil {
			t.Fatalf("Forward: %v", err)
		}
		if !bytes.Equal(cur, chain[i]) {
			t.Fatalf("chain walk diverged at epoch %d", i)
		}
	}
}

func TestDomainValidation(t *testing.T) {
	sk := genKey(t)
	pk := &sk.PublicKey
	if _, err := pk.Forward(make([]byte, pk.Size()-1)); err == nil {
		t.Error("short element accepted")
	}
	zero := make([]byte, pk.Size())
	if _, err := pk.Forward(zero); !errors.Is(err, ErrNotInDomain) {
		t.Errorf("zero element: err=%v, want ErrNotInDomain", err)
	}
	tooBig := pk.N.Bytes()
	padded := make([]byte, pk.Size())
	copy(padded[pk.Size()-len(tooBig):], tooBig)
	if _, err := pk.Forward(padded); !errors.Is(err, ErrNotInDomain) {
		t.Errorf("element == N: err=%v, want ErrNotInDomain", err)
	}
}

func TestSampleEncodedWidth(t *testing.T) {
	sk := genKey(t)
	x, err := sk.Sample()
	if err != nil {
		t.Fatalf("Sample: %v", err)
	}
	if len(x) != sk.Size() {
		t.Errorf("sample width %d, want %d", len(x), sk.Size())
	}
}

func TestMarshalPublicRoundTrip(t *testing.T) {
	sk := genKey(t)
	pk2, err := UnmarshalPublic(sk.MarshalPublic())
	if err != nil {
		t.Fatalf("UnmarshalPublic: %v", err)
	}
	if pk2.N.Cmp(sk.N) != 0 || pk2.E.Cmp(sk.E) != 0 {
		t.Error("public key round trip mismatch")
	}
	x, err := sk.Sample()
	if err != nil {
		t.Fatalf("Sample: %v", err)
	}
	a, err := sk.Forward(x)
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	b, err := pk2.Forward(x)
	if err != nil {
		t.Fatalf("Forward (decoded key): %v", err)
	}
	if !bytes.Equal(a, b) {
		t.Error("decoded public key computes differently")
	}
}

func TestMarshalSecretRoundTrip(t *testing.T) {
	sk := genKey(t)
	sk2, err := UnmarshalSecret(sk.MarshalSecret())
	if err != nil {
		t.Fatalf("UnmarshalSecret: %v", err)
	}
	x, err := sk.Sample()
	if err != nil {
		t.Fatalf("Sample: %v", err)
	}
	a, err := sk.Inverse(x)
	if err != nil {
		t.Fatalf("Inverse: %v", err)
	}
	b, err := sk2.Inverse(x)
	if err != nil {
		t.Fatalf("Inverse (decoded key): %v", err)
	}
	if !bytes.Equal(a, b) {
		t.Error("decoded secret key computes differently")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalPublic([]byte{1, 2, 3}); err == nil {
		t.Error("garbage public key accepted")
	}
	if _, err := UnmarshalSecret([]byte{0, 0, 0, 1, 7}); err == nil {
		t.Error("garbage secret key accepted")
	}
}

func TestOnlySecretKeyInverts(t *testing.T) {
	// Structural check of the API (the hardness itself is RSA): the public
	// key type simply has no inverse operation, and forward images of two
	// distinct elements stay distinct (permutation property).
	sk := genKey(t)
	x1, err := sk.Sample()
	if err != nil {
		t.Fatalf("Sample: %v", err)
	}
	x2, err := sk.Sample()
	if err != nil {
		t.Fatalf("Sample: %v", err)
	}
	if bytes.Equal(x1, x2) {
		t.Skip("sampled the same element twice (astronomically unlikely)")
	}
	y1, err := sk.Forward(x1)
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	y2, err := sk.Forward(x2)
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	if bytes.Equal(y1, y2) {
		t.Error("permutation mapped distinct inputs to one output")
	}
}
