package analysis

// ackorder enforces the durability contract on RPC handlers: on every
// path through a handle* method where server state is mutated, a durable
// journal append (journal.commit, or a WAL Append/Sync) must dominate the
// success response — otherwise a crash between the ack and the append
// loses an acknowledged write. The check is the dataflow formulation of
// dominance: "journaled" merges with AND, so it only survives a join if
// the append happened on every incoming path; a success return with
// "mutated" set and "journaled" clear is reported.
//
// Handlers that run without durability are recognized through the
// conditional: the `jour == nil` true-branch (and `jour != nil`
// false-branch) is exempt, matching the optional-durability wiring where
// EnableDurability was never called.
//
// The analyzer is scoped to wire packages (package base name "wire"),
// where the request/response trust boundary lives.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AckOrder reports success acks not dominated by a durable journal append.
var AckOrder = &Analyzer{
	Name: "ackorder",
	Doc: "requires a durable journal append (journal.commit / WAL Append+Sync) " +
		"to dominate every success response on state-mutating RPC handler paths",
	Run: runAckOrder,
}

// ackMutations are the callee names that mutate acknowledged server state.
var ackMutations = map[string]bool{
	"ApplyUpdate": true, "ImportBlock": true, "ImportSnapshot": true,
	"Step": true, "Install": true, "install": true, "Restore": true,
}

// ackFact tracks one path's durability status. "covered" means the path
// is safe to acknowledge: a durable append happened, or the path runs in
// the explicit no-durability mode. It merges with AND — dominance — so it
// only survives a join when every incoming path is safe.
type ackFact struct {
	mutated bool // some mutation happened (OR-merge)
	covered bool // durably journaled or durability-exempt (AND-merge)
	mutPos  token.Pos
}

type ackScan struct {
	pkg  *Package
	prog *Program
	fn   *FuncNode
	// journalers are module functions that perform a journal append
	// themselves (transitively).
	journalers map[string]bool
	onReport   func(pos token.Pos, format string, args ...any)
}

// Boundary implements FlowProblem.
func (as *ackScan) Boundary(*CFG) ackFact { return ackFact{} }

// Transfer implements FlowProblem.
func (as *ackScan) Transfer(b *Block, in ackFact) ackFact {
	fact := in
	for _, n := range b.Nodes {
		as.applyNode(n, &fact, false)
	}
	return fact
}

// Merge implements FlowProblem.
func (as *ackScan) Merge(a, b ackFact) ackFact {
	out := ackFact{
		mutated: a.mutated || b.mutated,
		covered: a.covered && b.covered,
	}
	switch {
	case a.mutPos != token.NoPos && b.mutPos != token.NoPos:
		out.mutPos = min(a.mutPos, b.mutPos)
	case a.mutPos != token.NoPos:
		out.mutPos = a.mutPos
	default:
		out.mutPos = b.mutPos
	}
	return out
}

// Equal implements FlowProblem.
func (as *ackScan) Equal(a, b ackFact) bool { return a == b }

// Refine implements EdgeRefiner: branches testing the journal against nil
// mark the journal-free side exempt.
func (as *ackScan) Refine(e Edge, out ackFact) ackFact {
	cond := e.From.Cond
	if cond == nil {
		return out
	}
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return out
	}
	other := ast.Expr(nil)
	if isNilIdent(bin.Y) {
		other = bin.X
	} else if isNilIdent(bin.X) {
		other = bin.Y
	}
	if other == nil || !as.journalish(other) {
		return out
	}
	nilEdge := (bin.Op == token.EQL && e.Kind == EdgeTrue) ||
		(bin.Op == token.NEQ && e.Kind == EdgeFalse)
	if nilEdge {
		out.covered = true
	}
	return out
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// journalish reports whether an expression denotes the durability journal:
// its name mentions "jour", or its type chain names a journal or WAL.
func (as *ackScan) journalish(e ast.Expr) bool {
	for _, w := range exprWords(ast.Unparen(e)) {
		if strings.Contains(strings.ToLower(w), "jour") {
			return true
		}
	}
	if tv, ok := as.pkg.Info.Types[e]; ok {
		for _, name := range namedTypeNames(tv.Type) {
			lower := strings.ToLower(name)
			if strings.Contains(lower, "journal") || strings.Contains(lower, "wal") {
				return true
			}
		}
	}
	return false
}

func (as *ackScan) applyNode(n ast.Node, fact *ackFact, callbacks bool) {
	blockExprs(n, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if as.isJournalEvent(call) {
			fact.covered = true
			return true
		}
		if fn := calleeFunc(as.pkg.Info, call); fn != nil {
			if ackMutations[fn.Name()] {
				fact.mutated = true
				if fact.mutPos == token.NoPos {
					fact.mutPos = call.Pos()
				}
			} else if as.journalers[funcKey(fn.Pkg(), fn.Name())] {
				fact.covered = true
			}
		}
		return true
	})
	if r, ok := n.(*ast.ReturnStmt); ok && callbacks {
		as.checkReturn(r, *fact)
	}
}

// checkReturn reports a success return (last result is the nil literal)
// on a mutated, unjournaled, non-exempt path.
func (as *ackScan) checkReturn(r *ast.ReturnStmt, fact ackFact) {
	if as.onReport == nil || len(r.Results) == 0 {
		return
	}
	if !isNilIdent(r.Results[len(r.Results)-1]) {
		return
	}
	if fact.mutated && !fact.covered {
		where := ""
		if fact.mutPos != token.NoPos {
			p := as.pkg.Fset.Position(fact.mutPos)
			where = " (mutated at line " + itoa(p.Line) + ")"
		}
		as.onReport(r.Pos(), "success response returned on a path where state was mutated%s without a durable journal append dominating it", where)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// isJournalEvent recognizes durable appends: a commit method on a
// journal-typed receiver, or Append/Sync on a WAL/durable-log receiver.
func (as *ackScan) isJournalEvent(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	name := sel.Sel.Name
	switch name {
	case "commit", "Commit":
		return as.journalish(sel.X)
	case "Append", "Sync":
		if tv, ok := as.pkg.Info.Types[sel.X]; ok {
			for _, tn := range namedTypeNames(tv.Type) {
				lower := strings.ToLower(tn)
				if strings.Contains(lower, "journal") || strings.Contains(lower, "wal") || lower == "log" {
					return true
				}
			}
		}
	}
	return false
}

func funcKey(pkg *types.Package, name string) string {
	if pkg == nil {
		return name
	}
	return pkg.Path() + "." + name
}

// journalerFuncs finds module functions that perform a journal append
// themselves, transitively through module calls (bounded rounds).
func journalerFuncs(prog *Program) map[string]bool {
	return prog.Cached("ackorder.journalers", func() any {
		out := make(map[string]bool)
		// Exits early once a round adds nothing; the cap only bounds
		// pathological call chains.
		for round := 0; round < 16; round++ {
			changed := false
			for _, pkg := range prog.Pkgs {
				as := &ackScan{pkg: pkg, prog: prog, journalers: out}
				for _, node := range prog.Funcs(pkg) {
					if node.Decl.Body == nil {
						continue
					}
					key := funcKey(node.Fn.Pkg(), node.Fn.Name())
					if out[key] {
						continue
					}
					found := false
					ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
						if _, ok := n.(*ast.FuncLit); ok {
							return false
						}
						call, ok := n.(*ast.CallExpr)
						if !ok {
							return true
						}
						if as.isJournalEvent(call) {
							found = true
						} else if fn := calleeFunc(pkg.Info, call); fn != nil && out[funcKey(fn.Pkg(), fn.Name())] {
							found = true
						}
						return !found
					})
					if found {
						out[key] = true
						changed = true
					}
				}
			}
			if !changed {
				break
			}
		}
		return out
	}).(map[string]bool)
}

func runAckOrder(pass *Pass) {
	if pkgBase(pass.Pkg.PkgPath) != "wire" {
		return
	}
	prog := pass.Prog
	if prog == nil {
		prog = NewProgram([]*Package{pass.Pkg})
	}
	journalers := journalerFuncs(prog)
	for _, node := range prog.Funcs(pass.Pkg) {
		if !strings.HasPrefix(node.Fn.Name(), "handle") {
			continue
		}
		g := node.CFG()
		if g == nil {
			continue
		}
		as := &ackScan{pkg: pass.Pkg, prog: prog, fn: node, journalers: journalers}
		res := Forward(g, FlowProblem[ackFact](as))
		as.onReport = pass.Reportf
		for _, b := range g.Blocks {
			in, ok := res.In[b]
			if !ok {
				continue
			}
			fact := in
			for _, n := range b.Nodes {
				as.applyNode(n, &fact, true)
			}
		}
	}
}
