package analysis

import (
	"bytes"
	"encoding/json"
	"go/token"
	"path/filepath"
	"reflect"
	"testing"
)

// TestLoadDirRealPackage exercises the module loader against a real
// package from this repository (hprime has only stdlib dependencies, so
// it stays cheap).
func TestLoadDirRealPackage(t *testing.T) {
	loader, err := fixtureLoader()
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(filepath.Join(loader.ModuleRoot, "internal", "hprime"))
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if pkg == nil || pkg.Name != "hprime" {
		t.Fatalf("loaded %+v, want package hprime", pkg)
	}
	if pkg.PkgPath != "slicer/internal/hprime" {
		t.Errorf("PkgPath = %q", pkg.PkgPath)
	}
	for _, terr := range pkg.TypeErrors {
		t.Errorf("typecheck: %v", terr)
	}
	if len(pkg.Files) == 0 {
		t.Error("no files loaded")
	}
}

// TestRunDeterministicOrder: two identical runs over the same fixture
// packages produce byte-identical diagnostic lists — CI output and the
// JSON artifact must not depend on map-iteration order.
func TestRunDeterministicOrder(t *testing.T) {
	pkgs := []*Package{
		loadFixture(t, "ctcompare/prf"),
		loadFixture(t, "errdrop/drops"),
	}
	first := Run(pkgs, All())
	second := Run(pkgs, All())
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("non-deterministic runner output:\n%v\nvs\n%v", first, second)
	}
	if len(first) == 0 {
		t.Fatal("fixtures produced no diagnostics at all")
	}
	for i := 1; i < len(first); i++ {
		a, b := first[i-1], first[i]
		if a.Pos.Filename > b.Pos.Filename {
			t.Errorf("diagnostics not sorted by file: %s after %s", b.Pos.Filename, a.Pos.Filename)
		}
	}
}

// TestWriteJSON pins the machine-readable report shape the CI artifact
// depends on.
func TestWriteJSON(t *testing.T) {
	diags := []Diagnostic{
		{
			Analyzer: "ctcompare",
			Pos:      token.Position{Filename: "internal/contract/slicer.go", Line: 410, Column: 6},
			Message:  "not constant time",
		},
		{
			Analyzer: "weakrand",
			Pos:      token.Position{Filename: "internal/prf/prf.go", Line: 3, Column: 2},
			Message:  "weak PRNG next to key material",
			Hard:     true,
		},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, "slicer", 29, diags); err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Module      string `json:"module"`
		Packages    int    `json:"packages"`
		Diagnostics []struct {
			Analyzer string `json:"analyzer"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Column   int    `json:"column"`
			Message  string `json:"message"`
			Hard     bool   `json:"hard"`
		} `json:"diagnostics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, buf.String())
	}
	if rep.Module != "slicer" || rep.Packages != 29 || len(rep.Diagnostics) != 2 {
		t.Fatalf("report header wrong: %+v", rep)
	}
	d := rep.Diagnostics[0]
	if d.Analyzer != "ctcompare" || d.File != "internal/contract/slicer.go" || d.Line != 410 || d.Column != 6 {
		t.Errorf("diagnostic 0 wrong: %+v", d)
	}
	if !rep.Diagnostics[1].Hard {
		t.Error("hard flag lost in JSON round trip")
	}
}

// TestEmptyReportHasEmptyArray: a clean run serializes diagnostics as []
// (not null) so jq-style tooling can always index it.
func TestEmptyReportHasEmptyArray(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, "slicer", 1, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"diagnostics": []`)) {
		t.Fatalf("empty report should carry an empty array:\n%s", buf.String())
	}
}
