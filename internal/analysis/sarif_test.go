package analysis

import (
	"encoding/json"
	"go/token"
	"testing"
)

// TestWriteSARIF round-trips the rendered log through encoding/json and
// checks the pieces code-scanning consumers rely on: version, one rule per
// analyzer, rule-indexed results, severity mapping and slash URIs.
func TestWriteSARIF(t *testing.T) {
	diags := []Diagnostic{
		{
			Analyzer: "secrettaint",
			Pos:      token.Position{Filename: "internal/prf/prf.go", Line: 12, Column: 3},
			Message:  "secret-derived value reaches log sink",
		},
		{
			Analyzer: "ctcompare",
			Pos:      token.Position{Filename: "internal/prf/prf.go", Line: 30, Column: 5},
			Message:  "non-constant-time comparison",
			Hard:     true,
		},
	}
	out, err := sarifString(All(), diags)
	if err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}
	var log sarifLog
	if err := json.Unmarshal([]byte(out), &log); err != nil {
		t.Fatalf("rendered SARIF does not parse: %v", err)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "slicer-vet" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	// Every analyzer is a rule even on a clean run, plus the directive
	// pseudo-analyzer.
	if want := len(All()) + 1; len(run.Tool.Driver.Rules) != want {
		t.Errorf("got %d rules, want %d", len(run.Tool.Driver.Rules), want)
	}
	ruleIDs := make(map[string]int)
	for i, r := range run.Tool.Driver.Rules {
		if r.ID == "" {
			t.Errorf("rule %d has empty id", i)
		}
		ruleIDs[r.ID] = i
	}
	for _, a := range All() {
		if _, ok := ruleIDs[a.Name]; !ok {
			t.Errorf("analyzer %s missing from rules", a.Name)
		}
	}
	if len(run.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(run.Results))
	}
	soft, hard := run.Results[0], run.Results[1]
	if soft.Level != "warning" || hard.Level != "error" {
		t.Errorf("levels = (%s, %s), want (warning, error)", soft.Level, hard.Level)
	}
	for _, r := range run.Results {
		if ruleIDs[r.RuleID] != r.RuleIndex {
			t.Errorf("result %s: ruleIndex %d does not match rule table position %d",
				r.RuleID, r.RuleIndex, ruleIDs[r.RuleID])
		}
		if len(r.Locations) != 1 {
			t.Fatalf("result %s: %d locations", r.RuleID, len(r.Locations))
		}
		loc := r.Locations[0].PhysicalLocation
		if loc.ArtifactLocation.URI != "internal/prf/prf.go" {
			t.Errorf("uri = %q, want slash-separated relative path", loc.ArtifactLocation.URI)
		}
		if loc.Region.StartLine == 0 {
			t.Error("startLine missing")
		}
	}
	// A clean run still renders (empty results array, not null).
	clean, err := sarifString(All(), nil)
	if err != nil {
		t.Fatalf("clean WriteSARIF: %v", err)
	}
	var cleanLog struct {
		Runs []struct {
			Results []json.RawMessage `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(clean), &cleanLog); err != nil {
		t.Fatal(err)
	}
	if cleanLog.Runs[0].Results == nil {
		t.Error("clean run rendered results as null; want []")
	}
}
