// Package prf is a ctcompare fixture mirroring one of Slicer's crypto
// packages (matched by the final import-path element): every
// short-circuiting comparison of secret-derived bytes must be flagged,
// constant-time comparisons and non-secret payloads must not.
package prf

import (
	"bytes"
	"crypto/hmac"
	"crypto/subtle"
	"reflect"
)

// Tag is digest-typed value; the type name marks it secret-derived.
type Tag [16]byte

// VerifyMAC compares MACs with a short-circuiting comparison.
func VerifyMAC(mac, other []byte) bool {
	return bytes.Equal(mac, other) // want `bytes.Equal on secret-derived value mac is not constant time`
}

// VerifyTag compares two digest arrays with ==.
func VerifyTag(a, b Tag) bool {
	return a == b // want `== comparison of secret-derived value a is not constant time`
}

// RejectTag compares two digest arrays with !=.
func RejectTag(a, b Tag) bool {
	return a != b // want `!= comparison of secret-derived value a is not constant time`
}

// DeepVerify compares key material reflectively.
func DeepVerify(key, other []byte) bool {
	return reflect.DeepEqual(key, other) // want `reflect.DeepEqual on secret-derived value key is not constant time`
}

// VerifyOK compares in constant time; not flagged.
func VerifyOK(mac, other []byte) bool {
	return hmac.Equal(mac, other) && subtle.ConstantTimeCompare(mac, other) == 1
}

// Payloads compares non-secret bytes; not flagged.
func Payloads(a, b []byte) bool {
	return bytes.Equal(a, b)
}

// LenGuard compares a digest against a constant; length/sentinel checks
// are not comparisons of two secrets and are not flagged.
func LenGuard(digest string) bool {
	return digest == ""
}
