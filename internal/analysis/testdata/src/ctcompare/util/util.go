// Package util is a ctcompare fixture outside the crypto package set:
// the analyzer stays silent here even on suspicious names, because
// non-crypto code compares digests for deduplication and caching where
// timing is meaningless.
package util

import "bytes"

// SameDigest is fine outside the crypto packages.
func SameDigest(digest, other []byte) bool {
	return bytes.Equal(digest, other)
}
