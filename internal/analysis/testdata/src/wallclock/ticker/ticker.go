// Package ticker is a wallclock fixture outside the deterministic
// protocol set: observability and serving code may read the wall clock
// freely.
package ticker

import "time"

// Uptime reads the wall clock without ceremony.
func Uptime(start time.Time) time.Duration { return time.Since(start) }
