// Package core is a wallclock fixture mirroring a deterministic protocol
// package (matched by the final import-path element): wall-clock reads
// must be flagged unless they come through an injected clock or carry an
// instrumentation directive.
package core

import "time"

// Seal stamps with the wall clock (the violation under test).
func Seal() time.Time {
	return time.Now() // want `time.Now in deterministic protocol package "core"`
}

// Age measures with time.Since (also a wall-clock read).
func Age(t time.Time) time.Duration {
	return time.Since(t) // want `time.Since in deterministic protocol package "core"`
}

// statsNow is the sanctioned pattern: a single annotated default that
// instrumentation reads through, overridable in tests.
var statsNow = time.Now //slicer:allow wallclock -- instrumentation-only default; deterministic callers override

// SealWith uses an injected clock; not flagged.
func SealWith(now func() time.Time) time.Time { return now() }

// Elapsed reads through the annotated package clock; not flagged.
func Elapsed(start time.Time) time.Duration { return statsNow().Sub(start) }
