// Package guarded is a lockdiscipline fixture for guarded-field
// inference and lock imbalance: the locked accessors establish which
// fields the mutex guards, and the analyzer flags the accesses and
// paths that break the discipline.
package guarded

import (
	"errors"
	"sync"
)

// Counter guards its state with an RWMutex; Set/Get establish the
// discipline, the other methods break it.
type Counter struct {
	mu    sync.RWMutex
	n     int
	name  string
	ready chan struct{} // channel fields synchronize themselves; exempt
}

// Set writes under the write lock (inference: n and name are guarded).
func (c *Counter) Set(n int, name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n = n
	c.name = name
}

// Get reads under the read lock (inference: n has locked readers).
func (c *Counter) Get() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.n
}

// RacyBump writes a guarded field without any lock.
func (c *Counter) RacyBump() {
	c.n++ // want `write to n without holding Counter.mu`
}

// RacyPeek reads a field with locked readers and writers, unlocked.
func (c *Counter) RacyPeek() int {
	return c.n // want `read of n without holding Counter.mu`
}

// snapshotLocked is caller-locked by convention; never flagged.
func (c *Counter) snapshotLocked() int {
	return c.n
}

// helper is an unexported lock-free method: assumed caller-locked.
func (c *Counter) helper() int {
	return c.n
}

// LeakyGet returns early while still holding the lock.
func (c *Counter) LeakyGet(ok bool) (int, error) {
	c.mu.RLock()
	if !ok {
		return 0, errors.New("not ready") // want `returns while still holding c.mu`
	}
	n := c.n
	c.mu.RUnlock()
	return n, nil
}

// DoubleLock deadlocks against itself.
func (c *Counter) DoubleLock() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mu.Lock() // want `Lock of c.mu while it is already write-held`
	c.n = 1
}

// Upgrade takes the write lock while read-locked.
func (c *Counter) Upgrade() {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.mu.Lock() // want `write-Lock of c.mu while it is read-held`
	c.n = 2
	c.mu.Unlock()
}

// StrayUnlock releases a lock this path never acquired.
func (c *Counter) StrayUnlock(ok bool) {
	if ok {
		c.mu.Lock()
		c.n = 3
		c.mu.Unlock()
	}
	c.mu.Unlock() // want `Unlock of c.mu which is not held on any path`
}

// BalancedBranches locks and unlocks consistently on both arms; clean.
func (c *Counter) BalancedBranches(fast bool) int {
	if fast {
		c.mu.RLock()
		n := c.n
		c.mu.RUnlock()
		return n
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	return c.n
}
