// Package order is a lockdiscipline fixture for lock-order inversions:
// two mutexes acquired in both orders across different functions form a
// potential deadlock cycle, reported at the earliest acquisition site of
// each direction. The Journal/State pair mirrors the durability layer's
// journal-vs-state ordering and flows through a module-callee summary.
package order

import "sync"

// Registry and Index form the plain inversion pair.
type Registry struct {
	mu sync.Mutex
	n  int
}

type Index struct {
	mu sync.Mutex
	m  map[string]int
}

// Swap acquires Registry.mu then Index.mu.
func Swap(r *Registry, ix *Index) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ix.mu.Lock() // want `lock order inversion: Index.mu acquired while holding Registry.mu here, but the opposite order exists elsewhere \(potential deadlock\)`
	defer ix.mu.Unlock()
	ix.m["n"] = r.n
}

// SwapBack acquires the same pair in the opposite order.
func SwapBack(r *Registry, ix *Index) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	r.mu.Lock() // want `lock order inversion: Registry.mu acquired while holding Index.mu here, but the opposite order exists elsewhere \(potential deadlock\)`
	defer r.mu.Unlock()
	r.n = len(ix.m)
}

// Journal and State mirror the durability layer's mutex pair.
type Journal struct {
	mu   sync.Mutex
	recs []string
}

type State struct {
	mu sync.Mutex
	h  string
}

// append locks the journal mutex itself; callers inherit the acquisition
// through its lock summary.
func (j *Journal) append(rec string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.recs = append(j.recs, rec)
}

// Commit holds the state mutex and acquires the journal mutex through a
// module callee.
func Commit(j *Journal, st *State) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j.append(st.h) // want `lock order inversion: Journal.mu acquired while holding State.mu here, but the opposite order exists elsewhere \(potential deadlock\); the durability contract orders the journal mutex against state mutexes one way only`
}

// Replay acquires the journal mutex first, then the state mutex.
func Replay(j *Journal, st *State) {
	j.mu.Lock()
	defer j.mu.Unlock()
	st.mu.Lock() // want `lock order inversion: State.mu acquired while holding Journal.mu here, but the opposite order exists elsewhere \(potential deadlock\); the durability contract orders the journal mutex against state mutexes one way only`
	st.h = "replayed"
	st.mu.Unlock()
}
