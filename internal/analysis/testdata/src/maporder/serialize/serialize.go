// Package serialize is a maporder fixture: a `for range` over a map whose
// body reaches a hash/serialization sink is history-dependent (Go
// randomizes map order) and must be flagged; collect-then-sort loops and
// pure aggregation must not.
package serialize

import (
	"crypto/sha256"
	"fmt"
	"io"
	"sort"
)

// DigestUnsorted hashes entries in randomized map order (flagged).
func DigestUnsorted(m map[string][]byte) [32]byte {
	h := sha256.New()
	for k, v := range m { // want `iteration over map m reaches serialization/hash sink h.Write`
		h.Write([]byte(k))
		h.Write(v)
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// Dump writes entries in map order to a writer (flagged — the writer may
// be a wire connection or a hash).
func Dump(w io.Writer, m map[string]int) {
	for k, v := range m { // want `reaches serialization/hash sink fmt.Fprintf`
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// DigestSorted collects and sorts the keys first; the collection loop
// appends only (append is not a sink) and the hashing loop ranges over a
// slice. History independent, not flagged.
func DigestSorted(m map[string][]byte) [32]byte {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	for _, k := range keys {
		h.Write([]byte(k))
		h.Write(m[k])
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// CountValues only aggregates; no sink, not flagged.
func CountValues(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// DebugDump is order-sensitive on purpose and carries the justification.
func DebugDump(w io.Writer, m map[string]int) {
	//slicer:allow maporder -- human-readable debug dump; bytes never hashed, signed or sent on the wire
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}
