// Package wire is an ackorder fixture: the analyzer only runs in wire
// packages, on handle*-named methods, and requires a durable journal
// append to dominate every success response after a state mutation.
package wire

import "errors"

// journal stands in for the durability journal; its name makes receiver
// expressions journalish and commit a durable append.
type journal struct {
	recs [][]byte
}

func (j *journal) commit(rec []byte) error {
	j.recs = append(j.recs, rec)
	return nil
}

// state carries the acknowledged server state; ApplyUpdate and Step are
// recognized mutation entry points.
type state struct {
	n uint64
}

func (s *state) ApplyUpdate(rec []byte) { s.n++ }

func (s *state) Step(rec []byte) { s.n++ }

type server struct {
	jour *journal
	st   *state
}

// persist journals through a helper; the journaler summary marks it.
func (s *server) persist(rec []byte) error {
	return s.jour.commit(rec)
}

// handleGood journals before acking; clean.
func (s *server) handleGood(req []byte) (any, error) {
	s.st.ApplyUpdate(req)
	if err := s.jour.commit(req); err != nil {
		return nil, err
	}
	return "ok", nil
}

// handleLossy acks a mutation that was never journaled.
func (s *server) handleLossy(req []byte) (any, error) {
	s.st.ApplyUpdate(req)
	return "applied", nil // want `success response returned on a path where state was mutated \(mutated at line \d+\) without a durable journal append dominating it`
}

// handleBranchy journals on only one path; the join kills dominance.
func (s *server) handleBranchy(req []byte, fast bool) (any, error) {
	s.st.Step(req)
	if !fast {
		if err := s.jour.commit(req); err != nil {
			return nil, err
		}
	}
	return "ok", nil // want `success response returned on a path where state was mutated \(mutated at line \d+\) without a durable journal append dominating it`
}

// handleOptional runs without durability when the journal is nil; the
// nil-branch is exempt and the non-nil branch journals, so every path to
// the ack is safe.
func (s *server) handleOptional(req []byte) (any, error) {
	s.st.ApplyUpdate(req)
	if s.jour != nil {
		if err := s.jour.commit(req); err != nil {
			return nil, err
		}
	}
	return "ok", nil
}

// handleViaHelper journals through the persist helper; the call-graph
// summary covers the ack.
func (s *server) handleViaHelper(req []byte) (any, error) {
	s.st.ApplyUpdate(req)
	if err := s.persist(req); err != nil {
		return nil, err
	}
	return "ok", nil
}

// handleDryRun mutates nothing, so the bare success ack is fine.
func (s *server) handleDryRun(req []byte) (any, error) {
	if len(req) == 0 {
		return nil, errors.New("wire: empty request")
	}
	return "no-op", nil
}
