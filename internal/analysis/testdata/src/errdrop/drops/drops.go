// Package drops is an errdrop fixture: bare call statements that discard
// an error return are flagged; explicit discards, deferred cleanup and
// the documented never-fail writers are not.
package drops

import (
	"crypto/sha256"
	"fmt"
	"os"
	"strings"
)

// flaky returns an error someone should read.
func flaky() error { return nil }

// pair returns a value and an error.
func pair() (int, error) { return 0, nil }

// Discards silently drops errors (both flagged).
func Discards() {
	flaky() // want `result of flaky includes an error that is silently discarded`
	pair()  // want `result of pair includes an error that is silently discarded`
}

// Explicit discards are deliberate; not flagged.
func Explicit() {
	_ = flaky()
	n, _ := pair()
	_ = n
}

// Exempt writers are documented never to fail; not flagged.
func Exempt() {
	fmt.Println("ok")
	var b strings.Builder
	b.WriteString("ok")
	h := sha256.New()
	h.Write([]byte("ok"))
	h.Sum(nil)
}

// Deferred cleanup is conventional; not flagged.
func Deferred(f *os.File) {
	defer f.Close()
}

// Probe is fire-and-forget and says so.
func Probe() {
	flaky() //slicer:allow errdrop -- fire-and-forget probe; failure is expected and harmless
}
