// Package trapdoor is a weakrand fixture for a crypto package: math/rand
// next to key material is a hard diagnostic that even a well-formed
// directive must NOT suppress.
package trapdoor

import (
	//slicer:allow weakrand -- this annotation must not work inside a crypto package
	"math/rand" // want `import of math/rand inside crypto package "trapdoor"`
)

// Sample uses the weak PRNG (the violation under test).
func Sample() int { return rand.Int() }
