package seeded

import (
	// A directive names exactly one analyzer: this wallclock annotation
	// must not silence the weakrand finding below.
	//slicer:allow wallclock -- wrong analyzer on purpose
	_ "math/rand" // want `requires an explicit //slicer:allow weakrand`
)
