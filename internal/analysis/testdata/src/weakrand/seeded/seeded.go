// Package seeded is a weakrand fixture outside the crypto perimeter: a
// reasoned //slicer:allow weakrand directive on the import line
// suppresses the finding (deterministic benchmark seeding is the one
// sanctioned use).
package seeded

import (
	"math/rand" //slicer:allow weakrand -- deterministic fixture seeding
)

// Roll is deterministic under a seed.
func Roll(seed int64) int { return rand.New(rand.NewSource(seed)).Intn(6) }
