// Package adjacent is a weakrand fixture for a package that touches key
// material at one remove (it imports crypto/*): the finding calls the
// proximity out but remains suppressible with a reason.
package adjacent

import (
	"crypto/sha256"
	"math/rand" // want `touches key material through its imports`
)

// Mix hashes a weakly-random value (the juxtaposition under test).
func Mix() [32]byte { return sha256.Sum256([]byte{byte(rand.Intn(256))}) }
