// Package vault is a secrettaint fixture outside the crypto package set:
// here only the type-based source rule applies (any type whose name
// contains "Secret"), and the interprocedural summaries carry taint
// through helpers, function literals see the facts at their creation
// point, and world-readable file writes are sinks.
package vault

import (
	"fmt"
	"log"
	"os"
)

// SecretKey is a module-wide taint source by its type name.
type SecretKey struct {
	D []byte
}

// PublicKey is explicitly not secret despite living next to one.
type PublicKey struct {
	N []byte
}

// describe returns its input unchanged; the summary records the flow.
func describe(b []byte) []byte {
	return b
}

// emit logs its argument; the summary records the sink so callers are
// reported at the call site.
func emit(b []byte) {
	log.Printf("payload: %x", b)
}

// Leak flows the secret through a helper and into a logging helper.
func Leak(sk SecretKey) {
	body := describe(sk.D)
	emit(body) // want `secret-derived value passed to emit, which feeds it to a log sink`
}

// PublicPath does the same dance with public material; clean.
func PublicPath(pk PublicKey) {
	emit(describe(pk.N))
}

// Closure captures the secret and logs it when invoked.
func Closure(sk SecretKey) func() {
	return func() {
		fmt.Printf("sk=%x\n", sk.D) // want `secret-derived value reaches log sink`
	}
}

// Export writes key material world-readable.
func Export(sk SecretKey, path string) error {
	return os.WriteFile(path, sk.D, 0o644) // want `secret-derived value reaches world-readable file \(mode 0644\) sink`
}

// ExportPrivate writes the same material mode 0600; clean.
func ExportPrivate(sk SecretKey, path string) error {
	return os.WriteFile(path, sk.D, 0o600)
}

// Gauge mimics a metric vector; label values are public series names.
type Gauge struct{}

// WithLabelValues is the metric-label sink shape.
func (g *Gauge) WithLabelValues(values ...string) *Gauge { return g }

// Series puts secret bytes into a metric label.
func Series(g *Gauge, sk SecretKey) {
	g.WithLabelValues(string(sk.D)) // want `secret-derived value reaches metric-label sink`
}

// Ledger mimics the audit ledger; record bodies are exported evidence.
type Ledger struct{}

// Log is the audit-record sink shape.
func (l *Ledger) Log(detail string) {}

// Audit puts secret bytes into an audit record body.
func Audit(l *Ledger, sk SecretKey) {
	l.Log(fmt.Sprintf("rotated key %x", sk.D)) // want `secret-derived value reaches audit-record sink`
}
