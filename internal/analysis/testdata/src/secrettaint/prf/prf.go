// Package prf is a secrettaint fixture mirroring one of Slicer's crypto
// packages (matched by the final import-path element): parameters and
// fields with key-material names are taint sources here, hashing
// sanitizes, big-integer arithmetic blinds, and serialization keeps the
// taint alive.
package prf

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"log"
	"math/big"
)

// Key is secret by the type rule (type named Key inside package prf).
type Key struct {
	k []byte
}

// LogKey leaks the raw key parameter to the process log.
func LogKey(key []byte) {
	log.Printf("prf key: %x", key) // want `secret-derived value reaches log sink`
}

// KeyErr formats key material into an error value.
func KeyErr(key []byte) error {
	return fmt.Errorf("bad key %x", key) // want `secret-derived value reaches error-value sink`
}

// Digest launders the key through SHA-256 before logging; clean.
func Digest(key []byte) {
	sum := sha256.Sum256(key)
	log.Printf("key digest: %x", sum)
}

// Flow tracks taint through append and a string conversion.
func Flow(key []byte) error {
	buf := append([]byte("hdr: "), key...)
	return errors.New(string(buf)) // want `secret-derived value reaches error-value sink`
}

// FieldLeak reads the secret field through the receiver.
func (k Key) FieldLeak() {
	fmt.Println(k.k) // want `secret-derived value reaches log sink`
}

// Blinded output of modular exponentiation (the trapdoor permutation) is
// sanitized even though the exponent is secret; clean.
func Blinded(phi *big.Int, x *big.Int) {
	y := new(big.Int).Exp(x, x, phi)
	fmt.Println(y.String())
}

// SerializedSecret renders the secret big integer directly; the
// serialization keeps the taint.
func SerializedSecret(phi *big.Int) {
	fmt.Println(phi.String()) // want `secret-derived value reaches log sink`
}

// BranchLeak only leaks on one CFG path; flow sensitivity still finds it.
func BranchLeak(key []byte, debug bool) {
	msg := []byte("ready")
	if debug {
		msg = key
	}
	log.Printf("state: %x", msg) // want `secret-derived value reaches log sink`
}

// Rebound shows a strong update: after reassignment the variable is
// clean, so logging it is fine.
func Rebound(key []byte) {
	buf := key
	buf = []byte("public banner")
	log.Printf("banner: %s", buf)
}

// Allowed documents an intentional dump; the directive suppresses it.
func Allowed(key []byte) {
	//slicer:allow secrettaint -- test-vector dump compiled out of release builds
	log.Printf("debug key: %x", key)
}

// AllowedMultiline wraps the suppressed statement across lines; the
// directive covers the statement's whole span, so the diagnostic at the
// tainted argument two lines down is silenced too.
func AllowedMultiline(key []byte) {
	//slicer:allow secrettaint -- test-vector dump compiled out of release builds
	log.Printf("prf schedule:\n  k=%x\n  rounds=%d",
		key,
		10)
}
