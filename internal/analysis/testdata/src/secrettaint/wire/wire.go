// Package wire is a secrettaint fixture for the RPC trust boundary:
// response payload fields, response composite literals, and handle*
// return values must never carry secret-derived bytes.
package wire

import "encoding/json"

// SecretKey marks its values as key material module-wide.
type SecretKey struct {
	D []byte
}

// Response is the wire envelope; matched by its type name.
type Response struct {
	Result json.RawMessage
	Debug  string
}

// Server hosts the handlers.
type Server struct {
	sk SecretKey
}

// FillDebug assigns secret bytes into a response field.
func (s *Server) FillDebug(resp *Response) {
	resp.Debug = string(s.sk.D) // want `secret-derived value assigned to RPC response field Debug`
}

// BuildResponse puts secret bytes into a response literal.
func (s *Server) BuildResponse() Response {
	return Response{Debug: string(s.sk.D)} // want `secret-derived value placed in RPC response literal`
}

// handleDump returns the secret as the payload of an RPC result.
func (s *Server) handleDump(params json.RawMessage) (any, error) {
	return s.sk.D, nil // want `secret-derived value returned as RPC response payload from handleDump`
}

// handleStatus returns public data; clean.
func (s *Server) handleStatus(params json.RawMessage) (any, error) {
	return map[string]int{"connections": 3}, nil
}
