package analysis

import (
	"encoding/json"
	"io"
)

// Run executes the analyzers over each package, applies //slicer:allow
// suppressions, folds in directive-hygiene diagnostics and returns the
// surviving findings in deterministic order.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	// Directive names are validated against the full registry, not just
	// this run's subset: an in-test gate that runs two analyzers must not
	// reject a //slicer:allow aimed at a third.
	known := make(map[string]bool, len(analyzers))
	for _, a := range All() {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	prog := NewProgram(pkgs)
	var all []Diagnostic
	for _, pkg := range pkgs {
		if pkg == nil {
			continue
		}
		dirs, dirDiags := CollectDirectives(pkg, known)
		var raw []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, Prog: prog}
			a.Run(pass)
			raw = append(raw, pass.diags...)
		}
		all = append(all, applySuppressions(raw, dirs)...)
		all = append(all, dirDiags...)
	}
	SortDiagnostics(all)
	return all
}

// Report is the machine-readable form of one slicer-vet run, written by
// the driver's -json mode and uploaded as a CI artifact.
type Report struct {
	// Module is the module path that was analyzed.
	Module string `json:"module"`
	// Packages counts the packages loaded.
	Packages int `json:"packages"`
	// Diagnostics are the surviving findings, sorted.
	Diagnostics []jsonDiagnostic `json:"diagnostics"`
}

// jsonDiagnostic flattens token.Position for stable JSON output.
type jsonDiagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
	Hard     bool   `json:"hard,omitempty"`
}

// WriteJSON renders a Report for the given run.
func WriteJSON(w io.Writer, module string, packages int, diags []Diagnostic) error {
	rep := Report{
		Module:      module,
		Packages:    packages,
		Diagnostics: make([]jsonDiagnostic, 0, len(diags)),
	}
	for _, d := range diags {
		rep.Diagnostics = append(rep.Diagnostics, jsonDiagnostic{
			Analyzer: d.Analyzer,
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Message:  d.Message,
			Hard:     d.Hard,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
