package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one parsed and type-checked package ready for analysis.
type Package struct {
	// PkgPath is the import path ("slicer/internal/prf"; fixtures get a
	// synthetic path).
	PkgPath string
	// Name is the package name from the source.
	Name string
	// Dir is the directory the sources were read from.
	Dir string
	// Fset is the file set shared by every package the loader produced.
	Fset *token.FileSet
	// Files are the parsed non-test source files, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the type-checker's expression/object tables.
	Info *types.Info
	// TypeErrors collects type-check errors; analyzers still run on a
	// partially checked package, but the driver treats these as fatal.
	TypeErrors []error
}

// A Loader parses and type-checks packages of one module using only the
// standard library: module-internal imports resolve against the module
// tree, everything else falls back to go/importer's source importer.
type Loader struct {
	// ModuleRoot is the directory containing go.mod.
	ModuleRoot string
	// ModulePath is the module path declared in go.mod.
	ModulePath string
	// Fset is shared by all loaded packages.
	Fset *token.FileSet

	fallback types.ImporterFrom
	pkgs     map[string]*Package // by import path
	loading  map[string]bool     // cycle detection
}

// FindModuleRoot walks up from dir to the directory containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		abs = parent
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod []byte) (string, error) {
	for _, line := range strings.Split(string(gomod), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			mp := strings.TrimSpace(rest)
			mp = strings.Trim(mp, `"`)
			if mp != "" {
				return mp, nil
			}
		}
	}
	return "", fmt.Errorf("analysis: no module line in go.mod")
}

// NewLoader creates a loader for the module rooted at moduleRoot.
func NewLoader(moduleRoot string) (*Loader, error) {
	gomod, err := os.ReadFile(filepath.Join(moduleRoot, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: read go.mod: %w", err)
	}
	mp, err := modulePath(gomod)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	fb, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("analysis: source importer unavailable")
	}
	return &Loader{
		ModuleRoot: moduleRoot,
		ModulePath: mp,
		Fset:       fset,
		fallback:   fb,
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// skipDir reports whether a directory is never loaded: testdata trees
// (analyzer fixtures), VCS/tooling metadata and vendored code.
func skipDir(name string) bool {
	if name == "testdata" || name == "vendor" {
		return true
	}
	return strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

// LoadAll loads every package in the module (skipping testdata, vendored
// and hidden trees), returning them sorted by import path.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModuleRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path != l.ModuleRoot && skipDir(d.Name()) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].PkgPath < pkgs[j].PkgPath })
	return pkgs, nil
}

// LoadDir loads the package in one directory, deriving its import path
// from the module root. It returns (nil, nil) for directories without
// buildable Go files.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.ModuleRoot, abs)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s is outside module %s", dir, l.ModuleRoot)
	}
	ip := l.ModulePath
	if rel != "." {
		ip = l.ModulePath + "/" + filepath.ToSlash(rel)
	}
	return l.LoadPackageDir(ip, abs)
}

// LoadPackageDir loads the package in dir under an explicit import path.
// Fixture tests use this to load testdata packages that LoadAll skips.
func (l *Loader) LoadPackageDir(importPath, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("analysis: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		full := filepath.Join(dir, name)
		src, err := os.ReadFile(full)
		if err != nil {
			return nil, err
		}
		if buildIgnored(src) {
			continue
		}
		f, err := parser.ParseFile(l.Fset, full, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %w", full, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}

	pkg := &Package{
		PkgPath: importPath,
		Name:    files[0].Name.Name,
		Dir:     dir,
		Fset:    l.Fset,
		Files:   files,
	}
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error: func(err error) {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		},
	}
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	// Check reports the first error via conf.Error and keeps going; the
	// returned error is redundant with pkg.TypeErrors.
	tpkg, _ := conf.Check(importPath, l.Fset, files, pkg.Info)
	pkg.Types = tpkg
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// buildIgnored reports whether the file carries a `//go:build ignore` (or
// legacy `// +build ignore`) constraint.
func buildIgnored(src []byte) bool {
	for _, line := range strings.Split(string(src), "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "//") {
			if strings.HasPrefix(trimmed, "//go:build") && strings.Contains(trimmed, "ignore") {
				return true
			}
			if strings.HasPrefix(trimmed, "// +build") && strings.Contains(trimmed, "ignore") {
				return true
			}
			continue
		}
		break // first non-comment line ends the constraint block
	}
	return false
}

// loaderImporter adapts Loader to types.Importer: module-internal paths
// load from the module tree, everything else (stdlib) goes to the source
// importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		dir := filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))
		pkg, err := l.LoadPackageDir(path, dir)
		if err != nil {
			return nil, err
		}
		if pkg == nil || pkg.Types == nil {
			return nil, fmt.Errorf("analysis: no buildable package at %s", path)
		}
		return pkg.Types, nil
	}
	return l.fallback.Import(path)
}
