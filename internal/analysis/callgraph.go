package analysis

// Program-level view for the interprocedural analyzers: an index from
// type-checker function objects to their declarations across every package
// of one Run, lazily built CFGs, and a cache where analyzers memoize their
// module-wide summary passes (taint summaries, lock-acquisition summaries)
// so the per-package analyzer entry points share one fixpoint computation.

import (
	"go/ast"
	"go/types"
	"sync"
)

// A FuncNode is one declared function or method of the analyzed program.
type FuncNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package

	cfgOnce sync.Once
	cfg     *CFG
}

// CFG returns the function's control-flow graph, built on first use (nil
// for body-less declarations).
func (n *FuncNode) CFG() *CFG {
	n.cfgOnce.Do(func() { n.cfg = BuildCFG(n.Decl) })
	return n.cfg
}

// A Program spans all packages of one analysis run. Analyzers reach it via
// Pass.Prog; cross-package resolution degrades gracefully when a run loads
// only a subset of the module (unknown callees get conservative defaults).
type Program struct {
	Pkgs []*Package

	fns map[*types.Func]*FuncNode

	mu    sync.Mutex
	cache map[string]any
}

// NewProgram indexes the packages' function declarations.
func NewProgram(pkgs []*Package) *Program {
	p := &Program{Pkgs: pkgs, fns: make(map[*types.Func]*FuncNode), cache: make(map[string]any)}
	for _, pkg := range pkgs {
		if pkg == nil || pkg.Info == nil {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Name == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				p.fns[fn] = &FuncNode{Fn: fn, Decl: fd, Pkg: pkg}
			}
		}
	}
	return p
}

// Func resolves a type-checker function object to its declaration node,
// or nil when the function was not declared in this run's packages.
func (p *Program) Func(fn *types.Func) *FuncNode {
	if fn == nil {
		return nil
	}
	return p.fns[fn]
}

// Funcs returns every indexed function node of one package, in file order.
func (p *Program) Funcs(pkg *Package) []*FuncNode {
	var out []*FuncNode
	if pkg == nil || pkg.Info == nil {
		return nil
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name == nil {
				continue
			}
			if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				if node := p.fns[fn]; node != nil {
					out = append(out, node)
				}
			}
		}
	}
	return out
}

// Cached memoizes one module-wide artifact under a key: the first caller
// builds it, later callers (other packages' analyzer passes) reuse it.
func (p *Program) Cached(key string, build func() any) any {
	p.mu.Lock()
	v, ok := p.cache[key]
	p.mu.Unlock()
	if ok {
		return v
	}
	v = build()
	p.mu.Lock()
	if prev, ok := p.cache[key]; ok {
		v = prev
	} else {
		p.cache[key] = v
	}
	p.mu.Unlock()
	return v
}

// Callee resolves a call expression in pkg to the program's node for the
// invoked function (nil for builtins, conversions, function values and
// functions outside the run).
func (p *Program) Callee(pkg *Package, call *ast.CallExpr) *FuncNode {
	if pkg.Info == nil {
		return nil
	}
	return p.Func(calleeFunc(pkg.Info, call))
}
