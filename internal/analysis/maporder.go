package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
)

// MapOrder enforces the history-independence invariant from the paper's
// dictionary construction: Go's map iteration order is deliberately
// randomized, so a `for range` over a map whose body feeds a hash,
// serializer or wire writer produces bytes that depend on insertion
// history and process randomness — two honest parties computing "the same"
// digest would disagree. The analyzer flags map ranges whose body reaches
// a serialization/hash sink; the fix is to collect the keys, sort them,
// and range over the sorted slice (collect-then-sort loops are not
// flagged, because appending to a slice is not a sink).
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "flag `for range` over a map whose body reaches a " +
		"serialization/hash/wire sink; iterate over sorted keys instead",
	Run: runMapOrder,
}

// sinkMethods are method names that commit bytes to an order-sensitive
// consumer: hash states, encoders, string/byte builders and writers.
var sinkMethods = map[string]bool{
	"Write":         true,
	"WriteString":   true,
	"WriteByte":     true,
	"WriteRune":     true,
	"Sum":           true,
	"Encode":        true,
	"EncodeElement": true,
	"Marshal":       true,
	"MarshalBinary": true,
	"AppendBinary":  true,
}

// sinkFunc matches package-level functions that serialize their
// arguments (json.Marshal, binary.Write, custom encodeFoo/hashBar
// helpers). fmt's Fprint family is included because its writer is
// frequently a hash or a wire connection.
var sinkFunc = regexp.MustCompile(`^(Marshal|Encode|Serialize|Hash|Digest|Sum|Fprint|Append)`)

func runMapOrder(pass *Pass) {
	pkg := pass.Pkg
	if pkg.Info == nil {
		return
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pkg.Info.Types[rng.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if sink := findSink(pkg.Info, rng.Body); sink != nil {
				pass.Reportf(rng.For,
					"iteration over map %s reaches serialization/hash sink %s; map order is randomized — collect and sort the keys first (history independence)",
					types.ExprString(rng.X), types.ExprString(sink.Fun))
			}
			return true
		})
	}
}

// findSink returns the first serialization/hash call inside the loop
// body, or nil.
func findSink(info *types.Info, body *ast.BlockStmt) *ast.CallExpr {
	var found *ast.CallExpr
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.SelectorExpr:
			if _, isMethod := info.Selections[fun]; isMethod {
				if sinkMethods[fun.Sel.Name] {
					found = call
				}
				return true
			}
			// Qualified package function: pkg.Marshal, fmt.Fprintf, ...
			if sinkFunc.MatchString(fun.Sel.Name) {
				found = call
			}
		case *ast.Ident:
			// Local helper: encodeEntry(...), hashLeaf(...). Builtins
			// (append, copy, len) resolve to nil *types.Func and are
			// never sinks.
			if fn, ok := info.Uses[fun].(*types.Func); ok && sinkFuncName(fn.Name()) {
				found = call
			}
		}
		return true
	})
	return found
}

// sinkFuncName applies the sink pattern case-insensitively on the first
// rune so unexported helpers (encodeFoo, hashLeaf) match too.
func sinkFuncName(name string) bool {
	if name == "" {
		return false
	}
	upper := name
	if c := name[0]; c >= 'a' && c <= 'z' {
		upper = string(c-'a'+'A') + name[1:]
	}
	return sinkFunc.MatchString(upper)
}
