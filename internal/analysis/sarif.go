package analysis

// SARIF 2.1.0 rendering of a slicer-vet run, hand-rolled against the
// subset of the schema code-scanning UIs consume: one run, one rule per
// analyzer, one result per diagnostic with a physical location. Kept
// dependency-free like the rest of the framework.

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
)

const (
	sarifVersion = "2.1.0"
	sarifSchema  = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
	DefaultConfig    *sarifConfig `json:"defaultConfiguration,omitempty"`
}

type sarifConfig struct {
	Level string `json:"level"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders the run as a SARIF 2.1.0 log. Every registered
// analyzer appears as a rule even when it reported nothing, so consumers
// can tell "ran clean" from "did not run"; diagnostics map to results
// whose level is error for hard (unsuppressable) findings and warning
// otherwise. File URIs are slash-separated and expected to be
// module-relative (the caller relativizes).
func WriteSARIF(w io.Writer, analyzers []*Analyzer, diags []Diagnostic) error {
	ruleIndex := make(map[string]int, len(analyzers)+1)
	rules := make([]sarifRule, 0, len(analyzers)+1)
	addRule := func(id, doc, level string) {
		if _, ok := ruleIndex[id]; ok {
			return
		}
		ruleIndex[id] = len(rules)
		rules = append(rules, sarifRule{
			ID:               id,
			ShortDescription: sarifMessage{Text: doc},
			DefaultConfig:    &sarifConfig{Level: level},
		})
	}
	for _, a := range analyzers {
		addRule(a.Name, a.Doc, "warning")
	}
	addRule(DirectiveAnalyzer, "malformed //slicer:allow suppression directives", "warning")

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		// A diagnostic from an analyzer outside the registered set (a
		// caller-assembled run) still needs a rule to point at.
		addRule(d.Analyzer, "", "warning")
		level := "warning"
		if d.Hard {
			level = "error"
		}
		results = append(results, sarifResult{
			RuleID:    d.Analyzer,
			RuleIndex: ruleIndex[d.Analyzer],
			Level:     level,
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{
						URI: filepath.ToSlash(d.Pos.Filename),
					},
					Region: sarifRegion{
						StartLine:   max(d.Pos.Line, 1),
						StartColumn: d.Pos.Column,
					},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  sarifSchema,
		Version: sarifVersion,
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:  "slicer-vet",
				Rules: rules,
			}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// sarifString is a test hook: the rendered log as a string.
func sarifString(analyzers []*Analyzer, diags []Diagnostic) (string, error) {
	var sb strings.Builder
	err := WriteSARIF(&sb, analyzers, diags)
	return sb.String(), err
}
