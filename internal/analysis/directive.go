package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// DirectivePrefix introduces a suppression comment.
const DirectivePrefix = "//slicer:allow"

// DirectiveAnalyzer is the pseudo-analyzer name under which malformed
// directives are reported. It cannot itself be suppressed.
const DirectiveAnalyzer = "directive"

// A Directive is one well-formed //slicer:allow comment.
type Directive struct {
	// Analyzer is the single analyzer the directive suppresses.
	Analyzer string
	// Reason is the mandatory justification after "--".
	Reason string
	// Pos is the comment's position.
	Pos token.Position
	// FromLine and ToLine bound the suppressed line span (inclusive). The
	// span is at least the directive's own line and the next; when the
	// directive sits on or directly above a multi-line simple statement (a
	// composite-literal assignment, a call wrapped across lines), it widens
	// to the statement's full extent so the suppression covers every line
	// the statement's diagnostics can land on. Compound statements (blocks,
	// loops, branches) never widen the span.
	FromLine, ToLine int
}

// CollectDirectives scans a package's comments for //slicer:allow
// directives. Well-formed directives are returned; malformed ones — a
// missing analyzer name, an analyzer not in known, or a missing "--
// <reason>" — are returned as diagnostics under the "directive"
// pseudo-analyzer so a bad suppression can never silently turn a gate off.
func CollectDirectives(pkg *Package, known map[string]bool) ([]Directive, []Diagnostic) {
	var dirs []Directive
	var diags []Diagnostic
	report := func(pos token.Position, msg string) {
		diags = append(diags, Diagnostic{Analyzer: DirectiveAnalyzer, Pos: pos, Message: msg})
	}
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, DirectivePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, DirectivePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					// e.g. //slicer:allowfoo — not our directive.
					continue
				}
				spec, reason, hasReason := strings.Cut(rest, "--")
				names := strings.Fields(spec)
				switch {
				case len(names) == 0:
					report(pos, "//slicer:allow directive missing analyzer name")
					continue
				case len(names) > 1:
					report(pos, "//slicer:allow directive names more than one analyzer; use one directive per analyzer")
					continue
				}
				name := names[0]
				if !known[name] {
					report(pos, "unknown analyzer "+quote(name)+" in //slicer:allow directive")
					continue
				}
				if !hasReason || strings.TrimSpace(reason) == "" {
					report(pos, "//slicer:allow "+name+" directive missing required reason (\"-- <why this is safe>\")")
					continue
				}
				from, to := pos.Line, pos.Line+1
				if sf, st, ok := enclosingSimpleStmtSpan(pkg, file, pos.Line); ok {
					from, to = min(from, sf), max(to, st)
				}
				dirs = append(dirs, Directive{
					Analyzer: name,
					Reason:   strings.TrimSpace(reason),
					Pos:      pos,
					FromLine: from,
					ToLine:   to,
				})
			}
		}
	}
	return dirs, diags
}

func quote(s string) string { return "\"" + s + "\"" }

// enclosingSimpleStmtSpan finds the innermost simple statement (or var
// spec) whose line span touches the directive's line or the line below it,
// and returns that statement's full line span. Only simple statements
// qualify: a directive above an if/for/block must not blanket-suppress the
// whole construct, but one above a statement that happens to wrap across
// lines — a composite literal, a multi-line call — covers all of it.
func enclosingSimpleStmtSpan(pkg *Package, file *ast.File, line int) (int, int, bool) {
	var best ast.Node
	var bestFrom, bestTo int
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		switch n.(type) {
		case *ast.AssignStmt, *ast.ExprStmt, *ast.ReturnStmt, *ast.DeclStmt,
			*ast.IncDecStmt, *ast.SendStmt, *ast.GoStmt, *ast.DeferStmt,
			*ast.ValueSpec:
		default:
			return true
		}
		from := pkg.Fset.Position(n.Pos()).Line
		to := pkg.Fset.Position(n.End()).Line
		if to < line || from > line+1 {
			return true
		}
		// Innermost wins: a contained statement starts at or after its
		// container, and later candidates are deeper in the walk.
		if best == nil || n.Pos() >= best.Pos() {
			best, bestFrom, bestTo = n, from, to
		}
		return true
	})
	if best == nil {
		return 0, 0, false
	}
	return bestFrom, bestTo, true
}

// suppressionKey identifies one (file, line, analyzer) suppression slot.
type suppressionKey struct {
	file     string
	line     int
	analyzer string
}

// applySuppressions drops diagnostics covered by a directive for the same
// analyzer within the directive's suppressed line span (at minimum its own
// line and the next; widened over the enclosing simple statement).
// Directive diagnostics themselves are never suppressed.
func applySuppressions(diags []Diagnostic, dirs []Directive) []Diagnostic {
	if len(dirs) == 0 {
		return diags
	}
	allowed := make(map[suppressionKey]bool, 2*len(dirs))
	for _, d := range dirs {
		from, to := d.FromLine, d.ToLine
		if from <= 0 || from > d.Pos.Line {
			from = d.Pos.Line
		}
		if to < d.Pos.Line+1 {
			to = d.Pos.Line + 1
		}
		for line := from; line <= to; line++ {
			allowed[suppressionKey{d.Pos.Filename, line, d.Analyzer}] = true
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		if !d.Hard && d.Analyzer != DirectiveAnalyzer &&
			allowed[suppressionKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
