package analysis

import (
	"go/token"
	"strings"
)

// DirectivePrefix introduces a suppression comment.
const DirectivePrefix = "//slicer:allow"

// DirectiveAnalyzer is the pseudo-analyzer name under which malformed
// directives are reported. It cannot itself be suppressed.
const DirectiveAnalyzer = "directive"

// A Directive is one well-formed //slicer:allow comment.
type Directive struct {
	// Analyzer is the single analyzer the directive suppresses.
	Analyzer string
	// Reason is the mandatory justification after "--".
	Reason string
	// Pos is the comment's position.
	Pos token.Position
}

// CollectDirectives scans a package's comments for //slicer:allow
// directives. Well-formed directives are returned; malformed ones — a
// missing analyzer name, an analyzer not in known, or a missing "--
// <reason>" — are returned as diagnostics under the "directive"
// pseudo-analyzer so a bad suppression can never silently turn a gate off.
func CollectDirectives(pkg *Package, known map[string]bool) ([]Directive, []Diagnostic) {
	var dirs []Directive
	var diags []Diagnostic
	report := func(pos token.Position, msg string) {
		diags = append(diags, Diagnostic{Analyzer: DirectiveAnalyzer, Pos: pos, Message: msg})
	}
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, DirectivePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, DirectivePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					// e.g. //slicer:allowfoo — not our directive.
					continue
				}
				spec, reason, hasReason := strings.Cut(rest, "--")
				names := strings.Fields(spec)
				switch {
				case len(names) == 0:
					report(pos, "//slicer:allow directive missing analyzer name")
					continue
				case len(names) > 1:
					report(pos, "//slicer:allow directive names more than one analyzer; use one directive per analyzer")
					continue
				}
				name := names[0]
				if !known[name] {
					report(pos, "unknown analyzer "+quote(name)+" in //slicer:allow directive")
					continue
				}
				if !hasReason || strings.TrimSpace(reason) == "" {
					report(pos, "//slicer:allow "+name+" directive missing required reason (\"-- <why this is safe>\")")
					continue
				}
				dirs = append(dirs, Directive{
					Analyzer: name,
					Reason:   strings.TrimSpace(reason),
					Pos:      pos,
				})
			}
		}
	}
	return dirs, diags
}

func quote(s string) string { return "\"" + s + "\"" }

// suppressionKey identifies one (file, line, analyzer) suppression slot.
type suppressionKey struct {
	file     string
	line     int
	analyzer string
}

// applySuppressions drops diagnostics covered by a directive for the same
// analyzer on the diagnostic's line or the line directly above it.
// Directive diagnostics themselves are never suppressed.
func applySuppressions(diags []Diagnostic, dirs []Directive) []Diagnostic {
	if len(dirs) == 0 {
		return diags
	}
	allowed := make(map[suppressionKey]bool, 2*len(dirs))
	for _, d := range dirs {
		allowed[suppressionKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}] = true
		allowed[suppressionKey{d.Pos.Filename, d.Pos.Line + 1, d.Analyzer}] = true
	}
	kept := diags[:0]
	for _, d := range diags {
		if !d.Hard && d.Analyzer != DirectiveAnalyzer &&
			allowed[suppressionKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
