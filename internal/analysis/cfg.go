package analysis

// Control-flow graphs for the flow-sensitive analyzers (secrettaint,
// lockdiscipline, ackorder). The builder is hand-rolled over go/ast with no
// dependency on golang.org/x/tools, the same zero-dependency discipline as
// the rest of the framework: every function body is lowered to basic blocks
// connected by kind-tagged edges (the true/false edges of a condition are
// distinguishable, which the ackorder analyzer uses to recognize
// `if jour == nil` guards). Type information is not required — the builder
// runs on anything go/parser accepts, which is what FuzzCFGBuilder leans on.

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// EdgeKind classifies why control moves from one block to another.
type EdgeKind uint8

const (
	// EdgeNext is an unconditional transfer (fallthrough of straight-line
	// code, jumps, loop back edges).
	EdgeNext EdgeKind = iota
	// EdgeTrue leaves a condition block when the condition held (for a
	// range header: an element was produced).
	EdgeTrue
	// EdgeFalse leaves a condition block when the condition failed (for a
	// range header: the range was exhausted).
	EdgeFalse
	// EdgeCase enters one case/comm clause of a switch or select.
	EdgeCase
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeTrue:
		return "true"
	case EdgeFalse:
		return "false"
	case EdgeCase:
		return "case"
	default:
		return "next"
	}
}

// An Edge is one directed control-flow transfer.
type Edge struct {
	From, To *Block
	Kind     EdgeKind
}

// A Block is one basic block: a maximal run of straight-line statements
// and condition expressions, executed in order.
type Block struct {
	// Index is the block's position in CFG.Blocks after pruning; the entry
	// block is always index 0.
	Index int
	// Nodes are the statements and condition expressions of the block in
	// execution order. Condition expressions of branches appear as the
	// last node (see Cond).
	Nodes []ast.Node
	// Cond is the branch condition when the block ends in a two-way
	// (true/false) branch, nil otherwise. The same expression is also the
	// last entry of Nodes, so linear walks see its side effects.
	Cond ast.Expr
	// Succs are the outgoing edges in deterministic order.
	Succs []Edge
	// Preds are the incoming edges.
	Preds []Edge
}

// A CFG is the control-flow graph of one function or method body.
type CFG struct {
	// Decl is the analyzed declaration (nil when built from a FuncLit).
	Decl *ast.FuncDecl
	// Blocks holds every reachable block; Blocks[0] is the entry.
	Blocks []*Block
	// Entry is the function's entry block (== Blocks[0]).
	Entry *Block
	// Exit is the virtual exit block every return (and the fall-off end of
	// the body) feeds into. It holds no nodes and may be unreachable in a
	// function that cannot return.
	Exit *Block

	// Defers lists the defer statements encountered anywhere in the body,
	// in syntactic order. Analyzers that model deferred cleanup (the
	// lockdiscipline unlock balance) consult it; the graph itself treats
	// defer as a normal statement.
	Defers []*ast.DeferStmt

	idom map[*Block]*Block // lazily computed immediate dominators
}

// BuildCFG lowers a function declaration's body to a CFG. Declarations
// without a body (externally implemented) return nil.
func BuildCFG(decl *ast.FuncDecl) *CFG {
	if decl == nil || decl.Body == nil {
		return nil
	}
	g := buildBody(decl.Body)
	g.Decl = decl
	return g
}

// BuildLitCFG lowers a function literal's body (closures get their own
// graphs when an analyzer wants flow-sensitivity inside them).
func BuildLitCFG(lit *ast.FuncLit) *CFG {
	if lit == nil || lit.Body == nil {
		return nil
	}
	return buildBody(lit.Body)
}

func buildBody(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:    &CFG{},
		labels: make(map[string]*labelInfo),
	}
	b.cfg.Exit = &Block{}
	entry := b.newBlock()
	b.cfg.Entry = entry
	b.cur = entry
	b.stmtList(body.List)
	// Falling off the end of the body returns.
	b.jumpTo(b.cfg.Exit, EdgeNext)
	b.prune()
	return b.cfg
}

// loopCtx is one enclosing breakable/continuable construct.
type loopCtx struct {
	label      string // enclosing label, "" when unlabeled
	breakTo    *Block
	continueTo *Block // nil for switch/select (not continuable)
}

// labelInfo tracks a label's goto target block (created on demand for
// forward gotos).
type labelInfo struct {
	block *Block
}

type cfgBuilder struct {
	cfg    *CFG
	cur    *Block // nil while the current point is unreachable
	loops  []loopCtx
	labels map[string]*labelInfo
	// pendingLabel carries a label to attach to the next loop/switch the
	// builder enters (for `L: for ... break L`).
	pendingLabel string
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// startBlock makes blk the current insertion point.
func (b *cfgBuilder) startBlock(blk *Block) { b.cur = blk }

// add appends a node to the current block (no-op while unreachable).
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur != nil && n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

// edge connects from→to.
func (b *cfgBuilder) edge(from, to *Block, kind EdgeKind) {
	if from == nil || to == nil {
		return
	}
	e := Edge{From: from, To: to, Kind: kind}
	from.Succs = append(from.Succs, e)
	to.Preds = append(to.Preds, e)
}

// jumpTo ends the current block with an edge to target and marks the point
// unreachable until a new block starts.
func (b *cfgBuilder) jumpTo(target *Block, kind EdgeKind) {
	if b.cur != nil {
		b.edge(b.cur, target, kind)
	}
	b.cur = nil
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// terminates reports whether a statement never returns control: panic(...)
// and the conventional process terminators.
func terminates(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			switch {
			case x.Name == "os" && fun.Sel.Name == "Exit":
				return true
			case x.Name == "runtime" && fun.Sel.Name == "Goexit":
				return true
			case x.Name == "log" && strings.HasPrefix(fun.Sel.Name, "Fatal"):
				return true
			}
		}
	}
	return false
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	// Statements in unreachable positions (after return/panic) still get a
	// block so nested labels/gotos resolve; it is pruned if never entered.
	if b.cur == nil {
		b.startBlock(b.newBlock())
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		cond := b.cur
		cond.Cond = s.Cond
		then := b.newBlock()
		after := b.newBlock()
		b.edge(cond, then, EdgeTrue)
		var els *Block
		if s.Else != nil {
			els = b.newBlock()
			b.edge(cond, els, EdgeFalse)
		} else {
			b.edge(cond, after, EdgeFalse)
		}
		b.startBlock(then)
		b.stmt(s.Body)
		b.jumpTo(after, EdgeNext)
		if s.Else != nil {
			b.startBlock(els)
			b.stmt(s.Else)
			b.jumpTo(after, EdgeNext)
		}
		b.startBlock(after)

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock()
		b.jumpTo(head, EdgeNext)
		b.startBlock(head)
		body := b.newBlock()
		after := b.newBlock()
		if s.Cond != nil {
			b.add(s.Cond)
			head.Cond = s.Cond
			b.edge(head, body, EdgeTrue)
			b.edge(head, after, EdgeFalse)
		} else {
			b.edge(head, body, EdgeNext)
		}
		continueTo := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock()
			continueTo = post
		}
		b.loops = append(b.loops, loopCtx{label: label, breakTo: after, continueTo: continueTo})
		b.startBlock(body)
		b.stmt(s.Body)
		if post != nil {
			b.jumpTo(post, EdgeNext)
			b.startBlock(post)
			b.add(s.Post)
			b.jumpTo(head, EdgeNext)
		} else {
			b.jumpTo(head, EdgeNext)
		}
		b.loops = b.loops[:len(b.loops)-1]
		b.startBlock(after)

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		b.jumpTo(head, EdgeNext)
		b.startBlock(head)
		// The whole range statement is the header node: its X is evaluated
		// and its key/value are (re)assigned here each iteration.
		b.add(s)
		body := b.newBlock()
		after := b.newBlock()
		b.edge(head, body, EdgeTrue)
		b.edge(head, after, EdgeFalse)
		b.loops = append(b.loops, loopCtx{label: label, breakTo: after, continueTo: head})
		b.startBlock(body)
		b.stmt(s.Body)
		b.jumpTo(head, EdgeNext)
		b.loops = b.loops[:len(b.loops)-1]
		b.startBlock(after)

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchClauses(s.Body.List, label, func(cc *ast.CaseClause) []ast.Stmt { return cc.Body })

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.switchClauses(s.Body.List, label, func(cc *ast.CaseClause) []ast.Stmt { return cc.Body })

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.cur
		after := b.newBlock()
		sawDefault := false
		b.loops = append(b.loops, loopCtx{label: label, breakTo: after})
		for _, cl := range s.Body.List {
			comm, ok := cl.(*ast.CommClause)
			if !ok {
				continue
			}
			blk := b.newBlock()
			b.edge(head, blk, EdgeCase)
			b.startBlock(blk)
			if comm.Comm != nil {
				b.add(comm.Comm)
			} else {
				sawDefault = true
			}
			b.stmtList(comm.Body)
			b.jumpTo(after, EdgeNext)
		}
		b.loops = b.loops[:len(b.loops)-1]
		if len(s.Body.List) == 0 {
			// select {} blocks forever.
			b.cur = nil
		}
		_ = sawDefault
		b.startBlock(after)

	case *ast.LabeledStmt:
		info := b.labelTarget(s.Label.Name)
		b.jumpTo(info.block, EdgeNext)
		b.startBlock(info.block)
		switch s.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			b.pendingLabel = s.Label.Name
		}
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if t := b.findLoop(s.Label, true); t != nil {
				b.jumpTo(t.breakTo, EdgeNext)
			} else {
				b.cur = nil
			}
		case token.CONTINUE:
			if t := b.findLoop(s.Label, false); t != nil {
				b.jumpTo(t.continueTo, EdgeNext)
			} else {
				b.cur = nil
			}
		case token.GOTO:
			if s.Label != nil {
				b.jumpTo(b.labelTarget(s.Label.Name).block, EdgeNext)
			} else {
				b.cur = nil
			}
		case token.FALLTHROUGH:
			// Handled structurally by switchClauses; reaching here means a
			// malformed fallthrough — drop the edge.
			b.cur = nil
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.jumpTo(b.cfg.Exit, EdgeNext)

	case *ast.DeferStmt:
		b.add(s)
		b.cfg.Defers = append(b.cfg.Defers, s)

	case *ast.EmptyStmt:
		// nothing

	default:
		// ExprStmt, AssignStmt, DeclStmt, IncDecStmt, SendStmt, GoStmt.
		b.add(s)
		if terminates(s) {
			b.cur = nil
		}
	}
}

// switchClauses lowers the clause list shared by switch and type switch,
// including fallthrough edges.
func (b *cfgBuilder) switchClauses(list []ast.Stmt, label string, body func(*ast.CaseClause) []ast.Stmt) {
	head := b.cur
	after := b.newBlock()
	blocks := make([]*Block, len(list))
	hasDefault := false
	for i, cl := range list {
		blocks[i] = b.newBlock()
		b.edge(head, blocks[i], EdgeCase)
		if cc, ok := cl.(*ast.CaseClause); ok && cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		// No default: the tag may match nothing and fall through the switch.
		b.edge(head, after, EdgeFalse)
	}
	b.loops = append(b.loops, loopCtx{label: label, breakTo: after})
	for i, cl := range list {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		b.startBlock(blocks[i])
		stmts := body(cc)
		fellThrough := false
		for j, st := range stmts {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				if i+1 < len(blocks) {
					b.jumpTo(blocks[i+1], EdgeNext)
					fellThrough = true
				}
				break
			}
			b.stmt(st)
			_ = j
		}
		if !fellThrough {
			b.jumpTo(after, EdgeNext)
		}
	}
	b.loops = b.loops[:len(b.loops)-1]
	b.startBlock(after)
}

// takeLabel consumes the label a LabeledStmt parent registered for this
// construct.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) labelTarget(name string) *labelInfo {
	if info, ok := b.labels[name]; ok {
		return info
	}
	info := &labelInfo{block: b.newBlock()}
	b.labels[name] = info
	return info
}

// findLoop resolves the target of a break/continue, optionally labeled.
func (b *cfgBuilder) findLoop(label *ast.Ident, isBreak bool) *loopCtx {
	for i := len(b.loops) - 1; i >= 0; i-- {
		l := &b.loops[i]
		if label != nil && l.label != label.Name {
			continue
		}
		if !isBreak && l.continueTo == nil {
			continue // switch/select: not a continue target
		}
		return l
	}
	return nil
}

// prune drops unreachable blocks, rebuilds pred lists and assigns final
// indices (entry first, exit last, body blocks in discovery order).
func (b *cfgBuilder) prune() {
	g := b.cfg
	reach := map[*Block]bool{g.Entry: true}
	stack := []*Block{g.Entry}
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range blk.Succs {
			if !reach[e.To] {
				reach[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	var kept []*Block
	for _, blk := range g.Blocks {
		if reach[blk] && blk != g.Exit {
			kept = append(kept, blk)
		}
	}
	kept = append(kept, g.Exit)
	for i, blk := range kept {
		blk.Index = i
		blk.Preds = nil
	}
	for _, blk := range kept {
		var succs []Edge
		for _, e := range blk.Succs {
			if reach[e.To] || e.To == g.Exit {
				succs = append(succs, e)
			}
		}
		blk.Succs = succs
		for _, e := range blk.Succs {
			e.To.Preds = append(e.To.Preds, e)
		}
	}
	g.Blocks = kept
}

// ReversePostorder returns the reachable blocks in reverse postorder — the
// iteration order that makes forward dataflow converge fastest.
func (g *CFG) ReversePostorder() []*Block {
	seen := make(map[*Block]bool, len(g.Blocks))
	var post []*Block
	var dfs func(*Block)
	dfs = func(b *Block) {
		seen[b] = true
		for _, e := range b.Succs {
			if !seen[e.To] {
				dfs(e.To)
			}
		}
		post = append(post, b)
	}
	dfs(g.Entry)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// Idom returns the immediate-dominator map of the reachable blocks (the
// entry block has no entry in the map). Computed once and cached.
func (g *CFG) Idom() map[*Block]*Block {
	if g.idom != nil {
		return g.idom
	}
	rpo := g.ReversePostorder()
	order := make(map[*Block]int, len(rpo))
	for i, b := range rpo {
		order[b] = i
	}
	idom := make(map[*Block]*Block, len(rpo))
	idom[g.Entry] = g.Entry
	intersect := func(a, b *Block) *Block {
		for a != b {
			for order[a] > order[b] {
				a = idom[a]
			}
			for order[b] > order[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, blk := range rpo {
			if blk == g.Entry {
				continue
			}
			var newIdom *Block
			for _, e := range blk.Preds {
				if idom[e.From] == nil {
					continue
				}
				if newIdom == nil {
					newIdom = e.From
				} else {
					newIdom = intersect(newIdom, e.From)
				}
			}
			if newIdom != nil && idom[blk] != newIdom {
				idom[blk] = newIdom
				changed = true
			}
		}
	}
	delete(idom, g.Entry)
	g.idom = idom
	return g.idom
}

// Dominates reports whether a dominates b (every path from entry to b
// passes through a). A block dominates itself.
func (g *CFG) Dominates(a, b *Block) bool {
	if a == g.Entry || a == b {
		return true
	}
	idom := g.Idom()
	for b != nil && b != g.Entry {
		b = idom[b]
		if b == a {
			return true
		}
	}
	return false
}

// String renders the graph in a canonical, position-independent text form
// used by the golden tests: one line per block with its node kinds and
// successor list.
func (g *CFG) String() string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		name := fmt.Sprintf("b%d", blk.Index)
		switch blk {
		case g.Entry:
			name += "(entry)"
		case g.Exit:
			name += "(exit)"
		}
		fmt.Fprintf(&sb, "%s:", name)
		for _, n := range blk.Nodes {
			fmt.Fprintf(&sb, " %s", nodeKind(n))
		}
		if len(blk.Succs) > 0 {
			succs := make([]string, len(blk.Succs))
			for i, e := range blk.Succs {
				succs[i] = fmt.Sprintf("%s→b%d", e.Kind, e.To.Index)
			}
			sort.Strings(succs)
			fmt.Fprintf(&sb, " [%s]", strings.Join(succs, " "))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// nodeKind names an AST node for the canonical rendering.
func nodeKind(n ast.Node) string {
	s := fmt.Sprintf("%T", n)
	s = strings.TrimPrefix(s, "*ast.")
	s = strings.TrimSuffix(s, "Stmt")
	if s == "" {
		s = "Node"
	}
	return s
}
