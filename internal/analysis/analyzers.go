package analysis

// All returns the project's analyzers in their canonical order. The set
// maps one-to-one onto the paper properties DESIGN.md documents:
// ctcompare ↔ constant-time MAC/digest verification, weakrand ↔
// forward-secure trapdoor randomness, maporder ↔ the history-independent
// dictionary, wallclock ↔ deterministic replay and gas constancy, errdrop
// ↔ no vacuously-succeeding verification.
func All() []*Analyzer {
	return []*Analyzer{CTCompare, WeakRand, MapOrder, WallClock, ErrDrop}
}
