package analysis

// All returns the project's analyzers in their canonical order. The set
// maps one-to-one onto the paper properties DESIGN.md documents:
// ctcompare ↔ constant-time MAC/digest verification, weakrand ↔
// forward-secure trapdoor randomness, maporder ↔ the history-independent
// dictionary, wallclock ↔ deterministic replay and gas constancy, errdrop
// ↔ no vacuously-succeeding verification; the flow-sensitive trio adds
// secrettaint ↔ key-material confinement, lockdiscipline ↔ data-race
// freedom of the shared server state, ackorder ↔ durable-before-ack
// crash consistency.
func All() []*Analyzer {
	return []*Analyzer{CTCompare, WeakRand, MapOrder, WallClock, ErrDrop, SecretTaint, LockDiscipline, AckOrder}
}
