package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseSrc builds a minimal Package (no type info — directive handling is
// purely syntactic) from one source string.
func parseSrc(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return &Package{PkgPath: "fixture", Name: f.Name.Name, Fset: fset, Files: []*ast.File{f}}
}

var knownForTest = map[string]bool{
	"ctcompare": true, "weakrand": true, "maporder": true, "wallclock": true, "errdrop": true,
}

func TestCollectDirectivesValid(t *testing.T) {
	pkg := parseSrc(t, `package p

//slicer:allow weakrand -- seeded benchmark generator, no key material
var x int
`)
	dirs, diags := CollectDirectives(pkg, knownForTest)
	if len(diags) != 0 {
		t.Fatalf("unexpected directive diagnostics: %v", diags)
	}
	if len(dirs) != 1 {
		t.Fatalf("got %d directives, want 1", len(dirs))
	}
	d := dirs[0]
	if d.Analyzer != "weakrand" {
		t.Errorf("analyzer = %q, want weakrand", d.Analyzer)
	}
	if d.Reason != "seeded benchmark generator, no key material" {
		t.Errorf("reason = %q", d.Reason)
	}
	if d.Pos.Line != 3 {
		t.Errorf("line = %d, want 3", d.Pos.Line)
	}
}

// TestCollectDirectivesMalformed asserts that every malformed shape is
// itself a diagnostic: unknown analyzer, missing reason, missing name,
// and more than one name.
func TestCollectDirectivesMalformed(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"//slicer:allow nosuchanalyzer -- because", `unknown analyzer "nosuchanalyzer"`},
		{"//slicer:allow weakrand", "missing required reason"},
		{"//slicer:allow weakrand --", "missing required reason"},
		{"//slicer:allow weakrand --   ", "missing required reason"},
		{"//slicer:allow", "missing analyzer name"},
		{"//slicer:allow -- reason with no analyzer", "missing analyzer name"},
		{"//slicer:allow weakrand errdrop -- two at once", "names more than one analyzer"},
	}
	for _, tc := range cases {
		pkg := parseSrc(t, "package p\n\n"+tc.src+"\nvar x int\n")
		dirs, diags := CollectDirectives(pkg, knownForTest)
		if len(dirs) != 0 {
			t.Errorf("%q: parsed as valid directive %+v", tc.src, dirs[0])
			continue
		}
		if len(diags) != 1 {
			t.Errorf("%q: got %d diagnostics, want 1", tc.src, len(diags))
			continue
		}
		if !strings.Contains(diags[0].Message, tc.want) {
			t.Errorf("%q: diagnostic %q does not contain %q", tc.src, diags[0].Message, tc.want)
		}
		if diags[0].Analyzer != DirectiveAnalyzer {
			t.Errorf("%q: reported under %q, want %q", tc.src, diags[0].Analyzer, DirectiveAnalyzer)
		}
	}
}

// TestUnrelatedCommentsIgnored: //slicer:allowfoo and ordinary comments
// are not directives and produce nothing.
func TestUnrelatedCommentsIgnored(t *testing.T) {
	pkg := parseSrc(t, `package p

//slicer:allowfoo bar
// plain comment mentioning slicer:allow semantics
var x int
`)
	dirs, diags := CollectDirectives(pkg, knownForTest)
	if len(dirs) != 0 || len(diags) != 0 {
		t.Fatalf("got dirs=%v diags=%v, want none", dirs, diags)
	}
}

func diagAt(file string, line int, analyzer string) Diagnostic {
	return Diagnostic{
		Analyzer: analyzer,
		Pos:      token.Position{Filename: file, Line: line, Column: 1},
		Message:  "m",
	}
}

// TestApplySuppressions pins the coverage contract: a directive covers
// its own line and the next line, only for its named analyzer, never for
// hard diagnostics or directive-hygiene diagnostics.
func TestApplySuppressions(t *testing.T) {
	dir := Directive{
		Analyzer: "wallclock",
		Reason:   "r",
		Pos:      token.Position{Filename: "f.go", Line: 10},
	}
	sameLine := diagAt("f.go", 10, "wallclock")
	nextLine := diagAt("f.go", 11, "wallclock")
	twoBelow := diagAt("f.go", 12, "wallclock")
	otherAnalyzer := diagAt("f.go", 10, "errdrop")
	otherFile := diagAt("g.go", 10, "wallclock")
	hard := diagAt("f.go", 10, "wallclock")
	hard.Hard = true
	hygiene := diagAt("f.go", 10, DirectiveAnalyzer)

	in := []Diagnostic{sameLine, nextLine, twoBelow, otherAnalyzer, otherFile, hard, hygiene}
	out := applySuppressions(in, []Directive{dir})

	if len(out) != 5 {
		t.Fatalf("got %d diagnostics after suppression, want 5: %v", len(out), out)
	}
	for _, d := range out {
		if d.Pos.Filename == "f.go" && d.Pos.Line <= 11 && d.Analyzer == "wallclock" && !d.Hard {
			t.Errorf("diagnostic should have been suppressed: %v", d)
		}
	}
}

// TestCollectDirectivesStatementSpan pins the multi-line coverage fix: a
// directive above (or inside) a statement that wraps across lines covers
// the statement's whole line span, while a directive above a compound
// statement keeps the minimal two-line window.
func TestCollectDirectivesStatementSpan(t *testing.T) {
	pkg := parseSrc(t, `package p

func f(key []byte) {
	//slicer:allow weakrand -- vector table, line 4
	vectors := [][]byte{
		[]byte("header"),
		key,
	}
	_ = vectors
	//slicer:allow errdrop -- loop below must keep per-line granularity
	for i := 0; i < 3; i++ {
		_ = i
	}
}
`)
	dirs, diags := CollectDirectives(pkg, knownForTest)
	if len(diags) != 0 {
		t.Fatalf("unexpected directive diagnostics: %v", diags)
	}
	if len(dirs) != 2 {
		t.Fatalf("got %d directives, want 2", len(dirs))
	}
	if d := dirs[0]; d.FromLine != 4 || d.ToLine != 8 {
		t.Errorf("composite-literal directive spans [%d,%d], want [4,8]", d.FromLine, d.ToLine)
	}
	if d := dirs[1]; d.FromLine != 10 || d.ToLine != 11 {
		t.Errorf("compound-statement directive spans [%d,%d], want the minimal [10,11]", d.FromLine, d.ToLine)
	}
}

// TestApplySuppressionsSpan: every line of the widened span is covered for
// the directive's analyzer, and nothing outside it.
func TestApplySuppressionsSpan(t *testing.T) {
	dir := Directive{
		Analyzer: "wallclock",
		Reason:   "r",
		Pos:      token.Position{Filename: "f.go", Line: 10},
		FromLine: 10,
		ToLine:   14,
	}
	in := []Diagnostic{
		diagAt("f.go", 10, "wallclock"),
		diagAt("f.go", 13, "wallclock"), // inside the widened span
		diagAt("f.go", 14, "wallclock"),
		diagAt("f.go", 15, "wallclock"), // first line past the span
		diagAt("f.go", 13, "errdrop"),   // other analyzer, same span
	}
	out := applySuppressions(in, []Directive{dir})
	if len(out) != 2 {
		t.Fatalf("got %d diagnostics after suppression, want 2: %v", len(out), out)
	}
	for _, d := range out {
		if d.Analyzer == "wallclock" && d.Pos.Line <= 14 {
			t.Errorf("in-span diagnostic survived: %v", d)
		}
	}
}
