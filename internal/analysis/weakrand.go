package analysis

import (
	"strconv"
	"strings"
)

// WeakRand forbids math/rand (and math/rand/v2) anywhere near key
// material: a package that is itself one of the crypto packages, or that
// directly imports crypto/* or one of the module's crypto packages, must
// never see a non-cryptographic PRNG — a refactor that swaps a
// crypto/rand read for a math/rand one silently destroys the
// forward-secure trapdoor chain. Elsewhere (seeded benchmark workloads,
// the OPE baseline) the import is allowed only under an explicit
// //slicer:allow weakrand directive with a reason.
var WeakRand = &Analyzer{
	Name: "weakrand",
	Doc: "forbid math/rand in packages touching key material; elsewhere " +
		"require //slicer:allow weakrand -- <reason> on the import",
	Run: runWeakRand,
}

func runWeakRand(pass *Pass) {
	pkg := pass.Pkg
	inCrypto := CryptoPackages[pkgBase(pkg.PkgPath)]
	adjacent := cryptoAdjacent(pkg)
	for _, file := range pkg.Files {
		for _, imp := range file.Imports {
			ip, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if ip != "math/rand" && ip != "math/rand/v2" {
				continue
			}
			switch {
			case inCrypto:
				pass.ReportHardf(imp.Pos(),
					"import of %s inside crypto package %q; use crypto/rand (no directive can make a weak PRNG safe next to key material — move the code out of the crypto package instead)",
					ip, pkg.Name)
			case adjacent:
				pass.Reportf(imp.Pos(),
					"import of %s in package %q, which touches key material through its imports; use crypto/rand, or justify seed-scoped use with //slicer:allow weakrand -- <reason> on this line",
					ip, pkg.Name)
			default:
				pass.Reportf(imp.Pos(),
					"import of %s requires an explicit //slicer:allow weakrand -- <reason> directive on this line (deterministic seeding for benchmarks/baselines is the only expected use)",
					ip)
			}
		}
	}
}

// cryptoAdjacent reports whether the package touches key material at one
// remove: it directly imports crypto/* or one of the module's crypto
// packages.
func cryptoAdjacent(pkg *Package) bool {
	if pkg.Types == nil {
		return false
	}
	for _, imp := range pkg.Types.Imports() {
		p := imp.Path()
		if p == "crypto" || strings.HasPrefix(p, "crypto/") {
			return true
		}
		if CryptoPackages[pkgBase(p)] {
			return true
		}
	}
	return false
}
