// Package analysis is a from-scratch, stdlib-only static-analysis framework
// (go/parser + go/ast + go/types with the source importer; no x/tools) that
// mechanically enforces Slicer's crypto and determinism contracts. The
// compiler checks none of the properties the security argument leans on —
// constant-time comparison of MACs and digests, history-independent
// serialization (no map-iteration order leaking into hashes or wire bytes),
// no weak randomness near key material, no wall-clock reads inside
// deterministic protocol code, no silently dropped errors — so this package
// provides the Analyzer/Pass machinery, a module loader, suppression
// directives with mandatory reasons, and position-accurate diagnostics, and
// the cmd/slicer-vet driver wires it into CI as a required gate.
//
// Suppression grammar (checked itself — a malformed directive is a
// diagnostic):
//
//	//slicer:allow <analyzer> -- <reason>
//
// A directive suppresses the named analyzer on its own line and on the line
// immediately below, so it can sit either at the end of the offending line
// or on its own line directly above it. The reason is mandatory; an unknown
// analyzer name is reported under the "directive" pseudo-analyzer.
package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// An Analyzer is one named invariant check run over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //slicer:allow directives.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run inspects pass.Pkg and reports violations via pass.Reportf.
	Run func(pass *Pass)
}

// A Pass carries one analyzer's run over one package. Prog spans every
// package of the run, giving the flow-sensitive analyzers their
// interprocedural view (call-graph summaries degrade conservatively when a
// run loads only part of the module).
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Prog     *Program

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportHardf records a diagnostic that no //slicer:allow directive can
// suppress — for violations where an annotation cannot make the code
// safe (e.g. a weak PRNG inside a package holding key material).
func (p *Pass) ReportHardf(pos token.Pos, format string, args ...any) {
	p.Reportf(pos, format, args...)
	p.diags[len(p.diags)-1].Hard = true
}

// A Diagnostic is one reported invariant violation with an exact source
// position.
type Diagnostic struct {
	// Analyzer is the reporting analyzer's name ("directive" for
	// malformed suppression directives).
	Analyzer string `json:"analyzer"`
	// Pos locates the violation (file, line, column).
	Pos token.Position `json:"-"`
	// Message explains the violation and the expected fix.
	Message string `json:"message"`
	// Hard marks a diagnostic that suppression directives do not cover.
	Hard bool `json:"hard,omitempty"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// SortDiagnostics orders diagnostics by file, line, column, analyzer and
// message, making runner output deterministic regardless of analyzer or
// map-iteration order.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
