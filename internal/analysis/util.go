package analysis

import (
	"go/ast"
	"go/types"
	"path"
	"strings"
)

// calleeFunc resolves a call expression to the *types.Func it invokes
// (package-level function, method, or interface method), or nil for
// builtins, conversions and indirect calls through function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Qualified identifier: pkg.Func.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isPkgFunc reports whether fn is the package-level function pkgPath.name.
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// pkgBase returns the last element of an import path — the conventional
// package name analyzers use to recognize Slicer's crypto and protocol
// packages (fixtures under testdata mirror the same base names).
func pkgBase(pkgPath string) string {
	return path.Base(pkgPath)
}

// unwrapOperand strips the syntax around the value actually being
// compared: parens, slice expressions (mac[:]), index expressions,
// unary & / * and type conversions with a single argument.
func unwrapOperand(e ast.Expr) ast.Expr {
	for {
		switch v := e.(type) {
		case *ast.ParenExpr:
			e = v.X
		case *ast.SliceExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.UnaryExpr:
			e = v.X
		default:
			return e
		}
	}
}

// exprWords returns the identifier words reachable on an expression's
// spine: the base identifier and any selector fields (x.ProofDigest →
// ["x", "ProofDigest"]). Call results contribute the callee name, so
// sha256.Sum256(...) carries no sensitive word but ctx.Hash(...) does.
func exprWords(e ast.Expr) []string {
	var words []string
	for e != nil {
		switch v := e.(type) {
		case *ast.Ident:
			return append(words, v.Name)
		case *ast.SelectorExpr:
			words = append(words, v.Sel.Name)
			e = v.X
		case *ast.CallExpr:
			e = ast.Unparen(v.Fun)
		case *ast.ParenExpr:
			e = v.X
		default:
			return words
		}
	}
	return words
}

// namedTypeNames collects the names of the named/alias types along an
// expression type's definition chain, including element types of slices,
// arrays and pointers (so []chain.Hash yields "Hash").
func namedTypeNames(t types.Type) []string {
	var names []string
	seen := 0
	for t != nil && seen < 8 {
		seen++
		switch v := t.(type) {
		case *types.Alias:
			names = append(names, v.Obj().Name())
			t = types.Unalias(v)
		case *types.Named:
			names = append(names, v.Obj().Name())
			t = v.Underlying()
		case *types.Pointer:
			t = v.Elem()
		case *types.Slice:
			t = v.Elem()
		case *types.Array:
			t = v.Elem()
		default:
			return names
		}
	}
	return names
}

// isByteSequence reports whether t's underlying type is []byte, [N]byte
// or string — the shapes secret material travels in.
func isByteSequence(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return isByte(u.Elem())
	case *types.Array:
		return isByte(u.Elem())
	case *types.Basic:
		return u.Info()&types.IsString != 0
	}
	return false
}

func isByte(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// importsPathPrefix reports whether the package directly imports any path
// equal to or under the given prefix.
func importsPathPrefix(pkg *Package, prefix string) bool {
	if pkg.Types == nil {
		return false
	}
	for _, imp := range pkg.Types.Imports() {
		p := imp.Path()
		if p == prefix || strings.HasPrefix(p, prefix+"/") {
			return true
		}
	}
	return false
}
