package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseFunc parses src (a complete file) and returns the CFG of the
// function named f.
func parseFunc(t testing.TB, src string) *CFG {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			g := BuildCFG(fd)
			if g == nil {
				t.Fatal("BuildCFG returned nil for a function with a body")
			}
			return g
		}
	}
	t.Fatal("no function f in source")
	return nil
}

// cfgGoldens pins the canonical block structure for the control shapes
// the analyzers depend on: branch edges must be kind-tagged, loops must
// have back edges, and returns must feed the virtual exit.
var cfgGoldens = []struct {
	name, src, want string
}{
	{
		name: "straight",
		src: `package p
func f(a, b int) int {
	x := a + b
	x *= 2
	return x
}`,
		want: `b0(entry): Assign Assign Return [next→b1]
b1(exit):
`,
	},
	{
		name: "ifelse",
		src: `package p
func f(a int) int {
	if a > 0 {
		a++
	} else {
		a--
	}
	return a
}`,
		want: `b0(entry): BinaryExpr [false→b3 true→b1]
b1: IncDec [next→b2]
b2: Return [next→b4]
b3: IncDec [next→b2]
b4(exit):
`,
	},
	{
		name: "forloop",
		src: `package p
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}`,
		want: `b0(entry): Assign Assign [next→b1]
b1: BinaryExpr [false→b3 true→b2]
b2: Assign [next→b4]
b3: Return [next→b5]
b4: IncDec [next→b1]
b5(exit):
`,
	},
	{
		name: "rangeloop",
		src: `package p
func f(xs []int) int {
	s := 0
	for _, x := range xs {
		if x < 0 {
			continue
		}
		s += x
	}
	return s
}`,
		want: `b0(entry): Assign [next→b1]
b1: Range [false→b3 true→b2]
b2: BinaryExpr [false→b5 true→b4]
b3: Return [next→b6]
b4: [next→b1]
b5: Assign [next→b1]
b6(exit):
`,
	},
	{
		name: "switchcase",
		src: `package p
func f(op string) int {
	switch op {
	case "add":
		return 1
	case "del":
		return 2
	default:
		return 0
	}
}`,
		want: `b0(entry): Ident [case→b1 case→b2 case→b3]
b1: Return [next→b4]
b2: Return [next→b4]
b3: Return [next→b4]
b4(exit):
`,
	},
	{
		name: "earlyreturn",
		src: `package p
func f(ok bool) (int, error) {
	if !ok {
		return 0, nil
	}
	defer done()
	return 1, nil
}
func done() {}`,
		want: `b0(entry): UnaryExpr [false→b2 true→b1]
b1: Return [next→b3]
b2: Defer Return [next→b3]
b3(exit):
`,
	},
	{
		name: "nestedbreak",
		src: `package p
func f(rows [][]int) int {
outer:
	for _, r := range rows {
		for _, v := range r {
			if v == 0 {
				break outer
			}
		}
	}
	return 0
}`,
		want: `b0(entry): [next→b1]
b1: [next→b2]
b2: Range [false→b4 true→b3]
b3: [next→b5]
b4: Return [next→b10]
b5: Range [false→b7 true→b6]
b6: BinaryExpr [false→b9 true→b8]
b7: [next→b2]
b8: [next→b4]
b9: [next→b5]
b10(exit):
`,
	},
}

func TestCFGGoldens(t *testing.T) {
	for _, tc := range cfgGoldens {
		t.Run(tc.name, func(t *testing.T) {
			g := parseFunc(t, tc.src)
			if got := g.String(); got != tc.want {
				t.Errorf("CFG mismatch:\n got:\n%s want:\n%s", got, tc.want)
			}
		})
	}
}

// TestCFGDominators pins the dominator relation the ackorder analyzer's
// dominance rule rests on, using the for-loop golden: the loop header
// dominates the body and the exit, the body does not dominate the exit.
func TestCFGDominators(t *testing.T) {
	g := parseFunc(t, cfgGoldens[2].src) // forloop
	blk := func(i int) *Block {
		for _, b := range g.Blocks {
			if b.Index == i {
				return b
			}
		}
		t.Fatalf("no block b%d", i)
		return nil
	}
	header, body, ret := blk(1), blk(2), blk(3)
	for _, want := range []struct {
		a, b *Block
		dom  bool
		desc string
	}{
		{g.Entry, g.Exit, true, "entry dominates exit"},
		{header, body, true, "loop header dominates body"},
		{header, ret, true, "loop header dominates the return"},
		{header, g.Exit, true, "loop header dominates exit"},
		{body, g.Exit, false, "loop body does not dominate exit"},
		{body, header, false, "loop body does not dominate the header"},
		{ret, header, false, "return does not dominate the header"},
	} {
		if got := g.Dominates(want.a, want.b); got != want.dom {
			t.Errorf("%s: Dominates=%v, want %v", want.desc, got, want.dom)
		}
	}
	idom := g.Idom()
	if idom[g.Entry] != nil {
		t.Error("entry block must have no immediate dominator")
	}
	if idom[body] != header {
		t.Errorf("idom(body)=b%d, want the loop header b1", idom[body].Index)
	}
}

// genIndexBit is the reaching-blocks problem: each block generates its own
// index bit, so a block's In set names every block on some path to it.
func genIndexBit(b *Block) *BitSet {
	s := NewBitSet(8)
	s.Set(b.Index)
	return s
}

// TestFixpointReachingLoop drives the gen/kill lattice over the for-loop
// CFG: the back edge must fold the body's bits into the header's In set.
func TestFixpointReachingLoop(t *testing.T) {
	g := parseFunc(t, cfgGoldens[2].src) // forloop
	res := Forward(g, FlowProblem[*BitSet](GenKillProblem{Gen: genIndexBit}))
	want := map[int]string{
		0: "{}",          // entry: the empty boundary fact
		1: "{0 1 2 4}",   // header: entry plus the loop body via the back edge
		2: "{0 1 2 4}",   // body
		3: "{0 1 2 4}",   // return: everything but the exit's own bit
		4: "{0 1 2 4}",   // post statement
		5: "{0 1 2 3 4}", // exit
	}
	for _, b := range g.Blocks {
		in, ok := res.In[b]
		if !ok {
			t.Fatalf("no fixpoint In fact for b%d", b.Index)
		}
		union := in.Clone()
		union.Union(genIndexBit(b))
		if res.Out[b].String() != union.String() {
			t.Errorf("b%d: Out=%s violates out = in ∪ gen = %s", b.Index, res.Out[b], union)
		}
		if got := in.String(); got != want[b.Index] {
			t.Errorf("In[b%d]=%s, want %s", b.Index, got, want[b.Index])
		}
	}
}

// TestFixpointKillJoin drives gen/kill over the if/else diamond: the true
// arm kills the boundary bit, and the may-merge keeps it alive at the join
// because the false arm still carries it.
func TestFixpointKillJoin(t *testing.T) {
	g := parseFunc(t, cfgGoldens[1].src) // ifelse
	entry := NewBitSet(16)
	entry.Set(9)
	kill := func(b *Block) *BitSet {
		if b.Index != 1 { // the true arm
			return nil
		}
		k := NewBitSet(16)
		k.Set(9)
		return k
	}
	res := Forward(g, FlowProblem[*BitSet](GenKillProblem{Gen: genIndexBit, Kill: kill, Entry: entry}))
	want := map[int]string{
		0: "{9}",
		1: "{0 9}",     // before the kill
		2: "{0 1 3 9}", // join: true arm {0 1}, false arm {0 3 9}
		3: "{0 9}",
		4: "{0 1 2 3 9}", // exit
	}
	for _, b := range g.Blocks {
		if got := res.In[b].String(); got != want[b.Index] {
			t.Errorf("In[b%d]=%s, want %s", b.Index, got, want[b.Index])
		}
	}
	if out := res.Out[g.Blocks[1]].String(); out != "{0 1}" {
		t.Errorf("Out[b1]=%s, want {0 1} (bit 9 killed)", out)
	}
}

// checkCFGInvariants asserts the structural contract every analyzer relies
// on: blocks are indexed by position, edges are mirrored in Preds, every
// non-exit block is reachable from the entry, and a Cond is always the
// block's last node.
func checkCFGInvariants(t testing.TB, g *CFG) {
	t.Helper()
	inGraph := make(map[*Block]bool, len(g.Blocks))
	for i, b := range g.Blocks {
		if b.Index != i {
			t.Fatalf("block at position %d has Index %d", i, b.Index)
		}
		inGraph[b] = true
	}
	if g.Entry != g.Blocks[0] {
		t.Fatal("entry block is not Blocks[0]")
	}
	if !inGraph[g.Exit] {
		t.Fatal("exit block not in Blocks")
	}
	for _, b := range g.Blocks {
		if b.Cond != nil {
			if len(b.Nodes) == 0 || b.Nodes[len(b.Nodes)-1] != ast.Node(b.Cond) {
				t.Fatalf("b%d: Cond is not the last node", b.Index)
			}
		}
		for _, e := range b.Succs {
			if e.From != b {
				t.Fatalf("b%d: successor edge with wrong From", b.Index)
			}
			if !inGraph[e.To] {
				t.Fatalf("b%d: successor edge to pruned block", b.Index)
			}
			found := false
			for _, p := range e.To.Preds {
				if p == e {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("b%d→b%d: edge missing from target's Preds", b.Index, e.To.Index)
			}
		}
		for _, e := range b.Preds {
			if e.To != b || !inGraph[e.From] {
				t.Fatalf("b%d: malformed predecessor edge", b.Index)
			}
		}
	}
	// Connectivity: everything except a possibly-unreachable exit (a
	// function that cannot fall off its end) hangs off the entry.
	reach := map[*Block]bool{g.Entry: true}
	stack := []*Block{g.Entry}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range b.Succs {
			if !reach[e.To] {
				reach[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	for _, b := range g.Blocks {
		if !reach[b] && b != g.Exit {
			t.Fatalf("b%d survived pruning but is unreachable from the entry", b.Index)
		}
	}
}

// FuzzCFGBuilder feeds arbitrary function bodies through the builder:
// anything go/parser accepts must yield a well-formed, connected CFG
// without panicking.
func FuzzCFGBuilder(f *testing.F) {
	for _, tc := range cfgGoldens {
		f.Add(tc.src)
	}
	f.Add(`package p
func f() {
	for {
	}
}`)
	f.Add(`package p
func f(ch chan int) int {
	select {
	case v := <-ch:
		return v
	default:
	}
	goto done
done:
	return 0
}`)
	f.Add(`package p
func f(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case error:
		panic(x)
	}
	return ""
}`)
	f.Add(`package p
func f(n int) func() int {
	return func() int {
		defer recover()
		switch {
		case n > 0:
			fallthrough
		default:
			n--
		}
		return n
	}
}`)
	f.Fuzz(func(t *testing.T, src string) {
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src, 0)
		if err != nil {
			t.Skip() // not valid Go; the builder only sees parsed bodies
		}
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			g := BuildCFG(fd)
			if g == nil {
				t.Fatal("BuildCFG returned nil for a parsed body")
			}
			checkCFGInvariants(t, g)
			if !strings.HasPrefix(g.String(), "b0(entry):") {
				t.Fatal("canonical rendering lost the entry block")
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					if lg := BuildLitCFG(lit); lg != nil {
						checkCFGInvariants(t, lg)
					}
					return false
				}
				return true
			})
		}
	})
}
