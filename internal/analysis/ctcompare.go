package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// CryptoPackages names the packages (by final import-path element) whose
// comparisons of secret-derived bytes must be constant time. These are the
// packages implementing the paper's cryptographic machinery: the PRFs and
// symmetric encryption, the on-chain verification contract, the
// order-revealing encryption, the multiset hash, the RSA accumulator and
// the forward-secure trapdoor permutation.
var CryptoPackages = map[string]bool{
	"prf":         true,
	"symenc":      true,
	"contract":    true,
	"sore":        true,
	"mhash":       true,
	"accumulator": true,
	"trapdoor":    true,
}

// sensitiveWord matches identifier or type names that conventionally carry
// MAC/tag/digest/key material. Matching is deliberately name-based: the
// scheme's verification values (proof digests, set-hash tags, search
// tokens) are plain byte arrays, so the type system alone cannot identify
// them.
var sensitiveWord = regexp.MustCompile(`(?i)(hash|digest|mac\b|hmac|tag|key|token|trapdoor|secret|proof|cipher)`)

// CTCompare flags non-constant-time equality on MAC/tag/digest/key-typed
// values inside the crypto packages: bytes.Equal, reflect.DeepEqual and
// the == / != operators all short-circuit on the first differing byte,
// turning a remote verifier into a byte-by-byte timing oracle. The fix is
// crypto/hmac.Equal or crypto/subtle.ConstantTimeCompare.
var CTCompare = &Analyzer{
	Name: "ctcompare",
	Doc: "flag non-constant-time comparison of secret-derived bytes " +
		"(bytes.Equal, reflect.DeepEqual, == / !=) in crypto packages; " +
		"use hmac.Equal or subtle.ConstantTimeCompare",
	Run: runCTCompare,
}

func runCTCompare(pass *Pass) {
	pkg := pass.Pkg
	if !CryptoPackages[pkgBase(pkg.PkgPath)] || pkg.Info == nil {
		return
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.CallExpr:
				checkVariadicCompare(pass, v)
			case *ast.BinaryExpr:
				if v.Op == token.EQL || v.Op == token.NEQ {
					checkOperatorCompare(pass, v)
				}
			}
			return true
		})
	}
}

// checkVariadicCompare flags bytes.Equal / reflect.DeepEqual calls whose
// arguments look secret-derived.
func checkVariadicCompare(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.Pkg.Info, call)
	var what string
	switch {
	case isPkgFunc(fn, "bytes", "Equal"):
		what = "bytes.Equal"
	case isPkgFunc(fn, "reflect", "DeepEqual"):
		what = "reflect.DeepEqual"
	default:
		return
	}
	if len(call.Args) != 2 {
		return
	}
	for _, arg := range call.Args {
		if name, ok := sensitiveExpr(pass.Pkg.Info, arg); ok {
			pass.Reportf(call.Pos(),
				"%s on secret-derived value %s is not constant time; use hmac.Equal or subtle.ConstantTimeCompare",
				what, name)
			return
		}
	}
}

// checkOperatorCompare flags == / != between secret-derived byte
// sequences (comparable digest arrays, strings holding key material).
func checkOperatorCompare(pass *Pass, cmp *ast.BinaryExpr) {
	info := pass.Pkg.Info
	for _, side := range []ast.Expr{cmp.X, cmp.Y} {
		// Comparisons against nil or constants (len checks, sentinel
		// strings) are not comparisons of two secrets.
		if tv, ok := info.Types[side]; ok && (tv.IsNil() || tv.Value != nil) {
			return
		}
	}
	xt := info.Types[cmp.X].Type
	yt := info.Types[cmp.Y].Type
	if xt == nil || yt == nil || !isByteSequence(xt) || !isByteSequence(yt) {
		return
	}
	xn, xok := sensitiveExpr(info, cmp.X)
	_, yok := sensitiveExpr(info, cmp.Y)
	if !xok && !yok {
		return
	}
	name := xn
	if !xok {
		name, _ = sensitiveExpr(info, cmp.Y)
	}
	pass.Reportf(cmp.OpPos,
		"%s comparison of secret-derived value %s is not constant time; compare with subtle.ConstantTimeCompare (or hmac.Equal) over the byte slices",
		cmp.Op, name)
}

// sensitiveExpr reports whether an expression carries MAC/tag/digest/key
// material, judged by its identifier spine and its named-type chain, and
// returns a printable name for diagnostics.
func sensitiveExpr(info *types.Info, e ast.Expr) (string, bool) {
	base := unwrapOperand(e)
	for _, w := range exprWords(base) {
		if sensitiveWord.MatchString(w) {
			return types.ExprString(base), true
		}
	}
	if tv, ok := info.Types[base]; ok && tv.Type != nil {
		for _, tn := range namedTypeNames(tv.Type) {
			if sensitiveWord.MatchString(tn) {
				return types.ExprString(base), true
			}
		}
	}
	return "", false
}
