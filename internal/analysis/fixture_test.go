package analysis

import (
	"path/filepath"
	"sync"
	"testing"
)

// fixtureLoader is shared across fixture tests so the source importer
// type-checks each stdlib dependency once per test binary.
var fixtureLoader = sync.OnceValues(func() (*Loader, error) {
	root, err := FindModuleRoot(".")
	if err != nil {
		return nil, err
	}
	return NewLoader(root)
})

// loadFixture loads testdata/src/<rel> under the synthetic import path
// <rel>, so the final path element drives the analyzers' package matching
// exactly as it does for real module packages.
func loadFixture(t *testing.T, rel string) *Package {
	t.Helper()
	loader, err := fixtureLoader()
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	dir, err := filepath.Abs(filepath.Join("testdata", "src", filepath.FromSlash(rel)))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadPackageDir(rel, dir)
	if err != nil {
		t.Fatalf("load %s: %v", rel, err)
	}
	if pkg == nil {
		t.Fatalf("no buildable fixture package in %s", dir)
	}
	for _, terr := range pkg.TypeErrors {
		t.Fatalf("fixture %s does not type-check: %v", rel, terr)
	}
	return pkg
}

// checkFixture runs the full pipeline (all analyzers + directive
// collection + suppression) over one fixture package and matches the
// result against its `// want` comments.
func checkFixture(t *testing.T, rel string) {
	t.Helper()
	pkg := loadFixture(t, rel)
	diags := Run([]*Package{pkg}, All())
	for _, failure := range CheckExpectations(pkg, diags) {
		t.Error(failure)
	}
}

func TestCTCompareFixtures(t *testing.T) {
	checkFixture(t, "ctcompare/prf")
	checkFixture(t, "ctcompare/util")
}

func TestWeakRandFixtures(t *testing.T) {
	// Hard diagnostic inside a crypto package: the directive present in
	// the fixture must NOT suppress it.
	checkFixture(t, "weakrand/trapdoor")
	// Suppression works outside the crypto perimeter, and a directive
	// for a different analyzer (wallclock) does not silence weakrand.
	checkFixture(t, "weakrand/seeded")
	// Crypto-adjacent package: flagged with the proximity message.
	checkFixture(t, "weakrand/adjacent")
}

func TestMapOrderFixtures(t *testing.T) {
	checkFixture(t, "maporder/serialize")
}

func TestWallClockFixtures(t *testing.T) {
	checkFixture(t, "wallclock/core")
	checkFixture(t, "wallclock/ticker")
}

func TestErrDropFixtures(t *testing.T) {
	checkFixture(t, "errdrop/drops")
}

func TestSecretTaintFixtures(t *testing.T) {
	// Crypto package: name- and type-based sources, sanitizers, big.Int
	// blinding vs serialization, flow-sensitive joins, strong updates.
	checkFixture(t, "secrettaint/prf")
	// Outside the crypto perimeter: type-named sources, interprocedural
	// summaries, closures, file modes, metric labels, audit records.
	checkFixture(t, "secrettaint/vault")
	// RPC trust boundary: response fields, literals, handler returns.
	checkFixture(t, "secrettaint/wire")
}

func TestLockDisciplineFixtures(t *testing.T) {
	// Guarded-field inference, imbalance, double-lock, RWMutex upgrade,
	// unlock-of-unheld, and the caller-locked conventions.
	checkFixture(t, "lockdiscipline/guarded")
	// Lock-order inversions, direct and through callee lock summaries,
	// including the journal-vs-state pair.
	checkFixture(t, "lockdiscipline/order")
}

func TestAckOrderFixtures(t *testing.T) {
	checkFixture(t, "ackorder/wire")
}

// TestFixtureExpectationsAreExercised guards the matcher itself: a
// fixture whose want comment matches nothing must fail, and an
// unexpected diagnostic must fail. Both are asserted by running the
// matcher with a doctored diagnostic list.
func TestFixtureExpectationsAreExercised(t *testing.T) {
	pkg := loadFixture(t, "ctcompare/prf")
	// Empty diagnostics: every want comment must report as unmatched.
	failures := CheckExpectations(pkg, nil)
	if len(failures) == 0 {
		t.Fatal("matcher accepted a run with zero diagnostics against a fixture full of want comments")
	}
	// A fabricated diagnostic on a line with no want comment must fail.
	diags := Run([]*Package{pkg}, All())
	extra := append([]Diagnostic{}, diags...)
	bogus := diags[0]
	bogus.Pos.Line = 1
	bogus.Message = "fabricated finding"
	extra = append(extra, bogus)
	failed := false
	for _, f := range CheckExpectations(pkg, extra) {
		if f != "" {
			failed = true
		}
	}
	if !failed {
		t.Fatal("matcher accepted an unexpected diagnostic")
	}
}
