package analysis

// lockdiscipline is the flow-sensitive lock checker. It runs a must/may
// held-lock dataflow over each function's CFG and uses it three ways:
//
//  1. Guarded-field inference: fields of mutex-owning structs that the
//     module writes under a held lock are inferred guarded; an unguarded
//     write (or a read of a field with both locked reads and locked
//     writes elsewhere) is reported. Methods whose name ends in "Locked"
//     are exempt by convention (the caller holds the lock), as are
//     unexported methods that never touch a lock themselves (assumed
//     caller-locked helpers) and plain functions (constructors touch
//     still-private memory).
//
//  2. Imbalance: a path that returns while a lock is must-held — with no
//     deferred unlock covering it — is reported at the return, as are
//     Unlock calls on locks not possibly held and second Locks of a lock
//     already held on every path (self-deadlock, including read→write
//     upgrades on the same RWMutex).
//
//  3. Ordering: every acquisition records (held, acquired) pairs at the
//     type level, including locks acquired transitively through module
//     callees (call-graph lock summaries). A pair observed in both
//     orders is a potential deadlock cycle and is reported at both
//     acquisition sites — the journal-mutex vs state-mutex ordering the
//     durability layer depends on is the motivating case.
//
// Locks are tracked per instance inside a function (root object plus
// field path), so two witness entries with the same mutex type do not
// alias; cross-function reasoning uses conservative type-level identity.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockDiscipline reports unguarded accesses to inferred-guarded fields,
// lock/unlock imbalance on any CFG path, and lock-order inversions.
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc: "infers mutex-guarded field sets from existing locked accesses and " +
		"reports unguarded reads/writes, Lock/Unlock imbalance on any CFG " +
		"path, and lock-order inversions (including journal-vs-state mutex " +
		"ordering)",
	Run: runLockDiscipline,
}

const (
	lockR uint8 = 1 << iota
	lockW
)

// A lockKey identifies one mutex instance within a function: the root
// object the access chain starts from plus the selector path ("mu",
// "jour.mu").
type lockKey struct {
	root types.Object
	path string
}

// lockFact tracks locks held on every path (must) and on some path (may).
type lockFact struct {
	must map[lockKey]uint8
	may  map[lockKey]uint8
}

func newLockFact() lockFact {
	return lockFact{must: map[lockKey]uint8{}, may: map[lockKey]uint8{}}
}

func (f lockFact) clone() lockFact {
	out := newLockFact()
	for k, v := range f.must {
		out.must[k] = v
	}
	for k, v := range f.may {
		out.may[k] = v
	}
	return out
}

// lockScan drives the dataflow for one function. Reporting and access
// classification happen in a post-fixpoint replay (the must lattice
// shrinks during iteration, so mid-iteration facts over-approximate).
type lockScan struct {
	pkg       *Package
	fn        *FuncNode
	recv      types.Object
	deferKeys map[lockKey]uint8
	locksInFn map[lockKey]bool
	summaries map[*types.Func]map[string]bool

	// Replay callbacks (nil during fixpoint iteration).
	onAccess func(sel *ast.SelectorExpr, f *types.Var, write bool, fact lockFact)
	onReport func(pos token.Pos, format string, args ...any)
	onOrder  func(before, after string, pos token.Pos)
}

// Boundary implements FlowProblem.
func (ls *lockScan) Boundary(*CFG) lockFact { return newLockFact() }

// Transfer implements FlowProblem.
func (ls *lockScan) Transfer(b *Block, in lockFact) lockFact {
	fact := in.clone()
	for _, n := range b.Nodes {
		ls.applyNode(n, &fact, false)
	}
	return fact
}

// Merge implements FlowProblem: must intersects (weaker mode wins), may
// unions (stronger mode wins).
func (ls *lockScan) Merge(a, b lockFact) lockFact {
	out := newLockFact()
	for k, va := range a.must {
		if vb, ok := b.must[k]; ok {
			m := va & vb
			if m == 0 {
				m = lockR // held in different modes: at least a read hold
			}
			out.must[k] = m
		}
	}
	for k, v := range a.may {
		out.may[k] = v
	}
	for k, v := range b.may {
		out.may[k] |= v
	}
	return out
}

// Equal implements FlowProblem.
func (ls *lockScan) Equal(a, b lockFact) bool {
	return lockMapEqual(a.must, b.must) && lockMapEqual(a.may, b.may)
}

func lockMapEqual(a, b map[lockKey]uint8) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// replay walks the fixpoint facts through each block once, firing the
// callbacks with the fact holding immediately before each node.
func (ls *lockScan) replay(g *CFG, res FlowResult[lockFact]) {
	for _, b := range g.Blocks {
		in, ok := res.In[b]
		if !ok {
			continue
		}
		fact := in.clone()
		for _, n := range b.Nodes {
			ls.applyNode(n, &fact, true)
		}
	}
}

// applyNode evolves the fact over one block node; with callbacks set it
// also classifies field accesses and reports violations.
func (ls *lockScan) applyNode(n ast.Node, fact *lockFact, callbacks bool) {
	switch n.(type) {
	case *ast.DeferStmt:
		// Deferred calls run at return, not here; collectDeferUnlocks
		// credits their unlocks against the return check.
		return
	case *ast.GoStmt:
		// The spawned goroutine's lock operations happen on another
		// stack; they neither hold nor release anything here.
		return
	}
	writes := map[*ast.SelectorExpr]bool{}
	switch v := n.(type) {
	case *ast.AssignStmt:
		for _, lhs := range v.Lhs {
			if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
				writes[sel] = true
			}
		}
	case *ast.IncDecStmt:
		if sel, ok := ast.Unparen(v.X).(*ast.SelectorExpr); ok {
			writes[sel] = true
		}
	}
	skip := map[ast.Node]bool{}
	blockExprs(n, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.UnaryExpr:
			if v.Op == token.AND {
				// Address-of escapes the analysis; don't classify.
				if sel, ok := ast.Unparen(v.X).(*ast.SelectorExpr); ok {
					skip[sel] = true
				}
			}
		case *ast.CallExpr:
			ls.applyCall(v, fact, callbacks)
			// Don't classify the selector naming the method itself.
			if sel, ok := ast.Unparen(v.Fun).(*ast.SelectorExpr); ok {
				skip[sel] = true
			}
		case *ast.SelectorExpr:
			if callbacks && !skip[v] {
				ls.classifyAccess(v, writes[v], *fact)
			}
		case *ast.ReturnStmt:
			if callbacks {
				ls.checkReturn(v, *fact)
			}
		}
		return true
	})
}

// checkReturn reports locks still must-held at an explicit return that no
// deferred unlock covers.
func (ls *lockScan) checkReturn(r *ast.ReturnStmt, fact lockFact) {
	if ls.onReport == nil {
		return
	}
	var held []string
	for k := range fact.must {
		if ls.deferKeys[k] != 0 {
			continue
		}
		held = append(held, lockKeyString(k))
	}
	sort.Strings(held)
	for _, name := range held {
		ls.onReport(r.Pos(), "returns while still holding %s (no unlock or deferred unlock on this path)", name)
	}
}

// applyCall updates the held-lock fact for mutex operations and records
// ordering pairs for acquisitions (direct and through module callees).
func (ls *lockScan) applyCall(call *ast.CallExpr, fact *lockFact, callbacks bool) {
	fn := calleeFunc(ls.pkg.Info, call)
	if key, op, ok := ls.mutexOp(call, fn); ok {
		mode := lockW
		if strings.HasPrefix(op, "R") || strings.HasPrefix(op, "TryR") {
			mode = lockR
		}
		switch op {
		case "Lock", "RLock", "TryLock", "TryRLock":
			if callbacks {
				if held := fact.must[key]; held != 0 {
					if mode == lockW && held&lockW != 0 && ls.onReport != nil {
						ls.onReport(call.Pos(), "Lock of %s while it is already write-held on every path here (self-deadlock)", lockKeyString(key))
					} else if mode == lockW && held&lockR != 0 && ls.onReport != nil {
						ls.onReport(call.Pos(), "write-Lock of %s while it is read-held (RWMutex upgrade deadlocks)", lockKeyString(key))
					}
				}
				if ls.onOrder != nil {
					newID := ls.lockTypeID(key)
					for h := range fact.must {
						if id := ls.lockTypeID(h); id != newID {
							ls.onOrder(id, newID, call.Pos())
						}
					}
				}
			}
			fact.must[key] |= mode
			fact.may[key] |= mode
		case "Unlock", "RUnlock":
			// Only flag unlock-of-unheld when this function also locks the
			// same key somewhere — hand-off patterns (unlocking a lock the
			// caller acquired) are a caller-side contract, not a bug here.
			if callbacks && fact.may[key] == 0 && ls.locksInFn[key] && ls.onReport != nil {
				ls.onReport(call.Pos(), "%s of %s which is not held on any path reaching here", op, lockKeyString(key))
			}
			delete(fact.must, key)
			delete(fact.may, key)
		}
		return
	}
	// Module callee: record ordering pairs against its lock summary.
	if callbacks && ls.onOrder != nil && fn != nil && ls.summaries != nil && len(fact.must) > 0 {
		if acq, ok := ls.summaries[fn]; ok {
			for h := range fact.must {
				hid := ls.lockTypeID(h)
				for id := range acq {
					if id != hid {
						ls.onOrder(hid, id, call.Pos())
					}
				}
			}
		}
	}
}

// mutexOp recognizes x.mu.Lock()-style calls: any Lock/Unlock/RLock/
// RUnlock/TryLock/TryRLock method provided by package sync (directly or
// through embedding), keyed by the access chain.
func (ls *lockScan) mutexOp(call *ast.CallExpr, fn *types.Func) (lockKey, string, bool) {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockKey{}, "", false
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
	default:
		return lockKey{}, "", false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockKey{}, "", false
	}
	key, ok := ls.exprLockKey(sel.X)
	if !ok {
		return lockKey{}, "", false
	}
	return key, fn.Name(), true
}

// exprLockKey canonicalizes the expression a mutex method was called on
// into (root object, field path).
func (ls *lockScan) exprLockKey(e ast.Expr) (lockKey, bool) {
	var parts []string
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := ls.pkg.Info.Uses[v]
			if obj == nil {
				obj = ls.pkg.Info.Defs[v]
			}
			if obj == nil {
				return lockKey{}, false
			}
			// Reverse the collected path.
			for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
				parts[i], parts[j] = parts[j], parts[i]
			}
			return lockKey{root: obj, path: strings.Join(parts, ".")}, true
		case *ast.SelectorExpr:
			parts = append(parts, v.Sel.Name)
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.UnaryExpr:
			e = v.X
		default:
			return lockKey{}, false
		}
	}
}

// lockTypeID names a lock across functions: the owning named type (or
// package, for package-level mutexes) plus the field path.
func (ls *lockScan) lockTypeID(k lockKey) string {
	suffix := ""
	if k.path != "" {
		suffix = "." + k.path
	}
	obj := k.root
	if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
		return pkgBase(obj.Pkg().Path()) + "." + obj.Name() + suffix
	}
	if names := namedTypeNames(obj.Type()); len(names) > 0 {
		return names[0] + suffix
	}
	return obj.Name() + suffix
}

func lockKeyString(k lockKey) string {
	if k.path == "" {
		return k.root.Name()
	}
	return k.root.Name() + "." + k.path
}

// classifyAccess hands direct receiver-field accesses to the collector.
func (ls *lockScan) classifyAccess(sel *ast.SelectorExpr, write bool, fact lockFact) {
	if ls.onAccess == nil || ls.recv == nil {
		return
	}
	base, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok || ls.objOf(base) != ls.recv {
		return
	}
	s, ok := ls.pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return
	}
	f, ok := s.Obj().(*types.Var)
	if !ok || excludedGuardField(f) {
		return
	}
	ls.onAccess(sel, f, write, fact)
}

func (ls *lockScan) objOf(id *ast.Ident) types.Object {
	if obj := ls.pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return ls.pkg.Info.Defs[id]
}

// heldOnRecv reports whether any receiver-rooted lock is must-held in the
// needed mode (writes need the write lock; reads accept either).
func (ls *lockScan) heldOnRecv(fact lockFact, write bool) bool {
	for k, mode := range fact.must {
		if k.root != ls.recv {
			continue
		}
		if !write || mode&lockW != 0 {
			return true
		}
	}
	return false
}

// excludedGuardField filters fields that synchronize themselves or are
// synchronization primitives.
func excludedGuardField(f *types.Var) bool {
	t := f.Type()
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	for _, obj := range typeObjChain(t) {
		if obj.Pkg() == nil {
			continue
		}
		switch obj.Pkg().Path() {
		case "sync", "sync/atomic":
			return true
		}
	}
	return false
}

// typeObjChain collects the named-type objects along t's definition chain.
func typeObjChain(t types.Type) []*types.TypeName {
	var out []*types.TypeName
	for depth := 0; t != nil && depth < 8; depth++ {
		switch v := t.(type) {
		case *types.Alias:
			out = append(out, v.Obj())
			t = types.Unalias(v)
		case *types.Named:
			out = append(out, v.Obj())
			t = v.Underlying()
		case *types.Pointer:
			t = v.Elem()
		default:
			return out
		}
	}
	return out
}

// collectDeferUnlocks gathers the lock keys unlocked by the function's
// defer statements (including defers wrapping the unlock in a literal).
func (ls *lockScan) collectDeferUnlocks(g *CFG) map[lockKey]uint8 {
	out := map[lockKey]uint8{}
	record := func(call *ast.CallExpr) {
		fn := calleeFunc(ls.pkg.Info, call)
		if key, op, ok := ls.mutexOp(call, fn); ok && (op == "Unlock" || op == "RUnlock") {
			out[key] |= lockW | lockR
		}
	}
	for _, d := range g.Defers {
		record(d.Call)
		if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				if c, ok := n.(*ast.CallExpr); ok {
					record(c)
				}
				return true
			})
		}
	}
	return out
}

// lockAware reports whether violations should be flagged inside fn:
// exported methods, and unexported methods that manipulate a receiver
// lock themselves. Unexported lock-free helpers are assumed to run under
// the caller's lock.
func lockAware(ls *lockScan) bool {
	name := ls.fn.Fn.Name()
	if strings.HasSuffix(name, "Locked") {
		return false
	}
	if ast.IsExported(name) {
		return true
	}
	aware := false
	ast.Inspect(ls.fn.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(ls.pkg.Info, call)
		if key, _, ok := ls.mutexOp(call, fn); ok && key.root == ls.recv {
			aware = true
		}
		return true
	})
	return aware
}

// guardStats aggregates the module-wide evidence for one struct field.
type guardStats struct {
	lockedW, unlockedW int
	lockedR, unlockedR int
	guard              string
}

// lockSummaries computes, per function, the type-level lock IDs it may
// acquire directly or through module callees (function literals excluded:
// they may run on other goroutines).
func lockSummaries(prog *Program) map[*types.Func]map[string]bool {
	return prog.Cached("lockdiscipline.summaries", func() any {
		sums := make(map[*types.Func]map[string]bool)
		// Exits early once a round adds nothing; the cap only bounds
		// pathological call chains.
		for round := 0; round < 16; round++ {
			changed := false
			for _, pkg := range prog.Pkgs {
				for _, node := range prog.Funcs(pkg) {
					if node.Decl.Body == nil {
						continue
					}
					ls := &lockScan{pkg: node.Pkg, fn: node}
					acq := map[string]bool{}
					ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
						if _, ok := n.(*ast.FuncLit); ok {
							return false
						}
						call, ok := n.(*ast.CallExpr)
						if !ok {
							return true
						}
						fn := calleeFunc(node.Pkg.Info, call)
						if key, op, ok := ls.mutexOp(call, fn); ok {
							if op == "Lock" || op == "RLock" || op == "TryLock" || op == "TryRLock" {
								acq[ls.lockTypeID(key)] = true
							}
							return true
						}
						if fn != nil {
							for id := range sums[fn] {
								acq[id] = true
							}
						}
						return true
					})
					prev, had := sums[node.Fn]
					same := had && len(prev) == len(acq)
					if same {
						for id := range acq {
							if !prev[id] {
								same = false
								break
							}
						}
					}
					if !same {
						sums[node.Fn] = acq
						changed = true
					}
				}
			}
			if !changed {
				break
			}
		}
		return sums
	}).(map[*types.Func]map[string]bool)
}

func newLockScan(prog *Program, node *FuncNode, sums map[*types.Func]map[string]bool) (*lockScan, *CFG) {
	g := node.CFG()
	if g == nil {
		return nil, nil
	}
	ls := &lockScan{pkg: node.Pkg, fn: node, summaries: sums}
	if sig, ok := node.Fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		ls.recv = sig.Recv()
	}
	ls.deferKeys = ls.collectDeferUnlocks(g)
	ls.locksInFn = map[lockKey]bool{}
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if key, op, ok := ls.mutexOp(call, calleeFunc(node.Pkg.Info, call)); ok {
			switch op {
			case "Lock", "RLock", "TryLock", "TryRLock":
				ls.locksInFn[key] = true
			}
		}
		return true
	})
	return ls, g
}

// guardedFields runs the module-wide inference pass once per Program.
func guardedFields(prog *Program) map[*types.Var]*guardStats {
	return prog.Cached("lockdiscipline.guarded", func() any {
		sums := lockSummaries(prog)
		stats := make(map[*types.Var]*guardStats)
		for _, pkg := range prog.Pkgs {
			for _, node := range prog.Funcs(pkg) {
				ls, g := newLockScan(prog, node, sums)
				if ls == nil || ls.recv == nil {
					continue
				}
				name := node.Fn.Name()
				lockedByConvention := strings.HasSuffix(name, "Locked")
				if !lockedByConvention && !lockAware(ls) {
					continue // caller-locked helper: no evidence either way
				}
				res := Forward(g, FlowProblem[lockFact](ls))
				ls.onAccess = func(sel *ast.SelectorExpr, f *types.Var, write bool, fact lockFact) {
					st := stats[f]
					if st == nil {
						st = &guardStats{}
						stats[f] = st
					}
					locked := lockedByConvention || ls.heldOnRecv(fact, write)
					switch {
					case write && locked:
						st.lockedW++
					case write:
						st.unlockedW++
					case locked:
						st.lockedR++
					default:
						st.unlockedR++
					}
					if locked && st.guard == "" {
						for k := range fact.must {
							if k.root == ls.recv {
								st.guard = ls.lockTypeID(k)
								break
							}
						}
						if st.guard == "" && lockedByConvention {
							st.guard = "the receiver's lock"
						}
					}
				}
				ls.replay(g, res)
				ls.onAccess = nil
			}
		}
		return stats
	}).(map[*types.Var]*guardStats)
}

func runLockDiscipline(pass *Pass) {
	prog := pass.Prog
	if prog == nil {
		prog = NewProgram([]*Package{pass.Pkg})
	}
	sums := lockSummaries(prog)
	stats := guardedFields(prog)
	orders := lockOrders(prog)

	// Per-package flagging: guarded-field accesses and imbalance.
	for _, node := range prog.Funcs(pass.Pkg) {
		ls, g := newLockScan(prog, node, sums)
		if ls == nil {
			continue
		}
		if strings.HasSuffix(node.Fn.Name(), "Locked") {
			continue
		}
		aware := ls.recv != nil && lockAware(ls)
		res := Forward(g, FlowProblem[lockFact](ls))
		reported := make(map[string]bool)
		ls.onReport = func(pos token.Pos, format string, args ...any) {
			key := fmt.Sprintf("%d|%s", pos, fmt.Sprintf(format, args...))
			if reported[key] {
				return
			}
			reported[key] = true
			pass.Reportf(pos, format, args...)
		}
		if aware {
			ls.onAccess = func(sel *ast.SelectorExpr, f *types.Var, write bool, fact lockFact) {
				st := stats[f]
				if st == nil {
					return
				}
				if write && !ls.heldOnRecv(fact, true) && st.lockedW > 0 {
					ls.onReport(sel.Pos(), "write to %s without holding %s (field is written under it elsewhere)", f.Name(), st.guardName())
				}
				if !write && !ls.heldOnRecv(fact, false) && st.lockedR > 0 && st.lockedW > 0 {
					ls.onReport(sel.Pos(), "read of %s without holding %s (field has locked readers and writers elsewhere)", f.Name(), st.guardName())
				}
			}
		}
		ls.replay(g, res)
	}

	// Ordering inversions whose witness sites lie in this package.
	for _, inv := range orders {
		if inv.pkgPath != pass.Pkg.PkgPath {
			continue
		}
		pass.Reportf(inv.pos, "%s", inv.msg)
	}
}

func (st *guardStats) guardName() string {
	if st.guard != "" {
		return st.guard
	}
	return "the guarding mutex"
}

// lockInversion is one reported ordering violation, pinned to a package
// so each analyzer pass reports only its own files.
type lockInversion struct {
	pkgPath string
	pos     token.Pos
	msg     string
}

type orderSite struct {
	pos     token.Pos
	pkgPath string
}

// lockOrders records every (held, acquired) type-level pair module-wide
// and reports pairs seen in both orders.
func lockOrders(prog *Program) []lockInversion {
	return prog.Cached("lockdiscipline.orders", func() any {
		sums := lockSummaries(prog)
		pairs := make(map[[2]string][]orderSite)
		for _, pkg := range prog.Pkgs {
			for _, node := range prog.Funcs(pkg) {
				ls, g := newLockScan(prog, node, sums)
				if ls == nil {
					continue
				}
				res := Forward(g, FlowProblem[lockFact](ls))
				pkgPath := pkg.PkgPath
				ls.onOrder = func(before, after string, pos token.Pos) {
					key := [2]string{before, after}
					pairs[key] = append(pairs[key], orderSite{pos: pos, pkgPath: pkgPath})
				}
				ls.replay(g, res)
			}
		}
		var out []lockInversion
		seen := make(map[[2]string]bool)
		for key := range pairs {
			rev := [2]string{key[1], key[0]}
			if _, ok := pairs[rev]; !ok || seen[key] || seen[rev] {
				continue
			}
			seen[key], seen[rev] = true, true
			note := ""
			if isJournalLock(key[0]) || isJournalLock(key[1]) {
				note = "; the durability contract orders the journal mutex against state mutexes one way only"
			}
			for _, dir := range [][2]string{key, rev} {
				ss := pairs[dir]
				sort.Slice(ss, func(i, j int) bool { return ss[i].pos < ss[j].pos })
				s := ss[0]
				out = append(out, lockInversion{
					pkgPath: s.pkgPath,
					pos:     s.pos,
					msg: fmt.Sprintf("lock order inversion: %s acquired while holding %s here, but the opposite order exists elsewhere (potential deadlock)%s",
						dir[1], dir[0], note),
				})
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i].pos < out[j].pos })
		return out
	}).([]lockInversion)
}

// isJournalLock recognizes the durability journal's mutex in a type-level
// lock ID.
func isJournalLock(id string) bool {
	lower := strings.ToLower(id)
	return strings.Contains(lower, "journal") || strings.Contains(lower, "jour.")
}
