package analysis

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
)

// Fixture tests annotate the offending line with expectation comments:
//
//	return bytes.Equal(mac, want) // want `not constant time`
//
// Each backquoted (or double-quoted) string is a regexp that must match
// the message of exactly one diagnostic reported on that line; every
// diagnostic must in turn be claimed by an expectation. CheckExpectations
// returns human-readable failures, empty when the run matches exactly —
// the same contract as x/tools' analysistest, reimplemented here because
// the framework is stdlib-only.

// wantRe matches the expectation marker and its argument list.
var wantRe = regexp.MustCompile("// *want +(.*)$")

// wantArgRe matches one quoted regexp in a want comment's argument list.
var wantArgRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// expectation is one want-pattern with match bookkeeping.
type expectation struct {
	re      *regexp.Regexp
	raw     string
	line    int
	file    string
	matched bool
}

// collectExpectations parses every want comment in the package.
func collectExpectations(pkg *Package) ([]*expectation, error) {
	var exps []*expectation
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				args := wantArgRe.FindAllStringSubmatch(m[1], -1)
				if len(args) == 0 {
					return nil, fmt.Errorf("%s: want comment has no quoted patterns", pos)
				}
				for _, a := range args {
					raw := a[1]
					if raw == "" {
						raw = a[2]
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want pattern %q: %v", pos, raw, err)
					}
					exps = append(exps, &expectation{
						re: re, raw: raw, line: pos.Line, file: pos.Filename,
					})
				}
			}
		}
	}
	return exps, nil
}

// CheckExpectations compares a diagnostic list against the package's
// `// want` comments and returns one failure string per mismatch:
// diagnostics nobody expected and expectations nothing matched.
func CheckExpectations(pkg *Package, diags []Diagnostic) []string {
	exps, err := collectExpectations(pkg)
	if err != nil {
		return []string{err.Error()}
	}
	var failures []string
	for _, d := range diags {
		claimed := false
		for _, e := range exps {
			if e.matched || e.file != d.Pos.Filename || e.line != d.Pos.Line {
				continue
			}
			if e.re.MatchString(d.Message) {
				e.matched = true
				claimed = true
				break
			}
		}
		if !claimed {
			failures = append(failures,
				fmt.Sprintf("unexpected diagnostic at %s: [%s] %s", d.Pos, d.Analyzer, d.Message))
		}
	}
	for _, e := range exps {
		if !e.matched {
			failures = append(failures,
				fmt.Sprintf("%s:%d: no diagnostic matched want pattern %q", e.file, e.line, e.raw))
		}
	}
	sort.Strings(failures)
	return failures
}

// TrimPositions rewrites absolute fixture paths in failure strings to
// their base name, keeping test output readable.
func TrimPositions(failures []string, dir string) []string {
	out := make([]string, len(failures))
	for i, f := range failures {
		out[i] = strings.ReplaceAll(f, dir+string('/'), "")
	}
	return out
}
