package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop flags statements that silently discard an error return — a bare
// call statement whose callee returns an error that nobody reads. go vet
// has no such check; in this codebase a swallowed error typically means a
// verification failure or a wire write that "succeeded" vacuously.
// Explicit discards (`_ = f()`, `v, _ := f()`) are deliberate and not
// flagged; `defer f.Close()` is conventional cleanup and not flagged.
// Known never-fail writers (fmt's Print family, bytes.Buffer,
// strings.Builder, hash.Hash.Write) are exempt.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc: "flag call statements that silently discard an error result in " +
		"non-test library code",
	Run: runErrDrop,
}

func runErrDrop(pass *Pass) {
	pkg := pass.Pkg
	if pkg.Info == nil {
		return
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			if !returnsError(pkg.Info, call) || errDropExempt(pkg.Info, call) {
				return true
			}
			pass.Reportf(stmt.Pos(),
				"result of %s includes an error that is silently discarded; handle it or discard explicitly with `_ =`",
				types.ExprString(call.Fun))
			return true
		})
	}
}

// returnsError reports whether the call's result tuple contains the error
// type.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	errType := types.Universe.Lookup("error").Type()
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if types.Identical(t.At(i).Type(), errType) {
				return true
			}
		}
		return false
	default:
		return types.Identical(t, errType)
	}
}

// errDropExempt reports whether the callee is on the never-fail
// allowlist: fmt's Print family (errors only on a broken writer, which
// every Go program ignores), the documented-infallible bytes.Buffer and
// strings.Builder, and Write on hash states (hash.Hash documents that
// Write never returns an error). The hash case keys off the receiver
// expression's static type — hash.Hash inherits Write from io.Writer, so
// the method's own receiver package would misleadingly be "io".
func errDropExempt(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "fmt" &&
		(strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
		return true
	}
	selExpr, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	sel, ok := info.Selections[selExpr]
	if !ok {
		return false
	}
	rt := sel.Recv()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	recvPkg, recvName := named.Obj().Pkg().Path(), named.Obj().Name()
	if (recvPkg == "bytes" && recvName == "Buffer") ||
		(recvPkg == "strings" && recvName == "Builder") {
		return true
	}
	if fn.Name() == "Write" &&
		(recvPkg == "hash" || strings.HasPrefix(recvPkg, "hash/") || strings.HasPrefix(recvPkg, "crypto/")) {
		return true
	}
	return false
}
