package analysis

import (
	"go/ast"
	"go/types"
)

// DeterministicPackages names the packages (by final import-path element)
// whose output must be a pure function of their inputs: the protocol core
// (PR 1 promised byte-identical search results at any worker count), the
// consensus layer (every validator must re-derive the proposer's exact
// block), the on-chain contract (gas and state must replay identically)
// and the order-revealing encryption.
var DeterministicPackages = map[string]bool{
	"core":     true,
	"chain":    true,
	"contract": true,
	"sore":     true,
}

// wallclockFuncs are the time package reads that smuggle wall-clock
// nondeterminism into protocol output.
var wallclockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// WallClock forbids time.Now / time.Since / time.Until in deterministic
// protocol packages. Sealed blocks stamped with the proposer's wall clock
// cannot be re-derived by a validator, and timing reads on the search
// path break replay. Inject a clock instead (`now func() time.Time`,
// defaulting to time.Now at a single annotated site); pure
// instrumentation reads carry //slicer:allow wallclock -- <reason>.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc: "forbid time.Now/time.Since/time.Until in deterministic protocol " +
		"packages; inject a clock or annotate instrumentation",
	Run: runWallClock,
}

func runWallClock(pass *Pass) {
	pkg := pass.Pkg
	if !DeterministicPackages[pkgBase(pkg.PkgPath)] || pkg.Info == nil {
		return
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || !isPkgFunc(fn, "time", sel.Sel.Name) || !wallclockFuncs[sel.Sel.Name] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"time.%s in deterministic protocol package %q; inject a clock (now func() time.Time) or annotate instrumentation with //slicer:allow wallclock -- <reason>",
				sel.Sel.Name, pkg.Name)
			return true
		})
	}
}
