package analysis

// A small forward-dataflow framework over the CFGs cfg.go builds: a
// problem supplies boundary facts, a per-block transfer function and a
// merge (the lattice join/meet); Forward iterates a worklist in reverse
// postorder to the fixpoint. Facts are an opaque type parameter — the
// gen/kill BitSet lattice below serves the golden tests and simple
// reaching-style problems, while the analyzers use richer map-based facts.

import (
	"fmt"
	"go/ast"
	"math/bits"
	"strings"
)

// A FlowProblem defines one forward dataflow analysis.
type FlowProblem[F any] interface {
	// Boundary is the fact holding at function entry.
	Boundary(g *CFG) F
	// Transfer computes the fact after executing a block given the fact
	// before it. It must not mutate in.
	Transfer(b *Block, in F) F
	// Merge joins facts arriving over two edges. It must not mutate its
	// arguments.
	Merge(a, b F) F
	// Equal reports fact equality (fixpoint detection).
	Equal(a, b F) bool
}

// An EdgeRefiner optionally sharpens the fact flowing over a specific edge
// — e.g. the ackorder analyzer marks the true edge of `if jour == nil` as
// entering journal-free mode. Refine must not mutate the given fact.
type EdgeRefiner[F any] interface {
	Refine(e Edge, out F) F
}

// FlowResult carries the per-block fixpoint facts.
type FlowResult[F any] struct {
	In, Out map[*Block]F
}

// maxFlowIterations bounds fixpoint iteration as a defensive backstop; a
// monotone lattice of reasonable height converges far earlier.
const maxFlowIterations = 64

// Forward runs p over g to a fixpoint and returns the per-block facts.
func Forward[F any](g *CFG, p FlowProblem[F]) FlowResult[F] {
	res := FlowResult[F]{In: make(map[*Block]F), Out: make(map[*Block]F)}
	refiner, _ := p.(EdgeRefiner[F])
	rpo := g.ReversePostorder()
	res.In[g.Entry] = p.Boundary(g)
	res.Out[g.Entry] = p.Transfer(g.Entry, res.In[g.Entry])
	for iter := 0; iter < maxFlowIterations; iter++ {
		changed := false
		for _, blk := range rpo {
			if blk == g.Entry {
				continue
			}
			var in F
			have := false
			for _, e := range blk.Preds {
				out, ok := res.Out[e.From]
				if !ok {
					continue
				}
				if refiner != nil {
					out = refiner.Refine(e, out)
				}
				if !have {
					in, have = out, true
				} else {
					in = p.Merge(in, out)
				}
			}
			if !have {
				in = p.Boundary(g)
			}
			out := p.Transfer(blk, in)
			res.In[blk] = in
			if old, ok := res.Out[blk]; !ok || !p.Equal(old, out) {
				res.Out[blk] = out
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return res
}

// A BitSet is a dense bit vector — the classic gen/kill dataflow lattice.
type BitSet struct {
	words []uint64
}

// NewBitSet returns an empty set sized for n bits.
func NewBitSet(n int) *BitSet {
	return &BitSet{words: make([]uint64, (n+63)/64)}
}

// Set adds bit i (growing as needed).
func (s *BitSet) Set(i int) {
	w := i / 64
	for w >= len(s.words) {
		s.words = append(s.words, 0)
	}
	s.words[w] |= 1 << (i % 64)
}

// Clear removes bit i.
func (s *BitSet) Clear(i int) {
	if w := i / 64; w < len(s.words) {
		s.words[w] &^= 1 << (i % 64)
	}
}

// Has reports whether bit i is present.
func (s *BitSet) Has(i int) bool {
	w := i / 64
	return w < len(s.words) && s.words[w]&(1<<(i%64)) != 0
}

// Clone returns an independent copy.
func (s *BitSet) Clone() *BitSet {
	c := &BitSet{words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// Union folds o into s (s |= o).
func (s *BitSet) Union(o *BitSet) {
	for len(s.words) < len(o.words) {
		s.words = append(s.words, 0)
	}
	for i, w := range o.words {
		s.words[i] |= w
	}
}

// Diff removes o's bits from s (s &^= o).
func (s *BitSet) Diff(o *BitSet) {
	for i := 0; i < len(s.words) && i < len(o.words); i++ {
		s.words[i] &^= o.words[i]
	}
}

// Equal reports set equality (trailing zero words are insignificant).
func (s *BitSet) Equal(o *BitSet) bool {
	long, short := s.words, o.words
	if len(long) < len(short) {
		long, short = short, long
	}
	for i := range short {
		if long[i] != short[i] {
			return false
		}
	}
	for _, w := range long[len(short):] {
		if w != 0 {
			return false
		}
	}
	return true
}

// Count returns the number of set bits.
func (s *BitSet) Count() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// String renders the set as a sorted bit list, e.g. "{0 3 7}".
func (s *BitSet) String() string {
	var parts []string
	for i := 0; i < 64*len(s.words); i++ {
		if s.Has(i) {
			parts = append(parts, fmt.Sprint(i))
		}
	}
	return "{" + strings.Join(parts, " ") + "}"
}

// GenKillProblem is the classic gen/kill union lattice: out = gen(b) ∪
// (in − kill(b)), merged by union. The CFG golden tests drive reaching
// definitions through it; analyzers with set-shaped facts can too.
type GenKillProblem struct {
	// Gen and Kill return a block's generated and killed bits; nil means
	// the empty set.
	Gen, Kill func(b *Block) *BitSet
	// Entry is the boundary fact (nil: empty set).
	Entry *BitSet
}

// Boundary implements FlowProblem.
func (p GenKillProblem) Boundary(*CFG) *BitSet {
	if p.Entry == nil {
		return NewBitSet(0)
	}
	return p.Entry.Clone()
}

// Transfer implements FlowProblem: out = gen ∪ (in − kill).
func (p GenKillProblem) Transfer(b *Block, in *BitSet) *BitSet {
	out := in.Clone()
	if p.Kill != nil {
		if k := p.Kill(b); k != nil {
			out.Diff(k)
		}
	}
	if p.Gen != nil {
		if g := p.Gen(b); g != nil {
			out.Union(g)
		}
	}
	return out
}

// Merge implements FlowProblem (set union — "may" analysis).
func (p GenKillProblem) Merge(a, b *BitSet) *BitSet {
	out := a.Clone()
	out.Union(b)
	return out
}

// Equal implements FlowProblem.
func (p GenKillProblem) Equal(a, b *BitSet) bool { return a.Equal(b) }

// blockExprs visits the expressions a block node evaluates itself, without
// descending into nested statement bodies that live in their own blocks (a
// RangeStmt node carries its body syntactically, but the body's statements
// are separate blocks) and without entering function literals (whose bodies
// execute later, if at all).
func blockExprs(n ast.Node, visit func(ast.Node) bool) {
	switch v := n.(type) {
	case *ast.RangeStmt:
		if v.Key != nil {
			blockExprs(v.Key, visit)
		}
		if v.Value != nil {
			blockExprs(v.Value, visit)
		}
		blockExprs(v.X, visit)
		return
	case *ast.IfStmt, *ast.ForStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.LabeledStmt, *ast.BlockStmt:
		// Compound statements never appear as block nodes; their pieces do.
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			visit(n) // shown, but not descended into
			return false
		}
		return visit(n)
	})
}
