package analysis

// secrettaint is the flow-sensitive secret-leak analyzer. It tracks key
// material through each function's CFG with the dataflow framework, and
// through helper calls with module-wide call-graph summaries, reporting
// when a secret-derived value reaches an observable sink: logging, error
// formatting, metric label values, audit record bodies, RPC response
// payloads, or world-readable file writes.
//
// Sources. A value is secret when its type names key material
// (trapdoor.SecretKey, prf.Key, symenc.Key/Cipher, accumulator.Params —
// any type whose name contains "Secret" but not "Public"), or when, inside
// one of Slicer's crypto packages, a field or parameter of byte-sequence
// or big-integer shape carries a key-material name (k, sk, d, phi, priv,
// *key*, *secret*).
//
// Sanitizers. Hashing or ciphering a secret launders it: results of
// crypto/sha256, sha512, hmac, subtle, aes, cipher and rand calls are
// clean, as is anything produced by modular big-integer arithmetic (Exp,
// Mod, Mul, ...) — Slicer's trapdoor and accumulator outputs are
// algebraically blinded, so only big.Int serialization (Bytes, String,
// Text, ...) of a directly-secret value keeps its taint. A finding that is
// intentional can be annotated //slicer:allow secrettaint -- <reason>.
//
// Soundness limits (documented in DESIGN.md): taint is tracked per object,
// not per struct field instance; function literals are scanned with the
// facts at their creation point only when analyzing the enclosing function
// directly; reflection and interface dispatch are not followed.

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// SecretTaint reports secret key material flowing to observable sinks.
var SecretTaint = &Analyzer{
	Name: "secrettaint",
	Doc: "reports key material (PRF keys, trapdoor secret keys, accumulator " +
		"trapdoors, symmetric keys) flowing to logs, error values, metric " +
		"labels, audit records, RPC responses or world-readable files",
	Run: runSecretTaint,
}

// taintBitSecret is the BitSet bit meaning "derived from an actual secret";
// bit i+1 means "derived from parameter slot i" (receiver first).
const taintBitSecret = 0

// secretFieldNameRe matches field/parameter names that denote key material
// inside crypto packages. "keyword" is the SSE term for a public searchable
// token, so it is excluded explicitly.
var secretFieldNameRe = regexp.MustCompile(`(?i)^(k|sk|d|phi|priv)$|secret|key`)

// isSecretTypeName reports whether a named type declared in package base
// pkgB is a secret-material container.
func isSecretTypeName(pkgB, name string) bool {
	if strings.Contains(name, "Public") {
		return false
	}
	if strings.Contains(name, "Secret") {
		return true
	}
	switch {
	case name == "Key" && (pkgB == "prf" || pkgB == "symenc"):
		return true
	case name == "Cipher" && pkgB == "symenc":
		return true
	case name == "Params" && pkgB == "accumulator":
		return true
	}
	return false
}

// typeIsSecret walks t's named-type chain (through pointers, slices and
// arrays) looking for a secret-material type name.
func typeIsSecret(t types.Type) bool {
	for depth := 0; t != nil && depth < 8; depth++ {
		switch v := t.(type) {
		case *types.Alias:
			obj := v.Obj()
			if obj != nil && isSecretTypeName(objPkgBase(obj), obj.Name()) {
				return true
			}
			t = types.Unalias(v)
		case *types.Named:
			obj := v.Obj()
			if obj != nil && isSecretTypeName(objPkgBase(obj), obj.Name()) {
				return true
			}
			t = v.Underlying()
		case *types.Pointer:
			t = v.Elem()
		case *types.Slice:
			t = v.Elem()
		case *types.Array:
			t = v.Elem()
		default:
			return false
		}
	}
	return false
}

func objPkgBase(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return pkgBase(obj.Pkg().Path())
}

// secretCarrier reports whether t is a shape key material travels in:
// byte sequences and big integers.
func secretCarrier(t types.Type) bool {
	if t == nil {
		return false
	}
	if isByteSequence(t) {
		return true
	}
	for _, n := range namedTypeNames(t) {
		if n == "Int" {
			return true
		}
	}
	return false
}

// secretNamedVar reports whether a field or parameter declared inside a
// crypto package carries a key-material name and shape.
func secretNamedVar(v *types.Var) bool {
	if v == nil || v.Pkg() == nil || !CryptoPackages[pkgBase(v.Pkg().Path())] {
		return false
	}
	name := strings.ToLower(v.Name())
	if strings.Contains(name, "keyword") {
		return false
	}
	return secretFieldNameRe.MatchString(v.Name()) && secretCarrier(v.Type())
}

// taintState maps in-scope objects (locals, parameters, and field objects
// written in this function) to their taint label sets. Only objects with
// non-empty taint are stored.
type taintState map[types.Object]*BitSet

func cloneTaint(st taintState) taintState {
	out := make(taintState, len(st))
	for k, v := range st {
		out[k] = v.Clone()
	}
	return out
}

// taintSummary is the interprocedural abstract of one function: which
// parameter slots flow to a return value, whether results are secret
// regardless of inputs (the function reads a source internally), and which
// slots reach a sink inside the function (with the sink's kind).
type taintSummary struct {
	flows        []bool
	sinks        []string
	resultSecret bool
}

func (s *taintSummary) equal(o *taintSummary) bool {
	if o == nil {
		return false
	}
	if s.resultSecret != o.resultSecret || len(s.flows) != len(o.flows) || len(s.sinks) != len(o.sinks) {
		return false
	}
	for i := range s.flows {
		if s.flows[i] != o.flows[i] {
			return false
		}
	}
	for i := range s.sinks {
		if s.sinks[i] != o.sinks[i] {
			return false
		}
	}
	return true
}

// taintScan runs the taint dataflow over one function. With emit set it
// reports sink hits; otherwise it collects the function's summary.
type taintScan struct {
	prog      *Program
	pkg       *Package
	fn        *FuncNode
	slots     []*types.Var
	summaries map[*types.Func]*taintSummary

	// seedSecrets marks key-material parameters as secret at entry
	// (report mode); summary mode seeds parameter bits only.
	seedSecrets bool
	emit        func(pos token.Pos, format string, args ...any)

	// entry overrides the boundary fact (function-literal scans start
	// from the facts captured at the literal's creation point).
	entry taintState

	// Summary collection (monotone across fixpoint iterations).
	sinkHits  *BitSet
	sinkKinds map[int]string
	retTaint  *BitSet
}

// Boundary implements FlowProblem.
func (ts *taintScan) Boundary(*CFG) taintState {
	st := make(taintState)
	if ts.entry != nil {
		return cloneTaint(ts.entry)
	}
	for i, v := range ts.slots {
		t := NewBitSet(len(ts.slots) + 1)
		t.Set(i + 1)
		if ts.seedSecrets && ts.slotSecret(v) {
			t.Set(taintBitSecret)
		}
		st[v] = t
	}
	return st
}

// slotSecret reports whether a parameter is a taint source by itself:
// secret-typed anywhere, or key-material-named inside a crypto package.
func (ts *taintScan) slotSecret(v *types.Var) bool {
	return typeIsSecret(v.Type()) || secretNamedVar(v)
}

// Transfer implements FlowProblem.
func (ts *taintScan) Transfer(b *Block, in taintState) taintState {
	st := cloneTaint(in)
	for _, n := range b.Nodes {
		ts.step(n, st)
	}
	return st
}

// Merge implements FlowProblem (per-object union).
func (ts *taintScan) Merge(a, b taintState) taintState {
	out := cloneTaint(a)
	for k, v := range b {
		if have, ok := out[k]; ok {
			have.Union(v)
		} else {
			out[k] = v.Clone()
		}
	}
	return out
}

// Equal implements FlowProblem.
func (ts *taintScan) Equal(a, b taintState) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		o, ok := b[k]
		if !ok || !v.Equal(o) {
			return false
		}
	}
	return true
}

func (ts *taintScan) step(n ast.Node, st taintState) {
	switch v := n.(type) {
	case *ast.AssignStmt:
		ts.stepAssign(v, st)
	case *ast.DeclStmt:
		gd, ok := v.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			ts.stepValueSpec(vs, st)
		}
	case *ast.RangeStmt:
		t := ts.eval(v.X, st)
		ts.bind(v.Key, t, st)
		ts.bind(v.Value, t, st)
	case *ast.ReturnStmt:
		ts.stepReturn(v, st)
	case *ast.ExprStmt:
		ts.eval(v.X, st)
	case *ast.IncDecStmt:
		ts.eval(v.X, st)
	case *ast.SendStmt:
		ts.eval(v.Chan, st)
		ts.eval(v.Value, st)
	case *ast.GoStmt:
		ts.eval(v.Call, st)
	case *ast.DeferStmt:
		ts.eval(v.Call, st)
	case ast.Expr:
		ts.eval(v, st)
	}
}

func (ts *taintScan) stepValueSpec(vs *ast.ValueSpec, st taintState) {
	if len(vs.Values) == 1 && len(vs.Names) > 1 {
		t := ts.eval(vs.Values[0], st)
		for _, name := range vs.Names {
			ts.bind(name, t, st)
		}
		return
	}
	for i, name := range vs.Names {
		if i < len(vs.Values) {
			ts.bind(name, ts.eval(vs.Values[i], st), st)
		}
	}
}

func (ts *taintScan) stepAssign(a *ast.AssignStmt, st taintState) {
	// Multi-value: x, err := f().
	if len(a.Lhs) > 1 && len(a.Rhs) == 1 {
		t := ts.eval(a.Rhs[0], st)
		for _, lhs := range a.Lhs {
			ts.bind(lhs, t, st)
		}
		return
	}
	for i, lhs := range a.Lhs {
		if i >= len(a.Rhs) {
			break
		}
		t := ts.eval(a.Rhs[i], st)
		if a.Tok != token.ASSIGN && a.Tok != token.DEFINE {
			// Compound assignment keeps the old taint.
			t = t.Clone()
			t.Union(ts.eval(lhs, st))
		}
		ts.bind(lhs, t, st)
	}
}

// bind records the taint flowing into an assignment target, checking the
// wire.Response sink on field targets.
func (ts *taintScan) bind(lhs ast.Expr, t *BitSet, st taintState) {
	if lhs == nil {
		return
	}
	switch v := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if v.Name == "_" {
			return
		}
		obj := ts.objOf(v)
		if obj == nil {
			return
		}
		if isErrorType(obj.Type()) {
			// Error results of multi-value calls stay clean; the
			// error-formatting sink catches the leak at its source.
			delete(st, obj)
			return
		}
		if t.Count() == 0 {
			delete(st, obj) // strong update
			return
		}
		st[obj] = t.Clone()
	case *ast.SelectorExpr:
		if sel, ok := ts.pkg.Info.Selections[v]; ok && sel.Kind() == types.FieldVal {
			ts.checkResponseField(v, t)
			if f, ok := sel.Obj().(*types.Var); ok && t.Count() > 0 {
				ts.taintObj(f, t, st)
			}
			return
		}
		// Qualified package-level var.
		if obj := ts.objOf(v.Sel); obj != nil && t.Count() > 0 {
			ts.taintObj(obj, t, st)
		}
	case *ast.StarExpr, *ast.IndexExpr, *ast.SliceExpr:
		// Writing through a pointer, index or slice taints the base
		// object (weak update).
		if base := rootIdent(v); base != nil && t.Count() > 0 {
			if obj := ts.objOf(base); obj != nil {
				ts.taintObj(obj, t, st)
			}
		}
	}
}

func (ts *taintScan) taintObj(obj types.Object, t *BitSet, st taintState) {
	if have, ok := st[obj]; ok {
		have.Union(t)
		return
	}
	st[obj] = t.Clone()
}

// checkResponseField reports a secret assigned into a wire response
// payload field (the response-payload sink; wire packages only).
func (ts *taintScan) checkResponseField(sel *ast.SelectorExpr, t *BitSet) {
	if ts.emit == nil || !t.Has(taintBitSecret) || pkgBase(ts.pkg.PkgPath) != "wire" {
		return
	}
	if tv, ok := ts.pkg.Info.Types[sel.X]; ok {
		for _, name := range namedTypeNames(tv.Type) {
			if strings.Contains(name, "Response") {
				ts.emit(sel.Pos(), "secret-derived value assigned to RPC response field %s; responses cross the trust boundary", sel.Sel.Name)
				return
			}
		}
	}
}

// checkResponseLit reports a secret element inside a wire response
// composite literal.
func (ts *taintScan) checkResponseLit(lit *ast.CompositeLit, elt ast.Expr, t *BitSet) {
	if ts.emit == nil || !t.Has(taintBitSecret) || pkgBase(ts.pkg.PkgPath) != "wire" {
		return
	}
	tv, ok := ts.pkg.Info.Types[lit]
	if !ok {
		return
	}
	for _, name := range namedTypeNames(tv.Type) {
		if strings.Contains(name, "Response") {
			ts.emit(elt.Pos(), "secret-derived value placed in RPC response literal; responses cross the trust boundary")
			return
		}
	}
}

func (ts *taintScan) stepReturn(r *ast.ReturnStmt, st taintState) {
	for i, res := range r.Results {
		t := ts.eval(res, st)
		if ts.retTaint != nil {
			ts.retTaint.Union(t)
		}
		if ts.emit != nil && i == 0 && t.Has(taintBitSecret) &&
			pkgBase(ts.pkg.PkgPath) == "wire" && ts.fn != nil &&
			strings.HasPrefix(ts.fn.Fn.Name(), "handle") {
			ts.emit(res.Pos(), "secret-derived value returned as RPC response payload from %s", ts.fn.Fn.Name())
		}
	}
}

// eval computes an expression's taint. Any expression of secret type is a
// source by itself.
func (ts *taintScan) eval(e ast.Expr, st taintState) *BitSet {
	t := ts.evalInner(e, st)
	if tv, ok := ts.pkg.Info.Types[e]; ok && tv.Type != nil && !tv.IsType() && typeIsSecret(tv.Type) {
		t.Set(taintBitSecret)
	}
	return t
}

func (ts *taintScan) evalInner(e ast.Expr, st taintState) *BitSet {
	empty := NewBitSet(0)
	switch v := e.(type) {
	case *ast.Ident:
		obj := ts.objOf(v)
		if obj == nil {
			return empty
		}
		t := NewBitSet(0)
		if have, ok := st[obj]; ok {
			t.Union(have)
		}
		if f, ok := obj.(*types.Var); ok && secretNamedVar(f) && f.IsField() {
			// Unqualified field read inside a method (rare; selector
			// form is the common path).
			t.Set(taintBitSecret)
		}
		return t
	case *ast.SelectorExpr:
		if sel, ok := ts.pkg.Info.Selections[v]; ok {
			if sel.Kind() != types.FieldVal {
				return empty // method value; handled at the call
			}
			// Fields of a secret-typed container inherit its taint (the
			// fields of a SecretKey are the secret). Aggregates that
			// merely hold a secret field do not spread it to their other
			// fields: reading the secret field itself is caught by the
			// field's own type and name rules below.
			var t *BitSet
			if tv, ok := ts.pkg.Info.Types[v.X]; ok && typeIsSecret(tv.Type) {
				t = ts.eval(v.X, st).Clone()
			} else {
				t = empty.Clone()
			}
			if f, ok := sel.Obj().(*types.Var); ok {
				if have, ok := st[f]; ok {
					t.Union(have)
				}
				if secretNamedVar(f) {
					t.Set(taintBitSecret)
				}
			}
			return t
		}
		// Qualified identifier pkg.Var.
		if obj := ts.objOf(v.Sel); obj != nil {
			if have, ok := st[obj]; ok {
				return have.Clone()
			}
		}
		return empty
	case *ast.CallExpr:
		return ts.evalCall(v, st)
	case *ast.BinaryExpr:
		switch v.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ, token.LAND, token.LOR:
			ts.eval(v.X, st)
			ts.eval(v.Y, st)
			return empty // comparisons yield booleans, not bytes
		}
		t := ts.eval(v.X, st).Clone()
		t.Union(ts.eval(v.Y, st))
		return t
	case *ast.UnaryExpr:
		return ts.eval(v.X, st)
	case *ast.StarExpr:
		return ts.eval(v.X, st)
	case *ast.ParenExpr:
		return ts.eval(v.X, st)
	case *ast.IndexExpr:
		return ts.eval(v.X, st)
	case *ast.IndexListExpr:
		return ts.eval(v.X, st)
	case *ast.SliceExpr:
		return ts.eval(v.X, st)
	case *ast.TypeAssertExpr:
		return ts.eval(v.X, st)
	case *ast.KeyValueExpr:
		return ts.eval(v.Value, st)
	case *ast.CompositeLit:
		t := NewBitSet(0)
		for _, elt := range v.Elts {
			et := ts.eval(elt, st)
			ts.checkResponseLit(v, elt, et)
			t.Union(et)
		}
		return t
	case *ast.FuncLit:
		ts.scanFuncLit(v, st)
		return empty
	}
	return empty
}

// scanFuncLit analyzes a function literal's body with the taint facts at
// its creation point (report mode only — a documented summary limit).
func (ts *taintScan) scanFuncLit(lit *ast.FuncLit, st taintState) {
	if ts.emit == nil {
		return
	}
	g := BuildLitCFG(lit)
	if g == nil {
		return
	}
	sub := &taintScan{
		prog:      ts.prog,
		pkg:       ts.pkg,
		fn:        ts.fn,
		summaries: ts.summaries,
		emit:      ts.emit,
		entry:     cloneTaint(st),
	}
	Forward(g, FlowProblem[taintState](sub))
}

// evalCall handles conversions, builtins, sanitizers, the big.Int
// arithmetic cut, sinks, and summarized module callees.
func (ts *taintScan) evalCall(call *ast.CallExpr, st taintState) *BitSet {
	empty := NewBitSet(0)
	// Type conversion: preserves bytes.
	if tv, ok := ts.pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		t := NewBitSet(0)
		for _, arg := range call.Args {
			t.Union(ts.eval(arg, st))
		}
		return t
	}
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, ok := ts.pkg.Info.Uses[id].(*types.Builtin); ok {
			switch id.Name {
			case "append":
				t := NewBitSet(0)
				for _, arg := range call.Args {
					t.Union(ts.eval(arg, st))
				}
				return t
			case "copy":
				if len(call.Args) == 2 {
					src := ts.eval(call.Args[1], st)
					if base := rootIdent(call.Args[0]); base != nil && src.Count() > 0 {
						if obj := ts.objOf(base); obj != nil {
							ts.taintObj(obj, src, st)
						}
					}
				}
				return empty
			default:
				for _, arg := range call.Args {
					ts.eval(arg, st)
				}
				return empty
			}
		}
	}

	fn := calleeFunc(ts.pkg.Info, call)

	// Receiver taint for method calls.
	var recvT *BitSet
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := ts.pkg.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			recvT = ts.eval(sel.X, st)
		}
	}
	argT := make([]*BitSet, len(call.Args))
	for i, arg := range call.Args {
		argT[i] = ts.eval(arg, st)
	}

	// Sanitizers: hashing/ciphering launders secrets.
	if fn != nil && fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "crypto/sha256", "crypto/sha512", "crypto/sha1", "crypto/md5",
			"crypto/hmac", "crypto/subtle", "crypto/aes", "crypto/cipher",
			"crypto/rand", "hash", "hash/fnv", "hash/maphash":
			return empty
		case "math/big":
			return bigIntTaint(fn, recvT, argT)
		}
	}

	// Sinks.
	if kind, sinkArgs := ts.sinkOf(call, fn); kind != "" {
		for _, i := range sinkArgs {
			if i < 0 || i >= len(argT) {
				continue
			}
			t := argT[i]
			if ts.emit != nil && t.Has(taintBitSecret) {
				ts.emit(call.Args[i].Pos(), "secret-derived value reaches %s sink", kind)
			}
			if ts.sinkHits != nil {
				for s := range ts.slots {
					if t.Has(s + 1) {
						ts.sinkHits.Set(s)
						if _, ok := ts.sinkKinds[s]; !ok {
							ts.sinkKinds[s] = kind
						}
					}
				}
			}
		}
		return empty
	}

	// Module callee with a computed summary.
	if fn != nil && ts.summaries != nil {
		if sum, ok := ts.summaries[fn]; ok && sum != nil {
			out := NewBitSet(0)
			if sum.resultSecret {
				out.Set(taintBitSecret)
			}
			slotTaints := callSlotTaints(fn, recvT, argT)
			for i, t := range slotTaints {
				if i >= len(sum.flows) {
					break
				}
				if t == nil {
					continue
				}
				if sum.flows[i] {
					out.Union(t)
				}
				if sum.sinks[i] != "" && t.Has(taintBitSecret) {
					pos := call.Pos()
					if ts.emit != nil {
						ts.emit(pos, "secret-derived value passed to %s, which feeds it to a %s sink", fn.Name(), sum.sinks[i])
					}
					if ts.sinkHits != nil {
						for s := range ts.slots {
							if t.Has(s + 1) {
								ts.sinkHits.Set(s)
								if _, ok := ts.sinkKinds[s]; !ok {
									ts.sinkKinds[s] = sum.sinks[i]
								}
							}
						}
					}
				}
			}
			return out
		}
	}

	// Unknown callee: conservative propagation, no sink.
	t := NewBitSet(0)
	if recvT != nil {
		t.Union(recvT)
	}
	for _, a := range argT {
		t.Union(a)
	}
	return t
}

// bigIntTaint implements the big.Int discipline: serialization keeps
// taint, Set-style copies propagate their inputs, and modular arithmetic
// is a sanitizer (Slicer's trapdoor permutation and accumulator outputs
// are algebraically blinded).
func bigIntTaint(fn *types.Func, recvT *BitSet, argT []*BitSet) *BitSet {
	name := fn.Name()
	serializers := map[string]bool{
		"Bytes": true, "FillBytes": true, "String": true, "Text": true,
		"Append": true, "AppendText": true, "MarshalText": true,
		"MarshalJSON": true, "GobEncode": true, "Bits": true,
	}
	union := func(with *BitSet) *BitSet {
		t := NewBitSet(0)
		if with != nil {
			t.Union(with)
		}
		for _, a := range argT {
			t.Union(a)
		}
		return t
	}
	switch {
	case serializers[name]:
		return union(recvT)
	case strings.HasPrefix(name, "Set"), name == "Neg", name == "Abs":
		return union(nil)
	}
	return NewBitSet(0)
}

// callSlotTaints lines up receiver/argument taints with the callee's
// parameter slots (receiver first; variadic extras fold into the last).
func callSlotTaints(fn *types.Func, recvT *BitSet, argT []*BitSet) []*BitSet {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	n := sig.Params().Len()
	off := 0
	if sig.Recv() != nil {
		off = 1
	}
	slots := make([]*BitSet, off+n)
	if off == 1 {
		slots[0] = recvT
	}
	for j, t := range argT {
		i := j
		if i >= n {
			i = n - 1
		}
		if i < 0 {
			break
		}
		if slots[off+i] == nil {
			slots[off+i] = NewBitSet(0)
		}
		slots[off+i].Union(t)
	}
	return slots
}

// sinkOf classifies a call as an observable sink, returning the sink kind
// and the indices of the arguments that leak.
func (ts *taintScan) sinkOf(call *ast.CallExpr, fn *types.Func) (string, []int) {
	allArgs := func() []int {
		idx := make([]int, len(call.Args))
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	tailArgs := func(from int) []int {
		var idx []int
		for i := from; i < len(call.Args); i++ {
			idx = append(idx, i)
		}
		return idx
	}
	if fn == nil {
		return "", nil
	}
	name := fn.Name()
	pkgPath := ""
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}
	sig, _ := fn.Type().(*types.Signature)
	isMethod := sig != nil && sig.Recv() != nil

	switch pkgPath {
	case "fmt":
		switch {
		case name == "Errorf":
			return "error-value", allArgs()
		case strings.HasPrefix(name, "Fprint"):
			return "log", tailArgs(1)
		case strings.HasPrefix(name, "Print"):
			return "log", allArgs()
		}
		return "", nil // Sprint* propagates via the default path... (handled below)
	case "errors":
		if name == "New" {
			return "error-value", allArgs()
		}
		return "", nil
	case "log":
		if strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fatal") || strings.HasPrefix(name, "Panic") || name == "Output" {
			return "log", allArgs()
		}
		return "", nil
	case "log/slog":
		if isMethod {
			switch name {
			case "Debug", "Info", "Warn", "Error", "Log", "LogAttrs",
				"DebugContext", "InfoContext", "WarnContext", "ErrorContext", "With":
				return "log", allArgs()
			}
			return "", nil
		}
		switch name {
		case "Debug", "Info", "Warn", "Error", "Log", "LogAttrs", "With":
			return "log", allArgs()
		case "String", "Any", "Bool", "Int", "Int64", "Uint64", "Float64", "Time", "Duration", "Group", "StringValue", "AnyValue":
			return "log", tailArgs(0)
		}
		return "", nil
	}

	// Metric label values: series names are public observability surface.
	if isMethod && name == "WithLabelValues" {
		return "metric-label", allArgs()
	}
	if !isMethod && name == "Label" && pkgBase(pkgPath) == "obs" {
		return "metric-label", allArgs()
	}

	// Audit record bodies: the ledger is an append-only, exportable log.
	if isMethod && (name == "Log" || name == "Append") {
		for _, tn := range namedTypeNames(sig.Recv().Type()) {
			if strings.Contains(tn, "Ledger") {
				return "audit-record", allArgs()
			}
			if strings.Contains(tn, "Logger") {
				return "log", allArgs()
			}
		}
	}
	// Any *Logger method of a level-method shape (slog-like wrappers).
	if isMethod {
		switch name {
		case "Debug", "Info", "Warn", "Error":
			for _, tn := range namedTypeNames(sig.Recv().Type()) {
				if strings.Contains(tn, "Logger") {
					return "log", allArgs()
				}
			}
		}
	}

	// World-readable file writes: WriteFile-style calls whose constant
	// mode argument exceeds 0600.
	if strings.Contains(name, "WriteFile") {
		if perm, permIdx, ok := ts.constPermArg(call); ok && perm > 0o600 {
			var idx []int
			for i := range call.Args {
				if i != permIdx {
					idx = append(idx, i)
				}
			}
			return fmt.Sprintf("world-readable file (mode %#o)", perm), idx
		}
	}
	return "", nil
}

// constPermArg finds a constant integer argument that looks like a file
// mode (the last constant int arg), returning its value and index.
func (ts *taintScan) constPermArg(call *ast.CallExpr) (int64, int, bool) {
	for i := len(call.Args) - 1; i >= 0; i-- {
		tv, ok := ts.pkg.Info.Types[call.Args[i]]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
			continue
		}
		if v, ok := constant.Int64Val(tv.Value); ok {
			return v, i, true
		}
	}
	return 0, -1, false
}

func (ts *taintScan) objOf(id *ast.Ident) types.Object {
	if obj := ts.pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return ts.pkg.Info.Defs[id]
}

// rootIdent returns the base identifier under parens, stars, indexes,
// slices and selectors (x in (*x.f)[i]), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.SliceExpr:
			e = v.X
		case *ast.SelectorExpr:
			e = v.X
		case *ast.UnaryExpr:
			e = v.X
		default:
			return nil
		}
	}
}

func isErrorType(t types.Type) bool {
	return t != nil && t.String() == "error"
}

// funcSlots returns the parameter slots of a declared function: receiver
// first, then parameters in order.
func funcSlots(fn *types.Func) []*types.Var {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var slots []*types.Var
	if r := sig.Recv(); r != nil {
		slots = append(slots, r)
	}
	for i := 0; i < sig.Params().Len(); i++ {
		slots = append(slots, sig.Params().At(i))
	}
	return slots
}

// taintSummaries computes (once per Program) the module-wide function
// summaries by iterating per-function dataflow to an interprocedural
// fixpoint.
func taintSummaries(prog *Program) map[*types.Func]*taintSummary {
	return prog.Cached("secrettaint.summaries", func() any {
		sums := make(map[*types.Func]*taintSummary)
		// The cap bounds pathological call chains; the loop exits as soon
		// as a round changes nothing, so the common cost is 2-3 rounds.
		// Module-wide chains (PRF state -> collect -> hash -> error) need
		// more rounds than a single package does — keep this high enough
		// that whole-module runs converge to the same findings as
		// per-package gate tests.
		for round := 0; round < 16; round++ {
			changed := false
			for _, pkg := range prog.Pkgs {
				for _, node := range prog.Funcs(pkg) {
					g := node.CFG()
					if g == nil {
						continue
					}
					slots := funcSlots(node.Fn)
					ts := &taintScan{
						prog:      prog,
						pkg:       node.Pkg,
						fn:        node,
						slots:     slots,
						summaries: sums,
						sinkHits:  NewBitSet(len(slots)),
						sinkKinds: make(map[int]string),
						retTaint:  NewBitSet(len(slots) + 1),
					}
					Forward(g, FlowProblem[taintState](ts))
					sum := &taintSummary{
						flows:        make([]bool, len(slots)),
						sinks:        make([]string, len(slots)),
						resultSecret: ts.retTaint.Has(taintBitSecret),
					}
					for i := range slots {
						sum.flows[i] = ts.retTaint.Has(i + 1)
						sum.sinks[i] = ts.sinkKinds[i]
					}
					if prev, ok := sums[node.Fn]; !ok || !sum.equal(prev) {
						sums[node.Fn] = sum
						changed = true
					}
				}
			}
			if !changed {
				break
			}
		}
		return sums
	}).(map[*types.Func]*taintSummary)
}

func runSecretTaint(pass *Pass) {
	prog := pass.Prog
	if prog == nil {
		prog = NewProgram([]*Package{pass.Pkg})
	}
	sums := taintSummaries(prog)
	for _, node := range prog.Funcs(pass.Pkg) {
		g := node.CFG()
		if g == nil {
			continue
		}
		reported := make(map[string]bool)
		emit := func(pos token.Pos, format string, args ...any) {
			key := fmt.Sprintf("%d|%s", pos, fmt.Sprintf(format, args...))
			if reported[key] {
				return
			}
			reported[key] = true
			pass.Reportf(pos, format, args...)
		}
		ts := &taintScan{
			prog:        prog,
			pkg:         pass.Pkg,
			fn:          node,
			slots:       funcSlots(node.Fn),
			summaries:   sums,
			seedSecrets: true,
			emit:        emit,
		}
		Forward(g, FlowProblem[taintState](ts))
	}
}
