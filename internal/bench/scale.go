package bench

import (
	"fmt"

	"slicer/internal/core"
)

// Scale fixes an experiment sweep. Quick finishes in minutes on a laptop;
// Full reproduces the paper's exact record counts (and takes correspondingly
// long — the paper's own 24-bit ADS builds were the slow case too).
type Scale struct {
	Name string
	// Counts is the record-count sweep (x axis of Figs. 3–6).
	Counts []int
	// Bits are the value widths evaluated.
	Bits []int
	// OrderBits restricts the order-search figures (the paper plots 8/16).
	OrderBits []int
	// InsertPreload is the record count pre-loaded before Fig. 7.
	InsertPreload int
	// InsertCounts is the inserted-batch sweep of Fig. 7.
	InsertCounts []int
	// Queries is how many random queries each search point averages over.
	Queries int
	// TrapdoorBits / AccumulatorBits size the RSA moduli.
	TrapdoorBits    int
	AccumulatorBits int
}

// Quick is the default scaled-down sweep.
var Quick = Scale{
	Name:            "quick",
	Counts:          []int{1000, 2000, 4000, 8000},
	Bits:            []int{8, 16},
	OrderBits:       []int{8, 16},
	InsertPreload:   8000,
	InsertCounts:    []int{250, 500, 1000, 2000},
	Queries:         5,
	TrapdoorBits:    512,
	AccumulatorBits: 512,
}

// Full mirrors the paper's sweep (10K–160K records, 8/16/24-bit values).
var Full = Scale{
	Name:            "full",
	Counts:          []int{10000, 20000, 40000, 80000, 160000},
	Bits:            []int{8, 16, 24},
	OrderBits:       []int{8, 16},
	InsertPreload:   160000,
	InsertCounts:    []int{2000, 4000, 8000, 16000, 32000},
	Queries:         5,
	TrapdoorBits:    1024,
	AccumulatorBits: 1024,
}

// ScaleByName resolves a scale flag value.
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "", "quick":
		return Quick, nil
	case "full":
		return Full, nil
	default:
		return Scale{}, fmt.Errorf("bench: unknown scale %q (want quick or full)", name)
	}
}

// Params builds core parameters for a bit width under this scale.
func (s Scale) Params(bits int) core.Params {
	return core.Params{
		Bits:            bits,
		TrapdoorBits:    s.TrapdoorBits,
		AccumulatorBits: s.AccumulatorBits,
	}
}
