package bench

import (
	"crypto/rand"
	"fmt"

	"slicer/internal/chain"
	"slicer/internal/contract"
	"slicer/internal/core"
	"slicer/internal/workload"
)

// Table2 reproduces Table II: gas cost of contract deployment, data
// insertion (ADS digest refresh) and result verification on the chain
// substrate. The paper's Rinkeby numbers are 745,346 / 29,144 / 94,531 gas;
// the same ordering and magnitudes should hold here (see DESIGN.md for the
// substitution discussion).
func (r *Runner) Table2() (*Table, error) {
	r.progress("gas experiment (chain deployment + fair exchange) ...")
	params := core.Params{
		Bits:            8,
		TrapdoorBits:    r.scale.TrapdoorBits,
		AccumulatorBits: r.scale.AccumulatorBits,
	}
	db := workload.Generate(workload.Config{N: 1000, Bits: 8, Seed: 1})
	owner, err := core.NewOwner(params)
	if err != nil {
		return nil, err
	}
	out, err := owner.Build(db)
	if err != nil {
		return nil, err
	}
	cloud, err := core.NewCloud(owner.CloudInit(out.Index), core.WitnessCached)
	if err != nil {
		return nil, err
	}
	user, err := core.NewUser(owner.ClientState())
	if err != nil {
		return nil, err
	}

	registry := chain.NewRegistry()
	if err := contract.Register(registry); err != nil {
		return nil, err
	}
	ownerAddr := chain.AddressFromString("gas-owner")
	userAddr := chain.AddressFromString("gas-user")
	cloudAddr := chain.AddressFromString("gas-cloud")
	validators := []chain.Address{chain.AddressFromString("gas-validator")}
	network, err := chain.NewNetwork(registry, validators, map[chain.Address]uint64{
		ownerAddr: 1 << 40, userAddr: 1 << 40, cloudAddr: 1 << 40,
	})
	if err != nil {
		return nil, err
	}
	mine := func(tx *chain.Transaction) (*chain.Receipt, error) {
		if err := network.SubmitTx(tx); err != nil {
			return nil, err
		}
		if _, err := network.Step(); err != nil {
			return nil, err
		}
		rc, ok := network.Leader().Receipt(tx.Hash())
		if !ok {
			return nil, fmt.Errorf("bench: receipt missing")
		}
		if !rc.Status {
			return nil, fmt.Errorf("bench: tx reverted: %s", rc.Err)
		}
		return rc, nil
	}
	node := network.Leader()

	// Deployment.
	deployRc, err := mine(contract.DeployTx(ownerAddr, 0, owner.AccumulatorPub().Marshal(), owner.Ac(), 50_000_000))
	if err != nil {
		return nil, err
	}
	contractAddr := deployRc.ContractAddress

	// Data insertion: refresh the Ac digest after an owner-side insert.
	// Run it twice and report the steady-state (reset) cost like the paper.
	var insertGas uint64
	for i := 0; i < 2; i++ {
		up, err := owner.Insert(workload.Generate(workload.Config{
			N: 10, Bits: 8, Seed: int64(100 + i), FirstID: uint64(2000 + 1000*i),
		}))
		if err != nil {
			return nil, err
		}
		if err := cloud.ApplyUpdate(up); err != nil {
			return nil, err
		}
		user.UpdateStates(owner.StatesSnapshot())
		rc, err := mine(&chain.Transaction{
			From: ownerAddr, To: contractAddr, Nonce: node.NextNonce(ownerAddr),
			GasLimit: 1_000_000, Data: contract.SetAcData(owner.Ac()),
		})
		if err != nil {
			return nil, err
		}
		insertGas = rc.GasUsed
	}

	// Result verification: escrow + submit for an equality search.
	req, err := user.Token(core.Equal(db[0].Attrs[0].Value))
	if err != nil {
		return nil, err
	}
	th, err := contract.TokensHash(req.Tokens)
	if err != nil {
		return nil, err
	}
	var reqID chain.Hash
	if _, err := rand.Read(reqID[:]); err != nil {
		return nil, err
	}
	if _, err := mine(&chain.Transaction{
		From: userAddr, To: contractAddr, Nonce: node.NextNonce(userAddr),
		Value: 1000, GasLimit: 1_000_000, Data: contract.RequestData(reqID, cloudAddr, th),
	}); err != nil {
		return nil, err
	}
	resp, err := cloud.Search(req)
	if err != nil {
		return nil, err
	}
	data, err := contract.SubmitData(reqID, owner.AccumulatorPub().Marshal(), owner.Ac(), resp.Results)
	if err != nil {
		return nil, err
	}
	verifyRc, err := mine(&chain.Transaction{
		From: cloudAddr, To: contractAddr, Nonce: node.NextNonce(cloudAddr),
		GasLimit: 50_000_000, Data: data,
	})
	if err != nil {
		return nil, err
	}
	if len(verifyRc.ReturnData) != 1 || verifyRc.ReturnData[0] != 1 {
		return nil, fmt.Errorf("bench: gas experiment verification failed on chain")
	}

	t := &Table{
		ID:      "table2",
		Title:   "Gas cost of smart contract",
		Headers: []string{"operation", "gas (measured)", "gas (paper, Rinkeby)"},
	}
	t.AddRow("Deployment", fmt.Sprintf("%d", deployRc.GasUsed), "745,346")
	t.AddRow("Data insertion", fmt.Sprintf("%d", insertGas), "29,144")
	t.AddRow("Result verification", fmt.Sprintf("%d", verifyRc.GasUsed), "94,531")
	t.AddNote("equality search over a 1000-record 8-bit database; %d-bit accumulator modulus", r.scale.AccumulatorBits)
	t.AddNote("insertion stores a 32-byte Ac digest (constant cost regardless of batch size)")
	return t, nil
}
