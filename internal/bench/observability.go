package bench

import (
	"fmt"
	"sort"
	"time"

	"slicer/internal/core"
	"slicer/internal/obs"
	"slicer/internal/wire"
)

// AblationObservability measures what the telemetry layer itself costs and
// shows what it buys: a real wire cloud server is driven over loopback and
// the sliding-window quantile view of rpc:cloud.search is reported next to
// the mean, so the artifact records live p50/p90/p99/p999 for the search
// RPC. The overhead row compares the same queries against an
// un-instrumented server — the telemetry tax on the full RPC path.
func (r *Runner) AblationObservability() (*Table, error) {
	r.progress("ablation: observability — windowed quantiles and telemetry overhead ...")
	bits := r.scale.Bits[0]
	count := r.scale.Counts[0]
	d, err := r.ensure(bits, count)
	if err != nil {
		return nil, err
	}
	queries := r.scale.Queries
	values := d.queryValues(bits, queries, true)

	// Reuse the runner's registry when the harness attached one (so the
	// windowed gauges land in the per-experiment obs delta); otherwise the
	// experiment is self-contained.
	reg := r.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}

	// Both servers host byte-identical clouds: the memoized deployment's
	// state, restored from one snapshot.
	snap, err := d.cloud.Marshal()
	if err != nil {
		return nil, err
	}

	run := func(reg *obs.Registry) (time.Duration, error) {
		srv := wire.NewCloudServer()
		if reg != nil {
			srv.SetObservability(reg, obs.Nop())
		}
		if err := srv.Restore(snap); err != nil {
			return 0, fmt.Errorf("restore: %w", err)
		}
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			return 0, err
		}
		defer srv.Close()
		cli, err := wire.DialCloud(addr)
		if err != nil {
			return 0, err
		}
		defer cli.Close()
		// One untimed query absorbs per-server warm-up (witness caches,
		// modexp tables) so the timed loop compares steady states.
		warm, err := d.user.Token(core.Query{Op: core.OpEqual, Value: values[0]})
		if err != nil {
			return 0, err
		}
		if _, err := cli.Search(warm); err != nil {
			return 0, err
		}
		// Median per-query RPC time: witness cost varies per value, so the
		// median compares the telemetry tax without outlier noise.
		durs := make([]time.Duration, 0, queries)
		for _, v := range values {
			req, err := d.user.Token(core.Query{Op: core.OpEqual, Value: v})
			if err != nil {
				return 0, err
			}
			start := time.Now()
			if _, err := cli.Search(req); err != nil {
				return 0, err
			}
			durs = append(durs, time.Since(start))
		}
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		return durs[len(durs)/2], nil
	}

	instrumented, err := run(reg)
	if err != nil {
		return nil, err
	}
	bare, err := run(nil)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:      "ablation-observability",
		Title:   "Telemetry layer: windowed search quantiles and overhead",
		Headers: []string{"series", "calls", "p50", "p90", "p99", "p999", "median RPC"},
	}
	series := wire.RPCDurationSeries("cloud", wire.MethodCloudSearch)
	win, ok := reg.WindowSnapshotFor(series)
	if !ok {
		return nil, fmt.Errorf("windowed series %s not registered", series)
	}
	ms := func(s float64) string { return fmt.Sprintf("%.3fms", s*1e3) }
	t.AddRow("rpc:cloud.search (windowed)", fmt.Sprintf("%d", win.Count),
		ms(win.P50), ms(win.P90), ms(win.P99), ms(win.P999), fmtDur(instrumented))
	t.AddRow("rpc:cloud.search (uninstrumented)", fmt.Sprintf("%d", queries),
		"-", "-", "-", "-", fmtDur(bare))
	overhead := float64(instrumented-bare) / float64(bare) * 100
	t.Notes = append(t.Notes,
		fmt.Sprintf("quantiles from the %d×%s sliding-window histogram merged at read time; estimator error is bounded by the containing bucket width",
			obs.DefWindowSubCount, obs.DefWindowSubWidth),
		fmt.Sprintf("telemetry overhead on the median search RPC: %+.1f%% (labeled vectors + windowed histogram + exemplars)", overhead),
	)
	return t, nil
}
