package bench

import (
	"fmt"
	"math/big"
	"strconv"
	"time"

	"slicer/internal/accumulator"
)

// AblationFastpath measures the public-path big-number fast paths in
// isolation: exponent aggregation (one modexp with exponent Πx via a
// product tree) and Lim–Lee fixed-base combs against the naive
// one-modexp-per-prime accumulate, and the memoized witness tree against
// per-query MemWit. Every fast result is checked against the naive one —
// the paths are required to agree bit for bit.
func (r *Runner) AblationFastpath() (*Table, error) {
	r.progress("ablation: big-number fast paths ...")
	params, err := accumulator.Setup(r.scale.AccumulatorBits)
	if err != nil {
		return nil, err
	}
	pp := params.Public()
	t := &Table{
		ID:      "ablation-fastpath",
		Title:   "Big-number fast paths: aggregation, fixed-base comb, witness tree",
		Headers: []string{"|X|", "naive accumulate", "aggregated", "comb (incl. build)", "MemWit (one)", "tree witness (amortized)"},
	}
	const sample = 8
	for _, n := range []int{256, 1024, 4096} {
		primes := randomPrimes(n)

		start := time.Now()
		naive := new(big.Int).Set(pp.G)
		for _, x := range primes {
			naive.Exp(naive, x, pp.N)
		}
		naiveDur := time.Since(start)

		start = time.Now()
		agg := pp.Accumulate(primes)
		aggDur := time.Since(start)

		start = time.Now()
		e := accumulator.Product(primes)
		fb, err := pp.NewFixedBase(pp.G, e.BitLen(), 0)
		if err != nil {
			return nil, err
		}
		comb := fb.Exp(e)
		combDur := time.Since(start)

		if naive.Cmp(agg) != 0 || naive.Cmp(comb) != 0 {
			return nil, fmt.Errorf("bench: accumulate fast paths disagree at n=%d", n)
		}

		start = time.Now()
		w, err := pp.MemWit(primes, primes[n/2])
		if err != nil {
			return nil, err
		}
		memDur := time.Since(start)

		start = time.Now()
		tree := pp.NewWitnessTree(primes, nil)
		for i := 0; i < sample; i++ {
			idx := i * n / sample
			tw := tree.Witness(idx)
			if idx == n/2 && tw.Cmp(w) != 0 {
				return nil, fmt.Errorf("bench: tree witness disagrees with MemWit at n=%d", n)
			}
		}
		treeDur := time.Since(start) / sample

		t.AddRow(strconv.Itoa(n), fmt.Sprint(naiveDur), fmt.Sprint(aggDur),
			fmt.Sprint(combDur), fmt.Sprint(memDur), fmt.Sprint(treeDur))
	}
	t.AddNote(fmt.Sprintf("aggregated folds all primes into one exponent with a product tree; comb adds Lim–Lee fixed-base tables for the generator (build cost included); tree column amortizes %d witness queries sharing ancestor exponentiations", sample))
	return t, nil
}
