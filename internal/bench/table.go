// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (§VII), plus the ablation experiments
// DESIGN.md calls out. Each experiment returns a Table whose rows mirror
// the series the paper plots; cmd/slicer-bench prints them and
// EXPERIMENTS.md records paper-vs-measured values.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's output: a titled grid of rows.
type Table struct {
	ID      string
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a footnote.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// FprintCSV renders the table as CSV (headers first, notes as trailing
// comment lines) for plotting pipelines.
func (t *Table) FprintCSV(w io.Writer) {
	fmt.Fprintf(w, "# %s — %s\n", t.ID, t.Title)
	fmt.Fprintln(w, strings.Join(t.Headers, ","))
	for _, row := range t.Rows {
		cells := make([]string, len(row))
		for i, c := range row {
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			cells[i] = c
		}
		fmt.Fprintln(w, strings.Join(cells, ","))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "# note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// FprintJSON renders the table as one JSON object per line (headers mapped
// to cells), for machine consumption alongside observability deltas.
func (t *Table) FprintJSON(w io.Writer) {
	type jsonTable struct {
		ID      string     `json:"id"`
		Title   string     `json:"title"`
		Headers []string   `json:"headers"`
		Rows    [][]string `json:"rows"`
		Notes   []string   `json:"notes,omitempty"`
	}
	enc := json.NewEncoder(w)
	_ = enc.Encode(jsonTable{ID: t.ID, Title: t.Title, Headers: t.Headers, Rows: t.Rows, Notes: t.Notes})
}

// FprintMarkdown renders the table as a GitHub-flavored markdown table.
func (t *Table) FprintMarkdown(w io.Writer) {
	fmt.Fprintf(w, "### %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Headers, " | "))
	seps := make([]string, len(t.Headers))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "\n*note: %s*\n", n)
	}
	fmt.Fprintln(w)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Headers)
	total := 2
	for _, wd := range widths {
		total += wd + 2
	}
	fmt.Fprintf(w, "  %s\n", strings.Repeat("-", total-2))
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}
