package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"time"

	"slicer/internal/core"
	"slicer/internal/shard"
	"slicer/internal/wire"
	"slicer/internal/workload"
)

// AblationShards measures the sharded cloud tier: the same database served
// by one shard versus a three-shard fleet behind the scatter-gather router,
// over real loopback RPC in both cases (so the comparison isolates fan-out
// cost, not serialization). Every routed response is asserted byte-identical
// to an embedded single cloud before its timing counts.
func (r *Runner) AblationShards() (*Table, error) {
	r.progress("ablation: single shard vs scatter-gather fleet ...")
	const bits = 16
	n := r.scale.Counts[0]
	db := workload.Generate(workload.Config{N: n, Bits: bits, Seed: 77})
	owner, err := core.NewOwner(r.scale.Params(bits))
	if err != nil {
		return nil, err
	}
	out, err := owner.Build(db)
	if err != nil {
		return nil, err
	}
	user, err := core.NewUser(owner.ClientState())
	if err != nil {
		return nil, err
	}
	reference, err := core.NewCloud(owner.CloudInit(out.Index), core.WitnessCached)
	if err != nil {
		return nil, err
	}
	maxV := uint64(1)<<bits - 1
	orderReq, err := user.Token(core.Less(maxV / 2))
	if err != nil {
		return nil, err
	}
	eqReq, err := user.Token(core.Equal(db[n/2].Attrs[0].Value))
	if err != nil {
		return nil, err
	}
	wantOrder, err := reference.Search(orderReq)
	if err != nil {
		return nil, err
	}
	wantOrderRaw, err := json.Marshal(wantOrder)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:      "ablation-shards",
		Title:   fmt.Sprintf("Sharded cloud: 1 vs 3 shards behind the router (%d-bit, %d records)", bits, n),
		Headers: []string{"shards", "init (split+ship)", "order search", "equality search", "max entries/shard"},
	}
	const reps = 3
	for _, nShards := range []int{1, 3} {
		var servers []*wire.CloudServer
		var specs []shard.ShardSpec
		for i := 0; i < nShards; i++ {
			srv := wire.NewCloudServer()
			addr, err := srv.Listen("127.0.0.1:0")
			if err != nil {
				return nil, err
			}
			servers = append(servers, srv)
			specs = append(specs, shard.ShardSpec{ID: fmt.Sprintf("s%d", i+1), Addr: addr})
		}
		router, err := shard.NewRouter(shard.Options{Shards: specs})
		if err != nil {
			return nil, err
		}
		addr, err := router.Listen("127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		cli, err := wire.DialCloud(addr)
		if err != nil {
			return nil, err
		}

		start := time.Now()
		if err := cli.Init(owner.CloudInit(out.Index), true); err != nil {
			return nil, err
		}
		initDur := time.Since(start)

		measure := func(req *core.SearchRequest, want []byte) (time.Duration, error) {
			var total time.Duration
			for i := 0; i < reps; i++ {
				start := time.Now()
				resp, err := cli.Search(req)
				if err != nil {
					return 0, err
				}
				total += time.Since(start)
				if want != nil {
					raw, err := json.Marshal(resp)
					if err != nil {
						return 0, err
					}
					if !bytes.Equal(raw, want) {
						return 0, fmt.Errorf("bench: %d-shard response differs from single cloud", nShards)
					}
				}
			}
			return total / reps, nil
		}
		orderDur, err := measure(orderReq, wantOrderRaw)
		if err != nil {
			return nil, err
		}
		eqDur, err := measure(eqReq, nil)
		if err != nil {
			return nil, err
		}

		maxEntries := 0
		statuses, err := router.ShardStats()
		if err != nil {
			return nil, err
		}
		for _, st := range statuses {
			if st.Stats != nil && st.Stats.IndexEntries > maxEntries {
				maxEntries = st.Stats.IndexEntries
			}
		}
		t.AddRow(strconv.Itoa(nShards), fmt.Sprint(initDur),
			fmt.Sprint(orderDur), fmt.Sprint(eqDur), strconv.Itoa(maxEntries))

		_ = cli.Close()
		_ = router.Close()
		for _, srv := range servers {
			_ = srv.Close()
		}
	}
	t.AddNote("both rows speak real loopback RPC through the router; order responses are asserted byte-identical to an embedded single cloud; %d tokens per order query", len(orderReq.Tokens))
	return t, nil
}
