package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/big"
	"runtime"
	"strconv"
	"time"

	"slicer/internal/accumulator"
	"slicer/internal/baseline"
	"slicer/internal/chain"
	"slicer/internal/core"
	"slicer/internal/hprime"
	"slicer/internal/prf"
	"slicer/internal/sore"
	"slicer/internal/workload"
)

// AblationORE compares SORE against the CLWW ORE and OPE baselines:
// encryption time, ciphertext size and comparison time. It motivates the
// "succinct" design — SORE pays a set-membership comparison to gain
// keyword-izability, while keeping ciphertext growth linear in b like CLWW.
func (r *Runner) AblationORE() (*Table, error) {
	r.progress("ablation: ORE scheme comparison ...")
	const samples = 2000
	t := &Table{
		ID:      "ablation-ore",
		Title:   "SORE vs CLWW ORE vs OPE (16-bit values)",
		Headers: []string{"scheme", "encrypt/op", "ciphertext", "compare/op", "keyword-searchable"},
	}
	key, err := prf.NewKey()
	if err != nil {
		return nil, err
	}
	values := workload.Generate(workload.Config{N: samples, Bits: 16, Seed: 9})

	// SORE.
	s, err := sore.New(key, 16)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	soreCTs := make([]sore.Ciphertext, samples)
	for i, rec := range values {
		soreCTs[i], err = s.Encrypt(rec.Attrs[0].Value)
		if err != nil {
			return nil, err
		}
	}
	soreEnc := time.Since(start) / samples
	tok, err := s.Token(1<<15, sore.Greater)
	if err != nil {
		return nil, err
	}
	start = time.Now()
	for _, ct := range soreCTs {
		sore.Compare(ct, tok)
	}
	soreCmp := time.Since(start) / samples
	t.AddRow("SORE", fmt.Sprint(soreEnc), fmt.Sprintf("%dB", s.CiphertextSize()), fmt.Sprint(soreCmp), "yes (tuple = keyword)")

	// CLWW.
	cl, err := baseline.NewCLWW(key, 16)
	if err != nil {
		return nil, err
	}
	start = time.Now()
	clCTs := make([]baseline.CLWWCiphertext, samples)
	for i, rec := range values {
		clCTs[i], err = cl.Encrypt(rec.Attrs[0].Value)
		if err != nil {
			return nil, err
		}
	}
	clEnc := time.Since(start) / samples
	ref, err := cl.Encrypt(1 << 15)
	if err != nil {
		return nil, err
	}
	start = time.Now()
	for _, ct := range clCTs {
		baseline.Compare(ct, ref)
	}
	clCmp := time.Since(start) / samples
	t.AddRow("CLWW ORE", fmt.Sprint(clEnc), fmt.Sprintf("%dB", cl.CiphertextSize()), fmt.Sprint(clCmp), "no (positional compare)")

	// OPE.
	ope := baseline.NewOPE(11)
	start = time.Now()
	opeCTs := make([]uint64, samples)
	for i, rec := range values {
		opeCTs[i], err = ope.Encrypt(rec.Attrs[0].Value)
		if err != nil {
			return nil, err
		}
	}
	opeEnc := time.Since(start) / samples
	refCode, err := ope.Encrypt(1 << 15)
	if err != nil {
		return nil, err
	}
	start = time.Now()
	for _, ct := range opeCTs {
		ope.Compare(ct, refCode)
	}
	opeCmp := time.Since(start) / samples
	t.AddRow("OPE", fmt.Sprint(opeEnc), "8B", fmt.Sprint(opeCmp), "no (and leaks total order)")
	t.AddNote("averaged over %d encryptions/comparisons", samples)
	return t, nil
}

// AblationTraversal compares SORE order search against the naive per-value
// keyword traversal the paper's introduction rules out, over growing range
// widths.
func (r *Runner) AblationTraversal() (*Table, error) {
	r.progress("ablation: range search vs keyword traversal ...")
	const bits = 16
	d, err := r.ensure(bits, r.scale.Counts[0])
	if err != nil {
		return nil, err
	}
	trav := baseline.NewTraversal(d.user, d.cloud, bits)
	t := &Table{
		ID:    "ablation-traversal",
		Title: "Order search (SORE slices) vs per-value keyword traversal (16-bit)",
		Headers: []string{"range width", "SORE tokens", "SORE time",
			"traversal tokens", "traversal time"},
	}
	maxV := uint64(1)<<bits - 1
	for _, width := range []uint64{16, 256, 4096, 65535} {
		hi := maxV
		lo := hi - width + 1
		// SORE: records > lo-1 (one one-sided query covers the top-anchored
		// range).
		req, err := d.user.Token(core.Query{Op: core.OpGreater, Value: lo - 1})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		resp, err := d.cloud.SearchResults(req)
		if err != nil {
			return nil, err
		}
		soreTime := time.Since(start)
		soreIDs, err := d.user.Decrypt(resp)
		if err != nil {
			return nil, err
		}

		start = time.Now()
		travIDs, travTokens, err := trav.RangeSearch("", lo, hi)
		if err != nil {
			return nil, err
		}
		travTime := time.Since(start)
		if len(soreIDs) != len(travIDs) {
			return nil, fmt.Errorf("bench: traversal disagreement: %d vs %d ids", len(soreIDs), len(travIDs))
		}
		t.AddRow(strconv.FormatUint(width, 10),
			strconv.Itoa(len(req.Tokens)), fmt.Sprint(soreTime),
			strconv.Itoa(travTokens), fmt.Sprint(travTime))
	}
	t.AddNote("SORE issues at most b=%d tokens regardless of range width; traversal issues one per existing value", bits)
	return t, nil
}

// AblationRangeStrategy compares the two range-search strategies over the
// same database: two one-sided order queries intersected client-side (the
// paper's conditions) versus the prefix-cover index (this repository's
// extension).
func (r *Runner) AblationRangeStrategy() (*Table, error) {
	r.progress("ablation: range search strategies ...")
	const bits = 16
	const n = 2000
	db := workload.Generate(workload.Config{N: n, Bits: bits, Seed: 55})

	build := func(prefix bool) (*core.Owner, *core.User, *core.Cloud, error) {
		params := r.scale.Params(bits)
		params.PrefixIndex = prefix
		owner, err := core.NewOwner(params)
		if err != nil {
			return nil, nil, nil, err
		}
		out, err := owner.Build(db)
		if err != nil {
			return nil, nil, nil, err
		}
		cloud, err := core.NewCloud(owner.CloudInit(out.Index), core.WitnessOnDemand)
		if err != nil {
			return nil, nil, nil, err
		}
		user, err := core.NewUser(owner.ClientState())
		if err != nil {
			return nil, nil, nil, err
		}
		return owner, user, cloud, nil
	}
	_, sideUser, sideCloud, err := build(false)
	if err != nil {
		return nil, err
	}
	_, prefUser, prefCloud, err := build(true)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "ablation-range-strategy",
		Title: "Range search: two-sided intersection vs prefix cover (16-bit, 2000 records)",
		Headers: []string{"range width", "strategy", "tokens", "fetched records",
			"matching", "index entries/record"},
	}
	maxV := uint64(1)<<bits - 1
	for _, width := range []uint64{64, 1024, 16384} {
		lo := maxV/2 - width/2
		hi := lo + width - 1
		matching := len(workload.Answer(db, core.Query{Op: core.OpGreater, Value: lo - 1})) -
			len(workload.Answer(db, core.Query{Op: core.OpGreater, Value: hi}))

		// Two-sided: Greater(lo-1) and Less(hi+1), intersect client side.
		reqA, err := sideUser.Token(core.Greater(lo - 1))
		if err != nil {
			return nil, err
		}
		reqB, err := sideUser.Token(core.Less(hi + 1))
		if err != nil {
			return nil, err
		}
		fetched := 0
		for _, req := range []*core.SearchRequest{reqA, reqB} {
			resp, err := sideCloud.SearchResults(req)
			if err != nil {
				return nil, err
			}
			for _, res := range resp.Results {
				fetched += len(res.ER)
			}
		}
		t.AddRow(strconv.FormatUint(width, 10), "two-sided",
			strconv.Itoa(len(reqA.Tokens)+len(reqB.Tokens)),
			strconv.Itoa(fetched), strconv.Itoa(matching),
			strconv.Itoa(bits+1))

		// Prefix cover.
		req, err := prefUser.RangeTokens("", lo, hi)
		if err != nil {
			return nil, err
		}
		resp, err := prefCloud.SearchResults(req)
		if err != nil {
			return nil, err
		}
		fetched = 0
		for _, res := range resp.Results {
			fetched += len(res.ER)
		}
		t.AddRow(strconv.FormatUint(width, 10), "prefix-cover",
			strconv.Itoa(len(req.Tokens)), strconv.Itoa(fetched),
			strconv.Itoa(matching), strconv.Itoa(2*bits+1))
	}
	t.AddNote("two-sided fetches both one-sided result sets (over-fetch grows with n); prefix cover fetches exactly the matches at the cost of b extra index entries per record")
	return t, nil
}

// AblationAccumulator compares incremental accumulator updates against full
// recomputation, and the owner's trapdoor fast path against the public
// path.
func (r *Runner) AblationAccumulator() (*Table, error) {
	r.progress("ablation: accumulator update strategies ...")
	params, err := accumulator.Setup(r.scale.AccumulatorBits)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "ablation-accumulator",
		Title:   "Accumulator update: full recompute vs incremental vs owner fast path",
		Headers: []string{"|X|", "+new", "full recompute", "incremental", "owner fast path"},
	}
	for _, base := range []int{512, 2048} {
		primes := randomPrimes(base + 64)
		baseSet, newSet := primes[:base], primes[base:]
		ac := params.Public().Accumulate(baseSet)

		start := time.Now()
		full := params.Public().Accumulate(primes)
		fullDur := time.Since(start)

		start = time.Now()
		incr := params.Public().Add(ac, newSet)
		incrDur := time.Since(start)

		start = time.Now()
		fast, err := params.AddFast(ac, newSet)
		if err != nil {
			return nil, err
		}
		fastDur := time.Since(start)

		if full.Cmp(incr) != 0 || full.Cmp(fast) != 0 {
			return nil, fmt.Errorf("bench: accumulator strategies disagree")
		}
		t.AddRow(strconv.Itoa(base), "64", fmt.Sprint(fullDur), fmt.Sprint(incrDur), fmt.Sprint(fastDur))
	}
	t.AddNote("incremental = Ac^(Πx⁺); owner fast path reduces the exponent mod φ(n) first")
	return t, nil
}

// AblationWitness compares per-query on-demand witness generation (O(|X|)
// modexps each) against RootFactor batch precomputation (O(|X| log |X|)
// for all witnesses at once).
func (r *Runner) AblationWitness() (*Table, error) {
	r.progress("ablation: witness generation strategies ...")
	params, err := accumulator.Setup(r.scale.AccumulatorBits)
	if err != nil {
		return nil, err
	}
	pp := params.Public()
	t := &Table{
		ID:      "ablation-witness",
		Title:   "VO generation: on-demand MemWit vs RootFactor batch precompute",
		Headers: []string{"|X|", "one on-demand witness", "RootFactor (all |X|)", "amortized per witness"},
	}
	for _, n := range []int{256, 1024, 4096} {
		primes := randomPrimes(n)
		start := time.Now()
		w, err := pp.MemWit(primes, primes[n/2])
		if err != nil {
			return nil, err
		}
		onDemand := time.Since(start)

		start = time.Now()
		all := pp.RootFactor(primes)
		batch := time.Since(start)
		if all[n/2].Cmp(w) != 0 {
			return nil, fmt.Errorf("bench: RootFactor and MemWit disagree")
		}
		t.AddRow(strconv.Itoa(n), fmt.Sprint(onDemand), fmt.Sprint(batch),
			fmt.Sprint(batch/time.Duration(n)))
	}
	t.AddNote("cached mode (default cloud) uses RootFactor once per build, then answers VOs by lookup")
	return t, nil
}

// AblationWitnessMaintenance compares cached-witness maintenance
// strategies on insert, driving real Cloud instances end to end: the eager
// strategy pays inside ApplyUpdate (refresh every cached witness, or
// RootFactor rebuild for large batches), while the default lazy strategy
// journals one batch product per update and each witness folds its pending
// exponents only when next served — so the first search after an update
// carries the fold cost.
func (r *Runner) AblationWitnessMaintenance() (*Table, error) {
	r.progress("ablation: witness maintenance on insert ...")
	const bits = 8
	db := workload.Generate(workload.Config{N: 200, Bits: bits, Seed: 1201})
	owner, err := core.NewOwner(r.scale.Params(bits))
	if err != nil {
		return nil, err
	}
	out, err := owner.Build(db)
	if err != nil {
		return nil, err
	}
	newCloud := func(eager bool) (*core.Cloud, error) {
		st := owner.CloudInit(out.Index)
		st.Params.EagerWitnessRefresh = eager
		return core.NewCloud(st, core.WitnessCached)
	}
	eager, err := newCloud(true)
	if err != nil {
		return nil, err
	}
	lazy, err := newCloud(false)
	if err != nil {
		return nil, err
	}
	user, err := core.NewUser(owner.ClientState())
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "ablation-witness-maintenance",
		Title:   "Cached-witness maintenance on insert: eager vs lazy journal",
		Headers: []string{"records⁺", "|X⁺|", "eager update", "lazy update", "lazy 1st search", "eager search"},
	}
	q := core.Greater(1 << (bits - 1))
	nextID := uint64(100_000)
	for _, added := range []int{1, 8, 32} {
		batch := workload.Generate(workload.Config{
			N: added, Bits: bits, Seed: int64(added) * 31, FirstID: nextID,
		})
		nextID += uint64(added)
		upd, err := owner.Insert(batch)
		if err != nil {
			return nil, err
		}

		start := time.Now()
		if err := eager.ApplyUpdate(upd); err != nil {
			return nil, err
		}
		eagerUpd := time.Since(start)

		start = time.Now()
		if err := lazy.ApplyUpdate(upd); err != nil {
			return nil, err
		}
		lazyUpd := time.Since(start)

		req, err := user.Token(q)
		if err != nil {
			return nil, err
		}
		start = time.Now()
		respL, err := lazy.Search(req)
		if err != nil {
			return nil, err
		}
		lazySearch := time.Since(start)

		start = time.Now()
		respE, err := eager.Search(req)
		if err != nil {
			return nil, err
		}
		eagerSearch := time.Since(start)

		rawL, _ := json.Marshal(respL)
		rawE, _ := json.Marshal(respE)
		if !bytes.Equal(rawL, rawE) {
			return nil, fmt.Errorf("bench: lazy and eager clouds served different responses")
		}
		t.AddRow(strconv.Itoa(added), strconv.Itoa(len(upd.Primes)),
			fmt.Sprint(eagerUpd), fmt.Sprint(lazyUpd),
			fmt.Sprint(lazySearch), fmt.Sprint(eagerSearch))
	}
	t.AddNote("eager refreshes every cached witness inside the update write lock (rebuilding via RootFactor past the crossover); lazy appends one journal entry per update and folds pending exponents into a witness when it is next served")
	return t, nil
}

// AblationVOvsMerkle compares the RSA accumulator's constant-size VO with a
// Merkle-tree inclusion proof over the same committed set — the design
// trade-off §III-B claims motivates the accumulator.
func (r *Runner) AblationVOvsMerkle() (*Table, error) {
	r.progress("ablation: accumulator VO vs Merkle proof ...")
	params, err := accumulator.Setup(r.scale.AccumulatorBits)
	if err != nil {
		return nil, err
	}
	pp := params.Public()
	t := &Table{
		ID:      "ablation-vo-merkle",
		Title:   "Verification object: RSA accumulator vs Merkle tree",
		Headers: []string{"|X|", "acc VO size", "acc verify", "merkle proof size", "merkle verify"},
	}
	for _, n := range []int{1024, 16384} {
		primes := randomPrimes(n)
		ac := params.Public().Accumulate(primes[:1]) // placeholder, replaced below
		acFast, err := params.AccumulateFast(primes)
		if err != nil {
			return nil, err
		}
		ac = acFast
		member := primes[n/3]
		wit, err := pp.MemWit(primes, member)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		const reps = 50
		for i := 0; i < reps; i++ {
			if !pp.VerifyMem(ac, member, wit) {
				return nil, fmt.Errorf("bench: accumulator verify failed")
			}
		}
		accVerify := time.Since(start) / reps

		leaves := make([]chain.Hash, n)
		for i, p := range primes {
			leaves[i] = chain.HashBytes(p.Bytes())
		}
		root := chain.MerkleRoot(leaves)
		proof, err := chain.ProveLeaf(leaves, n/3)
		if err != nil {
			return nil, err
		}
		start = time.Now()
		for i := 0; i < reps; i++ {
			if !chain.VerifyLeaf(root, leaves[n/3], proof) {
				return nil, fmt.Errorf("bench: merkle verify failed")
			}
		}
		merkleVerify := time.Since(start) / reps

		t.AddRow(strconv.Itoa(n),
			fmt.Sprintf("%dB", pp.Size()), fmt.Sprint(accVerify),
			fmt.Sprintf("%dB", len(proof.Siblings)*32), fmt.Sprint(merkleVerify))
	}
	t.AddNote("the accumulator VO is constant size and leaks nothing about the rest of X; the Merkle proof grows with log|X| and reveals sibling digests")
	return t, nil
}

// AblationParallelSearch measures the parallel search & verification
// pipeline: the same multi-token order query answered (Algorithm 4) and
// verified (Algorithm 5) at growing worker counts. Every parallel response
// is asserted byte-identical to the serial one, so the table isolates pure
// scheduling gains. Speedup is bounded by GOMAXPROCS — on a single-core
// host all rows collapse to ~1x.
func (r *Runner) AblationParallelSearch() (*Table, error) {
	r.progress("ablation: serial vs parallel search pipeline ...")
	const bits = 16
	d, err := r.ensure(bits, r.scale.Counts[0])
	if err != nil {
		return nil, err
	}
	req, err := d.user.Token(core.Query{Op: core.OpLess, Value: (uint64(1)<<bits - 1) / 3 * 2})
	if err != nil {
		return nil, err
	}
	defer d.cloud.SetSearchWorkers(0) // the deployment is shared across experiments
	pp, ac := d.owner.AccumulatorPub(), d.owner.Ac()
	t := &Table{
		ID:    "ablation-parallel-search",
		Title: "Serial vs parallel search & verification pipeline (16-bit order query)",
		Headers: []string{"workers", "search (Alg 4)", "verify (Alg 5)",
			"search speedup"},
	}
	const reps = 3
	var baseline time.Duration
	var serialRaw []byte
	for _, workers := range []int{1, 2, 4, 8} {
		if err := d.cloud.SetSearchWorkers(workers); err != nil {
			return nil, err
		}
		var resp *core.SearchResponse
		start := time.Now()
		for i := 0; i < reps; i++ {
			if resp, err = d.cloud.Search(req); err != nil {
				return nil, err
			}
		}
		searchTime := time.Since(start) / reps
		raw, err := json.Marshal(resp)
		if err != nil {
			return nil, err
		}
		if workers == 1 {
			baseline = searchTime
			serialRaw = raw
		} else if !bytes.Equal(raw, serialRaw) {
			return nil, fmt.Errorf("bench: workers=%d response differs from serial", workers)
		}
		start = time.Now()
		for i := 0; i < reps; i++ {
			if err := core.VerifyResponseWorkers(pp, ac, req, resp, workers); err != nil {
				return nil, err
			}
		}
		verifyTime := time.Since(start) / reps
		t.AddRow(strconv.Itoa(workers), fmt.Sprint(searchTime), fmt.Sprint(verifyTime),
			fmt.Sprintf("%.2fx", float64(baseline)/float64(searchTime)))
	}
	t.AddNote("%d tokens fanned per request; responses byte-identical across worker counts; GOMAXPROCS=%d on this host", len(req.Tokens), runtime.GOMAXPROCS(0))
	return t, nil
}

// randomPrimes derives n deterministic prime representatives.
func randomPrimes(n int) []*big.Int {
	out := make([]*big.Int, n)
	for i := range out {
		out[i] = hprime.Hash([]byte(fmt.Sprintf("bench-prime-%d", i)))
	}
	return out
}
