package bench

import (
	"bytes"
	"strings"
	"testing"
)

// tinyScale keeps the full experiment matrix runnable inside the unit test
// suite.
var tinyScale = Scale{
	Name:            "tiny",
	Counts:          []int{50, 100},
	Bits:            []int{8},
	OrderBits:       []int{8},
	InsertPreload:   100,
	InsertCounts:    []int{10, 20},
	Queries:         2,
	TrapdoorBits:    256,
	AccumulatorBits: 256,
}

// tinyScale16 covers the 16-bit paths the traversal ablation needs.
var tinyScale16 = Scale{
	Name:            "tiny16",
	Counts:          []int{50},
	Bits:            []int{16},
	OrderBits:       []int{16},
	InsertPreload:   50,
	InsertCounts:    []int{10},
	Queries:         1,
	TrapdoorBits:    256,
	AccumulatorBits: 256,
}

func TestAllExperimentsRun(t *testing.T) {
	runner := NewRunner(tinyScale)
	runner16 := NewRunner(tinyScale16)
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			r := runner
			if e.ID == "ablation-traversal" || e.ID == "ablation-ore" {
				r = runner16
			}
			table, err := e.Run(r)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if table.ID != e.ID {
				t.Errorf("table ID %q, want %q", table.ID, e.ID)
			}
			if len(table.Rows) == 0 {
				t.Errorf("%s produced no rows", e.ID)
			}
			for i, row := range table.Rows {
				if len(row) != len(table.Headers) {
					t.Errorf("%s row %d has %d cells for %d headers", e.ID, i, len(row), len(table.Headers))
				}
				for _, cell := range row {
					if cell == "" {
						t.Errorf("%s row %d has an empty cell", e.ID, i)
					}
				}
			}
			var buf bytes.Buffer
			table.Fprint(&buf)
			if !strings.Contains(buf.String(), e.ID) {
				t.Errorf("%s rendering lacks its ID", e.ID)
			}
		})
	}
}

func TestScaleByName(t *testing.T) {
	if _, err := ScaleByName("bogus"); err == nil {
		t.Error("unknown scale accepted")
	}
	q, err := ScaleByName("")
	if err != nil || q.Name != "quick" {
		t.Errorf("default scale = %q, %v", q.Name, err)
	}
	f, err := ScaleByName("full")
	if err != nil || f.Name != "full" {
		t.Errorf("full scale = %q, %v", f.Name, err)
	}
}

func TestFind(t *testing.T) {
	if _, err := Find("fig3a"); err != nil {
		t.Errorf("Find(fig3a): %v", err)
	}
	if _, err := Find("nope"); err == nil {
		t.Error("unknown experiment found")
	}
}

func TestTableRendering(t *testing.T) {
	table := &Table{
		ID:      "t",
		Title:   "title",
		Headers: []string{"a", "bbbb"},
	}
	table.AddRow("1", "2")
	table.AddRow("333", "4,quoted")
	table.AddNote("note %d", 7)

	var buf bytes.Buffer
	table.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"t — title", "a", "bbbb", "333", "note 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("text rendering lacks %q:\n%s", want, out)
		}
	}

	buf.Reset()
	table.FprintCSV(&buf)
	out = buf.String()
	for _, want := range []string{"a,bbbb", "1,2", `333,"4,quoted"`, "# note: note 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("csv rendering lacks %q:\n%s", want, out)
		}
	}

	buf.Reset()
	table.FprintMarkdown(&buf)
	out = buf.String()
	for _, want := range []string{"### t — title", "| a | bbbb |", "| --- | --- |", "| 333 | 4,quoted |", "*note: note 7*"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown rendering lacks %q:\n%s", want, out)
		}
	}
}
