package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"slicer/internal/durable"
)

// Artifact is the machine-readable record of one slicer-bench run
// (BENCH_<scale>.json): enough provenance to pin the numbers to a commit
// and enough data to compare two runs without re-parsing text tables.
type Artifact struct {
	Scale       string             `json:"scale"`
	GitSHA      string             `json:"gitSha"`
	GoVersion   string             `json:"goVersion"`
	GOOS        string             `json:"goos"`
	GOARCH      string             `json:"goarch"`
	Timestamp   string             `json:"timestamp"` // RFC 3339, UTC
	TotalMs     float64            `json:"totalMs"`
	Experiments []ExperimentResult `json:"experiments"`
}

// ExperimentResult is one experiment's contribution to an Artifact.
type ExperimentResult struct {
	ID      string             `json:"id"`
	Title   string             `json:"title"`
	WallMs  float64            `json:"wallMs"`
	Headers []string           `json:"headers,omitempty"`
	Rows    [][]string         `json:"rows,omitempty"`
	Notes   []string           `json:"notes,omitempty"`
	Delta   map[string]float64 `json:"delta,omitempty"`
}

// NewArtifact stamps provenance (git SHA, toolchain, time) for a run at the
// given scale. Experiments are appended by the caller as they complete.
func NewArtifact(scale string) *Artifact {
	return &Artifact{
		Scale:     scale,
		GitSHA:    gitSHA(),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Timestamp: time.Now().UTC().Format(time.RFC3339),
	}
}

// Add records one finished experiment.
func (a *Artifact) Add(e Experiment, t *Table, wall time.Duration, delta map[string]float64) {
	a.Experiments = append(a.Experiments, ExperimentResult{
		ID:      e.ID,
		Title:   e.Title,
		WallMs:  float64(wall) / float64(time.Millisecond),
		Headers: t.Headers,
		Rows:    t.Rows,
		Notes:   t.Notes,
		Delta:   delta,
	})
}

// WriteFile persists the artifact as indented JSON. The write is atomic so
// a crashed or interrupted benchmark run cannot leave a torn artifact that
// later comparisons would misparse.
func (a *Artifact) WriteFile(path string) error {
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	return durable.AtomicWriteFile(path, append(data, '\n'), 0o644)
}

// LoadArtifact reads an artifact written by WriteFile.
func LoadArtifact(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("parse artifact %s: %w", path, err)
	}
	return &a, nil
}

// CompareNoiseFloorMs is the wall time below which Compare ignores ratio
// regressions: sub-25ms experiments are dominated by scheduler noise.
const CompareNoiseFloorMs = 25

// Compare reports experiments in cur that ran more than factor times slower
// than the same experiment in base (and above the noise floor). Experiments
// present in only one artifact are skipped — adding or retiring an
// experiment is not a regression.
func Compare(base, cur *Artifact, factor float64) []string {
	baseline := make(map[string]float64, len(base.Experiments))
	for _, e := range base.Experiments {
		baseline[e.ID] = e.WallMs
	}
	var regressions []string
	for _, e := range cur.Experiments {
		was, ok := baseline[e.ID]
		if !ok || e.WallMs <= CompareNoiseFloorMs {
			continue
		}
		if was > 0 && e.WallMs > was*factor {
			regressions = append(regressions,
				fmt.Sprintf("%s: %.1fms vs baseline %.1fms (%.2fx > %.2fx allowed)",
					e.ID, e.WallMs, was, e.WallMs/was, factor))
		}
	}
	return regressions
}

// gitSHA resolves the commit being measured: the VCS stamp baked into the
// binary when built from a checkout, else a direct `git rev-parse`, else
// "unknown" (e.g. a source tarball).
func gitSHA() string {
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				return s.Value
			}
		}
	}
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err == nil {
		if sha := strings.TrimSpace(string(out)); sha != "" {
			return sha
		}
	}
	return "unknown"
}
