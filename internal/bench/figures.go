package bench

import (
	"fmt"
	"strconv"
	"time"

	"slicer/internal/core"
	"slicer/internal/workload"
)

// Fig3a reproduces Fig. 3a: time cost of index building vs record count.
func (r *Runner) Fig3a() (*Table, error) {
	t := &Table{
		ID:      "fig3a",
		Title:   "Build: index building time",
		Headers: append([]string{"records"}, bitHeaders(r.scale.Bits)...),
	}
	for _, count := range r.scale.Counts {
		row := []string{strconv.Itoa(count)}
		for _, bits := range r.scale.Bits {
			d, err := r.ensure(bits, count)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtDur(d.stats.IndexDuration))
		}
		t.AddRow(row...)
	}
	t.AddNote("expected shape: linear in record count for every bit setting (paper Fig. 3a)")
	return t, nil
}

// Fig3b reproduces Fig. 3b: time cost of ADS building vs record count.
func (r *Runner) Fig3b() (*Table, error) {
	t := &Table{
		ID:      "fig3b",
		Title:   "Build: ADS building time",
		Headers: append([]string{"records"}, bitHeaders(r.scale.Bits)...),
	}
	for _, count := range r.scale.Counts {
		row := []string{strconv.Itoa(count)}
		for _, bits := range r.scale.Bits {
			d, err := r.ensure(bits, count)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtDur(d.stats.ADSDuration))
		}
		t.AddRow(row...)
	}
	t.AddNote("expected shape: ~constant for 8-bit (saturated value space), growing for 16/24-bit (paper Fig. 3b)")
	return t, nil
}

// Fig4a reproduces Fig. 4a: index storage cost.
func (r *Runner) Fig4a() (*Table, error) {
	t := &Table{
		ID:      "fig4a",
		Title:   "Build: index storage",
		Headers: append([]string{"records"}, bitHeaders(r.scale.Bits)...),
	}
	for _, count := range r.scale.Counts {
		row := []string{strconv.Itoa(count)}
		for _, bits := range r.scale.Bits {
			d, err := r.ensure(bits, count)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtMB(d.cloud.IndexSizeBytes()))
		}
		t.AddRow(row...)
	}
	t.AddNote("expected shape: proportional to record count (each record maps to b+1 fixed-size entries)")
	return t, nil
}

// Fig4b reproduces Fig. 4b: ADS (prime list) storage cost.
func (r *Runner) Fig4b() (*Table, error) {
	t := &Table{
		ID:      "fig4b",
		Title:   "Build: ADS storage (prime list X)",
		Headers: append([]string{"records"}, bitHeaders(r.scale.Bits)...),
	}
	for _, count := range r.scale.Counts {
		row := []string{strconv.Itoa(count)}
		for _, bits := range r.scale.Bits {
			d, err := r.ensure(bits, count)
			if err != nil {
				return nil, err
			}
			row = append(row, fmtMB(d.cloud.ADSSizeBytes()))
		}
		t.AddRow(row...)
	}
	t.AddNote("expected shape: constant for 8-bit (value space saturated), linear-then-flattening for wider values")
	return t, nil
}

// Fig5a / Fig5b / Fig5c / Fig5d reproduce the search time figures: result
// generation and VO generation for equality and order queries.
func (r *Runner) Fig5a() (*Table, error) { return r.searchFigure("fig5a", core.OpEqual, false) }
func (r *Runner) Fig5b() (*Table, error) { return r.searchFigure("fig5b", core.OpEqual, true) }
func (r *Runner) Fig5c() (*Table, error) { return r.searchFigure("fig5c", core.OpLess, false) }
func (r *Runner) Fig5d() (*Table, error) { return r.searchFigure("fig5d", core.OpLess, true) }

func (r *Runner) searchFigure(id string, op core.Op, vo bool) (*Table, error) {
	kind := "equality"
	bits := r.scale.Bits
	if op != core.OpEqual {
		kind = "order"
		bits = r.scale.OrderBits
	}
	phase := "result generation"
	if vo {
		phase = "VO generation"
	}
	t := &Table{
		ID:      id,
		Title:   fmt.Sprintf("Search: %s time, %s search", phase, kind),
		Headers: append([]string{"records"}, bitHeaders(bits)...),
	}
	for _, count := range r.scale.Counts {
		row := []string{strconv.Itoa(count)}
		for _, b := range bits {
			m, err := r.searchPoint(b, count, op)
			if err != nil {
				return nil, err
			}
			if vo {
				row = append(row, fmtDur(m.voGen))
			} else {
				row = append(row, fmtDur(m.resultGen))
			}
		}
		t.AddRow(row...)
	}
	if vo {
		t.AddNote("VO generation computes one accumulator membership witness per token (Algorithm 4, on-demand mode)")
	}
	t.AddNote("averaged over %d random %s queries per point", r.scale.Queries, kind)
	return t, nil
}

// searchPoint memoizes per-(bits,count,op) measurements so the four Fig. 5
// sub-figures and the Fig. 6 overhead sweep do not re-run the queries.
func (r *Runner) searchPoint(bits, count int, op core.Op) (searchMetrics, error) {
	key := searchKey{bits: bits, count: count, equality: op == core.OpEqual}
	if m, ok := r.searchCache[key]; ok {
		return m, nil
	}
	d, err := r.ensure(bits, count)
	if err != nil {
		return searchMetrics{}, err
	}
	r.progress("searching (%s) %d-bit / %d records ...", map[bool]string{true: "equality", false: "order"}[key.equality], bits, count)
	m, err := r.measureSearch(d, bits, op)
	if err != nil {
		return searchMetrics{}, err
	}
	if r.searchCache == nil {
		r.searchCache = make(map[searchKey]searchMetrics)
	}
	r.searchCache[key] = m
	return m, nil
}

type searchKey struct {
	bits     int
	count    int
	equality bool
}

// Fig6a reproduces Fig. 6a: number of search tokens per order query.
func (r *Runner) Fig6a() (*Table, error) {
	t := &Table{
		ID:      "fig6a",
		Title:   "Search overhead: search tokens per order query",
		Headers: append([]string{"records"}, bitHeaders(r.scale.OrderBits)...),
	}
	for _, count := range r.scale.Counts {
		row := []string{strconv.Itoa(count)}
		for _, bits := range r.scale.OrderBits {
			m, err := r.searchPoint(bits, count, core.OpLess)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.1f", m.tokens))
		}
		t.AddRow(row...)
	}
	t.AddNote("bounded by the bit count b; 16-bit grows with records as the value space fills (paper Fig. 6a)")
	return t, nil
}

// Fig6b / Fig6c reproduce the encrypted-result size figures.
func (r *Runner) Fig6b() (*Table, error) { return r.resultSizeFigure("fig6b", core.OpEqual) }
func (r *Runner) Fig6c() (*Table, error) { return r.resultSizeFigure("fig6c", core.OpLess) }

func (r *Runner) resultSizeFigure(id string, op core.Op) (*Table, error) {
	kind := "equality"
	bits := r.scale.Bits
	if op != core.OpEqual {
		kind = "order"
		bits = r.scale.OrderBits
	}
	t := &Table{
		ID:      id,
		Title:   fmt.Sprintf("Search overhead: encrypted result size, %s search", kind),
		Headers: append([]string{"records"}, bitHeaders(bits)...),
	}
	for _, count := range r.scale.Counts {
		row := []string{strconv.Itoa(count)}
		for _, b := range bits {
			m, err := r.searchPoint(b, count, op)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.0fB (%.0f rec)", m.resultBytes, m.matched))
		}
		t.AddRow(row...)
	}
	t.AddNote("proportional to matched records (16 bytes per encrypted handle)")
	return t, nil
}

// Fig6d reproduces Fig. 6d: verification object size per order query.
func (r *Runner) Fig6d() (*Table, error) {
	t := &Table{
		ID:      "fig6d",
		Title:   "Search overhead: verification object size per order query",
		Headers: append([]string{"records"}, bitHeaders(r.scale.OrderBits)...),
	}
	for _, count := range r.scale.Counts {
		row := []string{strconv.Itoa(count)}
		for _, bits := range r.scale.OrderBits {
			m, err := r.searchPoint(bits, count, core.OpLess)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.0fB", m.voBytes))
		}
		t.AddRow(row...)
	}
	t.AddNote("one constant-size witness (%d bytes) per token; levels off once all b slices exist", r.scale.AccumulatorBits/8)
	return t, nil
}

// Fig7a / Fig7b reproduce the insertion time figures: index update and ADS
// update time after pre-loading InsertPreload records.
func (r *Runner) Fig7a() (*Table, error) { return r.insertFigure("fig7a", false) }
func (r *Runner) Fig7b() (*Table, error) { return r.insertFigure("fig7b", true) }

func (r *Runner) insertFigure(id string, ads bool) (*Table, error) {
	phase := "index"
	if ads {
		phase = "ADS"
	}
	t := &Table{
		ID:      id,
		Title:   fmt.Sprintf("Insert: %s update time (preload %d records)", phase, r.scale.InsertPreload),
		Headers: append([]string{"inserted"}, bitHeaders(r.scale.Bits)...),
	}
	// Measure all batch sizes per bit setting on one preloaded owner (each
	// batch inserts fresh IDs, so later batches see a larger state — the
	// paper's setup preloads once too).
	for _, bits := range r.scale.Bits {
		if err := r.insertSweep(bits); err != nil {
			return nil, err
		}
	}
	for i, inserted := range r.scale.InsertCounts {
		row := []string{strconv.Itoa(inserted)}
		for _, bits := range r.scale.Bits {
			var d time.Duration
			if ads {
				d = r.insertStats[insertKey{bits, i}].ADSDuration
			} else {
				d = r.insertStats[insertKey{bits, i}].IndexDuration
			}
			row = append(row, fmtDur(d))
		}
		t.AddRow(row...)
	}
	t.AddNote("expected shape: proportional to inserted batch size; ADS cost grows with bit count (paper Fig. 7)")
	return t, nil
}

type insertKey struct {
	bits  int
	batch int
}

// insertSweep preloads a deployment and times each insert batch, memoizing
// the per-batch stats for both Fig. 7 sub-figures.
func (r *Runner) insertSweep(bits int) error {
	if r.insertStats == nil {
		r.insertStats = make(map[insertKey]core.UpdateStats)
	}
	if _, done := r.insertStats[insertKey{bits, 0}]; done {
		return nil
	}
	r.progress("insert sweep %d-bit (preload %d) ...", bits, r.scale.InsertPreload)
	preload := workload.Generate(workload.Config{
		N:    r.scale.InsertPreload,
		Bits: bits,
		Dist: workload.Uniform,
		Seed: int64(bits) * 31,
	})
	owner, err := core.NewOwner(r.scale.Params(bits))
	if err != nil {
		return err
	}
	if _, err := owner.Build(preload); err != nil {
		return err
	}
	nextID := uint64(r.scale.InsertPreload) + 1
	for i, batch := range r.scale.InsertCounts {
		records := workload.Generate(workload.Config{
			N:       batch,
			Bits:    bits,
			Dist:    workload.Uniform,
			Seed:    int64(bits)*97 + int64(i),
			FirstID: nextID,
		})
		nextID += uint64(batch)
		if _, err := owner.Insert(records); err != nil {
			return err
		}
		r.insertStats[insertKey{bits, i}] = owner.LastStats()
	}
	return nil
}

func bitHeaders(bits []int) []string {
	out := make([]string, len(bits))
	for i, b := range bits {
		out[i] = fmt.Sprintf("%d-bit", b)
	}
	return out
}
