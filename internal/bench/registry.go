package bench

import (
	"fmt"
	"sort"
)

// Experiment is one runnable experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func(*Runner) (*Table, error)
}

// Experiments lists every experiment in presentation order: first the
// paper's figures and table, then the ablations.
func Experiments() []Experiment {
	return []Experiment{
		{"fig3a", "Build: index building time", (*Runner).Fig3a},
		{"fig3b", "Build: ADS building time", (*Runner).Fig3b},
		{"fig4a", "Build: index storage", (*Runner).Fig4a},
		{"fig4b", "Build: ADS storage", (*Runner).Fig4b},
		{"fig5a", "Search: equality result generation time", (*Runner).Fig5a},
		{"fig5b", "Search: equality VO generation time", (*Runner).Fig5b},
		{"fig5c", "Search: order result generation time", (*Runner).Fig5c},
		{"fig5d", "Search: order VO generation time", (*Runner).Fig5d},
		{"fig6a", "Search overhead: tokens per order query", (*Runner).Fig6a},
		{"fig6b", "Search overhead: equality result size", (*Runner).Fig6b},
		{"fig6c", "Search overhead: order result size", (*Runner).Fig6c},
		{"fig6d", "Search overhead: VO size", (*Runner).Fig6d},
		{"fig7a", "Insert: index update time", (*Runner).Fig7a},
		{"fig7b", "Insert: ADS update time", (*Runner).Fig7b},
		{"table2", "Gas cost of smart contract", (*Runner).Table2},
		{"ablation-ore", "SORE vs CLWW ORE vs OPE", (*Runner).AblationORE},
		{"ablation-traversal", "Order search vs keyword traversal", (*Runner).AblationTraversal},
		{"ablation-range-strategy", "Range strategies: intersection vs prefix cover", (*Runner).AblationRangeStrategy},
		{"ablation-accumulator", "Accumulator update strategies", (*Runner).AblationAccumulator},
		{"ablation-witness", "Witness generation strategies", (*Runner).AblationWitness},
		{"ablation-witness-maintenance", "Cached-witness maintenance on insert", (*Runner).AblationWitnessMaintenance},
		{"ablation-fastpath", "Big-number fast paths: aggregation, comb, witness tree", (*Runner).AblationFastpath},
		{"ablation-parallel-search", "Serial vs parallel search & verification pipeline", (*Runner).AblationParallelSearch},
		{"ablation-vo-merkle", "Accumulator VO vs Merkle proof", (*Runner).AblationVOvsMerkle},
		{"ablation-durability", "WAL fsync overhead & cold-start recovery", (*Runner).AblationDurability},
		{"ablation-observability", "Telemetry layer: windowed quantiles & overhead", (*Runner).AblationObservability},
		{"ablation-audit", "Audit ledger: journaling overhead on search", (*Runner).AblationAudit},
		{"ablation-shards", "Sharded cloud: 1 vs 3 shards behind the router", (*Runner).AblationShards},
	}
}

// Find resolves an experiment by ID.
func Find(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, 0, len(Experiments()))
	for _, e := range Experiments() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q (known: %v)", id, ids)
}
