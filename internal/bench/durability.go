package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"slicer/internal/core"
	"slicer/internal/durable"
	"slicer/internal/wire"
	"slicer/internal/workload"
)

// AblationDurability quantifies the two costs the durable state engine
// introduces: what journaling an update costs under each fsync policy
// (fsync=always is the crash-safe default; how much does the ack pay for
// it?), and what a cold start costs — recovering from the local
// snapshot+WAL data directory versus the paper's implicit alternative of
// the owner re-shipping its full cloud state after every cloud restart.
func (r *Runner) AblationDurability() (*Table, error) {
	r.progress("ablation: durability — fsync overhead and recovery time ...")
	bits := r.scale.Bits[0]
	count := r.scale.Counts[0]
	const deltas = 8 // journaled updates replayed at recovery

	// A real deployment provides representative payloads: WAL records are
	// the wire form of owner update deltas; the snapshot is the marshaled
	// cloud.
	db := workload.Generate(workload.Config{
		N: count, Bits: bits, Dist: workload.Uniform, Seed: 0xD0C5,
	})
	owner, err := core.NewOwner(r.scale.Params(bits))
	if err != nil {
		return nil, err
	}
	built, err := owner.Build(db)
	if err != nil {
		return nil, err
	}
	initState := owner.CloudInit(built.Index)
	cloud, err := core.NewCloud(initState, core.WitnessOnDemand)
	if err != nil {
		return nil, err
	}
	// Capture the snapshot and the init wire message before any insert:
	// both must describe the pre-delta state the WAL replays on top of.
	snapBytes, err := cloud.Marshal()
	if err != nil {
		return nil, err
	}
	encStart := time.Now()
	wireBytes, err := json.Marshal(wire.EncodeCloudInit(initState, false))
	if err != nil {
		return nil, err
	}
	encodeDur := time.Since(encStart)
	var updateRecs [][]byte
	for i := 0; i < deltas; i++ {
		up, err := owner.Insert([]core.Record{core.NewRecord(uint64(1_000_000+i), uint64(i)%(1<<bits))})
		if err != nil {
			return nil, err
		}
		rec, err := json.Marshal(wire.EncodeUpdate(up))
		if err != nil {
			return nil, err
		}
		updateRecs = append(updateRecs, rec)
		if err := cloud.ApplyUpdate(up); err != nil {
			return nil, err
		}
	}

	dir, err := os.MkdirTemp("", "slicer-bench-durability")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	t := &Table{
		ID:      "ablation-durability",
		Title:   "Durability: WAL fsync overhead and cold-start recovery",
		Headers: []string{"measurement", "configuration", "total", "per unit"},
	}

	// WAL append cost under each fsync policy, on the real filesystem.
	const appends = 64
	policies := []struct {
		name string
		opts durable.LogOptions
	}{
		{"fsync=always", durable.LogOptions{Fsync: durable.FsyncAlways}},
		{"fsync=1ms", durable.LogOptions{Fsync: durable.FsyncInterval, FsyncInterval: time.Millisecond}},
		{"fsync=never", durable.LogOptions{Fsync: durable.FsyncNever}},
	}
	perRecord := make(map[string]time.Duration, len(policies))
	payload := updateRecs[0]
	for _, p := range policies {
		log, err := durable.OpenLog(durable.OS, filepath.Join(dir, "wal-"+p.name), p.opts)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		for i := 0; i < appends; i++ {
			if _, err := log.Append(payload); err != nil {
				return nil, err
			}
		}
		total := time.Since(start)
		if err := log.Close(); err != nil {
			return nil, err
		}
		perRecord[p.name] = total / appends
		t.AddRow("wal append ×"+fmt.Sprint(appends), p.name, fmt.Sprint(total), fmt.Sprint(total/appends))
	}

	// Cold start, option A: recover locally from snapshot + WAL tail.
	dataDir := filepath.Join(dir, "recover")
	snapper := durable.NewSnapshotter(durable.OS, dataDir, 0)
	if err := snapper.Save(1, snapBytes); err != nil {
		return nil, err
	}
	log, err := durable.OpenLog(durable.OS, dataDir, durable.LogOptions{Start: 2})
	if err != nil {
		return nil, err
	}
	for _, rec := range updateRecs {
		if _, err := log.Append(rec); err != nil {
			return nil, err
		}
	}
	if err := log.Close(); err != nil {
		return nil, err
	}
	start := time.Now()
	rec, err := durable.Recover(durable.OS, dataDir)
	if err != nil {
		return nil, err
	}
	recovered, err := core.UnmarshalCloud(rec.Snapshot)
	if err != nil {
		return nil, err
	}
	for _, e := range rec.Entries {
		var msg wire.UpdateMsg
		if err := json.Unmarshal(e, &msg); err != nil {
			return nil, err
		}
		out, err := wire.DecodeUpdate(&msg)
		if err != nil {
			return nil, err
		}
		if err := recovered.ApplyUpdate(out); err != nil {
			return nil, err
		}
	}
	coldStart := time.Since(start)
	t.AddRow("cold start", fmt.Sprintf("snapshot+WAL (N=%d, %d deltas)", count, deltas),
		fmt.Sprint(coldStart), "n/a")

	// Cold start, option B: the owner re-ships its full cloud state (the
	// init RPC path, minus the network hop; the encode half was timed
	// before the inserts, against the same pre-delta state).
	start = time.Now()
	var decoded wire.CloudInitMsg
	if err := json.Unmarshal(wireBytes, &decoded); err != nil {
		return nil, err
	}
	st, mode, err := wire.DecodeCloudInit(&decoded)
	if err != nil {
		return nil, err
	}
	if _, err := core.NewCloud(st, mode); err != nil {
		return nil, err
	}
	reShip := encodeDur + time.Since(start)
	t.AddRow("cold start", fmt.Sprintf("owner re-ship (N=%d)", count), fmt.Sprint(reShip), "n/a")
	if recovered.IndexLen() == 0 {
		return nil, fmt.Errorf("bench: recovered cloud is empty")
	}

	if never := perRecord["fsync=never"]; never > 0 {
		t.AddNote(fmt.Sprintf("fsync=always costs %.1fx a non-durable append; the ack then survives kill -9",
			float64(perRecord["fsync=always"])/float64(never)))
	}
	t.AddNote("local recovery needs no owner round trip and no re-upload of the encrypted index")
	return t, nil
}
