package bench

import (
	"fmt"
	"os"
	"sort"
	"time"

	"slicer/internal/audit"
	"slicer/internal/core"
	"slicer/internal/durable"
	"slicer/internal/obs"
	"slicer/internal/wire"
)

// AblationAudit measures what the tamper-evident audit ledger costs on the
// search hot path: two byte-identical wire cloud servers answer the same
// queries over loopback — one bare, one journaling every search into a
// hash-chained ledger (interval fsync, the production server default). The
// per-record seal, frame and WAL append ride inside the RPC, so the audited
// median minus the bare median is the audit tax a client observes. Requests
// are interleaved request-by-request across the two servers so clock drift
// and scheduler noise hit both sides equally.
func (r *Runner) AblationAudit() (*Table, error) {
	r.progress("ablation: audit — hash-chained journaling overhead on the search path ...")
	bits := r.scale.Bits[0]
	count := r.scale.Counts[0]
	d, err := r.ensure(bits, count)
	if err != nil {
		return nil, err
	}
	queries := r.scale.Queries
	values := d.queryValues(bits, queries, true)
	// ~150 timed samples per side: the audit tax is a few microseconds on a
	// sub-millisecond RPC, so the median needs enough mass to hold still
	// against scheduler noise even at quick scale.
	repeats := (150 + queries - 1) / queries

	snap, err := d.cloud.Marshal()
	if err != nil {
		return nil, err
	}

	boot := func(led *audit.Ledger) (*wire.CloudServer, *wire.CloudClient, error) {
		srv := wire.NewCloudServer()
		if led != nil {
			srv.EnableAudit(led)
		}
		if err := srv.Restore(snap); err != nil {
			return nil, nil, fmt.Errorf("restore: %w", err)
		}
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			return nil, nil, err
		}
		cli, err := wire.DialCloud(addr)
		if err != nil {
			_ = srv.Close()
			return nil, nil, err
		}
		return srv, cli, nil
	}

	dir, err := os.MkdirTemp("", "slicer-bench-audit-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	led, err := audit.Open(audit.Options{
		Dir:           dir,
		Fsync:         durable.FsyncInterval,
		FsyncInterval: 100 * time.Millisecond,
		Logger:        obs.Nop(),
	})
	if err != nil {
		return nil, err
	}
	defer led.Close()

	bareSrv, bareCli, err := boot(nil)
	if err != nil {
		return nil, err
	}
	defer bareSrv.Close()
	defer bareCli.Close()
	audSrv, audCli, err := boot(led)
	if err != nil {
		return nil, err
	}
	defer audSrv.Close()
	defer audCli.Close()

	// Pre-generate the token lists once: tokenization is client work and
	// must not ride inside either timing.
	reqs := make([]*core.SearchRequest, 0, queries)
	for _, v := range values {
		req, err := d.user.Token(core.Query{Op: core.OpEqual, Value: v})
		if err != nil {
			return nil, err
		}
		reqs = append(reqs, req)
	}
	// One untimed query per server absorbs warm-up (witness caches, modexp
	// tables) so the timed loop compares steady states.
	if _, err := bareCli.Search(reqs[0]); err != nil {
		return nil, err
	}
	if _, err := audCli.Search(reqs[0]); err != nil {
		return nil, err
	}

	timed := func(cli *wire.CloudClient, req *core.SearchRequest) (time.Duration, error) {
		start := time.Now()
		if _, err := cli.Search(req); err != nil {
			return 0, err
		}
		return time.Since(start), nil
	}
	var bare, audited []time.Duration
	for rep := 0; rep < repeats; rep++ {
		for _, req := range reqs {
			db, err := timed(bareCli, req)
			if err != nil {
				return nil, err
			}
			da, err := timed(audCli, req)
			if err != nil {
				return nil, err
			}
			bare = append(bare, db)
			audited = append(audited, da)
		}
	}
	median := func(ds []time.Duration) time.Duration {
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		return ds[len(ds)/2]
	}
	bareMed, audMed := median(bare), median(audited)
	headSeq, _ := led.Head()

	t := &Table{
		ID:      "ablation-audit",
		Title:   "Audit ledger: hash-chained journaling overhead on search",
		Headers: []string{"configuration", "searches", "audit records", "median RPC", "overhead"},
	}
	overhead := float64(audMed-bareMed) / float64(bareMed) * 100
	t.AddRow("auditing off", fmt.Sprintf("%d", len(bare)), "0", fmtDur(bareMed), "-")
	t.AddRow("auditing on (interval fsync)", fmt.Sprintf("%d", len(audited)),
		fmt.Sprintf("%d", headSeq), fmtDur(audMed), fmt.Sprintf("%+.1f%%", overhead))
	t.Notes = append(t.Notes,
		"every search RPC enqueues one event on the serving path; a background writer seals it (SHA-256 chain, CRC frame) into the WAL within its drain tick",
		fmt.Sprintf("audit tax on the median search RPC: %+.1f%% (target ≤5%%); requests interleaved across both servers to cancel drift", overhead),
	)
	return t, nil
}
