package bench

import (
	"fmt"
	"math/rand" //slicer:allow weakrand -- seeded query sampling for benchmarks; never touches the deployment's keys
	"time"

	"slicer/internal/core"
	"slicer/internal/obs"
	"slicer/internal/workload"
)

// Runner executes experiments under one scale, memoizing built deployments
// so the search/overhead figures reuse the builds the time/storage figures
// already paid for.
type Runner struct {
	scale       Scale
	cache       map[deployKey]*deployment
	searchCache map[searchKey]searchMetrics
	insertStats map[insertKey]core.UpdateStats
	// Progress, when non-nil, receives status lines while experiments run.
	Progress func(format string, args ...any)
	// Registry, when non-nil, collects phase histograms from every cloud
	// the runner builds; cmd/slicer-bench snapshots it around each
	// experiment to report per-experiment instrument deltas.
	Registry *obs.Registry
}

type deployKey struct {
	bits  int
	count int
}

// deployment is one built (bits, count) point.
type deployment struct {
	db    []core.Record
	owner *core.Owner
	user  *core.User
	cloud *core.Cloud // WitnessOnDemand: honest Algorithm-4 VO cost
	stats core.UpdateStats
}

// NewRunner creates a runner for a scale.
func NewRunner(scale Scale) *Runner {
	return &Runner{scale: scale, cache: make(map[deployKey]*deployment)}
}

func (r *Runner) progress(format string, args ...any) {
	if r.Progress != nil {
		r.Progress(format, args...)
	}
}

// ensure builds (or returns the cached) deployment for a sweep point.
func (r *Runner) ensure(bits, count int) (*deployment, error) {
	key := deployKey{bits: bits, count: count}
	if d, ok := r.cache[key]; ok {
		return d, nil
	}
	r.progress("building %d-bit / %d records ...", bits, count)
	db := workload.Generate(workload.Config{
		N:    count,
		Bits: bits,
		Dist: workload.Uniform,
		Seed: int64(bits)*1_000_003 + int64(count),
	})
	owner, err := core.NewOwner(r.scale.Params(bits))
	if err != nil {
		return nil, err
	}
	out, err := owner.Build(db)
	if err != nil {
		return nil, fmt.Errorf("build %d-bit/%d: %w", bits, count, err)
	}
	cloud, err := core.NewCloud(owner.CloudInit(out.Index), core.WitnessOnDemand)
	if err != nil {
		return nil, err
	}
	if r.Registry != nil {
		cloud.SetMetrics(r.Registry)
	}
	user, err := core.NewUser(owner.ClientState())
	if err != nil {
		return nil, err
	}
	d := &deployment{db: db, owner: owner, user: user, cloud: cloud, stats: owner.LastStats()}
	r.cache[key] = d
	return d, nil
}

// queryValues picks deterministic random query values: for equality they
// are sampled from stored records (so result sets are non-trivial, as in
// the paper's setup); for order queries they are uniform domain values.
func (d *deployment) queryValues(bits, n int, equality bool) []uint64 {
	rng := rand.New(rand.NewSource(int64(bits)*7 + int64(n)*13 + 42))
	out := make([]uint64, n)
	maxV := uint64(1)<<uint(bits) - 1
	for i := range out {
		if equality {
			out[i] = d.db[rng.Intn(len(d.db))].Attrs[0].Value
		} else {
			out[i] = rng.Uint64() & maxV
		}
	}
	return out
}

// searchMetrics aggregates one sweep point's query measurements.
type searchMetrics struct {
	resultGen   time.Duration // avg result-generation time per query
	voGen       time.Duration // avg VO-generation time per query
	tokens      float64       // avg search tokens per query
	resultBytes float64       // avg encrypted-result bytes per query
	voBytes     float64       // avg verification-object bytes per query
	matched     float64       // avg matched records per query
}

// measureSearch runs Q queries of one kind against a deployment and
// averages the Algorithm-4 costs, verifying every response on the way (a
// failed verification aborts the experiment — the numbers would be
// meaningless).
func (r *Runner) measureSearch(d *deployment, bits int, op core.Op) (searchMetrics, error) {
	var m searchMetrics
	q := r.scale.Queries
	values := d.queryValues(bits, q, op == core.OpEqual)
	pp, ac := d.owner.AccumulatorPub(), d.owner.Ac()
	for _, v := range values {
		query := core.Query{Op: op, Value: v}
		if op != core.OpEqual {
			// Alternate direction like the paper's random order queries.
			if v%2 == 0 {
				query.Op = core.OpLess
			} else {
				query.Op = core.OpGreater
			}
		}
		req, err := d.user.Token(query)
		if err != nil {
			return m, err
		}
		start := time.Now()
		resp, err := d.cloud.SearchResults(req)
		if err != nil {
			return m, err
		}
		m.resultGen += time.Since(start)

		start = time.Now()
		if err := d.cloud.AttachWitnesses(resp); err != nil {
			return m, err
		}
		m.voGen += time.Since(start)

		if err := core.VerifyResponse(pp, ac, req, resp); err != nil {
			return m, fmt.Errorf("experiment response failed verification: %w", err)
		}
		m.tokens += float64(len(req.Tokens))
		for _, res := range resp.Results {
			for _, er := range res.ER {
				m.resultBytes += float64(len(er))
				m.matched++
			}
			m.voBytes += float64(len(res.Witness))
		}
	}
	n := time.Duration(q)
	m.resultGen /= n
	m.voGen /= n
	m.tokens /= float64(q)
	m.resultBytes /= float64(q)
	m.voBytes /= float64(q)
	m.matched /= float64(q)
	return m, nil
}

// fmtDur renders a duration in seconds with sensible precision.
func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.4fs", d.Seconds())
}

// fmtMB renders bytes as MB.
func fmtMB(b int) string {
	return fmt.Sprintf("%.3fMB", float64(b)/1e6)
}
