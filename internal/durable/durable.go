// Package durable is the embedded durability engine shared by the Slicer
// servers: a segmented, CRC32C-framed append-only write-ahead log with a
// configurable fsync policy, atomic snapshot rotation (write-to-temp,
// fsync, rename, fsync-dir), log compaction once a snapshot covers a WAL
// prefix, and crash recovery that loads the newest valid snapshot and
// replays the WAL tail, truncating at the first torn or corrupt record
// instead of failing.
//
// Everything goes through an injectable FS so crash behavior is testable
// deterministically: OS is the real filesystem, MemFS models durability
// (unsynced writes are lost on MemFS.Crash) and injects faults
// (fail-after-N-ops, short writes).
//
// The package is stdlib-only and knows nothing about what it persists;
// internal/wire layers cloud-RPC and chain-block journals on top of it.
package durable

import (
	"errors"
	"fmt"
	"strings"
	"time"
)

// Fsync policies: when an appended WAL record becomes durable.
type Policy int

const (
	// FsyncAlways syncs after every append: an acknowledged write survives
	// any crash. The safe default.
	FsyncAlways Policy = iota
	// FsyncInterval syncs when the configured interval has elapsed since
	// the last sync (checked on append) and on Close. A crash loses at
	// most one interval of acknowledged appends.
	FsyncInterval
	// FsyncNever leaves syncing to the OS page cache (and Close). Fastest;
	// a crash can lose everything since the last snapshot.
	FsyncNever
)

// String renders the policy the way ParsePolicy accepts it.
func (p Policy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy parses the -fsync flag grammar: "always", "never", or a
// duration like "100ms" selecting FsyncInterval with that interval.
func ParsePolicy(s string) (Policy, time.Duration, error) {
	switch strings.TrimSpace(s) {
	case "always", "":
		return FsyncAlways, 0, nil
	case "never":
		return FsyncNever, 0, nil
	}
	d, err := time.ParseDuration(strings.TrimSpace(s))
	if err != nil || d <= 0 {
		return 0, 0, fmt.Errorf("durable: bad fsync policy %q (want always, never, or a positive interval like 100ms)", s)
	}
	return FsyncInterval, d, nil
}

// ErrNoSnapshot reports that a snapshot directory holds no loadable
// snapshot (none written yet, or every candidate is corrupt).
var ErrNoSnapshot = errors.New("durable: no snapshot")

// ErrClosed reports an operation on a closed log.
var ErrClosed = errors.New("durable: log closed")
