package durable

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func appendAll(t *testing.T, l *Log, payloads ...string) []uint64 {
	t.Helper()
	idxs := make([]uint64, 0, len(payloads))
	for _, p := range payloads {
		idx, err := l.Append([]byte(p))
		if err != nil {
			t.Fatalf("append %q: %v", p, err)
		}
		idxs = append(idxs, idx)
	}
	return idxs
}

func recoverEntries(t *testing.T, fsys FS, dir string) []string {
	t.Helper()
	rec, err := Recover(fsys, dir)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	out := make([]string, len(rec.Entries))
	for i, e := range rec.Entries {
		out[i] = string(e)
	}
	return out
}

func TestLogAppendRecover(t *testing.T) {
	fsys := NewMemFS()
	l, err := OpenLog(fsys, "data", LogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	idxs := appendAll(t, l, "one", "two", "three")
	if want := []uint64{1, 2, 3}; !equalU64(idxs, want) {
		t.Fatalf("indices %v, want %v", idxs, want)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got := recoverEntries(t, fsys, "data")
	if want := []string{"one", "two", "three"}; !equalStr(got, want) {
		t.Fatalf("recovered %v, want %v", got, want)
	}
}

func TestLogSurvivesCrashWithFsyncAlways(t *testing.T) {
	fsys := NewMemFS()
	l, err := OpenLog(fsys, "data", LogOptions{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "a", "b")
	fsys.Crash() // no Close: the process died
	got := recoverEntries(t, fsys, "data")
	if want := []string{"a", "b"}; !equalStr(got, want) {
		t.Fatalf("recovered %v, want %v", got, want)
	}
}

func TestLogFsyncNeverLosesUnsyncedOnCrash(t *testing.T) {
	fsys := NewMemFS()
	l, err := OpenLog(fsys, "data", LogOptions{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "a", "b")
	fsys.Crash()
	if got := recoverEntries(t, fsys, "data"); len(got) != 0 {
		t.Fatalf("recovered %v, want nothing (appends were never synced)", got)
	}
}

func TestLogTruncatesTornTail(t *testing.T) {
	fsys := NewMemFS()
	l, err := OpenLog(fsys, "data", LogOptions{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "good-1", "good-2")
	// Crash mid-append: the next frame is half-written.
	fsys.FailNextWriteShort()
	if _, err := l.Append([]byte("torn-record-payload")); !errors.Is(err, ErrInjected) {
		t.Fatalf("append after short write: %v, want ErrInjected", err)
	}
	// The log is fail-stop after a torn write.
	if _, err := l.Append([]byte("after")); err == nil {
		t.Fatal("append after torn write succeeded; the tear would bury it")
	}
	fsys.Crash()

	rec, err := Recover(fsys, "data")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]string, len(rec.Entries))
	for i, e := range rec.Entries {
		got[i] = string(e)
	}
	if want := []string{"good-1", "good-2"}; !equalStr(got, want) {
		t.Fatalf("recovered %v, want %v", got, want)
	}
	if rec.TruncatedRecords == 0 {
		t.Fatal("expected the torn tail to be counted")
	}

	// Reopen for writes: the torn bytes are chopped and appends continue
	// at the right index.
	l2, err := OpenLog(fsys, "data", LogOptions{Fsync: FsyncAlways, Start: rec.NextIndex})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := l2.Append([]byte("good-3"))
	if err != nil {
		t.Fatal(err)
	}
	if idx != 3 {
		t.Fatalf("resumed at index %d, want 3", idx)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	if got := recoverEntries(t, fsys, "data"); !equalStr(got, []string{"good-1", "good-2", "good-3"}) {
		t.Fatalf("after reopen: %v", got)
	}
}

func TestLogCorruptMiddleRecordTruncates(t *testing.T) {
	fsys := NewMemFS()
	l, err := OpenLog(fsys, "data", LogOptions{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "aaaa", "bbbb", "cccc")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of the middle record on disk.
	name := filepath.Join("data", segName(1))
	data, err := ReadFile(fsys, name)
	if err != nil {
		t.Fatal(err)
	}
	off := (recHdr + 4) + recHdr // into record 2's payload
	data[off] ^= 0xff
	f, err := fsys.OpenFile(name, os.O_WRONLY|os.O_TRUNC|os.O_CREATE, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}

	// Recovery keeps only the prefix before the corruption.
	rec, err := Recover(fsys, "data")
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Entries) != 1 || string(rec.Entries[0]) != "aaaa" {
		t.Fatalf("recovered %d entries, want only the clean prefix", len(rec.Entries))
	}
	if rec.NextIndex != 2 {
		t.Fatalf("next index %d, want 2", rec.NextIndex)
	}
}

func TestLogSegmentRotationAndCompaction(t *testing.T) {
	fsys := NewMemFS()
	l, err := OpenLog(fsys, "data", LogOptions{Fsync: FsyncAlways, SegmentBytes: 32})
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	for i := 0; i < 10; i++ {
		p := fmt.Sprintf("payload-%02d", i)
		want = append(want, p)
	}
	appendAll(t, l, want...)
	if l.Segments() < 3 {
		t.Fatalf("expected rotation, got %d segments", l.Segments())
	}
	if got := recoverEntries(t, fsys, "data"); !equalStr(got, want) {
		t.Fatalf("recovered %v, want %v", got, want)
	}

	// Compact everything up to index 7: early segments disappear, records
	// 8.. survive.
	if err := l.CompactBefore(7); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(fsys, "data")
	if err != nil {
		t.Fatal(err)
	}
	if rec.FirstIndex > 8 {
		t.Fatalf("first surviving index %d, want <= 8", rec.FirstIndex)
	}
	for i, e := range rec.Entries {
		if want := fmt.Sprintf("payload-%02d", int(rec.FirstIndex)-1+i); string(e) != want {
			t.Fatalf("entry %d = %q, want %q", i, e, want)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestLogReopenContinuesIndices(t *testing.T) {
	fsys := NewMemFS()
	l, err := OpenLog(fsys, "data", LogOptions{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, "a", "b")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := OpenLog(fsys, "data", LogOptions{Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := l2.Append([]byte("c"))
	if err != nil {
		t.Fatal(err)
	}
	if idx != 3 {
		t.Fatalf("index %d, want 3", idx)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestLogFailAfterWriteOpsSweep(t *testing.T) {
	// Crash at every possible write-op boundary while appending 5 records;
	// whatever Append acknowledged must survive, and recovery must never
	// error. This is the deterministic kill -9 sweep.
	for crashAt := 1; crashAt < 40; crashAt++ {
		fsys := NewMemFS()
		l, err := OpenLog(fsys, "data", LogOptions{Fsync: FsyncAlways, SegmentBytes: 48})
		if err != nil {
			t.Fatal(err)
		}
		fsys.FailAfterWriteOps(crashAt)
		var acked []string
		for i := 0; i < 5; i++ {
			p := fmt.Sprintf("rec-%d", i)
			if _, err := l.Append([]byte(p)); err != nil {
				break
			}
			acked = append(acked, p)
		}
		fsys.Crash()
		rec, err := Recover(fsys, "data")
		if err != nil {
			t.Fatalf("crashAt=%d: recover: %v", crashAt, err)
		}
		got := make([]string, len(rec.Entries))
		for i, e := range rec.Entries {
			got[i] = string(e)
		}
		// Acked is a prefix of got (an append may be durable without its
		// ack having been returned — crash between write and return).
		if len(got) < len(acked) {
			t.Fatalf("crashAt=%d: acked %v but recovered only %v", crashAt, acked, got)
		}
		for i := range acked {
			if got[i] != acked[i] {
				t.Fatalf("crashAt=%d: recovered %v, acked %v", crashAt, got, acked)
			}
		}
	}
}

func TestDecodeRecordRoundTrip(t *testing.T) {
	var buf []byte
	payloads := [][]byte{[]byte(""), []byte("x"), bytes.Repeat([]byte("ab"), 1000)}
	for _, p := range payloads {
		buf = AppendRecord(buf, p)
	}
	rest := buf
	for i, want := range payloads {
		var got []byte
		var err error
		got, rest, err = DecodeRecord(rest)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("record %d: got %q want %q", i, got, want)
		}
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
}

func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in string
		p  Policy
		ok bool
	}{
		{"always", FsyncAlways, true},
		{"", FsyncAlways, true},
		{"never", FsyncNever, true},
		{"100ms", FsyncInterval, true},
		{"2s", FsyncInterval, true},
		{"banana", 0, false},
		{"-5s", 0, false},
	} {
		p, _, err := ParsePolicy(tc.in)
		if tc.ok != (err == nil) {
			t.Fatalf("ParsePolicy(%q) err=%v, want ok=%v", tc.in, err, tc.ok)
		}
		if tc.ok && p != tc.p {
			t.Fatalf("ParsePolicy(%q) = %v, want %v", tc.in, p, tc.p)
		}
	}
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalStr(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
