package durable

import (
	"bytes"
	"testing"
)

// FuzzWALRecord hardens the WAL frame decoder against corrupted or
// adversarial on-disk bytes: a crash can leave any prefix of a frame, and a
// failing disk can hand back anything at all. DecodeRecord must classify
// every input as a record, torn, or corrupt — never panic, never
// over-allocate, never return bytes the CRC does not vouch for.
func FuzzWALRecord(f *testing.F) {
	var seed []byte
	seed = AppendRecord(seed, []byte("slicer"))
	seed = AppendRecord(seed, nil)
	f.Add(seed)
	f.Add(seed[:len(seed)-3]) // torn tail
	f.Add([]byte{})
	f.Add(make([]byte, recHdr))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}) // absurd length
	f.Fuzz(func(t *testing.T, data []byte) {
		rest := data
		for {
			payload, r, err := DecodeRecord(rest)
			if err != nil {
				return
			}
			if len(r) >= len(rest) {
				t.Fatal("decode made no progress")
			}
			// A decoded payload must re-encode to exactly the bytes it was
			// framed from, or the CRC check is vacuous.
			frame := AppendRecord(nil, payload)
			if !bytes.Equal(frame, rest[:len(rest)-len(r)]) {
				t.Fatalf("frame round trip diverged for %d-byte payload", len(payload))
			}
			rest = r
		}
	})
}

// FuzzSnapshotManifest hardens the snapshot manifest decoder the same way:
// recovery reads whatever the crash left, and Load's fall-back-a-generation
// behavior relies on DecodeSnapshot rejecting every damaged frame.
func FuzzSnapshotManifest(f *testing.F) {
	f.Add(EncodeSnapshot(1, []byte("state")))
	f.Add(EncodeSnapshot(0, nil))
	f.Add([]byte{})
	f.Add(make([]byte, snapHdrLen))
	f.Add(bytes.Repeat([]byte("SLCRSNP1"), 4))
	f.Fuzz(func(t *testing.T, data []byte) {
		index, payload, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		re := EncodeSnapshot(index, payload)
		if !bytes.Equal(re, data) {
			t.Fatal("accepted snapshot does not round trip")
		}
	})
}
