package durable

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestSnapshotterSaveLoad(t *testing.T) {
	fsys := NewMemFS()
	s := NewSnapshotter(fsys, "data", 0)
	if _, _, err := s.Load(); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("empty load: %v, want ErrNoSnapshot", err)
	}
	if err := s.Save(10, []byte("state-at-10")); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(20, []byte("state-at-20")); err != nil {
		t.Fatal(err)
	}
	idx, payload, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if idx != 20 || string(payload) != "state-at-20" {
		t.Fatalf("loaded (%d, %q)", idx, payload)
	}
}

func TestSnapshotSurvivesCrashDuringSave(t *testing.T) {
	// Crash at every write-op boundary while saving a second snapshot:
	// Load must always return either the old or the new snapshot, never
	// garbage and never nothing.
	for crashAt := 1; crashAt < 15; crashAt++ {
		fsys := NewMemFS()
		s := NewSnapshotter(fsys, "data", 0)
		if err := s.Save(10, []byte("old")); err != nil {
			t.Fatal(err)
		}
		fsys.FailAfterWriteOps(crashAt)
		saveErr := s.Save(20, []byte("new"))
		fsys.Crash()
		idx, payload, err := NewSnapshotter(fsys, "data", 0).Load()
		if err != nil {
			t.Fatalf("crashAt=%d: load after crash: %v", crashAt, err)
		}
		switch {
		case idx == 10 && string(payload) == "old":
			if saveErr == nil {
				// Save claimed durability but the old snapshot came back.
				t.Fatalf("crashAt=%d: save acked but old state recovered", crashAt)
			}
		case idx == 20 && string(payload) == "new":
		default:
			t.Fatalf("crashAt=%d: recovered (%d, %q)", crashAt, idx, payload)
		}
	}
}

func TestSnapshotLoadFallsBackPastCorrupt(t *testing.T) {
	fsys := NewMemFS()
	s := NewSnapshotter(fsys, "data", 0)
	if err := s.Save(10, []byte("good-old")); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(20, []byte("good-new")); err != nil {
		t.Fatal(err)
	}
	// Corrupt the newest snapshot's payload on disk.
	name := filepath.Join("data", snapName(20))
	data, err := ReadFile(fsys, name)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	f, err := fsys.OpenFile(name, os.O_WRONLY|os.O_TRUNC|os.O_CREATE, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}

	idx, payload, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if idx != 10 || string(payload) != "good-old" {
		t.Fatalf("loaded (%d, %q), want the previous generation", idx, payload)
	}
}

func TestSnapshotPrunesOldGenerations(t *testing.T) {
	fsys := NewMemFS()
	s := NewSnapshotter(fsys, "data", 0)
	for i := uint64(1); i <= 5; i++ {
		if err := s.Save(i*10, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	names, err := listFiles(fsys, "data", snapPrefix, snapSuffix)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != keepSnapshots {
		t.Fatalf("%d snapshots on disk, want %d", len(names), keepSnapshots)
	}
}

func TestEncodeDecodeSnapshot(t *testing.T) {
	payload := bytes.Repeat([]byte("slicer"), 100)
	data := EncodeSnapshot(42, payload)
	idx, got, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 42 || !bytes.Equal(got, payload) {
		t.Fatalf("round trip: (%d, %d bytes)", idx, len(got))
	}
	// Any single-byte flip must be rejected.
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x01
		if _, _, err := DecodeSnapshot(mut); err == nil {
			// Flipping the index byte alone keeps the payload valid: the
			// index is not covered by the payload CRC but is bound by the
			// filename on disk; in-frame it only shifts what is replayed.
			if i >= 9 && i < 17 {
				continue
			}
			t.Fatalf("byte %d flip accepted", i)
		}
	}
}

func TestAtomicWriteFile(t *testing.T) {
	dir := t.TempDir()
	name := filepath.Join(dir, "state.json")
	if err := AtomicWriteFile(name, []byte("v1"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := AtomicWriteFile(name, []byte("v2"), 0o600); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v2" {
		t.Fatalf("content %q", got)
	}
	fi, err := os.Stat(name)
	if err != nil {
		t.Fatal(err)
	}
	if perm := fi.Mode().Perm(); perm != 0o600 {
		t.Fatalf("mode %o, want 0600", perm)
	}
	if _, err := os.Stat(name + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
}

func TestAtomicWriteFileCrashLeavesOldOrNew(t *testing.T) {
	for crashAt := 1; crashAt < 8; crashAt++ {
		fsys := NewMemFS()
		if err := AtomicWriteFileFS(fsys, "dir/state", []byte("old"), 0o600); err != nil {
			t.Fatal(err)
		}
		fsys.FailAfterWriteOps(crashAt)
		werr := AtomicWriteFileFS(fsys, "dir/state", []byte("new"), 0o600)
		fsys.Crash()
		got, err := ReadFile(fsys, "dir/state")
		if err != nil {
			t.Fatalf("crashAt=%d: %v", crashAt, err)
		}
		switch string(got) {
		case "old":
			if werr == nil {
				t.Fatalf("crashAt=%d: write acked but old content recovered", crashAt)
			}
		case "new":
		default:
			t.Fatalf("crashAt=%d: torn content %q", crashAt, got)
		}
	}
}
