package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"slicer/internal/obs"
)

// Snapshot on-disk format. A snapshot file snap-<index, 16 hex>.snap is a
// manifest header followed by the application payload:
//
//	+--------------------+---------+--------------+----------------+----------------+=========+
//	| magic "SLCRSNP1"   | ver u8  | index u64 LE | length  u32 LE | CRC32C  u32 LE | payload |
//	+--------------------+---------+--------------+----------------+----------------+=========+
//
// index is the WAL index the snapshot covers: every journaled record with
// index <= it is folded into the payload, so recovery replays only the
// tail. Files are written atomically (temp + fsync + rename + fsync-dir),
// and Load falls back to the previous snapshot if the newest is corrupt —
// which is why Save keeps one generation of history.

var snapMagic = [8]byte{'S', 'L', 'C', 'R', 'S', 'N', 'P', '1'}

const (
	snapVersion = 1
	snapPrefix  = "snap-"
	snapSuffix  = ".snap"
	snapHdrLen  = 8 + 1 + 8 + 4 + 4
	// keepSnapshots is how many generations Save retains: the new one plus
	// one fallback in case the newest is later found corrupt.
	keepSnapshots = 2
)

// MaxSnapshotSize bounds a snapshot payload (1 GiB) against corrupt
// manifests demanding absurd allocations.
const MaxSnapshotSize = 1 << 30

// EncodeSnapshot frames a snapshot payload with its manifest.
func EncodeSnapshot(index uint64, payload []byte) []byte {
	out := make([]byte, snapHdrLen, snapHdrLen+len(payload))
	copy(out[0:8], snapMagic[:])
	out[8] = snapVersion
	binary.LittleEndian.PutUint64(out[9:17], index)
	binary.LittleEndian.PutUint32(out[17:21], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[21:25], crc32.Checksum(payload, castagnoli))
	return append(out, payload...)
}

// DecodeSnapshot parses and verifies a framed snapshot.
func DecodeSnapshot(data []byte) (index uint64, payload []byte, err error) {
	if len(data) < snapHdrLen {
		return 0, nil, fmt.Errorf("durable: snapshot manifest short: %d bytes", len(data))
	}
	if [8]byte(data[0:8]) != snapMagic {
		return 0, nil, fmt.Errorf("durable: bad snapshot magic")
	}
	if data[8] != snapVersion {
		return 0, nil, fmt.Errorf("durable: unsupported snapshot version %d", data[8])
	}
	index = binary.LittleEndian.Uint64(data[9:17])
	n := binary.LittleEndian.Uint32(data[17:21])
	if n > MaxSnapshotSize {
		return 0, nil, fmt.Errorf("durable: snapshot payload of %d bytes exceeds %d", n, MaxSnapshotSize)
	}
	if uint64(len(data)-snapHdrLen) != uint64(n) {
		return 0, nil, fmt.Errorf("durable: snapshot payload torn: have %d bytes, manifest says %d", len(data)-snapHdrLen, n)
	}
	payload = data[snapHdrLen:]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(data[21:25]) {
		return 0, nil, fmt.Errorf("durable: snapshot checksum mismatch")
	}
	return index, payload, nil
}

func snapName(index uint64) string { return fmt.Sprintf("%s%016x%s", snapPrefix, index, snapSuffix) }

func snapIndex(name string) (uint64, error) {
	var idx uint64
	if _, err := fmt.Sscanf(name, snapPrefix+"%016x"+snapSuffix, &idx); err != nil {
		return 0, fmt.Errorf("durable: bad snapshot name %q: %w", name, err)
	}
	return idx, nil
}

// Snapshotter writes and loads atomic snapshots in a directory (which it
// shares with the WAL segments — one data dir per server).
type Snapshotter struct {
	fsys FS
	dir  string
	mode os.FileMode

	saveDur   *obs.Histogram
	saveBytes *obs.Gauge
	saves     *obs.Counter
}

// NewSnapshotter creates a snapshotter over dir. Files are created with
// the given mode (0 defaults to 0o600).
func NewSnapshotter(fsys FS, dir string, mode os.FileMode) *Snapshotter {
	if mode == 0 {
		mode = 0o600
	}
	return &Snapshotter{fsys: fsys, dir: dir, mode: mode}
}

// SetMetrics attaches snapshot duration/size series (slicer_snapshot_*).
func (s *Snapshotter) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.saveDur = reg.Histogram("slicer_snapshot_seconds",
		"Wall time of one atomic snapshot save (encode + write + fsync + rename).")
	s.saveBytes = reg.Gauge("slicer_snapshot_bytes", "Size of the most recent snapshot payload.")
	s.saves = reg.Counter("slicer_snapshots_total", "Snapshots saved.")
}

// Save atomically persists a snapshot covering every WAL record with index
// <= index, then prunes all but the newest two generations. When Save
// returns nil the snapshot is durable.
func (s *Snapshotter) Save(index uint64, payload []byte) error {
	if len(payload) > MaxSnapshotSize {
		return fmt.Errorf("durable: snapshot of %d bytes exceeds %d", len(payload), MaxSnapshotSize)
	}
	t0 := s.saveDur.Start()
	if err := s.fsys.MkdirAll(s.dir, 0o700); err != nil {
		return fmt.Errorf("durable: create snapshot dir: %w", err)
	}
	name := filepath.Join(s.dir, snapName(index))
	if err := AtomicWriteFileFS(s.fsys, name, EncodeSnapshot(index, payload), s.mode); err != nil {
		return err
	}
	s.saveDur.ObserveSince(t0)
	s.saveBytes.Set(float64(len(payload)))
	s.saves.Inc()
	return s.prune()
}

// prune removes all but the newest keepSnapshots generations. Failures are
// non-fatal — stale snapshots waste space, not correctness.
func (s *Snapshotter) prune() error {
	names, err := listFiles(s.fsys, s.dir, snapPrefix, snapSuffix)
	if err != nil || len(names) <= keepSnapshots {
		return nil
	}
	removed := false
	for _, name := range names[:len(names)-keepSnapshots] {
		if err := s.fsys.Remove(filepath.Join(s.dir, name)); err == nil {
			removed = true
		}
	}
	if removed {
		return s.fsys.SyncDir(s.dir)
	}
	return nil
}

// Load returns the newest valid snapshot. Corrupt candidates are skipped
// in favor of older generations; ErrNoSnapshot means none is loadable.
func (s *Snapshotter) Load() (index uint64, payload []byte, err error) {
	names, err := listFiles(s.fsys, s.dir, snapPrefix, snapSuffix)
	if err != nil {
		return 0, nil, err
	}
	for i := len(names) - 1; i >= 0; i-- {
		if _, err := snapIndex(names[i]); err != nil {
			continue // not a snapshot of ours
		}
		data, err := ReadFile(s.fsys, filepath.Join(s.dir, names[i]))
		if err != nil {
			continue
		}
		idx, payload, err := DecodeSnapshot(data)
		if err != nil {
			continue // torn or corrupt: fall back to the previous generation
		}
		return idx, payload, nil
	}
	return 0, nil, ErrNoSnapshot
}
