package durable

import (
	"path/filepath"
	"testing"

	"slicer/internal/analysis"
)

// TestVetGatesOverDurable runs the errdrop and maporder analyzers as a
// library over this package. Durability code is exactly where a silently
// dropped error turns into data loss — an ignored fsync failure means an
// acknowledged record that is not on disk — and where map-iteration order
// must never decide what gets replayed. Keeping the slicer-vet gates wired
// here as a regression test means a violation fails `go test`, not just the
// separate lint job.
func TestVetGatesOverDurable(t *testing.T) {
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(filepath.Join(root, filepath.FromSlash("internal/durable")))
	if err != nil {
		t.Fatal(err)
	}
	if pkg == nil {
		t.Fatal("no package at internal/durable")
	}
	for _, terr := range pkg.TypeErrors {
		t.Fatalf("typecheck: %v", terr)
	}
	diags := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{
		analysis.ErrDrop,
		analysis.MapOrder,
	})
	for _, d := range diags {
		t.Errorf("slicer-vet gate violation in durable engine: %s", d)
	}
}
