package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"time"

	"slicer/internal/obs"
)

// WAL on-disk format. A log is a directory of segment files named
// wal-<firstIndex, 16 hex digits>.log, each an append-only run of framed
// records:
//
//	+----------------+----------------+====================+
//	| length  u32 LE | CRC32C  u32 LE | payload (length B) |
//	+----------------+----------------+====================+
//
// The CRC (Castagnoli polynomial, the one with hardware support) covers
// the payload. Record indices are implicit: the segment name carries the
// index of its first record and records are dense within a segment, so a
// byte offset maps to exactly one index — there is nothing in the frame
// for corruption to desynchronize. A torn tail (short header, short
// payload, or CRC mismatch) marks the end of the log; everything after it
// is discarded on open.

// MaxRecordSize bounds one WAL record (64 MiB, matching the wire
// protocol's message bound) so a corrupt length field cannot trigger an
// unbounded allocation.
const MaxRecordSize = 64 << 20

// DefaultSegmentBytes is the segment rotation threshold.
const DefaultSegmentBytes = 8 << 20

const (
	segPrefix = "wal-"
	segSuffix = ".log"
	recHdr    = 8
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrRecordTorn reports a record cut short by a crash (or truncated
// adversarially) — a valid end-of-log marker, not a failure.
var ErrRecordTorn = errors.New("durable: torn wal record")

// ErrRecordCorrupt reports a record whose frame parses but whose checksum
// (or length bound) does not hold.
var ErrRecordCorrupt = errors.New("durable: corrupt wal record")

// AppendRecord appends the framed encoding of payload to dst.
func AppendRecord(dst, payload []byte) []byte {
	var hdr [recHdr]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// DecodeRecord decodes one framed record from the front of data, returning
// the payload and the remaining bytes. io.EOF-like clean exhaustion is the
// caller's job (len(data) == 0); a short or checksum-failing record
// returns ErrRecordTorn / ErrRecordCorrupt.
func DecodeRecord(data []byte) (payload, rest []byte, err error) {
	if len(data) < recHdr {
		return nil, nil, ErrRecordTorn
	}
	n := binary.LittleEndian.Uint32(data[0:4])
	if n > MaxRecordSize {
		return nil, nil, fmt.Errorf("%w: length %d exceeds %d", ErrRecordCorrupt, n, MaxRecordSize)
	}
	if uint64(len(data)-recHdr) < uint64(n) {
		return nil, nil, ErrRecordTorn
	}
	payload = data[recHdr : recHdr+int(n)]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(data[4:8]) {
		return nil, nil, fmt.Errorf("%w: checksum mismatch", ErrRecordCorrupt)
	}
	return payload, data[recHdr+int(n):], nil
}

// segName renders a segment file name for its first record index.
func segName(first uint64) string { return fmt.Sprintf("%s%016x%s", segPrefix, first, segSuffix) }

// segFirst parses a segment file name back into its first record index.
func segFirst(name string) (uint64, error) {
	var first uint64
	if _, err := fmt.Sscanf(name, segPrefix+"%016x"+segSuffix, &first); err != nil {
		return 0, fmt.Errorf("durable: bad segment name %q: %w", name, err)
	}
	return first, nil
}

// walEntry is one decoded record with its global index.
type walEntry struct {
	index   uint64
	payload []byte
}

// segScan is one scanned segment.
type segScan struct {
	name     string
	first    uint64
	records  int
	validLen int64 // byte length of the valid record prefix
	torn     bool  // decoding stopped before the end of the file
}

// walScan is the result of reading a whole log directory.
type walScan struct {
	segs    []segScan  // surviving segments, ascending
	entries []walEntry // every valid record, ascending
	next    uint64     // index the next append gets (0 if no segments)
	dropped int        // decodable records discarded because they follow a torn/corrupt one
	drop    []string   // segment files to delete (they follow a torn segment)
}

// scanWAL reads every segment, stopping at the first torn or corrupt
// record: that record and everything after it (including whole later
// segments) is marked for discard, exactly the "truncate, don't fail"
// recovery contract.
func scanWAL(fsys FS, dir string) (*walScan, error) {
	names, err := listFiles(fsys, dir, segPrefix, segSuffix)
	if err != nil {
		return nil, err
	}
	scan := &walScan{}
	stopped := false
	for _, name := range names {
		first, err := segFirst(name)
		if err != nil {
			// Not a segment of ours (e.g. editor droppings); skip it.
			continue
		}
		if stopped {
			// A torn record ends the log; later segments hold acknowledged
			// writes from before a rewind that never happened in practice,
			// or garbage. Count what was decodable and drop the file.
			data, err := ReadFile(fsys, filepath.Join(dir, name))
			if err == nil {
				for len(data) > 0 {
					var derr error
					_, data, derr = DecodeRecord(data)
					if derr != nil {
						break
					}
					scan.dropped++
				}
			}
			scan.drop = append(scan.drop, name)
			continue
		}
		if want := scan.next; want != 0 && first != want {
			return nil, fmt.Errorf("durable: wal gap: segment %s starts at %d, want %d", name, first, want)
		}
		data, err := ReadFile(fsys, filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("durable: read segment %s: %w", name, err)
		}
		seg := segScan{name: name, first: first}
		idx := first
		rest := data
		for len(rest) > 0 {
			payload, r, derr := DecodeRecord(rest)
			if derr != nil {
				seg.torn = true
				stopped = true
				scan.dropped++ // the torn record itself
				break
			}
			scan.entries = append(scan.entries, walEntry{index: idx, payload: append([]byte(nil), payload...)})
			seg.records++
			seg.validLen += int64(recHdr + len(payload))
			idx++
			rest = r
		}
		if seg.torn && seg.records == 0 && len(scan.segs) > 0 {
			// Nothing valid in this segment: drop the whole file rather
			// than keeping an empty shell.
			scan.drop = append(scan.drop, name)
		} else {
			scan.segs = append(scan.segs, seg)
		}
		scan.next = idx
	}
	return scan, nil
}

// LogOptions configures OpenLog. The zero value is FsyncAlways with the
// default segment size, starting at index 1.
type LogOptions struct {
	// SegmentBytes rotates to a new segment file once the active one
	// exceeds this size (default DefaultSegmentBytes).
	SegmentBytes int64
	// Fsync selects when appends become durable (default FsyncAlways).
	Fsync Policy
	// FsyncInterval is the maximum staleness under FsyncInterval.
	FsyncInterval time.Duration
	// Start is the index assigned to the first record of a brand-new log
	// (default 1). Ignored when segments already exist — recovery dictates
	// the position. Pass RecoveredState.NextIndex so a log whose segments
	// were fully compacted away continues counting after its snapshot.
	Start uint64
	// FileMode is the permission for created files (default 0o600: WAL
	// payloads are whatever the application journals, so default private).
	FileMode os.FileMode
}

func (o LogOptions) segmentBytes() int64 {
	if o.SegmentBytes <= 0 {
		return DefaultSegmentBytes
	}
	return o.SegmentBytes
}

func (o LogOptions) fileMode() os.FileMode {
	if o.FileMode == 0 {
		return 0o600
	}
	return o.FileMode
}

// Log is an append-only write-ahead log over segment files. All methods
// are safe for concurrent use; appends are serialized.
type Log struct {
	mu   sync.Mutex
	fsys FS
	dir  string
	opts LogOptions

	f        File // active segment
	segs     []segScan
	segStart uint64 // first index of the active segment
	segBytes int64  // bytes in the active segment
	next     uint64 // index the next append will get
	first    uint64 // smallest index still present (for introspection)
	dirty    bool   // unsynced appends pending
	lastSync time.Time
	closed   bool
	broken   error // first write/fsync failure; the log is fail-stop after it

	appendDur *obs.Histogram
	fsyncDur  *obs.Histogram
	appended  *obs.Counter
	bytes     *obs.Counter
	segments  *obs.Gauge
}

// OpenLog opens (or creates) the log in dir, truncating any torn tail left
// by a crash so the next append lands on a clean boundary. Records
// already present are not returned here — use Recover before OpenLog to
// read them.
func OpenLog(fsys FS, dir string, opts LogOptions) (*Log, error) {
	if err := fsys.MkdirAll(dir, 0o700); err != nil {
		return nil, fmt.Errorf("durable: create log dir: %w", err)
	}
	scan, err := scanWAL(fsys, dir)
	if err != nil {
		return nil, err
	}
	l := &Log{fsys: fsys, dir: dir, opts: opts, lastSync: time.Now()}
	// Drop whole segments that follow a torn record.
	for _, name := range scan.drop {
		if err := fsys.Remove(filepath.Join(dir, name)); err != nil {
			return nil, fmt.Errorf("durable: drop trailing segment %s: %w", name, err)
		}
	}
	if len(scan.drop) > 0 {
		if err := fsys.SyncDir(dir); err != nil {
			return nil, err
		}
	}
	if len(scan.segs) == 0 {
		start := opts.Start
		if start == 0 {
			start = 1
		}
		if err := l.openSegment(start); err != nil {
			return nil, err
		}
		l.next, l.first = start, start
		return l, nil
	}
	last := scan.segs[len(scan.segs)-1]
	f, err := fsys.OpenFile(filepath.Join(dir, last.name), os.O_RDWR|os.O_APPEND, opts.fileMode())
	if err != nil {
		return nil, fmt.Errorf("durable: open segment %s: %w", last.name, err)
	}
	if last.torn {
		// Chop the torn tail in place so the next record starts on a clean
		// frame boundary, and make the truncation durable before
		// acknowledging anything appended after it.
		if err := f.Truncate(last.validLen); err != nil {
			_ = f.Close()
			return nil, fmt.Errorf("durable: truncate torn tail of %s: %w", last.name, err)
		}
		if err := f.Sync(); err != nil {
			_ = f.Close()
			return nil, fmt.Errorf("durable: sync truncated %s: %w", last.name, err)
		}
	}
	l.f = f
	l.segs = scan.segs[: len(scan.segs)-1 : len(scan.segs)-1]
	l.segStart = last.first
	l.segBytes = last.validLen
	l.next = last.first + uint64(last.records)
	l.first = scan.segs[0].first
	return l, nil
}

// SetMetrics attaches append/fsync latency histograms and volume counters
// (series prefix slicer_wal_*). Call before serving; nil-safe throughout.
func (l *Log) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.appendDur = reg.Histogram("slicer_wal_append_seconds",
		"Latency of one WAL append (frame write, excluding fsync).")
	l.fsyncDur = reg.Histogram("slicer_wal_fsync_seconds",
		"Latency of one WAL fsync.")
	l.appended = reg.Counter("slicer_wal_records_total", "Records appended to the WAL.")
	l.bytes = reg.Counter("slicer_wal_appended_bytes_total", "Bytes appended to the WAL (frames included).")
	l.segments = reg.Gauge("slicer_wal_segments", "Segment files currently in the WAL directory.")
	l.segments.Set(float64(len(l.segs) + 1))
}

// openSegment starts a fresh segment whose first record will get index
// first. Caller holds l.mu (or is initializing).
func (l *Log) openSegment(first uint64) error {
	name := segName(first)
	f, err := l.fsys.OpenFile(filepath.Join(l.dir, name), os.O_WRONLY|os.O_CREATE|os.O_APPEND, l.opts.fileMode())
	if err != nil {
		return fmt.Errorf("durable: create segment %s: %w", name, err)
	}
	if err := l.fsys.SyncDir(l.dir); err != nil {
		_ = f.Close()
		return err
	}
	l.f = f
	l.segStart = first
	l.segBytes = 0
	l.segments.Set(float64(len(l.segs) + 1))
	return nil
}

// Append journals one record and returns its index. Durability follows the
// configured fsync policy: under FsyncAlways the record is on disk when
// Append returns; under FsyncInterval/FsyncNever it may still be lost to a
// crash until the next sync. An error means the record must be considered
// lost (and the log is positioned so recovery discards any torn bytes).
func (l *Log) Append(payload []byte) (uint64, error) {
	if len(payload) > MaxRecordSize {
		return 0, fmt.Errorf("durable: record of %d bytes exceeds %d", len(payload), MaxRecordSize)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.broken != nil {
		return 0, l.broken
	}
	if l.segBytes >= l.opts.segmentBytes() {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	frame := AppendRecord(make([]byte, 0, recHdr+len(payload)), payload)
	t0 := l.appendDur.Start()
	if _, err := l.f.Write(frame); err != nil {
		// The segment may now hold a torn frame. Appending more after it
		// would bury acknowledged records behind the tear, so the log goes
		// fail-stop: every later Append returns this error and recovery
		// truncates the tear away.
		l.broken = fmt.Errorf("durable: append: %w", err)
		return 0, l.broken
	}
	l.appendDur.ObserveSince(t0)
	idx := l.next
	l.next++
	l.segBytes += int64(len(frame))
	l.dirty = true
	l.appended.Inc()
	l.bytes.Add(uint64(len(frame)))
	if err := l.maybeSyncLocked(); err != nil {
		return 0, err
	}
	return idx, nil
}

// maybeSyncLocked applies the fsync policy after an append.
func (l *Log) maybeSyncLocked() error {
	switch l.opts.Fsync {
	case FsyncAlways:
		return l.syncLocked()
	case FsyncInterval:
		if time.Since(l.lastSync) >= l.opts.FsyncInterval {
			return l.syncLocked()
		}
	case FsyncNever:
	}
	return nil
}

func (l *Log) syncLocked() error {
	if !l.dirty {
		return nil
	}
	if l.broken != nil {
		return l.broken
	}
	t0 := l.fsyncDur.Start()
	if err := l.f.Sync(); err != nil {
		// A failed fsync leaves the kernel page cache in an unknowable
		// state (the error is reported once and the dirty pages may be
		// dropped); treat it as fatal rather than retrying into silence.
		l.broken = fmt.Errorf("durable: fsync: %w", err)
		return l.broken
	}
	l.fsyncDur.ObserveSince(t0)
	l.dirty = false
	l.lastSync = time.Now()
	return nil
}

// Sync forces pending appends to disk regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.syncLocked()
}

// rotateLocked seals the active segment and starts the next one. The old
// segment is always synced first: a closed segment is immutable and fully
// durable no matter the policy.
func (l *Log) rotateLocked() error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	records := int(l.next - l.segStart)
	if err := l.f.Close(); err != nil {
		return err
	}
	l.segs = append(l.segs, segScan{name: segName(l.segStart), first: l.segStart, records: records, validLen: l.segBytes})
	return l.openSegment(l.next)
}

// CompactBefore removes closed segments every record of which has index
// <= upTo (typically the index covered by the latest snapshot). The active
// segment is never removed.
func (l *Log) CompactBefore(upTo uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	kept := l.segs[:0]
	removed := false
	for i, s := range l.segs {
		end := s.first + uint64(s.records) - 1
		if end <= upTo {
			if err := l.fsys.Remove(filepath.Join(l.dir, s.name)); err != nil {
				// Keep this and the rest; retry at the next compaction.
				kept = append(kept, l.segs[i:]...)
				break
			}
			removed = true
			continue
		}
		kept = append(kept, s)
	}
	l.segs = kept
	if len(l.segs) > 0 {
		l.first = l.segs[0].first
	} else {
		l.first = l.segStart
	}
	l.segments.Set(float64(len(l.segs) + 1))
	if removed {
		return l.fsys.SyncDir(l.dir)
	}
	return nil
}

// NextIndex reports the index the next Append will return.
func (l *Log) NextIndex() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// FirstIndex reports the smallest index still present in the log files.
func (l *Log) FirstIndex() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.first
}

// Segments reports how many segment files the log currently spans.
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.segs) + 1
}

// Close syncs pending appends and closes the active segment.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.syncLocked(); err != nil {
		_ = l.f.Close()
		return err
	}
	return l.f.Close()
}
