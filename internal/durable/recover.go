package durable

import (
	"errors"
	"fmt"
)

// RecoveredState is everything a server needs to rebuild its in-memory
// state after a restart or crash: the newest valid snapshot plus the WAL
// records appended after it, with any torn tail already discarded.
type RecoveredState struct {
	// SnapshotIndex is the WAL index the snapshot covers (0: no snapshot).
	SnapshotIndex uint64
	// Snapshot is the snapshot payload (nil: no snapshot).
	Snapshot []byte
	// Entries are the WAL payloads to replay on top of the snapshot, in
	// append order. Entries[0] has index FirstIndex.
	Entries [][]byte
	// FirstIndex is the WAL index of Entries[0] (meaningless when Entries
	// is empty).
	FirstIndex uint64
	// NextIndex is where the log resumes: pass it as LogOptions.Start when
	// reopening the log for writes.
	NextIndex uint64
	// TruncatedRecords counts torn/corrupt records discarded from the WAL
	// tail — work that was in flight (never acknowledged under
	// FsyncAlways) when the process died.
	TruncatedRecords int
}

// Empty reports whether there is nothing to recover (fresh data dir).
func (r *RecoveredState) Empty() bool {
	return r.Snapshot == nil && len(r.Entries) == 0
}

// Recover reads a data directory: it loads the newest valid snapshot (if
// any), replays the WAL, keeps only records the snapshot does not already
// cover, and truncates at the first torn or corrupt record instead of
// failing. It does not modify the directory — reopen the log with
// OpenLog (passing NextIndex as LogOptions.Start) to resume appending.
func Recover(fsys FS, dir string) (*RecoveredState, error) {
	rec := &RecoveredState{NextIndex: 1}
	idx, payload, err := NewSnapshotter(fsys, dir, 0).Load()
	switch {
	case err == nil:
		rec.SnapshotIndex = idx
		rec.Snapshot = payload
		rec.NextIndex = idx + 1
	case errors.Is(err, ErrNoSnapshot):
	default:
		return nil, err
	}
	scan, err := scanWAL(fsys, dir)
	if err != nil {
		return nil, err
	}
	rec.TruncatedRecords = scan.dropped
	for _, e := range scan.entries {
		if e.index <= rec.SnapshotIndex {
			continue // already folded into the snapshot
		}
		if len(rec.Entries) == 0 {
			rec.FirstIndex = e.index
		} else if want := rec.FirstIndex + uint64(len(rec.Entries)); e.index != want {
			return nil, fmt.Errorf("durable: recovery gap: wal jumps from %d to %d", want-1, e.index)
		}
		rec.Entries = append(rec.Entries, e.payload)
	}
	if len(rec.Entries) > 0 {
		if rec.SnapshotIndex != 0 && rec.FirstIndex != rec.SnapshotIndex+1 {
			return nil, fmt.Errorf("durable: recovery gap: snapshot covers %d but wal resumes at %d",
				rec.SnapshotIndex, rec.FirstIndex)
		}
		rec.NextIndex = rec.FirstIndex + uint64(len(rec.Entries))
	} else if scan.next > rec.NextIndex {
		rec.NextIndex = scan.next
	}
	return rec, nil
}
