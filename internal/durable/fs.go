package durable

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
)

// File is the slice of *os.File the engine needs. Truncate lets recovery
// chop a torn WAL tail in place; Sync is the durability barrier.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Sync() error
	Truncate(size int64) error
}

// FS abstracts the filesystem so crash behavior is testable: OS is the
// real thing, MemFS models durability and injects faults. Paths follow
// path/filepath semantics of the host implementation.
type FS interface {
	// OpenFile opens a file with os.OpenFile flags.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Rename atomically replaces newpath with oldpath (POSIX semantics).
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// ReadDir lists a directory sorted by name.
	ReadDir(name string) ([]fs.DirEntry, error)
	// MkdirAll creates a directory and its parents.
	MkdirAll(path string, perm os.FileMode) error
	// SyncDir makes a directory's entries (creates, renames, removes)
	// durable.
	SyncDir(name string) error
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) Rename(oldpath, newpath string) error       { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                   { return os.Remove(name) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }
func (osFS) MkdirAll(path string, perm os.FileMode) error {
	return os.MkdirAll(path, perm)
}

func (osFS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	// Directory fsync is how a rename or create becomes durable on POSIX.
	if err := d.Sync(); err != nil {
		_ = d.Close()
		return err
	}
	return d.Close()
}

// ReadFile reads a whole file through an FS.
func ReadFile(fsys FS, name string) ([]byte, error) {
	f, err := fsys.OpenFile(name, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// AtomicWriteFileFS durably replaces name with data: write to a temp file
// in the same directory, fsync it, rename over the target, fsync the
// directory. A crash at any point leaves either the old content or the new
// content, never a torn mix.
func AtomicWriteFileFS(fsys FS, name string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(name)
	tmp := name + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return fmt.Errorf("durable: atomic write %s: %w", name, err)
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		_ = fsys.Remove(tmp)
		return fmt.Errorf("durable: atomic write %s: %w", name, err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = fsys.Remove(tmp)
		return fmt.Errorf("durable: atomic write %s: sync: %w", name, err)
	}
	if err := f.Close(); err != nil {
		_ = fsys.Remove(tmp)
		return fmt.Errorf("durable: atomic write %s: close: %w", name, err)
	}
	if err := fsys.Rename(tmp, name); err != nil {
		_ = fsys.Remove(tmp)
		return fmt.Errorf("durable: atomic write %s: rename: %w", name, err)
	}
	return fsys.SyncDir(dir)
}

// AtomicWriteFile is AtomicWriteFileFS on the real filesystem. Every state
// file a Slicer process writes (CLI deployment state, bench artifacts,
// legacy shutdown snapshots) goes through this so a crash mid-write can
// never corrupt it.
func AtomicWriteFile(name string, data []byte, perm os.FileMode) error {
	return AtomicWriteFileFS(OS, name, data, perm)
}

// listFiles returns the names (not paths) of dir's regular files matching
// the prefix/suffix, sorted ascending. A missing directory is an empty
// listing.
func listFiles(fsys FS, dir, prefix, suffix string) ([]string, error) {
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		n := e.Name()
		if len(n) > len(prefix)+len(suffix) &&
			n[:len(prefix)] == prefix && n[len(n)-len(suffix):] == suffix {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names, nil
}
