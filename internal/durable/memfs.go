package durable

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"path"
	"sort"
	"strings"
	"sync"
	"time"
)

// ErrInjected is the error every MemFS operation returns once an armed
// fault has fired. Detect it with errors.Is.
var ErrInjected = errors.New("durable: injected fault")

// MemFS is an in-memory FS that models crash durability and injects
// faults, making "kill -9 mid-write" a deterministic unit test.
//
// The model follows POSIX: directory entries and inode contents are
// separately durable. A write lands in the inode's volatile content and
// becomes durable on File.Sync; a create, rename or remove changes the
// volatile directory and becomes durable on SyncDir of the parent. Crash
// discards everything volatile, leaving exactly what a real machine would
// find after power loss — a rename whose directory was never fsynced rolls
// back to the old target, an unsynced append vanishes, a synced temp file
// renamed over a target keeps its synced bytes.
//
// Faults: FailAfterWriteOps(n) lets n write operations (Write, Sync,
// create, Rename, Remove, Truncate, SyncDir, MkdirAll) succeed and fails
// every later one with ErrInjected; FailNextWriteShort makes the next
// Write persist only half its bytes before erroring — and those partial
// bytes count as having reached the platter, so they survive Crash: the
// torn-write outcome recovery must truncate.
//
// Paths are normalized to forward slashes; MemFS is safe for concurrent
// use.
type MemFS struct {
	mu      sync.Mutex
	files   map[string]*inode // volatile directory: name -> inode
	durable map[string]*inode // durable directory: survives Crash
	dirs    map[string]bool   // volatile view of existing directories

	writeOps   int // write operations performed so far
	failAfter  int // <0: disarmed; >=0: ops allowed before injection
	shortWrite bool
}

// inode is one file's storage: volatile content plus the content made
// durable by the last Sync.
type inode struct {
	data   []byte
	synced []byte
}

// NewMemFS creates an empty MemFS with fault injection disarmed.
func NewMemFS() *MemFS {
	return &MemFS{
		files:     make(map[string]*inode),
		durable:   make(map[string]*inode),
		dirs:      map[string]bool{".": true, "/": true},
		failAfter: -1,
	}
}

// FailAfterWriteOps arms the fault: n more write operations succeed, then
// every operation fails with ErrInjected. A negative n disarms.
func (m *MemFS) FailAfterWriteOps(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.failAfter = n
	m.writeOps = 0
}

// FailNextWriteShort makes the next Write persist only half its bytes and
// then return ErrInjected — a torn write, as left by a crash mid-append.
func (m *MemFS) FailNextWriteShort() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.shortWrite = true
}

// WriteOps reports how many write operations have run (for sweeping
// FailAfterWriteOps over every crash point).
func (m *MemFS) WriteOps() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.writeOps
}

// Crash simulates power loss: the volatile directory and all unsynced
// inode contents are discarded. Fault injection is disarmed so the
// "rebooted" process can keep using the FS.
func (m *MemFS) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files = make(map[string]*inode, len(m.durable))
	for name, ino := range m.durable {
		ino.data = append(ino.data[:0:0], ino.synced...)
		m.files[name] = ino
		m.dirs[path.Dir(name)] = true
	}
	m.failAfter = -1
	m.shortWrite = false
	m.writeOps = 0
}

// countWrite charges one write operation against the armed fault. The
// caller holds m.mu.
func (m *MemFS) countWrite() error {
	if m.failAfter >= 0 && m.writeOps >= m.failAfter {
		return ErrInjected
	}
	m.writeOps++
	return nil
}

func norm(name string) string { return path.Clean(strings.ReplaceAll(name, "\\", "/")) }

// OpenFile implements FS.
func (m *MemFS) OpenFile(name string, flag int, _ os.FileMode) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = norm(name)
	ino, ok := m.files[name]
	if !ok {
		if flag&os.O_CREATE == 0 {
			return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
		}
		if err := m.countWrite(); err != nil {
			return nil, err
		}
		ino = &inode{}
		m.files[name] = ino
		m.dirs[path.Dir(name)] = true
	} else if flag&os.O_TRUNC != 0 {
		if err := m.countWrite(); err != nil {
			return nil, err
		}
		ino.data = nil
	}
	h := &memHandle{fs: m, ino: ino}
	if flag&os.O_APPEND != 0 {
		h.off = int64(len(ino.data))
	}
	return h, nil
}

// Rename implements FS. The inode carries its synced content to the new
// name; the directory change is durable only after SyncDir.
func (m *MemFS) Rename(oldpath, newpath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.countWrite(); err != nil {
		return err
	}
	oldpath, newpath = norm(oldpath), norm(newpath)
	ino, ok := m.files[oldpath]
	if !ok {
		return &os.PathError{Op: "rename", Path: oldpath, Err: os.ErrNotExist}
	}
	m.files[newpath] = ino
	delete(m.files, oldpath)
	m.dirs[path.Dir(newpath)] = true
	return nil
}

// Remove implements FS. Durable entries reappear on Crash until the
// removal is fsynced by SyncDir.
func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.countWrite(); err != nil {
		return err
	}
	name = norm(name)
	if _, ok := m.files[name]; !ok {
		return &os.PathError{Op: "remove", Path: name, Err: os.ErrNotExist}
	}
	delete(m.files, name)
	return nil
}

// ReadDir implements FS.
func (m *MemFS) ReadDir(name string) ([]fs.DirEntry, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = norm(name)
	if !m.dirs[name] {
		return nil, &os.PathError{Op: "readdir", Path: name, Err: os.ErrNotExist}
	}
	var ents []fs.DirEntry
	for fname, ino := range m.files {
		if path.Dir(fname) == name {
			ents = append(ents, memDirEntry{name: path.Base(fname), size: int64(len(ino.data))})
		}
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].Name() < ents[j].Name() })
	return ents, nil
}

// MkdirAll implements FS.
func (m *MemFS) MkdirAll(p string, _ os.FileMode) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.countWrite(); err != nil {
		return err
	}
	p = norm(p)
	for p != "." && p != "/" {
		m.dirs[p] = true
		p = path.Dir(p)
	}
	return nil
}

// SyncDir implements FS: the directory's volatile entries become the
// durable ones — creates and renames survive Crash, removes stay gone.
func (m *MemFS) SyncDir(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.countWrite(); err != nil {
		return err
	}
	name = norm(name)
	for fname := range m.durable {
		if path.Dir(fname) == name {
			if _, ok := m.files[fname]; !ok {
				delete(m.durable, fname)
			}
		}
	}
	for fname, ino := range m.files {
		if path.Dir(fname) == name {
			m.durable[fname] = ino
		}
	}
	return nil
}

// memHandle is one open descriptor.
type memHandle struct {
	fs  *MemFS
	ino *inode
	off int64
}

func (h *memHandle) Read(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.off >= int64(len(h.ino.data)) {
		return 0, io.EOF
	}
	n := copy(p, h.ino.data[h.off:])
	h.off += int64(n)
	return n, nil
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.shortWrite {
		h.fs.shortWrite = false
		half := p[:len(p)/2]
		h.writeLocked(half)
		// The partial bytes reached the platter before the device died:
		// they survive Crash even though Sync was never called. This is the
		// adversarial outcome torn-tail truncation exists for.
		h.ino.synced = append(h.ino.synced[:0:0], h.ino.data...)
		return len(half), ErrInjected
	}
	if err := h.fs.countWrite(); err != nil {
		return 0, err
	}
	h.writeLocked(p)
	return len(p), nil
}

// writeLocked applies a write at the handle offset. Caller holds fs.mu.
func (h *memHandle) writeLocked(p []byte) {
	end := h.off + int64(len(p))
	if end > int64(len(h.ino.data)) {
		grown := make([]byte, end)
		copy(grown, h.ino.data)
		h.ino.data = grown
	}
	copy(h.ino.data[h.off:end], p)
	h.off = end
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.fs.countWrite(); err != nil {
		return err
	}
	h.ino.synced = append(h.ino.synced[:0:0], h.ino.data...)
	return nil
}

func (h *memHandle) Truncate(size int64) error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.fs.countWrite(); err != nil {
		return err
	}
	if size < int64(len(h.ino.data)) {
		h.ino.data = h.ino.data[:size]
	}
	if h.off > size {
		h.off = size
	}
	return nil
}

func (h *memHandle) Close() error { return nil }

// memDirEntry is a minimal fs.DirEntry.
type memDirEntry struct {
	name string
	size int64
}

func (e memDirEntry) Name() string      { return e.name }
func (e memDirEntry) IsDir() bool       { return false }
func (e memDirEntry) Type() fs.FileMode { return 0 }
func (e memDirEntry) Info() (fs.FileInfo, error) {
	return memFileInfo{name: e.name, size: e.size}, nil
}

type memFileInfo struct {
	name string
	size int64
}

func (i memFileInfo) Name() string       { return i.name }
func (i memFileInfo) Size() int64        { return i.size }
func (i memFileInfo) Mode() fs.FileMode  { return 0o600 }
func (i memFileInfo) ModTime() time.Time { return time.Time{} }
func (i memFileInfo) IsDir() bool        { return false }
func (i memFileInfo) Sys() any           { return nil }
