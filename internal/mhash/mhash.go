// Package mhash implements the MSet-Mu-Hash incremental multiset hash of
// Clarke et al. (ASIACRYPT 2003), the construction Slicer uses to commit to
// a keyword's result set.
//
// For a multiset M over a countable set B,
//
//	H(M) = Π_{b∈B} H(b)^{M_b}  (mod q)
//
// where H hashes elements into the multiplicative group of a prime field
// GF(q). The hash is:
//
//   - order independent (a multiset hash),
//   - incremental: H(M ∪ N) = H(M) ·_H H(N), so set hashes can be updated in
//     O(1) per element on insertion, and
//   - collision resistant under the discrete-log assumption in GF(q)*.
//
// Removal is supported via modular inversion (used by the deletion twin
// instance).
package mhash

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"math/big"
)

// modulusHex is a fixed 256-bit prime q defining GF(q). It is the standard
// secp256k1 group order, chosen here simply as a well-known safe prime-order
// field modulus; any public 256-bit prime works.
const modulusHex = "fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141"

// Size is the fixed width of serialized hash values in bytes.
const Size = 32

var (
	q    = mustHex(modulusHex)
	qm1  = new(big.Int).Sub(q, big.NewInt(1))
	one  = big.NewInt(1)
	zero = big.NewInt(0)
)

func mustHex(s string) *big.Int {
	v, ok := new(big.Int).SetString(s, 16)
	if !ok {
		panic("mhash: bad modulus constant")
	}
	return v
}

// Modulus returns the field prime q. The on-chain verifier recomputes the
// multiset hash with explicitly metered field multiplications and needs the
// modulus for that.
func Modulus() *big.Int { return new(big.Int).Set(q) }

// HashToField exposes the element-to-field mapping H(b) so the metered
// on-chain verifier can reproduce hash values multiplication by
// multiplication. It also reports how many hash invocations the rejection
// sampling consumed, which the verifier charges for.
func HashToField(element []byte) (v *big.Int, hashCalls int) {
	for ctr := byte(0); ; ctr++ {
		h := sha256.New()
		h.Write([]byte("slicer/mset-mu-hash/v1"))
		h.Write([]byte{ctr})
		h.Write(element)
		out := new(big.Int).SetBytes(h.Sum(nil))
		out.Mod(out, q)
		if out.Cmp(one) > 0 {
			return out, int(ctr) + 1
		}
	}
}

// Value returns the hash's field element (a copy), for verifiers that
// compare against an independently recomputed product.
func (h Hash) Value() *big.Int {
	if h.v == nil {
		return new(big.Int)
	}
	return new(big.Int).Set(h.v)
}

// FromValue wraps a field element as a Hash. It is the inverse of Value and
// exists for the metered verifier; elements outside GF(q)* are rejected.
func FromValue(v *big.Int) (Hash, error) {
	if v.Sign() <= 0 || v.Cmp(q) >= 0 {
		return Hash{}, errors.New("mhash: value outside GF(q)*")
	}
	return Hash{v: new(big.Int).Set(v)}, nil
}

// Hash is an incrementally updatable multiset hash value. The zero value is
// not valid; use Empty or Unmarshal.
type Hash struct {
	v *big.Int
}

// Empty returns H(∅), the identity element.
func Empty() Hash {
	return Hash{v: new(big.Int).Set(one)}
}

// hashToField maps an element into GF(q)* \ {1}. Rejection-samples over a
// counter to avoid modulo bias mattering (negligible at 256 bits anyway) and
// to dodge the degenerate values 0 and 1.
func hashToField(element []byte) *big.Int {
	for ctr := byte(0); ; ctr++ {
		h := sha256.New()
		h.Write([]byte("slicer/mset-mu-hash/v1"))
		h.Write([]byte{ctr})
		h.Write(element)
		v := new(big.Int).SetBytes(h.Sum(nil))
		v.Mod(v, q)
		if v.Cmp(one) > 0 {
			return v
		}
	}
}

// Add returns the hash of the multiset with one more occurrence of element.
// The receiver is not modified.
func (h Hash) Add(element []byte) Hash {
	out := new(big.Int).Mul(h.v, hashToField(element))
	out.Mod(out, q)
	return Hash{v: out}
}

// Remove returns the hash with one occurrence of element removed. It is the
// inverse of Add; removing an element that was never added silently yields
// the hash of the (formal) multiset with multiplicity -1, so callers must
// track multiplicities themselves.
func (h Hash) Remove(element []byte) Hash {
	inv := new(big.Int).ModInverse(hashToField(element), q)
	out := new(big.Int).Mul(h.v, inv)
	out.Mod(out, q)
	return Hash{v: out}
}

// Union returns H(M ∪ N) = H(M) ·_H H(N).
func (h Hash) Union(other Hash) Hash {
	out := new(big.Int).Mul(h.v, other.v)
	out.Mod(out, q)
	return Hash{v: out}
}

// OfMultiset hashes a whole multiset in one call.
func OfMultiset(elements [][]byte) Hash {
	h := Empty()
	for _, e := range elements {
		h = h.Add(e)
	}
	return h
}

// Equal reports whether two hashes are the ≡_H relation of the paper
// (equality in GF(q)).
func (h Hash) Equal(other Hash) bool {
	if h.v == nil || other.v == nil {
		return h.v == other.v
	}
	return h.v.Cmp(other.v) == 0
}

// IsEmpty reports whether the hash equals H(∅).
func (h Hash) IsEmpty() bool {
	return h.v != nil && h.v.Cmp(one) == 0
}

// Marshal serializes the hash at fixed width.
func (h Hash) Marshal() []byte {
	if h.v == nil {
		return make([]byte, Size)
	}
	return h.v.FillBytes(make([]byte, Size))
}

// Unmarshal parses a fixed-width serialized hash.
func Unmarshal(data []byte) (Hash, error) {
	if len(data) != Size {
		return Hash{}, fmt.Errorf("mhash: value must be %d bytes, got %d", Size, len(data))
	}
	v := new(big.Int).SetBytes(data)
	if v.Cmp(zero) == 0 || v.Cmp(q) >= 0 {
		return Hash{}, errors.New("mhash: value outside GF(q)*")
	}
	return Hash{v: v}, nil
}
