package mhash

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmptyIdentity(t *testing.T) {
	e := Empty()
	if !e.IsEmpty() {
		t.Error("Empty() not recognized as empty")
	}
	h := e.Add([]byte("x"))
	if h.IsEmpty() {
		t.Error("singleton hash reported empty")
	}
	if !e.Union(h).Equal(h) {
		t.Error("H(∅) is not the union identity")
	}
}

func TestOrderIndependence(t *testing.T) {
	f := func(elements [][]byte, seed int64) bool {
		h1 := OfMultiset(elements)
		shuffled := make([][]byte, len(elements))
		copy(shuffled, elements)
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		return h1.Equal(OfMultiset(shuffled))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnionHomomorphism(t *testing.T) {
	f := func(m, n [][]byte) bool {
		union := OfMultiset(append(append([][]byte{}, m...), n...))
		return union.Equal(OfMultiset(m).Union(OfMultiset(n)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddRemoveInverse(t *testing.T) {
	f := func(base [][]byte, extra []byte) bool {
		h := OfMultiset(base)
		return h.Add(extra).Remove(extra).Equal(h)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMultiplicityMatters(t *testing.T) {
	x := []byte("x")
	once := Empty().Add(x)
	twice := Empty().Add(x).Add(x)
	if once.Equal(twice) {
		t.Error("multiset hash ignores multiplicity")
	}
}

func TestDistinctSetsDistinctHashes(t *testing.T) {
	// Not a collision-resistance proof, but a smoke test that unrelated
	// small sets do not collide.
	seen := make(map[string][]string)
	sets := [][]string{
		{}, {"a"}, {"b"}, {"a", "b"}, {"a", "a"}, {"ab"}, {"a", "b", "c"},
		{"c", "b", "a"}, // should equal {"a","b","c"}
	}
	for _, set := range sets {
		elems := make([][]byte, len(set))
		for i, s := range set {
			elems[i] = []byte(s)
		}
		key := string(OfMultiset(elems).Marshal())
		seen[key] = append(seen[key], "")
	}
	// 8 sets, two of which are permutations of each other -> 7 distinct.
	if len(seen) != 7 {
		t.Errorf("got %d distinct hashes, want 7", len(seen))
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	f := func(elements [][]byte) bool {
		h := OfMultiset(elements)
		got, err := Unmarshal(h.Marshal())
		return err == nil && got.Equal(h)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalRejectsBadWidthAndRange(t *testing.T) {
	if _, err := Unmarshal(make([]byte, Size-1)); err == nil {
		t.Error("short encoding accepted")
	}
	if _, err := Unmarshal(make([]byte, Size)); err == nil {
		t.Error("zero field element accepted")
	}
	tooBig := q.Bytes() // exactly q, outside GF(q)*
	if _, err := Unmarshal(tooBig); err == nil {
		t.Error("value == q accepted")
	}
}

func TestHashToFieldInRange(t *testing.T) {
	f := func(element []byte) bool {
		v, calls := HashToField(element)
		return calls >= 1 && v.Sign() > 0 && v.Cmp(q) < 0 && v.Cmp(one) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueFromValueRoundTrip(t *testing.T) {
	h := OfMultiset([][]byte{[]byte("a"), []byte("b")})
	got, err := FromValue(h.Value())
	if err != nil {
		t.Fatalf("FromValue: %v", err)
	}
	if !got.Equal(h) {
		t.Error("Value/FromValue round trip mismatch")
	}
	if _, err := FromValue(q); err == nil {
		t.Error("FromValue accepted a value outside GF(q)*")
	}
}
