package wire

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math/big"
	"sync"
	"time"

	"slicer/internal/accumulator"
	"slicer/internal/audit"
	"slicer/internal/core"
	"slicer/internal/obs"
	"slicer/internal/store"
	"slicer/internal/trapdoor"
)

// Cloud RPC methods.
const (
	MethodCloudInit   = "cloud.init"
	MethodCloudUpdate = "cloud.update"
	MethodCloudSearch = "cloud.search"
	MethodCloudStats  = "cloud.stats"
)

// CloudInitMsg carries the owner's CloudState over the wire.
type CloudInitMsg struct {
	Params      core.Params `json:"params"`
	AccPub      []byte      `json:"accPub"`
	TrapdoorPub []byte      `json:"trapdoorPub"`
	Index       []byte      `json:"index"`
	Primes      [][]byte    `json:"primes"`
	Ac          []byte      `json:"ac"`
	// WitnessCached selects the cloud's witness strategy.
	WitnessCached bool `json:"witnessCached"`
}

// UpdateMsg carries an UpdateOutput delta over the wire.
type UpdateMsg struct {
	Index  []byte   `json:"index"`
	Primes [][]byte `json:"primes"`
	Ac     []byte   `json:"ac"`
}

// CloudStats reports server-side sizes and service counters (used by
// experiments, examples and `slicer-cli status`).
type CloudStats struct {
	IndexEntries int `json:"indexEntries"`
	IndexBytes   int `json:"indexBytes"`
	Primes       int `json:"primes"`
	ADSBytes     int `json:"adsBytes"`
	// SearchCalls is how many Search requests the hosted cloud has served
	// since it was initialized (one per round trip).
	SearchCalls uint64 `json:"searchCalls"`
	// UptimeSeconds is how long the server process has been up.
	UptimeSeconds float64 `json:"uptimeSeconds"`
	// SearchWindow is the live sliding-window latency view of cloud.search
	// (nil when the server runs without a metrics registry).
	SearchWindow *obs.WindowSnapshot `json:"searchWindow,omitempty"`
	// SLOs are the current objective states (empty when no SLO engine is
	// attached).
	SLOs []obs.SLOStatus `json:"slos,omitempty"`
	// AuditHeadSeq / AuditHeadHash expose the audit ledger head (zero when
	// auditing is off) — the anchor a client can note down and later compare
	// against `slicer-cli audit verify`.
	AuditHeadSeq  uint64 `json:"auditHeadSeq,omitempty"`
	AuditHeadHash string `json:"auditHeadHash,omitempty"`
}

// EncodeCloudInit converts an owner's CloudState into its wire form.
func EncodeCloudInit(st *core.CloudState, cached bool) *CloudInitMsg {
	return &CloudInitMsg{
		Params:        st.Params,
		AccPub:        st.AccumulatorPub.Marshal(),
		TrapdoorPub:   st.TrapdoorPub.MarshalPublic(),
		Index:         st.Index.Marshal(),
		Primes:        encodePrimes(st.Primes),
		Ac:            st.Ac.Bytes(),
		WitnessCached: cached,
	}
}

// DecodeCloudInit parses a wire CloudState.
func DecodeCloudInit(msg *CloudInitMsg) (*core.CloudState, core.WitnessMode, error) {
	accPub, err := accumulator.UnmarshalPublic(msg.AccPub)
	if err != nil {
		return nil, 0, fmt.Errorf("wire: accumulator params: %w", err)
	}
	tpk, err := trapdoor.UnmarshalPublic(msg.TrapdoorPub)
	if err != nil {
		return nil, 0, fmt.Errorf("wire: trapdoor key: %w", err)
	}
	ix, err := store.UnmarshalIndex(msg.Index)
	if err != nil {
		return nil, 0, fmt.Errorf("wire: index: %w", err)
	}
	mode := core.WitnessOnDemand
	if msg.WitnessCached {
		mode = core.WitnessCached
	}
	return &core.CloudState{
		Params:         msg.Params,
		AccumulatorPub: accPub,
		TrapdoorPub:    tpk,
		Index:          ix,
		Primes:         decodePrimes(msg.Primes),
		Ac:             new(big.Int).SetBytes(msg.Ac),
	}, mode, nil
}

// EncodeUpdate converts an UpdateOutput into its wire form.
func EncodeUpdate(out *core.UpdateOutput) *UpdateMsg {
	return &UpdateMsg{
		Index:  out.Index.Marshal(),
		Primes: encodePrimes(out.Primes),
		Ac:     out.Ac.Bytes(),
	}
}

// DecodeUpdate parses a wire UpdateOutput.
func DecodeUpdate(msg *UpdateMsg) (*core.UpdateOutput, error) {
	ix, err := store.UnmarshalIndex(msg.Index)
	if err != nil {
		return nil, fmt.Errorf("wire: index delta: %w", err)
	}
	return &core.UpdateOutput{
		Index:  ix,
		Primes: decodePrimes(msg.Primes),
		Ac:     new(big.Int).SetBytes(msg.Ac),
	}, nil
}

func encodePrimes(primes []*big.Int) [][]byte {
	out := make([][]byte, len(primes))
	for i, p := range primes {
		out[i] = p.Bytes()
	}
	return out
}

func decodePrimes(raw [][]byte) []*big.Int {
	out := make([]*big.Int, len(raw))
	for i, b := range raw {
		out[i] = new(big.Int).SetBytes(b)
	}
	return out
}

// CloudServer hosts a core.Cloud behind the RPC protocol. Connections are
// served concurrently: core.Cloud is safe for concurrent use (searches take
// its read lock, updates its write lock), so the server's own mutex guards
// only the initialization of the cloud pointer — search traffic from many
// clients proceeds in parallel and is never serialized by the RPC layer.
type CloudServer struct {
	mu      sync.RWMutex // guards the cloud pointer, not the cloud's state
	cloud   *core.Cloud
	jour    *journal      // nil until EnableDurability
	aud     *audit.Ledger // nil until EnableAudit
	srv     *Server
	reg     *obs.Registry // nil until SetObservability; forwarded to the hosted cloud
	slo     *obs.Engine   // nil until AttachSLO
	started time.Time
}

// NewCloudServer creates an un-initialized cloud server; the owner
// initializes it remotely with MethodCloudInit. A bounded trace store is
// attached by default so propagated traces are inspectable at
// /debug/traces; tune or replace it via Traces / Server().SetTraceStore.
func NewCloudServer() *CloudServer {
	cs := &CloudServer{srv: NewServer(), started: time.Now()}
	cs.srv.SetTraceStore(obs.NewTraceStore(0))
	cs.srv.HandleMeta(MethodCloudInit, cs.handleInit)
	cs.srv.HandleMeta(MethodCloudUpdate, cs.handleUpdate)
	cs.srv.HandleMeta(MethodCloudSearch, cs.handleSearch)
	cs.srv.Handle(MethodCloudStats, cs.handleStats)
	cs.srv.Handle(MethodCloudMGet, cs.handleMGet)
	cs.srv.Handle(MethodCloudWitness, cs.handleWitness)
	cs.srv.Handle(MethodCloudExport, cs.handleExport)
	cs.srv.HandleMeta(MethodCloudImport, cs.handleImport)
	cs.srv.HandleMeta(MethodCloudDelete, cs.handleDeleteRange)
	return cs
}

// Traces exposes the server's trace store (for /debug/traces and tuning).
func (cs *CloudServer) Traces() *obs.TraceStore { return cs.srv.TraceStore() }

// SetObservability attaches a metrics registry and/or structured logger:
// the RPC layer gains per-method and connection series (server="cloud")
// and the hosted core.Cloud records its search-pipeline phase histograms
// into the same registry. Either argument may be nil.
func (cs *CloudServer) SetObservability(reg *obs.Registry, logger *slog.Logger) {
	cs.srv.SetLogger(logger)
	if reg == nil {
		return
	}
	cs.srv.SetMetrics(reg, "cloud")
	reg.GaugeFunc("slicer_cloud_uptime_seconds",
		"Seconds since the cloud server started.",
		func() float64 { return time.Since(cs.started).Seconds() })
	cs.mu.Lock()
	cs.reg = reg
	if cs.cloud != nil {
		cs.cloud.SetMetrics(reg)
	}
	cs.mu.Unlock()
}

// AttachSLO publishes the server's SLO engine so cloud.stats (and through
// it `slicer-cli status`) reports live objective states next to the sizes.
func (cs *CloudServer) AttachSLO(e *obs.Engine) {
	cs.mu.Lock()
	cs.slo = e
	cs.mu.Unlock()
}

// EnableAudit journals every security-relevant event this server handles —
// init, update, search — into led, attributed to the requesting tenant.
// Appends are best-effort on the serving path: a failing audit disk degrades
// to a counted, logged loss, never a failed search.
func (cs *CloudServer) EnableAudit(led *audit.Ledger) {
	cs.mu.Lock()
	cs.aud = led
	cs.mu.Unlock()
}

// Audit returns the attached audit ledger (nil when auditing is off).
func (cs *CloudServer) Audit() *audit.Ledger {
	cs.mu.RLock()
	defer cs.mu.RUnlock()
	return cs.aud
}

// Server exposes the underlying RPC server for transport-level tuning
// (idle timeout, logger).
func (cs *CloudServer) Server() *Server { return cs.srv }

// Listen binds the server and returns its address.
func (cs *CloudServer) Listen(addr string) (string, error) { return cs.srv.Listen(addr) }

// Close shuts the server down, syncing and closing the journal if
// durability is enabled.
func (cs *CloudServer) Close() error {
	err := cs.srv.Close()
	if j := cs.journal(); j != nil {
		if jerr := j.close(); err == nil {
			err = jerr
		}
	}
	return err
}

func (cs *CloudServer) journal() *journal {
	cs.mu.RLock()
	defer cs.mu.RUnlock()
	return cs.jour
}

// Snapshot serializes the hosted cloud's state (nil if uninitialized), for
// persistence across server restarts.
func (cs *CloudServer) Snapshot() ([]byte, error) {
	cloud, err := cs.get()
	if err != nil {
		return nil, nil
	}
	return cloud.Marshal()
}

// Restore loads a previously snapshotted cloud state. It may only run
// before the owner initializes the server.
func (cs *CloudServer) Restore(data []byte) error {
	cloud, err := core.UnmarshalCloud(data)
	if err != nil {
		return err
	}
	return cs.install(cloud)
}

// install publishes a freshly built cloud, failing if one is already
// hosted.
func (cs *CloudServer) install(cloud *core.Cloud) error {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.cloud != nil {
		return errors.New("wire: cloud already initialized")
	}
	if cs.reg != nil {
		cloud.SetMetrics(cs.reg)
	}
	cs.cloud = cloud
	return nil
}

func (cs *CloudServer) handleInit(params json.RawMessage, _ *obs.Trace, m Meta) (any, error) {
	var msg CloudInitMsg
	if err := json.Unmarshal(params, &msg); err != nil {
		return nil, err
	}
	st, mode, err := DecodeCloudInit(&msg)
	if err != nil {
		return nil, err
	}
	cloud, err := core.NewCloud(st, mode)
	if err != nil {
		return nil, err
	}
	jour := cs.journal()
	if jour == nil {
		if err := cs.install(cloud); err != nil {
			return nil, err
		}
		cs.auditEvent(audit.KindInit, m, fmt.Sprintf("index %d entries, %d primes", cloud.IndexLen(), cloud.PrimeCount()))
		return map[string]bool{"ok": true}, nil
	}
	// Refuse before journaling so a doomed re-init leaves no WAL record.
	if _, err := cs.get(); err == nil {
		return nil, errors.New("wire: cloud already initialized")
	}
	rec := append([]byte{cloudRecInit}, params...)
	if err := jour.commit(rec, func() error { return cs.install(cloud) }, cs.cloudSnapshotState); err != nil {
		return nil, err
	}
	cs.auditEvent(audit.KindInit, m, fmt.Sprintf("index %d entries, %d primes", cloud.IndexLen(), cloud.PrimeCount()))
	return map[string]bool{"ok": true}, nil
}

// auditEvent journals one ok-outcome event best-effort, attributed to the
// requesting tenant and peer.
func (cs *CloudServer) auditEvent(kind string, m Meta, detail string) {
	led := cs.Audit()
	if led == nil {
		return
	}
	if detail == "" {
		detail = "peer " + m.Peer
	} else {
		detail += " (peer " + m.Peer + ")"
	}
	led.Log(audit.Event{Kind: kind, Tenant: m.Tenant, Detail: detail})
}

func (cs *CloudServer) get() (*core.Cloud, error) {
	cs.mu.RLock()
	defer cs.mu.RUnlock()
	if cs.cloud == nil {
		return nil, errors.New("wire: cloud not initialized")
	}
	return cs.cloud, nil
}

func (cs *CloudServer) handleUpdate(params json.RawMessage, _ *obs.Trace, m Meta) (any, error) {
	cloud, err := cs.get()
	if err != nil {
		return nil, err
	}
	var msg UpdateMsg
	if err := json.Unmarshal(params, &msg); err != nil {
		return nil, err
	}
	out, err := DecodeUpdate(&msg)
	if err != nil {
		return nil, err
	}
	jour := cs.journal()
	if jour == nil {
		if err := cloud.ApplyUpdate(out); err != nil {
			return nil, err
		}
		cs.auditEvent(audit.KindUpdate, m, fmt.Sprintf("+%d index entries", out.Index.Len()))
		return map[string]bool{"ok": true}, nil
	}
	// Journal, then apply under the journal mutex: WAL order must equal
	// apply order (the accumulation value is last-writer-wins), and the
	// ack goes out only once the record is durable under the fsync policy.
	rec := append([]byte{cloudRecUpdate}, params...)
	if err := jour.commit(rec, func() error { return cloud.ApplyUpdate(out) }, cs.cloudSnapshotState); err != nil {
		return nil, err
	}
	cs.auditEvent(audit.KindUpdate, m, fmt.Sprintf("+%d index entries", out.Index.Len()))
	return map[string]bool{"ok": true}, nil
}

// handleSearch records the cloud's collect/witness phases into the
// propagated trace (nil for context-free callers — then it is exactly the
// pre-trace handler).
func (cs *CloudServer) handleSearch(params json.RawMessage, tr *obs.Trace, m Meta) (any, error) {
	cloud, err := cs.get()
	if err != nil {
		return nil, err
	}
	var req core.SearchRequest
	if err := json.Unmarshal(params, &req); err != nil {
		return nil, err
	}
	resp, err := cloud.SearchTraced(&req, tr)
	if err != nil {
		return nil, err
	}
	cs.auditEvent(audit.KindSearch, m, fmt.Sprintf("%d tokens, %d results", len(req.Tokens), len(resp.Results)))
	return resp, nil
}

func (cs *CloudServer) handleStats(json.RawMessage) (any, error) {
	cloud, err := cs.get()
	if err != nil {
		return nil, err
	}
	st := &CloudStats{
		IndexEntries:  cloud.IndexLen(),
		IndexBytes:    cloud.IndexSizeBytes(),
		Primes:        cloud.PrimeCount(),
		ADSBytes:      cloud.ADSSizeBytes(),
		SearchCalls:   cloud.SearchCalls(),
		UptimeSeconds: time.Since(cs.started).Seconds(),
	}
	cs.mu.RLock()
	reg, slo := cs.reg, cs.slo
	cs.mu.RUnlock()
	if win, ok := reg.WindowSnapshotFor(RPCDurationSeries("cloud", MethodCloudSearch)); ok {
		st.SearchWindow = &win
	}
	if slo != nil {
		st.SLOs = slo.Evaluate()
	}
	if led := cs.Audit(); led != nil {
		seq, hash := led.Head()
		st.AuditHeadSeq = seq
		st.AuditHeadHash = hash.String()
	}
	return st, nil
}

// CloudClient is a typed client for a remote cloud.
type CloudClient struct {
	c *Client
}

// DialCloud connects to a cloud server with the default timeouts.
func DialCloud(addr string) (*CloudClient, error) {
	return DialCloudOpts(addr, ClientOptions{})
}

// DialCloudOpts connects to a cloud server with explicit transport options.
func DialCloudOpts(addr string, opts ClientOptions) (*CloudClient, error) {
	c, err := DialOpts(addr, opts)
	if err != nil {
		return nil, err
	}
	return &CloudClient{c: c}, nil
}

// Client exposes the underlying RPC client for transport tuning.
func (cc *CloudClient) Client() *Client { return cc.c }

// Init ships the owner's CloudState to the server.
func (cc *CloudClient) Init(st *core.CloudState, cached bool) error {
	return cc.c.Call(MethodCloudInit, EncodeCloudInit(st, cached), nil)
}

// Update ships an insert delta.
func (cc *CloudClient) Update(out *core.UpdateOutput) error {
	return cc.c.Call(MethodCloudUpdate, EncodeUpdate(out), nil)
}

// Search executes a remote search.
func (cc *CloudClient) Search(req *core.SearchRequest) (*core.SearchResponse, error) {
	return cc.SearchTraced(req, nil)
}

// SearchTraced executes a remote search while splicing the cloud's
// server-side spans (collect, witness) and the derived wire time into tr,
// tagged party "cloud". A nil trace makes it exactly Search.
func (cc *CloudClient) SearchTraced(req *core.SearchRequest, tr *obs.Trace) (*core.SearchResponse, error) {
	var resp core.SearchResponse
	if err := cc.c.CallTraced(MethodCloudSearch, req, &resp, tr, "cloud"); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Stats fetches server-side sizes.
func (cc *CloudClient) Stats() (*CloudStats, error) {
	var st CloudStats
	if err := cc.c.Call(MethodCloudStats, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Close closes the connection.
func (cc *CloudClient) Close() error { return cc.c.Close() }
