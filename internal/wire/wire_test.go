package wire

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"slicer/internal/chain"
	"slicer/internal/contract"
	"slicer/internal/core"
	"slicer/internal/workload"
)

func TestFraming(t *testing.T) {
	var buf bytes.Buffer
	msg := map[string]string{"hello": "world"}
	if err := WriteMessage(&buf, msg); err != nil {
		t.Fatalf("WriteMessage: %v", err)
	}
	var got map[string]string
	if err := ReadMessage(&buf, &got); err != nil {
		t.Fatalf("ReadMessage: %v", err)
	}
	if got["hello"] != "world" {
		t.Errorf("round trip = %v", got)
	}
}

func TestFramingRejectsOversized(t *testing.T) {
	var hdr bytes.Buffer
	hdr.Write([]byte{0xff, 0xff, 0xff, 0xff})
	var v any
	if err := ReadMessage(&hdr, &v); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Errorf("oversized frame: err=%v", err)
	}
}

func TestServerClientRoundTrip(t *testing.T) {
	srv := NewServer()
	srv.Handle("echo", func(params json.RawMessage) (any, error) {
		var s string
		if err := json.Unmarshal(params, &s); err != nil {
			return nil, err
		}
		return "echo:" + s, nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()

	cli, err := Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cli.Close()
	var out string
	if err := cli.Call("echo", "hi", &out); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if out != "echo:hi" {
		t.Errorf("echo = %q", out)
	}
	// Unknown method surfaces as an error, connection stays usable.
	if err := cli.Call("nope", nil, nil); err == nil || !strings.Contains(err.Error(), "unknown method") {
		t.Errorf("unknown method err = %v", err)
	}
	if err := cli.Call("echo", "again", &out); err != nil || out != "echo:again" {
		t.Errorf("connection unusable after error: %q %v", out, err)
	}
}

// TestCloudServerFullProtocol drives init / search / update / stats over a
// real TCP connection and cross-checks results against a local cloud.
func TestCloudServerFullProtocol(t *testing.T) {
	params := core.Params{Bits: 8, TrapdoorBits: 256, AccumulatorBits: 256}
	owner, err := core.NewOwner(params)
	if err != nil {
		t.Fatalf("NewOwner: %v", err)
	}
	db := workload.Generate(workload.Config{N: 60, Bits: 8, Seed: 5})
	built, err := owner.Build(db)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	user, err := core.NewUser(owner.ClientState())
	if err != nil {
		t.Fatalf("NewUser: %v", err)
	}

	srv := NewCloudServer()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()
	cli, err := DialCloud(addr)
	if err != nil {
		t.Fatalf("DialCloud: %v", err)
	}
	defer cli.Close()

	// Searching before init fails cleanly.
	if _, err := cli.Search(&core.SearchRequest{}); err == nil {
		t.Error("search before init succeeded")
	}
	if err := cli.Init(owner.CloudInit(built.Index), true); err != nil {
		t.Fatalf("Init: %v", err)
	}
	if err := cli.Init(owner.CloudInit(built.Index), true); err == nil {
		t.Error("double init succeeded")
	}

	stats, err := cli.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if stats.IndexEntries != built.Index.Len() {
		t.Errorf("remote index entries = %d, want %d", stats.IndexEntries, built.Index.Len())
	}

	q := core.Less(100)
	req, err := user.Token(q)
	if err != nil {
		t.Fatalf("Token: %v", err)
	}
	resp, err := cli.Search(req)
	if err != nil {
		t.Fatalf("remote Search: %v", err)
	}
	if err := core.VerifyResponse(owner.AccumulatorPub(), owner.Ac(), req, resp); err != nil {
		t.Fatalf("remote response failed verification: %v", err)
	}
	gotIDs, err := user.Decrypt(resp)
	if err != nil {
		t.Fatalf("Decrypt: %v", err)
	}
	wantIDs := workload.Answer(db, q)
	if len(gotIDs) != len(wantIDs) {
		t.Errorf("remote search returned %d ids, want %d", len(gotIDs), len(wantIDs))
	}

	// Insert via the wire, then search again.
	up, err := owner.Insert([]core.Record{core.NewRecord(1000, 5)})
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if err := cli.Update(up); err != nil {
		t.Fatalf("Update: %v", err)
	}
	user.UpdateStates(owner.StatesSnapshot())
	req, err = user.Token(core.Equal(5))
	if err != nil {
		t.Fatalf("Token: %v", err)
	}
	resp, err = cli.Search(req)
	if err != nil {
		t.Fatalf("post-insert Search: %v", err)
	}
	if err := core.VerifyResponse(owner.AccumulatorPub(), owner.Ac(), req, resp); err != nil {
		t.Fatalf("post-insert verification: %v", err)
	}
	ids, err := user.Decrypt(resp)
	if err != nil {
		t.Fatalf("Decrypt: %v", err)
	}
	found := false
	for _, id := range ids {
		if id == 1000 {
			found = true
		}
	}
	if !found {
		t.Errorf("inserted record not found remotely: %v", ids)
	}
}

// TestCloudServerConcurrentClients hammers one cloud server from several
// connections at once; the server must serialize correctly (run with
// -race).
func TestCloudServerConcurrentClients(t *testing.T) {
	params := core.Params{Bits: 8, TrapdoorBits: 256, AccumulatorBits: 256}
	owner, err := core.NewOwner(params)
	if err != nil {
		t.Fatal(err)
	}
	db := workload.Generate(workload.Config{N: 40, Bits: 8, Seed: 6})
	built, err := owner.Build(db)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewCloudServer()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	boot, err := DialCloud(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := boot.Init(owner.CloudInit(built.Index), true); err != nil {
		t.Fatalf("Init: %v", err)
	}
	boot.Close()

	const clients = 8
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		go func(i int) {
			user, err := core.NewUser(owner.ClientState())
			if err != nil {
				errs <- err
				return
			}
			cli, err := DialCloud(addr)
			if err != nil {
				errs <- err
				return
			}
			defer cli.Close()
			for k := 0; k < 10; k++ {
				q := core.Query{Op: core.OpLess, Value: uint64(1 + (i*37+k*11)%255)}
				req, err := user.Token(q)
				if err != nil {
					errs <- err
					return
				}
				resp, err := cli.Search(req)
				if err != nil {
					errs <- err
					return
				}
				if err := core.VerifyResponse(owner.AccumulatorPub(), owner.Ac(), req, resp); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(i)
	}
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("client error: %v", err)
		}
	}
}

func TestCloudServerSnapshotRestore(t *testing.T) {
	params := core.Params{Bits: 8, TrapdoorBits: 256, AccumulatorBits: 256}
	owner, err := core.NewOwner(params)
	if err != nil {
		t.Fatal(err)
	}
	db := []core.Record{core.NewRecord(1, 7), core.NewRecord(2, 7)}
	built, err := owner.Build(db)
	if err != nil {
		t.Fatal(err)
	}
	user, err := core.NewUser(owner.ClientState())
	if err != nil {
		t.Fatal(err)
	}

	srv1 := NewCloudServer()
	addr1, err := srv1.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cli1, err := DialCloud(addr1)
	if err != nil {
		t.Fatal(err)
	}
	if err := cli1.Init(owner.CloudInit(built.Index), true); err != nil {
		t.Fatalf("Init: %v", err)
	}
	snap, err := srv1.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	cli1.Close()
	srv1.Close()

	// "Restart": a fresh server restores the snapshot and keeps serving.
	srv2 := NewCloudServer()
	if err := srv2.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	addr2, err := srv2.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	cli2, err := DialCloud(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer cli2.Close()
	req, err := user.Token(core.Equal(7))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := cli2.Search(req)
	if err != nil {
		t.Fatalf("restored Search: %v", err)
	}
	if err := core.VerifyResponse(owner.AccumulatorPub(), owner.Ac(), req, resp); err != nil {
		t.Fatalf("restored response rejected: %v", err)
	}
	// Restore after init is rejected.
	if err := srv2.Restore(snap); err == nil {
		t.Error("double restore accepted")
	}
	// Empty snapshot of an uninitialized server.
	srv3 := NewCloudServer()
	empty, err := srv3.Snapshot()
	if err != nil || empty != nil {
		t.Errorf("uninitialized snapshot = %v, %v", empty, err)
	}
}

func TestChainServerFullProtocol(t *testing.T) {
	registry := chain.NewRegistry()
	if err := contract.Register(registry); err != nil {
		t.Fatal(err)
	}
	alice := chain.AddressFromString("alice")
	bob := chain.AddressFromString("bob")
	vals := []chain.Address{chain.AddressFromString("v0"), chain.AddressFromString("v1")}
	network, err := chain.NewNetwork(registry, vals, map[chain.Address]uint64{alice: 5000})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewChainServer(network)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := DialChain(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	nonce, err := cli.Nonce(alice)
	if err != nil || nonce != 0 {
		t.Fatalf("Nonce = %d, %v", nonce, err)
	}
	rc, err := cli.Mine(&chain.Transaction{
		From: alice, To: bob, Nonce: 0, Value: 1200, GasLimit: 100000,
	})
	if err != nil {
		t.Fatalf("Mine: %v", err)
	}
	if !rc.Found || !rc.Status {
		t.Fatalf("receipt = %+v", rc)
	}
	bal, err := cli.Balance(bob)
	if err != nil || bal != 1200 {
		t.Errorf("Balance(bob) = %d, %v", bal, err)
	}
	h, err := cli.Height()
	if err != nil || h != 1 {
		t.Errorf("Height = %d, %v", h, err)
	}
	missing, err := cli.Receipt(chain.HashBytes([]byte("nothing")))
	if err != nil {
		t.Fatalf("Receipt: %v", err)
	}
	if missing.Found {
		t.Error("missing receipt reported found")
	}
}
