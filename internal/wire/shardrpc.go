package wire

import (
	"encoding/json"
	"fmt"
	"math/big"

	"slicer/internal/audit"
	"slicer/internal/core"
	"slicer/internal/obs"
	"slicer/internal/store"
)

// Shard-tier RPC methods. A routed deployment runs N plain cloud servers as
// shards: the router resolves index labels with cloud.mget, delegates VO
// generation with cloud.witnessx, and moves address ranges between live
// shards with cloud.export / cloud.import / cloud.deleteRange. The methods
// are ordinary cloud methods — a single-cloud deployment simply never calls
// them — so a shard is byte-for-byte the same binary and protocol as a
// standalone cloud. See PROTOCOL.md §10.
const (
	MethodCloudMGet    = "cloud.mget"
	MethodCloudWitness = "cloud.witnessx"
	MethodCloudExport  = "cloud.export"
	MethodCloudImport  = "cloud.import"
	MethodCloudDelete  = "cloud.deleteRange"
)

// MGetMsg asks for a batch of index labels.
type MGetMsg struct {
	Labels [][]byte `json:"labels"`
}

// MGetReply answers label i with found[i] and payloads[i] (empty when
// absent). Arrays are index-aligned with the request.
type MGetReply struct {
	Found    []bool   `json:"found"`
	Payloads [][]byte `json:"payloads"`
}

// WitnessMsg asks for the membership witness of an already-derived prime
// representative (big-endian bytes). The router computes the prime from the
// merged result set; the shard owns the modexp.
type WitnessMsg struct {
	X []byte `json:"x"`
}

// WitnessReply carries the encoded witness.
type WitnessReply struct {
	VO []byte `json:"vo"`
}

// ExportMsg asks for one page of index entries in the address range
// [lo, hi) — hi == 0 meaning 2^64 — with labels strictly greater than
// Cursor, sorted by label.
type ExportMsg struct {
	Lo     uint64 `json:"lo"`
	Hi     uint64 `json:"hi"`
	Cursor []byte `json:"cursor,omitempty"`
	Limit  int    `json:"limit"`
}

// ExportReply is one page; Next is the cursor of the following page (absent
// on the last page).
type ExportReply struct {
	Labels   [][]byte `json:"labels"`
	Payloads [][]byte `json:"payloads"`
	Next     []byte   `json:"next,omitempty"`
}

// ImportMsg ships a page of entries into the destination shard of a range
// move. Imports are idempotent: a retried page re-imports cleanly.
type ImportMsg struct {
	Labels   [][]byte `json:"labels"`
	Payloads [][]byte `json:"payloads"`
}

// DeleteRangeMsg removes every entry in the address range [lo, hi) from the
// source shard once the destination owns it.
type DeleteRangeMsg struct {
	Lo uint64 `json:"lo"`
	Hi uint64 `json:"hi"`
}

// DeleteRangeReply reports how many entries were removed.
type DeleteRangeReply struct {
	Removed int `json:"removed"`
}

// decodeEntries validates and converts aligned label/payload arrays.
func decodeEntries(labels, payloads [][]byte) ([]core.RangeEntry, error) {
	if len(labels) != len(payloads) {
		return nil, fmt.Errorf("wire: %d labels for %d payloads", len(labels), len(payloads))
	}
	entries := make([]core.RangeEntry, len(labels))
	for i := range labels {
		l, err := store.LabelFromBytes(labels[i])
		if err != nil {
			return nil, err
		}
		d, err := store.PayloadFromBytes(payloads[i])
		if err != nil {
			return nil, err
		}
		entries[i] = core.RangeEntry{Label: l, Payload: d}
	}
	return entries, nil
}

func (cs *CloudServer) handleMGet(params json.RawMessage) (any, error) {
	cloud, err := cs.get()
	if err != nil {
		return nil, err
	}
	var msg MGetMsg
	if err := json.Unmarshal(params, &msg); err != nil {
		return nil, err
	}
	labels := make([]store.Label, len(msg.Labels))
	for i, raw := range msg.Labels {
		if labels[i], err = store.LabelFromBytes(raw); err != nil {
			return nil, err
		}
	}
	payloads, found := cloud.GetEntries(labels)
	reply := &MGetReply{Found: found, Payloads: make([][]byte, len(labels))}
	for i := range labels {
		if found[i] {
			reply.Payloads[i] = payloads[i][:]
		}
	}
	return reply, nil
}

func (cs *CloudServer) handleWitness(params json.RawMessage) (any, error) {
	cloud, err := cs.get()
	if err != nil {
		return nil, err
	}
	var msg WitnessMsg
	if err := json.Unmarshal(params, &msg); err != nil {
		return nil, err
	}
	if len(msg.X) == 0 {
		return nil, fmt.Errorf("wire: witness request without a prime")
	}
	vo, err := cloud.WitnessForPrime(new(big.Int).SetBytes(msg.X))
	if err != nil {
		return nil, err
	}
	return &WitnessReply{VO: vo}, nil
}

func (cs *CloudServer) handleExport(params json.RawMessage) (any, error) {
	cloud, err := cs.get()
	if err != nil {
		return nil, err
	}
	var msg ExportMsg
	if err := json.Unmarshal(params, &msg); err != nil {
		return nil, err
	}
	entries, next := cloud.ExportRange(msg.Lo, msg.Hi, msg.Cursor, msg.Limit)
	reply := &ExportReply{
		Labels:   make([][]byte, len(entries)),
		Payloads: make([][]byte, len(entries)),
		Next:     next,
	}
	for i, e := range entries {
		l, d := e.Label, e.Payload
		reply.Labels[i] = l[:]
		reply.Payloads[i] = d[:]
	}
	return reply, nil
}

func (cs *CloudServer) handleImport(params json.RawMessage, _ *obs.Trace, m Meta) (any, error) {
	cloud, err := cs.get()
	if err != nil {
		return nil, err
	}
	var msg ImportMsg
	if err := json.Unmarshal(params, &msg); err != nil {
		return nil, err
	}
	entries, err := decodeEntries(msg.Labels, msg.Payloads)
	if err != nil {
		return nil, err
	}
	jour := cs.journal()
	if jour == nil {
		if err := cloud.ImportEntries(entries); err != nil {
			return nil, err
		}
		cs.auditEvent(audit.KindRebalance, m, fmt.Sprintf("imported %d entries", len(entries)))
		return map[string]bool{"ok": true}, nil
	}
	// Journal-before-ack, exactly like init/update: an acknowledged page
	// survives kill -9 and replays idempotently.
	rec := append([]byte{cloudRecImport}, params...)
	if err := jour.commit(rec, func() error { return cloud.ImportEntries(entries) }, cs.cloudSnapshotState); err != nil {
		return nil, err
	}
	cs.auditEvent(audit.KindRebalance, m, fmt.Sprintf("imported %d entries", len(entries)))
	return map[string]bool{"ok": true}, nil
}

func (cs *CloudServer) handleDeleteRange(params json.RawMessage, _ *obs.Trace, m Meta) (any, error) {
	cloud, err := cs.get()
	if err != nil {
		return nil, err
	}
	var msg DeleteRangeMsg
	if err := json.Unmarshal(params, &msg); err != nil {
		return nil, err
	}
	jour := cs.journal()
	if jour == nil {
		removed := cloud.DeleteRange(msg.Lo, msg.Hi)
		cs.auditEvent(audit.KindRebalance, m, fmt.Sprintf("deleted range: %d entries", removed))
		return &DeleteRangeReply{Removed: removed}, nil
	}
	var removed int
	rec := append([]byte{cloudRecDelete}, params...)
	if err := jour.commit(rec, func() error { removed = cloud.DeleteRange(msg.Lo, msg.Hi); return nil }, cs.cloudSnapshotState); err != nil {
		return nil, err
	}
	cs.auditEvent(audit.KindRebalance, m, fmt.Sprintf("deleted range: %d entries", removed))
	return &DeleteRangeReply{Removed: removed}, nil
}

// MGet resolves a batch of index labels on the remote cloud.
func (cc *CloudClient) MGet(labels [][]byte) (*MGetReply, error) {
	var reply MGetReply
	if err := cc.c.Call(MethodCloudMGet, &MGetMsg{Labels: labels}, &reply); err != nil {
		return nil, err
	}
	if len(reply.Found) != len(labels) || len(reply.Payloads) != len(labels) {
		return nil, fmt.Errorf("wire: mget reply misaligned: %d/%d for %d labels",
			len(reply.Found), len(reply.Payloads), len(labels))
	}
	return &reply, nil
}

// Witness fetches the membership witness for a prime representative.
func (cc *CloudClient) Witness(x *big.Int) ([]byte, error) {
	var reply WitnessReply
	if err := cc.c.Call(MethodCloudWitness, &WitnessMsg{X: x.Bytes()}, &reply); err != nil {
		return nil, err
	}
	return reply.VO, nil
}

// Export fetches one page of an address range from the remote cloud.
func (cc *CloudClient) Export(msg *ExportMsg) (*ExportReply, error) {
	var reply ExportReply
	if err := cc.c.Call(MethodCloudExport, msg, &reply); err != nil {
		return nil, err
	}
	if len(reply.Labels) != len(reply.Payloads) {
		return nil, fmt.Errorf("wire: export reply misaligned: %d labels, %d payloads",
			len(reply.Labels), len(reply.Payloads))
	}
	return &reply, nil
}

// Import ships a page of entries into the remote cloud.
func (cc *CloudClient) Import(labels, payloads [][]byte) error {
	return cc.c.Call(MethodCloudImport, &ImportMsg{Labels: labels, Payloads: payloads}, nil)
}

// DeleteRange removes an address range from the remote cloud.
func (cc *CloudClient) DeleteRange(lo, hi uint64) (int, error) {
	var reply DeleteRangeReply
	if err := cc.c.Call(MethodCloudDelete, &DeleteRangeMsg{Lo: lo, Hi: hi}, &reply); err != nil {
		return 0, err
	}
	return reply.Removed, nil
}
