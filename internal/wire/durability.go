package wire

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"slicer/internal/chain"
	"slicer/internal/core"
	"slicer/internal/durable"
	"slicer/internal/obs"
)

// Durability integration: a server that is handed a data directory journals
// every state-mutating request into a write-ahead log before acknowledging
// it, periodically folds its full state into an atomic snapshot, and on
// restart recovers by loading the newest snapshot and replaying the WAL
// tail. The cloud journals the owner's init and update RPCs (the search
// path stays read-only and untouched); the chain journals every sealed
// block in the snapshot encoding, so restart replays to the exact state and
// receipt roots through full block validation.

// Cloud WAL record types: one type byte followed by the RPC's raw JSON
// params, so the journal replays through the same decode path the live
// request took.
const (
	cloudRecInit   byte = 1
	cloudRecUpdate byte = 2
	// cloudRecImport / cloudRecDelete journal the two state-mutating halves
	// of a shard rebalance (cloud.import / cloud.deleteRange).
	cloudRecImport byte = 3
	cloudRecDelete byte = 4
)

// DurabilityOptions configures a server's data directory.
type DurabilityOptions struct {
	// FS is the filesystem to persist into (nil: the real one). Tests
	// inject durable.MemFS to crash the server at exact write boundaries.
	FS durable.FS
	// Dir is the data directory holding WAL segments and snapshots.
	Dir string
	// Fsync selects when journaled records become durable (default
	// FsyncAlways: an acknowledged request survives kill -9).
	Fsync durable.Policy
	// FsyncInterval bounds staleness under durable.FsyncInterval.
	FsyncInterval time.Duration
	// SegmentBytes overrides the WAL segment size (default 8 MiB).
	SegmentBytes int64
	// SnapshotEvery folds state into a snapshot after this many journaled
	// records (default 256; <0 disables the record trigger).
	SnapshotEvery int
	// SnapshotBytes also triggers a snapshot once this many WAL bytes
	// accumulate since the last one (default 16 MiB; <0 disables).
	SnapshotBytes int64
	// Registry receives WAL/snapshot/recovery series (may be nil).
	Registry *obs.Registry
	// Logger records snapshot failures and recovery summaries (may be nil).
	Logger *slog.Logger
}

func (o DurabilityOptions) snapshotEvery() int {
	if o.SnapshotEvery == 0 {
		return 256
	}
	return o.SnapshotEvery
}

func (o DurabilityOptions) snapshotBytes() int64 {
	if o.SnapshotBytes == 0 {
		return 16 << 20
	}
	return o.SnapshotBytes
}

func (o DurabilityOptions) fsys() durable.FS {
	if o.FS == nil {
		return durable.OS
	}
	return o.FS
}

// RecoveryStats summarizes what a server rebuilt from its data directory.
type RecoveryStats struct {
	// SnapshotIndex is the WAL index the loaded snapshot covered (0: none).
	SnapshotIndex uint64
	// Replayed is how many WAL records were re-applied on top of it.
	Replayed int
	// Skipped counts records that failed to re-apply (they failed the same
	// way live — journal-then-apply keeps them in the log regardless).
	Skipped int
	// Truncated counts torn/corrupt records discarded from the WAL tail.
	Truncated int
}

// journal couples a WAL and a snapshotter behind one mutex so that journal
// order is exactly apply order — required because update application is
// last-writer-wins on the accumulation value, so replaying in a different
// order than the live server applied would diverge.
type journal struct {
	mu         sync.Mutex
	log        *durable.Log
	snap       *durable.Snapshotter
	every      int
	everyBytes int64
	sinceRecs  int
	sinceBytes int64
	logger     *slog.Logger
	snapFails  *obs.Counter
}

// openJournal opens (or creates) the WAL in the data directory, resuming at
// next, and wires metrics.
func openJournal(opts DurabilityOptions, next uint64) (*journal, error) {
	if opts.Dir == "" {
		return nil, errors.New("wire: durability needs a data directory")
	}
	log, err := durable.OpenLog(opts.fsys(), opts.Dir, durable.LogOptions{
		SegmentBytes:  opts.SegmentBytes,
		Fsync:         opts.Fsync,
		FsyncInterval: opts.FsyncInterval,
		Start:         next,
	})
	if err != nil {
		return nil, err
	}
	j := &journal{
		log:        log,
		snap:       durable.NewSnapshotter(opts.fsys(), opts.Dir, 0),
		every:      opts.snapshotEvery(),
		everyBytes: opts.snapshotBytes(),
		logger:     opts.Logger,
	}
	if opts.Registry != nil {
		log.SetMetrics(opts.Registry)
		j.snap.SetMetrics(opts.Registry)
		j.snapFails = opts.Registry.Counter("slicer_snapshot_failures_total",
			"Snapshot saves that failed (the WAL keeps covering the state).")
	}
	return j, nil
}

// commit journals one record, applies it, and acknowledges only after both
// — the WAL discipline. A record whose apply fails stays journaled: replay
// fails it the same deterministic way and skips it. state provides the full
// serialized state when a snapshot trigger fires; snapshot failures are
// non-fatal (the WAL still covers everything).
func (j *journal) commit(rec []byte, apply func() error, state func() ([]byte, error)) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	idx, err := j.log.Append(rec)
	if err != nil {
		return fmt.Errorf("wire: journal append: %w", err)
	}
	if err := apply(); err != nil {
		return err
	}
	j.sinceRecs++
	j.sinceBytes += int64(len(rec))
	recTrigger := j.every > 0 && j.sinceRecs >= j.every
	byteTrigger := j.everyBytes > 0 && j.sinceBytes >= j.everyBytes
	if recTrigger || byteTrigger {
		j.snapshotLocked(idx, state)
	}
	return nil
}

// snapshotLocked folds the current state into a snapshot covering every
// record up to idx, then compacts the WAL prefix it covers. Caller holds
// j.mu, which keeps the marshaled state consistent with idx.
func (j *journal) snapshotLocked(idx uint64, state func() ([]byte, error)) {
	payload, err := state()
	if err == nil {
		err = j.snap.Save(idx, payload)
	}
	if err != nil {
		j.snapFails.Inc()
		if j.logger != nil {
			j.logger.Warn("snapshot failed; WAL retained", "index", idx, "err", err)
		}
		return
	}
	j.sinceRecs, j.sinceBytes = 0, 0
	if err := j.log.CompactBefore(idx); err != nil && j.logger != nil {
		j.logger.Warn("wal compaction failed", "upTo", idx, "err", err)
	}
}

// close syncs and closes the WAL.
func (j *journal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.log.Sync(); err != nil {
		_ = j.log.Close()
		return err
	}
	return j.log.Close()
}

// registerRecoveryMetrics publishes what a recovery did (slicer_recovery_*).
func registerRecoveryMetrics(reg *obs.Registry, stats *RecoveryStats) {
	if reg == nil {
		return
	}
	reg.Counter("slicer_recoveries_total", "Times this process recovered state from its data directory.").Inc()
	reg.Counter("slicer_recovery_replayed_total", "WAL records replayed on top of the loaded snapshot.").
		Add(uint64(stats.Replayed))
	reg.Counter("slicer_recovery_skipped_total", "WAL records that failed to re-apply during replay.").
		Add(uint64(stats.Skipped))
	reg.Counter("slicer_recovery_truncated_total", "Torn or corrupt records discarded from the WAL tail.").
		Add(uint64(stats.Truncated))
}

// EnableDurability gives the cloud server a data directory: it first
// recovers any state already there (newest snapshot + WAL tail), then
// journals every subsequent init/update before acknowledging it. Call
// before Listen; it may not be combined with a prior Restore.
func (cs *CloudServer) EnableDurability(opts DurabilityOptions) (*RecoveryStats, error) {
	rec, err := durable.Recover(opts.fsys(), opts.Dir)
	if err != nil {
		return nil, err
	}
	stats := &RecoveryStats{SnapshotIndex: rec.SnapshotIndex, Truncated: rec.TruncatedRecords}
	if rec.Snapshot != nil {
		if err := cs.Restore(rec.Snapshot); err != nil {
			return nil, fmt.Errorf("wire: restore cloud snapshot: %w", err)
		}
	}
	for _, e := range rec.Entries {
		if err := cs.replayCloudRecord(e); err != nil {
			stats.Skipped++
			if opts.Logger != nil {
				opts.Logger.Warn("skipping unreplayable WAL record", "err", err)
			}
			continue
		}
		stats.Replayed++
	}
	jour, err := openJournal(opts, rec.NextIndex)
	if err != nil {
		return nil, err
	}
	registerRecoveryMetrics(opts.Registry, stats)
	cs.mu.Lock()
	cs.jour = jour
	cs.mu.Unlock()
	return stats, nil
}

// replayCloudRecord re-applies one journaled RPC through the live decode
// path.
func (cs *CloudServer) replayCloudRecord(rec []byte) error {
	if len(rec) == 0 {
		return errors.New("wire: empty WAL record")
	}
	switch rec[0] {
	case cloudRecInit:
		var msg CloudInitMsg
		if err := json.Unmarshal(rec[1:], &msg); err != nil {
			return fmt.Errorf("wire: replay init: %w", err)
		}
		st, mode, err := DecodeCloudInit(&msg)
		if err != nil {
			return fmt.Errorf("wire: replay init: %w", err)
		}
		cloud, err := core.NewCloud(st, mode)
		if err != nil {
			return fmt.Errorf("wire: replay init: %w", err)
		}
		return cs.install(cloud)
	case cloudRecUpdate:
		cloud, err := cs.get()
		if err != nil {
			return fmt.Errorf("wire: replay update: %w", err)
		}
		var msg UpdateMsg
		if err := json.Unmarshal(rec[1:], &msg); err != nil {
			return fmt.Errorf("wire: replay update: %w", err)
		}
		out, err := DecodeUpdate(&msg)
		if err != nil {
			return fmt.Errorf("wire: replay update: %w", err)
		}
		return cloud.ApplyUpdate(out)
	case cloudRecImport:
		cloud, err := cs.get()
		if err != nil {
			return fmt.Errorf("wire: replay import: %w", err)
		}
		var msg ImportMsg
		if err := json.Unmarshal(rec[1:], &msg); err != nil {
			return fmt.Errorf("wire: replay import: %w", err)
		}
		entries, err := decodeEntries(msg.Labels, msg.Payloads)
		if err != nil {
			return fmt.Errorf("wire: replay import: %w", err)
		}
		return cloud.ImportEntries(entries)
	case cloudRecDelete:
		cloud, err := cs.get()
		if err != nil {
			return fmt.Errorf("wire: replay delete: %w", err)
		}
		var msg DeleteRangeMsg
		if err := json.Unmarshal(rec[1:], &msg); err != nil {
			return fmt.Errorf("wire: replay delete: %w", err)
		}
		cloud.DeleteRange(msg.Lo, msg.Hi)
		return nil
	default:
		return fmt.Errorf("wire: unknown WAL record type %d", rec[0])
	}
}

// cloudSnapshotState marshals the hosted cloud for a snapshot trigger.
func (cs *CloudServer) cloudSnapshotState() ([]byte, error) {
	cloud, err := cs.get()
	if err != nil {
		return nil, err
	}
	return cloud.Marshal()
}

// EnableDurability gives the chain server a data directory. Recovery
// imports the newest snapshot into every validator node through full block
// validation, then replays journaled blocks above the restored height; from
// then on every sealed block is journaled before the step is acknowledged.
// Call before Listen.
func (cs *ChainServer) EnableDurability(opts DurabilityOptions) (*RecoveryStats, error) {
	rec, err := durable.Recover(opts.fsys(), opts.Dir)
	if err != nil {
		return nil, err
	}
	stats := &RecoveryStats{SnapshotIndex: rec.SnapshotIndex, Truncated: rec.TruncatedRecords}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if rec.Snapshot != nil {
		snap, err := chain.UnmarshalSnapshot(rec.Snapshot)
		if err != nil {
			return nil, err
		}
		for _, node := range cs.network.Nodes() {
			if err := node.ImportSnapshot(snap); err != nil {
				return nil, fmt.Errorf("wire: restore chain snapshot: %w", err)
			}
		}
	}
	for _, e := range rec.Entries {
		if err := cs.replayBlockRecord(e); err != nil {
			stats.Skipped++
			if opts.Logger != nil {
				opts.Logger.Warn("skipping unreplayable block record", "err", err)
			}
			continue
		}
		stats.Replayed++
	}
	jour, err := openJournal(opts, rec.NextIndex)
	if err != nil {
		return nil, err
	}
	registerRecoveryMetrics(opts.Registry, stats)
	cs.jour = jour
	return stats, nil
}

// replayBlockRecord re-imports one journaled block into every node through
// full validation. Blocks at or below a node's height (already covered by
// the snapshot) are skipped. Caller holds cs.mu.
func (cs *ChainServer) replayBlockRecord(rec []byte) error {
	block, err := chain.DecodeBlock(rec)
	if err != nil {
		return err
	}
	for _, node := range cs.network.Nodes() {
		if block.Header.Number <= node.Height() {
			continue
		}
		if err := node.ImportBlock(block); err != nil {
			return fmt.Errorf("wire: replay block %d: %w", block.Header.Number, err)
		}
	}
	return nil
}

// chainSnapshotStateLocked exports the full chain for a snapshot trigger.
// Caller holds cs.mu (handleStep does).
func (cs *ChainServer) chainSnapshotStateLocked() ([]byte, error) {
	return cs.network.Leader().ExportSnapshot().Marshal()
}
