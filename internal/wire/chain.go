package wire

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"slicer/internal/audit"
	"slicer/internal/chain"
	"slicer/internal/obs"
)

// Chain RPC methods.
const (
	MethodChainSubmit  = "chain.submit"
	MethodChainStep    = "chain.step"
	MethodChainReceipt = "chain.receipt"
	MethodChainBalance = "chain.balance"
	MethodChainNonce   = "chain.nonce"
	MethodChainCall    = "chain.call"
	MethodChainHeight  = "chain.height"
)

// ReceiptMsg is the wire form of a receipt.
type ReceiptMsg struct {
	Found           bool          `json:"found"`
	Status          bool          `json:"status"`
	GasUsed         uint64        `json:"gasUsed"`
	ContractAddress chain.Address `json:"contractAddress"`
	ReturnData      []byte        `json:"returnData"`
	Err             string        `json:"err"`
}

// CallMsg is a static-call request.
type CallMsg struct {
	From     chain.Address `json:"from"`
	To       chain.Address `json:"to"`
	Input    []byte        `json:"input"`
	GasLimit uint64        `json:"gasLimit"`
}

// CallResult is a static-call response.
type CallResult struct {
	Return  []byte `json:"return"`
	GasUsed uint64 `json:"gasUsed"`
}

// ChainServer exposes one blockchain node over RPC. In a real deployment
// every validator runs one; clients may talk to any of them. For the
// in-process network behind a single server, MethodChainStep seals on the
// scheduled proposer and propagates to all nodes.
type ChainServer struct {
	mu      sync.Mutex
	network *chain.Network
	jour    *journal      // nil until EnableDurability
	aud     *audit.Ledger // nil until EnableAudit
	srv     *Server
	started time.Time

	// Chain-side settlement instrumentation (nil when not observed).
	submitDur *obs.Histogram // tx admission into the pool
	sealDur   *obs.Histogram // block sealing = tx execution incl. on-chain verification
	blocks    *obs.Counter
	txs       *obs.Counter
	gasUsed   *obs.Counter
	reverted  *obs.Counter
}

// NewChainServer wraps a network. A bounded trace store is attached by
// default so propagated traces are inspectable at /debug/traces.
func NewChainServer(network *chain.Network) *ChainServer {
	cs := &ChainServer{network: network, srv: NewServer(), started: time.Now()}
	cs.srv.SetTraceStore(obs.NewTraceStore(0))
	cs.srv.HandleTraced(MethodChainSubmit, cs.handleSubmit)
	cs.srv.HandleTraced(MethodChainStep, cs.handleStep)
	cs.srv.Handle(MethodChainReceipt, cs.handleReceipt)
	cs.srv.Handle(MethodChainBalance, cs.handleBalance)
	cs.srv.Handle(MethodChainNonce, cs.handleNonce)
	cs.srv.Handle(MethodChainCall, cs.handleCall)
	cs.srv.Handle(MethodChainHeight, cs.handleHeight)
	return cs
}

// Traces exposes the server's trace store (for /debug/traces and tuning).
func (cs *ChainServer) Traces() *obs.TraceStore { return cs.srv.TraceStore() }

// SetObservability attaches a metrics registry and/or structured logger:
// the RPC layer gains per-method series (server="chain") and sealing
// exposes verification/settlement cost — per-block execution latency
// (which includes the contract's on-chain result verification), blocks and
// transactions sealed, gas burned and reverted transactions. Either
// argument may be nil.
func (cs *ChainServer) SetObservability(reg *obs.Registry, logger *slog.Logger) {
	cs.srv.SetLogger(logger)
	if reg == nil {
		return
	}
	cs.srv.SetMetrics(reg, "chain")
	reg.GaugeFunc("slicer_chain_uptime_seconds",
		"Seconds since the chain server started.",
		func() float64 { return time.Since(cs.started).Seconds() })
	// Windowed phase vector: cumulative buckets plus live quantile gauges.
	phases := reg.HistogramVecOpts("slicer_chain_phase_seconds",
		"Latency of one chain settlement phase, by phase.",
		[]string{"phase"}, obs.VecOpts{Window: &obs.WindowOptions{}})
	cs.mu.Lock()
	cs.submitDur = phases.WithLabelValues("submit")
	cs.sealDur = phases.WithLabelValues("seal")
	cs.blocks = reg.Counter("slicer_chain_blocks_total", "Blocks sealed.")
	cs.txs = reg.Counter("slicer_chain_txs_total", "Transactions executed in sealed blocks.")
	cs.gasUsed = reg.Counter("slicer_chain_gas_used_total",
		"Gas consumed by executed transactions (on-chain verification dominates).")
	cs.reverted = reg.Counter("slicer_chain_txs_reverted_total", "Transactions that reverted.")
	cs.mu.Unlock()
}

// EnableAudit journals every sealed block — receipts, reverted count, gas —
// into led as KindSeal records. The chain cannot see contract semantics
// (which receipts settle a search versus refund one: that attribution is the
// client's, who holds the request), so its ledger anchors the settlement
// history a client-side ledger's settle/refund records are checked against.
func (cs *ChainServer) EnableAudit(led *audit.Ledger) {
	cs.mu.Lock()
	cs.aud = led
	cs.mu.Unlock()
}

// Audit returns the attached audit ledger (nil when auditing is off).
func (cs *ChainServer) Audit() *audit.Ledger {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.aud
}

// Server exposes the underlying RPC server for transport-level tuning.
func (cs *ChainServer) Server() *Server { return cs.srv }

// Listen binds the server and returns its address.
func (cs *ChainServer) Listen(addr string) (string, error) { return cs.srv.Listen(addr) }

// Close shuts the server down, syncing and closing the journal if
// durability is enabled.
func (cs *ChainServer) Close() error {
	err := cs.srv.Close()
	cs.mu.Lock()
	jour := cs.jour
	cs.mu.Unlock()
	if jour != nil {
		if jerr := jour.close(); err == nil {
			err = jerr
		}
	}
	return err
}

// handleSubmit records the pool-admission phase into the propagated trace
// (nil for context-free callers).
func (cs *ChainServer) handleSubmit(params json.RawMessage, tr *obs.Trace) (any, error) {
	var tx chain.Transaction
	if err := json.Unmarshal(params, &tx); err != nil {
		return nil, err
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	end := obs.StartPhase(cs.submitDur, tr, "chain.submit")
	if err := cs.network.SubmitTx(&tx); err != nil {
		return nil, err
	}
	end()
	h := tx.Hash()
	return h[:], nil
}

// handleStep records the block-sealing phase — which includes the
// contract's on-chain result verification — into the propagated trace.
func (cs *ChainServer) handleStep(_ json.RawMessage, tr *obs.Trace) (any, error) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	end := obs.StartPhase(cs.sealDur, tr, "chain.seal")
	block, err := cs.network.Step()
	if err != nil {
		return nil, err
	}
	end()
	if cs.jour != nil {
		// Journal the sealed block before acknowledging the step: a
		// restart replays it through full validation back to the same
		// state and receipt roots. On journal failure the block exists
		// only in memory, so the step is reported failed and the journal
		// is fail-stop from here on.
		rec, jerr := chain.EncodeBlock(block)
		if jerr != nil {
			return nil, fmt.Errorf("wire: block %d sealed but not journaled: %w", block.Header.Number, jerr)
		}
		if jerr := cs.jour.commit(rec, func() error { return nil }, cs.chainSnapshotStateLocked); jerr != nil {
			return nil, fmt.Errorf("wire: block %d sealed but not journaled: %w", block.Header.Number, jerr)
		}
	}
	cs.blocks.Inc()
	cs.txs.Add(uint64(len(block.Receipts)))
	reverted := 0
	for _, r := range block.Receipts {
		cs.gasUsed.Add(r.GasUsed)
		if !r.Status {
			cs.reverted.Inc()
			reverted++
		}
	}
	if cs.aud != nil && len(block.Receipts) > 0 {
		// Empty blocks are heartbeat noise; sealed transactions are the
		// settlement history worth anchoring.
		cs.aud.Log(audit.Event{
			Kind: audit.KindSeal,
			Detail: fmt.Sprintf("block %d: %d txs, %d reverted",
				block.Header.Number, len(block.Receipts), reverted),
		})
	}
	return map[string]uint64{"number": block.Header.Number}, nil
}

func (cs *ChainServer) handleReceipt(params json.RawMessage) (any, error) {
	var h chain.Hash
	var raw []byte
	if err := json.Unmarshal(params, &raw); err != nil {
		return nil, err
	}
	copy(h[:], raw)
	cs.mu.Lock()
	defer cs.mu.Unlock()
	r, ok := cs.network.Leader().Receipt(h)
	if !ok {
		return &ReceiptMsg{Found: false}, nil
	}
	return &ReceiptMsg{
		Found:           true,
		Status:          r.Status,
		GasUsed:         r.GasUsed,
		ContractAddress: r.ContractAddress,
		ReturnData:      r.ReturnData,
		Err:             r.Err,
	}, nil
}

func (cs *ChainServer) handleBalance(params json.RawMessage) (any, error) {
	var a chain.Address
	if err := json.Unmarshal(params, &a); err != nil {
		return nil, err
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.network.Leader().Balance(a), nil
}

func (cs *ChainServer) handleNonce(params json.RawMessage) (any, error) {
	var a chain.Address
	if err := json.Unmarshal(params, &a); err != nil {
		return nil, err
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.network.Leader().NextNonce(a), nil
}

func (cs *ChainServer) handleCall(params json.RawMessage) (any, error) {
	var msg CallMsg
	if err := json.Unmarshal(params, &msg); err != nil {
		return nil, err
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	ret, gas, err := cs.network.Leader().CallStatic(msg.From, msg.To, msg.Input, msg.GasLimit)
	if err != nil {
		return nil, err
	}
	return &CallResult{Return: ret, GasUsed: gas}, nil
}

func (cs *ChainServer) handleHeight(json.RawMessage) (any, error) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.network.Leader().Height(), nil
}

// ChainClient is a typed client for a remote chain node.
type ChainClient struct {
	c *Client
}

// DialChain connects to a chain server with the default timeouts.
func DialChain(addr string) (*ChainClient, error) {
	return DialChainOpts(addr, ClientOptions{})
}

// DialChainOpts connects to a chain server with explicit transport options.
func DialChainOpts(addr string, opts ClientOptions) (*ChainClient, error) {
	c, err := DialOpts(addr, opts)
	if err != nil {
		return nil, err
	}
	return &ChainClient{c: c}, nil
}

// Client exposes the underlying RPC client for transport tuning.
func (cc *ChainClient) Client() *Client { return cc.c }

// Submit queues a transaction and returns its hash.
func (cc *ChainClient) Submit(tx *chain.Transaction) (chain.Hash, error) {
	return cc.SubmitTraced(tx, nil)
}

// SubmitTraced is Submit with the chain's admission span spliced into tr
// (party "chain"); a nil trace makes it exactly Submit.
func (cc *ChainClient) SubmitTraced(tx *chain.Transaction, tr *obs.Trace) (chain.Hash, error) {
	var raw []byte
	if err := cc.c.CallTraced(MethodChainSubmit, tx, &raw, tr, "chain"); err != nil {
		return chain.Hash{}, err
	}
	var h chain.Hash
	copy(h[:], raw)
	return h, nil
}

// Step asks the network to seal the next block.
func (cc *ChainClient) Step() (uint64, error) {
	return cc.StepTraced(nil)
}

// StepTraced is Step with the chain's sealing span (which includes on-chain
// verification) spliced into tr; a nil trace makes it exactly Step.
func (cc *ChainClient) StepTraced(tr *obs.Trace) (uint64, error) {
	var out map[string]uint64
	if err := cc.c.CallTraced(MethodChainStep, nil, &out, tr, "chain"); err != nil {
		return 0, err
	}
	return out["number"], nil
}

// Receipt fetches a receipt by transaction hash.
func (cc *ChainClient) Receipt(h chain.Hash) (*ReceiptMsg, error) {
	var r ReceiptMsg
	if err := cc.c.Call(MethodChainReceipt, h[:], &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// Mine submits a transaction, seals a block and returns the receipt.
func (cc *ChainClient) Mine(tx *chain.Transaction) (*ReceiptMsg, error) {
	return cc.MineTraced(tx, nil)
}

// MineTraced is Mine with the chain's submit and seal phases — and the wire
// time of both round trips — spliced into tr; a nil trace makes it exactly
// Mine.
func (cc *ChainClient) MineTraced(tx *chain.Transaction, tr *obs.Trace) (*ReceiptMsg, error) {
	h, err := cc.SubmitTraced(tx, tr)
	if err != nil {
		return nil, err
	}
	if _, err := cc.StepTraced(tr); err != nil {
		return nil, err
	}
	return cc.Receipt(h)
}

// Balance reads an account balance.
func (cc *ChainClient) Balance(a chain.Address) (uint64, error) {
	var v uint64
	err := cc.c.Call(MethodChainBalance, a, &v)
	return v, err
}

// Nonce reads an account's next nonce.
func (cc *ChainClient) Nonce(a chain.Address) (uint64, error) {
	var v uint64
	err := cc.c.Call(MethodChainNonce, a, &v)
	return v, err
}

// CallStatic executes a read-only contract call.
func (cc *ChainClient) CallStatic(msg *CallMsg) (*CallResult, error) {
	var out CallResult
	if err := cc.c.Call(MethodChainCall, msg, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Height reads the chain height.
func (cc *ChainClient) Height() (uint64, error) {
	var v uint64
	err := cc.c.Call(MethodChainHeight, nil, &v)
	return v, err
}

// Close closes the connection.
func (cc *ChainClient) Close() error { return cc.c.Close() }
