package wire

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzReadMessage hardens the frame reader against malformed peers: no
// panics, no over-allocation beyond the frame limit, and every frame the
// writer produces parses back.
func FuzzReadMessage(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, map[string]int{"x": 1}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		var v json.RawMessage
		_ = ReadMessage(bytes.NewReader(data), &v) // must not panic
	})
}
