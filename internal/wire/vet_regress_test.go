package wire

import (
	"path/filepath"
	"testing"

	"slicer/internal/analysis"
)

// TestVetGatesOverWire runs the flow-sensitive analyzers as a library over
// this package, mirroring the contract package's constant-time gate. Wire
// is the trust boundary: secrettaint keeps key material out of RPC
// responses and logs, lockdiscipline guards the shared server state the
// handlers touch concurrently, and ackorder enforces the durability
// contract — no success response without a dominating journal append.
func TestVetGatesOverWire(t *testing.T) {
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(filepath.Join(root, filepath.FromSlash("internal/wire")))
	if err != nil {
		t.Fatal(err)
	}
	if pkg == nil {
		t.Fatal("no package at internal/wire")
	}
	for _, terr := range pkg.TypeErrors {
		t.Fatalf("typecheck: %v", terr)
	}
	diags := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{
		analysis.SecretTaint,
		analysis.LockDiscipline,
		analysis.AckOrder,
	})
	for _, d := range diags {
		t.Errorf("slicer-vet gate violation in wire: %s", d)
	}
}
