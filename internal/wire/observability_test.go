package wire

import (
	"encoding/json"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"slicer/internal/obs"
)

var errTest = errors.New("handler failure")

// TestServerIdleTimeout is the regression test for the stalled-peer leak:
// a connection that goes quiet past the idle bound is dropped (the
// goroutine serving it is freed) and counted, while an active connection
// keeps working across multiple idle windows.
func TestServerIdleTimeout(t *testing.T) {
	srv := NewServer()
	srv.Handle("ping", func(_ json.RawMessage) (any, error) { return "pong", nil })
	if got := srv.IdleTimeout(); got != DefaultIdleTimeout {
		t.Fatalf("default idle timeout = %v, want %v", got, DefaultIdleTimeout)
	}
	srv.SetIdleTimeout(50 * time.Millisecond)
	reg := obs.NewRegistry()
	srv.SetMetrics(reg, "test")
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()

	// An active client survives several idle windows: each request resets
	// the deadline.
	active, err := Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer active.Close()
	for i := 0; i < 4; i++ {
		var out string
		if err := active.Call("ping", nil, &out); err != nil {
			t.Fatalf("active call %d: %v", i, err)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// A stalled client is dropped: after the idle window the server closes
	// the connection, so the next read on the client side fails.
	stalled, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial stalled: %v", err)
	}
	defer stalled.Close()
	buf := make([]byte, 1)
	stalled.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := stalled.Read(buf); err == nil {
		t.Fatal("server kept an idle connection past the timeout")
	}

	dropped := reg.Counter(obs.Label("slicer_rpc_idle_dropped_total", "server", "test"), "")
	if dropped.Value() == 0 {
		t.Error("idle drop not counted")
	}

	// Zero disables the bound entirely.
	srv.SetIdleTimeout(0)
	lazy, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial lazy: %v", err)
	}
	defer lazy.Close()
	time.Sleep(120 * time.Millisecond)
	var out string
	if err := lazy.Call("ping", nil, &out); err != nil {
		t.Fatalf("call after long idle with timeout disabled: %v", err)
	}
}

// TestServerMetricsAndLogging checks the per-method RPC instruments and
// the exposition of connection series.
func TestServerMetricsAndLogging(t *testing.T) {
	srv := NewServer()
	srv.Handle("ok", func(_ json.RawMessage) (any, error) { return 1, nil })
	srv.Handle("boom", func(_ json.RawMessage) (any, error) { return nil, errTest })
	reg := obs.NewRegistry()
	srv.SetMetrics(reg, "unit")
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()
	cli, err := Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cli.Close()
	var n int
	for i := 0; i < 3; i++ {
		if err := cli.Call("ok", nil, &n); err != nil {
			t.Fatalf("ok call: %v", err)
		}
	}
	if err := cli.Call("boom", nil, nil); err == nil {
		t.Fatal("boom call did not error")
	}

	calls := reg.Counter(obs.Label("slicer_rpc_requests_total", "server", "unit", "method", "ok"), "")
	if calls.Value() != 3 {
		t.Errorf("ok calls = %d, want 3", calls.Value())
	}
	errs := reg.Counter(obs.Label("slicer_rpc_errors_total", "server", "unit", "method", "boom"), "")
	if errs.Value() != 1 {
		t.Errorf("boom errors = %d, want 1", errs.Value())
	}
	dur := reg.Histogram(obs.Label("slicer_rpc_request_seconds", "server", "unit", "method", "ok"), "")
	if dur.Count() != 3 {
		t.Errorf("ok duration observations = %d, want 3", dur.Count())
	}
	conns := reg.Counter(obs.Label("slicer_rpc_connections_total", "server", "unit"), "")
	if conns.Value() != 1 {
		t.Errorf("connections = %d, want 1", conns.Value())
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if !strings.Contains(sb.String(), `slicer_rpc_requests_total{server="unit",method="ok"} 3`) {
		t.Errorf("exposition missing labeled request counter:\n%s", sb.String())
	}
}
