package wire

import (
	"encoding/json"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"slicer/internal/obs"
)

var errTest = errors.New("handler failure")

// TestServerIdleTimeout is the regression test for the stalled-peer leak:
// a connection that goes quiet past the idle bound is dropped (the
// goroutine serving it is freed) and counted, while an active connection
// keeps working across multiple idle windows.
func TestServerIdleTimeout(t *testing.T) {
	srv := NewServer()
	srv.Handle("ping", func(_ json.RawMessage) (any, error) { return "pong", nil })
	if got := srv.IdleTimeout(); got != DefaultIdleTimeout {
		t.Fatalf("default idle timeout = %v, want %v", got, DefaultIdleTimeout)
	}
	// Generous margins: the active client below sleeps 100ms between
	// calls against a 250ms window, so only a >150ms scheduler stall can
	// false-fail this on a loaded CI runner.
	srv.SetIdleTimeout(250 * time.Millisecond)
	reg := obs.NewRegistry()
	srv.SetMetrics(reg, "test")
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()

	// An active client survives several idle windows: each request resets
	// the deadline.
	active, err := Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer active.Close()
	for i := 0; i < 4; i++ {
		var out string
		if err := active.Call("ping", nil, &out); err != nil {
			t.Fatalf("active call %d: %v", i, err)
		}
		time.Sleep(100 * time.Millisecond)
	}

	// A stalled client is dropped: after the idle window the server closes
	// the connection, so the next read on the client side fails.
	stalled, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial stalled: %v", err)
	}
	defer stalled.Close()
	buf := make([]byte, 1)
	stalled.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := stalled.Read(buf); err == nil {
		t.Fatal("server kept an idle connection past the timeout")
	}

	dropped := reg.Counter(obs.Label("slicer_rpc_idle_dropped_total", "server", "test"), "")
	if dropped.Value() == 0 {
		t.Error("idle drop not counted")
	}

	// Zero disables the bound entirely.
	srv.SetIdleTimeout(0)
	lazy, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial lazy: %v", err)
	}
	defer lazy.Close()
	time.Sleep(120 * time.Millisecond)
	var out string
	if err := lazy.Call("ping", nil, &out); err != nil {
		t.Fatalf("call after long idle with timeout disabled: %v", err)
	}
}

// TestServerMetricsAndLogging checks the per-method RPC instruments and
// the exposition of connection series.
func TestServerMetricsAndLogging(t *testing.T) {
	srv := NewServer()
	srv.Handle("ok", func(_ json.RawMessage) (any, error) { return 1, nil })
	srv.Handle("boom", func(_ json.RawMessage) (any, error) { return nil, errTest })
	reg := obs.NewRegistry()
	srv.SetMetrics(reg, "unit")
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()
	cli, err := Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cli.Close()
	var n int
	for i := 0; i < 3; i++ {
		if err := cli.Call("ok", nil, &n); err != nil {
			t.Fatalf("ok call: %v", err)
		}
	}
	if err := cli.Call("boom", nil, nil); err == nil {
		t.Fatal("boom call did not error")
	}

	calls := reg.Counter(obs.VecName("slicer_rpc_requests_total",
		"server", "unit", "method", "ok", "outcome", "ok"), "")
	if calls.Value() != 3 {
		t.Errorf("ok calls = %d, want 3", calls.Value())
	}
	fails := reg.Counter(obs.VecName("slicer_rpc_requests_total",
		"server", "unit", "method", "boom", "outcome", "error"), "")
	if fails.Value() != 1 {
		t.Errorf("boom error outcome = %d, want 1", fails.Value())
	}
	errs := reg.Counter(obs.Label("slicer_rpc_errors_total", "server", "unit", "method", "boom"), "")
	if errs.Value() != 1 {
		t.Errorf("boom errors = %d, want 1", errs.Value())
	}
	dur := reg.Histogram(obs.VecName("slicer_rpc_request_seconds", "server", "unit", "method", "ok"), "")
	if dur.Count() != 3 {
		t.Errorf("ok duration observations = %d, want 3", dur.Count())
	}
	if !dur.Windowed() {
		t.Error("request-duration histogram is not windowed")
	}
	conns := reg.Counter(obs.Label("slicer_rpc_connections_total", "server", "unit"), "")
	if conns.Value() != 1 {
		t.Errorf("connections = %d, want 1", conns.Value())
	}
	reqBytes := reg.Histogram(obs.VecName("slicer_rpc_request_bytes", "server", "unit", "method", "ok"), "")
	if reqBytes.Count() != 3 {
		t.Errorf("ok request-size observations = %d, want 3", reqBytes.Count())
	}
	if reqBytes.Sum() < 3*4 {
		t.Errorf("request bytes sum = %v, want at least the 4-byte frame headers", reqBytes.Sum())
	}
	respBytes := reg.Histogram(obs.VecName("slicer_rpc_response_bytes", "server", "unit", "method", "ok"), "")
	if respBytes.Count() != 3 {
		t.Errorf("ok response-size observations = %d, want 3", respBytes.Count())
	}
	// Handler errors still frame a response, so its size is recorded too.
	boomResp := reg.Histogram(obs.VecName("slicer_rpc_response_bytes", "server", "unit", "method", "boom"), "")
	if boomResp.Count() != 1 {
		t.Errorf("boom response-size observations = %d, want 1", boomResp.Count())
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	// Vector children expose their labels in sorted order.
	if !strings.Contains(sb.String(), `slicer_rpc_requests_total{method="ok",outcome="ok",server="unit"} 3`) {
		t.Errorf("exposition missing labeled request counter:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), `slicer_rpc_request_seconds_window{method="ok",quantile="p99",server="unit"}`) {
		t.Errorf("exposition missing windowed p99 gauge:\n%s", sb.String())
	}
}

// TestServerTenantSeries checks the per-tenant request counter: a client
// configured with a tenant stamps every request, the server splits the
// series per tenant, and the cardinality cap collapses the long tail into
// the "other" sentinel instead of growing without bound.
func TestServerTenantSeries(t *testing.T) {
	srv := NewServer()
	srv.Handle("ping", func(_ json.RawMessage) (any, error) { return "pong", nil })
	srv.SetLabelCap(2)
	reg := obs.NewRegistry()
	srv.SetMetrics(reg, "unit")
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer srv.Close()

	for _, tenant := range []string{"alice", "bob", "carol", "dave"} {
		cli, err := DialOpts(addr, ClientOptions{Tenant: tenant})
		if err != nil {
			t.Fatalf("dial %s: %v", tenant, err)
		}
		var out string
		if err := cli.Call("ping", nil, &out); err != nil {
			t.Fatalf("%s ping: %v", tenant, err)
		}
		cli.Close()
	}
	// A tenant-less client must not create a tenant series at all.
	plain, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	var out string
	if err := plain.Call("ping", nil, &out); err != nil {
		t.Fatal(err)
	}
	plain.Close()

	snap := reg.Snapshot()
	for _, pinned := range []struct {
		name string
		want float64
	}{
		{obs.VecName("slicer_rpc_tenant_requests_total", "server", "unit", "tenant", "alice"), 1},
		{obs.VecName("slicer_rpc_tenant_requests_total", "server", "unit", "tenant", "bob"), 1},
		// Past the cap the whole label tuple collapses into the sentinel.
		{obs.VecName("slicer_rpc_tenant_requests_total", "server", "other", "tenant", "other"), 2},
	} {
		if got := snap[pinned.name]; got != pinned.want {
			t.Errorf("%s = %v, want %v", pinned.name, got, pinned.want)
		}
	}
	if got := snap[obs.Label(obs.OverflowCounterName, "family", "slicer_rpc_tenant_requests_total")]; got != 2 {
		t.Errorf("overflow counter = %v, want 2", got)
	}
}
