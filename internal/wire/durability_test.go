package wire

import (
	"testing"

	"slicer/internal/chain"
	"slicer/internal/contract"
	"slicer/internal/core"
	"slicer/internal/durable"
	"slicer/internal/workload"
)

// durableCloud spins up a cloud server persisting into fsys/dir.
func durableCloud(t *testing.T, fsys durable.FS, dir string, opts DurabilityOptions) (*CloudServer, *CloudClient, *RecoveryStats) {
	t.Helper()
	opts.FS = fsys
	opts.Dir = dir
	srv := NewCloudServer()
	stats, err := srv.EnableDurability(opts)
	if err != nil {
		t.Fatalf("EnableDurability: %v", err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cli, err := DialCloud(addr)
	if err != nil {
		t.Fatal(err)
	}
	return srv, cli, stats
}

func TestCloudServerDurableRestart(t *testing.T) {
	params := core.Params{Bits: 8, TrapdoorBits: 256, AccumulatorBits: 256}
	owner, err := core.NewOwner(params)
	if err != nil {
		t.Fatal(err)
	}
	db := workload.Generate(workload.Config{N: 30, Bits: 8, Seed: 11})
	built, err := owner.Build(db)
	if err != nil {
		t.Fatal(err)
	}

	fsys := durable.NewMemFS()
	srv1, cli1, stats := durableCloud(t, fsys, "cloud", DurabilityOptions{Fsync: durable.FsyncNever})
	if !(stats.Replayed == 0 && stats.SnapshotIndex == 0) {
		t.Fatalf("fresh dir recovered %+v", stats)
	}
	if err := cli1.Init(owner.CloudInit(built.Index), true); err != nil {
		t.Fatalf("Init: %v", err)
	}
	for i := 0; i < 3; i++ {
		up, err := owner.Insert([]core.Record{core.NewRecord(uint64(2000+i), uint64(40+i))})
		if err != nil {
			t.Fatal(err)
		}
		if err := cli1.Update(up); err != nil {
			t.Fatalf("Update %d: %v", i, err)
		}
	}
	cli1.Close()
	// Graceful shutdown syncs the journal even under FsyncNever.
	if err := srv1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	srv2, cli2, stats := durableCloud(t, fsys, "cloud", DurabilityOptions{})
	defer srv2.Close()
	defer cli2.Close()
	if stats.Replayed != 4 || stats.Skipped != 0 { // init + 3 updates
		t.Fatalf("recovery stats %+v, want 4 replayed", stats)
	}
	user, err := core.NewUser(owner.ClientState())
	if err != nil {
		t.Fatal(err)
	}
	req, err := user.Token(core.Equal(41))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := cli2.Search(req)
	if err != nil {
		t.Fatalf("post-restart Search: %v", err)
	}
	if err := core.VerifyResponse(owner.AccumulatorPub(), owner.Ac(), req, resp); err != nil {
		t.Fatalf("post-restart response rejected: %v", err)
	}
	// The restored server refuses a second init like a live one.
	if err := cli2.Init(owner.CloudInit(built.Index), true); err == nil {
		t.Error("re-init of recovered cloud succeeded")
	}
}

func TestCloudServerSnapshotTriggerCompactsWAL(t *testing.T) {
	params := core.Params{Bits: 8, TrapdoorBits: 256, AccumulatorBits: 256}
	owner, err := core.NewOwner(params)
	if err != nil {
		t.Fatal(err)
	}
	built, err := owner.Build([]core.Record{core.NewRecord(1, 9)})
	if err != nil {
		t.Fatal(err)
	}
	fsys := durable.NewMemFS()
	srv1, cli1, _ := durableCloud(t, fsys, "cloud", DurabilityOptions{SnapshotEvery: 2})
	if err := cli1.Init(owner.CloudInit(built.Index), true); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		up, err := owner.Insert([]core.Record{core.NewRecord(uint64(100+i), uint64(50+i))})
		if err != nil {
			t.Fatal(err)
		}
		if err := cli1.Update(up); err != nil {
			t.Fatalf("Update %d: %v", i, err)
		}
	}
	cli1.Close()
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	// 6 records with a snapshot every 2: recovery must come from a
	// snapshot, with only the journaled tail replayed.
	srv2, cli2, stats := durableCloud(t, fsys, "cloud", DurabilityOptions{})
	defer srv2.Close()
	defer cli2.Close()
	if stats.SnapshotIndex == 0 {
		t.Fatalf("no snapshot used: %+v", stats)
	}
	if stats.Replayed >= 6 {
		t.Fatalf("snapshot did not absorb the WAL prefix: %+v", stats)
	}
	user, err := core.NewUser(owner.ClientState())
	if err != nil {
		t.Fatal(err)
	}
	req, err := user.Token(core.Equal(54))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := cli2.Search(req)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.VerifyResponse(owner.AccumulatorPub(), owner.Ac(), req, resp); err != nil {
		t.Fatalf("snapshot-recovered response rejected: %v", err)
	}
}

// TestCrashRecoveryEndToEnd is the paper's fair-exchange flow run across a
// cloud crash: the owner sets up a durable cloud server and chain, applies
// updates (anchoring each acknowledged accumulator on chain via SetAc and
// checkpointing its own state), then the cloud is killed by a torn write in
// the middle of an update. A fresh process recovers from the data
// directory, and a prefix-cover range search served by the recovered cloud
// must verify — off chain against the owner's accumulator, and on chain
// through the contract's escrow/submit settlement.
func TestCrashRecoveryEndToEnd(t *testing.T) {
	params := core.Params{Bits: 8, TrapdoorBits: 256, AccumulatorBits: 256, PrefixIndex: true}
	owner, err := core.NewOwner(params)
	if err != nil {
		t.Fatal(err)
	}
	db := []core.Record{
		core.NewRecord(1, 10), core.NewRecord(2, 20),
		core.NewRecord(3, 30), core.NewRecord(4, 40),
	}
	built, err := owner.Build(db)
	if err != nil {
		t.Fatal(err)
	}

	// Chain with the Slicer contract, itself durable on its own disk.
	ownerAcct := chain.AddressFromString("owner")
	userAcct := chain.AddressFromString("user")
	cloudAcct := chain.AddressFromString("cloud")
	registry := chain.NewRegistry()
	if err := contract.Register(registry); err != nil {
		t.Fatal(err)
	}
	vals := []chain.Address{chain.AddressFromString("v0"), chain.AddressFromString("v1")}
	alloc := map[chain.Address]uint64{ownerAcct: 1_000_000, userAcct: 1_000_000, cloudAcct: 1_000_000}
	network, err := chain.NewNetwork(registry, vals, alloc)
	if err != nil {
		t.Fatal(err)
	}
	chainFS := durable.NewMemFS()
	chainSrv := NewChainServer(network)
	if _, err := chainSrv.EnableDurability(DurabilityOptions{FS: chainFS, Dir: "chain"}); err != nil {
		t.Fatal(err)
	}
	chainAddr, err := chainSrv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	chainCli, err := DialChain(chainAddr)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := chainCli.Mine(contract.DeployTx(ownerAcct, 0, owner.AccumulatorPub().Marshal(), owner.Ac(), 5_000_000))
	if err != nil || !rc.Status {
		t.Fatalf("deploy: %+v, %v", rc, err)
	}
	contractAddr := rc.ContractAddress

	// Durable cloud, fsync on every record: an acknowledged update
	// survives kill -9.
	cloudFS := durable.NewMemFS()
	srv1, cli1, _ := durableCloud(t, cloudFS, "cloud", DurabilityOptions{Fsync: durable.FsyncAlways})
	if err := cli1.Init(owner.CloudInit(built.Index), true); err != nil {
		t.Fatal(err)
	}

	// Apply updates; after each *acknowledged* one, anchor the new
	// accumulator on chain and checkpoint the owner. The checkpoint plays
	// the role of the owner process's own durable state.
	setAc := func() {
		t.Helper()
		nonce, err := chainCli.Nonce(ownerAcct)
		if err != nil {
			t.Fatal(err)
		}
		rc, err := chainCli.Mine(&chain.Transaction{
			From: ownerAcct, To: contractAddr, Nonce: nonce,
			GasLimit: 1_000_000, Data: contract.SetAcData(owner.Ac()),
		})
		if err != nil || !rc.Status {
			t.Fatalf("SetAc: %+v, %v", rc, err)
		}
	}
	ownerCkpt, err := owner.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		up, err := owner.Insert([]core.Record{core.NewRecord(uint64(10+i), uint64(50+10*i))})
		if err != nil {
			t.Fatal(err)
		}
		if err := cli1.Update(up); err != nil {
			t.Fatalf("Update %d: %v", i, err)
		}
		setAc()
		if ownerCkpt, err = owner.Marshal(); err != nil {
			t.Fatal(err)
		}
	}

	// Kill the cloud mid-update: the WAL frame tears half-way and the
	// machine dies. The update is never acknowledged, so the owner's
	// checkpoint and the on-chain accumulator still describe the state
	// after update 3.
	doomed, err := owner.Insert([]core.Record{core.NewRecord(99, 200)})
	if err != nil {
		t.Fatal(err)
	}
	cloudFS.FailNextWriteShort()
	if err := cli1.Update(doomed); err == nil {
		t.Fatal("update during crash was acknowledged")
	}
	cli1.Close()
	_ = srv1.Close() // the journal is broken; close errors are expected
	cloudFS.Crash()

	// The chain "process" also restarts: a fresh network from the same
	// genesis recovers every sealed block from its own data dir.
	chainCli.Close()
	if err := chainSrv.Close(); err != nil {
		t.Fatal(err)
	}
	chainFS.Crash()
	network2, err := chain.NewNetwork(registry, vals, alloc)
	if err != nil {
		t.Fatal(err)
	}
	chainSrv2 := NewChainServer(network2)
	chStats, err := chainSrv2.EnableDurability(DurabilityOptions{FS: chainFS, Dir: "chain"})
	if err != nil {
		t.Fatal(err)
	}
	if chStats.Replayed == 0 && chStats.SnapshotIndex == 0 {
		t.Fatalf("chain recovered nothing: %+v", chStats)
	}
	chainAddr2, err := chainSrv2.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer chainSrv2.Close()
	chainCli2, err := DialChain(chainAddr2)
	if err != nil {
		t.Fatal(err)
	}
	defer chainCli2.Close()
	if h, err := chainCli2.Height(); err != nil || h != 4 {
		t.Fatalf("recovered chain height %d, %v; want 4 (deploy + 3 SetAc)", h, err)
	}

	// Restart the cloud from its data directory. The torn record must be
	// truncated and everything acknowledged must be back.
	srv2, cli2, stats := durableCloud(t, cloudFS, "cloud", DurabilityOptions{Fsync: durable.FsyncAlways})
	defer srv2.Close()
	defer cli2.Close()
	if stats.Truncated == 0 {
		t.Fatalf("torn record not truncated: %+v", stats)
	}
	if stats.Replayed+stats.Skipped < 4 && stats.SnapshotIndex == 0 {
		t.Fatalf("acknowledged records missing after crash: %+v", stats)
	}

	// The owner restarts from its checkpoint (state as of the last
	// acknowledged update) and a user derives fresh credentials from it.
	owner2, err := core.UnmarshalOwner(ownerCkpt)
	if err != nil {
		t.Fatal(err)
	}
	user, err := core.NewUser(owner2.ClientState())
	if err != nil {
		t.Fatal(err)
	}

	// Range search over the recovered cloud, verified off chain...
	req, err := user.RangeTokens("", 10, 70)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := cli2.Search(req)
	if err != nil {
		t.Fatalf("post-crash RangeSearch: %v", err)
	}
	if err := core.VerifyResponse(owner2.AccumulatorPub(), owner2.Ac(), req, resp); err != nil {
		t.Fatalf("post-crash response rejected: %v", err)
	}
	ids, err := user.Decrypt(resp)
	if err != nil {
		t.Fatal(err)
	}
	want := map[uint64]bool{1: true, 2: true, 3: true, 4: true, 10: true, 11: true, 12: true}
	for _, id := range ids {
		if !want[id] {
			t.Fatalf("unexpected id %d in %v", id, ids)
		}
		delete(want, id)
	}
	if len(want) != 0 {
		t.Fatalf("missing ids after recovery: %v (got %v)", want, ids)
	}

	// ...and on chain: escrow the payment, submit the recovered cloud's
	// results, and let the contract verify them against the anchored
	// accumulator. ReturnData[0] == 1 is the contract's "proofs verified,
	// payment settled" verdict.
	th, err := contract.TokensHash(req.Tokens)
	if err != nil {
		t.Fatal(err)
	}
	reqID := chain.HashBytes([]byte("recovery-request"), th[:])
	nonce, err := chainCli2.Nonce(userAcct)
	if err != nil {
		t.Fatal(err)
	}
	rc, err = chainCli2.Mine(&chain.Transaction{
		From: userAcct, To: contractAddr, Nonce: nonce, Value: 500,
		GasLimit: 1_000_000, Data: contract.RequestData(reqID, cloudAcct, th),
	})
	if err != nil || !rc.Status {
		t.Fatalf("escrow after recovery: %+v, %v", rc, err)
	}
	submit, err := contract.SubmitData(reqID, owner2.AccumulatorPub().Marshal(), owner2.Ac(), resp.Results)
	if err != nil {
		t.Fatal(err)
	}
	nonce, err = chainCli2.Nonce(cloudAcct)
	if err != nil {
		t.Fatal(err)
	}
	rc, err = chainCli2.Mine(&chain.Transaction{
		From: cloudAcct, To: contractAddr, Nonce: nonce,
		GasLimit: 50_000_000, Data: submit,
	})
	if err != nil || !rc.Status {
		t.Fatalf("submit after recovery: %+v, %v", rc, err)
	}
	if len(rc.ReturnData) != 1 || rc.ReturnData[0] != 1 {
		t.Fatalf("on-chain verification failed after recovery: return %v", rc.ReturnData)
	}

	// The never-acknowledged update can simply be re-shipped: the
	// recovered cloud is exactly at the pre-crash acknowledged state.
	if err := cli2.Update(doomed); err != nil {
		t.Fatalf("re-shipping the torn update: %v", err)
	}
}

func TestChainServerDurableRestart(t *testing.T) {
	registry := chain.NewRegistry()
	if err := contract.Register(registry); err != nil {
		t.Fatal(err)
	}
	alice := chain.AddressFromString("alice")
	bob := chain.AddressFromString("bob")
	vals := []chain.Address{chain.AddressFromString("v0"), chain.AddressFromString("v1")}
	alloc := map[chain.Address]uint64{alice: 10_000}
	fsys := durable.NewMemFS()

	boot := func() (*ChainServer, *ChainClient, *RecoveryStats) {
		network, err := chain.NewNetwork(registry, vals, alloc)
		if err != nil {
			t.Fatal(err)
		}
		srv := NewChainServer(network)
		stats, err := srv.EnableDurability(DurabilityOptions{FS: fsys, Dir: "chain", SnapshotEvery: 2})
		if err != nil {
			t.Fatalf("EnableDurability: %v", err)
		}
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		cli, err := DialChain(addr)
		if err != nil {
			t.Fatal(err)
		}
		return srv, cli, stats
	}

	srv1, cli1, _ := boot()
	for i := uint64(0); i < 5; i++ {
		rc, err := cli1.Mine(&chain.Transaction{
			From: alice, To: bob, Nonce: i, Value: 100, GasLimit: 100_000,
		})
		if err != nil || !rc.Status {
			t.Fatalf("tx %d: %+v, %v", i, rc, err)
		}
	}
	cli1.Close()
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}
	fsys.Crash() // FsyncAlways: every sealed block must still be there

	srv2, cli2, stats := boot()
	defer srv2.Close()
	defer cli2.Close()
	if stats.SnapshotIndex == 0 {
		t.Fatalf("expected snapshot-based recovery with SnapshotEvery=2: %+v", stats)
	}
	h, err := cli2.Height()
	if err != nil || h != 5 {
		t.Fatalf("recovered height %d, %v; want 5", h, err)
	}
	bal, err := cli2.Balance(bob)
	if err != nil || bal != 500 {
		t.Fatalf("recovered balance %d, %v; want 500", bal, err)
	}
	// The recovered chain keeps sealing: nonces continue where they left
	// off.
	rc, err := cli2.Mine(&chain.Transaction{
		From: alice, To: bob, Nonce: 5, Value: 100, GasLimit: 100_000,
	})
	if err != nil || !rc.Status {
		t.Fatalf("post-recovery tx: %+v, %v", rc, err)
	}
}
