// Package wire implements the message layer for deploying Slicer's parties
// on separate machines: a length-prefixed JSON protocol over TCP, a cloud
// server exposing the search service, a chain server exposing a blockchain
// node, and typed clients for both. cmd/slicer-cloud and cmd/slicer-chain
// wrap the servers; examples/distributed drives a full deployment over
// loopback TCP.
package wire

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"slicer/internal/obs"
)

// MaxMessageSize bounds a single message (64 MiB) so a malformed peer
// cannot trigger unbounded allocation.
const MaxMessageSize = 64 << 20

// DefaultIdleTimeout is how long a server connection may sit idle between
// requests before it is dropped, freeing the goroutine a stalled or dead
// peer would otherwise pin forever. Configurable per server with
// SetIdleTimeout; 0 disables the deadline.
const DefaultIdleTimeout = 2 * time.Minute

// DefaultDialTimeout bounds how long Dial waits for the TCP connection.
const DefaultDialTimeout = 10 * time.Second

// DefaultCallTimeout bounds one RPC round trip (write + server work +
// read), so a dead or stalled server cannot pin the caller forever. It
// matches the server's idle deadline; override with ClientOptions.
const DefaultCallTimeout = 2 * time.Minute

// Request is one framed RPC request. Trace, when present and valid, asks
// the server to join the caller's distributed trace and return its span
// tree; peers that predate trace propagation simply ignore the field, and
// a request without it gets a context-free response — full backward
// compatibility in both directions.
type Request struct {
	Method string            `json:"method"`
	Params json.RawMessage   `json:"params,omitempty"`
	Trace  *obs.TraceContext `json:"trace,omitempty"`
	// Tenant optionally identifies the calling tenant/owner for per-tenant
	// request accounting (slicer_rpc_tenant_requests_total). Absent on old
	// clients; servers treat it as opaque, sanitized, cardinality-capped
	// label material — never as an authorization claim.
	Tenant string `json:"tenant,omitempty"`
}

// Response is one framed RPC response. Trace carries the server-side span
// tree back to a caller that sent a sampled trace context; it is absent
// otherwise.
type Response struct {
	Result json.RawMessage   `json:"result,omitempty"`
	Error  string            `json:"error,omitempty"`
	Trace  *obs.TraceSummary `json:"trace,omitempty"`
}

// WriteMessage frames and writes one JSON message.
func WriteMessage(w io.Writer, v any) error {
	_, err := writeMessage(w, v)
	return err
}

// writeMessage is WriteMessage reporting the framed size (header + body),
// feeding the per-method payload-size histograms.
func writeMessage(w io.Writer, v any) (int, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return 0, fmt.Errorf("wire: marshal: %w", err)
	}
	if len(body) > MaxMessageSize {
		return 0, fmt.Errorf("wire: message of %d bytes exceeds limit", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := w.Write(body); err != nil {
		return 0, err
	}
	return len(hdr) + len(body), nil
}

// ReadMessage reads one framed JSON message into v.
func ReadMessage(r io.Reader, v any) error {
	_, err := readMessage(r, v)
	return err
}

// readMessage is ReadMessage reporting the framed size (header + body).
func readMessage(r io.Reader, v any) (int, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxMessageSize {
		return 0, fmt.Errorf("wire: message of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, err
	}
	if err := json.Unmarshal(body, v); err != nil {
		return 0, fmt.Errorf("wire: unmarshal: %w", err)
	}
	return len(hdr) + int(n), nil
}

// Handler serves one method. Params arrive as raw JSON; the returned value
// is marshaled into the response.
type Handler func(params json.RawMessage) (any, error)

// TracedHandler is a Handler that additionally receives the server-side
// trace of the request — non-nil only when the caller propagated a valid,
// sampled trace context. Handlers record their phases into it; a nil trace
// makes every span a no-op, so no branching is needed.
type TracedHandler func(params json.RawMessage, tr *obs.Trace) (any, error)

// Meta is per-request metadata the RPC layer extracts from the envelope and
// the transport — who the caller claims to be and where the bytes came from.
// Handlers that journal audit records use it to attribute events.
type Meta struct {
	// Tenant is the caller-declared tenant tag from the request envelope
	// (empty when the client set none).
	Tenant string
	// Peer is the remote address of the connection serving the request.
	Peer string
}

// MetaHandler is a TracedHandler that additionally receives the request
// metadata.
type MetaHandler func(params json.RawMessage, tr *obs.Trace, m Meta) (any, error)

// handlerEntry is one registered method with its per-method instruments
// (nil until SetMetrics attaches a registry). ok/fail are the
// outcome-labeled children of the requests vector; dur is a sliding-window
// histogram, so the method exports live quantile gauges next to its
// cumulative series.
type handlerEntry struct {
	fn        MetaHandler
	ok        *obs.Counter
	fail      *obs.Counter
	errs      *obs.Counter // legacy unsplit error series, kept for dashboards
	dur       *obs.Histogram
	reqBytes  *obs.Histogram
	respBytes *obs.Histogram
}

// Server is a minimal RPC server multiplexing named handlers over TCP.
type Server struct {
	mu       sync.Mutex
	handlers map[string]*handlerEntry
	listener net.Listener
	wg       sync.WaitGroup
	closed   bool

	idleTimeout  atomic.Int64 // nanoseconds; 0 disables the read deadline
	logger       *slog.Logger
	reg          *obs.Registry
	subsystem    string
	labelCap     int // per-vector cardinality cap; 0 = obs.DefLabelCap
	traces       *obs.TraceStore
	connsOpen    *obs.Gauge
	connsTotal   *obs.Counter
	idleDropped  *obs.Counter
	traceBad     *obs.Counter
	traceServed  *obs.Counter
	requests     *obs.CounterVec
	durVec       *obs.HistogramVec
	reqBytesVec  *obs.HistogramVec
	respBytesVec *obs.HistogramVec
	tenants      *obs.CounterVec
}

// NewServer creates an empty server with the default idle timeout and a
// no-op logger.
func NewServer() *Server {
	s := &Server{handlers: make(map[string]*handlerEntry), logger: obs.Nop()}
	s.idleTimeout.Store(int64(DefaultIdleTimeout))
	return s
}

// SetLogger installs a structured logger for connection lifecycle events.
// A nil logger restores the no-op default.
func (s *Server) SetLogger(l *slog.Logger) {
	if l == nil {
		l = obs.Nop()
	}
	s.mu.Lock()
	s.logger = l
	s.mu.Unlock()
}

func (s *Server) log() *slog.Logger {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.logger
}

// SetIdleTimeout bounds how long a connection may sit idle between
// requests; 0 disables the bound. Takes effect for the next read on every
// connection, including already-open ones.
func (s *Server) SetIdleTimeout(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s.idleTimeout.Store(int64(d))
}

// IdleTimeout reports the configured idle bound.
func (s *Server) IdleTimeout() time.Duration { return time.Duration(s.idleTimeout.Load()) }

// DefaultTenantLabelCap is the default bound on distinct tenant label
// values a server materializes before further tenants collapse into the
// "other" sentinel series.
const DefaultTenantLabelCap = obs.DefLabelCap

// SetLabelCap bounds the per-tenant (and other vector) label cardinality
// this server materializes; n <= 0 restores obs.DefLabelCap. Call before
// SetMetrics — the cap is baked into the vectors when they are created.
func (s *Server) SetLabelCap(n int) {
	s.mu.Lock()
	if n < 0 {
		n = 0
	}
	s.labelCap = n
	s.mu.Unlock()
}

// SetMetrics attaches an observability registry. subsystem labels every
// series (e.g. "cloud", "chain") so one registry can host several servers.
// Methods registered before or after both get per-method instruments.
func (s *Server) SetMetrics(reg *obs.Registry, subsystem string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reg = reg
	s.subsystem = subsystem
	s.connsOpen = reg.Gauge(obs.Label("slicer_rpc_connections_open", "server", subsystem),
		"Currently open RPC connections.")
	s.connsTotal = reg.Counter(obs.Label("slicer_rpc_connections_total", "server", subsystem),
		"RPC connections accepted since start.")
	s.idleDropped = reg.Counter(obs.Label("slicer_rpc_idle_dropped_total", "server", subsystem),
		"Connections dropped by the idle read deadline.")
	s.traceBad = reg.Counter(obs.Label("slicer_rpc_trace_rejected_total", "server", subsystem),
		"Requests whose trace context was malformed and therefore ignored.")
	s.traceServed = reg.Counter(obs.Label("slicer_rpc_traces_total", "server", subsystem),
		"Requests served with a propagated distributed trace.")
	s.requests = reg.CounterVecOpts("slicer_rpc_requests_total",
		"RPC requests served, by method and outcome.",
		[]string{"server", "method", "outcome"}, obs.VecOpts{MaxCardinality: 256})
	s.durVec = reg.HistogramVecOpts("slicer_rpc_request_seconds",
		"RPC handler latency, by method.",
		[]string{"server", "method"}, obs.VecOpts{Window: &obs.WindowOptions{}})
	s.reqBytesVec = reg.HistogramVecOpts("slicer_rpc_request_bytes",
		"Framed RPC request size in bytes (header + body), by method.",
		[]string{"server", "method"}, obs.VecOpts{Buckets: obs.DefSizeBuckets})
	s.respBytesVec = reg.HistogramVecOpts("slicer_rpc_response_bytes",
		"Framed RPC response size in bytes (header + body), by method.",
		[]string{"server", "method"}, obs.VecOpts{Buckets: obs.DefSizeBuckets})
	s.tenants = reg.CounterVecOpts("slicer_rpc_tenant_requests_total",
		"RPC requests by self-reported tenant; overflow collapses to other.",
		[]string{"server", "tenant"}, obs.VecOpts{MaxCardinality: s.labelCap})
	for method, e := range s.handlers {
		s.instrument(method, e)
	}
}

// SetTraceStore attaches a store retaining the server-side traces of
// requests that arrive with a sampled trace context, for /debug/traces. A
// nil store detaches.
func (s *Server) SetTraceStore(ts *obs.TraceStore) {
	s.mu.Lock()
	s.traces = ts
	s.mu.Unlock()
}

// TraceStore reports the attached store (nil when detached).
func (s *Server) TraceStore() *obs.TraceStore {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.traces
}

// instrument resolves one method's instruments. Caller holds s.mu.
func (s *Server) instrument(method string, e *handlerEntry) {
	if s.reg == nil {
		return
	}
	e.ok = s.requests.WithLabelValues(s.subsystem, method, "ok")
	e.fail = s.requests.WithLabelValues(s.subsystem, method, "error")
	e.errs = s.reg.Counter(obs.Label("slicer_rpc_errors_total", "server", s.subsystem, "method", method),
		"RPC requests that returned an error, by method.")
	e.dur = s.durVec.WithLabelValues(s.subsystem, method)
	e.reqBytes = s.reqBytesVec.WithLabelValues(s.subsystem, method)
	e.respBytes = s.respBytesVec.WithLabelValues(s.subsystem, method)
}

// Handle registers a method handler that does not record trace spans of its
// own (the RPC layer still traces the handler as a whole).
func (s *Server) Handle(method string, h Handler) {
	s.HandleTraced(method, func(params json.RawMessage, _ *obs.Trace) (any, error) {
		return h(params)
	})
}

// HandleTraced registers a method handler that records its phases into the
// request's propagated trace.
func (s *Server) HandleTraced(method string, h TracedHandler) {
	s.HandleMeta(method, func(params json.RawMessage, tr *obs.Trace, _ Meta) (any, error) {
		return h(params, tr)
	})
}

// HandleMeta registers a method handler that additionally receives the
// request metadata (tenant, peer) for attribution.
func (s *Server) HandleMeta(method string, h MetaHandler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := &handlerEntry{fn: h}
	s.instrument(method, e)
	s.handlers[method] = e
}

// Listen starts accepting connections on addr ("host:port", empty port
// picks a free one). It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("wire: listen: %w", err)
	}
	s.mu.Lock()
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	s.log().Info("listening", "addr", ln.Addr().String())
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	peer := conn.RemoteAddr().String()
	s.connsTotal.Inc()
	s.connsOpen.Inc()
	defer s.connsOpen.Dec()
	s.log().Debug("connection open", "peer", peer)
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		if d := s.IdleTimeout(); d > 0 {
			if err := conn.SetReadDeadline(time.Now().Add(d)); err != nil {
				return
			}
		}
		var req Request
		reqSize, err := readMessage(r, &req)
		if err != nil {
			var ne net.Error
			switch {
			case errors.As(err, &ne) && ne.Timeout():
				// A stalled or dead peer must not pin this goroutine forever.
				s.idleDropped.Inc()
				s.log().Warn("dropping idle connection", "peer", peer, "idleTimeout", s.IdleTimeout())
			case errors.Is(err, io.EOF):
				s.log().Debug("connection closed by peer", "peer", peer)
			default:
				s.log().Debug("connection read failed", "peer", peer, "err", err)
			}
			return // connection closed, idle-expired or corrupted framing
		}
		s.mu.Lock()
		e, ok := s.handlers[req.Method]
		tenants, subsystem := s.tenants, s.subsystem
		s.mu.Unlock()
		if req.Tenant != "" {
			tenants.WithLabelValues(subsystem, req.Tenant).Inc()
		}
		var resp Response
		if !ok {
			resp.Error = fmt.Sprintf("unknown method %q", req.Method)
		} else {
			e.reqBytes.Observe(float64(reqSize))
			tr := s.openTrace(&req)
			t0 := e.dur.Start()
			endHandle := tr.Span("handle:" + req.Method)
			result, err := e.fn(req.Params, tr, Meta{Tenant: req.Tenant, Peer: peer})
			endHandle()
			if !t0.IsZero() {
				// Traced requests leave an exemplar on their latency bucket,
				// linking a quantile estimate back to the stored trace.
				if tr != nil {
					e.dur.ObserveExemplar(time.Since(t0).Seconds(), tr.ID())
				} else {
					e.dur.ObserveSince(t0)
				}
			}
			if err != nil {
				e.fail.Inc()
				e.errs.Inc()
				s.log().Debug("rpc error", "method", req.Method, "peer", peer, "err", err)
				resp.Error = err.Error()
			} else {
				e.ok.Inc()
				body, err := json.Marshal(result)
				if err != nil {
					resp.Error = fmt.Sprintf("marshal result: %v", err)
				} else {
					resp.Result = body
				}
			}
			if tr != nil {
				s.traceServed.Inc()
				resp.Trace = tr.Summary()
				s.TraceStore().Record(tr)
			}
		}
		respSize, err := writeMessage(w, &resp)
		if err != nil {
			return
		}
		if ok {
			e.respBytes.Observe(float64(respSize))
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// openTrace starts a server-side trace for a request carrying a valid,
// sampled trace context; it returns nil (tracing off) for context-free
// requests and silently ignores — but counts — malformed or hostile
// contexts, so a bad peer can never fail a request or panic the server.
func (s *Server) openTrace(req *Request) *obs.Trace {
	if req.Trace == nil {
		return nil
	}
	if err := req.Trace.Validate(); err != nil {
		s.traceBad.Inc()
		s.log().Debug("ignoring malformed trace context", "method", req.Method, "err", err)
		return nil
	}
	if !req.Trace.Sampled {
		return nil
	}
	s.mu.Lock()
	name := s.subsystem
	s.mu.Unlock()
	if name == "" {
		name = "server"
	}
	return obs.NewTraceWithID(name+"."+req.Method, req.Trace.TraceID)
}

// Close stops accepting and waits for in-flight connections to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.listener
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// ErrCallTimeout reports an RPC round trip that exceeded the client's call
// deadline (the server is dead, stalled, or too slow). Detect it with
// errors.Is; the connection is unusable afterwards.
var ErrCallTimeout = errors.New("wire: call timed out")

// ClientOptions tunes a client's transport robustness. The zero value gets
// the package defaults.
type ClientOptions struct {
	// DialTimeout bounds the TCP connect (default DefaultDialTimeout;
	// negative disables).
	DialTimeout time.Duration
	// CallTimeout bounds one RPC round trip (default DefaultCallTimeout;
	// negative disables). Raise it for calls that legitimately run long —
	// e.g. bulk index shipping at full scale.
	CallTimeout time.Duration
	// Registry, when non-nil, counts client-side call timeouts
	// (slicer_rpc_client_timeouts_total).
	Registry *obs.Registry
	// Tenant, when non-empty, stamps every request with a tenant/owner ID
	// for the server's per-tenant accounting.
	Tenant string
}

func (o ClientOptions) dialTimeout() time.Duration {
	if o.DialTimeout < 0 {
		return 0
	}
	if o.DialTimeout == 0 {
		return DefaultDialTimeout
	}
	return o.DialTimeout
}

// Client is a synchronous RPC client over one TCP connection.
type Client struct {
	mu          sync.Mutex
	conn        net.Conn
	r           *bufio.Reader
	w           *bufio.Writer
	callTimeout time.Duration
	tenant      string
	timeouts    *obs.Counter // nil-safe
}

// Dial connects to a server with the default timeouts.
func Dial(addr string) (*Client, error) {
	return DialOpts(addr, ClientOptions{})
}

// DialOpts connects to a server with explicit transport options.
func DialOpts(addr string, opts ClientOptions) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, opts.dialTimeout())
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	c := &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn), tenant: opts.Tenant}
	switch {
	case opts.CallTimeout < 0:
		c.callTimeout = 0
	case opts.CallTimeout == 0:
		c.callTimeout = DefaultCallTimeout
	default:
		c.callTimeout = opts.CallTimeout
	}
	if opts.Registry != nil {
		c.timeouts = opts.Registry.Counter("slicer_rpc_client_timeouts_total",
			"RPC calls abandoned because the per-call deadline expired.")
	}
	return c, nil
}

// SetCallTimeout rebounds the per-call deadline (0 disables).
func (c *Client) SetCallTimeout(d time.Duration) {
	c.mu.Lock()
	if d < 0 {
		d = 0
	}
	c.callTimeout = d
	c.mu.Unlock()
}

// Call invokes a method, decoding the result into out (which may be nil).
func (c *Client) Call(method string, params any, out any) error {
	resp, err := c.roundTrip(method, params, nil)
	if err != nil {
		return err
	}
	return decodeResult(resp, out)
}

// CallTraced invokes a method while propagating tr's context to the server
// and splicing the returned span tree into tr, tagged with the party name.
// A nil trace makes CallTraced exactly Call (no context is sent, so peers
// that predate trace propagation see an unchanged protocol).
func (c *Client) CallTraced(method string, params any, out any, tr *obs.Trace, party string) error {
	if tr == nil {
		return c.Call(method, params, out)
	}
	start := time.Now()
	resp, err := c.roundTrip(method, params, tr.Context())
	if err != nil {
		return err
	}
	// Splice before surfacing an application error: a failed RPC still
	// contributes its latency attribution.
	tr.SpliceRemote(party, method, start, time.Since(start), resp.Trace)
	return decodeResult(resp, out)
}

// roundTrip frames one request and reads its response under the per-call
// deadline.
func (c *Client) roundTrip(method string, params any, tctx *obs.TraceContext) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var raw json.RawMessage
	if params != nil {
		body, err := json.Marshal(params)
		if err != nil {
			return nil, fmt.Errorf("wire: marshal params: %w", err)
		}
		raw = body
	}
	if c.callTimeout > 0 {
		if err := c.conn.SetDeadline(time.Now().Add(c.callTimeout)); err != nil {
			return nil, err
		}
		defer c.conn.SetDeadline(time.Time{})
	}
	if err := WriteMessage(c.w, &Request{Method: method, Params: raw, Trace: tctx, Tenant: c.tenant}); err != nil {
		return nil, c.wrapTimeout(method, err)
	}
	if err := c.w.Flush(); err != nil {
		return nil, c.wrapTimeout(method, err)
	}
	var resp Response
	if err := ReadMessage(c.r, &resp); err != nil {
		return nil, c.wrapTimeout(method, err)
	}
	return &resp, nil
}

// wrapTimeout converts a deadline expiry into the typed ErrCallTimeout and
// counts it; other errors pass through.
func (c *Client) wrapTimeout(method string, err error) error {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		c.timeouts.Inc()
		return fmt.Errorf("%w: %s after %s", ErrCallTimeout, method, c.callTimeout)
	}
	return err
}

func decodeResult(resp *Response, out any) error {
	if resp.Error != "" {
		return errors.New(resp.Error)
	}
	if out != nil && resp.Result != nil {
		return json.Unmarshal(resp.Result, out)
	}
	return nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// RPCDurationSeries names the windowed per-method latency histogram a
// server registers for (subsystem, method) — the series SLO objectives
// evaluate against.
func RPCDurationSeries(subsystem, method string) string {
	return obs.VecName("slicer_rpc_request_seconds", "server", subsystem, "method", method)
}

// SLOAliases maps the short "rpc:<op>" objective-metric spellings the -slo
// flag accepts onto the full per-method duration series, e.g.
// "rpc:search" → slicer_rpc_request_seconds{method="cloud.search",server="cloud"}.
// The op is the method name after its subsystem prefix ("cloud.search" →
// "search"); the full method name works too ("rpc:cloud.search").
func SLOAliases(subsystem string, methods ...string) map[string]string {
	out := make(map[string]string, 2*len(methods))
	for _, m := range methods {
		series := RPCDurationSeries(subsystem, m)
		out["rpc:"+m] = series
		if i := strings.LastIndexByte(m, '.'); i >= 0 && i+1 < len(m) {
			out["rpc:"+m[i+1:]] = series
		}
	}
	return out
}
