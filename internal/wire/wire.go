// Package wire implements the message layer for deploying Slicer's parties
// on separate machines: a length-prefixed JSON protocol over TCP, a cloud
// server exposing the search service, a chain server exposing a blockchain
// node, and typed clients for both. cmd/slicer-cloud and cmd/slicer-chain
// wrap the servers; examples/distributed drives a full deployment over
// loopback TCP.
package wire

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"slicer/internal/obs"
)

// MaxMessageSize bounds a single message (64 MiB) so a malformed peer
// cannot trigger unbounded allocation.
const MaxMessageSize = 64 << 20

// DefaultIdleTimeout is how long a server connection may sit idle between
// requests before it is dropped, freeing the goroutine a stalled or dead
// peer would otherwise pin forever. Configurable per server with
// SetIdleTimeout; 0 disables the deadline.
const DefaultIdleTimeout = 2 * time.Minute

// Request is one framed RPC request.
type Request struct {
	Method string          `json:"method"`
	Params json.RawMessage `json:"params,omitempty"`
}

// Response is one framed RPC response.
type Response struct {
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// WriteMessage frames and writes one JSON message.
func WriteMessage(w io.Writer, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("wire: marshal: %w", err)
	}
	if len(body) > MaxMessageSize {
		return fmt.Errorf("wire: message of %d bytes exceeds limit", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// ReadMessage reads one framed JSON message into v.
func ReadMessage(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxMessageSize {
		return fmt.Errorf("wire: message of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return err
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("wire: unmarshal: %w", err)
	}
	return nil
}

// Handler serves one method. Params arrive as raw JSON; the returned value
// is marshaled into the response.
type Handler func(params json.RawMessage) (any, error)

// handlerEntry is one registered method with its per-method instruments
// (nil until SetMetrics attaches a registry).
type handlerEntry struct {
	fn    Handler
	calls *obs.Counter
	errs  *obs.Counter
	dur   *obs.Histogram
}

// Server is a minimal RPC server multiplexing named handlers over TCP.
type Server struct {
	mu       sync.Mutex
	handlers map[string]*handlerEntry
	listener net.Listener
	wg       sync.WaitGroup
	closed   bool

	idleTimeout atomic.Int64 // nanoseconds; 0 disables the read deadline
	logger      *slog.Logger
	reg         *obs.Registry
	subsystem   string
	connsOpen   *obs.Gauge
	connsTotal  *obs.Counter
	idleDropped *obs.Counter
}

// NewServer creates an empty server with the default idle timeout and a
// no-op logger.
func NewServer() *Server {
	s := &Server{handlers: make(map[string]*handlerEntry), logger: obs.Nop()}
	s.idleTimeout.Store(int64(DefaultIdleTimeout))
	return s
}

// SetLogger installs a structured logger for connection lifecycle events.
// A nil logger restores the no-op default.
func (s *Server) SetLogger(l *slog.Logger) {
	if l == nil {
		l = obs.Nop()
	}
	s.mu.Lock()
	s.logger = l
	s.mu.Unlock()
}

func (s *Server) log() *slog.Logger {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.logger
}

// SetIdleTimeout bounds how long a connection may sit idle between
// requests; 0 disables the bound. Takes effect for the next read on every
// connection, including already-open ones.
func (s *Server) SetIdleTimeout(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s.idleTimeout.Store(int64(d))
}

// IdleTimeout reports the configured idle bound.
func (s *Server) IdleTimeout() time.Duration { return time.Duration(s.idleTimeout.Load()) }

// SetMetrics attaches an observability registry. subsystem labels every
// series (e.g. "cloud", "chain") so one registry can host several servers.
// Methods registered before or after both get per-method instruments.
func (s *Server) SetMetrics(reg *obs.Registry, subsystem string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reg = reg
	s.subsystem = subsystem
	s.connsOpen = reg.Gauge(obs.Label("slicer_rpc_connections_open", "server", subsystem),
		"Currently open RPC connections.")
	s.connsTotal = reg.Counter(obs.Label("slicer_rpc_connections_total", "server", subsystem),
		"RPC connections accepted since start.")
	s.idleDropped = reg.Counter(obs.Label("slicer_rpc_idle_dropped_total", "server", subsystem),
		"Connections dropped by the idle read deadline.")
	for method, e := range s.handlers {
		s.instrument(method, e)
	}
}

// instrument resolves one method's instruments. Caller holds s.mu.
func (s *Server) instrument(method string, e *handlerEntry) {
	if s.reg == nil {
		return
	}
	e.calls = s.reg.Counter(obs.Label("slicer_rpc_requests_total", "server", s.subsystem, "method", method),
		"RPC requests served, by method.")
	e.errs = s.reg.Counter(obs.Label("slicer_rpc_errors_total", "server", s.subsystem, "method", method),
		"RPC requests that returned an error, by method.")
	e.dur = s.reg.Histogram(obs.Label("slicer_rpc_request_seconds", "server", s.subsystem, "method", method),
		"RPC handler latency, by method.")
}

// Handle registers a method handler.
func (s *Server) Handle(method string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := &handlerEntry{fn: h}
	s.instrument(method, e)
	s.handlers[method] = e
}

// Listen starts accepting connections on addr ("host:port", empty port
// picks a free one). It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("wire: listen: %w", err)
	}
	s.mu.Lock()
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	s.log().Info("listening", "addr", ln.Addr().String())
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	peer := conn.RemoteAddr().String()
	s.connsTotal.Inc()
	s.connsOpen.Inc()
	defer s.connsOpen.Dec()
	s.log().Debug("connection open", "peer", peer)
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		if d := s.IdleTimeout(); d > 0 {
			if err := conn.SetReadDeadline(time.Now().Add(d)); err != nil {
				return
			}
		}
		var req Request
		if err := ReadMessage(r, &req); err != nil {
			var ne net.Error
			switch {
			case errors.As(err, &ne) && ne.Timeout():
				// A stalled or dead peer must not pin this goroutine forever.
				s.idleDropped.Inc()
				s.log().Warn("dropping idle connection", "peer", peer, "idleTimeout", s.IdleTimeout())
			case errors.Is(err, io.EOF):
				s.log().Debug("connection closed by peer", "peer", peer)
			default:
				s.log().Debug("connection read failed", "peer", peer, "err", err)
			}
			return // connection closed, idle-expired or corrupted framing
		}
		s.mu.Lock()
		e, ok := s.handlers[req.Method]
		s.mu.Unlock()
		var resp Response
		if !ok {
			resp.Error = fmt.Sprintf("unknown method %q", req.Method)
		} else {
			e.calls.Inc()
			t0 := e.dur.Start()
			result, err := e.fn(req.Params)
			e.dur.ObserveSince(t0)
			if err != nil {
				e.errs.Inc()
				s.log().Debug("rpc error", "method", req.Method, "peer", peer, "err", err)
				resp.Error = err.Error()
			} else {
				body, err := json.Marshal(result)
				if err != nil {
					resp.Error = fmt.Sprintf("marshal result: %v", err)
				} else {
					resp.Result = body
				}
			}
		}
		if err := WriteMessage(w, &resp); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// Close stops accepting and waits for in-flight connections to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.listener
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// Client is a synchronous RPC client over one TCP connection.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	return &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}, nil
}

// Call invokes a method, decoding the result into out (which may be nil).
func (c *Client) Call(method string, params any, out any) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var raw json.RawMessage
	if params != nil {
		body, err := json.Marshal(params)
		if err != nil {
			return fmt.Errorf("wire: marshal params: %w", err)
		}
		raw = body
	}
	if err := WriteMessage(c.w, &Request{Method: method, Params: raw}); err != nil {
		return err
	}
	if err := c.w.Flush(); err != nil {
		return err
	}
	var resp Response
	if err := ReadMessage(c.r, &resp); err != nil {
		return err
	}
	if resp.Error != "" {
		return errors.New(resp.Error)
	}
	if out != nil && resp.Result != nil {
		return json.Unmarshal(resp.Result, out)
	}
	return nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }
