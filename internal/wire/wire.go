// Package wire implements the message layer for deploying Slicer's parties
// on separate machines: a length-prefixed JSON protocol over TCP, a cloud
// server exposing the search service, a chain server exposing a blockchain
// node, and typed clients for both. cmd/slicer-cloud and cmd/slicer-chain
// wrap the servers; examples/distributed drives a full deployment over
// loopback TCP.
package wire

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// MaxMessageSize bounds a single message (64 MiB) so a malformed peer
// cannot trigger unbounded allocation.
const MaxMessageSize = 64 << 20

// Request is one framed RPC request.
type Request struct {
	Method string          `json:"method"`
	Params json.RawMessage `json:"params,omitempty"`
}

// Response is one framed RPC response.
type Response struct {
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// WriteMessage frames and writes one JSON message.
func WriteMessage(w io.Writer, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("wire: marshal: %w", err)
	}
	if len(body) > MaxMessageSize {
		return fmt.Errorf("wire: message of %d bytes exceeds limit", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// ReadMessage reads one framed JSON message into v.
func ReadMessage(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxMessageSize {
		return fmt.Errorf("wire: message of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return err
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("wire: unmarshal: %w", err)
	}
	return nil
}

// Handler serves one method. Params arrive as raw JSON; the returned value
// is marshaled into the response.
type Handler func(params json.RawMessage) (any, error)

// Server is a minimal RPC server multiplexing named handlers over TCP.
type Server struct {
	mu       sync.Mutex
	handlers map[string]Handler
	listener net.Listener
	wg       sync.WaitGroup
	closed   bool
}

// NewServer creates an empty server.
func NewServer() *Server {
	return &Server{handlers: make(map[string]Handler)}
}

// Handle registers a method handler.
func (s *Server) Handle(method string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[method] = h
}

// Listen starts accepting connections on addr ("host:port", empty port
// picks a free one). It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("wire: listen: %w", err)
	}
	s.mu.Lock()
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		var req Request
		if err := ReadMessage(r, &req); err != nil {
			return // connection closed or corrupted framing
		}
		s.mu.Lock()
		h, ok := s.handlers[req.Method]
		s.mu.Unlock()
		var resp Response
		if !ok {
			resp.Error = fmt.Sprintf("unknown method %q", req.Method)
		} else if result, err := h(req.Params); err != nil {
			resp.Error = err.Error()
		} else {
			body, err := json.Marshal(result)
			if err != nil {
				resp.Error = fmt.Sprintf("marshal result: %v", err)
			} else {
				resp.Result = body
			}
		}
		if err := WriteMessage(w, &resp); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// Close stops accepting and waits for in-flight connections to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.listener
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// Client is a synchronous RPC client over one TCP connection.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	return &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}, nil
}

// Call invokes a method, decoding the result into out (which may be nil).
func (c *Client) Call(method string, params any, out any) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var raw json.RawMessage
	if params != nil {
		body, err := json.Marshal(params)
		if err != nil {
			return fmt.Errorf("wire: marshal params: %w", err)
		}
		raw = body
	}
	if err := WriteMessage(c.w, &Request{Method: method, Params: raw}); err != nil {
		return err
	}
	if err := c.w.Flush(); err != nil {
		return err
	}
	var resp Response
	if err := ReadMessage(c.r, &resp); err != nil {
		return err
	}
	if resp.Error != "" {
		return errors.New(resp.Error)
	}
	if out != nil && resp.Result != nil {
		return json.Unmarshal(resp.Result, out)
	}
	return nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }
