package wire

import (
	"bytes"
	"testing"

	"slicer/internal/core"
	"slicer/internal/mhash"
	"slicer/internal/store"
	"slicer/internal/workload"
)

// shardFixture builds an owner over a small workload and boots two cloud
// servers: src holds the full index, dst holds the full ADS but an empty
// index partition — the state a range-move destination starts from.
type shardFixture struct {
	owner *core.Owner
	built *core.UpdateOutput
	db    []core.Record
	src   *CloudClient
	dst   *CloudClient
}

func newShardFixture(t *testing.T) *shardFixture {
	t.Helper()
	params := core.Params{Bits: 8, TrapdoorBits: 256, AccumulatorBits: 256}
	owner, err := core.NewOwner(params)
	if err != nil {
		t.Fatalf("NewOwner: %v", err)
	}
	db := workload.Generate(workload.Config{N: 40, Bits: 8, Seed: 11})
	built, err := owner.Build(db)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	dial := func(ix *store.Index) *CloudClient {
		srv := NewCloudServer()
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatalf("Listen: %v", err)
		}
		t.Cleanup(func() { srv.Close() })
		cli, err := DialCloud(addr)
		if err != nil {
			t.Fatalf("DialCloud: %v", err)
		}
		t.Cleanup(func() { cli.Close() })
		if err := cli.Init(owner.CloudInit(ix), true); err != nil {
			t.Fatalf("Init: %v", err)
		}
		return cli
	}
	return &shardFixture{
		owner: owner,
		built: built,
		db:    db,
		src:   dial(built.Index),
		dst:   dial(store.NewIndex()),
	}
}

func TestCloudMGet(t *testing.T) {
	f := newShardFixture(t)
	var labels [][]byte
	var want []store.Payload
	f.built.Index.Range(func(l store.Label, d store.Payload) bool {
		labels = append(labels, append([]byte(nil), l[:]...))
		want = append(want, d)
		return len(labels) < 5
	})
	// Interleave a label that is not in the index.
	absent := make([]byte, store.EntrySize)
	labels = append(labels, absent)
	reply, err := f.src.MGet(labels)
	if err != nil {
		t.Fatalf("MGet: %v", err)
	}
	for i := range want {
		if !reply.Found[i] {
			t.Fatalf("label %d not found", i)
		}
		if !bytes.Equal(reply.Payloads[i], want[i][:]) {
			t.Fatalf("label %d payload mismatch", i)
		}
	}
	if reply.Found[len(labels)-1] {
		t.Fatal("absent label reported found")
	}
	if len(reply.Payloads[len(labels)-1]) != 0 {
		t.Fatal("absent label carried a payload")
	}
}

// TestCloudWitnessMatchesSearch checks that delegated witness generation
// (router derives the prime, shard answers cloud.witnessx) yields exactly
// the VO a single-cloud search would have attached.
func TestCloudWitnessMatchesSearch(t *testing.T) {
	f := newShardFixture(t)
	user, err := core.NewUser(f.owner.ClientState())
	if err != nil {
		t.Fatalf("NewUser: %v", err)
	}
	req, err := user.Token(core.Less(128))
	if err != nil {
		t.Fatalf("Token: %v", err)
	}
	resp, err := f.src.Search(req)
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	for i, res := range resp.Results {
		x := core.TokenPrime(res.Token, mhash.OfMultiset(res.ER))
		vo, err := f.src.Witness(x)
		if err != nil {
			t.Fatalf("Witness(token %d): %v", i, err)
		}
		if !bytes.Equal(vo, res.Witness) {
			t.Fatalf("token %d: delegated witness differs from search VO", i)
		}
	}
	// A prime outside the accumulated set surfaces the canonical error.
	bogus := core.TokenPrime(core.SearchToken{Trapdoor: []byte("x"), G1: []byte("y"), G2: []byte("z")},
		mhash.OfMultiset(nil))
	if _, err := f.src.Witness(bogus); err == nil {
		t.Fatal("witness for unknown prime succeeded")
	}
}

// TestCloudRangeMove drives the full export → import → delete protocol
// between two live shards, with pagination and a retried (idempotent) page.
func TestCloudRangeMove(t *testing.T) {
	f := newShardFixture(t)
	const lo, hi = uint64(0), uint64(1) << 63 // move the lower half-space
	var moved int
	cursor := []byte(nil)
	var lastPage *ExportReply
	for {
		page, err := f.src.Export(&ExportMsg{Lo: lo, Hi: hi, Cursor: cursor, Limit: 7})
		if err != nil {
			t.Fatalf("Export: %v", err)
		}
		if len(page.Labels) == 0 {
			break
		}
		if err := f.dst.Import(page.Labels, page.Payloads); err != nil {
			t.Fatalf("Import: %v", err)
		}
		moved += len(page.Labels)
		lastPage = page
		if page.Next == nil {
			break
		}
		cursor = page.Next
	}
	if moved == 0 {
		t.Fatal("no entries in the lower half-space; widen the workload")
	}
	// A mover that crashed after import but before recording progress
	// retries the page: the import must be accepted again unchanged.
	if err := f.dst.Import(lastPage.Labels, lastPage.Payloads); err != nil {
		t.Fatalf("idempotent re-import: %v", err)
	}
	removed, err := f.src.DeleteRange(lo, hi)
	if err != nil {
		t.Fatalf("DeleteRange: %v", err)
	}
	if removed != moved {
		t.Fatalf("deleted %d entries, moved %d", removed, moved)
	}
	// Each moved label now lives on dst and is gone from src.
	probe := lastPage.Labels
	srcReply, err := f.src.MGet(probe)
	if err != nil {
		t.Fatalf("MGet src: %v", err)
	}
	dstReply, err := f.dst.MGet(probe)
	if err != nil {
		t.Fatalf("MGet dst: %v", err)
	}
	for i := range probe {
		if srcReply.Found[i] {
			t.Fatalf("label %d still on source after delete", i)
		}
		if !dstReply.Found[i] {
			t.Fatalf("label %d missing on destination", i)
		}
	}
	// Deleting again removes nothing (idempotent).
	if again, err := f.src.DeleteRange(lo, hi); err != nil || again != 0 {
		t.Fatalf("second DeleteRange = %d, %v", again, err)
	}
}

// TestShardMoveDurableReplay kills a durable destination shard after an
// acknowledged import and a source shard after an acknowledged delete; both
// must come back with the move intact.
func TestShardMoveDurableReplay(t *testing.T) {
	params := core.Params{Bits: 8, TrapdoorBits: 256, AccumulatorBits: 256}
	owner, err := core.NewOwner(params)
	if err != nil {
		t.Fatalf("NewOwner: %v", err)
	}
	built, err := owner.Build(workload.Generate(workload.Config{N: 30, Bits: 8, Seed: 3}))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	dir := t.TempDir()
	boot := func() (*CloudServer, *CloudClient) {
		srv := NewCloudServer()
		if _, err := srv.EnableDurability(DurabilityOptions{Dir: dir}); err != nil {
			t.Fatalf("EnableDurability: %v", err)
		}
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatalf("Listen: %v", err)
		}
		cli, err := DialCloud(addr)
		if err != nil {
			t.Fatalf("DialCloud: %v", err)
		}
		return srv, cli
	}
	srv, cli := boot()
	if err := cli.Init(owner.CloudInit(built.Index), true); err != nil {
		t.Fatalf("Init: %v", err)
	}
	// Import a couple of synthetic entries and delete an arc that covers one
	// existing entry, then "crash" (close without snapshotting).
	var syn [2]store.Label
	var synPay [2]store.Payload
	for i := range syn {
		syn[i][0] = 0xee
		syn[i][store.EntrySize-1] = byte(i + 1)
		synPay[i][0] = byte(0xa0 + i)
	}
	if err := cli.Import([][]byte{syn[0][:], syn[1][:]}, [][]byte{synPay[0][:], synPay[1][:]}); err != nil {
		t.Fatalf("Import: %v", err)
	}
	var victim store.Label
	built.Index.Range(func(l store.Label, _ store.Payload) bool { victim = l; return false })
	vAddr := store.Addr(victim)
	removed, err := cli.DeleteRange(vAddr, vAddr+1)
	if err != nil {
		t.Fatalf("DeleteRange: %v", err)
	}
	if removed == 0 {
		t.Fatal("victim delete removed nothing")
	}
	cli.Close()
	srv.Close()

	_, cli2 := boot()
	defer cli2.Close()
	reply, err := cli2.MGet([][]byte{syn[0][:], syn[1][:], victim[:]})
	if err != nil {
		t.Fatalf("MGet after restart: %v", err)
	}
	if !reply.Found[0] || !reply.Found[1] {
		t.Fatal("journaled import lost across restart")
	}
	if !bytes.Equal(reply.Payloads[0], synPay[0][:]) {
		t.Fatal("imported payload corrupted across restart")
	}
	if reply.Found[2] {
		t.Fatal("journaled delete lost across restart")
	}
}

// TestImportConflictRejected: shipping a label that exists with a different
// payload is a hard error, not a silent overwrite.
func TestImportConflictRejected(t *testing.T) {
	f := newShardFixture(t)
	var l store.Label
	f.built.Index.Range(func(lab store.Label, _ store.Payload) bool { l = lab; return false })
	var wrong store.Payload
	wrong[0] = 0xff
	if err := f.src.Import([][]byte{l[:]}, [][]byte{wrong[:]}); err == nil {
		t.Fatal("conflicting import succeeded")
	}
}
