package wire

import (
	"encoding/json"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"slicer/internal/obs"
)

// startEchoServer runs a traced echo server with a registry and trace store
// attached, returning the server, its address and the registry.
func startEchoServer(t *testing.T) (*Server, string, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	srv := NewServer()
	srv.SetMetrics(reg, "echo")
	srv.SetTraceStore(obs.NewTraceStore(8))
	srv.HandleTraced("echo", func(params json.RawMessage, tr *obs.Trace) (any, error) {
		end := tr.Span("echo.work")
		time.Sleep(time.Millisecond)
		end()
		var s string
		if err := json.Unmarshal(params, &s); err != nil {
			return nil, err
		}
		return "echo:" + s, nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr, reg
}

func TestCallTracedMergesRemoteSpans(t *testing.T) {
	srv, addr, reg := startEchoServer(t)
	cli, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	tr := obs.NewTrace("client op")
	var out string
	if err := cli.CallTraced("echo", "hi", &out, tr, "cloud"); err != nil {
		t.Fatalf("CallTraced: %v", err)
	}
	if out != "echo:hi" {
		t.Errorf("result = %q", out)
	}
	byPhase := map[string]obs.SpanRecord{}
	for _, sp := range tr.Spans() {
		byPhase[sp.Phase] = sp
	}
	for _, phase := range []string{"rpc:echo", "wire:echo", "handle:echo", "echo.work"} {
		sp, ok := byPhase[phase]
		if !ok {
			t.Errorf("merged trace missing %q (got %v)", phase, tr.Spans())
			continue
		}
		if sp.Party != "cloud" {
			t.Errorf("span %q party = %q, want cloud", phase, sp.Party)
		}
	}
	if byPhase["echo.work"].Duration <= 0 {
		t.Error("remote handler span has zero duration")
	}
	// The server retained its half under the client's trace ID.
	stored, ok := srv.TraceStore().Get(tr.ID())
	if !ok {
		t.Fatalf("server store missing trace %s", tr.ID())
	}
	if stored.Name != "echo.echo" {
		t.Errorf("stored trace name = %q", stored.Name)
	}
	if v := reg.Snapshot()[`slicer_rpc_traces_total{server="echo"}`]; v != 1 {
		t.Errorf("traces served counter = %v, want 1", v)
	}

	// A nil trace must degrade CallTraced to a plain Call.
	if err := cli.CallTraced("echo", "again", &out, nil, "cloud"); err != nil || out != "echo:again" {
		t.Errorf("nil-trace CallTraced = %q, %v", out, err)
	}
	if got := srv.TraceStore().Seen(); got != 1 {
		t.Errorf("nil-trace call recorded server-side (seen = %d)", got)
	}
}

// rawCall frames one request exactly as given and returns the raw response,
// emulating a peer that predates (or abuses) trace propagation.
func rawCall(t *testing.T, addr string, req any) Response {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteMessage(conn, req); err != nil {
		t.Fatalf("write: %v", err)
	}
	var resp Response
	if err := ReadMessage(conn, &resp); err != nil {
		t.Fatalf("read: %v", err)
	}
	return resp
}

func TestContextFreePeerUnchanged(t *testing.T) {
	srv, addr, _ := startEchoServer(t)
	// An old peer sends a request without any trace field: the response must
	// carry no trace and the server must record nothing.
	resp := rawCall(t, addr, map[string]any{"method": "echo", "params": "old"})
	if resp.Error != "" || resp.Trace != nil {
		t.Errorf("context-free response = %+v, want plain result", resp)
	}
	var out string
	if err := json.Unmarshal(resp.Result, &out); err != nil || out != "echo:old" {
		t.Errorf("result = %q, %v", out, err)
	}
	if srv.TraceStore().Seen() != 0 {
		t.Error("context-free request recorded a trace")
	}
	// An unsampled context propagates identity without cost: same behavior.
	resp = rawCall(t, addr, &Request{Method: "echo", Params: json.RawMessage(`"x"`),
		Trace: &obs.TraceContext{TraceID: obs.NewTraceID(), Sampled: false}})
	if resp.Trace != nil || srv.TraceStore().Seen() != 0 {
		t.Errorf("unsampled context produced trace output: %+v", resp.Trace)
	}
}

func TestHostileTraceContextIgnored(t *testing.T) {
	srv, addr, reg := startEchoServer(t)
	hostile := []*obs.TraceContext{
		{TraceID: "", Sampled: true},
		{TraceID: strings.Repeat("a", 500), Sampled: true},
		{TraceID: "NOT-HEX-AT-ALL", Sampled: true},
		{TraceID: "../../etc/passwd", Sampled: true},
		{TraceID: "00ff", ParentSpan: strings.Repeat("b", 500), Sampled: true},
	}
	for i, ctx := range hostile {
		resp := rawCall(t, addr, &Request{Method: "echo", Params: json.RawMessage(`"h"`), Trace: ctx})
		// The request must still be served — tracing is best-effort — but no
		// span tree may come back and nothing may be retained.
		if resp.Error != "" {
			t.Errorf("hostile context %d failed the request: %s", i, resp.Error)
		}
		if resp.Trace != nil {
			t.Errorf("hostile context %d produced a trace", i)
		}
	}
	if srv.TraceStore().Seen() != 0 {
		t.Error("hostile contexts were recorded")
	}
	if v := reg.Snapshot()[`slicer_rpc_trace_rejected_total{server="echo"}`]; v != float64(len(hostile)) {
		t.Errorf("rejected counter = %v, want %d", v, len(hostile))
	}
}

// FuzzRequestTraceContext throws arbitrary trace contexts at a live server:
// it must never panic, never fail the request, and only answer with a span
// tree for valid sampled contexts.
func FuzzRequestTraceContext(f *testing.F) {
	srv := NewServer()
	srv.SetTraceStore(obs.NewTraceStore(4))
	srv.Handle("ping", func(json.RawMessage) (any, error) { return "pong", nil })
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { srv.Close() })

	f.Add("deadbeef", "", true)
	f.Add("", "cafe", true)
	f.Add(strings.Repeat("f", 200), "\x00", false)
	f.Fuzz(func(t *testing.T, id, parent string, sampled bool) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Skip("dial failed under fuzz load")
		}
		defer conn.Close()
		ctx := &obs.TraceContext{TraceID: id, ParentSpan: parent, Sampled: sampled}
		if err := WriteMessage(conn, &Request{Method: "ping", Trace: ctx}); err != nil {
			t.Fatalf("write: %v", err)
		}
		var resp Response
		if err := ReadMessage(conn, &resp); err != nil {
			t.Fatalf("read: %v", err)
		}
		if resp.Error != "" {
			t.Fatalf("trace context failed the request: %s", resp.Error)
		}
		if resp.Trace != nil && (ctx.Validate() != nil || !sampled) {
			t.Fatalf("invalid/unsampled context %+v got a span tree", ctx)
		}
	})
}

func TestClientCallTimeout(t *testing.T) {
	srv := NewServer()
	block := make(chan struct{})
	srv.Handle("slow", func(json.RawMessage) (any, error) {
		<-block
		return "late", nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { close(block); srv.Close() }()

	reg := obs.NewRegistry()
	cli, err := DialOpts(addr, ClientOptions{CallTimeout: 50 * time.Millisecond, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	start := time.Now()
	err = cli.Call("slow", nil, nil)
	if !errors.Is(err, ErrCallTimeout) {
		t.Fatalf("err = %v, want ErrCallTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("timeout took %v, deadline not applied", elapsed)
	}
	if v := reg.Snapshot()["slicer_rpc_client_timeouts_total"]; v != 1 {
		t.Errorf("timeout counter = %v, want 1", v)
	}
}

func TestClientTimeoutOptions(t *testing.T) {
	srv := NewServer()
	srv.Handle("ping", func(json.RawMessage) (any, error) { return "pong", nil })
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Defaults apply on the zero options.
	cli, err := DialOpts(addr, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cli.callTimeout != DefaultCallTimeout {
		t.Errorf("default call timeout = %v", cli.callTimeout)
	}
	cli.Close()

	// Negative disables; SetCallTimeout rebinds at runtime.
	cli, err = DialOpts(addr, ClientOptions{DialTimeout: -1, CallTimeout: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if cli.callTimeout != 0 {
		t.Errorf("disabled call timeout = %v, want 0", cli.callTimeout)
	}
	cli.SetCallTimeout(time.Second)
	var out string
	if err := cli.Call("ping", nil, &out); err != nil || out != "pong" {
		t.Errorf("ping = %q, %v", out, err)
	}
}
