package entropy

import (
	"bytes"
	"sync"
	"testing"
)

func TestReadFillsExactly(t *testing.T) {
	for _, n := range []int{1, 16, 64, 4095, 4096, 4097, 10000} {
		p := make([]byte, n)
		got, err := Read(p)
		if err != nil {
			t.Fatalf("Read(%d): %v", n, err)
		}
		if got != n {
			t.Fatalf("Read(%d) returned %d bytes", n, got)
		}
		if n >= 16 && bytes.Equal(p, make([]byte, n)) {
			t.Fatalf("Read(%d) returned all zeros", n)
		}
	}
}

func TestConcurrentReadsDistinct(t *testing.T) {
	const workers, draws = 8, 64
	var mu sync.Mutex
	seen := make(map[[16]byte]bool)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < draws; i++ {
				var v [16]byte
				if _, err := Read(v[:]); err != nil {
					errs <- err
					return
				}
				mu.Lock()
				dup := seen[v]
				seen[v] = true
				mu.Unlock()
				if dup {
					errs <- errDuplicate
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

var errDuplicate = errDup{}

type errDup struct{}

func (errDup) Error() string { return "entropy: duplicate 128-bit draw (reader reusing bytes)" }

func BenchmarkRead16(b *testing.B) {
	var v [16]byte
	for i := 0; i < b.N; i++ {
		Read(v[:])
	}
}
