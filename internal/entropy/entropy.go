// Package entropy serves crypto/rand bytes through a buffered reader, so
// hot paths that draw many small random values — a nonce per sealed index
// entry, a trapdoor per keyword, a shuffle index per tuple — pay one
// getrandom syscall per 4 KiB block instead of one per draw. On hosts where
// getrandom is slow (containers without a vDSO fast path) the syscall is
// tens of microseconds, which made it the dominant cost of index building.
//
// The bytes still come from the kernel CSPRNG and are never reused; the
// only change is that up to one block of future output is briefly buffered
// in user memory. Long-lived secret keys are generated directly from
// crypto/rand (see trapdoor.GenerateKey, prf.NewKey) — key generation is
// rare, so it keeps the most conservative path.
package entropy

import (
	"bufio"
	"crypto/rand"
	"io"
	"sync"
)

var pool = sync.Pool{New: func() any {
	return bufio.NewReaderSize(rand.Reader, 4096)
}}

type reader struct{}

// Reader is a concurrency-safe drop-in for crypto/rand's Reader.
var Reader io.Reader = reader{}

func (reader) Read(p []byte) (int, error) {
	r := pool.Get().(*bufio.Reader)
	n, err := io.ReadFull(r, p)
	pool.Put(r)
	return n, err
}

// Read fills p with buffered crypto/rand bytes.
func Read(p []byte) (int, error) {
	return Reader.Read(p)
}
