package symenc

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func newCipher(t *testing.T) *Cipher {
	t.Helper()
	c, err := NewRandomCipher()
	if err != nil {
		t.Fatalf("NewRandomCipher: %v", err)
	}
	return c
}

func TestNewCipherKeySize(t *testing.T) {
	if _, err := NewCipher(make([]byte, KeySize-1)); err == nil {
		t.Error("short key accepted")
	}
	if _, err := NewCipher(make([]byte, KeySize)); err != nil {
		t.Errorf("valid key rejected: %v", err)
	}
}

func TestEncryptIDRoundTrip(t *testing.T) {
	c := newCipher(t)
	f := func(id uint64) bool {
		got, err := c.DecryptID(c.EncryptID(id))
		return err == nil && got == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncryptIDDeterministicAndInjective(t *testing.T) {
	c := newCipher(t)
	a := c.EncryptID(42)
	b := c.EncryptID(42)
	if a != b {
		t.Error("EncryptID not deterministic")
	}
	if c.EncryptID(42) == c.EncryptID(43) {
		t.Error("distinct IDs share a ciphertext block")
	}
}

func TestDecryptIDRejectsGarbage(t *testing.T) {
	c := newCipher(t)
	var garbage [BlockSize]byte
	copy(garbage[:], "not a handle....")
	if _, err := c.DecryptID(garbage); err == nil {
		t.Error("garbage block decrypted to a handle")
	}
	// A handle under a different key must not validate either (except with
	// negligible probability; this is a sanity check, not a proof).
	other := newCipher(t)
	if _, err := other.DecryptID(c.EncryptID(7)); err == nil {
		t.Error("cross-key handle decrypted cleanly")
	}
}

func TestSealOpenRoundTrip(t *testing.T) {
	c := newCipher(t)
	f := func(plaintext []byte) bool {
		sealed, err := c.Seal(plaintext)
		if err != nil {
			return false
		}
		got, err := c.Open(sealed)
		return err == nil && bytes.Equal(got, plaintext)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSealRandomized(t *testing.T) {
	c := newCipher(t)
	s1, err := c.Seal([]byte("same message"))
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	s2, err := c.Seal([]byte("same message"))
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if bytes.Equal(s1, s2) {
		t.Error("Seal is deterministic (nonce reuse?)")
	}
}

func TestOpenDetectsTampering(t *testing.T) {
	c := newCipher(t)
	sealed, err := c.Seal([]byte("the quick brown fox"))
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	for i := 0; i < len(sealed); i++ {
		tampered := append([]byte(nil), sealed...)
		tampered[i] ^= 0x01
		if _, err := c.Open(tampered); !errors.Is(err, ErrAuthentication) {
			t.Fatalf("flip at byte %d: err=%v, want ErrAuthentication", i, err)
		}
	}
}

func TestOpenRejectsShortAndCrossKey(t *testing.T) {
	c := newCipher(t)
	if _, err := c.Open(make([]byte, nonceSize+tagSize-1)); !errors.Is(err, ErrCiphertextTooShort) {
		t.Errorf("short ciphertext: err=%v, want ErrCiphertextTooShort", err)
	}
	sealed, err := c.Seal([]byte("secret"))
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	other := newCipher(t)
	if _, err := other.Open(sealed); !errors.Is(err, ErrAuthentication) {
		t.Errorf("cross-key open: err=%v, want ErrAuthentication", err)
	}
}

func TestKeyBytesRebuildsCipher(t *testing.T) {
	c := newCipher(t)
	clone, err := NewCipher(c.KeyBytes())
	if err != nil {
		t.Fatalf("NewCipher: %v", err)
	}
	sealed, err := c.Seal([]byte("shared"))
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	got, err := clone.Open(sealed)
	if err != nil || string(got) != "shared" {
		t.Errorf("clone.Open = %q, %v", got, err)
	}
	if clone.EncryptID(9) != c.EncryptID(9) {
		t.Error("clone disagrees on EncryptID")
	}
}
