// Package symenc provides the symmetric encryption used by Slicer.
//
// Two facilities are exposed:
//
//   - Cipher.EncryptID / DecryptID: a deterministic single-block AES-128
//     permutation over fixed-width record handles. The Slicer index stores
//     d = F(G2, t||c) XOR Enc(K_R, R), which requires Enc(K_R, R) to be a
//     fixed-size block; since record IDs are unique, a single PRP evaluation
//     is CPA-secure in this usage (each input is encrypted at most once per
//     key).
//   - Cipher.Seal / Open: AES-128-CTR with a random nonce and an HMAC-SHA256
//     tag (encrypt-then-MAC) for encrypting arbitrary record payloads in the
//     example applications.
package symenc

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"slicer/internal/entropy"
)

// BlockSize is the width of encrypted record handles (one AES block).
const BlockSize = aes.BlockSize

// KeySize is the symmetric key size (AES-128 plus a MAC key).
const KeySize = 32

var (
	// ErrAuthentication indicates a ciphertext failed integrity checking.
	ErrAuthentication = errors.New("symenc: message authentication failed")
	// ErrCiphertextTooShort indicates a malformed sealed ciphertext.
	ErrCiphertextTooShort = errors.New("symenc: ciphertext too short")
)

// Cipher is a symmetric encryption instance bound to one key.
type Cipher struct {
	block  cipher.Block
	macKey [16]byte
	raw    [KeySize]byte
}

// NewCipher constructs a cipher from a KeySize-byte key: the first 16 bytes
// key AES-128, the rest key the HMAC.
func NewCipher(key []byte) (*Cipher, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("symenc key must be %d bytes, got %d", KeySize, len(key))
	}
	block, err := aes.NewCipher(key[:16])
	if err != nil {
		return nil, fmt.Errorf("init aes: %w", err)
	}
	c := &Cipher{block: block}
	copy(c.macKey[:], key[16:])
	copy(c.raw[:], key)
	return c, nil
}

// NewRandomCipher samples a fresh key and constructs a cipher over it.
func NewRandomCipher() (*Cipher, error) {
	key := make([]byte, KeySize)
	if _, err := rand.Read(key); err != nil {
		return nil, fmt.Errorf("sample symenc key: %w", err)
	}
	return NewCipher(key)
}

// KeyBytes returns a copy of the raw key, for handing to authorized data
// users.
func (c *Cipher) KeyBytes() []byte {
	out := make([]byte, KeySize)
	copy(out, c.raw[:])
	return out
}

// EncryptID deterministically encrypts a record handle into one AES block.
// The 8-byte ID is padded into a 16-byte block with a fixed domain tag so
// that handle blocks can never collide with other plaintext structures.
func (c *Cipher) EncryptID(id uint64) [BlockSize]byte {
	var pt, ct [BlockSize]byte
	copy(pt[:8], "SLICERID")
	binary.BigEndian.PutUint64(pt[8:], id)
	c.block.Encrypt(ct[:], pt[:])
	return ct
}

// DecryptID inverts EncryptID. It returns an error if the block does not
// decrypt to a well-formed handle (e.g. the index entry was corrupted).
func (c *Cipher) DecryptID(ct [BlockSize]byte) (uint64, error) {
	var pt [BlockSize]byte
	c.block.Decrypt(pt[:], ct[:])
	if string(pt[:8]) != "SLICERID" {
		return 0, errors.New("symenc: block is not an encrypted record handle")
	}
	return binary.BigEndian.Uint64(pt[8:]), nil
}

// sealed layout: nonce(16) || ciphertext || tag(16)
const (
	nonceSize = 16
	tagSize   = 16
)

// Seal encrypts and authenticates an arbitrary plaintext.
func (c *Cipher) Seal(plaintext []byte) ([]byte, error) {
	out := make([]byte, nonceSize+len(plaintext)+tagSize)
	nonce := out[:nonceSize]
	// One sealed entry per index keyword makes nonce sampling hot; the
	// buffered entropy reader amortizes the getrandom syscall.
	if _, err := entropy.Read(nonce); err != nil {
		return nil, fmt.Errorf("sample nonce: %w", err)
	}
	body := out[nonceSize : nonceSize+len(plaintext)]
	cipher.NewCTR(c.block, nonce).XORKeyStream(body, plaintext)
	tag := c.tag(out[:nonceSize+len(plaintext)])
	copy(out[nonceSize+len(plaintext):], tag)
	return out, nil
}

// Open verifies and decrypts a ciphertext produced by Seal.
func (c *Cipher) Open(sealed []byte) ([]byte, error) {
	if len(sealed) < nonceSize+tagSize {
		return nil, ErrCiphertextTooShort
	}
	body := sealed[nonceSize : len(sealed)-tagSize]
	tag := sealed[len(sealed)-tagSize:]
	want := c.tag(sealed[:len(sealed)-tagSize])
	if !hmac.Equal(tag, want) {
		return nil, ErrAuthentication
	}
	plaintext := make([]byte, len(body))
	cipher.NewCTR(c.block, sealed[:nonceSize]).XORKeyStream(plaintext, body)
	return plaintext, nil
}

func (c *Cipher) tag(data []byte) []byte {
	mac := hmac.New(sha256.New, c.macKey[:])
	mac.Write(data)
	return mac.Sum(nil)[:tagSize]
}
