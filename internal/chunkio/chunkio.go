// Package chunkio implements the length-prefixed chunk framing shared by the
// crypto packages' hand-rolled serializers (accumulator parameters, trapdoor
// keys): each chunk is a big-endian uint32 length followed by that many
// bytes. The format is deliberately minimal — no tags, no varints — so the
// encoders stay byte-for-byte stable across releases.
package chunkio

import "errors"

// ErrShortPrefix indicates fewer than four bytes where a length was expected.
var ErrShortPrefix = errors.New("chunkio: short length prefix")

// ErrTruncated indicates a chunk body shorter than its declared length.
var ErrTruncated = errors.New("chunkio: truncated chunk")

// Append appends chunk to dst with a 4-byte big-endian length prefix and
// returns the extended slice.
func Append(dst, chunk []byte) []byte {
	dst = append(dst, byte(len(chunk)>>24), byte(len(chunk)>>16), byte(len(chunk)>>8), byte(len(chunk)))
	return append(dst, chunk...)
}

// Read splits data into its leading chunk and the remaining bytes. The
// returned chunk aliases data; callers that retain it past the buffer's
// lifetime must copy.
func Read(data []byte) (chunk, rest []byte, err error) {
	if len(data) < 4 {
		return nil, nil, ErrShortPrefix
	}
	n := int(data[0])<<24 | int(data[1])<<16 | int(data[2])<<8 | int(data[3])
	if n < 0 || len(data)-4 < n {
		return nil, nil, ErrTruncated
	}
	return data[4 : 4+n], data[4+n:], nil
}
