package chunkio

import (
	"bytes"
	"errors"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	chunks := [][]byte{nil, {}, {0x01}, bytes.Repeat([]byte{0xab}, 300)}
	var buf []byte
	for _, c := range chunks {
		buf = Append(buf, c)
	}
	rest := buf
	for i, want := range chunks {
		var got []byte
		var err error
		got, rest, err = Read(rest)
		if err != nil {
			t.Fatalf("chunk %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("chunk %d: got %x want %x", i, got, want)
		}
	}
	if len(rest) != 0 {
		t.Fatalf("trailing bytes: %x", rest)
	}
}

func TestErrors(t *testing.T) {
	if _, _, err := Read([]byte{0, 0, 1}); !errors.Is(err, ErrShortPrefix) {
		t.Fatalf("short prefix: got %v", err)
	}
	if _, _, err := Read([]byte{0, 0, 0, 5, 1, 2}); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated: got %v", err)
	}
}
