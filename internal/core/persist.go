package core

import (
	"encoding/json"
	"fmt"
	"math/big"

	"slicer/internal/accumulator"
	"slicer/internal/mhash"
	"slicer/internal/prf"
	"slicer/internal/sore"
	"slicer/internal/store"
	"slicer/internal/symenc"
	"slicer/internal/trapdoor"
)

// ownerState is the serialized form of an Owner. All byte slices marshal
// as base64 under encoding/json. The blob contains every secret of the
// deployment — persist it like a key file.
type ownerState struct {
	Params    Params             `json:"params"`
	MasterKey []byte             `json:"masterKey"`
	EncKey    []byte             `json:"encKey"`
	Trapdoor  []byte             `json:"trapdoorSecret"`
	Acc       []byte             `json:"accumulatorSecret"`
	Ac        []byte             `json:"ac"`
	Primes    [][]byte           `json:"primes"`
	States    []trapdoorStateRec `json:"states"`
	SetHashes []setHashRec       `json:"setHashes"`
	Seen      []uint64           `json:"seen"`
	Built     bool               `json:"built"`
}

type trapdoorStateRec struct {
	Keyword  []byte `json:"w"`
	Trapdoor []byte `json:"t"`
	Epoch    int    `json:"j"`
}

type setHashRec struct {
	Key  []byte `json:"k"`
	Hash []byte `json:"h"`
}

// Marshal serializes the owner's complete state (keys, T, S, X, Ac) so a
// CLI or service can resume it in a later process. The output holds all
// deployment secrets.
func (o *Owner) Marshal() ([]byte, error) {
	accBytes, err := o.acc.MarshalSecret()
	if err != nil {
		return nil, err
	}
	st := ownerState{
		Params:    o.params,
		MasterKey: o.master.Bytes(),
		EncKey:    o.enc.KeyBytes(),
		Trapdoor:  o.tsk.MarshalSecret(),
		Acc:       accBytes,
		Ac:        o.ac.Bytes(),
		Primes:    make([][]byte, len(o.primes)),
		Seen:      make([]uint64, 0, len(o.seen)),
		Built:     o.built,
	}
	for i, p := range o.primes {
		st.Primes[i] = p.Bytes()
	}
	o.states.Range(func(w []byte, ts store.TrapdoorState) bool {
		st.States = append(st.States, trapdoorStateRec{Keyword: w, Trapdoor: ts.Trapdoor, Epoch: ts.Epoch})
		return true
	})
	o.setHashes.Range(func(k string, h mhash.Hash) bool {
		st.SetHashes = append(st.SetHashes, setHashRec{Key: []byte(k), Hash: h.Marshal()})
		return true
	})
	for id := range o.seen {
		st.Seen = append(st.Seen, id)
	}
	return json.Marshal(&st)
}

// UnmarshalOwner reconstructs an Owner serialized with Marshal.
func UnmarshalOwner(data []byte) (*Owner, error) {
	var st ownerState
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("core: parse owner state: %w", err)
	}
	if err := st.Params.validate(); err != nil {
		return nil, err
	}
	master, err := prf.KeyFromBytes(st.MasterKey)
	if err != nil {
		return nil, fmt.Errorf("core: owner state: %w", err)
	}
	enc, err := symenc.NewCipher(st.EncKey)
	if err != nil {
		return nil, fmt.Errorf("core: owner state: %w", err)
	}
	tsk, err := trapdoor.UnmarshalSecret(st.Trapdoor)
	if err != nil {
		return nil, fmt.Errorf("core: owner state: %w", err)
	}
	acc, err := accumulator.UnmarshalSecret(st.Acc)
	if err != nil {
		return nil, fmt.Errorf("core: owner state: %w", err)
	}
	scheme, err := sore.New(master.SubKey("sore"), st.Params.Bits)
	if err != nil {
		return nil, err
	}
	o := &Owner{
		params:    st.Params,
		master:    master,
		gKey:      master.SubKey("G"),
		enc:       enc,
		scheme:    scheme,
		tsk:       tsk,
		acc:       acc,
		states:    store.NewTrapdoorStates(),
		setHashes: store.NewSetHashes(),
		ac:        new(big.Int).SetBytes(st.Ac),
		primes:    make([]*big.Int, len(st.Primes)),
		seen:      make(map[uint64]struct{}, len(st.Seen)),
		built:     st.Built,
	}
	for i, p := range st.Primes {
		o.primes[i] = new(big.Int).SetBytes(p)
	}
	for _, rec := range st.States {
		o.states.Put(rec.Keyword, store.TrapdoorState{Trapdoor: rec.Trapdoor, Epoch: rec.Epoch})
	}
	for _, rec := range st.SetHashes {
		h, err := mhash.Unmarshal(rec.Hash)
		if err != nil {
			return nil, fmt.Errorf("core: owner state set hash: %w", err)
		}
		o.setHashes.Put(string(rec.Key), h)
	}
	for _, id := range st.Seen {
		o.seen[id] = struct{}{}
	}
	return o, nil
}
