package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// orderQuery returns a multi-token order query over the test deployment's
// domain: roughly half the bits set, so the SORE decomposition yields
// several slices.
func orderQuery(bits int) Query {
	v := (uint64(1)<<uint(bits) - 1) / 3 * 2
	return Less(v)
}

// TestParallelSearchDeterminism asserts the parallel pipeline is
// byte-identical to the serial one: the same request searched with
// workers=1 and workers=8 (and verified with both fan-outs) produces the
// same marshaled response.
func TestParallelSearchDeterminism(t *testing.T) {
	db := make([]Record, 0, 64)
	for i := uint64(0); i < 64; i++ {
		db = append(db, NewRecord(i+1, (i*7)%256))
	}
	d := deploy(t, 8, db, WitnessCached)
	for _, q := range []Query{orderQuery(8), Equal(db[3].Attrs[0].Value)} {
		req, err := d.user.Token(q)
		if err != nil {
			t.Fatalf("Token(%+v): %v", q, err)
		}
		if err := d.cloud.SetSearchWorkers(1); err != nil {
			t.Fatal(err)
		}
		serial, err := d.cloud.Search(req)
		if err != nil {
			t.Fatalf("serial Search: %v", err)
		}
		if err := d.cloud.SetSearchWorkers(8); err != nil {
			t.Fatal(err)
		}
		parallel, err := d.cloud.Search(req)
		if err != nil {
			t.Fatalf("parallel Search: %v", err)
		}
		sb, err := json.Marshal(serial)
		if err != nil {
			t.Fatal(err)
		}
		pb, err := json.Marshal(parallel)
		if err != nil {
			t.Fatal(err)
		}
		if string(sb) != string(pb) {
			t.Fatalf("parallel response differs from serial for %+v", q)
		}
		// The split SearchResults + AttachWitnesses pipeline agrees too.
		split, err := d.cloud.SearchResults(req)
		if err != nil {
			t.Fatalf("SearchResults: %v", err)
		}
		if err := d.cloud.AttachWitnesses(split); err != nil {
			t.Fatalf("AttachWitnesses: %v", err)
		}
		qb, err := json.Marshal(split)
		if err != nil {
			t.Fatal(err)
		}
		if string(qb) != string(sb) {
			t.Fatalf("split pipeline response differs from serial for %+v", q)
		}
		pp, ac := d.owner.AccumulatorPub(), d.owner.Ac()
		if err := VerifyResponseWorkers(pp, ac, req, parallel, 1); err != nil {
			t.Fatalf("serial verify: %v", err)
		}
		if err := VerifyResponseWorkers(pp, ac, req, parallel, 8); err != nil {
			t.Fatalf("parallel verify: %v", err)
		}
	}
}

// TestParallelSearchFirstError asserts the parallel pipeline reports the
// same (lowest-index) token error a serial sweep would, regardless of
// worker count.
func TestParallelSearchFirstError(t *testing.T) {
	db := []Record{NewRecord(1, 10), NewRecord(2, 20), NewRecord(3, 30)}
	d := deploy(t, 8, db, WitnessCached)
	req, err := d.user.Token(orderQuery(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(req.Tokens) < 2 {
		t.Skipf("need >= 2 tokens, got %d", len(req.Tokens))
	}
	// Corrupt two tokens: the reported error must be the lower index's.
	bad := *req
	bad.Tokens = append([]SearchToken(nil), req.Tokens...)
	for _, i := range []int{1, len(bad.Tokens) - 1} {
		tok := bad.Tokens[i]
		tok.G1 = []byte("short") // malformed PRF key -> "token G1" error
		bad.Tokens[i] = tok
	}
	var serialErr error
	if err := d.cloud.SetSearchWorkers(1); err != nil {
		t.Fatal(err)
	}
	if _, serialErr = d.cloud.Search(&bad); serialErr == nil {
		t.Fatal("serial search of corrupted request succeeded")
	}
	for _, workers := range []int{2, 8} {
		if err := d.cloud.SetSearchWorkers(workers); err != nil {
			t.Fatal(err)
		}
		_, err := d.cloud.Search(&bad)
		if err == nil {
			t.Fatalf("workers=%d: corrupted request succeeded", workers)
		}
		if err.Error() != serialErr.Error() {
			t.Fatalf("workers=%d error %q, serial error %q", workers, err, serialErr)
		}
	}
}

// TestConcurrentSearchDuringUpdates races many searching goroutines against
// a stream of ApplyUpdate deltas — the multi-user serving scenario the
// RWMutex enables. Run under -race. Every response produced against the
// pre-insert token snapshot must stay internally consistent (same token
// order, no errors), and once updates quiesce all epochs verify against the
// final accumulation value.
func TestConcurrentSearchDuringUpdates(t *testing.T) {
	db := make([]Record, 0, 40)
	for i := uint64(0); i < 40; i++ {
		db = append(db, NewRecord(i+1, (i*11)%256))
	}
	d := deploy(t, 8, db, WitnessCached)

	// Token snapshot from before the inserts: stays answerable (and
	// verifiable at its own epoch) throughout.
	reqs := make([]*SearchRequest, 0, 4)
	for _, q := range []Query{orderQuery(8), Greater(100), Equal(db[0].Attrs[0].Value), Less(50)} {
		req, err := d.user.Token(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(req.Tokens) > 0 {
			reqs = append(reqs, req)
		}
	}

	const searchers = 8
	const rounds = 20
	var wg sync.WaitGroup
	errs := make(chan error, searchers+1)
	for g := 0; g < searchers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < rounds; k++ {
				req := reqs[(g+k)%len(reqs)]
				resp, err := d.cloud.Search(req)
				if err != nil {
					errs <- fmt.Errorf("searcher %d round %d: %w", g, k, err)
					return
				}
				if len(resp.Results) != len(req.Tokens) {
					errs <- fmt.Errorf("searcher %d: %d results for %d tokens", g, len(resp.Results), len(req.Tokens))
					return
				}
				for i := range resp.Results {
					if resp.Results[i].Token.Epoch != req.Tokens[i].Epoch {
						errs <- fmt.Errorf("searcher %d: result %d out of order", g, i)
						return
					}
				}
				// Exercise the read-locked accessors under contention too.
				_ = d.cloud.PrimeCount()
				_ = d.cloud.Ac()
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		nextID := uint64(1000)
		for k := 0; k < 6; k++ {
			batch := make([]Record, 0, 3)
			for j := uint64(0); j < 3; j++ {
				batch = append(batch, NewRecord(nextID, (nextID*13)%256))
				nextID++
			}
			out, err := d.owner.Insert(batch)
			if err != nil {
				errs <- fmt.Errorf("insert %d: %w", k, err)
				return
			}
			if err := d.cloud.ApplyUpdate(out); err != nil {
				errs <- fmt.Errorf("apply update %d: %w", k, err)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Quiesced: a fresh user sees every epoch and the response verifies
	// against the final Ac (which the cloud and owner agree on).
	if d.cloud.Ac().Cmp(d.owner.Ac()) != 0 {
		t.Fatal("cloud and owner accumulation values diverged")
	}
	d.user.UpdateStates(d.owner.StatesSnapshot())
	d.search(t, orderQuery(8))
}

// TestApplyUpdateWitnessMaintenance pins both cached-witness maintenance
// strategies after the batched-exponent refresh: a trickle insert (|X⁺|
// below the rebuild threshold) refreshes incrementally, a bulk insert
// rebuilds — and both keep every epoch's proofs verifying.
func TestApplyUpdateWitnessMaintenance(t *testing.T) {
	db := make([]Record, 0, 20)
	for i := uint64(0); i < 20; i++ {
		db = append(db, NewRecord(i+1, (i*5)%256))
	}
	d := deploy(t, 8, db, WitnessCached)
	insert := func(n int, firstID uint64) {
		t.Helper()
		batch := make([]Record, 0, n)
		for j := 0; j < n; j++ {
			batch = append(batch, NewRecord(firstID+uint64(j), (firstID+uint64(j))%256))
		}
		out, err := d.owner.Insert(batch)
		if err != nil {
			t.Fatalf("Insert: %v", err)
		}
		if err := d.cloud.ApplyUpdate(out); err != nil {
			t.Fatalf("ApplyUpdate: %v", err)
		}
		d.user.UpdateStates(d.owner.StatesSnapshot())
	}
	insert(1, 500) // incremental refresh path
	d.search(t, orderQuery(8))
	insert(40, 600) // |X⁺| >> log2(N): RootFactor rebuild path
	d.search(t, orderQuery(8))
	d.search(t, Equal(db[0].Attrs[0].Value))
}

// TestSetSearchWorkersValidation covers the knob's bounds and the Params
// plumbing.
func TestSetSearchWorkersValidation(t *testing.T) {
	db := []Record{NewRecord(1, 1)}
	params := testParams(8)
	params.SearchWorkers = 2
	owner, err := NewOwner(params)
	if err != nil {
		t.Fatal(err)
	}
	out, err := owner.Build(db)
	if err != nil {
		t.Fatal(err)
	}
	cloud, err := NewCloud(owner.CloudInit(out.Index), WitnessCached)
	if err != nil {
		t.Fatal(err)
	}
	if got := cloud.SearchWorkers(); got != 2 {
		t.Fatalf("SearchWorkers = %d, want 2 (from Params)", got)
	}
	if err := cloud.SetSearchWorkers(-1); err == nil {
		t.Fatal("negative worker count accepted")
	}
	if err := cloud.SetSearchWorkers(0); err != nil {
		t.Fatalf("SetSearchWorkers(0): %v", err)
	}
	params.SearchWorkers = -1
	if _, err := NewOwner(params); err == nil {
		t.Fatal("negative Params.SearchWorkers accepted")
	}
}

// TestForEachIndexedFirstError pins the helper's deterministic error
// selection directly: with several failing indices, the lowest wins at any
// worker count, and lower indices are never skipped.
func TestForEachIndexedFirstError(t *testing.T) {
	fail := map[int]bool{3: true, 7: true, 11: true}
	for _, workers := range []int{1, 2, 4, 16} {
		err := forEachIndexed(16, workers, func(i int) error {
			if fail[i] {
				return fmt.Errorf("fail-%d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail-3" {
			t.Fatalf("workers=%d: err = %v, want fail-3", workers, err)
		}
	}
	if err := forEachIndexed(0, 4, func(int) error { return errors.New("never") }); err != nil {
		t.Fatalf("empty range: %v", err)
	}
}
