package core

import (
	"errors"
	"fmt"
	"math/big"
	"runtime"
	"sync"
	"sync/atomic"

	"slicer/internal/accumulator"
	"slicer/internal/hprime"
	"slicer/internal/mhash"
	"slicer/internal/obs"
	"slicer/internal/prf"
	"slicer/internal/store"
	"slicer/internal/trapdoor"
)

// WitnessMode selects how the cloud produces accumulator membership
// witnesses.
type WitnessMode int

const (
	// WitnessCached precomputes witnesses for every accumulated prime with
	// the RootFactor algorithm and maintains them incrementally on insert.
	// Query-time VO generation is then a single lookup plus the final
	// exponentiations. This matches the fast VO-generation times of the
	// paper's evaluation.
	WitnessCached WitnessMode = iota + 1
	// WitnessOnDemand computes each witness at query time with O(|X|)
	// modular exponentiations. Cheaper on insert, slower on search; used by
	// the ablation benchmark.
	WitnessOnDemand
)

// Cloud is the untrusted search server. It stores the encrypted index I,
// the prime list X, the accumulator public parameters and the trapdoor
// public key; it executes Algorithm 4 (search + VO generation).
//
// A Cloud is safe for concurrent use: Search, SearchResults,
// AttachWitnesses, Marshal and the stats accessors take a read lock, so any
// number of users can query simultaneously; ApplyUpdate takes the write
// lock and observes a quiescent index. Within one request, per-token work
// additionally fans out across a bounded worker pool (SearchWorkers).
type Cloud struct {
	mu     sync.RWMutex
	params Params
	accPub *accumulator.PublicParams
	tpk    *trapdoor.PublicKey

	index     *store.Index
	primes    []*big.Int
	primeSet  map[string]int       // prime bytes -> index into primes
	witnesses map[string]*witEntry // prime bytes -> cached witness state
	// journal holds, per lazily-applied update, the product of that batch's
	// primes; witEntry.epoch records how many journal entries a witness has
	// already folded in. Appended only under the write lock, entries
	// immutable thereafter, so serve paths read it under the read lock.
	journal       []*big.Int
	pendingPrimes int
	ac            *big.Int
	mode          WitnessMode
	wtree         *accumulator.WitnessTree // on-demand mode: memoized RootFactor tree
	fbG           *accumulator.FixedBase   // comb over g feeding successive wtrees
	workers       int                      // per-request token fan-out; 0 = GOMAXPROCS, 1 = serial
	met           cloudMetrics

	searchCalls atomic.Uint64 // Search invocations, for round-trip accounting
}

// witEntry is one cached witness. Entries mutate in two places: under the
// cloud's write lock (eager refresh, rebuild), or under the entry's own
// mutex while the caller holds the cloud's read lock (lazy fold on serve) —
// the write lock excludes readers, so the two never race.
type witEntry struct {
	mu sync.Mutex
	w  *big.Int // materialized witness; nil while batch is pending
	// batch/exp defer a new prime's initial witness (batch.base^exp) until
	// first served; epoch counts the journal prefix already folded into w.
	batch *updateBatch
	exp   *big.Int
	epoch int
}

// updateBatch is the shared deferred-computation state of one lazy update:
// the pre-update accumulation value all the batch's new witnesses start
// from, plus a comb table over it, built at most once when the batch is big
// enough that table reuse across the batch's witnesses pays for the build.
type updateBatch struct {
	base  *big.Int
	size  int
	teeth int
	once  sync.Once
	fb    *accumulator.FixedBase
}

// batchCombMin is the batch size from which a lazy update batch builds a
// fixed-base comb over its base accumulation value.
const batchCombMin = 32

// treeCombMin is the prime count from which an on-demand cloud invests in a
// generator comb for its witness trees (only once updates prove the tree
// gets rebuilt; a single static tree never re-exponentiates g).
const treeCombMin = 512

func (b *updateBatch) comb(pp *accumulator.PublicParams) *accumulator.FixedBase {
	b.once.Do(func() {
		if b.size < batchCombMin {
			return
		}
		fb, err := pp.NewFixedBase(b.base, b.size*hprime.PrimeBits, b.teeth)
		if err == nil {
			b.fb = fb
		}
	})
	return b.fb
}

// NewCloud initializes a cloud from the owner's CloudState package.
func NewCloud(st *CloudState, mode WitnessMode) (*Cloud, error) {
	if err := st.Params.validate(); err != nil {
		return nil, err
	}
	if mode != WitnessCached && mode != WitnessOnDemand {
		return nil, fmt.Errorf("core: unknown witness mode %d", mode)
	}
	c := &Cloud{
		params:   st.Params,
		accPub:   st.AccumulatorPub,
		tpk:      st.TrapdoorPub,
		index:    store.NewIndex(),
		primeSet: make(map[string]int),
		ac:       new(big.Int).Set(st.Ac),
		mode:     mode,
		workers:  st.Params.SearchWorkers,
	}
	if st.Index != nil {
		if err := c.index.Merge(st.Index); err != nil {
			return nil, err
		}
	}
	c.addPrimes(st.Primes)
	if mode == WitnessCached {
		c.rebuildWitnesses()
	}
	if mode == WitnessOnDemand {
		c.resetTree()
	}
	return c, nil
}

// SetSearchWorkers retunes the per-request token fan-out at runtime: 0 uses
// one worker per available core, 1 reproduces the serial pipeline exactly.
// Responses are byte-identical at every setting.
func (c *Cloud) SetSearchWorkers(n int) error {
	if n < 0 {
		return fmt.Errorf("core: search workers must be >= 0, got %d", n)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.workers = n
	return nil
}

// SearchWorkers reports the configured fan-out (0 = one per core).
func (c *Cloud) SearchWorkers() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.workers
}

// SearchCalls reports how many Search requests the cloud has served — one
// per round trip in a remote deployment. Tests and the evaluation harness
// use it to assert round-trip counts.
func (c *Cloud) SearchCalls() uint64 { return c.searchCalls.Load() }

// Ac returns a copy of the cloud's current accumulation value (the same
// public digest the owner posts on chain).
func (c *Cloud) Ac() *big.Int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return new(big.Int).Set(c.ac)
}

// ApplyUpdate merges an UpdateOutput delta shipped by the owner after an
// Insert: new index entries, new primes and the new accumulation value. It
// takes the cloud's write lock, so in-flight searches drain first and later
// ones observe the full delta.
//
// Cached-witness maintenance is lazy by default: the batch's prime product
// is appended to a journal and each witness folds its pending exponents only
// when next served, so the write-lock window costs O(|X⁺|) regardless of
// cache size. Once the pending set passes Params.RebuildThreshold the cache
// is rebuilt wholesale with RootFactor. Params.EagerWitnessRefresh restores
// the eager strategy (every witness re-exponentiated inside the update);
// served witnesses are byte-identical either way.
func (c *Cloud) ApplyUpdate(out *UpdateOutput) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.met.updates.Inc()
	defer c.met.updateDur.ObserveSince(c.met.updateDur.Start())
	if err := c.index.Merge(out.Index); err != nil {
		return fmt.Errorf("apply index delta: %w", err)
	}
	added := len(out.Primes)
	total := len(c.primes) + added
	switch {
	case c.mode != WitnessCached || added == 0:
		c.addPrimes(out.Primes)
	case c.params.EagerWitnessRefresh:
		c.applyEager(out.Primes, total)
	default:
		c.applyLazy(out.Primes, total)
	}
	c.ac = new(big.Int).Set(out.Ac)
	if c.mode == WitnessOnDemand {
		// The accumulated set changed; the memoized witness tree is stale.
		c.resetTree()
	}
	return nil
}

// applyEager is the write-lock-time maintenance strategy: refresh every
// cached witness now (one modexp each, exponent = Π x⁺), or rebuild with
// RootFactor when the batch is large relative to log2(N).
func (c *Cloud) applyEager(newPrimes []*big.Int, total int) {
	if len(newPrimes) > log2ceil(total)+1 {
		c.addPrimes(newPrimes)
		c.rebuildWitnesses()
		return
	}
	prod := accumulator.Product(newPrimes)
	for _, e := range c.witnesses {
		e.w = new(big.Int).Exp(e.w, prod, c.accPub.N)
	}
	// Witness for new prime x_i: old Ac raised to Π_{k≠i} x⁺_k. The exponent
	// is the batch product divided exactly by x_i — one modexp per new prime
	// instead of an O(|X⁺|²) pairwise loop.
	start := len(c.primes)
	c.addPrimes(newPrimes)
	exp := new(big.Int)
	for i := start; i < len(c.primes); i++ {
		exp.Div(prod, c.primes[i])
		w := new(big.Int).Exp(c.ac, exp, c.accPub.N)
		c.witnesses[string(c.primes[i].Bytes())] = &witEntry{w: w}
	}
}

// applyLazy journals the batch instead of touching existing witnesses: each
// entry's pending exponents fold in when it is next served (materialize).
// New primes defer even their initial witness — the batch records the
// pre-update accumulation value they all start from, plus a shared comb
// table over it for large batches.
func (c *Cloud) applyLazy(newPrimes []*big.Int, total int) {
	if c.pendingPrimes+len(newPrimes) > c.rebuildThreshold(total) {
		c.addPrimes(newPrimes)
		c.rebuildWitnesses()
		return
	}
	prod := accumulator.Product(newPrimes)
	c.journal = append(c.journal, prod)
	c.pendingPrimes += len(newPrimes)
	batch := &updateBatch{base: new(big.Int).Set(c.ac), size: len(newPrimes), teeth: c.params.FixedBaseTeeth}
	start := len(c.primes)
	c.addPrimes(newPrimes)
	for i := start; i < len(c.primes); i++ {
		c.witnesses[string(c.primes[i].Bytes())] = &witEntry{
			batch: batch,
			exp:   new(big.Int).Div(prod, c.primes[i]),
			epoch: len(c.journal), // the own batch is already in exp
		}
	}
}

// rebuildThreshold is the pending-prime budget before a lazy cloud rebuilds.
func (c *Cloud) rebuildThreshold(total int) int {
	if t := c.params.RebuildThreshold; t > 0 {
		return t
	}
	if t := total / 4; t > 64 {
		return t
	}
	return 64
}

// materialize returns the entry's up-to-date witness, computing a deferred
// initial value and folding pending journal epochs first. Callers hold the
// cloud's read lock; concurrent serves of the same entry serialize on the
// entry mutex.
func (c *Cloud) materialize(e *witEntry) *big.Int {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.batch != nil {
		if fb := e.batch.comb(c.accPub); fb != nil {
			e.w = fb.Exp(e.exp)
		} else {
			e.w = new(big.Int).Exp(e.batch.base, e.exp, c.accPub.N)
		}
		e.batch, e.exp = nil, nil
	}
	if e.epoch < len(c.journal) {
		// Fold all pending batches in one modexp; exponentiation composes,
		// so this equals folding them one update at a time (eager mode).
		pending := accumulator.Product(c.journal[e.epoch:])
		e.w = new(big.Int).Exp(e.w, pending, c.accPub.N)
		e.epoch = len(c.journal)
	}
	return e.w
}

// resetTree replaces the on-demand witness tree after the accumulated set
// changed. The generator comb is built on the first rebuild (not at startup:
// a deployment that never updates has exactly one tree, and a comb only pays
// for itself across several) and is reused by every subsequent tree.
func (c *Cloud) resetTree() {
	needBits := (len(c.primes)/2 + 1) * hprime.PrimeBits // top tree nodes: ~half the set's bits
	if c.wtree != nil && len(c.primes) >= treeCombMin &&
		(c.fbG == nil || c.fbG.CapBits() < needBits) {
		// Size for 2x the current set so trickle inserts don't rebuild it.
		if fb, err := c.accPub.NewFixedBase(c.accPub.G, 2*needBits, c.params.FixedBaseTeeth); err == nil {
			c.fbG = fb
		}
	}
	c.wtree = c.accPub.NewWitnessTree(c.primes, c.fbG)
}

func log2ceil(n int) int {
	bits := 0
	for v := n - 1; v > 0; v >>= 1 {
		bits++
	}
	return bits
}

func (c *Cloud) addPrimes(primes []*big.Int) {
	for _, p := range primes {
		cp := new(big.Int).Set(p)
		c.primeSet[string(cp.Bytes())] = len(c.primes)
		c.primes = append(c.primes, cp)
	}
}

// rebuildWitnesses recomputes the full witness cache with RootFactor
// (O(|X| log |X|) modexps), fanned out across the available cores. It also
// clears the lazy journal: every rebuilt witness is fully current.
func (c *Cloud) rebuildWitnesses() {
	c.witnesses = make(map[string]*witEntry, len(c.primes))
	for i, w := range c.accPub.RootFactorParallel(c.primes, runtime.GOMAXPROCS(0)) {
		c.witnesses[string(c.primes[i].Bytes())] = &witEntry{w: w}
	}
	c.journal = nil
	c.pendingPrimes = 0
}

// IndexLen reports the number of stored index entries.
func (c *Cloud) IndexLen() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.index.Len()
}

// IndexSizeBytes reports the index storage footprint (Fig. 4a).
func (c *Cloud) IndexSizeBytes() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.index.SizeBytes()
}

// PrimeCount reports |X|.
func (c *Cloud) PrimeCount() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.primes)
}

// ADSSizeBytes reports the storage footprint of the prime list X (Fig. 4b).
func (c *Cloud) ADSSizeBytes() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	total := 0
	for _, p := range c.primes {
		total += (p.BitLen() + 7) / 8
	}
	return total
}

// tokenWorkers resolves the fan-out for an n-token request. Must be called
// with the lock held (read or write).
func (c *Cloud) tokenWorkers(n int) int {
	w := effectiveWorkers(c.workers)
	if w > n {
		w = n
	}
	return w
}

// Search runs Algorithm 4 for every token in the request: walk the trapdoor
// chain from the newest epoch backwards (via π_pk), drain each epoch's
// counter sequence from the index, then build the verification object.
// Tokens are independent keyword searches (one per SORE slice), so they fan
// out across the worker pool; results keep the request's token order and a
// failing request reports the first (lowest-index) token error.
func (c *Cloud) Search(req *SearchRequest) (*SearchResponse, error) {
	return c.SearchTraced(req, nil)
}

// SearchTraced is Search with an optional per-request trace: when tr is
// non-nil every token's collect and witness phase is recorded as a span
// (concurrent spans interleave by offset). The response is byte-identical
// to Search's; a nil trace makes SearchTraced exactly Search.
func (c *Cloud) SearchTraced(req *SearchRequest, tr *obs.Trace) (*SearchResponse, error) {
	c.searchCalls.Add(1)
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.met.searches.Inc()
	c.met.tokens.Add(uint64(len(req.Tokens)))
	t0 := c.met.search.Start()
	results := make([]TokenResult, len(req.Tokens))
	err := forEachIndexed(len(req.Tokens), c.tokenWorkers(len(req.Tokens)), func(i int) error {
		res, err := c.searchToken(req.Tokens[i], tr)
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		c.met.errors.Inc()
		return nil, err
	}
	c.met.search.ObserveSince(t0)
	return &SearchResponse{Results: results}, nil
}

// SearchResults runs only the result-generation half of Algorithm 4 (lines
// 2–7), without VO generation. The evaluation harness uses it to separate
// result-generation time (Fig. 5a/5c) from VO-generation time (Fig. 5b/5d).
func (c *Cloud) SearchResults(req *SearchRequest) (*SearchResponse, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	results := make([]TokenResult, len(req.Tokens))
	err := forEachIndexed(len(req.Tokens), c.tokenWorkers(len(req.Tokens)), func(i int) error {
		t0 := c.met.collect.Start()
		er, err := c.collectResults(req.Tokens[i])
		if err != nil {
			return err
		}
		c.met.collect.ObserveSince(t0)
		c.met.results.Add(uint64(len(er)))
		results[i] = TokenResult{Token: req.Tokens[i], ER: er}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &SearchResponse{Results: results}, nil
}

// AttachWitnesses fills in the verification objects for a response produced
// by SearchResults, one token at a time across the worker pool.
func (c *Cloud) AttachWitnesses(resp *SearchResponse) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return forEachIndexed(len(resp.Results), c.tokenWorkers(len(resp.Results)), func(i int) error {
		t0 := c.met.witness.Start()
		vo, err := c.witnessFor(resp.Results[i].Token, resp.Results[i].ER)
		if err != nil {
			return err
		}
		c.met.witness.ObserveSince(t0)
		resp.Results[i].Witness = vo
		return nil
	})
}

func (c *Cloud) searchToken(tok SearchToken, tr *obs.Trace) (TokenResult, error) {
	endCollect := obs.StartPhase(c.met.collect, tr, "cloud.collect")
	er, err := c.collectResults(tok)
	if err != nil {
		return TokenResult{}, err
	}
	endCollect()
	c.met.results.Add(uint64(len(er)))
	endWitness := obs.StartPhase(c.met.witness, tr, "cloud.witness")
	vo, err := c.witnessFor(tok, er)
	if err != nil {
		return TokenResult{}, err
	}
	endWitness()
	return TokenResult{Token: tok, ER: er, Witness: vo}, nil
}

// resultChunk is how many unmasked entries share one backing allocation in
// collectResults.
const resultChunk = 64

// collectResults walks epochs j..0 of one keyword's trapdoor chain and
// unmasks every stored handle. The label/mask PRF states and the result
// backing storage are allocated once per call and reused across entries
// (large result sets previously paid three heap allocations per entry).
func (c *Cloud) collectResults(tok SearchToken) ([][]byte, error) {
	lk, err := prf.KeyFromBytes(tok.G1)
	if err != nil {
		return nil, fmt.Errorf("token G1: %w", err)
	}
	dk, err := prf.KeyFromBytes(tok.G2)
	if err != nil {
		return nil, fmt.Errorf("token G2: %w", err)
	}
	labelEval := lk.NewEvaluator()
	maskEval := dk.NewEvaluator()
	var er [][]byte
	var chunk []byte
	t := tok.Trapdoor
	for i := tok.Epoch; i >= 0; i-- {
		for cctr := uint64(0); ; cctr++ {
			l, err := store.LabelFromBytes(labelEval.EvalWithCounter(t, cctr))
			if err != nil {
				return nil, err
			}
			d, ok := c.index.Get(l)
			if !ok {
				break
			}
			mask := maskEval.EvalWithCounter(t, cctr)
			if len(chunk) < store.EntrySize {
				chunk = make([]byte, resultChunk*store.EntrySize)
			}
			r := chunk[:store.EntrySize:store.EntrySize]
			chunk = chunk[store.EntrySize:]
			for b := range r {
				r[b] = mask[b] ^ d[b]
			}
			er = append(er, r)
		}
		if i > 0 {
			t, err = c.tpk.Forward(t)
			if err != nil {
				return nil, fmt.Errorf("walk trapdoor chain: %w", err)
			}
		}
	}
	return er, nil
}

// witnessFor derives the prime representative for (token, results) and
// produces its membership witness.
func (c *Cloud) witnessFor(tok SearchToken, er [][]byte) ([]byte, error) {
	h := mhash.OfMultiset(er)
	return c.witnessForPrime(tokenPrime(tok.Trapdoor, tok.Epoch, tok.G1, tok.G2, h))
}

// witnessForPrime produces the membership witness for a prime
// representative. Callers hold the read lock (WitnessForPrime wraps it for
// the shard router; witnessFor rides inside a search request).
func (c *Cloud) witnessForPrime(x *big.Int) ([]byte, error) {
	// Neither error below embeds the prime: it is PRF-derived from the
	// token, and error strings travel into logs and wire responses where
	// secrettaint (rightly) refuses to let key-derived bytes go.
	key := string(x.Bytes())
	idx, ok := c.primeSet[key]
	if !ok {
		return nil, ErrUnknownToken
	}
	var w *big.Int
	switch c.mode {
	case WitnessCached:
		e := c.witnesses[key]
		if e == nil {
			return nil, fmt.Errorf("core: witness cache miss for accumulated prime")
		}
		w = c.materialize(e)
	case WitnessOnDemand:
		if c.wtree != nil && c.wtree.Len() == len(c.primes) {
			w = c.wtree.Witness(idx)
			break
		}
		var err error
		w, err = c.accPub.MemWit(c.primes, x)
		if errors.Is(err, accumulator.ErrNotMember) {
			// Unreachable after the primeSet check above, but keep the typed
			// branch so a future caller without that check degrades cleanly.
			return nil, ErrUnknownToken
		}
		if err != nil {
			return nil, err
		}
	}
	return c.accPub.EncodeValue(w), nil
}
