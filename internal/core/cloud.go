package core

import (
	"fmt"
	"math/big"
	"runtime"

	"slicer/internal/accumulator"
	"slicer/internal/mhash"
	"slicer/internal/prf"
	"slicer/internal/store"
	"slicer/internal/trapdoor"
)

// WitnessMode selects how the cloud produces accumulator membership
// witnesses.
type WitnessMode int

const (
	// WitnessCached precomputes witnesses for every accumulated prime with
	// the RootFactor algorithm and maintains them incrementally on insert.
	// Query-time VO generation is then a single lookup plus the final
	// exponentiations. This matches the fast VO-generation times of the
	// paper's evaluation.
	WitnessCached WitnessMode = iota + 1
	// WitnessOnDemand computes each witness at query time with O(|X|)
	// modular exponentiations. Cheaper on insert, slower on search; used by
	// the ablation benchmark.
	WitnessOnDemand
)

// Cloud is the untrusted search server. It stores the encrypted index I,
// the prime list X, the accumulator public parameters and the trapdoor
// public key; it executes Algorithm 4 (search + VO generation).
type Cloud struct {
	params Params
	accPub *accumulator.PublicParams
	tpk    *trapdoor.PublicKey

	index     *store.Index
	primes    []*big.Int
	primeSet  map[string]int      // prime bytes -> index into primes
	witnesses map[string]*big.Int // prime bytes -> cached witness
	ac        *big.Int
	mode      WitnessMode
}

// NewCloud initializes a cloud from the owner's CloudState package.
func NewCloud(st *CloudState, mode WitnessMode) (*Cloud, error) {
	if err := st.Params.validate(); err != nil {
		return nil, err
	}
	if mode != WitnessCached && mode != WitnessOnDemand {
		return nil, fmt.Errorf("core: unknown witness mode %d", mode)
	}
	c := &Cloud{
		params:   st.Params,
		accPub:   st.AccumulatorPub,
		tpk:      st.TrapdoorPub,
		index:    store.NewIndex(),
		primeSet: make(map[string]int),
		ac:       new(big.Int).Set(st.Ac),
		mode:     mode,
	}
	if st.Index != nil {
		if err := c.index.Merge(st.Index); err != nil {
			return nil, err
		}
	}
	c.addPrimes(st.Primes)
	if mode == WitnessCached {
		c.rebuildWitnesses()
	}
	return c, nil
}

// ApplyUpdate merges an UpdateOutput delta shipped by the owner after an
// Insert: new index entries, new primes and the new accumulation value.
//
// Cached witnesses are maintained by whichever strategy is cheaper for the
// batch: incremental refresh costs O(|X|·|X⁺|) exponentiations (each
// existing witness raised to every new prime, plus pairwise work for the
// new primes), while a full RootFactor rebuild costs O(N log N) for
// N = |X|+|X⁺|. Small trickle inserts refresh incrementally; bulk inserts
// rebuild.
func (c *Cloud) ApplyUpdate(out *UpdateOutput) error {
	if err := c.index.Merge(out.Index); err != nil {
		return fmt.Errorf("apply index delta: %w", err)
	}
	added := len(out.Primes)
	total := len(c.primes) + added
	rebuild := c.mode == WitnessCached && added > log2ceil(total)+1

	if c.mode == WitnessCached && !rebuild {
		// Update existing witnesses before registering the new primes.
		for key, w := range c.witnesses {
			nw := new(big.Int).Set(w)
			for _, x := range out.Primes {
				nw.Exp(nw, x, c.accPub.N)
			}
			c.witnesses[key] = nw
		}
	}
	start := len(c.primes)
	c.addPrimes(out.Primes)
	switch {
	case rebuild:
		c.rebuildWitnesses()
	case c.mode == WitnessCached:
		// Witness for each new prime: old Ac raised to the other new primes.
		for i := start; i < len(c.primes); i++ {
			w := new(big.Int).Set(c.ac)
			for k := start; k < len(c.primes); k++ {
				if k == i {
					continue
				}
				w.Exp(w, c.primes[k], c.accPub.N)
			}
			c.witnesses[string(c.primes[i].Bytes())] = w
		}
	}
	c.ac = new(big.Int).Set(out.Ac)
	return nil
}

func log2ceil(n int) int {
	bits := 0
	for v := n - 1; v > 0; v >>= 1 {
		bits++
	}
	return bits
}

func (c *Cloud) addPrimes(primes []*big.Int) {
	for _, p := range primes {
		cp := new(big.Int).Set(p)
		c.primeSet[string(cp.Bytes())] = len(c.primes)
		c.primes = append(c.primes, cp)
	}
}

// rebuildWitnesses recomputes the full witness cache with RootFactor
// (O(|X| log |X|) modexps), fanned out across the available cores.
func (c *Cloud) rebuildWitnesses() {
	c.witnesses = make(map[string]*big.Int, len(c.primes))
	for i, w := range c.accPub.RootFactorParallel(c.primes, runtime.GOMAXPROCS(0)) {
		c.witnesses[string(c.primes[i].Bytes())] = w
	}
}

// IndexLen reports the number of stored index entries.
func (c *Cloud) IndexLen() int { return c.index.Len() }

// IndexSizeBytes reports the index storage footprint (Fig. 4a).
func (c *Cloud) IndexSizeBytes() int { return c.index.SizeBytes() }

// PrimeCount reports |X|.
func (c *Cloud) PrimeCount() int { return len(c.primes) }

// ADSSizeBytes reports the storage footprint of the prime list X (Fig. 4b).
func (c *Cloud) ADSSizeBytes() int {
	total := 0
	for _, p := range c.primes {
		total += (p.BitLen() + 7) / 8
	}
	return total
}

// Search runs Algorithm 4 for every token in the request: walk the trapdoor
// chain from the newest epoch backwards (via π_pk), drain each epoch's
// counter sequence from the index, then build the verification object.
func (c *Cloud) Search(req *SearchRequest) (*SearchResponse, error) {
	resp := &SearchResponse{Results: make([]TokenResult, 0, len(req.Tokens))}
	for _, tok := range req.Tokens {
		res, err := c.searchToken(tok)
		if err != nil {
			return nil, err
		}
		resp.Results = append(resp.Results, res)
	}
	return resp, nil
}

// SearchResults runs only the result-generation half of Algorithm 4 (lines
// 2–7), without VO generation. The evaluation harness uses it to separate
// result-generation time (Fig. 5a/5c) from VO-generation time (Fig. 5b/5d).
func (c *Cloud) SearchResults(req *SearchRequest) (*SearchResponse, error) {
	resp := &SearchResponse{Results: make([]TokenResult, 0, len(req.Tokens))}
	for _, tok := range req.Tokens {
		er, err := c.collectResults(tok)
		if err != nil {
			return nil, err
		}
		resp.Results = append(resp.Results, TokenResult{Token: tok, ER: er})
	}
	return resp, nil
}

// AttachWitnesses fills in the verification objects for a response produced
// by SearchResults.
func (c *Cloud) AttachWitnesses(resp *SearchResponse) error {
	for i := range resp.Results {
		vo, err := c.witnessFor(resp.Results[i].Token, resp.Results[i].ER)
		if err != nil {
			return err
		}
		resp.Results[i].Witness = vo
	}
	return nil
}

func (c *Cloud) searchToken(tok SearchToken) (TokenResult, error) {
	er, err := c.collectResults(tok)
	if err != nil {
		return TokenResult{}, err
	}
	vo, err := c.witnessFor(tok, er)
	if err != nil {
		return TokenResult{}, err
	}
	return TokenResult{Token: tok, ER: er, Witness: vo}, nil
}

// collectResults walks epochs j..0 of one keyword's trapdoor chain and
// unmasks every stored handle.
func (c *Cloud) collectResults(tok SearchToken) ([][]byte, error) {
	lk, err := prf.KeyFromBytes(tok.G1)
	if err != nil {
		return nil, fmt.Errorf("token G1: %w", err)
	}
	dk, err := prf.KeyFromBytes(tok.G2)
	if err != nil {
		return nil, fmt.Errorf("token G2: %w", err)
	}
	var er [][]byte
	t := tok.Trapdoor
	for i := tok.Epoch; i >= 0; i-- {
		for cctr := uint64(0); ; cctr++ {
			l, err := store.LabelFromBytes(lk.EvalWithCounter(t, cctr))
			if err != nil {
				return nil, err
			}
			d, ok := c.index.Get(l)
			if !ok {
				break
			}
			mask := dk.EvalWithCounter(t, cctr)
			r := make([]byte, store.EntrySize)
			for b := range r {
				r[b] = mask[b] ^ d[b]
			}
			er = append(er, r)
		}
		if i > 0 {
			t, err = c.tpk.Forward(t)
			if err != nil {
				return nil, fmt.Errorf("walk trapdoor chain: %w", err)
			}
		}
	}
	return er, nil
}

// witnessFor derives the prime representative for (token, results) and
// produces its membership witness.
func (c *Cloud) witnessFor(tok SearchToken, er [][]byte) ([]byte, error) {
	h := mhash.OfMultiset(er)
	x := tokenPrime(tok.Trapdoor, tok.Epoch, tok.G1, tok.G2, h)
	key := string(x.Bytes())
	if _, ok := c.primeSet[key]; !ok {
		return nil, fmt.Errorf("%w (prime %x...)", ErrUnknownToken, x.Bytes()[:4])
	}
	var w *big.Int
	switch c.mode {
	case WitnessCached:
		w = c.witnesses[key]
		if w == nil {
			return nil, fmt.Errorf("core: witness cache miss for accumulated prime")
		}
	case WitnessOnDemand:
		var err error
		w, err = c.accPub.MemWit(c.primes, x)
		if err != nil {
			return nil, err
		}
	}
	return c.accPub.EncodeValue(w), nil
}
