package core

import (
	"encoding/binary"
	"math/big"

	"slicer/internal/hprime"
	"slicer/internal/mhash"
)

// tokenPrime derives the prime representative x = H_prime(t || j || G1 ||
// G2 || h) committed by the accumulator for one keyword's cumulative result
// set. It is the single place where owner, cloud and verifier must agree on
// the encoding.
func tokenPrime(trapdoor []byte, epoch int, g1, g2 []byte, h mhash.Hash) *big.Int {
	var j [8]byte
	binary.BigEndian.PutUint64(j[:], uint64(epoch))
	return hprime.HashConcat(trapdoor, j[:], g1, g2, h.Marshal())
}

// TokenPrime exposes the prime derivation for the on-chain verifier, which
// meters its cost explicitly.
func TokenPrime(token SearchToken, h mhash.Hash) *big.Int {
	return tokenPrime(token.Trapdoor, token.Epoch, token.G1, token.G2, h)
}

// TokenPrimeCount is TokenPrime instrumented with the number of primality
// probes H_prime performed, which the metered verifier charges gas for.
func TokenPrimeCount(token SearchToken, h mhash.Hash) (*big.Int, int) {
	var j [8]byte
	binary.BigEndian.PutUint64(j[:], uint64(token.Epoch))
	return hprime.HashConcatCount(token.Trapdoor, j[:], token.G1, token.G2, h.Marshal())
}
