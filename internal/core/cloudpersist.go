package core

import (
	"encoding/json"
	"fmt"
	"math/big"

	"slicer/internal/accumulator"
	"slicer/internal/store"
	"slicer/internal/trapdoor"
)

// cloudState is the serialized form of a Cloud, letting a cloud server
// resume across restarts without the owner re-shipping the index. The
// witness cache is persisted too (rebuilding it is the expensive part of
// cold start). Cloud state holds no deployment secrets, only what the
// untrusted server already sees.
type cloudState struct {
	Params    Params   `json:"params"`
	AccPub    []byte   `json:"accPub"`
	Trapdoor  []byte   `json:"trapdoorPub"`
	Index     []byte   `json:"index"`
	Primes    [][]byte `json:"primes"`
	Ac        []byte   `json:"ac"`
	Mode      int      `json:"mode"`
	Witnesses [][]byte `json:"witnesses,omitempty"` // parallel to Primes in cached mode
}

// Marshal serializes the cloud's complete state. It takes the read lock,
// so snapshots taken while searches are in flight are consistent.
func (c *Cloud) Marshal() ([]byte, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	st := cloudState{
		Params:   c.params,
		AccPub:   c.accPub.Marshal(),
		Trapdoor: c.tpk.MarshalPublic(),
		Index:    c.index.Marshal(),
		Primes:   make([][]byte, len(c.primes)),
		Ac:       c.ac.Bytes(),
		Mode:     int(c.mode),
	}
	for i, p := range c.primes {
		st.Primes[i] = p.Bytes()
	}
	if c.mode == WitnessCached {
		st.Witnesses = make([][]byte, len(c.primes))
		for i, p := range c.primes {
			e, ok := c.witnesses[string(p.Bytes())]
			if !ok {
				return nil, fmt.Errorf("core: witness cache missing entry %d", i)
			}
			// Fold any lazily-pending update batches first, so the persisted
			// format stays the same whether maintenance is eager or lazy.
			st.Witnesses[i] = c.materialize(e).Bytes()
		}
	}
	return json.Marshal(&st)
}

// UnmarshalCloud reconstructs a Cloud serialized with Marshal. Persisted
// witnesses are verified against the accumulation value before use, so a
// corrupted state file degrades to an error instead of invalid proofs.
func UnmarshalCloud(data []byte) (*Cloud, error) {
	var st cloudState
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("core: parse cloud state: %w", err)
	}
	if err := st.Params.validate(); err != nil {
		return nil, err
	}
	accPub, err := accumulator.UnmarshalPublic(st.AccPub)
	if err != nil {
		return nil, fmt.Errorf("core: cloud state: %w", err)
	}
	tpk, err := trapdoor.UnmarshalPublic(st.Trapdoor)
	if err != nil {
		return nil, fmt.Errorf("core: cloud state: %w", err)
	}
	ix, err := store.UnmarshalIndex(st.Index)
	if err != nil {
		return nil, fmt.Errorf("core: cloud state: %w", err)
	}
	mode := WitnessMode(st.Mode)
	if mode != WitnessCached && mode != WitnessOnDemand {
		return nil, fmt.Errorf("core: cloud state: unknown witness mode %d", st.Mode)
	}
	c := &Cloud{
		params:   st.Params,
		accPub:   accPub,
		tpk:      tpk,
		index:    ix,
		primeSet: make(map[string]int, len(st.Primes)),
		ac:       new(big.Int).SetBytes(st.Ac),
		mode:     mode,
		workers:  st.Params.SearchWorkers,
	}
	primes := make([]*big.Int, len(st.Primes))
	for i, p := range st.Primes {
		primes[i] = new(big.Int).SetBytes(p)
	}
	c.addPrimes(primes)

	if mode == WitnessCached {
		if len(st.Witnesses) != len(primes) {
			// Cache lost or stale: rebuild from scratch.
			c.rebuildWitnesses()
			return c, nil
		}
		c.witnesses = make(map[string]*witEntry, len(primes))
		for i, wb := range st.Witnesses {
			w := new(big.Int).SetBytes(wb)
			if !accPub.VerifyMem(c.ac, primes[i], w) {
				return nil, fmt.Errorf("core: cloud state: persisted witness %d is invalid", i)
			}
			c.witnesses[string(primes[i].Bytes())] = &witEntry{w: w}
		}
	}
	if mode == WitnessOnDemand {
		c.resetTree()
	}
	return c, nil
}
