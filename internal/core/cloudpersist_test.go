package core

import (
	"encoding/json"
	"testing"
)

func TestCloudPersistRoundTrip(t *testing.T) {
	db := []Record{NewRecord(1, 5), NewRecord(2, 9), NewRecord(3, 5)}
	for _, mode := range []WitnessMode{WitnessCached, WitnessOnDemand} {
		d := deploy(t, 8, db, mode)

		blob, err := d.cloud.Marshal()
		if err != nil {
			t.Fatalf("mode %v: Marshal: %v", mode, err)
		}
		restored, err := UnmarshalCloud(blob)
		if err != nil {
			t.Fatalf("mode %v: UnmarshalCloud: %v", mode, err)
		}
		if restored.IndexLen() != d.cloud.IndexLen() || restored.PrimeCount() != d.cloud.PrimeCount() {
			t.Fatalf("mode %v: restored sizes differ", mode)
		}

		// The restored cloud answers verified queries.
		req, err := d.user.Token(Equal(5))
		if err != nil {
			t.Fatalf("Token: %v", err)
		}
		resp, err := restored.Search(req)
		if err != nil {
			t.Fatalf("mode %v: restored Search: %v", mode, err)
		}
		if err := VerifyResponse(d.owner.AccumulatorPub(), d.owner.Ac(), req, resp); err != nil {
			t.Fatalf("mode %v: restored response rejected: %v", mode, err)
		}
		ids, err := d.user.Decrypt(resp)
		if err != nil {
			t.Fatalf("Decrypt: %v", err)
		}
		if !equalIDs(ids, []uint64{1, 3}) {
			t.Fatalf("mode %v: restored Equal(5) = %v", mode, ids)
		}

		// And keeps applying updates.
		out, err := d.owner.Insert([]Record{NewRecord(4, 5)})
		if err != nil {
			t.Fatalf("Insert: %v", err)
		}
		if err := restored.ApplyUpdate(out); err != nil {
			t.Fatalf("mode %v: restored ApplyUpdate: %v", mode, err)
		}
		d.user.UpdateStates(d.owner.StatesSnapshot())
		req, err = d.user.Token(Equal(5))
		if err != nil {
			t.Fatalf("Token: %v", err)
		}
		resp, err = restored.Search(req)
		if err != nil {
			t.Fatalf("mode %v: post-insert Search: %v", mode, err)
		}
		if err := VerifyResponse(d.owner.AccumulatorPub(), d.owner.Ac(), req, resp); err != nil {
			t.Fatalf("mode %v: post-insert verification: %v", mode, err)
		}
	}
}

func TestCloudPersistTamperedWitnessRejected(t *testing.T) {
	db := []Record{NewRecord(1, 5)}
	d := deploy(t, 8, db, WitnessCached)
	blob, err := d.cloud.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var st map[string]json.RawMessage
	if err := json.Unmarshal(blob, &st); err != nil {
		t.Fatal(err)
	}
	var witnesses [][]byte
	if err := json.Unmarshal(st["witnesses"], &witnesses); err != nil {
		t.Fatal(err)
	}
	witnesses[0][0] ^= 0x01
	repacked, err := json.Marshal(witnesses)
	if err != nil {
		t.Fatal(err)
	}
	st["witnesses"] = repacked
	tampered, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalCloud(tampered); err == nil {
		t.Error("tampered witness cache accepted")
	}
}

func TestUnmarshalCloudRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalCloud([]byte("nope")); err == nil {
		t.Error("garbage accepted")
	}
}
