package core

import (
	"fmt"
	"sort"

	"slicer/internal/prf"
	"slicer/internal/sore"
	"slicer/internal/store"
	"slicer/internal/symenc"
)

// User is an authorized data user. It holds the secret keys (K, K_R) and
// the trapdoor state dictionary T handed out by the owner, generates search
// tokens (Algorithm 3) and decrypts verified results.
type User struct {
	params Params
	gKey   prf.Key
	enc    *symenc.Cipher
	scheme *sore.Scheme
	states *store.TrapdoorStates
}

// NewUser constructs a user from the owner's ClientState package.
func NewUser(st *ClientState) (*User, error) {
	if err := st.Params.validate(); err != nil {
		return nil, err
	}
	master, err := prf.KeyFromBytes(st.MasterKey)
	if err != nil {
		return nil, fmt.Errorf("user keys: %w", err)
	}
	enc, err := symenc.NewCipher(st.EncKey)
	if err != nil {
		return nil, fmt.Errorf("user keys: %w", err)
	}
	scheme, err := sore.New(master.SubKey("sore"), st.Params.Bits)
	if err != nil {
		return nil, err
	}
	states := st.States
	if states == nil {
		states = store.NewTrapdoorStates()
	}
	return &User{
		params: st.Params,
		gKey:   master.SubKey("G"),
		enc:    enc,
		scheme: scheme,
		states: states.Clone(),
	}, nil
}

// UpdateStates replaces the user's trapdoor dictionary with a newer copy
// (the owner re-distributes T after each Insert, Algorithm 2 line 28).
func (u *User) UpdateStates(states *store.TrapdoorStates) {
	u.states = states.Clone()
}

// Token runs Algorithm 3: it slices the query into keywords (one equality
// keyword, or up to b order tuples), and emits a search token for every
// keyword present in T. Keywords absent from T match no record and are
// silently skipped, exactly as in the paper.
func (u *User) Token(q Query) (*SearchRequest, error) {
	var keywords [][]byte
	attr := []byte(q.Attr)
	switch q.Op {
	case OpEqual:
		if u.params.Bits < 64 && q.Value >= 1<<uint(u.params.Bits) {
			return nil, fmt.Errorf("core: query value %d exceeds %d bits", q.Value, u.params.Bits)
		}
		keywords = [][]byte{sore.EqualityKeyword(attr, u.params.Bits, q.Value)}
	case OpLess, OpGreater:
		oc, err := q.Op.cond()
		if err != nil {
			return nil, err
		}
		tuples, err := u.scheme.TokenTuples(attr, q.Value, oc)
		if err != nil {
			return nil, err
		}
		keywords = tuples
	default:
		return nil, fmt.Errorf("core: unsupported operator %v", q.Op)
	}

	req := &SearchRequest{}
	for _, w := range keywords {
		st, ok := u.states.Get(w)
		if !ok {
			continue
		}
		g1, g2 := u.gKey.EvalConcat(w, []byte{1}), u.gKey.EvalConcat(w, []byte{2})
		req.Tokens = append(req.Tokens, SearchToken{
			Trapdoor: st.Trapdoor,
			Epoch:    st.Epoch,
			G1:       g1,
			G2:       g2,
		})
	}
	return req, nil
}

// RangeTokens generates search tokens for an inclusive range [lo, hi] via
// the prefix-cover index: the range decomposes into its canonical prefix
// nodes and each existing node becomes one exact keyword token. Requires a
// deployment built with Params.PrefixIndex.
func (u *User) RangeTokens(attr string, lo, hi uint64) (*SearchRequest, error) {
	if !u.params.PrefixIndex {
		return nil, fmt.Errorf("core: prefix-cover range search needs Params.PrefixIndex")
	}
	nodes, err := sore.RangeCover(u.params.Bits, lo, hi)
	if err != nil {
		return nil, err
	}
	req := &SearchRequest{}
	for _, w := range sore.CoverKeywords([]byte(attr), u.params.Bits, nodes) {
		st, ok := u.states.Get(w)
		if !ok {
			continue // no record carries this prefix
		}
		g1, g2 := u.gKey.EvalConcat(w, []byte{1}), u.gKey.EvalConcat(w, []byte{2})
		req.Tokens = append(req.Tokens, SearchToken{
			Trapdoor: st.Trapdoor,
			Epoch:    st.Epoch,
			G1:       g1,
			G2:       g2,
		})
	}
	return req, nil
}

// Decrypt recovers the matching record IDs from a (verified) search
// response. IDs are deduplicated and returned sorted.
func (u *User) Decrypt(resp *SearchResponse) ([]uint64, error) {
	seen := make(map[uint64]struct{})
	for _, res := range resp.Results {
		for _, er := range res.ER {
			var block [symenc.BlockSize]byte
			if len(er) != symenc.BlockSize {
				return nil, fmt.Errorf("core: malformed encrypted handle of %d bytes", len(er))
			}
			copy(block[:], er)
			id, err := u.enc.DecryptID(block)
			if err != nil {
				return nil, fmt.Errorf("decrypt result: %w", err)
			}
			seen[id] = struct{}{}
		}
	}
	ids := make([]uint64, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}
