package core

import (
	"slicer/internal/obs"
)

// cloudMetrics are the cloud's pre-resolved instruments. The zero value
// (all nil) is the disabled state: every instrument method is nil-safe and
// never reads the clock, so an un-instrumented Cloud pays nothing beyond a
// nil check per phase.
type cloudMetrics struct {
	searches  *obs.Counter   // search requests served
	errors    *obs.Counter   // search requests that failed
	tokens    *obs.Counter   // tokens across all requests
	results   *obs.Counter   // encrypted result entries returned
	search    *obs.Histogram // whole-request latency
	collect   *obs.Histogram // per-token index walk (trapdoor chain + unmask)
	witness   *obs.Histogram // per-token VO generation
	updates   *obs.Counter   // ApplyUpdate calls
	updateDur *obs.Histogram // ApplyUpdate latency (incl. witness maintenance)
}

// newCloudMetrics resolves the instrument set against reg; a nil registry
// yields the all-nil (disabled) set.
func newCloudMetrics(reg *obs.Registry) cloudMetrics {
	if reg == nil {
		return cloudMetrics{}
	}
	// The search and phase histograms are sliding-window histograms: on
	// top of the cumulative series they export live p50/p90/p99/p999
	// gauges (<family>_window{quantile=...}) for SLOs and dashboards.
	phases := reg.HistogramVecOpts("slicer_cloud_phase_seconds",
		"Latency of one cloud search-pipeline phase, by phase.",
		[]string{"phase"}, obs.VecOpts{Window: &obs.WindowOptions{}})
	return cloudMetrics{
		searches: reg.Counter("slicer_cloud_searches_total",
			"Search requests served by the cloud."),
		errors: reg.Counter("slicer_cloud_search_errors_total",
			"Search requests that returned an error."),
		tokens: reg.Counter("slicer_cloud_search_tokens_total",
			"Search tokens processed across all requests."),
		results: reg.Counter("slicer_cloud_results_total",
			"Encrypted result entries returned across all requests."),
		search: reg.WindowedHistogram("slicer_cloud_search_seconds",
			"Whole-request cloud search latency (Algorithm 4, all tokens)."),
		collect: phases.WithLabelValues("collect"),
		witness: phases.WithLabelValues("witness"),
		updates: reg.Counter("slicer_cloud_updates_total",
			"Index/ADS update deltas applied."),
		updateDur: reg.WindowedHistogram("slicer_cloud_update_seconds",
			"ApplyUpdate latency including cached-witness maintenance."),
	}
}

// SetMetrics attaches (or with a nil registry detaches) the cloud's
// instrumentation. Safe to call at any time; in-flight searches drain
// first. Instrumentation never changes any protocol output.
func (c *Cloud) SetMetrics(reg *obs.Registry) {
	met := newCloudMetrics(reg)
	c.mu.Lock()
	c.met = met
	c.mu.Unlock()
}
