package core

import (
	"bytes"
	"fmt"
	"math/big"
	"sort"

	"slicer/internal/store"
)

// Shard-tier hooks: a cloud that serves as one shard of a routed deployment
// holds only a slice of the encrypted index (partitioned by label address)
// but the full replicated ADS (primes, witnesses, accumulation value). The
// router resolves index labels with GetEntries, delegates VO generation with
// WitnessForPrime, and moves address ranges between shards with
// ExportRange / ImportEntries / DeleteRange. All methods take the cloud's
// own lock; range moves interleave safely with live searches.

// RangeEntry is one (label, payload) pair of an address-range export.
type RangeEntry struct {
	Label   store.Label
	Payload store.Payload
}

// GetEntries resolves a batch of index labels. found[i] reports whether
// labels[i] is present; payloads[i] is zero when it is not. The router's
// scatter-gather collect phase is built on this single read-only primitive.
func (c *Cloud) GetEntries(labels []store.Label) (payloads []store.Payload, found []bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	payloads = make([]store.Payload, len(labels))
	found = make([]bool, len(labels))
	for i, l := range labels {
		payloads[i], found[i] = c.index.Get(l)
	}
	return payloads, found
}

// WitnessForPrime produces the membership witness for an already-derived
// prime representative, exactly as witnessFor would for the token that
// yielded it. The shard router computes the prime from the merged result
// set and delegates the (modexp-heavy) witness generation to one shard.
func (c *Cloud) WitnessForPrime(x *big.Int) ([]byte, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.witnessForPrime(x)
}

// ExportRange returns one deterministic page of the index entries whose
// address (store.Addr) falls in [lo, hi) — hi == 0 meaning 2^64 — with
// labels strictly greater than cursor (nil starts from the beginning),
// sorted by label bytes. next is the cursor for the following page, nil when
// the range is exhausted. limit <= 0 means no bound. Read-only: a source
// shard keeps serving searches while a mover drains it page by page.
func (c *Cloud) ExportRange(lo, hi uint64, cursor []byte, limit int) (entries []RangeEntry, next []byte) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.index.RangeAddr(lo, hi, func(l store.Label, d store.Payload) bool {
		if cursor != nil && bytes.Compare(l[:], cursor) <= 0 {
			return true
		}
		entries = append(entries, RangeEntry{Label: l, Payload: d})
		return true
	})
	sort.Slice(entries, func(i, j int) bool {
		return bytes.Compare(entries[i].Label[:], entries[j].Label[:]) < 0
	})
	if limit > 0 && len(entries) > limit {
		entries = entries[:limit]
		last := entries[len(entries)-1].Label
		next = append([]byte(nil), last[:]...)
	}
	return entries, next
}

// ImportEntries installs entries shipped by a range move. It is idempotent
// so a mover can safely retry a page after a crash or timeout: an entry
// already present with the same payload is skipped, while a conflicting
// payload under the same label is a hard error (labels are PRF outputs over
// unique triples — a conflict means the move shipped foreign state).
func (c *Cloud) ImportEntries(entries []RangeEntry) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, e := range entries {
		if existing, ok := c.index.Get(e.Label); ok {
			if existing == e.Payload {
				continue
			}
			return fmt.Errorf("core: import conflict: label exists with different payload")
		}
		if err := c.index.Put(e.Label, e.Payload); err != nil {
			return fmt.Errorf("core: import entry: %w", err)
		}
	}
	return nil
}

// DeleteRange removes every index entry whose address falls in [lo, hi) —
// hi == 0 meaning 2^64 — and reports how many were removed. The source
// shard runs it once the destination owns the range; idempotent by nature
// (a retry deletes nothing).
func (c *Cloud) DeleteRange(lo, hi uint64) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var doomed []store.Label
	c.index.RangeAddr(lo, hi, func(l store.Label, _ store.Payload) bool {
		doomed = append(doomed, l)
		return true
	})
	for _, l := range doomed {
		c.index.Delete(l)
	}
	return len(doomed)
}
