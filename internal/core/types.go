// Package core implements the Slicer protocols: Build (Algorithm 1), Insert
// (Algorithm 2), search token generation (Algorithm 3), cloud search with
// verification-object generation (Algorithm 4) and result verification
// (Algorithm 5), plus the deletion/update extension (§V-F) via twin
// instances.
//
// The package is organized around the paper's four parties:
//
//	Owner    — holds all secrets; builds the encrypted index and ADS.
//	User     — holds (K, K_R, T); generates search tokens and decrypts.
//	Cloud    — holds the index, the prime list X and accumulator public
//	           parameters; answers searches and produces VOs.
//	Verify() — the pure verification function executed by the blockchain
//	           smart contract (package contract meters it for gas).
//
// Concurrency: Cloud is safe for concurrent use — Search, SearchResults,
// AttachWitnesses and the read-only stats accessors take a read lock, while
// ApplyUpdate takes the write lock, so any number of users can query one
// cloud while the owner ships insert deltas. Within one request the cloud
// additionally fans per-token work across a bounded worker pool
// (Params.SearchWorkers; 0 = one worker per core, 1 = the serial pipeline),
// and VerifyResponse parallelizes Algorithm 5 the same way. Owner and User
// remain single-writer types: callers that share them across goroutines
// must serialize mutations (concurrent read-only use — Token generation,
// Decrypt — is safe). Owner.Build/Insert and the cloud's witness rebuild
// also fan CPU-bound crypto across cores internally.
package core

import (
	"errors"
	"fmt"

	"slicer/internal/accumulator"
	"slicer/internal/sore"
	"slicer/internal/trapdoor"
)

// Op is a query matching condition from the data user's perspective.
type Op int

// Query operators. OpLess selects records whose value is strictly below the
// query value (the paper's oc ">" — query value greater than answer), and
// OpGreater selects records strictly above it (oc "<").
const (
	OpEqual Op = iota + 1
	OpLess
	OpGreater
)

// String implements fmt.Stringer.
func (op Op) String() string {
	switch op {
	case OpEqual:
		return "="
	case OpLess:
		return "<"
	case OpGreater:
		return ">"
	default:
		return fmt.Sprintf("Op(%d)", int(op))
	}
}

// cond maps a user-facing operator to the paper's order condition carried
// inside tokens: records a with a < v are exactly those with "v > a".
func (op Op) cond() (sore.Cond, error) {
	switch op {
	case OpLess:
		return sore.Greater, nil
	case OpGreater:
		return sore.Less, nil
	default:
		return 0, fmt.Errorf("core: operator %v has no order condition", op)
	}
}

// AttrValue is one attribute of a record.
type AttrValue struct {
	Name  string
	Value uint64
}

// Record is a key-value database record: a unique ID and one or more named
// numerical attributes. Single-attribute databases use one AttrValue with an
// empty name.
type Record struct {
	ID    uint64
	Attrs []AttrValue
}

// NewRecord builds a single-attribute record.
func NewRecord(id, value uint64) Record {
	return Record{ID: id, Attrs: []AttrValue{{Value: value}}}
}

// Query is a search request: an operator over one attribute's value.
type Query struct {
	Attr  string
	Op    Op
	Value uint64
}

// Equal / Less / Greater are query constructors for single-attribute
// databases.
func Equal(v uint64) Query   { return Query{Op: OpEqual, Value: v} }
func Less(v uint64) Query    { return Query{Op: OpLess, Value: v} }
func Greater(v uint64) Query { return Query{Op: OpGreater, Value: v} }

// Params fixes the public parameters of a Slicer deployment.
type Params struct {
	// Bits is the value bit width b (1..64). The paper evaluates 8/16/24.
	Bits int
	// TrapdoorBits is the RSA modulus size of the trapdoor permutation.
	TrapdoorBits int
	// AccumulatorBits is the RSA modulus size of the accumulator.
	AccumulatorBits int
	// PrefixIndex additionally indexes every record under its b bit-prefix
	// keywords, enabling prefix-cover range search (User.RangeTokens): an
	// inclusive range resolves to at most 2(b-1) exact keyword lookups with
	// no client-side intersection, at the cost of b extra index entries per
	// record per attribute. Extension beyond the paper; see DESIGN.md.
	PrefixIndex bool
	// SearchWorkers bounds the per-request token fan-out of the parallel
	// search/verify pipeline (Cloud.Search, Cloud.SearchResults,
	// Cloud.AttachWitnesses and VerifyResponse all process the request's
	// tokens independently). 0 runs one worker per available core
	// (GOMAXPROCS); 1 reproduces the serial pipeline exactly. Output is
	// byte-identical at every setting.
	SearchWorkers int
	// EagerWitnessRefresh switches the cached-witness maintenance strategy
	// on ApplyUpdate back to the eager one: every cached witness is
	// re-exponentiated while the update holds the write lock (O(|X|) modexps
	// per update). The default (false) journals the update batch and folds
	// pending exponents into a witness only when it is next served, so
	// updates cost O(|X⁺|) and searches pay one extra modexp per pending
	// batch. Served witnesses are byte-identical under both strategies.
	EagerWitnessRefresh bool
	// RebuildThreshold caps the lazy journal: once the pending prime count
	// would exceed it, ApplyUpdate discards the journal and rebuilds every
	// witness with RootFactor instead. 0 picks max(64, |X|/4).
	RebuildThreshold int
	// FixedBaseTeeth overrides the comb width of the fixed-base
	// exponentiation tables the cloud builds for bulk update batches and the
	// on-demand witness tree (accumulator.FixedBase). 0 auto-sizes from the
	// exponent capacity. Larger teeth trade table build time and memory for
	// cheaper evaluations.
	FixedBaseTeeth int
}

// DefaultParams returns the benchmark parameterization used throughout the
// evaluation (matching the paper's lightweight prototype setting).
func DefaultParams(bits int) Params {
	return Params{
		Bits:            bits,
		TrapdoorBits:    trapdoor.DefaultModulusBits,
		AccumulatorBits: accumulator.DefaultModulusBits,
	}
}

func (p Params) validate() error {
	if p.Bits < 1 || p.Bits > sore.MaxBits {
		return fmt.Errorf("core: bits must be in [1,%d], got %d", sore.MaxBits, p.Bits)
	}
	if p.TrapdoorBits < 64 {
		return fmt.Errorf("core: trapdoor modulus %d too small", p.TrapdoorBits)
	}
	if p.AccumulatorBits < 64 {
		return fmt.Errorf("core: accumulator modulus %d too small", p.AccumulatorBits)
	}
	if p.SearchWorkers < 0 {
		return fmt.Errorf("core: search workers must be >= 0, got %d", p.SearchWorkers)
	}
	if p.RebuildThreshold < 0 {
		return fmt.Errorf("core: rebuild threshold must be >= 0, got %d", p.RebuildThreshold)
	}
	if p.FixedBaseTeeth < 0 || p.FixedBaseTeeth > 20 {
		return fmt.Errorf("core: fixed-base teeth must be in [0,20], got %d", p.FixedBaseTeeth)
	}
	return nil
}

// SearchToken is one entry of Algorithm 3's output: the newest trapdoor,
// the epoch count j, and the index-addressing keys G1, G2.
type SearchToken struct {
	Trapdoor []byte `json:"t"`
	Epoch    int    `json:"j"`
	G1       []byte `json:"g1"`
	G2       []byte `json:"g2"`
}

// SearchRequest carries the token list for one query. Order queries hold up
// to b tokens (one per existing slice); equality queries hold at most one.
type SearchRequest struct {
	Tokens []SearchToken `json:"tokens"`
}

// TokenResult is the cloud's answer for a single token: the unmasked
// encrypted record handles er and the accumulator membership witness vo.
type TokenResult struct {
	Token   SearchToken `json:"token"`
	ER      [][]byte    `json:"er"`
	Witness []byte      `json:"vo"`
}

// SearchResponse is the cloud's full answer to a SearchRequest.
type SearchResponse struct {
	Results []TokenResult `json:"results"`
}

// Sentinel errors shared across the protocol roles.
var (
	// ErrDuplicateID is returned when inserting a record whose ID was
	// already inserted (the scheme forbids repetitive IDs, §V-F).
	ErrDuplicateID = errors.New("core: record ID already inserted")
	// ErrNotBuilt is returned when using a role before Build ran.
	ErrNotBuilt = errors.New("core: protocol state not initialized by Build")
	// ErrUnknownToken is returned by the cloud for tokens whose prime is
	// not in the accumulated set.
	ErrUnknownToken = errors.New("core: search token does not match any accumulated keyword")
	// ErrVerification is returned when a search response fails public
	// verification.
	ErrVerification = errors.New("core: result verification failed")
	// ErrAttrUnknown is returned for queries over undeclared attributes.
	ErrAttrUnknown = errors.New("core: record has no such attribute")
)
