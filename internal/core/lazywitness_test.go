package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// lazyDB generates n deterministic records with values in [0, 2^bits).
func lazyDB(n, bits int, seed int64) []Record {
	rng := rand.New(rand.NewSource(seed))
	db := make([]Record, n)
	for i := range db {
		db[i] = NewRecord(uint64(i+1), rng.Uint64()%(1<<bits))
	}
	return db
}

// lazyEagerPair builds two cached-mode clouds over the same owner state,
// one with lazy maintenance (the default) and one eager.
func lazyEagerPair(t testing.TB, owner *Owner, out *UpdateOutput) (lazy, eager *Cloud) {
	t.Helper()
	stLazy := owner.CloudInit(out.Index)
	lazy, err := NewCloud(stLazy, WitnessCached)
	if err != nil {
		t.Fatalf("NewCloud(lazy): %v", err)
	}
	stEager := owner.CloudInit(out.Index)
	stEager.Params.EagerWitnessRefresh = true
	eager, err = NewCloud(stEager, WitnessCached)
	if err != nil {
		t.Fatalf("NewCloud(eager): %v", err)
	}
	return lazy, eager
}

// TestLazyRefreshMatchesEager interleaves inserts and searches and requires
// the lazy cloud's responses and persisted state to be byte-identical to
// the eager cloud's at every step.
func TestLazyRefreshMatchesEager(t *testing.T) {
	const bits = 8
	db := lazyDB(40, bits, 71)
	owner, err := NewOwner(testParams(bits))
	if err != nil {
		t.Fatal(err)
	}
	out, err := owner.Build(db)
	if err != nil {
		t.Fatal(err)
	}
	lazy, eager := lazyEagerPair(t, owner, out)
	user, err := NewUser(owner.ClientState())
	if err != nil {
		t.Fatal(err)
	}

	nextID := uint64(1000)
	for step := 0; step < 6; step++ {
		batch := make([]Record, 3+step*2)
		for i := range batch {
			batch[i] = NewRecord(nextID, uint64(step*13+i)%(1<<bits))
			nextID++
		}
		upd, err := owner.Insert(batch)
		if err != nil {
			t.Fatalf("step %d: Insert: %v", step, err)
		}
		if err := lazy.ApplyUpdate(upd); err != nil {
			t.Fatalf("step %d: lazy ApplyUpdate: %v", step, err)
		}
		if err := eager.ApplyUpdate(upd); err != nil {
			t.Fatalf("step %d: eager ApplyUpdate: %v", step, err)
		}

		for _, q := range []Query{Equal(uint64(step * 13 % (1 << bits))), Greater(1 << (bits - 1)), Less(20)} {
			req, err := user.Token(q)
			if err != nil {
				t.Fatalf("step %d: Token: %v", step, err)
			}
			respL, err := lazy.Search(req)
			if err != nil {
				t.Fatalf("step %d: lazy Search: %v", step, err)
			}
			respE, err := eager.Search(req)
			if err != nil {
				t.Fatalf("step %d: eager Search: %v", step, err)
			}
			rawL, _ := json.Marshal(respL)
			rawE, _ := json.Marshal(respE)
			if !bytes.Equal(rawL, rawE) {
				t.Fatalf("step %d query %v: lazy response differs from eager", step, q)
			}
			if err := VerifyResponse(owner.AccumulatorPub(), owner.Ac(), req, respL); err != nil {
				t.Fatalf("step %d: lazy response fails verification: %v", step, err)
			}
		}
	}

	// Persisted state must fold all pending batches and match exactly
	// (modulo the params field that names the strategy).
	mL, err := lazy.Marshal()
	if err != nil {
		t.Fatalf("lazy Marshal: %v", err)
	}
	mE, err := eager.Marshal()
	if err != nil {
		t.Fatalf("eager Marshal: %v", err)
	}
	var sL, sE map[string]json.RawMessage
	if err := json.Unmarshal(mL, &sL); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(mE, &sE); err != nil {
		t.Fatal(err)
	}
	// Index bytes are excluded: store.Index marshals in map order, which
	// differs between instances even for identical contents.
	for _, k := range []string{"witnesses", "primes", "ac"} {
		if !bytes.Equal(sL[k], sE[k]) {
			t.Fatalf("marshaled %q differs between lazy and eager", k)
		}
	}
}

// TestLazyRebuildThreshold forces the journal over its budget and checks the
// cloud degrades to a clean rebuild (journal drained, searches verify).
func TestLazyRebuildThreshold(t *testing.T) {
	const bits = 8
	db := lazyDB(30, bits, 5)
	params := testParams(bits)
	params.RebuildThreshold = 8
	owner, err := NewOwner(params)
	if err != nil {
		t.Fatal(err)
	}
	out, err := owner.Build(db)
	if err != nil {
		t.Fatal(err)
	}
	cloud, err := NewCloud(owner.CloudInit(out.Index), WitnessCached)
	if err != nil {
		t.Fatal(err)
	}
	user, err := NewUser(owner.ClientState())
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 4; step++ {
		batch := make([]Record, 6)
		for i := range batch {
			batch[i] = NewRecord(uint64(2000+step*10+i), uint64(step*31+i*7)%(1<<bits))
		}
		upd, err := owner.Insert(batch)
		if err != nil {
			t.Fatal(err)
		}
		if err := cloud.ApplyUpdate(upd); err != nil {
			t.Fatal(err)
		}
	}
	cloud.mu.RLock()
	pending := cloud.pendingPrimes
	cloud.mu.RUnlock()
	if pending > params.RebuildThreshold {
		t.Fatalf("journal holds %d pending primes past threshold %d", pending, params.RebuildThreshold)
	}
	req, err := user.Token(Greater(0))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := cloud.Search(req)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyResponse(owner.AccumulatorPub(), owner.Ac(), req, resp); err != nil {
		t.Fatal(err)
	}
}

// TestLazyConcurrentServes folds pending witnesses from many goroutines at
// once (the entry-level locking under the cloud read lock); run with -race.
func TestLazyConcurrentServes(t *testing.T) {
	const bits = 8
	db := lazyDB(50, bits, 23)
	owner, err := NewOwner(testParams(bits))
	if err != nil {
		t.Fatal(err)
	}
	out, err := owner.Build(db)
	if err != nil {
		t.Fatal(err)
	}
	cloud, err := NewCloud(owner.CloudInit(out.Index), WitnessCached)
	if err != nil {
		t.Fatal(err)
	}
	user, err := NewUser(owner.ClientState())
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]Record, 12)
	for i := range batch {
		batch[i] = NewRecord(uint64(3000+i), uint64(i*11)%(1<<bits))
	}
	upd, err := owner.Insert(batch)
	if err != nil {
		t.Fatal(err)
	}
	if err := cloud.ApplyUpdate(upd); err != nil {
		t.Fatal(err)
	}

	queries := []Query{Greater(10), Less(200), Equal(11), Equal(22), Greater(128)}
	var wg sync.WaitGroup
	errs := make(chan error, len(queries)*4)
	for g := 0; g < 4; g++ {
		for _, q := range queries {
			wg.Add(1)
			go func(q Query) {
				defer wg.Done()
				req, err := user.Token(q)
				if err != nil {
					errs <- err
					return
				}
				resp, err := cloud.Search(req)
				if err != nil {
					errs <- fmt.Errorf("query %v: %w", q, err)
					return
				}
				if err := VerifyResponse(owner.AccumulatorPub(), owner.Ac(), req, resp); err != nil {
					errs <- fmt.Errorf("query %v: %w", q, err)
				}
			}(q)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// FuzzWitnessRefreshLazyVsEager drives a randomized insert/search schedule
// through a lazy and an eager cloud and requires byte-identical served
// witnesses and persisted caches.
func FuzzWitnessRefreshLazyVsEager(f *testing.F) {
	f.Add([]byte{3, 1, 9, 250, 0}, uint8(2))
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{7, 7, 7, 7, 7, 7, 7, 7}, uint8(9))
	f.Fuzz(func(t *testing.T, schedule []byte, seed uint8) {
		const bits = 6
		if len(schedule) > 16 {
			schedule = schedule[:16]
		}
		db := lazyDB(12, bits, int64(seed))
		owner, err := NewOwner(testParams(bits))
		if err != nil {
			t.Fatal(err)
		}
		out, err := owner.Build(db)
		if err != nil {
			t.Fatal(err)
		}
		lazy, eager := lazyEagerPair(t, owner, out)
		user, err := NewUser(owner.ClientState())
		if err != nil {
			t.Fatal(err)
		}
		nextID := uint64(500)
		for step, b := range schedule {
			if b%2 == 0 {
				n := int(b/2)%5 + 1
				batch := make([]Record, n)
				for i := range batch {
					batch[i] = NewRecord(nextID, (uint64(b)+uint64(i*3))%(1<<bits))
					nextID++
				}
				upd, err := owner.Insert(batch)
				if err != nil {
					t.Fatal(err)
				}
				if err := lazy.ApplyUpdate(upd); err != nil {
					t.Fatal(err)
				}
				if err := eager.ApplyUpdate(upd); err != nil {
					t.Fatal(err)
				}
				continue
			}
			req, err := user.Token(Greater(uint64(b) % (1 << bits)))
			if err != nil {
				t.Fatal(err)
			}
			respL, err := lazy.Search(req)
			if err != nil {
				t.Fatalf("step %d: lazy: %v", step, err)
			}
			respE, err := eager.Search(req)
			if err != nil {
				t.Fatalf("step %d: eager: %v", step, err)
			}
			rawL, _ := json.Marshal(respL)
			rawE, _ := json.Marshal(respE)
			if !bytes.Equal(rawL, rawE) {
				t.Fatalf("step %d: lazy and eager responses differ", step)
			}
		}
		mL, err := lazy.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		mE, err := eager.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		var sL, sE map[string]json.RawMessage
		if err := json.Unmarshal(mL, &sL); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(mE, &sE); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sL["witnesses"], sE["witnesses"]) {
			t.Fatal("persisted witness caches differ between lazy and eager")
		}
	})
}
