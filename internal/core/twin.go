package core

import (
	"fmt"
	"math/big"
	"sort"

	"slicer/internal/accumulator"
)

// The twin construction (§V-F) supports deletion and update by duplicating
// the scheme: one instance accumulates inserted records, the other
// accumulates deleted records, and the effective result of a query is the
// set difference of the two instances' results. Record IDs may be inserted
// (and deleted) at most once.

// TwinOwner wraps an insert-instance and a delete-instance owner.
type TwinOwner struct {
	Add *Owner
	Del *Owner

	deleted map[uint64]struct{}
}

// TwinUpdate carries the per-instance deltas shipped to the cloud.
type TwinUpdate struct {
	Add *UpdateOutput // nil if the insert instance did not change
	Del *UpdateOutput // nil if the delete instance did not change
}

// TwinClientState packages both instances' user states.
type TwinClientState struct {
	Add *ClientState
	Del *ClientState
}

// NewTwinOwner creates both instances with independent keys.
func NewTwinOwner(params Params) (*TwinOwner, error) {
	add, err := NewOwner(params)
	if err != nil {
		return nil, fmt.Errorf("insert instance: %w", err)
	}
	del, err := NewOwner(params)
	if err != nil {
		return nil, fmt.Errorf("delete instance: %w", err)
	}
	return &TwinOwner{Add: add, Del: del, deleted: make(map[uint64]struct{})}, nil
}

// Build initializes both instances; the delete instance starts empty.
func (t *TwinOwner) Build(db []Record) (*TwinUpdate, error) {
	addOut, err := t.Add.Build(db)
	if err != nil {
		return nil, err
	}
	delOut, err := t.Del.Build(nil)
	if err != nil {
		return nil, err
	}
	return &TwinUpdate{Add: addOut, Del: delOut}, nil
}

// Insert adds new records to the insert instance.
func (t *TwinOwner) Insert(db []Record) (*TwinUpdate, error) {
	out, err := t.Add.Insert(db)
	if err != nil {
		return nil, err
	}
	return &TwinUpdate{Add: out}, nil
}

// Delete marks records as deleted by inserting them into the delete
// instance. Each record must have been inserted before and not deleted yet,
// and must be passed with the exact attribute values it was inserted with
// (so its keywords cancel).
func (t *TwinOwner) Delete(db []Record) (*TwinUpdate, error) {
	for _, rec := range db {
		if _, ok := t.Add.seen[rec.ID]; !ok {
			return nil, fmt.Errorf("core: delete of never-inserted record %d", rec.ID)
		}
		if _, ok := t.deleted[rec.ID]; ok {
			return nil, fmt.Errorf("core: record %d already deleted", rec.ID)
		}
	}
	out, err := t.Del.Insert(db)
	if err != nil {
		return nil, err
	}
	for _, rec := range db {
		t.deleted[rec.ID] = struct{}{}
	}
	return &TwinUpdate{Del: out}, nil
}

// Update replaces a record's attributes: one deletion of the old record
// plus one insertion of the new version under a fresh ID.
func (t *TwinOwner) Update(old Record, newRec Record) (*TwinUpdate, error) {
	if old.ID == newRec.ID {
		return nil, fmt.Errorf("core: update must assign a fresh record ID (IDs are single-use)")
	}
	delOut, err := t.Delete([]Record{old})
	if err != nil {
		return nil, err
	}
	addOut, err := t.Insert([]Record{newRec})
	if err != nil {
		return nil, err
	}
	return &TwinUpdate{Add: addOut.Add, Del: delOut.Del}, nil
}

// ClientState exports both instances' user packages.
func (t *TwinOwner) ClientState() *TwinClientState {
	return &TwinClientState{Add: t.Add.ClientState(), Del: t.Del.ClientState()}
}

// TwinUser issues queries against both instances.
type TwinUser struct {
	Add *User
	Del *User
}

// NewTwinUser constructs a twin user from the owner's client package.
func NewTwinUser(st *TwinClientState) (*TwinUser, error) {
	add, err := NewUser(st.Add)
	if err != nil {
		return nil, err
	}
	del, err := NewUser(st.Del)
	if err != nil {
		return nil, err
	}
	return &TwinUser{Add: add, Del: del}, nil
}

// TwinRequest carries the per-instance search requests.
type TwinRequest struct {
	Add *SearchRequest
	Del *SearchRequest
}

// TwinResponse carries the per-instance responses.
type TwinResponse struct {
	Add *SearchResponse
	Del *SearchResponse
}

// Token generates search tokens for both instances.
func (u *TwinUser) Token(q Query) (*TwinRequest, error) {
	addReq, err := u.Add.Token(q)
	if err != nil {
		return nil, err
	}
	delReq, err := u.Del.Token(q)
	if err != nil {
		return nil, err
	}
	return &TwinRequest{Add: addReq, Del: delReq}, nil
}

// Decrypt returns the effective result: IDs matched by the insert instance
// minus IDs matched by the delete instance, sorted.
func (u *TwinUser) Decrypt(resp *TwinResponse) ([]uint64, error) {
	addIDs, err := u.Add.Decrypt(resp.Add)
	if err != nil {
		return nil, err
	}
	delIDs, err := u.Del.Decrypt(resp.Del)
	if err != nil {
		return nil, err
	}
	gone := make(map[uint64]struct{}, len(delIDs))
	for _, id := range delIDs {
		gone[id] = struct{}{}
	}
	out := addIDs[:0]
	for _, id := range addIDs {
		if _, ok := gone[id]; !ok {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// TwinCloud hosts both instances' server state.
type TwinCloud struct {
	Add *Cloud
	Del *Cloud
}

// NewTwinCloud initializes both clouds.
func NewTwinCloud(addState, delState *CloudState, mode WitnessMode) (*TwinCloud, error) {
	add, err := NewCloud(addState, mode)
	if err != nil {
		return nil, err
	}
	del, err := NewCloud(delState, mode)
	if err != nil {
		return nil, err
	}
	return &TwinCloud{Add: add, Del: del}, nil
}

// ApplyUpdate merges a twin delta.
func (c *TwinCloud) ApplyUpdate(up *TwinUpdate) error {
	if up.Add != nil {
		if err := c.Add.ApplyUpdate(up.Add); err != nil {
			return fmt.Errorf("insert instance: %w", err)
		}
	}
	if up.Del != nil {
		if err := c.Del.ApplyUpdate(up.Del); err != nil {
			return fmt.Errorf("delete instance: %w", err)
		}
	}
	return nil
}

// Search answers both instances' requests.
func (c *TwinCloud) Search(req *TwinRequest) (*TwinResponse, error) {
	addResp, err := c.Add.Search(req.Add)
	if err != nil {
		return nil, fmt.Errorf("insert instance: %w", err)
	}
	delResp, err := c.Del.Search(req.Del)
	if err != nil {
		return nil, fmt.Errorf("delete instance: %w", err)
	}
	return &TwinResponse{Add: addResp, Del: delResp}, nil
}

// VerifyTwinResponse publicly verifies both halves of a twin response
// against the two instances' accumulation values.
func VerifyTwinResponse(addPub, delPub *accumulator.PublicParams, addAc, delAc *big.Int,
	req *TwinRequest, resp *TwinResponse) error {
	if err := VerifyResponse(addPub, addAc, req.Add, resp.Add); err != nil {
		return fmt.Errorf("insert instance: %w", err)
	}
	if err := VerifyResponse(delPub, delAc, req.Del, resp.Del); err != nil {
		return fmt.Errorf("delete instance: %w", err)
	}
	return nil
}
