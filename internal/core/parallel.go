package core

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// forEachIndexed runs fn(0) .. fn(n-1) across at most workers goroutines.
//
// It preserves the semantics of the serial loop the callers replaced:
//
//   - Output determinism — callers write results[i] inside fn, so result
//     order matches index order regardless of scheduling.
//   - First-error semantics — the returned error is the one produced by the
//     lowest failing index, exactly what a serial early-return would yield.
//     Once some index fails, higher indices still pending are skipped (their
//     results would be discarded anyway), but lower indices always run, so
//     the winning error cannot change with scheduling.
//
// workers <= 1 (or n <= 1) degrades to the plain serial loop with zero
// goroutine overhead.
func forEachIndexed(n, workers int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var minFail atomic.Int64
	minFail.Store(math.MaxInt64)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if int64(i) > minFail.Load() {
					continue // a lower index already failed; this result is moot
				}
				if err := fn(i); err != nil {
					errs[i] = err
					for {
						cur := minFail.Load()
						if int64(i) >= cur || minFail.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// effectiveWorkers resolves a configured worker count: 0 (or negative) means
// "one per available core", anything else is taken literally.
func effectiveWorkers(configured int) int {
	if configured <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return configured
}
