package core

import (
	"errors"
	"fmt"
	"testing"
)

// TestVerificationErrorStructure pins the structured failure contract: every
// rejection carries the phase and token index that explain it, and still
// satisfies errors.Is(err, ErrVerification) through arbitrary wrapping.
func TestVerificationErrorStructure(t *testing.T) {
	db := []Record{NewRecord(1, 5), NewRecord(2, 8), NewRecord(3, 5)}
	d := deploy(t, 8, db, WitnessCached)
	pp, ac := d.owner.AccumulatorPub(), d.owner.Ac()

	req, err := d.user.Token(Equal(5))
	if err != nil {
		t.Fatalf("Token: %v", err)
	}

	cases := []struct {
		name      string
		mutate    func(*SearchResponse)
		wantPhase string
		wantIndex int
	}{
		{"drop-token-result", func(r *SearchResponse) {
			r.Results = r.Results[:len(r.Results)-1]
		}, PhaseCompleteness, -1},
		{"swap-in-foreign-token", func(r *SearchResponse) {
			r.Results[0].Token.Trapdoor = append([]byte(nil), r.Results[0].Token.Trapdoor...)
			r.Results[0].Token.Trapdoor[0] ^= 0x01
		}, PhaseOrder, 0},
		{"flip-result-byte", func(r *SearchResponse) {
			r.Results[0].ER[0][3] ^= 0x01
		}, PhaseMembership, 0},
	}
	for _, tc := range cases {
		resp, err := d.cloud.Search(req)
		if err != nil {
			t.Fatalf("%s: Search: %v", tc.name, err)
		}
		tc.mutate(resp)
		err = VerifyResponse(pp, ac, req, resp)
		if err == nil {
			t.Fatalf("%s: tampered response passed verification", tc.name)
		}
		if !errors.Is(err, ErrVerification) {
			t.Errorf("%s: errors.Is(err, ErrVerification) = false for %v", tc.name, err)
		}
		ve, ok := AsVerificationError(err)
		if !ok {
			t.Fatalf("%s: no VerificationError in chain of %v", tc.name, err)
		}
		if ve.Phase != tc.wantPhase {
			t.Errorf("%s: phase = %q, want %q", tc.name, ve.Phase, tc.wantPhase)
		}
		if ve.TokenIndex != tc.wantIndex {
			t.Errorf("%s: token index = %d, want %d", tc.name, ve.TokenIndex, tc.wantIndex)
		}
		// The structured fields must survive another wrapping layer, the way
		// callers annotate before journaling evidence.
		wrapped := fmt.Errorf("fair exchange: %w", err)
		if !errors.Is(wrapped, ErrVerification) {
			t.Errorf("%s: wrapped error lost the ErrVerification sentinel", tc.name)
		}
		if _, ok := AsVerificationError(wrapped); !ok {
			t.Errorf("%s: wrapped error lost the structured VerificationError", tc.name)
		}
	}
}
