package core

import (
	"math/rand"
	"testing"
)

// TestMultiUser models the paper's multi-user setting: several authorized
// users hold independent copies of (K, K_R, T) and interleave searches;
// after inserts, only users with refreshed states see new data, and every
// response verifies against the single on-chain Ac regardless of which
// user asked.
func TestMultiUser(t *testing.T) {
	db := []Record{NewRecord(1, 5), NewRecord(2, 9), NewRecord(3, 5)}
	d := deploy(t, 8, db, WitnessCached)

	u2, err := NewUser(d.owner.ClientState())
	if err != nil {
		t.Fatalf("NewUser: %v", err)
	}

	run := func(u *User, q Query) []uint64 {
		t.Helper()
		req, err := u.Token(q)
		if err != nil {
			t.Fatalf("Token: %v", err)
		}
		resp, err := d.cloud.Search(req)
		if err != nil {
			t.Fatalf("Search: %v", err)
		}
		if err := VerifyResponse(d.owner.AccumulatorPub(), d.owner.Ac(), req, resp); err != nil {
			t.Fatalf("verify: %v", err)
		}
		ids, err := u.Decrypt(resp)
		if err != nil {
			t.Fatalf("Decrypt: %v", err)
		}
		return ids
	}

	if got := run(d.user, Equal(5)); !equalIDs(got, []uint64{1, 3}) {
		t.Fatalf("user1 Equal(5) = %v", got)
	}
	if got := run(u2, Equal(5)); !equalIDs(got, []uint64{1, 3}) {
		t.Fatalf("user2 Equal(5) = %v", got)
	}

	// Insert; refresh only user2.
	out, err := d.owner.Insert([]Record{NewRecord(4, 5)})
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if err := d.cloud.ApplyUpdate(out); err != nil {
		t.Fatalf("ApplyUpdate: %v", err)
	}
	u2.UpdateStates(d.owner.StatesSnapshot())

	// user2 sees the fresh data, fully verified.
	if got := run(u2, Equal(5)); !equalIDs(got, []uint64{1, 3, 4}) {
		t.Fatalf("refreshed user Equal(5) = %v", got)
	}

	// user1 still holds the pre-insert T. Its token reaches only the old
	// epoch, and — because Algorithm 2 only ever adds primes to X — the
	// old-state answer still carries a valid proof. That is by design: the
	// response is a *correct* answer for the state the token references.
	// Freshness in the multi-user setting is established out of band: the
	// contract's AcUpdated counter tells a lagging user that newer state
	// exists and their T must be resynced (see Deployment.VerifyFreshness
	// and contract.TestStaleAcRejectedOnChain for the chain-side half:
	// a *cloud* replaying a stale Ac against a fresh token is rejected).
	if got := run(d.user, Equal(5)); !equalIDs(got, []uint64{1, 3}) {
		t.Fatalf("stale user Equal(5) = %v, want the pre-insert answer [1 3]", got)
	}
}

// TestAdversarialTamperNeverVerifies is a randomized property test over the
// whole verification pipeline: for random databases, random queries and a
// random tampering action, the mutated response must never pass Algorithm 5.
func TestAdversarialTamperNeverVerifies(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	db := make([]Record, 40)
	for i := range db {
		db[i] = NewRecord(uint64(i+1), uint64(rng.Intn(256)))
	}
	d := deploy(t, 8, db, WitnessCached)
	pp, ac := d.owner.AccumulatorPub(), d.owner.Ac()

	tampers := []func(*SearchResponse) bool{
		func(r *SearchResponse) bool { // drop one er entry
			for i := range r.Results {
				if len(r.Results[i].ER) > 0 {
					r.Results[i].ER = r.Results[i].ER[1:]
					return true
				}
			}
			return false
		},
		func(r *SearchResponse) bool { // flip a random byte in an er entry
			for i := range r.Results {
				if len(r.Results[i].ER) > 0 {
					er := r.Results[i].ER[rng.Intn(len(r.Results[i].ER))]
					er[rng.Intn(len(er))] ^= 1 << uint(rng.Intn(8))
					return true
				}
			}
			return false
		},
		func(r *SearchResponse) bool { // duplicate an er entry
			for i := range r.Results {
				if len(r.Results[i].ER) > 0 {
					r.Results[i].ER = append(r.Results[i].ER, r.Results[i].ER[0])
					return true
				}
			}
			return false
		},
		func(r *SearchResponse) bool { // corrupt a witness
			if len(r.Results) == 0 {
				return false
			}
			w := r.Results[rng.Intn(len(r.Results))].Witness
			if len(w) == 0 {
				return false
			}
			w[rng.Intn(len(w))] ^= 1 << uint(rng.Intn(8))
			return true
		},
		func(r *SearchResponse) bool { // swap witnesses between tokens
			if len(r.Results) < 2 {
				return false
			}
			r.Results[0].Witness, r.Results[1].Witness = r.Results[1].Witness, r.Results[0].Witness
			// Only a real tamper if the result sets differ.
			return len(r.Results[0].ER) != len(r.Results[1].ER)
		},
		func(r *SearchResponse) bool { // drop a whole token result
			if len(r.Results) == 0 {
				return false
			}
			r.Results = r.Results[1:]
			return true
		},
		func(r *SearchResponse) bool { // move a result between tokens
			for i := range r.Results {
				if len(r.Results[i].ER) > 0 {
					for k := range r.Results {
						if k != i {
							r.Results[k].ER = append(r.Results[k].ER, r.Results[i].ER[0])
							r.Results[i].ER = r.Results[i].ER[1:]
							return true
						}
					}
				}
			}
			return false
		},
	}

	const trials = 60
	applied := 0
	for trial := 0; trial < trials; trial++ {
		var q Query
		switch rng.Intn(3) {
		case 0:
			q = Equal(uint64(rng.Intn(256)))
		case 1:
			q = Less(uint64(rng.Intn(255) + 1))
		default:
			q = Greater(uint64(rng.Intn(255)))
		}
		req, err := d.user.Token(q)
		if err != nil {
			t.Fatalf("Token: %v", err)
		}
		resp, err := d.cloud.Search(req)
		if err != nil {
			t.Fatalf("Search: %v", err)
		}
		if err := VerifyResponse(pp, ac, req, resp); err != nil {
			t.Fatalf("honest response rejected: %v", err)
		}
		if tampers[rng.Intn(len(tampers))](resp) {
			applied++
			if err := VerifyResponse(pp, ac, req, resp); err == nil {
				t.Fatalf("trial %d: tampered response (query %v %d) verified", trial, q.Op, q.Value)
			}
		}
	}
	if applied < trials/3 {
		t.Fatalf("only %d/%d trials applied a tamper; fixture too sparse", applied, trials)
	}
}

// TestExhaustiveQueries4Bit runs every possible query of a 4-bit domain
// (all operators × all values) against a random database and the plaintext
// ground truth — complete behavioural coverage of the query space at small
// scale.
func TestExhaustiveQueries4Bit(t *testing.T) {
	rng := newDeterministicValues(16, 31)
	db := make([]Record, 25)
	for i := range db {
		db[i] = NewRecord(uint64(i+1), rng())
	}
	d := deploy(t, 4, db, WitnessCached)
	for v := uint64(0); v < 16; v++ {
		for _, op := range []Op{OpEqual, OpLess, OpGreater} {
			got := d.search(t, Query{Op: op, Value: v})
			want := wantIDs(db, func(r Record) bool {
				switch op {
				case OpEqual:
					return r.Attrs[0].Value == v
				case OpLess:
					return r.Attrs[0].Value < v
				default:
					return r.Attrs[0].Value > v
				}
			})
			if !equalIDs(got, want) {
				t.Fatalf("query %v %d: got %v, want %v", op, v, got, want)
			}
		}
	}
}

// newDeterministicValues yields a simple LCG over [0, mod) for seed-stable
// tests without importing math/rand here.
func newDeterministicValues(mod, seed uint64) func() uint64 {
	state := seed
	return func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return (state >> 33) % mod
	}
}

// TestEdgeBitWidths exercises the 1-bit and 64-bit extremes of the scheme.
func TestEdgeBitWidths(t *testing.T) {
	t.Run("1bit", func(t *testing.T) {
		db := []Record{NewRecord(1, 0), NewRecord(2, 1), NewRecord(3, 1)}
		d := deploy(t, 1, db, WitnessCached)
		if got := d.search(t, Equal(1)); !equalIDs(got, []uint64{2, 3}) {
			t.Errorf("Equal(1) = %v", got)
		}
		if got := d.search(t, Less(1)); !equalIDs(got, []uint64{1}) {
			t.Errorf("Less(1) = %v", got)
		}
		if got := d.search(t, Greater(0)); !equalIDs(got, []uint64{2, 3}) {
			t.Errorf("Greater(0) = %v", got)
		}
	})
	t.Run("64bit", func(t *testing.T) {
		big1 := ^uint64(0)
		db := []Record{NewRecord(1, 0), NewRecord(2, big1), NewRecord(3, big1-1)}
		d := deploy(t, 64, db, WitnessCached)
		if got := d.search(t, Equal(big1)); !equalIDs(got, []uint64{2}) {
			t.Errorf("Equal(max) = %v", got)
		}
		if got := d.search(t, Greater(big1-1)); !equalIDs(got, []uint64{2}) {
			t.Errorf("Greater(max-1) = %v", got)
		}
		if got := d.search(t, Less(big1)); !equalIDs(got, []uint64{1, 3}) {
			t.Errorf("Less(max) = %v", got)
		}
	})
}

// TestEmptyBuild: building over an empty database must work (the twin
// delete instance starts empty) and searches must return nothing.
func TestEmptyBuild(t *testing.T) {
	d := deploy(t, 8, nil, WitnessCached)
	if got := d.search(t, Equal(5)); len(got) != 0 {
		t.Errorf("Equal(5) on empty DB = %v", got)
	}
	if got := d.search(t, Less(255)); len(got) != 0 {
		t.Errorf("Less(255) on empty DB = %v", got)
	}
	// Insert into the empty deployment.
	out, err := d.owner.Insert([]Record{NewRecord(1, 7)})
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if err := d.cloud.ApplyUpdate(out); err != nil {
		t.Fatalf("ApplyUpdate: %v", err)
	}
	d.user.UpdateStates(d.owner.StatesSnapshot())
	if got := d.search(t, Equal(7)); !equalIDs(got, []uint64{1}) {
		t.Errorf("Equal(7) after first insert = %v", got)
	}
}

// TestUnknownAttributeQuery: a query over an attribute that no record has
// simply matches nothing.
func TestUnknownAttributeQuery(t *testing.T) {
	db := []Record{{ID: 1, Attrs: []AttrValue{{Name: "age", Value: 30}}}}
	d := deploy(t, 8, db, WitnessCached)
	if got := d.search(t, Query{Attr: "height", Op: OpEqual, Value: 30}); len(got) != 0 {
		t.Errorf("unknown attribute matched %v", got)
	}
}
