package core

import (
	"fmt"
	"math/big"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"slicer/internal/accumulator"
	"slicer/internal/mhash"
	"slicer/internal/prf"
	"slicer/internal/sore"
	"slicer/internal/store"
	"slicer/internal/symenc"
	"slicer/internal/trapdoor"
)

// Owner is the fully trusted data owner. It generates all keys, builds the
// encrypted index and ADS (Algorithm 1), and performs forward-secure
// insertions (Algorithm 2).
type Owner struct {
	params Params

	master prf.Key        // K: master PRF key, shared with users
	gKey   prf.Key        // G, derived from K
	enc    *symenc.Cipher // K_R
	scheme *sore.Scheme   // tuple slicer
	tsk    *trapdoor.SecretKey
	acc    *accumulator.Params

	states    *store.TrapdoorStates // T
	setHashes *store.SetHashes      // S
	primes    []*big.Int            // owner's mirror of X
	ac        *big.Int              // current accumulation value
	seen      map[uint64]struct{}   // inserted record IDs
	built     bool
	lastStats UpdateStats
}

// UpdateStats reports how the last Build or Insert call's time split
// between encrypted-index construction and ADS (prime derivation +
// accumulation) work. The evaluation harness uses it to reproduce the
// paper's separate index-vs-ADS curves (Figs. 3 and 7).
type UpdateStats struct {
	// IndexDuration covers tuple slicing, PRF addressing, index entry
	// writes and the incremental set hashing.
	IndexDuration time.Duration
	// ADSDuration covers prime-representative derivation and the
	// accumulator update.
	ADSDuration time.Duration
	// Keywords is the number of distinct keywords touched.
	Keywords int
	// NewPrimes is |X⁺| (equal to Keywords for Build).
	NewPrimes int
}

// UpdateOutput is what the owner ships to the cloud after Build or Insert:
// the (delta) encrypted index, the (delta) prime list, and the new
// accumulation value. After Build the fields carry the full state.
type UpdateOutput struct {
	Index  *store.Index
	Primes []*big.Int
	Ac     *big.Int
}

// ClientState is the package the owner hands to an authorized data user:
// the secret keys (K, K_R) and a copy of the trapdoor state dictionary T.
type ClientState struct {
	Params    Params
	MasterKey []byte
	EncKey    []byte
	States    *store.TrapdoorStates
}

// CloudState is the initialization package for a cloud: public parameters
// plus the full index, prime list and accumulation value.
type CloudState struct {
	Params         Params
	AccumulatorPub *accumulator.PublicParams
	TrapdoorPub    *trapdoor.PublicKey
	Index          *store.Index
	Primes         []*big.Int
	Ac             *big.Int
}

// NewOwner generates a fresh deployment: master PRF key, record-encryption
// key, trapdoor permutation keypair and accumulator parameters.
func NewOwner(params Params) (*Owner, error) {
	if err := params.validate(); err != nil {
		return nil, err
	}
	master, err := prf.NewKey()
	if err != nil {
		return nil, fmt.Errorf("owner keygen: %w", err)
	}
	enc, err := symenc.NewRandomCipher()
	if err != nil {
		return nil, fmt.Errorf("owner keygen: %w", err)
	}
	tsk, err := trapdoor.GenerateKey(params.TrapdoorBits)
	if err != nil {
		return nil, fmt.Errorf("trapdoor keygen: %w", err)
	}
	acc, err := accumulator.Setup(params.AccumulatorBits)
	if err != nil {
		return nil, fmt.Errorf("accumulator setup: %w", err)
	}
	scheme, err := sore.New(master.SubKey("sore"), params.Bits)
	if err != nil {
		return nil, err
	}
	return &Owner{
		params:    params,
		master:    master,
		gKey:      master.SubKey("G"),
		enc:       enc,
		scheme:    scheme,
		tsk:       tsk,
		acc:       acc,
		states:    store.NewTrapdoorStates(),
		setHashes: store.NewSetHashes(),
		ac:        new(big.Int).Set(acc.G),
		seen:      make(map[uint64]struct{}),
	}, nil
}

// Params returns the deployment parameters.
func (o *Owner) Params() Params { return o.params }

// Ac returns the current accumulation value (posted to the blockchain).
func (o *Owner) Ac() *big.Int { return new(big.Int).Set(o.ac) }

// AccumulatorPub returns the public accumulator parameters.
func (o *Owner) AccumulatorPub() *accumulator.PublicParams { return o.acc.Public() }

// TrapdoorPub returns the public half of the trapdoor permutation.
func (o *Owner) TrapdoorPub() *trapdoor.PublicKey { return &o.tsk.PublicKey }

// ClientState exports the keys and trapdoor states for an authorized data
// user. Each call returns an independent copy of T.
func (o *Owner) ClientState() *ClientState {
	return &ClientState{
		Params:    o.params,
		MasterKey: o.master.Bytes(),
		EncKey:    o.enc.KeyBytes(),
		States:    o.states.Clone(),
	}
}

// primeInput collects the fields a keyword's prime representative commits
// to; Build/Insert gather them during index construction and derive the
// primes in a separately-timed ADS phase.
type primeInput struct {
	t      []byte
	j      int
	g1, g2 []byte
	h      mhash.Hash
}

// LastStats returns the phase timings of the most recent Build or Insert.
func (o *Owner) LastStats() UpdateStats { return o.lastStats }

// derivePrimes maps keyword commitments to their prime representatives,
// fanning the (independent, CPU-bound) hash-to-prime derivations across the
// available cores. Output order matches the input order.
func derivePrimes(commits []primeInput) []*big.Int {
	primes := make([]*big.Int, len(commits))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(commits) {
		workers = len(commits)
	}
	if workers <= 1 {
		for i, c := range commits {
			primes[i] = tokenPrime(c.t, c.j, c.g1, c.g2, c.h)
		}
		return primes
	}
	var wg sync.WaitGroup
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(commits) {
					return
				}
				c := commits[i]
				primes[i] = tokenPrime(c.t, c.j, c.g1, c.g2, c.h)
			}
		}()
	}
	wg.Wait()
	return primes
}

// StatesSnapshot exports a copy of the current trapdoor dictionary T, which
// the owner redistributes to users after each Insert (Algorithm 2 line 28).
func (o *Owner) StatesSnapshot() *store.TrapdoorStates { return o.states.Clone() }

// keywordsOf returns every index keyword a record contributes: per
// attribute, the equality keyword plus the b SORE ciphertext tuples.
func (o *Owner) keywordsOf(rec Record) ([][]byte, error) {
	if len(rec.Attrs) == 0 {
		return nil, fmt.Errorf("core: record %d has no attributes", rec.ID)
	}
	keywords := make([][]byte, 0, len(rec.Attrs)*(2*o.params.Bits+1))
	for _, av := range rec.Attrs {
		attr := []byte(av.Name)
		keywords = append(keywords, sore.EqualityKeyword(attr, o.params.Bits, av.Value))
		tuples, err := o.scheme.EncryptTuples(attr, av.Value)
		if err != nil {
			return nil, fmt.Errorf("record %d attr %q: %w", rec.ID, av.Name, err)
		}
		keywords = append(keywords, tuples...)
		if o.params.PrefixIndex {
			prefixes, err := o.scheme.PrefixKeywordsOf(attr, av.Value)
			if err != nil {
				return nil, fmt.Errorf("record %d attr %q: %w", rec.ID, av.Name, err)
			}
			keywords = append(keywords, prefixes...)
		}
	}
	return keywords, nil
}

// groupByKeyword maps each keyword to the encrypted handles of the records
// containing it (the paper's DB(w)).
func (o *Owner) groupByKeyword(db []Record) (map[string][][]byte, error) {
	groups := make(map[string][][]byte)
	for _, rec := range db {
		encID := o.enc.EncryptID(rec.ID)
		keywords, err := o.keywordsOf(rec)
		if err != nil {
			return nil, err
		}
		for _, w := range keywords {
			groups[string(w)] = append(groups[string(w)], encID[:])
		}
	}
	return groups, nil
}

// g1g2 derives the per-keyword index keys G1 = G(K, w||1), G2 = G(K, w||2).
func (o *Owner) g1g2(w []byte) (g1, g2 []byte) {
	g1 = o.gKey.EvalConcat(w, []byte{1})
	g2 = o.gKey.EvalConcat(w, []byte{2})
	return g1, g2
}

// indexEntries writes the entries for one keyword epoch into ix, starting at
// counter 0, and folds each handle into the running multiset hash.
func indexEntries(ix *store.Index, g1, g2, t []byte, encIDs [][]byte, h mhash.Hash) (mhash.Hash, error) {
	lk, err := prf.KeyFromBytes(g1)
	if err != nil {
		return h, err
	}
	dk, err := prf.KeyFromBytes(g2)
	if err != nil {
		return h, err
	}
	for c, encID := range encIDs {
		l, err := store.LabelFromBytes(lk.EvalWithCounter(t, uint64(c)))
		if err != nil {
			return h, err
		}
		mask := dk.EvalWithCounter(t, uint64(c))
		var d store.Payload
		for i := range d {
			d[i] = mask[i] ^ encID[i]
		}
		if err := ix.Put(l, d); err != nil {
			return h, err
		}
		h = h.Add(encID)
	}
	return h, nil
}

// checkNewRecords validates IDs (unique, never seen) and attribute values
// (within bit width). It does not mutate owner state.
func (o *Owner) checkNewRecords(db []Record) error {
	batch := make(map[uint64]struct{}, len(db))
	for _, rec := range db {
		if _, dup := o.seen[rec.ID]; dup {
			return fmt.Errorf("%w: %d", ErrDuplicateID, rec.ID)
		}
		if _, dup := batch[rec.ID]; dup {
			return fmt.Errorf("%w: %d appears twice in batch", ErrDuplicateID, rec.ID)
		}
		batch[rec.ID] = struct{}{}
		if len(rec.Attrs) == 0 {
			return fmt.Errorf("core: record %d has no attributes", rec.ID)
		}
		for _, av := range rec.Attrs {
			if o.params.Bits < 64 && av.Value >= 1<<uint(o.params.Bits) {
				return fmt.Errorf("core: record %d attr %q value %d exceeds %d bits",
					rec.ID, av.Name, av.Value, o.params.Bits)
			}
		}
	}
	return nil
}

// Build runs Algorithm 1 over the initial database, producing the encrypted
// index, the prime list X and the accumulation value Ac. It may be called
// once; later additions go through Insert.
func (o *Owner) Build(db []Record) (*UpdateOutput, error) {
	if o.built {
		return nil, fmt.Errorf("core: Build already ran; use Insert for updates")
	}
	if err := o.checkNewRecords(db); err != nil {
		return nil, err
	}
	groups, err := o.groupByKeyword(db)
	if err != nil {
		return nil, err
	}
	ix := store.NewIndex()
	// Deterministic keyword order keeps Build reproducible for tests; the
	// resulting dictionary is history independent regardless.
	keywords := sortedKeys(groups)

	indexStart := statsNow()
	commits := make([]primeInput, 0, len(keywords))
	for _, wStr := range keywords {
		w := []byte(wStr)
		t0, err := o.tsk.Sample()
		if err != nil {
			return nil, fmt.Errorf("sample trapdoor: %w", err)
		}
		o.states.Put(w, store.TrapdoorState{Trapdoor: t0, Epoch: 0})
		g1, g2 := o.g1g2(w)
		h, err := indexEntries(ix, g1, g2, t0, groups[wStr], mhash.Empty())
		if err != nil {
			return nil, err
		}
		o.setHashes.Put(store.SetHashKey(t0, 0, g1, g2), h)
		commits = append(commits, primeInput{t: t0, j: 0, g1: g1, g2: g2, h: h})
	}
	indexDur := statsNow().Sub(indexStart)

	adsStart := statsNow()
	primes := derivePrimes(commits)
	ac, err := o.acc.AccumulateFast(primes)
	if err != nil {
		return nil, err
	}
	o.ac = ac
	o.lastStats = UpdateStats{
		IndexDuration: indexDur,
		ADSDuration:   statsNow().Sub(adsStart),
		Keywords:      len(keywords),
		NewPrimes:     len(primes),
	}
	o.primes = primes
	for _, rec := range db {
		o.seen[rec.ID] = struct{}{}
	}
	o.built = true
	return &UpdateOutput{Index: ix, Primes: clonePrimes(primes), Ac: o.Ac()}, nil
}

// Insert runs Algorithm 2 over a batch of new records, producing the index
// delta, the new primes X⁺ and the updated accumulation value. Keywords that
// already exist have their trapdoor advanced with π_sk^{-1} (forward
// security) and their set hash carried over under the new epoch key.
func (o *Owner) Insert(db []Record) (*UpdateOutput, error) {
	if !o.built {
		return nil, ErrNotBuilt
	}
	if err := o.checkNewRecords(db); err != nil {
		return nil, err
	}
	groups, err := o.groupByKeyword(db)
	if err != nil {
		return nil, err
	}
	ix := store.NewIndex()
	keywords := sortedKeys(groups)

	indexStart := statsNow()
	commits := make([]primeInput, 0, len(keywords))
	for _, wStr := range keywords {
		w := []byte(wStr)
		g1, g2 := o.g1g2(w)
		var (
			t []byte
			j int
			h mhash.Hash
		)
		if st, ok := o.states.Get(w); !ok {
			h = mhash.Empty()
			t, err = o.tsk.Sample()
			if err != nil {
				return nil, fmt.Errorf("sample trapdoor: %w", err)
			}
			j = 0
		} else {
			old, ok := o.setHashes.Pop(store.SetHashKey(st.Trapdoor, st.Epoch, g1, g2))
			if !ok {
				return nil, fmt.Errorf("core: set hash missing for existing keyword")
			}
			h = old
			t, err = o.tsk.Inverse(st.Trapdoor)
			if err != nil {
				return nil, fmt.Errorf("advance trapdoor: %w", err)
			}
			j = st.Epoch + 1
		}
		o.states.Put(w, store.TrapdoorState{Trapdoor: t, Epoch: j})
		h, err = indexEntries(ix, g1, g2, t, groups[wStr], h)
		if err != nil {
			return nil, err
		}
		o.setHashes.Put(store.SetHashKey(t, j, g1, g2), h)
		commits = append(commits, primeInput{t: t, j: j, g1: g1, g2: g2, h: h})
	}
	indexDur := statsNow().Sub(indexStart)

	adsStart := statsNow()
	newPrimes := derivePrimes(commits)
	ac, err := o.acc.AddFast(o.ac, newPrimes)
	if err != nil {
		return nil, err
	}
	o.ac = ac
	o.lastStats = UpdateStats{
		IndexDuration: indexDur,
		ADSDuration:   statsNow().Sub(adsStart),
		Keywords:      len(keywords),
		NewPrimes:     len(newPrimes),
	}
	o.primes = append(o.primes, newPrimes...)
	for _, rec := range db {
		o.seen[rec.ID] = struct{}{}
	}
	return &UpdateOutput{Index: ix, Primes: clonePrimes(newPrimes), Ac: o.Ac()}, nil
}

// CloudInit exports the full cloud state after Build (and any number of
// Inserts). Use the per-call UpdateOutput deltas for incremental shipping.
func (o *Owner) CloudInit(full *store.Index) *CloudState {
	return &CloudState{
		Params:         o.params,
		AccumulatorPub: o.acc.Public(),
		TrapdoorPub:    o.TrapdoorPub(),
		Index:          full,
		Primes:         clonePrimes(o.primes),
		Ac:             o.Ac(),
	}
}

// statsNow feeds the UpdateStats instrumentation timings only; no
// protocol byte (index entries, primes, Ac) ever depends on it, so it is
// the single sanctioned wall-clock read in this package.
var statsNow = time.Now //slicer:allow wallclock -- instrumentation-only clock for UpdateStats; protocol output never reads it

func sortedKeys(m map[string][][]byte) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func clonePrimes(primes []*big.Int) []*big.Int {
	out := make([]*big.Int, len(primes))
	for i, p := range primes {
		out[i] = new(big.Int).Set(p)
	}
	return out
}
