package core

import (
	"errors"
	"fmt"
	"math/big"

	"slicer/internal/accumulator"
	"slicer/internal/mhash"
	"slicer/internal/obs"
)

// Verification phases, naming which check of Algorithm 5 a response failed.
const (
	// PhaseCompleteness: the response does not answer every requested token
	// exactly once (a lazy cloud dropped or padded results).
	PhaseCompleteness = "completeness"
	// PhaseOrder: a result answers a token the request never issued — the
	// response does not respect the requested token multiset.
	PhaseOrder = "order"
	// PhaseMembership: a result's accumulator membership proof is invalid
	// (tampered encrypted results, witness or stale accumulation value).
	PhaseMembership = "membership"
)

// VerificationError is the structured failure every verification path
// returns: it names the offending token result and the phase that rejected
// it, and unwraps to ErrVerification so existing errors.Is checks keep
// working. Audit evidence bundles persist these fields to attribute
// misbehavior after the fact.
type VerificationError struct {
	// TokenIndex is the index of the offending result in the response
	// (-1 for response-level failures that no single result explains).
	TokenIndex int
	// Phase is PhaseCompleteness, PhaseOrder or PhaseMembership.
	Phase string
	// Detail is a human-readable explanation.
	Detail string
}

func (e *VerificationError) Error() string {
	if e.TokenIndex < 0 {
		return fmt.Sprintf("%s: %s (phase %s)", ErrVerification.Error(), e.Detail, e.Phase)
	}
	return fmt.Sprintf("%s: token result %d: %s (phase %s)", ErrVerification.Error(), e.TokenIndex, e.Detail, e.Phase)
}

// Unwrap ties the structured error to the ErrVerification sentinel.
func (e *VerificationError) Unwrap() error { return ErrVerification }

// AsVerificationError extracts the structured verification failure from an
// error chain (nil, false when err is not a verification failure).
func AsVerificationError(err error) (*VerificationError, bool) {
	var ve *VerificationError
	if errors.As(err, &ve) {
		return ve, true
	}
	return nil, false
}

// VerifyTokenResult runs Algorithm 5 for a single token result against the
// accumulation value ac (fetched from the blockchain): recompute the
// multiset hash of the returned encrypted results, re-derive the prime
// representative and check the membership witness.
func VerifyTokenResult(pp *accumulator.PublicParams, ac *big.Int, res TokenResult) bool {
	h := mhash.OfMultiset(res.ER)
	x := tokenPrime(res.Token.Trapdoor, res.Token.Epoch, res.Token.G1, res.Token.G2, h)
	w, err := pp.DecodeValue(res.Witness)
	if err != nil {
		return false
	}
	return pp.VerifyMem(ac, x, w)
}

// VerifyResponse verifies a full search response against the request it
// answers. It enforces completeness at the response level too: the cloud
// must answer every requested token exactly once, otherwise a lazy cloud
// could silently drop tokens whose results it does not want to return.
//
// Algorithm 5 is independent per token result, so the per-result proof
// checks (multiset hash + hash-to-prime + witness modexp) fan out across
// one worker per available core. Use VerifyResponseWorkers to bound the
// fan-out (workers = 1 reproduces the serial loop exactly); either way the
// outcome — including which result's error is reported — is deterministic.
func VerifyResponse(pp *accumulator.PublicParams, ac *big.Int, req *SearchRequest, resp *SearchResponse) error {
	return VerifyResponseWorkers(pp, ac, req, resp, 0)
}

// VerifyResponseObserved is VerifyResponse with observability: the whole
// Algorithm-5 pass is timed into h and recorded as a "verify" span on tr.
// Either (or both) may be nil; the verification outcome is identical in
// every case.
func VerifyResponseObserved(pp *accumulator.PublicParams, ac *big.Int, req *SearchRequest, resp *SearchResponse, h *obs.Histogram, tr *obs.Trace) error {
	done := obs.StartPhase(h, tr, "verify")
	err := VerifyResponseWorkers(pp, ac, req, resp, 0)
	if err == nil {
		done() // failed verifications don't pollute the latency histogram
	}
	return err
}

// VerifyResponseWorkers is VerifyResponse with an explicit fan-out bound:
// 0 uses one worker per available core, 1 verifies serially.
func VerifyResponseWorkers(pp *accumulator.PublicParams, ac *big.Int, req *SearchRequest, resp *SearchResponse, workers int) error {
	if len(resp.Results) != len(req.Tokens) {
		return &VerificationError{TokenIndex: -1, Phase: PhaseCompleteness,
			Detail: fmt.Sprintf("%d results for %d tokens", len(resp.Results), len(req.Tokens))}
	}
	// Response-level completeness accounting is sequential (shared map,
	// negligible cost); only the per-result cryptographic checks fan out.
	remaining := make(map[string]int, len(req.Tokens))
	for _, tok := range req.Tokens {
		remaining[tokenKey(tok)]++
	}
	for i, res := range resp.Results {
		key := tokenKey(res.Token)
		if remaining[key] == 0 {
			return &VerificationError{TokenIndex: i, Phase: PhaseOrder,
				Detail: "answers a token that was not requested"}
		}
		remaining[key]--
	}
	return forEachIndexed(len(resp.Results), effectiveWorkers(workers), func(i int) error {
		if !VerifyTokenResult(pp, ac, resp.Results[i]) {
			return &VerificationError{TokenIndex: i, Phase: PhaseMembership,
				Detail: "invalid membership proof"}
		}
		return nil
	})
}

func tokenKey(tok SearchToken) string {
	key := make([]byte, 0, len(tok.Trapdoor)+8+len(tok.G1)+len(tok.G2))
	key = append(key, tok.Trapdoor...)
	key = append(key,
		byte(tok.Epoch>>56), byte(tok.Epoch>>48), byte(tok.Epoch>>40), byte(tok.Epoch>>32),
		byte(tok.Epoch>>24), byte(tok.Epoch>>16), byte(tok.Epoch>>8), byte(tok.Epoch))
	key = append(key, tok.G1...)
	return string(append(key, tok.G2...))
}
