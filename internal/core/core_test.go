package core

import (
	"testing"
)

// testParams keeps moduli small so the full protocol round-trips fast in
// unit tests. Security-parameter-sensitive behaviour is covered by the
// crypto packages' own tests.
func testParams(bits int) Params {
	return Params{Bits: bits, TrapdoorBits: 256, AccumulatorBits: 256}
}

type deployment struct {
	owner *Owner
	user  *User
	cloud *Cloud
}

func deploy(t *testing.T, bits int, db []Record, mode WitnessMode) *deployment {
	t.Helper()
	owner, err := NewOwner(testParams(bits))
	if err != nil {
		t.Fatalf("NewOwner: %v", err)
	}
	out, err := owner.Build(db)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	cloud, err := NewCloud(owner.CloudInit(out.Index), mode)
	if err != nil {
		t.Fatalf("NewCloud: %v", err)
	}
	user, err := NewUser(owner.ClientState())
	if err != nil {
		t.Fatalf("NewUser: %v", err)
	}
	return &deployment{owner: owner, user: user, cloud: cloud}
}

// search runs token generation, cloud search, public verification and
// decryption in sequence, failing the test on any error.
func (d *deployment) search(t *testing.T, q Query) []uint64 {
	t.Helper()
	req, err := d.user.Token(q)
	if err != nil {
		t.Fatalf("Token(%+v): %v", q, err)
	}
	resp, err := d.cloud.Search(req)
	if err != nil {
		t.Fatalf("Search(%+v): %v", q, err)
	}
	if err := VerifyResponse(d.owner.AccumulatorPub(), d.owner.Ac(), req, resp); err != nil {
		t.Fatalf("VerifyResponse(%+v): %v", q, err)
	}
	ids, err := d.user.Decrypt(resp)
	if err != nil {
		t.Fatalf("Decrypt(%+v): %v", q, err)
	}
	return ids
}

func wantIDs(db []Record, pred func(Record) bool) []uint64 {
	var out []uint64
	for _, r := range db {
		if pred(r) {
			out = append(out, r.ID)
		}
	}
	return out
}

func equalIDs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEndToEndSearch(t *testing.T) {
	db := []Record{
		NewRecord(1, 5), NewRecord(2, 8), NewRecord(3, 5),
		NewRecord(4, 0), NewRecord(5, 255), NewRecord(6, 100),
	}
	for _, mode := range []WitnessMode{WitnessCached, WitnessOnDemand} {
		d := deploy(t, 8, db, mode)
		tests := []struct {
			name string
			q    Query
			pred func(Record) bool
		}{
			{"equal-5", Equal(5), func(r Record) bool { return r.Attrs[0].Value == 5 }},
			{"equal-missing", Equal(7), func(r Record) bool { return false }},
			{"less-8", Less(8), func(r Record) bool { return r.Attrs[0].Value < 8 }},
			{"less-1", Less(1), func(r Record) bool { return r.Attrs[0].Value < 1 }},
			{"greater-5", Greater(5), func(r Record) bool { return r.Attrs[0].Value > 5 }},
			{"greater-254", Greater(254), func(r Record) bool { return r.Attrs[0].Value > 254 }},
			{"greater-255", Greater(255), func(r Record) bool { return false }},
		}
		for _, tc := range tests {
			got := d.search(t, tc.q)
			want := wantIDs(db, tc.pred)
			if !equalIDs(got, want) {
				t.Errorf("mode %v query %s: got %v, want %v", mode, tc.name, got, want)
			}
		}
	}
}

func TestInsertThenSearch(t *testing.T) {
	db := []Record{NewRecord(1, 10), NewRecord(2, 20)}
	d := deploy(t, 8, db, WitnessCached)

	// Search once so the inserted keyword epochs genuinely advance past a
	// searched state.
	if got := d.search(t, Less(15)); !equalIDs(got, []uint64{1}) {
		t.Fatalf("pre-insert Less(15): got %v, want [1]", got)
	}

	more := []Record{NewRecord(3, 10), NewRecord(4, 12), NewRecord(5, 200)}
	out, err := d.owner.Insert(more)
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if err := d.cloud.ApplyUpdate(out); err != nil {
		t.Fatalf("ApplyUpdate: %v", err)
	}
	d.user.UpdateStates(d.owner.StatesSnapshot())

	all := append(append([]Record(nil), db...), more...)
	checks := []struct {
		q    Query
		pred func(Record) bool
	}{
		{Equal(10), func(r Record) bool { return r.Attrs[0].Value == 10 }},
		{Less(15), func(r Record) bool { return r.Attrs[0].Value < 15 }},
		{Greater(19), func(r Record) bool { return r.Attrs[0].Value > 19 }},
	}
	for _, tc := range checks {
		got := d.search(t, tc.q)
		want := wantIDs(all, tc.pred)
		if !equalIDs(got, want) {
			t.Errorf("post-insert %v %d: got %v, want %v", tc.q.Op, tc.q.Value, got, want)
		}
	}
}

func TestMultiAttribute(t *testing.T) {
	db := []Record{
		{ID: 1, Attrs: []AttrValue{{Name: "age", Value: 30}, {Name: "weight", Value: 70}}},
		{ID: 2, Attrs: []AttrValue{{Name: "age", Value: 45}, {Name: "weight", Value: 80}}},
		{ID: 3, Attrs: []AttrValue{{Name: "age", Value: 30}, {Name: "weight", Value: 90}}},
	}
	d := deploy(t, 8, db, WitnessCached)

	if got := d.search(t, Query{Attr: "age", Op: OpEqual, Value: 30}); !equalIDs(got, []uint64{1, 3}) {
		t.Errorf("age=30: got %v, want [1 3]", got)
	}
	if got := d.search(t, Query{Attr: "weight", Op: OpGreater, Value: 75}); !equalIDs(got, []uint64{2, 3}) {
		t.Errorf("weight>75: got %v, want [2 3]", got)
	}
	// Attribute isolation: the value 70 exists under weight but not age.
	if got := d.search(t, Query{Attr: "age", Op: OpEqual, Value: 70}); len(got) != 0 {
		t.Errorf("age=70: got %v, want empty", got)
	}
}

func TestMaliciousCloudDetected(t *testing.T) {
	db := []Record{NewRecord(1, 5), NewRecord(2, 8), NewRecord(3, 5), NewRecord(4, 200)}
	d := deploy(t, 8, db, WitnessCached)
	pp, ac := d.owner.AccumulatorPub(), d.owner.Ac()

	req, err := d.user.Token(Equal(5))
	if err != nil {
		t.Fatalf("Token: %v", err)
	}
	honest, err := d.cloud.Search(req)
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if err := VerifyResponse(pp, ac, req, honest); err != nil {
		t.Fatalf("honest response rejected: %v", err)
	}

	tamper := []struct {
		name   string
		mutate func(*SearchResponse)
	}{
		{"drop-result", func(r *SearchResponse) {
			r.Results[0].ER = r.Results[0].ER[:len(r.Results[0].ER)-1]
		}},
		{"inject-result", func(r *SearchResponse) {
			fake := make([]byte, len(r.Results[0].ER[0]))
			copy(fake, r.Results[0].ER[0])
			fake[0] ^= 0xff
			r.Results[0].ER = append(r.Results[0].ER, fake)
		}},
		{"flip-byte", func(r *SearchResponse) {
			r.Results[0].ER[0][3] ^= 0x01
		}},
		{"duplicate-result", func(r *SearchResponse) {
			r.Results[0].ER = append(r.Results[0].ER, r.Results[0].ER[0])
		}},
		{"corrupt-witness", func(r *SearchResponse) {
			r.Results[0].Witness[len(r.Results[0].Witness)-1] ^= 0x01
		}},
		{"drop-token-result", func(r *SearchResponse) {
			r.Results = r.Results[:0]
		}},
	}
	for _, tc := range tamper {
		resp, err := d.cloud.Search(req)
		if err != nil {
			t.Fatalf("%s: re-search: %v", tc.name, err)
		}
		tc.mutate(resp)
		if err := VerifyResponse(pp, ac, req, resp); err == nil {
			t.Errorf("%s: tampered response passed verification", tc.name)
		}
	}
}

func TestStaleAcRejected(t *testing.T) {
	db := []Record{NewRecord(1, 5), NewRecord(2, 9)}
	d := deploy(t, 8, db, WitnessCached)
	staleAc := d.owner.Ac()

	out, err := d.owner.Insert([]Record{NewRecord(3, 5)})
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if err := d.cloud.ApplyUpdate(out); err != nil {
		t.Fatalf("ApplyUpdate: %v", err)
	}
	d.user.UpdateStates(d.owner.StatesSnapshot())

	req, err := d.user.Token(Equal(5))
	if err != nil {
		t.Fatalf("Token: %v", err)
	}
	resp, err := d.cloud.Search(req)
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	// Fresh Ac accepts; the pre-insert Ac must reject (freshness).
	if err := VerifyResponse(d.owner.AccumulatorPub(), d.owner.Ac(), req, resp); err != nil {
		t.Fatalf("fresh Ac rejected valid response: %v", err)
	}
	if err := VerifyResponse(d.owner.AccumulatorPub(), staleAc, req, resp); err == nil {
		t.Error("stale Ac accepted a post-insert response")
	}
}

func TestDuplicateIDRejected(t *testing.T) {
	owner, err := NewOwner(testParams(8))
	if err != nil {
		t.Fatalf("NewOwner: %v", err)
	}
	if _, err := owner.Build([]Record{NewRecord(1, 5), NewRecord(1, 6)}); err == nil {
		t.Fatal("Build accepted duplicate IDs in one batch")
	}
	owner, err = NewOwner(testParams(8))
	if err != nil {
		t.Fatalf("NewOwner: %v", err)
	}
	if _, err := owner.Build([]Record{NewRecord(1, 5)}); err != nil {
		t.Fatalf("Build: %v", err)
	}
	if _, err := owner.Insert([]Record{NewRecord(1, 9)}); err == nil {
		t.Fatal("Insert accepted an already-used record ID")
	}
}

func TestTwinDeleteAndUpdate(t *testing.T) {
	db := []Record{NewRecord(1, 5), NewRecord(2, 8), NewRecord(3, 5), NewRecord(4, 100)}
	owner, err := NewTwinOwner(testParams(8))
	if err != nil {
		t.Fatalf("NewTwinOwner: %v", err)
	}
	built, err := owner.Build(db)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	cloud, err := NewTwinCloud(
		owner.Add.CloudInit(built.Add.Index),
		owner.Del.CloudInit(built.Del.Index),
		WitnessCached,
	)
	if err != nil {
		t.Fatalf("NewTwinCloud: %v", err)
	}
	user, err := NewTwinUser(owner.ClientState())
	if err != nil {
		t.Fatalf("NewTwinUser: %v", err)
	}

	run := func(q Query) []uint64 {
		t.Helper()
		req, err := user.Token(q)
		if err != nil {
			t.Fatalf("Token: %v", err)
		}
		resp, err := cloud.Search(req)
		if err != nil {
			t.Fatalf("Search: %v", err)
		}
		if err := VerifyTwinResponse(
			owner.Add.AccumulatorPub(), owner.Del.AccumulatorPub(),
			owner.Add.Ac(), owner.Del.Ac(), req, resp); err != nil {
			t.Fatalf("VerifyTwinResponse: %v", err)
		}
		ids, err := user.Decrypt(resp)
		if err != nil {
			t.Fatalf("Decrypt: %v", err)
		}
		return ids
	}
	sync := func(up *TwinUpdate) {
		t.Helper()
		if err := cloud.ApplyUpdate(up); err != nil {
			t.Fatalf("ApplyUpdate: %v", err)
		}
		user.Add.UpdateStates(owner.Add.StatesSnapshot())
		user.Del.UpdateStates(owner.Del.StatesSnapshot())
	}

	if got := run(Equal(5)); !equalIDs(got, []uint64{1, 3}) {
		t.Fatalf("Equal(5) before delete: got %v, want [1 3]", got)
	}

	up, err := owner.Delete([]Record{NewRecord(3, 5)})
	if err != nil {
		t.Fatalf("Delete: %v", err)
	}
	sync(up)
	if got := run(Equal(5)); !equalIDs(got, []uint64{1}) {
		t.Errorf("Equal(5) after delete: got %v, want [1]", got)
	}
	if got := run(Less(9)); !equalIDs(got, []uint64{1, 2}) {
		t.Errorf("Less(9) after delete: got %v, want [1 2]", got)
	}

	// Update record 2 (value 8) to value 50 under a fresh ID 5.
	up, err = owner.Update(NewRecord(2, 8), NewRecord(5, 50))
	if err != nil {
		t.Fatalf("Update: %v", err)
	}
	sync(up)
	if got := run(Equal(8)); len(got) != 0 {
		t.Errorf("Equal(8) after update: got %v, want empty", got)
	}
	if got := run(Equal(50)); !equalIDs(got, []uint64{5}) {
		t.Errorf("Equal(50) after update: got %v, want [5]", got)
	}

	// Guard rails.
	if _, err := owner.Delete([]Record{NewRecord(3, 5)}); err == nil {
		t.Error("double delete accepted")
	}
	if _, err := owner.Delete([]Record{NewRecord(99, 1)}); err == nil {
		t.Error("delete of never-inserted record accepted")
	}
}

// TestForwardSecurity checks the unlinkability mechanism behind forward
// security: after an insert touches a previously searched keyword, the old
// search token no longer reaches the new entries (the new trapdoor is not
// derivable from the old one without the secret key), while a fresh token
// covers both epochs.
func TestForwardSecurity(t *testing.T) {
	db := []Record{NewRecord(1, 7)}
	d := deploy(t, 8, db, WitnessCached)

	oldReq, err := d.user.Token(Equal(7))
	if err != nil {
		t.Fatalf("Token: %v", err)
	}
	out, err := d.owner.Insert([]Record{NewRecord(2, 7)})
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if err := d.cloud.ApplyUpdate(out); err != nil {
		t.Fatalf("ApplyUpdate: %v", err)
	}

	// The cloud replays the OLD token against the updated index: it must
	// see only the pre-insert entries.
	oldResp, err := d.cloud.SearchResults(oldReq)
	if err != nil {
		t.Fatalf("SearchResults(old token): %v", err)
	}
	total := 0
	for _, r := range oldResp.Results {
		total += len(r.ER)
	}
	if total != 1 {
		t.Errorf("old token reached %d entries after insert, want 1 (forward security broken)", total)
	}

	// A fresh token must retrieve both records.
	d.user.UpdateStates(d.owner.StatesSnapshot())
	if got := d.search(t, Equal(7)); !equalIDs(got, []uint64{1, 2}) {
		t.Errorf("fresh token: got %v, want [1 2]", got)
	}
}
