package core

import (
	"path/filepath"
	"testing"

	"slicer/internal/analysis"
)

// TestVetGatesOverCore runs the flow-sensitive analyzers as a library over
// this package, mirroring the contract package's constant-time gate. Core
// owns the client's key material (PRF keys, trapdoor secrets, SORE
// states): secrettaint keeps it out of logs, error values and serialized
// payloads, and lockdiscipline keeps the shared client state race-free.
func TestVetGatesOverCore(t *testing.T) {
	root, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(filepath.Join(root, filepath.FromSlash("internal/core")))
	if err != nil {
		t.Fatal(err)
	}
	if pkg == nil {
		t.Fatal("no package at internal/core")
	}
	for _, terr := range pkg.TypeErrors {
		t.Fatalf("typecheck: %v", terr)
	}
	diags := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{
		analysis.SecretTaint,
		analysis.LockDiscipline,
	})
	for _, d := range diags {
		t.Errorf("slicer-vet gate violation in core: %s", d)
	}
}
