package core

import (
	"testing"
)

// TestOwnerPersistRoundTrip serializes an owner mid-deployment, restores it
// in a "new process", and checks that the restored owner can continue the
// protocol: insert more records, issue consistent client states, and keep
// producing verifiable state.
func TestOwnerPersistRoundTrip(t *testing.T) {
	db := []Record{NewRecord(1, 5), NewRecord(2, 9), NewRecord(3, 5)}
	owner, err := NewOwner(testParams(8))
	if err != nil {
		t.Fatalf("NewOwner: %v", err)
	}
	built, err := owner.Build(db)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	cloud, err := NewCloud(owner.CloudInit(built.Index), WitnessCached)
	if err != nil {
		t.Fatalf("NewCloud: %v", err)
	}

	blob, err := owner.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	restored, err := UnmarshalOwner(blob)
	if err != nil {
		t.Fatalf("UnmarshalOwner: %v", err)
	}

	// The restored owner must agree on Ac and parameters.
	if restored.Ac().Cmp(owner.Ac()) != 0 {
		t.Fatal("restored Ac differs")
	}
	if restored.Params() != owner.Params() {
		t.Fatal("restored params differ")
	}

	// Users derived before and after restoration interoperate.
	user, err := NewUser(restored.ClientState())
	if err != nil {
		t.Fatalf("NewUser: %v", err)
	}
	req, err := user.Token(Equal(5))
	if err != nil {
		t.Fatalf("Token: %v", err)
	}
	resp, err := cloud.Search(req)
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if err := VerifyResponse(restored.AccumulatorPub(), restored.Ac(), req, resp); err != nil {
		t.Fatalf("verification with restored owner: %v", err)
	}
	ids, err := user.Decrypt(resp)
	if err != nil {
		t.Fatalf("Decrypt: %v", err)
	}
	if !equalIDs(ids, []uint64{1, 3}) {
		t.Fatalf("Equal(5) via restored owner = %v, want [1 3]", ids)
	}

	// The restored owner continues the protocol: insert (trapdoor chains
	// must advance from the persisted state), ship, search, verify.
	up, err := restored.Insert([]Record{NewRecord(4, 5)})
	if err != nil {
		t.Fatalf("Insert on restored owner: %v", err)
	}
	if err := cloud.ApplyUpdate(up); err != nil {
		t.Fatalf("ApplyUpdate: %v", err)
	}
	user.UpdateStates(restored.StatesSnapshot())
	req, err = user.Token(Equal(5))
	if err != nil {
		t.Fatalf("Token: %v", err)
	}
	resp, err = cloud.Search(req)
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if err := VerifyResponse(restored.AccumulatorPub(), restored.Ac(), req, resp); err != nil {
		t.Fatalf("post-insert verification: %v", err)
	}
	ids, err = user.Decrypt(resp)
	if err != nil {
		t.Fatalf("Decrypt: %v", err)
	}
	if !equalIDs(ids, []uint64{1, 3, 4}) {
		t.Fatalf("Equal(5) after restored insert = %v, want [1 3 4]", ids)
	}

	// Duplicate-ID protection survives persistence.
	if _, err := restored.Insert([]Record{NewRecord(1, 7)}); err == nil {
		t.Error("restored owner accepted a duplicate ID")
	}
}

func TestUnmarshalOwnerRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalOwner([]byte("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := UnmarshalOwner([]byte(`{"params":{"Bits":0}}`)); err == nil {
		t.Error("invalid params accepted")
	}
}
