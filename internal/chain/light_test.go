package chain

import (
	"testing"
)

// lightFixture seals a few blocks carrying logged transactions and returns
// the network plus the hash of a tx whose receipt carries a log.
func lightFixture(t *testing.T) (*Network, []Address, Hash) {
	t.Helper()
	vals := []Address{AddressFromString("lv0"), AddressFromString("lv1")}
	alice := AddressFromString("alice")
	registry := NewRegistry()
	if err := registry.Register("logger", func() Contract { return loggerContract{} }); err != nil {
		t.Fatal(err)
	}
	net, err := NewNetwork(registry, vals, map[Address]uint64{alice: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	mine := func(tx *Transaction) *Receipt {
		t.Helper()
		if err := net.SubmitTx(tx); err != nil {
			t.Fatal(err)
		}
		if _, err := net.Step(); err != nil {
			t.Fatal(err)
		}
		r, ok := net.Leader().Receipt(tx.Hash())
		if !ok || !r.Status {
			t.Fatalf("tx failed: %+v", r)
		}
		return r
	}
	deploy := &Transaction{
		From: alice, Nonce: 0, GasLimit: 10_000_000,
		Data: CreationCode("logger", []byte{0xfe}, nil),
	}
	rc := mine(deploy)
	logTx := &Transaction{
		From: alice, To: rc.ContractAddress, Nonce: 1, GasLimit: 1_000_000,
		Data: []byte("payload"),
	}
	mine(logTx)
	// One more block of plain transfers so the log block is not the tip.
	mine(&Transaction{From: alice, To: AddressFromString("bob"), Nonce: 2, Value: 1, GasLimit: 100_000})
	return net, vals, logTx.Hash()
}

// loggerContract emits one log per call, topic = hash of "logged".
type loggerContract struct{}

var topicLogged = HashBytes([]byte("logged"))

func (loggerContract) Init(ctx *CallCtx, initData []byte) error { return nil }

func (loggerContract) Call(ctx *CallCtx, input []byte) ([]byte, error) {
	return nil, ctx.EmitLog([]Hash{topicLogged}, input)
}

func TestLightClientFollowsChain(t *testing.T) {
	net, vals, logTxHash := lightFixture(t)
	node := net.Leader()
	lc, err := NewLightClient(node.BlockByNumber(0).Header, vals)
	if err != nil {
		t.Fatalf("NewLightClient: %v", err)
	}
	if err := lc.Sync(node); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if lc.Height() != node.Height() {
		t.Fatalf("light height %d, node height %d", lc.Height(), node.Height())
	}

	proof, err := node.ProveReceiptByTx(logTxHash)
	if err != nil {
		t.Fatalf("ProveReceiptByTx: %v", err)
	}
	if err := lc.VerifyReceipt(proof); err != nil {
		t.Fatalf("VerifyReceipt: %v", err)
	}
	log, ok := FindLog(proof.Receipt, topicLogged)
	if !ok {
		t.Fatal("logged event missing from verified receipt")
	}
	if string(log.Data) != "payload" {
		t.Errorf("log data = %q", log.Data)
	}
}

func TestLightClientRejectsForgedProofs(t *testing.T) {
	net, vals, logTxHash := lightFixture(t)
	node := net.Leader()
	lc, err := NewLightClient(node.BlockByNumber(0).Header, vals)
	if err != nil {
		t.Fatal(err)
	}
	if err := lc.Sync(node); err != nil {
		t.Fatal(err)
	}
	proof, err := node.ProveReceiptByTx(logTxHash)
	if err != nil {
		t.Fatal(err)
	}

	// Tampered log data.
	forged := *proof
	forgedReceipt := *proof.Receipt
	forgedReceipt.Logs = []Log{{Address: proof.Receipt.Logs[0].Address,
		Topics: proof.Receipt.Logs[0].Topics, Data: []byte("forged")}}
	forged.Receipt = &forgedReceipt
	if err := lc.VerifyReceipt(&forged); err == nil {
		t.Error("forged log data accepted")
	}

	// Wrong block.
	misplaced := *proof
	misplaced.BlockNumber = proof.BlockNumber + 1
	if err := lc.VerifyReceipt(&misplaced); err == nil {
		t.Error("misplaced proof accepted")
	}

	// Future block.
	future := *proof
	future.BlockNumber = 99
	if err := lc.VerifyReceipt(&future); err == nil {
		t.Error("future-block proof accepted")
	}
	if err := lc.VerifyReceipt(nil); err == nil {
		t.Error("nil proof accepted")
	}
}

func TestLightClientHeaderValidation(t *testing.T) {
	net, vals, _ := lightFixture(t)
	node := net.Leader()
	lc, err := NewLightClient(node.BlockByNumber(0).Header, vals)
	if err != nil {
		t.Fatal(err)
	}

	// Skipping a header fails.
	if err := lc.AddHeader(node.BlockByNumber(2).Header); err == nil {
		t.Error("gap header accepted")
	}
	// Wrong proposer fails.
	h := node.BlockByNumber(1).Header
	h.Proposer = AddressFromString("mallory")
	if err := lc.AddHeader(h); err == nil {
		t.Error("wrong-proposer header accepted")
	}
	// Broken parent link fails.
	h = node.BlockByNumber(1).Header
	h.ParentHash = HashBytes([]byte("bogus"))
	if err := lc.AddHeader(h); err == nil {
		t.Error("broken-link header accepted")
	}
	// The genuine header chain is accepted.
	if err := lc.AddHeader(node.BlockByNumber(1).Header); err != nil {
		t.Errorf("genuine header rejected: %v", err)
	}

	if _, err := NewLightClient(node.BlockByNumber(1).Header, vals); err == nil {
		t.Error("non-genesis start accepted")
	}
	if _, err := NewLightClient(node.BlockByNumber(0).Header, nil); err == nil {
		t.Error("empty validator set accepted")
	}
}

func TestLogsByTopic(t *testing.T) {
	net, _, _ := lightFixture(t)
	node := net.Leader()
	logs := node.LogsByTopic(topicLogged, 0, node.Height())
	if len(logs) != 1 {
		t.Fatalf("found %d logs, want 1", len(logs))
	}
	if string(logs[0].Log.Data) != "payload" {
		t.Errorf("log data = %q", logs[0].Log.Data)
	}
	if logs := node.LogsByTopic(HashBytes([]byte("other")), 0, node.Height()); len(logs) != 0 {
		t.Errorf("unexpected logs for unrelated topic: %d", len(logs))
	}
	// Out-of-range 'to' is clamped rather than panicking.
	if logs := node.LogsByTopic(topicLogged, 0, 10_000); len(logs) != 1 {
		t.Errorf("clamped range lost the log: %d", len(logs))
	}
}

func TestProveReceiptErrors(t *testing.T) {
	net, _, _ := lightFixture(t)
	node := net.Leader()
	if _, err := node.ProveReceipt(99, 0); err == nil {
		t.Error("missing block accepted")
	}
	if _, err := node.ProveReceipt(1, 5); err == nil {
		t.Error("missing receipt index accepted")
	}
	if _, err := node.ProveReceiptByTx(HashBytes([]byte("nothing"))); err == nil {
		t.Error("unknown tx accepted")
	}
}
