package chain

import (
	"errors"
	"math/big"
)

// Gas schedule. Constants follow the Ethereum yellow paper / EIP-2028 /
// EIP-2565 values so that metered costs are comparable with the paper's
// Rinkeby measurements.
const (
	// TxGas is the base cost of any transaction.
	TxGas uint64 = 21000
	// TxCreateGas is the additional base cost of contract creation.
	TxCreateGas uint64 = 32000
	// TxDataZeroGas / TxDataNonZeroGas price calldata bytes (EIP-2028).
	TxDataZeroGas    uint64 = 4
	TxDataNonZeroGas uint64 = 16
	// CreateDataGas prices each byte of deployed contract code.
	CreateDataGas uint64 = 200
	// SloadGas prices a storage read.
	SloadGas uint64 = 800
	// SstoreSetGas prices writing a zero slot to non-zero.
	SstoreSetGas uint64 = 20000
	// SstoreResetGas prices overwriting a non-zero slot.
	SstoreResetGas uint64 = 5000
	// HashBaseGas / HashWordGas price hashing (KECCAK256 schedule).
	HashBaseGas uint64 = 30
	HashWordGas uint64 = 6
	// LogGas / LogTopicGas / LogDataGas price event emission.
	LogGas      uint64 = 375
	LogTopicGas uint64 = 375
	LogDataGas  uint64 = 8
	// CallValueTransferGas prices a value transfer out of a contract.
	CallValueTransferGas uint64 = 9000
	// FieldMulGas prices one 256-bit modular multiplication (MULMOD).
	FieldMulGas uint64 = 8
	// ModExpMinGas is the EIP-2565 floor for the modexp precompile.
	ModExpMinGas uint64 = 200
)

// ErrOutOfGas is returned when a transaction exhausts its gas limit. The
// whole transaction reverts.
var ErrOutOfGas = errors.New("chain: out of gas")

// IntrinsicGas computes the gas charged before execution starts: the base
// cost plus calldata pricing (and the creation surcharge).
func IntrinsicGas(data []byte, create bool) uint64 {
	gas := TxGas
	if create {
		gas += TxCreateGas
	}
	for _, b := range data {
		if b == 0 {
			gas += TxDataZeroGas
		} else {
			gas += TxDataNonZeroGas
		}
	}
	return gas
}

// HashGas prices hashing n bytes.
func HashGas(n int) uint64 {
	words := uint64((n + 31) / 32)
	return HashBaseGas + HashWordGas*words
}

// LogCost prices an event with the given topic count and payload size.
func LogCost(topics, dataLen int) uint64 {
	return LogGas + LogTopicGas*uint64(topics) + LogDataGas*uint64(dataLen)
}

// ModExpGas prices a modular exponentiation per EIP-2565:
//
//	mult_complexity = ceil(max(len(base), len(mod))/8)^2
//	iterations      = max(bitlen(exp)-1, 1)        (exponents <= 32 bytes)
//	gas             = max(200, mult_complexity * iterations / 3)
//
// Exponents longer than 32 bytes get the EIP's extended iteration count.
func ModExpGas(baseLen, modLen int, exp *big.Int) uint64 {
	maxLen := baseLen
	if modLen > maxLen {
		maxLen = modLen
	}
	words := uint64((maxLen + 7) / 8)
	mult := words * words

	expLen := (exp.BitLen() + 7) / 8
	var iters uint64
	if expLen <= 32 {
		if exp.BitLen() > 1 {
			iters = uint64(exp.BitLen() - 1)
		} else {
			iters = 1
		}
	} else {
		head := new(big.Int).Rsh(exp, uint(8*(expLen-32)))
		iters = 8*uint64(expLen-32) + uint64(max(head.BitLen()-1, 1))
	}
	gas := mult * iters / 3
	if gas < ModExpMinGas {
		return ModExpMinGas
	}
	return gas
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Meter tracks gas consumption against a limit.
type Meter struct {
	limit uint64
	used  uint64
}

// NewMeter creates a meter with the given limit.
func NewMeter(limit uint64) *Meter {
	return &Meter{limit: limit}
}

// Use consumes gas, returning ErrOutOfGas if the limit is exceeded.
func (m *Meter) Use(gas uint64) error {
	if m.used+gas > m.limit || m.used+gas < m.used {
		m.used = m.limit
		return ErrOutOfGas
	}
	m.used += gas
	return nil
}

// Used reports gas consumed so far.
func (m *Meter) Used() uint64 { return m.used }

// Remaining reports gas left.
func (m *Meter) Remaining() uint64 { return m.limit - m.used }
