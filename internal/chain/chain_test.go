package chain

import (
	"errors"
	"math/big"
	"testing"
	"testing/quick"
)

func TestMerkleRootProperties(t *testing.T) {
	empty := MerkleRoot(nil)
	single := MerkleRoot([]Hash{HashBytes([]byte("a"))})
	if empty == single {
		t.Error("empty and singleton roots collide")
	}
	a := []Hash{HashBytes([]byte("a")), HashBytes([]byte("b")), HashBytes([]byte("c"))}
	b := []Hash{HashBytes([]byte("a")), HashBytes([]byte("c")), HashBytes([]byte("b"))}
	if MerkleRoot(a) == MerkleRoot(b) {
		t.Error("leaf order does not affect the root")
	}
	if MerkleRoot(a) != MerkleRoot(a) {
		t.Error("root not deterministic")
	}
}

func TestMerkleProofs(t *testing.T) {
	f := func(seeds []byte) bool {
		if len(seeds) == 0 {
			return true
		}
		leaves := make([]Hash, len(seeds))
		for i, s := range seeds {
			leaves[i] = HashBytes([]byte{s, byte(i)})
		}
		root := MerkleRoot(leaves)
		for i := range leaves {
			proof, err := ProveLeaf(leaves, i)
			if err != nil {
				return false
			}
			if !VerifyLeaf(root, leaves[i], proof) {
				return false
			}
			// A proof must not validate a different leaf.
			wrong := HashBytes([]byte("forged"))
			if VerifyLeaf(root, wrong, proof) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
	if _, err := ProveLeaf([]Hash{HashBytes(nil)}, 5); err == nil {
		t.Error("out-of-range proof index accepted")
	}
	if VerifyLeaf(HashBytes(nil), HashBytes(nil), nil) {
		t.Error("nil proof accepted")
	}
}

func TestStateJournalRevert(t *testing.T) {
	st := NewState()
	a := AddressFromString("a")
	st.SetBalance(a, 100)
	st.DiscardJournal()

	cp := st.Checkpoint()
	st.Credit(a, 50)
	st.BumpNonce(a)
	st.SetCode(a, []byte{1, 2, 3})
	st.SetStorage(a, Slot{1}, Slot{9})
	preRoot := st.Root()
	st.Revert(cp)
	if st.Balance(a) != 100 {
		t.Errorf("balance after revert = %d, want 100", st.Balance(a))
	}
	if st.Nonce(a) != 0 {
		t.Errorf("nonce after revert = %d, want 0", st.Nonce(a))
	}
	if st.Code(a) != nil {
		t.Error("code survived revert")
	}
	if _, ok := st.GetStorage(a, Slot{1}); ok {
		t.Error("storage survived revert")
	}
	if st.Root() == preRoot {
		t.Error("root unchanged by revert")
	}
}

func TestStateNestedRevert(t *testing.T) {
	st := NewState()
	a := AddressFromString("a")
	cp1 := st.Checkpoint()
	st.SetStorage(a, Slot{1}, Slot{1})
	cp2 := st.Checkpoint()
	st.SetStorage(a, Slot{1}, Slot{2})
	st.Revert(cp2)
	if v, _ := st.GetStorage(a, Slot{1}); v != (Slot{1}) {
		t.Errorf("inner revert: slot = %v, want {1}", v)
	}
	st.Revert(cp1)
	if _, ok := st.GetStorage(a, Slot{1}); ok {
		t.Error("outer revert left storage behind")
	}
}

func TestStateDebit(t *testing.T) {
	st := NewState()
	a := AddressFromString("a")
	st.SetBalance(a, 10)
	if err := st.Debit(a, 11); err == nil {
		t.Error("overdraft allowed")
	}
	if err := st.Debit(a, 10); err != nil {
		t.Errorf("full debit rejected: %v", err)
	}
	if st.Balance(a) != 0 {
		t.Errorf("balance = %d, want 0", st.Balance(a))
	}
}

func TestStateRootCoversEverything(t *testing.T) {
	base := func() *State {
		st := NewState()
		st.SetBalance(AddressFromString("x"), 5)
		st.SetStorage(AddressFromString("c"), Slot{1}, Slot{2})
		st.SetCode(AddressFromString("c"), []byte{0xaa})
		return st
	}
	root := base().Root()
	mutations := []func(*State){
		func(s *State) { s.Credit(AddressFromString("x"), 1) },
		func(s *State) { s.BumpNonce(AddressFromString("x")) },
		func(s *State) { s.SetStorage(AddressFromString("c"), Slot{1}, Slot{3}) },
		func(s *State) { s.SetStorage(AddressFromString("c"), Slot{2}, Slot{2}) },
		func(s *State) { s.SetCode(AddressFromString("c"), []byte{0xbb}) },
		func(s *State) { s.SetBalance(AddressFromString("new"), 1) },
	}
	for i, mutate := range mutations {
		st := base()
		mutate(st)
		if st.Root() == root {
			t.Errorf("mutation %d did not change the state root", i)
		}
	}
	if base().Root() != root {
		t.Error("identical states have different roots")
	}
}

func TestStateClone(t *testing.T) {
	st := NewState()
	a := AddressFromString("a")
	st.SetBalance(a, 7)
	st.SetStorage(a, Slot{1}, Slot{1})
	clone := st.Clone()
	st.SetBalance(a, 9)
	st.SetStorage(a, Slot{1}, Slot{2})
	if clone.Balance(a) != 7 {
		t.Error("clone balance tracked the original")
	}
	if v, _ := clone.GetStorage(a, Slot{1}); v != (Slot{1}) {
		t.Error("clone storage tracked the original")
	}
}

func TestIntrinsicGas(t *testing.T) {
	if got := IntrinsicGas(nil, false); got != TxGas {
		t.Errorf("empty tx gas = %d, want %d", got, TxGas)
	}
	data := []byte{0, 1, 0, 2}
	want := TxGas + 2*TxDataZeroGas + 2*TxDataNonZeroGas
	if got := IntrinsicGas(data, false); got != want {
		t.Errorf("data tx gas = %d, want %d", got, want)
	}
	if got := IntrinsicGas(nil, true); got != TxGas+TxCreateGas {
		t.Errorf("create tx gas = %d, want %d", got, TxGas+TxCreateGas)
	}
}

func TestModExpGas(t *testing.T) {
	// EIP-2565 reference point: 1024-bit base/modulus, 128-bit exponent.
	exp := new(big.Int).Lsh(big.NewInt(1), 127)
	got := ModExpGas(128, 128, exp)
	// words = 16, mult = 256, iters = 127 -> 256*127/3 = 10837.
	if got != 10837 {
		t.Errorf("ModExpGas(128,128,2^127) = %d, want 10837", got)
	}
	// Floor applies to small inputs.
	if got := ModExpGas(16, 16, big.NewInt(3)); got != ModExpMinGas {
		t.Errorf("small modexp = %d, want floor %d", got, ModExpMinGas)
	}
	// Long exponents use the extended iteration count (monotone growth).
	longExp := new(big.Int).Lsh(big.NewInt(1), 300)
	if ModExpGas(128, 128, longExp) <= got {
		t.Error("long exponent not priced higher")
	}
}

func TestMeter(t *testing.T) {
	m := NewMeter(100)
	if err := m.Use(60); err != nil {
		t.Fatalf("Use(60): %v", err)
	}
	if m.Used() != 60 || m.Remaining() != 40 {
		t.Errorf("Used=%d Remaining=%d", m.Used(), m.Remaining())
	}
	if err := m.Use(41); !errors.Is(err, ErrOutOfGas) {
		t.Errorf("overuse err = %v, want ErrOutOfGas", err)
	}
	if m.Used() != 100 {
		t.Errorf("Used after out-of-gas = %d, want 100 (all gas burned)", m.Used())
	}
}

// newTestNode builds a single-validator node with two funded accounts.
func newTestNode(t *testing.T) (*Node, Address, Address) {
	t.Helper()
	alice := AddressFromString("alice")
	bob := AddressFromString("bob")
	val := AddressFromString("val")
	node, err := NewNode(Config{
		Identity:   val,
		Registry:   NewRegistry(),
		Validators: []Address{val},
		GenesisAlloc: map[Address]uint64{
			alice: 1000, bob: 50,
		},
	})
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	return node, alice, bob
}

func TestTransferAndReceipts(t *testing.T) {
	node, alice, bob := newTestNode(t)
	tx := &Transaction{From: alice, To: bob, Nonce: 0, Value: 300, GasLimit: 100000}
	if err := node.SubmitTx(tx); err != nil {
		t.Fatalf("SubmitTx: %v", err)
	}
	block, err := node.SealBlock()
	if err != nil {
		t.Fatalf("SealBlock: %v", err)
	}
	if block.Header.Number != 1 || len(block.Txs) != 1 {
		t.Fatalf("unexpected block: %+v", block.Header)
	}
	r, ok := node.Receipt(tx.Hash())
	if !ok || !r.Status {
		t.Fatalf("receipt = %+v, %v", r, ok)
	}
	if r.GasUsed != TxGas {
		t.Errorf("transfer gas = %d, want %d", r.GasUsed, TxGas)
	}
	if node.Balance(alice) != 700 || node.Balance(bob) != 350 {
		t.Errorf("balances = %d, %d", node.Balance(alice), node.Balance(bob))
	}
}

func TestInsufficientBalanceReverts(t *testing.T) {
	node, alice, bob := newTestNode(t)
	tx := &Transaction{From: bob, To: alice, Nonce: 0, Value: 500, GasLimit: 100000}
	if err := node.SubmitTx(tx); err != nil {
		t.Fatalf("SubmitTx: %v", err)
	}
	if _, err := node.SealBlock(); err != nil {
		t.Fatalf("SealBlock: %v", err)
	}
	r, _ := node.Receipt(tx.Hash())
	if r.Status {
		t.Error("overdraft transaction succeeded")
	}
	if node.Balance(bob) != 50 {
		t.Errorf("bob's balance changed: %d", node.Balance(bob))
	}
	if node.Nonce(bob) != 1 {
		t.Errorf("failed tx did not bump the nonce: %d", node.Nonce(bob))
	}
}

func TestNonceEnforcement(t *testing.T) {
	node, alice, bob := newTestNode(t)
	if err := node.SubmitTx(&Transaction{From: alice, To: bob, Nonce: 5, Value: 1, GasLimit: 100000}); err == nil {
		t.Error("wrong nonce accepted")
	}
	if err := node.SubmitTx(&Transaction{From: alice, To: bob, Nonce: 0, Value: 1, GasLimit: 100000}); err != nil {
		t.Fatalf("SubmitTx: %v", err)
	}
	// NextNonce accounts for pooled txs.
	if got := node.NextNonce(alice); got != 1 {
		t.Errorf("NextNonce = %d, want 1", got)
	}
	if err := node.SubmitTx(&Transaction{From: alice, To: bob, Nonce: 1, Value: 1, GasLimit: 100000}); err != nil {
		t.Fatalf("second SubmitTx: %v", err)
	}
	if err := node.SubmitTx(&Transaction{From: alice, To: bob, Nonce: 0, Value: 1, GasLimit: 0}); err == nil {
		t.Error("zero gas limit accepted")
	}
}

func TestNetworkConsensus(t *testing.T) {
	vals := []Address{AddressFromString("v0"), AddressFromString("v1"), AddressFromString("v2")}
	alice := AddressFromString("alice")
	bob := AddressFromString("bob")
	net, err := NewNetwork(NewRegistry(), vals, map[Address]uint64{alice: 1000})
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	for i := 0; i < 5; i++ {
		tx := &Transaction{From: alice, To: bob, Nonce: uint64(i), Value: 10, GasLimit: 100000}
		if err := net.SubmitTx(tx); err != nil {
			t.Fatalf("SubmitTx: %v", err)
		}
		block, err := net.Step()
		if err != nil {
			t.Fatalf("Step %d: %v", i, err)
		}
		// Round-robin proposers.
		want := vals[uint64(i)%uint64(len(vals))]
		if block.Header.Proposer != want {
			t.Errorf("block %d proposer = %s, want %s", i+1, block.Header.Proposer, want)
		}
	}
	// All nodes agree on height, head hash and state.
	head := net.Leader().Head().Hash()
	for _, node := range net.Nodes() {
		if node.Height() != 5 {
			t.Errorf("node %s height = %d", node.identity, node.Height())
		}
		if node.Head().Hash() != head {
			t.Errorf("node %s diverged from the head", node.identity)
		}
		if node.Balance(bob) != 50 {
			t.Errorf("node %s balance(bob) = %d, want 50", node.identity, node.Balance(bob))
		}
	}
}

func TestImportBlockValidation(t *testing.T) {
	vals := []Address{AddressFromString("v0"), AddressFromString("v1")}
	alice := AddressFromString("alice")
	net, err := NewNetwork(NewRegistry(), vals, map[Address]uint64{alice: 1000})
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	proposer := net.Node(vals[0])
	follower := net.Node(vals[1])
	tx := &Transaction{From: alice, To: AddressFromString("bob"), Nonce: 0, Value: 10, GasLimit: 100000}
	if err := proposer.SubmitTx(tx); err != nil {
		t.Fatal(err)
	}
	block, err := proposer.SealBlock()
	if err != nil {
		t.Fatalf("SealBlock: %v", err)
	}

	// Tampered value: the tx root no longer matches.
	tampered := *block
	tamperedTx := *tx
	tamperedTx.Value = 999
	tampered.Txs = []*Transaction{&tamperedTx}
	if err := follower.ImportBlock(&tampered); err == nil {
		t.Error("tampered block imported")
	}

	// Wrong proposer.
	badProposer := *block
	badProposer.Header.Proposer = vals[1]
	if err := follower.ImportBlock(&badProposer); err == nil {
		t.Error("wrong-proposer block imported")
	}

	// Wrong state root (tamper after sealing).
	badRoot := *block
	badRoot.Header.StateRoot = HashBytes([]byte("bogus"))
	if err := follower.ImportBlock(&badRoot); err == nil {
		t.Error("bad-state-root block imported")
	}
	// The follower's state must be intact after the rejected imports.
	if follower.Balance(alice) != 1000 {
		t.Errorf("follower state corrupted: balance %d", follower.Balance(alice))
	}

	// The genuine block imports cleanly.
	if err := follower.ImportBlock(block); err != nil {
		t.Fatalf("valid block rejected: %v", err)
	}
	if follower.Balance(alice) != 990 {
		t.Errorf("post-import balance = %d, want 990", follower.Balance(alice))
	}
	// Replaying the same block must fail (height check).
	if err := follower.ImportBlock(block); err == nil {
		t.Error("replayed block imported")
	}
}

func TestSealBlockOnlyByProposer(t *testing.T) {
	vals := []Address{AddressFromString("v0"), AddressFromString("v1")}
	net, err := NewNetwork(NewRegistry(), vals, nil)
	if err != nil {
		t.Fatalf("NewNetwork: %v", err)
	}
	// Block 1's proposer is v0; v1 must refuse to seal.
	if _, err := net.Node(vals[1]).SealBlock(); err == nil {
		t.Error("non-proposer sealed a block")
	}
	if !net.Node(vals[0]).IsProposer() {
		t.Error("v0 should be the proposer of block 1")
	}
}

func TestRunDrainsPool(t *testing.T) {
	vals := []Address{AddressFromString("v0"), AddressFromString("v1")}
	alice := AddressFromString("alice")
	net, err := NewNetwork(NewRegistry(), vals, map[Address]uint64{alice: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := net.SubmitTx(&Transaction{
			From: alice, To: AddressFromString("bob"),
			Nonce: uint64(i), Value: 1, GasLimit: 100000,
		}); err != nil {
			t.Fatal(err)
		}
	}
	blocks, err := net.Run(10)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(blocks) == 0 {
		t.Fatal("Run sealed no blocks")
	}
	if net.Leader().PendingCount() != 0 {
		t.Error("pool not drained")
	}
}
