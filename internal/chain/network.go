package chain

import (
	"fmt"
	"time"
)

// Network wires a set of nodes into an in-process proof-of-authority
// network: transactions are broadcast to every pool, and each Step seals a
// block on the scheduled proposer and imports it everywhere else. It is the
// consensus substrate for multi-node tests and the distributed example; the
// wire package exposes the same operations over TCP.
type Network struct {
	nodes  []*Node
	byAddr map[Address]*Node
}

// NewNetwork creates a network of nodes sharing a genesis configuration.
// One node is created per validator; blocks are stamped with the wall
// clock.
func NewNetwork(registry *Registry, validators []Address, genesisAlloc map[Address]uint64) (*Network, error) {
	return NewNetworkWithClock(registry, validators, genesisAlloc, nil)
}

// NewNetworkWithClock is NewNetwork with an injected block-timestamp
// clock (nil means the wall clock). Deterministic consensus tests pass a
// fixed clock so every sealed block — and therefore every block hash —
// is reproducible byte-for-byte.
func NewNetworkWithClock(registry *Registry, validators []Address, genesisAlloc map[Address]uint64, now func() time.Time) (*Network, error) {
	if len(validators) == 0 {
		return nil, fmt.Errorf("chain: network needs at least one validator")
	}
	net := &Network{byAddr: make(map[Address]*Node, len(validators))}
	for _, v := range validators {
		node, err := NewNode(Config{
			Identity:     v,
			Registry:     registry,
			Validators:   validators,
			GenesisAlloc: genesisAlloc,
			Now:          now,
		})
		if err != nil {
			return nil, err
		}
		net.nodes = append(net.nodes, node)
		net.byAddr[v] = node
	}
	return net, nil
}

// Nodes returns the participating nodes.
func (n *Network) Nodes() []*Node { return n.nodes }

// Node returns the validator's node.
func (n *Network) Node(v Address) *Node { return n.byAddr[v] }

// Leader returns any node (they share state); convenient for reads.
func (n *Network) Leader() *Node { return n.nodes[0] }

// SubmitTx broadcasts a transaction to every node's pool.
func (n *Network) SubmitTx(tx *Transaction) error {
	for _, node := range n.nodes {
		if err := node.SubmitTx(tx); err != nil {
			return fmt.Errorf("node %s: %w", node.identity, err)
		}
	}
	return nil
}

// Step seals one block on the scheduled proposer and imports it on every
// other node. It returns the sealed block.
func (n *Network) Step() (*Block, error) {
	number := n.Leader().Height() + 1
	proposer := n.Leader().expectedProposer(number)
	sealer, ok := n.byAddr[proposer]
	if !ok {
		return nil, fmt.Errorf("chain: no node for proposer %s", proposer)
	}
	block, err := sealer.SealBlock()
	if err != nil {
		return nil, err
	}
	for _, node := range n.nodes {
		if node == sealer {
			continue
		}
		if err := node.ImportBlock(block); err != nil {
			return nil, fmt.Errorf("node %s rejected block %d: %w", node.identity, block.Header.Number, err)
		}
	}
	return block, nil
}

// Run steps until every pool is drained, returning the sealed blocks. It
// bounds the number of rounds to avoid spinning on a stuck pool.
func (n *Network) Run(maxRounds int) ([]*Block, error) {
	var blocks []*Block
	for round := 0; round < maxRounds; round++ {
		if n.Leader().PendingCount() == 0 {
			return blocks, nil
		}
		b, err := n.Step()
		if err != nil {
			return blocks, err
		}
		blocks = append(blocks, b)
	}
	if n.Leader().PendingCount() > 0 {
		return blocks, fmt.Errorf("chain: pool not drained after %d rounds", maxRounds)
	}
	return blocks, nil
}
