package chain

import (
	"encoding/json"
	"fmt"
	"time"
)

func timeFromUnixNs(ns int64) time.Time { return time.Unix(0, ns) }

// Snapshot support: a node's chain can be exported as the ordered block
// list and restored by re-executing every block from genesis. Because all
// execution is deterministic, replay reproduces the exact state and receipt
// roots; any tampering with the snapshot is caught by the same validation
// ImportBlock applies to live blocks. cmd/slicer-chain could persist this
// across restarts.

// snapshotTx mirrors Transaction for stable JSON encoding.
type snapshotTx struct {
	From     Address `json:"from"`
	To       Address `json:"to"`
	Nonce    uint64  `json:"nonce"`
	Value    uint64  `json:"value"`
	GasLimit uint64  `json:"gasLimit"`
	Data     []byte  `json:"data"`
}

type snapshotHeader struct {
	ParentHash  Hash    `json:"parentHash"`
	Number      uint64  `json:"number"`
	TimeUnixNs  int64   `json:"timeUnixNs"`
	Proposer    Address `json:"proposer"`
	TxRoot      Hash    `json:"txRoot"`
	ReceiptRoot Hash    `json:"receiptRoot"`
	StateRoot   Hash    `json:"stateRoot"`
	GasUsed     uint64  `json:"gasUsed"`
}

type snapshotBlock struct {
	Header snapshotHeader `json:"header"`
	Txs    []snapshotTx   `json:"txs"`
}

// Snapshot is a serializable chain image (blocks 1..head; genesis is
// reconstructed from the node's own configuration).
type Snapshot struct {
	Blocks []snapshotBlock `json:"blocks"`
}

// ExportSnapshot captures blocks 1..head.
func (n *Node) ExportSnapshot() *Snapshot {
	snap := &Snapshot{Blocks: make([]snapshotBlock, 0, len(n.blocks)-1)}
	for _, b := range n.blocks[1:] {
		snap.Blocks = append(snap.Blocks, toSnapshotBlock(b))
	}
	return snap
}

// Marshal serializes a snapshot.
func (s *Snapshot) Marshal() ([]byte, error) {
	return json.Marshal(s)
}

// UnmarshalSnapshot parses a serialized snapshot.
func UnmarshalSnapshot(data []byte) (*Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("chain: parse snapshot: %w", err)
	}
	return &s, nil
}

// toSnapshotBlock converts a live block to its stable JSON form.
func toSnapshotBlock(b *Block) snapshotBlock {
	sb := snapshotBlock{
		Header: snapshotHeader{
			ParentHash:  b.Header.ParentHash,
			Number:      b.Header.Number,
			TimeUnixNs:  b.Header.Time.UnixNano(),
			Proposer:    b.Header.Proposer,
			TxRoot:      b.Header.TxRoot,
			ReceiptRoot: b.Header.ReceiptRoot,
			StateRoot:   b.Header.StateRoot,
			GasUsed:     b.Header.GasUsed,
		},
		Txs: make([]snapshotTx, len(b.Txs)),
	}
	for i, tx := range b.Txs {
		sb.Txs[i] = snapshotTx{
			From: tx.From, To: tx.To, Nonce: tx.Nonce,
			Value: tx.Value, GasLimit: tx.GasLimit, Data: tx.Data,
		}
	}
	return sb
}

// fromSnapshotBlock rebuilds a block ready for ImportBlock (which
// recomputes and validates receipts and roots).
func fromSnapshotBlock(sb snapshotBlock) *Block {
	block := &Block{
		Header: Header{
			ParentHash:  sb.Header.ParentHash,
			Number:      sb.Header.Number,
			Time:        timeFromUnixNs(sb.Header.TimeUnixNs),
			Proposer:    sb.Header.Proposer,
			TxRoot:      sb.Header.TxRoot,
			ReceiptRoot: sb.Header.ReceiptRoot,
			StateRoot:   sb.Header.StateRoot,
			GasUsed:     sb.Header.GasUsed,
		},
		Txs: make([]*Transaction, len(sb.Txs)),
	}
	for i, tx := range sb.Txs {
		block.Txs[i] = &Transaction{
			From: tx.From, To: tx.To, Nonce: tx.Nonce,
			Value: tx.Value, GasLimit: tx.GasLimit, Data: tx.Data,
		}
	}
	return block
}

// EncodeBlock serializes one sealed block in the snapshot's stable JSON
// form — the unit cmd/slicer-chain journals into its write-ahead log.
func EncodeBlock(b *Block) ([]byte, error) {
	sb := toSnapshotBlock(b)
	return json.Marshal(&sb)
}

// DecodeBlock parses a block serialized by EncodeBlock. The result must
// still pass ImportBlock's full validation before it enters a chain.
func DecodeBlock(data []byte) (*Block, error) {
	var sb snapshotBlock
	if err := json.Unmarshal(data, &sb); err != nil {
		return nil, fmt.Errorf("chain: parse block: %w", err)
	}
	return fromSnapshotBlock(sb), nil
}

// ImportSnapshot replays a snapshot into this node through full block
// validation, without rebuilding the node: the node must be at genesis (or
// anywhere below the snapshot's first block). Blocks at or below the
// node's current height are skipped, so importing a snapshot into a node
// that already replayed a prefix is safe.
func (n *Node) ImportSnapshot(s *Snapshot) error {
	for _, sb := range s.Blocks {
		if sb.Header.Number <= n.Height() {
			continue
		}
		if err := n.ImportBlock(fromSnapshotBlock(sb)); err != nil {
			return fmt.Errorf("chain: replay block %d: %w", sb.Header.Number, err)
		}
	}
	return nil
}

// RestoreNode creates a node from its genesis configuration and replays a
// snapshot through full block validation. The configuration (registry,
// validators, genesis allocation) must match the original deployment or
// replay fails.
func RestoreNode(cfg Config, snap *Snapshot) (*Node, error) {
	node, err := NewNode(cfg)
	if err != nil {
		return nil, err
	}
	for _, sb := range snap.Blocks {
		if err := node.ImportBlock(fromSnapshotBlock(sb)); err != nil {
			return nil, fmt.Errorf("chain: replay block %d: %w", sb.Header.Number, err)
		}
	}
	return node, nil
}
