package chain

import (
	"testing"
	"time"
)

// fixedClock returns a deterministic clock pinned to a single instant.
func fixedClock(t time.Time) func() time.Time {
	return func() time.Time { return t }
}

// TestSealBlockFixedClock: with an injected clock, sealing is fully
// deterministic — two independent nodes with the same genesis and the
// same clock produce byte-identical blocks (equal hashes), which is what
// lets consensus tests replay exactly and what the wallclock analyzer
// exists to protect.
func TestSealBlockFixedClock(t *testing.T) {
	val := AddressFromString("validator-0")
	instant := time.Unix(1700000000, 42).UTC()

	mk := func() *Node {
		node, err := NewNode(Config{
			Identity:   val,
			Registry:   NewRegistry(),
			Validators: []Address{val},
			Now:        fixedClock(instant),
		})
		if err != nil {
			t.Fatal(err)
		}
		return node
	}

	a, b := mk(), mk()
	blockA, err := a.SealBlock()
	if err != nil {
		t.Fatal(err)
	}
	blockB, err := b.SealBlock()
	if err != nil {
		t.Fatal(err)
	}
	if !blockA.Header.Time.Equal(instant) {
		t.Fatalf("sealed time = %v, want injected %v", blockA.Header.Time, instant)
	}
	if blockA.Hash() != blockB.Hash() {
		t.Fatalf("same genesis + same clock produced different blocks: %s vs %s",
			blockA.Hash(), blockB.Hash())
	}
}

// TestImportBlockIgnoresLocalClock: a validator with a wildly different
// clock still accepts and re-derives the proposer's block — validation
// adopts the header time rather than consulting time.Now, so consensus
// cannot fork on clock skew.
func TestImportBlockIgnoresLocalClock(t *testing.T) {
	proposerAddr := AddressFromString("proposer")
	followerAddr := AddressFromString("follower")
	validators := []Address{proposerAddr, followerAddr}
	registry := NewRegistry()

	proposer, err := NewNode(Config{
		Identity:   proposerAddr,
		Registry:   registry,
		Validators: validators,
		Now:        fixedClock(time.Unix(1700000000, 0).UTC()),
	})
	if err != nil {
		t.Fatal(err)
	}
	// The follower's clock is a decade away from the proposer's.
	follower, err := NewNode(Config{
		Identity:   followerAddr,
		Registry:   registry,
		Validators: validators,
		Now:        fixedClock(time.Unix(2000000000, 0).UTC()),
	})
	if err != nil {
		t.Fatal(err)
	}

	block, err := proposer.SealBlock()
	if err != nil {
		t.Fatal(err)
	}
	if err := follower.ImportBlock(block); err != nil {
		t.Fatalf("import with skewed clock: %v", err)
	}
	if follower.Head().Hash() != block.Hash() {
		t.Fatalf("follower head %s diverges from proposer block %s",
			follower.Head().Hash(), block.Hash())
	}
}

// TestNetworkWithClockDeterministicStep: the injected clock flows through
// NewNetworkWithClock to every node, so a whole-network step is
// reproducible.
func TestNetworkWithClockDeterministicStep(t *testing.T) {
	vals := []Address{AddressFromString("v0"), AddressFromString("v1"), AddressFromString("v2")}
	instant := time.Unix(1700000001, 0).UTC()
	mk := func() *Network {
		net, err := NewNetworkWithClock(NewRegistry(), vals, nil, fixedClock(instant))
		if err != nil {
			t.Fatal(err)
		}
		return net
	}
	netA, netB := mk(), mk()
	blockA, err := netA.Step()
	if err != nil {
		t.Fatal(err)
	}
	blockB, err := netB.Step()
	if err != nil {
		t.Fatal(err)
	}
	if blockA.Hash() != blockB.Hash() {
		t.Fatalf("two identically-configured networks stepped to different blocks: %s vs %s",
			blockA.Hash(), blockB.Hash())
	}
	for _, node := range netA.Nodes() {
		if node.Head().Hash() != blockA.Hash() {
			t.Fatalf("node %s did not adopt the stepped block", node.Identity())
		}
	}
}
