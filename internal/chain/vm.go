package chain

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"
)

// Contract is the execution interface of a native smart contract. A
// contract's persistent data must live entirely in the metered storage
// exposed by CallCtx; Go-side fields would escape both consensus and gas
// accounting.
type Contract interface {
	// Init runs once at deployment with the constructor arguments.
	Init(ctx *CallCtx, initData []byte) error
	// Call dispatches a method invocation.
	Call(ctx *CallCtx, input []byte) ([]byte, error)
}

// ContractFactory instantiates a contract runtime.
type ContractFactory func() Contract

// runtimeIDLen is the length of the runtime identifier prefixed to creation
// code.
const runtimeIDLen = 8

// Registry maps runtime identifiers (the first 8 bytes of deployed code) to
// contract implementations. Every node in a network must share the same
// registry — it plays the role of the EVM's instruction semantics.
type Registry struct {
	factories map[string]ContractFactory
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{factories: make(map[string]ContractFactory)}
}

// Register binds a runtime ID (at most 8 bytes, padded) to a factory.
func (r *Registry) Register(id string, f ContractFactory) error {
	if len(id) == 0 || len(id) > runtimeIDLen {
		return fmt.Errorf("chain: runtime id must be 1..%d bytes", runtimeIDLen)
	}
	key := paddedID(id)
	if _, dup := r.factories[key]; dup {
		return fmt.Errorf("chain: runtime id %q already registered", id)
	}
	r.factories[key] = f
	return nil
}

func paddedID(id string) string {
	b := make([]byte, runtimeIDLen)
	copy(b, id)
	return string(b)
}

// CreationCode assembles deployable code: runtime ID || body || initData
// boundary. body stands in for compiled bytecode and is charged per byte at
// deployment, so its size should reflect a realistic compiled contract.
func CreationCode(id string, body, initData []byte) []byte {
	out := make([]byte, 0, runtimeIDLen+8+len(body)+len(initData))
	out = append(out, paddedID(id)...)
	var l [8]byte
	binary.BigEndian.PutUint64(l[:], uint64(len(body)))
	out = append(out, l[:]...)
	out = append(out, body...)
	return append(out, initData...)
}

func splitCreationCode(code []byte) (id string, body, initData []byte, err error) {
	if len(code) < runtimeIDLen+8 {
		return "", nil, nil, errors.New("chain: creation code too short")
	}
	id = string(code[:runtimeIDLen])
	n := binary.BigEndian.Uint64(code[runtimeIDLen : runtimeIDLen+8])
	rest := code[runtimeIDLen+8:]
	if uint64(len(rest)) < n {
		return "", nil, nil, errors.New("chain: creation code body truncated")
	}
	return id, rest[:n], rest[n:], nil
}

// CallCtx is the execution context handed to a contract: metered access to
// storage, hashing, big-number arithmetic, event logs and value transfers.
// Every operation charges the gas meter; exhausting it aborts the call and
// reverts the transaction.
type CallCtx struct {
	Self   Address // the contract's own address
	Caller Address // transaction sender
	Value  uint64  // native tokens sent along

	state *State
	meter *Meter
	logs  []Log
}

// GasUsed reports gas consumed so far in this call.
func (c *CallCtx) GasUsed() uint64 { return c.meter.Used() }

// UseGas charges raw gas (contracts use it for schedule items not covered
// by a helper).
func (c *CallCtx) UseGas(gas uint64) error { return c.meter.Use(gas) }

// SLoad reads a storage slot, charging SloadGas.
func (c *CallCtx) SLoad(k Slot) (Slot, bool, error) {
	if err := c.meter.Use(SloadGas); err != nil {
		return Slot{}, false, err
	}
	v, ok := c.state.GetStorage(c.Self, k)
	return v, ok, nil
}

// SStore writes a storage slot, charging set or reset pricing.
func (c *CallCtx) SStore(k, v Slot) error {
	// Peek to price before mutating.
	_, existed := c.state.GetStorage(c.Self, k)
	cost := SstoreSetGas
	if existed {
		cost = SstoreResetGas
	}
	if err := c.meter.Use(cost); err != nil {
		return err
	}
	c.state.SetStorage(c.Self, k, v)
	return nil
}

// Hash hashes data, charging the KECCAK schedule.
func (c *CallCtx) Hash(data ...[]byte) (Hash, error) {
	total := 0
	for _, d := range data {
		total += len(d)
	}
	if err := c.meter.Use(HashGas(total)); err != nil {
		return Hash{}, err
	}
	return HashBytes(data...), nil
}

// ModExp computes base^exp mod mod, charging the EIP-2565 precompile price.
func (c *CallCtx) ModExp(base, exp, mod *big.Int) (*big.Int, error) {
	cost := ModExpGas((base.BitLen()+7)/8, (mod.BitLen()+7)/8, exp)
	if err := c.meter.Use(cost); err != nil {
		return nil, err
	}
	return new(big.Int).Exp(base, exp, mod), nil
}

// FieldMul computes a*b mod q, charging MULMOD pricing.
func (c *CallCtx) FieldMul(a, b, q *big.Int) (*big.Int, error) {
	if err := c.meter.Use(FieldMulGas); err != nil {
		return nil, err
	}
	out := new(big.Int).Mul(a, b)
	return out.Mod(out, q), nil
}

// EmitLog records an event.
func (c *CallCtx) EmitLog(topics []Hash, data []byte) error {
	if err := c.meter.Use(LogCost(len(topics), len(data))); err != nil {
		return err
	}
	c.logs = append(c.logs, Log{Address: c.Self, Topics: topics, Data: data})
	return nil
}

// Transfer moves native tokens out of the contract's balance.
func (c *CallCtx) Transfer(to Address, amount uint64) error {
	if err := c.meter.Use(CallValueTransferGas); err != nil {
		return err
	}
	if err := c.state.Debit(c.Self, amount); err != nil {
		return err
	}
	c.state.Credit(to, amount)
	return nil
}

// ContractBalance returns the contract's own escrow balance.
func (c *CallCtx) ContractBalance() uint64 { return c.state.Balance(c.Self) }

// SlotOf derives a storage slot key from a label and parts (the analogue of
// Solidity's keccak-based mapping slots). Unmetered: slot derivation is
// address arithmetic, not a chargeable hash of contract data.
func SlotOf(label string, parts ...[]byte) Slot {
	data := [][]byte{[]byte("slot/"), []byte(label)}
	data = append(data, parts...)
	h := HashBytes(data...)
	return Slot(h)
}

// U64Slot encodes a uint64 into a slot value.
func U64Slot(v uint64) Slot {
	var s Slot
	binary.BigEndian.PutUint64(s[24:], v)
	return s
}

// SlotU64 decodes a slot value as uint64.
func SlotU64(s Slot) uint64 { return binary.BigEndian.Uint64(s[24:]) }
