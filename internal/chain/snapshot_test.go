package chain

import (
	"testing"
)

func TestSnapshotRestore(t *testing.T) {
	net, vals, logTxHash := lightFixture(t)
	node := net.Leader()
	snap := node.ExportSnapshot()
	blob, err := snap.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	parsed, err := UnmarshalSnapshot(blob)
	if err != nil {
		t.Fatalf("UnmarshalSnapshot: %v", err)
	}

	registry := NewRegistry()
	if err := registry.Register("logger", func() Contract { return loggerContract{} }); err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Identity:     vals[0],
		Registry:     registry,
		Validators:   vals,
		GenesisAlloc: map[Address]uint64{AddressFromString("alice"): 1_000_000},
	}
	restored, err := RestoreNode(cfg, parsed)
	if err != nil {
		t.Fatalf("RestoreNode: %v", err)
	}
	if restored.Height() != node.Height() {
		t.Fatalf("restored height %d, want %d", restored.Height(), node.Height())
	}
	if restored.Head().Hash() != node.Head().Hash() {
		t.Fatal("restored head hash differs")
	}
	// Receipts and logs were reconstructed by replay.
	r, ok := restored.Receipt(logTxHash)
	if !ok || !r.Status {
		t.Fatalf("restored receipt = %+v, %v", r, ok)
	}
	if _, found := FindLog(r, topicLogged); !found {
		t.Error("replayed receipt lost its log")
	}
	// The restored node keeps operating: it can import the next block a
	// peer seals.
	aliceNonce := restored.NextNonce(AddressFromString("alice"))
	tx := &Transaction{
		From: AddressFromString("alice"), To: AddressFromString("carol"),
		Nonce: aliceNonce, Value: 5, GasLimit: 100_000,
	}
	if err := net.SubmitTx(tx); err != nil {
		t.Fatal(err)
	}
	block, err := net.Step()
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.ImportBlock(block); err != nil {
		t.Fatalf("restored node rejected the next live block: %v", err)
	}
}

func TestSnapshotTamperDetected(t *testing.T) {
	net, vals, _ := lightFixture(t)
	node := net.Leader()
	snap := node.ExportSnapshot()
	// Inflate a transferred value inside the snapshot.
	for i := range snap.Blocks {
		for k := range snap.Blocks[i].Txs {
			if snap.Blocks[i].Txs[k].Value > 0 {
				snap.Blocks[i].Txs[k].Value += 1000
			}
		}
	}
	registry := NewRegistry()
	if err := registry.Register("logger", func() Contract { return loggerContract{} }); err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Identity:     vals[0],
		Registry:     registry,
		Validators:   vals,
		GenesisAlloc: map[Address]uint64{AddressFromString("alice"): 1_000_000},
	}
	if _, err := RestoreNode(cfg, snap); err == nil {
		t.Fatal("tampered snapshot replayed cleanly")
	}
}

func TestSnapshotWrongGenesisRejected(t *testing.T) {
	net, vals, _ := lightFixture(t)
	snap := net.Leader().ExportSnapshot()
	registry := NewRegistry()
	if err := registry.Register("logger", func() Contract { return loggerContract{} }); err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Identity:   vals[0],
		Registry:   registry,
		Validators: vals,
		// Different genesis allocation -> different parent hashes.
		GenesisAlloc: map[Address]uint64{AddressFromString("alice"): 42},
	}
	if _, err := RestoreNode(cfg, snap); err == nil {
		t.Fatal("snapshot replayed against a mismatched genesis")
	}
}
