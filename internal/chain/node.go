package chain

import (
	"errors"
	"fmt"
	"time"
)

// Node is one blockchain participant: it maintains the canonical chain, the
// world state, a transaction pool, and executes/validates blocks under the
// round-robin proof-of-authority rules.
type Node struct {
	identity   Address
	registry   *Registry
	validators []Address

	state    *State
	blocks   []*Block
	pending  []*Transaction
	receipts map[Hash]*Receipt

	// now supplies block timestamps when this node proposes. Validation
	// never consults it: imported blocks adopt the proposer's header
	// time, so clock skew cannot fork consensus.
	now func() time.Time
}

// Config configures a node.
type Config struct {
	// Identity is the node's own (validator) address.
	Identity Address
	// Registry supplies contract runtimes; must be identical on all nodes.
	Registry *Registry
	// Validators is the PoA validator set; the proposer of block N is
	// Validators[(N-1) % len(Validators)].
	Validators []Address
	// GenesisAlloc pre-funds accounts.
	GenesisAlloc map[Address]uint64
	// Now supplies block timestamps when this node seals; nil defaults
	// to the wall clock. Deterministic tests inject a fixed clock so two
	// identically-configured nodes seal byte-identical blocks.
	Now func() time.Time
}

// NewNode creates a node at genesis.
func NewNode(cfg Config) (*Node, error) {
	if cfg.Registry == nil {
		return nil, errors.New("chain: registry required")
	}
	if len(cfg.Validators) == 0 {
		return nil, errors.New("chain: at least one validator required")
	}
	st := NewState()
	for a, v := range cfg.GenesisAlloc {
		st.SetBalance(a, v)
	}
	st.DiscardJournal()
	genesis := &Block{Header: Header{
		Number:    0,
		Time:      time.Unix(0, 0),
		StateRoot: st.Root(),
		TxRoot:    MerkleRoot(nil),
	}}
	vals := make([]Address, len(cfg.Validators))
	copy(vals, cfg.Validators)
	now := cfg.Now
	if now == nil {
		now = time.Now //slicer:allow wallclock -- injected default clock; deterministic callers supply Config.Now
	}
	return &Node{
		identity:   cfg.Identity,
		registry:   cfg.Registry,
		validators: vals,
		state:      st,
		blocks:     []*Block{genesis},
		receipts:   make(map[Hash]*Receipt),
		now:        now,
	}, nil
}

// Identity returns the node's own validator address.
func (n *Node) Identity() Address { return n.identity }

// Height returns the latest block number.
func (n *Node) Height() uint64 { return n.blocks[len(n.blocks)-1].Header.Number }

// Head returns the latest block.
func (n *Node) Head() *Block { return n.blocks[len(n.blocks)-1] }

// BlockByNumber returns a block, or nil if out of range.
func (n *Node) BlockByNumber(num uint64) *Block {
	if num >= uint64(len(n.blocks)) {
		return nil
	}
	return n.blocks[num]
}

// Receipt returns the receipt for a mined transaction.
func (n *Node) Receipt(txHash Hash) (*Receipt, bool) {
	r, ok := n.receipts[txHash]
	return r, ok
}

// Balance reads an account balance from the node's state.
func (n *Node) Balance(a Address) uint64 { return n.state.Balance(a) }

// Nonce reads an account's mined nonce (excluding pooled transactions).
func (n *Node) Nonce(a Address) uint64 { return n.state.Nonce(a) }

// NextNonce returns the nonce the account's next transaction must carry,
// accounting for transactions already queued in the pool.
func (n *Node) NextNonce(a Address) uint64 {
	nonce := n.state.Nonce(a)
	for _, tx := range n.pending {
		if tx.From == a && tx.Nonce >= nonce {
			nonce = tx.Nonce + 1
		}
	}
	return nonce
}

// SubmitTx queues a transaction for inclusion in the next block.
func (n *Node) SubmitTx(tx *Transaction) error {
	if tx.GasLimit == 0 {
		return errors.New("chain: zero gas limit")
	}
	if tx.Nonce != n.NextNonce(tx.From) {
		return fmt.Errorf("chain: bad nonce %d for %s (want %d)", tx.Nonce, tx.From, n.NextNonce(tx.From))
	}
	n.pending = append(n.pending, tx)
	return nil
}

// PendingCount reports queued transactions.
func (n *Node) PendingCount() int { return len(n.pending) }

// expectedProposer returns the PoA proposer for a block number.
func (n *Node) expectedProposer(number uint64) Address {
	return n.validators[(number-1)%uint64(len(n.validators))]
}

// IsProposer reports whether this node proposes the next block.
func (n *Node) IsProposer() bool {
	return n.identity == n.expectedProposer(n.Height()+1)
}

// contractAddress derives a created contract's address.
func contractAddress(from Address, nonce uint64) Address {
	var u [8]byte
	for i := 0; i < 8; i++ {
		u[i] = byte(nonce >> (56 - 8*i))
	}
	h := HashBytes([]byte("create/"), from[:], u[:])
	var a Address
	copy(a[:], h[:20])
	return a
}

// applyTx executes one transaction against the state, returning its
// receipt. Failed transactions revert all their effects except the nonce
// bump; gas consumed is recorded on the receipt.
func (n *Node) applyTx(tx *Transaction) *Receipt {
	receipt := &Receipt{TxHash: tx.Hash()}
	cp := n.state.Checkpoint()
	meter := NewMeter(tx.GasLimit)

	fail := func(err error) *Receipt {
		n.state.Revert(cp)
		n.state.BumpNonce(tx.From)
		receipt.Status = false
		receipt.Err = err.Error()
		receipt.GasUsed = meter.Used()
		return receipt
	}

	if err := meter.Use(IntrinsicGas(tx.Data, tx.IsCreate())); err != nil {
		return fail(err)
	}
	n.state.BumpNonce(tx.From)
	if err := n.state.Debit(tx.From, tx.Value); err != nil {
		return fail(err)
	}

	ctx := &CallCtx{Caller: tx.From, Value: tx.Value, state: n.state, meter: meter}
	var ret []byte
	if tx.IsCreate() {
		id, body, initData, err := splitCreationCode(tx.Data)
		if err != nil {
			return fail(err)
		}
		factory, ok := n.registry.factories[id]
		if !ok {
			return fail(fmt.Errorf("chain: unknown contract runtime %q", id))
		}
		if err := meter.Use(CreateDataGas * uint64(runtimeIDLen+8+len(body))); err != nil {
			return fail(err)
		}
		addr := contractAddress(tx.From, tx.Nonce)
		if n.state.Code(addr) != nil {
			return fail(fmt.Errorf("chain: address collision at %s", addr))
		}
		n.state.SetCode(addr, tx.Data[:runtimeIDLen+8+len(body)])
		n.state.Credit(addr, tx.Value)
		ctx.Self = addr
		if err := factory().Init(ctx, initData); err != nil {
			return fail(fmt.Errorf("constructor: %w", err))
		}
		receipt.ContractAddress = addr
	} else {
		n.state.Credit(tx.To, tx.Value)
		code := n.state.Code(tx.To)
		if code != nil {
			id, _, _, err := splitCreationCode(code)
			if err != nil {
				return fail(err)
			}
			factory, ok := n.registry.factories[id]
			if !ok {
				return fail(fmt.Errorf("chain: unknown contract runtime %q", id))
			}
			ctx.Self = tx.To
			ret, err = factory().Call(ctx, tx.Data)
			if err != nil {
				return fail(fmt.Errorf("execution reverted: %w", err))
			}
		}
	}

	receipt.Status = true
	receipt.GasUsed = meter.Used()
	receipt.ReturnData = ret
	receipt.Logs = ctx.logs
	return receipt
}

// SealBlock executes all pending transactions and seals them into a new
// block. Only the expected proposer may seal.
func (n *Node) SealBlock() (*Block, error) {
	number := n.Height() + 1
	if n.identity != n.expectedProposer(number) {
		return nil, fmt.Errorf("chain: node %s is not the proposer of block %d", n.identity, number)
	}
	txs := n.pending
	n.pending = nil

	receipts := make([]*Receipt, len(txs))
	gasUsed := uint64(0)
	for i, tx := range txs {
		receipts[i] = n.applyTx(tx)
		gasUsed += receipts[i].GasUsed
	}
	n.state.DiscardJournal()

	block := &Block{
		Header: Header{
			ParentHash:  n.Head().Hash(),
			Number:      number,
			Time:        n.now(),
			Proposer:    n.identity,
			TxRoot:      TxRoot(txs),
			ReceiptRoot: ReceiptRoot(receipts),
			StateRoot:   n.state.Root(),
			GasUsed:     gasUsed,
		},
		Txs:      txs,
		Receipts: receipts,
	}
	n.commit(block)
	return block, nil
}

// ImportBlock validates a block proposed by a peer and, if valid,
// re-executes it and appends it to the chain. Validation covers the PoA
// proposer schedule, the hash link, both Merkle roots and the resulting
// state root.
func (n *Node) ImportBlock(b *Block) error {
	head := n.Head()
	if b.Header.Number != head.Header.Number+1 {
		return fmt.Errorf("chain: block %d does not extend height %d", b.Header.Number, head.Header.Number)
	}
	if b.Header.ParentHash != head.Hash() {
		return errors.New("chain: parent hash mismatch")
	}
	if b.Header.Proposer != n.expectedProposer(b.Header.Number) {
		return fmt.Errorf("chain: %s is not the scheduled proposer of block %d", b.Header.Proposer, b.Header.Number)
	}
	if TxRoot(b.Txs) != b.Header.TxRoot {
		return errors.New("chain: transaction root mismatch")
	}

	cp := n.state.Checkpoint()
	receipts := make([]*Receipt, len(b.Txs))
	gasUsed := uint64(0)
	for i, tx := range b.Txs {
		receipts[i] = n.applyTx(tx)
		gasUsed += receipts[i].GasUsed
	}
	if ReceiptRoot(receipts) != b.Header.ReceiptRoot ||
		n.state.Root() != b.Header.StateRoot ||
		gasUsed != b.Header.GasUsed {
		n.state.Revert(cp)
		return errors.New("chain: execution outcome diverges from proposed block")
	}
	n.state.DiscardJournal()

	// Adopt the proposer's receipts (identical by the root check).
	local := &Block{Header: b.Header, Txs: b.Txs, Receipts: receipts}
	n.commit(local)
	// Drop pool entries that were just mined.
	mined := make(map[Hash]struct{}, len(b.Txs))
	for _, tx := range b.Txs {
		mined[tx.Hash()] = struct{}{}
	}
	kept := n.pending[:0]
	for _, tx := range n.pending {
		if _, ok := mined[tx.Hash()]; !ok {
			kept = append(kept, tx)
		}
	}
	n.pending = kept
	return nil
}

func (n *Node) commit(b *Block) {
	n.blocks = append(n.blocks, b)
	for _, r := range b.Receipts {
		n.receipts[r.TxHash] = r
	}
}

// CallStatic executes a read-only contract call against the current state.
// All state changes are reverted; the return data and gas used are
// reported.
func (n *Node) CallStatic(from, to Address, input []byte, gasLimit uint64) ([]byte, uint64, error) {
	code := n.state.Code(to)
	if code == nil {
		return nil, 0, fmt.Errorf("chain: no contract at %s", to)
	}
	id, _, _, err := splitCreationCode(code)
	if err != nil {
		return nil, 0, err
	}
	factory, ok := n.registry.factories[id]
	if !ok {
		return nil, 0, fmt.Errorf("chain: unknown contract runtime %q", id)
	}
	cp := n.state.Checkpoint()
	defer n.state.Revert(cp)
	meter := NewMeter(gasLimit)
	ctx := &CallCtx{Self: to, Caller: from, state: n.state, meter: meter}
	ret, err := factory().Call(ctx, input)
	return ret, meter.Used(), err
}
