package chain

import (
	"testing"
)

func TestRegistryValidation(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register("", func() Contract { return loggerContract{} }); err == nil {
		t.Error("empty runtime id accepted")
	}
	if err := reg.Register("waytoolongid", func() Contract { return loggerContract{} }); err == nil {
		t.Error("oversized runtime id accepted")
	}
	if err := reg.Register("dup", func() Contract { return loggerContract{} }); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := reg.Register("dup", func() Contract { return loggerContract{} }); err == nil {
		t.Error("duplicate runtime id accepted")
	}
}

func TestCreationCodeRoundTrip(t *testing.T) {
	code := CreationCode("vm1", []byte{1, 2, 3}, []byte{9, 9})
	id, body, initData, err := splitCreationCode(code)
	if err != nil {
		t.Fatalf("splitCreationCode: %v", err)
	}
	if id != paddedID("vm1") {
		t.Errorf("id = %q", id)
	}
	if len(body) != 3 || body[0] != 1 {
		t.Errorf("body = %v", body)
	}
	if len(initData) != 2 || initData[0] != 9 {
		t.Errorf("initData = %v", initData)
	}
	if _, _, _, err := splitCreationCode([]byte{1, 2}); err == nil {
		t.Error("short creation code accepted")
	}
	truncated := CreationCode("vm1", []byte{1, 2, 3}, nil)
	if _, _, _, err := splitCreationCode(truncated[:len(truncated)-1]); err == nil {
		t.Error("truncated body accepted")
	}
}

func TestCallStaticErrors(t *testing.T) {
	node, alice, _ := newTestNode(t)
	if _, _, err := node.CallStatic(alice, AddressFromString("nobody"), nil, 100000); err == nil {
		t.Error("static call to a non-contract succeeded")
	}
}

func TestSlotHelpers(t *testing.T) {
	if SlotOf("a") == SlotOf("b") {
		t.Error("distinct labels share a slot")
	}
	if SlotOf("m", []byte{1}) == SlotOf("m", []byte{2}) {
		t.Error("distinct mapping keys share a slot")
	}
	if got := SlotU64(U64Slot(123456789)); got != 123456789 {
		t.Errorf("U64Slot round trip = %d", got)
	}
}

func TestLogCostAndHashGas(t *testing.T) {
	if got := HashGas(0); got != HashBaseGas {
		t.Errorf("HashGas(0) = %d", got)
	}
	if got := HashGas(33); got != HashBaseGas+2*HashWordGas {
		t.Errorf("HashGas(33) = %d", got)
	}
	if got := LogCost(2, 10); got != LogGas+2*LogTopicGas+10*LogDataGas {
		t.Errorf("LogCost = %d", got)
	}
}
