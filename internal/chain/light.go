package chain

import (
	"errors"
	"fmt"
)

// This file implements light-client support: header-chain tracking and
// receipt/log inclusion proofs. A Slicer data user can follow the header
// chain and verify that an AcUpdated event really was included in a block —
// establishing data freshness without trusting any single full node, which
// is exactly the trust model the paper's blockchain layer is meant to
// provide.

// ReceiptProof proves that a receipt (with its logs) is included in a
// block's receipt root.
type ReceiptProof struct {
	BlockNumber uint64
	Receipt     *Receipt
	Proof       *MerkleProof
}

// ProveReceipt builds an inclusion proof for the index-th receipt of a
// block.
func (n *Node) ProveReceipt(blockNumber uint64, index int) (*ReceiptProof, error) {
	block := n.BlockByNumber(blockNumber)
	if block == nil {
		return nil, fmt.Errorf("chain: no block %d", blockNumber)
	}
	if index < 0 || index >= len(block.Receipts) {
		return nil, fmt.Errorf("chain: block %d has no receipt %d", blockNumber, index)
	}
	leaves := make([]Hash, len(block.Receipts))
	for i, r := range block.Receipts {
		leaves[i] = r.hash()
	}
	proof, err := ProveLeaf(leaves, index)
	if err != nil {
		return nil, err
	}
	return &ReceiptProof{
		BlockNumber: blockNumber,
		Receipt:     block.Receipts[index],
		Proof:       proof,
	}, nil
}

// ProveReceiptByTx locates a transaction's receipt and proves its inclusion.
func (n *Node) ProveReceiptByTx(txHash Hash) (*ReceiptProof, error) {
	for num := uint64(len(n.blocks)); num > 0; num-- {
		block := n.blocks[num-1]
		for i, r := range block.Receipts {
			if r.TxHash == txHash {
				return n.ProveReceipt(block.Header.Number, i)
			}
		}
	}
	return nil, fmt.Errorf("chain: no receipt for tx %s", txHash)
}

// LogsByTopic scans a block range for logs whose first topic matches,
// returning them with their block numbers. Full-node convenience for
// applications watching contract events (e.g. AcUpdated).
func (n *Node) LogsByTopic(topic Hash, from, to uint64) []struct {
	BlockNumber uint64
	Log         Log
} {
	var out []struct {
		BlockNumber uint64
		Log         Log
	}
	if to >= uint64(len(n.blocks)) {
		to = uint64(len(n.blocks)) - 1
	}
	for num := from; num <= to; num++ {
		for _, r := range n.blocks[num].Receipts {
			for _, l := range r.Logs {
				if len(l.Topics) > 0 && l.Topics[0] == topic {
					out = append(out, struct {
						BlockNumber uint64
						Log         Log
					}{num, l})
				}
			}
		}
	}
	return out
}

// LightClient tracks the header chain only, validating hash links and the
// PoA proposer schedule, and verifies receipt inclusion proofs against its
// trusted headers.
type LightClient struct {
	validators []Address
	headers    []Header // headers[i] is block i
}

// NewLightClient starts a light client from a trusted genesis header and
// the validator set.
func NewLightClient(genesis Header, validators []Address) (*LightClient, error) {
	if genesis.Number != 0 {
		return nil, errors.New("chain: light client must start from the genesis header")
	}
	if len(validators) == 0 {
		return nil, errors.New("chain: validator set required")
	}
	vals := make([]Address, len(validators))
	copy(vals, validators)
	return &LightClient{validators: vals, headers: []Header{genesis}}, nil
}

// Height returns the latest tracked block number.
func (lc *LightClient) Height() uint64 {
	return lc.headers[len(lc.headers)-1].Number
}

// AddHeader validates and appends the next block header: correct number,
// parent-hash link, and the scheduled PoA proposer.
func (lc *LightClient) AddHeader(h Header) error {
	tip := lc.headers[len(lc.headers)-1]
	if h.Number != tip.Number+1 {
		return fmt.Errorf("chain: header %d does not extend height %d", h.Number, tip.Number)
	}
	parent := Block{Header: tip}
	if h.ParentHash != parent.Hash() {
		return errors.New("chain: header parent hash mismatch")
	}
	want := lc.validators[(h.Number-1)%uint64(len(lc.validators))]
	if h.Proposer != want {
		return fmt.Errorf("chain: header proposer %s, schedule requires %s", h.Proposer, want)
	}
	lc.headers = append(lc.headers, h)
	return nil
}

// Sync pulls any missing headers from a full node.
func (lc *LightClient) Sync(n *Node) error {
	for num := lc.Height() + 1; num <= n.Height(); num++ {
		block := n.BlockByNumber(num)
		if block == nil {
			return fmt.Errorf("chain: node lost block %d", num)
		}
		if err := lc.AddHeader(block.Header); err != nil {
			return err
		}
	}
	return nil
}

// VerifyReceipt checks a receipt inclusion proof against the tracked
// header chain.
func (lc *LightClient) VerifyReceipt(p *ReceiptProof) error {
	if p == nil || p.Receipt == nil || p.Proof == nil {
		return errors.New("chain: incomplete receipt proof")
	}
	if p.BlockNumber >= uint64(len(lc.headers)) {
		return fmt.Errorf("chain: block %d not yet tracked (height %d)", p.BlockNumber, lc.Height())
	}
	root := lc.headers[p.BlockNumber].ReceiptRoot
	if !VerifyLeaf(root, p.Receipt.hash(), p.Proof) {
		return errors.New("chain: receipt proof does not match the receipt root")
	}
	return nil
}

// FindLog extracts the first log in a verified receipt whose first topic
// matches. Callers must VerifyReceipt first.
func FindLog(r *Receipt, topic Hash) (Log, bool) {
	for _, l := range r.Logs {
		if len(l.Topics) > 0 && l.Topics[0] == topic {
			return l, true
		}
	}
	return Log{}, false
}
