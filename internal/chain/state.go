package chain

import (
	"bytes"
	"fmt"
	"sort"
)

// Slot is a 32-byte contract storage word.
type Slot [32]byte

// State is the world state: balances, nonces, contract code and per-contract
// key-value storage. Mutations are journaled so a reverting transaction can
// be rolled back without copying the whole state.
type State struct {
	balances map[Address]uint64
	nonces   map[Address]uint64
	code     map[Address][]byte
	storage  map[Address]map[Slot]Slot

	journal []journalEntry
}

type journalEntry struct {
	kind    byte // 'b' balance, 'n' nonce, 'c' code, 's' storage
	addr    Address
	slot    Slot
	prevU64 uint64
	prevBuf []byte
	prevVal Slot
	existed bool
}

// NewState creates an empty world state.
func NewState() *State {
	return &State{
		balances: make(map[Address]uint64),
		nonces:   make(map[Address]uint64),
		code:     make(map[Address][]byte),
		storage:  make(map[Address]map[Slot]Slot),
	}
}

// Balance returns an account balance.
func (s *State) Balance(a Address) uint64 { return s.balances[a] }

// SetBalance sets a balance (journaled).
func (s *State) SetBalance(a Address, v uint64) {
	s.journal = append(s.journal, journalEntry{kind: 'b', addr: a, prevU64: s.balances[a]})
	s.balances[a] = v
}

// Credit adds funds to an account.
func (s *State) Credit(a Address, v uint64) { s.SetBalance(a, s.balances[a]+v) }

// Debit removes funds, failing on insufficient balance.
func (s *State) Debit(a Address, v uint64) error {
	if s.balances[a] < v {
		return fmt.Errorf("chain: insufficient balance at %s: have %d, need %d", a, s.balances[a], v)
	}
	s.SetBalance(a, s.balances[a]-v)
	return nil
}

// Nonce returns an account nonce.
func (s *State) Nonce(a Address) uint64 { return s.nonces[a] }

// BumpNonce increments an account nonce (journaled).
func (s *State) BumpNonce(a Address) {
	s.journal = append(s.journal, journalEntry{kind: 'n', addr: a, prevU64: s.nonces[a]})
	s.nonces[a]++
}

// Code returns a contract's deployed code (nil for non-contracts).
func (s *State) Code(a Address) []byte { return s.code[a] }

// SetCode deploys code at an address (journaled).
func (s *State) SetCode(a Address, code []byte) {
	prev := s.code[a]
	s.journal = append(s.journal, journalEntry{kind: 'c', addr: a, prevBuf: prev})
	cp := make([]byte, len(code))
	copy(cp, code)
	s.code[a] = cp
}

// GetStorage reads one storage slot.
func (s *State) GetStorage(a Address, k Slot) (Slot, bool) {
	m, ok := s.storage[a]
	if !ok {
		return Slot{}, false
	}
	v, ok := m[k]
	return v, ok
}

// SetStorage writes one storage slot (journaled). Returns whether the slot
// previously held a value, which drives SSTORE set-vs-reset pricing.
func (s *State) SetStorage(a Address, k Slot, v Slot) (existed bool) {
	m, ok := s.storage[a]
	if !ok {
		m = make(map[Slot]Slot)
		s.storage[a] = m
	}
	prev, existed := m[k]
	s.journal = append(s.journal, journalEntry{
		kind: 's', addr: a, slot: k, prevVal: prev, existed: existed,
	})
	m[k] = v
	return existed
}

// Checkpoint marks the current journal position; Revert(cp) undoes every
// mutation after it.
func (s *State) Checkpoint() int { return len(s.journal) }

// Revert rolls the state back to a checkpoint.
func (s *State) Revert(cp int) {
	for i := len(s.journal) - 1; i >= cp; i-- {
		e := s.journal[i]
		switch e.kind {
		case 'b':
			s.balances[e.addr] = e.prevU64
		case 'n':
			s.nonces[e.addr] = e.prevU64
		case 'c':
			if e.prevBuf == nil {
				delete(s.code, e.addr)
			} else {
				s.code[e.addr] = e.prevBuf
			}
		case 's':
			if e.existed {
				s.storage[e.addr][e.slot] = e.prevVal
			} else {
				delete(s.storage[e.addr], e.slot)
			}
		}
	}
	s.journal = s.journal[:cp]
}

// DiscardJournal drops rollback history after a block commits.
func (s *State) DiscardJournal() { s.journal = s.journal[:0] }

// Root computes a deterministic commitment to the full state: the hash of
// all accounts and storage entries in canonical order. (A production chain
// would use a Merkle-Patricia trie; a flat sorted hash gives the same
// consensus-critical property — any divergence changes the root.)
func (s *State) Root() Hash {
	var buf bytes.Buffer
	writeU64 := func(v uint64) {
		var u [8]byte
		for i := 0; i < 8; i++ {
			u[i] = byte(v >> (56 - 8*i))
		}
		buf.Write(u[:])
	}

	addrs := make([]Address, 0, len(s.balances)+len(s.nonces)+len(s.code)+len(s.storage))
	seen := make(map[Address]struct{})
	collect := func(a Address) {
		if _, ok := seen[a]; !ok {
			seen[a] = struct{}{}
			addrs = append(addrs, a)
		}
	}
	for a := range s.balances {
		collect(a)
	}
	for a := range s.nonces {
		collect(a)
	}
	for a := range s.code {
		collect(a)
	}
	for a := range s.storage {
		collect(a)
	}
	sort.Slice(addrs, func(i, j int) bool { return bytes.Compare(addrs[i][:], addrs[j][:]) < 0 })

	for _, a := range addrs {
		buf.Write(a[:])
		writeU64(s.balances[a])
		writeU64(s.nonces[a])
		codeHash := HashBytes(s.code[a])
		buf.Write(codeHash[:])
		slots := make([]Slot, 0, len(s.storage[a]))
		for k := range s.storage[a] {
			slots = append(slots, k)
		}
		sort.Slice(slots, func(i, j int) bool { return bytes.Compare(slots[i][:], slots[j][:]) < 0 })
		for _, k := range slots {
			v := s.storage[a][k]
			buf.Write(k[:])
			buf.Write(v[:])
		}
	}
	return HashBytes(buf.Bytes())
}

// Clone deep-copies the state (used when a validator re-executes a proposed
// block without disturbing its own tip).
func (s *State) Clone() *State {
	out := NewState()
	for a, v := range s.balances {
		out.balances[a] = v
	}
	for a, v := range s.nonces {
		out.nonces[a] = v
	}
	for a, c := range s.code {
		cp := make([]byte, len(c))
		copy(cp, c)
		out.code[a] = cp
	}
	for a, m := range s.storage {
		cm := make(map[Slot]Slot, len(m))
		for k, v := range m {
			cm[k] = v
		}
		out.storage[a] = cm
	}
	return out
}
