// Package chain implements the blockchain substrate Slicer delegates public
// verification to: hash-linked blocks with Merkle transaction roots, an
// account/state model with metered contract storage, an EVM-style gas
// schedule (including EIP-2565 modexp pricing), native smart contracts, a
// transaction pool and a round-robin proof-of-authority consensus engine
// with an in-process broadcast network.
//
// Substitution note (documented in DESIGN.md): the paper deploys a Solidity
// contract to the Rinkeby testnet; this package reproduces the trusted
// storage + metered execution environment locally. SHA-256 stands in for
// Keccak-256 as the chain hash.
package chain

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"time"
)

// Hash is a 32-byte chain hash.
type Hash [32]byte

// Address is a 20-byte account address.
type Address [20]byte

// ZeroAddress is the empty address; a transaction sent to it creates a
// contract.
var ZeroAddress Address

// String renders a hash in hex.
func (h Hash) String() string { return hex.EncodeToString(h[:]) }

// String renders an address in hex.
func (a Address) String() string { return hex.EncodeToString(a[:]) }

// HashBytes computes the chain hash of a byte string.
func HashBytes(data ...[]byte) Hash {
	h := sha256.New()
	for _, d := range data {
		h.Write(d)
	}
	var out Hash
	copy(out[:], h.Sum(nil))
	return out
}

// AddressFromString derives a deterministic address from a human-readable
// name (used to mint test/demo accounts).
func AddressFromString(name string) Address {
	h := HashBytes([]byte("slicer/address/"), []byte(name))
	var a Address
	copy(a[:], h[:20])
	return a
}

// Transaction is a state transition request.
type Transaction struct {
	From     Address
	To       Address // ZeroAddress creates a contract
	Nonce    uint64
	Value    uint64 // native token amount transferred/escrowed
	GasLimit uint64
	Data     []byte // contract calldata or creation code
}

// Hash returns the transaction hash.
func (tx *Transaction) Hash() Hash {
	var buf bytes.Buffer
	buf.Write(tx.From[:])
	buf.Write(tx.To[:])
	var u [8]byte
	binary.BigEndian.PutUint64(u[:], tx.Nonce)
	buf.Write(u[:])
	binary.BigEndian.PutUint64(u[:], tx.Value)
	buf.Write(u[:])
	binary.BigEndian.PutUint64(u[:], tx.GasLimit)
	buf.Write(u[:])
	buf.Write(tx.Data)
	return HashBytes(buf.Bytes())
}

// IsCreate reports whether the transaction deploys a contract.
func (tx *Transaction) IsCreate() bool { return tx.To == ZeroAddress }

// Log is an event emitted by a contract.
type Log struct {
	Address Address
	Topics  []Hash
	Data    []byte
}

// Receipt records the outcome of one executed transaction.
type Receipt struct {
	TxHash          Hash
	Status          bool // true = success, false = reverted
	GasUsed         uint64
	ContractAddress Address // set on creation
	ReturnData      []byte
	Err             string // revert reason if Status is false
	Logs            []Log
}

func (r *Receipt) hash() Hash {
	var buf bytes.Buffer
	buf.Write(r.TxHash[:])
	if r.Status {
		buf.WriteByte(1)
	} else {
		buf.WriteByte(0)
	}
	var u [8]byte
	binary.BigEndian.PutUint64(u[:], r.GasUsed)
	buf.Write(u[:])
	buf.Write(r.ContractAddress[:])
	buf.Write(r.ReturnData)
	buf.WriteString(r.Err)
	for _, l := range r.Logs {
		buf.Write(l.Address[:])
		for _, t := range l.Topics {
			buf.Write(t[:])
		}
		buf.Write(l.Data)
	}
	return HashBytes(buf.Bytes())
}

// Header is a block header.
type Header struct {
	ParentHash  Hash
	Number      uint64
	Time        time.Time
	Proposer    Address
	TxRoot      Hash
	ReceiptRoot Hash
	StateRoot   Hash
	GasUsed     uint64
}

// Block is a sealed batch of transactions.
type Block struct {
	Header   Header
	Txs      []*Transaction
	Receipts []*Receipt
}

// Hash returns the block hash (hash of the header fields).
func (b *Block) Hash() Hash {
	var buf bytes.Buffer
	buf.Write(b.Header.ParentHash[:])
	var u [8]byte
	binary.BigEndian.PutUint64(u[:], b.Header.Number)
	buf.Write(u[:])
	binary.BigEndian.PutUint64(u[:], uint64(b.Header.Time.UnixNano()))
	buf.Write(u[:])
	buf.Write(b.Header.Proposer[:])
	buf.Write(b.Header.TxRoot[:])
	buf.Write(b.Header.ReceiptRoot[:])
	buf.Write(b.Header.StateRoot[:])
	binary.BigEndian.PutUint64(u[:], b.Header.GasUsed)
	buf.Write(u[:])
	return HashBytes(buf.Bytes())
}

// MerkleRoot computes a binary Merkle root over leaf hashes. Odd layers
// duplicate the last node; the empty set hashes to the hash of nothing.
func MerkleRoot(leaves []Hash) Hash {
	if len(leaves) == 0 {
		return HashBytes(nil)
	}
	layer := make([]Hash, len(leaves))
	copy(layer, leaves)
	for len(layer) > 1 {
		if len(layer)%2 == 1 {
			layer = append(layer, layer[len(layer)-1])
		}
		next := make([]Hash, len(layer)/2)
		for i := range next {
			next[i] = HashBytes(layer[2*i][:], layer[2*i+1][:])
		}
		layer = next
	}
	return layer[0]
}

// TxRoot computes the Merkle root of a transaction list.
func TxRoot(txs []*Transaction) Hash {
	leaves := make([]Hash, len(txs))
	for i, tx := range txs {
		leaves[i] = tx.Hash()
	}
	return MerkleRoot(leaves)
}

// ReceiptRoot computes the Merkle root of a receipt list.
func ReceiptRoot(receipts []*Receipt) Hash {
	leaves := make([]Hash, len(receipts))
	for i, r := range receipts {
		leaves[i] = r.hash()
	}
	return MerkleRoot(leaves)
}

// MerkleProof is an inclusion proof for one leaf in a Merkle root.
type MerkleProof struct {
	Index    int
	Siblings []Hash
}

// ProveLeaf builds an inclusion proof for leaves[index].
func ProveLeaf(leaves []Hash, index int) (*MerkleProof, error) {
	if index < 0 || index >= len(leaves) {
		return nil, fmt.Errorf("chain: proof index %d out of range [0,%d)", index, len(leaves))
	}
	proof := &MerkleProof{Index: index}
	layer := make([]Hash, len(leaves))
	copy(layer, leaves)
	pos := index
	for len(layer) > 1 {
		if len(layer)%2 == 1 {
			layer = append(layer, layer[len(layer)-1])
		}
		sib := pos ^ 1
		proof.Siblings = append(proof.Siblings, layer[sib])
		next := make([]Hash, len(layer)/2)
		for i := range next {
			next[i] = HashBytes(layer[2*i][:], layer[2*i+1][:])
		}
		layer = next
		pos /= 2
	}
	return proof, nil
}

// VerifyLeaf checks a Merkle inclusion proof.
func VerifyLeaf(root Hash, leaf Hash, proof *MerkleProof) bool {
	if proof == nil {
		return false
	}
	cur := leaf
	pos := proof.Index
	for _, sib := range proof.Siblings {
		if pos%2 == 0 {
			cur = HashBytes(cur[:], sib[:])
		} else {
			cur = HashBytes(sib[:], cur[:])
		}
		pos /= 2
	}
	return cur == root
}
