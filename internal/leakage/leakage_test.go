package leakage

import (
	"testing"

	"slicer/internal/core"
	"slicer/internal/workload"
)

func testParams() core.Params {
	return core.Params{Bits: 8, TrapdoorBits: 256, AccumulatorBits: 256}
}

func buildOwner(t *testing.T, db []core.Record) (*core.Owner, *core.UpdateOutput) {
	t.Helper()
	owner, err := core.NewOwner(testParams())
	if err != nil {
		t.Fatalf("NewOwner: %v", err)
	}
	out, err := owner.Build(db)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return owner, out
}

// TestBuildLeakageIsShapeOnly is the operational core of Theorem 2's
// simulation argument for L^build: two databases with identical value
// *shapes* (same multiset of per-keyword posting counts) but completely
// different values and IDs must produce identical build profiles — i.e.
// the cloud-visible build output is a function of the leakage alone.
func TestBuildLeakageIsShapeOnly(t *testing.T) {
	// Same shape: 4 records, values {a,a,b,c} — two values shifted.
	db1 := []core.Record{
		core.NewRecord(1, 10), core.NewRecord(2, 10),
		core.NewRecord(3, 77), core.NewRecord(4, 200),
	}
	db2 := []core.Record{
		core.NewRecord(901, 33), core.NewRecord(902, 33),
		core.NewRecord(903, 140), core.NewRecord(904, 5),
	}
	_, out1 := buildOwner(t, db1)
	_, out2 := buildOwner(t, db2)
	p1, p2 := Build(out1), Build(out2)
	// The SORE tuple structure depends on shared bit prefixes, so entry
	// counts can differ slightly across value multisets; the widths and
	// the prime width must be identical, and entry counts must be within
	// the structural bound (b+1 entries per record per attribute).
	if p1.LabelBits != p2.LabelBits || p1.PayloadBits != p2.PayloadBits || p1.PrimeBits != p2.PrimeBits {
		t.Errorf("width leakage differs: %v vs %v", p1, p2)
	}
	if p1.Entries != 4*9 || p2.Entries != 4*9 {
		t.Errorf("entry counts %d, %d; want %d each", p1.Entries, p2.Entries, 4*9)
	}
}

// TestBuildLeakageBounds checks p and q against their structural formulas.
func TestBuildLeakageBounds(t *testing.T) {
	db := workload.Generate(workload.Config{N: 40, Bits: 8, Seed: 3})
	_, out := buildOwner(t, db)
	p := Build(out)
	if p.Entries != 40*9 {
		t.Errorf("p = %d, want %d (records × (b+1))", p.Entries, 40*9)
	}
	// q = number of distinct keywords ≤ p.
	if p.Primes <= 0 || p.Primes > p.Entries {
		t.Errorf("q = %d outside (0, %d]", p.Primes, p.Entries)
	}
	if p.LabelBits != 128 || p.PayloadBits != 128 {
		t.Errorf("entry widths %d/%d, want 128/128", p.LabelBits, p.PayloadBits)
	}
}

// TestPrimeWidthUniform: prime representatives must share one width or the
// accumulator input itself would leak keyword structure.
func TestPrimeWidthUniform(t *testing.T) {
	db := workload.Generate(workload.Config{N: 60, Bits: 8, Seed: 4})
	_, out := buildOwner(t, db)
	if !PrimeWidthUniform(out.Primes) {
		t.Error("prime representatives vary in width")
	}
}

// TestSearchLeakageShape checks the observable search shape: token count
// bounded by b, epochs = j+1, and result sizes as specified.
func TestSearchLeakageShape(t *testing.T) {
	db := workload.Generate(workload.Config{N: 50, Bits: 8, Seed: 5})
	owner, out := buildOwner(t, db)
	cloud, err := core.NewCloud(owner.CloudInit(out.Index), core.WitnessCached)
	if err != nil {
		t.Fatal(err)
	}
	user, err := core.NewUser(owner.ClientState())
	if err != nil {
		t.Fatal(err)
	}
	req, err := user.Token(core.Less(128))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := cloud.Search(req)
	if err != nil {
		t.Fatal(err)
	}
	prof := Search(req, resp)
	if len(prof.Tokens) == 0 || len(prof.Tokens) > 8 {
		t.Fatalf("token count %d outside (0, 8]", len(prof.Tokens))
	}
	total := 0
	for _, tp := range prof.Tokens {
		if tp.Epochs != 1 {
			t.Errorf("fresh build should have 1 epoch, got %d", tp.Epochs)
		}
		if tp.Results > 0 && tp.ResultBits != 128 {
			t.Errorf("result width %d, want 128", tp.ResultBits)
		}
		if tp.WitnessBits != 256 {
			t.Errorf("witness width %d, want accumulator modulus width 256", tp.WitnessBits)
		}
		total += tp.Results
	}
	want := len(workload.Answer(db, core.Less(128)))
	if total != want {
		t.Errorf("leaked result count %d, true count %d", total, want)
	}
}

// TestRepeatMatrix reproduces L^repeat: identical queries repeat exactly,
// and the repetition pattern is all the history reveals.
func TestRepeatMatrix(t *testing.T) {
	db := []core.Record{core.NewRecord(1, 5), core.NewRecord(2, 9)}
	owner, _ := buildOwner(t, db)
	user, err := core.NewUser(owner.ClientState())
	if err != nil {
		t.Fatal(err)
	}
	var history []core.SearchToken
	issue := func(q core.Query) {
		t.Helper()
		req, err := user.Token(q)
		if err != nil {
			t.Fatal(err)
		}
		history = append(history, req.Tokens...)
	}
	issue(core.Equal(5)) // token 0
	issue(core.Equal(9)) // token 1
	issue(core.Equal(5)) // token 2 == token 0

	m := Repeats(history)
	if len(m) != 3 {
		t.Fatalf("matrix size %d, want 3", len(m))
	}
	if !m[0][2] || !m[2][0] {
		t.Error("repeated query not flagged")
	}
	if m[0][1] || m[1][2] {
		t.Error("distinct queries flagged as repeats")
	}
	if got := m.Count(); got != 1 {
		t.Errorf("repeat count %d, want 1", got)
	}
	for i := range m {
		if !m[i][i] {
			t.Errorf("diagonal M[%d][%d] false", i, i)
		}
	}
}

// TestForwardSecurityLeakage: after an insert touches a searched keyword,
// the *new* token differs from the old one (no repetition), which is what
// makes L^insert simulatable from sizes alone.
func TestForwardSecurityLeakage(t *testing.T) {
	db := []core.Record{core.NewRecord(1, 5)}
	owner, _ := buildOwner(t, db)
	user, err := core.NewUser(owner.ClientState())
	if err != nil {
		t.Fatal(err)
	}
	req1, err := user.Token(core.Equal(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := owner.Insert([]core.Record{core.NewRecord(2, 5)}); err != nil {
		t.Fatal(err)
	}
	user.UpdateStates(owner.StatesSnapshot())
	req2, err := user.Token(core.Equal(5))
	if err != nil {
		t.Fatal(err)
	}
	m := Repeats(append(append([]core.SearchToken{}, req1.Tokens...), req2.Tokens...))
	if m.Count() != 0 {
		t.Error("post-insert token repeats the pre-insert token (forward security leak)")
	}
}
