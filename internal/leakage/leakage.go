// Package leakage makes the paper's security analysis (§VI-B) executable:
// it computes the four leakage profiles L^build, L^search, L^insert and
// L^repeat from protocol artifacts, so tests can check that what an
// adversarial cloud observes is *no more than* what the leakage functions
// permit — the operational content of Theorem 2's simulation argument.
//
// The profiles deliberately contain only shapes (bit lengths and counts)
// and repetition structure, never values: two databases with identical
// shapes must produce identical profiles, and the cloud-visible state of a
// deployment must be a function of the profile alone (plus randomness).
package leakage

import (
	"fmt"
	"math/big"

	"slicer/internal/core"
	"slicer/internal/store"
)

// BuildProfile is L^build(DB) = (<|l|,|d|>_p, |x|_q): the index entry
// widths and count, and the prime width and count (paper §VI-B).
type BuildProfile struct {
	LabelBits   int // |l|
	PayloadBits int // |d|
	Entries     int // p
	PrimeBits   int // |x| (width of the largest prime representative)
	Primes      int // q
}

// String renders the profile compactly.
func (p BuildProfile) String() string {
	return fmt.Sprintf("L^build(<%d,%d>_%d, %d_%d)",
		p.LabelBits, p.PayloadBits, p.Entries, p.PrimeBits, p.Primes)
}

// Build computes L^build from the owner's update output.
func Build(out *core.UpdateOutput) BuildProfile {
	primeBits := 0
	for _, x := range out.Primes {
		if x.BitLen() > primeBits {
			primeBits = x.BitLen()
		}
	}
	return BuildProfile{
		LabelBits:   store.EntrySize * 8,
		PayloadBits: store.EntrySize * 8,
		Entries:     out.Index.Len(),
		PrimeBits:   primeBits,
		Primes:      len(out.Primes),
	}
}

// Insert computes L^insert(DB⁺), which has the same shape as L^build.
func Insert(out *core.UpdateOutput) BuildProfile { return Build(out) }

// SearchProfile is the shape component of L^search: per token, the epoch
// count and per-epoch result counts the cloud observes while walking the
// trapdoor chain, plus the result and witness sizes.
type SearchProfile struct {
	Tokens []TokenProfile
}

// TokenProfile is one token's observable shape.
type TokenProfile struct {
	Epochs       int // j+1 chain steps walked
	Results      int // total matched entries
	ResultBits   int // bit width of each er entry
	WitnessBits  int
	TrapdoorBits int
}

// Search computes the shape component of L^search from a request/response
// pair.
func Search(req *core.SearchRequest, resp *core.SearchResponse) SearchProfile {
	prof := SearchProfile{Tokens: make([]TokenProfile, 0, len(resp.Results))}
	for i, res := range resp.Results {
		tp := TokenProfile{
			Epochs:      res.Token.Epoch + 1,
			Results:     len(res.ER),
			WitnessBits: len(res.Witness) * 8,
		}
		if len(res.ER) > 0 {
			tp.ResultBits = len(res.ER[0]) * 8
		}
		if i < len(req.Tokens) {
			tp.TrapdoorBits = len(req.Tokens[i].Trapdoor) * 8
		}
		prof.Tokens = append(prof.Tokens, tp)
	}
	return prof
}

// RepeatMatrix is L^repeat's M_{r×r}: M[i][j] is true iff the i-th and
// j-th issued search tokens are identical — the query-repetition pattern
// the cloud inherently learns from deterministic tokens.
type RepeatMatrix [][]bool

// Repeats computes M over a history of issued tokens.
func Repeats(history []core.SearchToken) RepeatMatrix {
	key := func(t core.SearchToken) string {
		buf := make([]byte, 0, len(t.Trapdoor)+8+len(t.G1)+len(t.G2))
		buf = append(buf, t.Trapdoor...)
		buf = append(buf,
			byte(t.Epoch>>24), byte(t.Epoch>>16), byte(t.Epoch>>8), byte(t.Epoch))
		buf = append(buf, t.G1...)
		buf = append(buf, t.G2...)
		return string(buf)
	}
	m := make(RepeatMatrix, len(history))
	keys := make([]string, len(history))
	for i, t := range history {
		keys[i] = key(t)
	}
	for i := range history {
		m[i] = make([]bool, len(history))
		for j := range history {
			m[i][j] = keys[i] == keys[j]
		}
	}
	return m
}

// Count returns the number of repeated pairs (i<j with M[i][j]).
func (m RepeatMatrix) Count() int {
	n := 0
	for i := range m {
		for j := i + 1; j < len(m); j++ {
			if m[i][j] {
				n++
			}
		}
	}
	return n
}

// PrimeWidthUniform reports whether all prime representatives share one
// bit width — required for |x| to be a single scalar in L^build (anything
// else would leak which keywords exist through width variation).
func PrimeWidthUniform(primes []*big.Int) bool {
	if len(primes) == 0 {
		return true
	}
	w := primes[0].BitLen()
	for _, x := range primes[1:] {
		if x.BitLen() != w {
			return false
		}
	}
	return true
}
