package baseline

import (
	"encoding/binary"
	"fmt"

	"slicer/internal/prf"
)

// CLWW implements the practical order-revealing encryption of Chenette,
// Lewi, Weis and Wu (FSE 2016): for each bit position i the ciphertext
// holds u_i = F(k, prefix_i) + b_i (mod 3). Two ciphertexts are compared by
// scanning for the first position where the components differ; the
// difference mod 3 reveals which plaintext is larger. Leakage: the index of
// the first differing bit — the same class of leakage as SORE, but
// comparison is positional rather than set-membership, so it cannot be
// turned into keyword lookups the way SORE's tuples can.
type CLWW struct {
	key  prf.Key
	bits int
}

// CLWWCiphertext is a per-bit mod-3 component vector.
type CLWWCiphertext []uint8

// NewCLWW creates a scheme over b-bit values.
func NewCLWW(key prf.Key, bits int) (*CLWW, error) {
	if bits < 1 || bits > 64 {
		return nil, fmt.Errorf("baseline: CLWW bit width must be in [1,64], got %d", bits)
	}
	return &CLWW{key: key, bits: bits}, nil
}

// Encrypt produces the b-component ciphertext of v.
func (c *CLWW) Encrypt(v uint64) (CLWWCiphertext, error) {
	if c.bits < 64 && v >= 1<<uint(c.bits) {
		return nil, fmt.Errorf("baseline: value %d exceeds %d bits", v, c.bits)
	}
	ct := make(CLWWCiphertext, c.bits)
	for i := 1; i <= c.bits; i++ {
		prefix := uint64(0)
		if i > 1 {
			prefix = v >> uint(c.bits-i+1)
		}
		bit := (v >> uint(c.bits-i)) & 1
		var msg [9]byte
		msg[0] = byte(i)
		binary.BigEndian.PutUint64(msg[1:], prefix)
		u := c.key.Eval(msg[:])
		ct[i-1] = uint8((uint64(u[0]) + bit) % 3)
	}
	return ct, nil
}

// Compare orders two ciphertexts: -1 if the first is smaller, 1 if larger,
// 0 if equal.
func Compare(a, b CLWWCiphertext) int {
	for i := range a {
		if i >= len(b) {
			break
		}
		if a[i] == b[i] {
			continue
		}
		if (a[i]+1)%3 == b[i] {
			return -1 // b's bit was 1 where a's was 0
		}
		return 1
	}
	return 0
}

// CiphertextSize reports the byte size of a ciphertext.
func (c *CLWW) CiphertextSize() int { return c.bits }
