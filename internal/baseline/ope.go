// Package baseline implements the comparison schemes discussed by the
// paper's related work (§II-B), used by the ablation benchmarks:
//
//   - OPE: a stateful order-preserving encoder in the spirit of Boldyreva
//     et al. [21] / CryptDB [22] — ciphertext order equals plaintext order,
//     so range search is trivial but the full order of the dataset leaks.
//   - CLWW ORE: the practical order-revealing encryption of Chenette et
//     al. [23] — per-bit ciphertexts compared positionally, leaking the
//     index of the first differing bit.
//   - Traversal: the strawman the paper's introduction rules out — range
//     search by issuing one keyword (equality) query per value in the
//     range.
package baseline

import (
	"errors"
	"fmt"
	"math/rand" //slicer:allow weakrand -- seed-scoped gap-splitting for the OPE baseline; encodes no key material and must stay deterministic under a seed
	"sort"
)

// OPE is a stateful order-preserving encoder: plaintexts are mapped to
// codes in a much larger domain such that plaintext order is preserved.
// New plaintexts are inserted by splitting the gap between their
// neighbours' codes uniformly at random (mutable OPE). The encoder is the
// secret state; anyone holding only ciphertexts still learns the total
// order, which is exactly the leakage the paper's SORE avoids amplifying.
type OPE struct {
	rng   *rand.Rand
	codes map[uint64]uint64 // plaintext -> code
	used  []uint64          // sorted plaintexts
	space uint64            // code domain upper bound
}

// ErrOPEExhausted indicates no code gap remains between two neighbours.
var ErrOPEExhausted = errors.New("baseline: OPE code space exhausted")

// NewOPE creates an encoder with a 2^48 code space.
func NewOPE(seed int64) *OPE {
	return &OPE{
		rng:   rand.New(rand.NewSource(seed)),
		codes: make(map[uint64]uint64),
		space: 1 << 48,
	}
}

// Encrypt maps a plaintext to its order-preserving code, assigning a fresh
// code on first use. New codes split the neighbouring gap at its midpoint;
// when a gap collapses, the whole code table is rebalanced (the standard
// mutable-OPE maintenance step, which in a deployed system would require
// re-encrypting the affected ciphertexts).
func (o *OPE) Encrypt(v uint64) (uint64, error) {
	if c, ok := o.codes[v]; ok {
		return c, nil
	}
	idx := sort.Search(len(o.used), func(i int) bool { return o.used[i] >= v })
	code, err := o.gapCode(idx)
	if err != nil {
		o.rebalance()
		if code, err = o.gapCode(idx); err != nil {
			return 0, err // more plaintexts than code space
		}
	}
	o.codes[v] = code
	o.used = append(o.used, 0)
	copy(o.used[idx+1:], o.used[idx:])
	o.used[idx] = v
	return code, nil
}

// gapCode picks the midpoint of the code gap a new plaintext at sorted
// position idx would occupy.
func (o *OPE) gapCode(idx int) (uint64, error) {
	lo := uint64(0)
	hi := o.space
	if idx > 0 {
		lo = o.codes[o.used[idx-1]] + 1
	}
	if idx < len(o.used) {
		hi = o.codes[o.used[idx]]
	}
	if lo >= hi {
		return 0, fmt.Errorf("%w: between %d and %d", ErrOPEExhausted, lo, hi)
	}
	gap := hi - lo
	code := lo + gap/2
	// Jitter within the middle half of the gap so codes are not a pure
	// function of insertion order, without giving up the balanced-split
	// depth guarantee.
	if quarter := gap / 4; quarter > 0 {
		code = lo + quarter + uint64(o.rng.Int63n(int64(gap-2*quarter)))
	}
	return code, nil
}

// rebalance reassigns all codes evenly across the space, preserving order.
func (o *OPE) rebalance() {
	if len(o.used) == 0 {
		return
	}
	step := o.space / uint64(len(o.used)+1)
	if step == 0 {
		return
	}
	for i, v := range o.used {
		o.codes[v] = step * uint64(i+1)
	}
}

// Compare orders two OPE ciphertexts: -1, 0 or 1. It is a plain integer
// comparison — the whole point and the whole leakage of OPE.
func (o *OPE) Compare(a, b uint64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Len reports how many distinct plaintexts have been encoded.
func (o *OPE) Len() int { return len(o.used) }
