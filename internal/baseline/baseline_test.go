package baseline

import (
	"testing"
	"testing/quick"

	"slicer/internal/core"
	"slicer/internal/prf"
	"slicer/internal/workload"
)

func TestOPEPreservesOrder(t *testing.T) {
	ope := NewOPE(1)
	f := func(a, b uint16) bool {
		ca, err := ope.Encrypt(uint64(a))
		if err != nil {
			return false
		}
		cb, err := ope.Encrypt(uint64(b))
		if err != nil {
			return false
		}
		switch {
		case a < b:
			return ope.Compare(ca, cb) == -1
		case a > b:
			return ope.Compare(ca, cb) == 1
		default:
			return ope.Compare(ca, cb) == 0
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestOPEDeterministicPerPlaintext(t *testing.T) {
	ope := NewOPE(2)
	c1, err := ope.Encrypt(42)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := ope.Encrypt(42)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Error("re-encryption changed the code")
	}
	if ope.Len() != 1 {
		t.Errorf("Len = %d, want 1", ope.Len())
	}
}

func TestOPEInsertionBetweenNeighbors(t *testing.T) {
	ope := NewOPE(3)
	// Encrypt out of order and verify order holds afterwards.
	values := []uint64{100, 1, 50, 75, 25, 60, 99, 2}
	codes := make(map[uint64]uint64, len(values))
	for _, v := range values {
		c, err := ope.Encrypt(v)
		if err != nil {
			t.Fatalf("Encrypt(%d): %v", v, err)
		}
		codes[v] = c
	}
	for _, a := range values {
		for _, b := range values {
			if (a < b) != (codes[a] < codes[b]) && a != b {
				t.Fatalf("order broken between %d and %d", a, b)
			}
		}
	}
}

func newCLWW(t *testing.T, bits int) *CLWW {
	t.Helper()
	key, err := prf.NewKey()
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCLWW(key, bits)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCLWWExhaustiveSmallDomain(t *testing.T) {
	c := newCLWW(t, 5)
	cts := make([]CLWWCiphertext, 32)
	for v := range cts {
		ct, err := c.Encrypt(uint64(v))
		if err != nil {
			t.Fatalf("Encrypt(%d): %v", v, err)
		}
		cts[v] = ct
	}
	for a := 0; a < 32; a++ {
		for b := 0; b < 32; b++ {
			want := 0
			if a < b {
				want = -1
			} else if a > b {
				want = 1
			}
			if got := Compare(cts[a], cts[b]); got != want {
				t.Fatalf("Compare(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestCLWWProperty64(t *testing.T) {
	c := newCLWW(t, 64)
	f := func(a, b uint64) bool {
		ca, err := c.Encrypt(a)
		if err != nil {
			return false
		}
		cb, err := c.Encrypt(b)
		if err != nil {
			return false
		}
		want := 0
		if a < b {
			want = -1
		} else if a > b {
			want = 1
		}
		return Compare(ca, cb) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCLWWValidation(t *testing.T) {
	key, err := prf.NewKey()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCLWW(key, 0); err == nil {
		t.Error("zero bits accepted")
	}
	c, err := NewCLWW(key, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Encrypt(256); err == nil {
		t.Error("out-of-range value accepted")
	}
	if c.CiphertextSize() != 8 {
		t.Errorf("CiphertextSize = %d", c.CiphertextSize())
	}
}

func TestTraversalMatchesSORE(t *testing.T) {
	params := core.Params{Bits: 8, TrapdoorBits: 256, AccumulatorBits: 256}
	owner, err := core.NewOwner(params)
	if err != nil {
		t.Fatal(err)
	}
	db := workload.Generate(workload.Config{N: 80, Bits: 8, Seed: 11})
	built, err := owner.Build(db)
	if err != nil {
		t.Fatal(err)
	}
	cloud, err := core.NewCloud(owner.CloudInit(built.Index), core.WitnessCached)
	if err != nil {
		t.Fatal(err)
	}
	user, err := core.NewUser(owner.ClientState())
	if err != nil {
		t.Fatal(err)
	}
	trav := NewTraversal(user, cloud, 8)

	ids, tokens, err := trav.RangeSearch("", 50, 150)
	if err != nil {
		t.Fatalf("RangeSearch: %v", err)
	}
	want := make(map[uint64]bool)
	for _, rec := range db {
		v := rec.Attrs[0].Value
		if v >= 50 && v <= 150 {
			want[rec.ID] = true
		}
	}
	if len(ids) != len(want) {
		t.Errorf("traversal found %d ids, want %d", len(ids), len(want))
	}
	for _, id := range ids {
		if !want[id] {
			t.Errorf("traversal returned wrong id %d", id)
		}
	}
	if tokens == 0 || tokens > 101 {
		t.Errorf("token count %d outside (0,101]", tokens)
	}
	if _, _, err := trav.RangeSearch("", 10, 5); err == nil {
		t.Error("empty range accepted")
	}
}
