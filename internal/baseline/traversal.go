package baseline

import (
	"fmt"

	"slicer/internal/core"
)

// Traversal is the strawman numerical range search the paper's introduction
// dismisses as "totally infeasible": treat every possible value as a
// keyword and answer a range query by issuing one equality search per value
// in the range. It reuses Slicer's own equality machinery, so the ablation
// benchmark compares exactly the cost the SORE slicing removes: O(|range|)
// tokens and index probes versus O(b).
type Traversal struct {
	user  *core.User
	cloud *core.Cloud
	bits  int
}

// NewTraversal wraps an existing user/cloud pair.
func NewTraversal(user *core.User, cloud *core.Cloud, bits int) *Traversal {
	return &Traversal{user: user, cloud: cloud, bits: bits}
}

// RangeSearch answers [lo, hi] by per-value equality queries. The returned
// token count is the number of equality tokens actually issued (values
// never inserted produce none).
func (t *Traversal) RangeSearch(attr string, lo, hi uint64) (ids []uint64, tokensIssued int, err error) {
	if lo > hi {
		return nil, 0, fmt.Errorf("baseline: empty range [%d,%d]", lo, hi)
	}
	seen := make(map[uint64]struct{})
	for v := lo; ; v++ {
		req, err := t.user.Token(core.Query{Attr: attr, Op: core.OpEqual, Value: v})
		if err != nil {
			return nil, tokensIssued, err
		}
		tokensIssued += len(req.Tokens)
		if len(req.Tokens) > 0 {
			resp, err := t.cloud.Search(req)
			if err != nil {
				return nil, tokensIssued, err
			}
			got, err := t.user.Decrypt(resp)
			if err != nil {
				return nil, tokensIssued, err
			}
			for _, id := range got {
				seen[id] = struct{}{}
			}
		}
		if v == hi {
			break
		}
	}
	ids = make([]uint64, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	return ids, tokensIssued, nil
}
