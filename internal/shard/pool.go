package shard

import (
	"errors"
	"io"
	"net"
	"sync"

	"slicer/internal/wire"
)

// pool is a lazy connection pool to one shard. Concurrent scatter batches
// each check a connection out, so parallel tokens never serialize on a
// single client mutex; a connection that errors is dropped, not returned,
// and the next checkout dials fresh — which is also how the router survives
// a shard restart without any explicit reconnect step.
type pool struct {
	id   string
	addr string
	opts wire.ClientOptions

	mu     sync.Mutex
	idle   []*wire.CloudClient
	closed bool
}

func newPool(id, addr string, opts wire.ClientOptions) *pool {
	return &pool{id: id, addr: addr, opts: opts}
}

func (p *pool) get() (*wire.CloudClient, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, errors.New("shard: router closed")
	}
	if n := len(p.idle); n > 0 {
		cc := p.idle[n-1]
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		return cc, nil
	}
	p.mu.Unlock()
	return wire.DialCloudOpts(p.addr, p.opts)
}

func (p *pool) put(cc *wire.CloudClient) {
	p.mu.Lock()
	if p.closed || len(p.idle) >= 8 {
		p.mu.Unlock()
		_ = cc.Close()
		return
	}
	p.idle = append(p.idle, cc)
	p.mu.Unlock()
}

// transient reports whether an RPC failure looks like a transport fault (a
// dropped or refused connection) rather than an application error from the
// shard. Application errors arrive as decoded response strings and match
// none of these.
func transient(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) ||
		errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed) ||
		errors.Is(err, wire.ErrCallTimeout)
}

// call checks a connection out, runs fn, and returns the connection to the
// pool on success. A transport-level failure closes the connection and
// retries once on a fresh dial — covering both a restarted shard and an
// idle-reaped pooled connection.
func (p *pool) call(fn func(cc *wire.CloudClient) error) error {
	for attempt := 0; ; attempt++ {
		cc, err := p.get()
		if err != nil {
			if attempt == 0 && transient(err) {
				continue
			}
			return err
		}
		err = fn(cc)
		if err == nil {
			p.put(cc)
			return nil
		}
		_ = cc.Close()
		if attempt == 0 && transient(err) {
			continue
		}
		return err
	}
}

// close drops every idle connection; in-flight checkouts close on return.
func (p *pool) close() {
	p.mu.Lock()
	p.closed = true
	idle := p.idle
	p.idle = nil
	p.mu.Unlock()
	for _, cc := range idle {
		_ = cc.Close()
	}
}
