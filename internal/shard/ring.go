// Package shard implements the horizontal scale-out tier for the Slicer
// cloud: a placement layer mapping PRF-derived index addresses onto N cloud
// shards, a router speaking the wire protocol on both sides (clients see one
// Cloud), and an admin-triggered rebalancer that moves address ranges
// between live shards under the WAL.
//
// The encrypted index shards cleanly because its labels are PRF outputs —
// uniform in the 64-bit address prefix store.Addr extracts — so placement is
// a consistent-hash ring over that address space, materialized as an
// explicit segment table (sorted breakpoints, binary-search lookup) that is
// epoch-numbered and journaled: every table change appends a record to the
// router's own durable WAL, and a restarted router recovers the exact view
// it acknowledged.
//
// The verifiable-search guarantee is preserved exactly: every shard holds
// the full replicated ADS (prime set, accumulation value, witness caches)
// while only the index partitions, so the router can merge per-token results
// deterministically — byte-identical to a single-cloud search — and have any
// shard produce the very witness a single cloud would have attached.
package shard

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"

	"slicer/internal/store"
)

// DefaultVnodes is how many ring points each shard contributes when a table
// is first built. More points smooth the initial split; rebalancing corrects
// residual skew at runtime.
const DefaultVnodes = 16

// Segment is one contiguous arc of the address space: [Start, nextStart)
// owned by Shard, where nextStart is the following segment's Start (or 2^64
// for the last segment).
type Segment struct {
	Start uint64 `json:"start"`
	Shard string `json:"shard"`
}

// Table is one epoch of the routing table. Segments are sorted by Start and
// cover the full space: Segments[0].Start is always 0.
type Table struct {
	Epoch    uint64    `json:"epoch"`
	Segments []Segment `json:"segments"`
}

// ringPoint hashes one (shard, vnode) pair onto the 64-bit ring. The
// derivation is stable across processes, so every router with the same
// shard list computes the same initial table.
func ringPoint(shard string, vnode int) uint64 {
	var v [8]byte
	binary.BigEndian.PutUint64(v[:], uint64(vnode))
	sum := sha256.Sum256(append([]byte("slicer-ring|"+shard+"|"), v[:]...))
	return binary.BigEndian.Uint64(sum[:8])
}

// NewTable builds the epoch-0 table for a shard list: each shard contributes
// vnodes consistent-hash points (DefaultVnodes if vnodes <= 0), and each arc
// between adjacent points belongs to the point opening it, with the arc
// below the lowest point wrapping to the owner of the highest.
func NewTable(shards []string, vnodes int) (*Table, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("shard: table needs at least one shard")
	}
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	type point struct {
		at    uint64
		shard string
	}
	seen := make(map[string]bool, len(shards))
	var points []point
	for _, s := range shards {
		if s == "" {
			return nil, fmt.Errorf("shard: empty shard ID")
		}
		if seen[s] {
			return nil, fmt.Errorf("shard: duplicate shard ID %q", s)
		}
		seen[s] = true
		for v := 0; v < vnodes; v++ {
			points = append(points, point{at: ringPoint(s, v), shard: s})
		}
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].at != points[j].at {
			return points[i].at < points[j].at
		}
		return points[i].shard < points[j].shard // deterministic collision order
	})
	segs := make([]Segment, 0, len(points)+1)
	// The arc [0, points[0].at) wraps around to the highest point's owner.
	segs = append(segs, Segment{Start: 0, Shard: points[len(points)-1].shard})
	for _, p := range points {
		segs = append(segs, Segment{Start: p.at, Shard: p.shard})
	}
	t := &Table{Epoch: 0, Segments: coalesce(segs)}
	return t, nil
}

// coalesce merges adjacent segments with the same owner and drops
// zero-width duplicates (same Start: the later entry wins, matching the
// deterministic point order).
func coalesce(segs []Segment) []Segment {
	out := segs[:0]
	for _, s := range segs {
		if n := len(out); n > 0 {
			if out[n-1].Start == s.Start {
				out[n-1] = s
				continue
			}
			if out[n-1].Shard == s.Shard {
				continue
			}
		}
		out = append(out, s)
	}
	return out
}

// Validate checks structural invariants: non-empty, sorted, starting at 0,
// no empty owners.
func (t *Table) Validate() error {
	if len(t.Segments) == 0 {
		return fmt.Errorf("shard: table epoch %d has no segments", t.Epoch)
	}
	if t.Segments[0].Start != 0 {
		return fmt.Errorf("shard: table epoch %d does not cover address 0", t.Epoch)
	}
	for i, s := range t.Segments {
		if s.Shard == "" {
			return fmt.Errorf("shard: table epoch %d segment %d has no owner", t.Epoch, i)
		}
		if i > 0 && t.Segments[i-1].Start >= s.Start {
			return fmt.Errorf("shard: table epoch %d segments out of order at %d", t.Epoch, i)
		}
	}
	return nil
}

// Lookup returns the shard owning an address.
func (t *Table) Lookup(addr uint64) string {
	// First segment with Start > addr; the one before it owns addr.
	i := sort.Search(len(t.Segments), func(i int) bool { return t.Segments[i].Start > addr })
	return t.Segments[i-1].Shard
}

// Owner returns the shard owning a label's address.
func (t *Table) Owner(l store.Label) string { return t.Lookup(store.Addr(l)) }

// Shards returns the distinct shard IDs the table references, sorted.
func (t *Table) Shards() []string {
	seen := make(map[string]bool)
	var out []string
	for _, s := range t.Segments {
		if !seen[s.Shard] {
			seen[s.Shard] = true
			out = append(out, s.Shard)
		}
	}
	sort.Strings(out)
	return out
}

// Move returns the next epoch's table with the address range [lo, hi) — hi
// == 0 meaning 2^64 — reassigned to shard dst. The receiver is unchanged.
func (t *Table) Move(lo, hi uint64, dst string) (*Table, error) {
	if dst == "" {
		return nil, fmt.Errorf("shard: move needs a destination shard")
	}
	if hi != 0 && lo >= hi {
		return nil, fmt.Errorf("shard: empty move range")
	}
	// Breakpoints: every existing start plus the move boundaries.
	marks := map[uint64]bool{0: true, lo: true}
	if hi != 0 {
		marks[hi] = true
	}
	for _, s := range t.Segments {
		marks[s.Start] = true
	}
	starts := make([]uint64, 0, len(marks))
	for m := range marks {
		starts = append(starts, m)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	segs := make([]Segment, 0, len(starts))
	for _, b := range starts {
		owner := t.Lookup(b)
		if b >= lo && (hi == 0 || b < hi) {
			owner = dst
		}
		segs = append(segs, Segment{Start: b, Shard: owner})
	}
	next := &Table{Epoch: t.Epoch + 1, Segments: coalesce(segs)}
	if err := next.Validate(); err != nil {
		return nil, err
	}
	return next, nil
}

// Ranges returns the [lo, hi) arcs (hi == 0 meaning 2^64) a shard owns, in
// address order.
func (t *Table) Ranges(shard string) [][2]uint64 {
	var out [][2]uint64
	for i, s := range t.Segments {
		if s.Shard != shard {
			continue
		}
		var hi uint64 // 2^64 for the last segment
		if i+1 < len(t.Segments) {
			hi = t.Segments[i+1].Start
		}
		out = append(out, [2]uint64{s.Start, hi})
	}
	return out
}

// Clone returns a deep copy.
func (t *Table) Clone() *Table {
	return &Table{Epoch: t.Epoch, Segments: append([]Segment(nil), t.Segments...)}
}
